// Write-interval analysis: reproduce the paper's Section 4.1 analysis on
// a generated trace — interval distribution, Pareto tail fit, the
// decreasing-hazard-rate conditionals PRIL exploits, and the
// accuracy/coverage tradeoff of choosing a current-interval-length
// threshold.
package main

import (
	"fmt"
	"log"

	"memcon"
	"memcon/internal/pareto"
	"memcon/internal/stats"
)

func main() {
	app, err := memcon.AppByName("SystemMgt")
	if err != nil {
		log.Fatal(err)
	}
	tr := app.Generate(11, 0.3)
	intervals := tr.Intervals(true)
	fmt.Printf("workload %s: %d write intervals across %d pages\n\n",
		tr.Name, len(intervals), tr.Pages())

	// Distribution (Fig. 7 style).
	h := stats.NewLogHistogram(1, 16)
	for _, iv := range intervals {
		h.Add(iv)
	}
	fmt.Println("interval distribution (ms buckets):")
	fmt.Print(h.String())
	fmt.Printf("\n>=1024 ms intervals: %.2f%% of count but %.1f%% of time\n",
		100*h.FractionAtOrAbove(1024), 100*h.WeightFractionAtOrAbove(1024))

	// Pareto tail fit (Fig. 8 style).
	fit, err := pareto.FitCCDFTail(intervals, nil, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPareto tail fit: alpha=%.2f xm=%.0f ms R^2=%.3f\n",
		fit.Dist.Alpha, fit.Dist.Xm, fit.R2)

	// Decreasing hazard rate (Fig. 11 style) and coverage (Fig. 12).
	fmt.Println("\nPRIL's bet — the longer a page has been idle, the longer it will stay idle:")
	fmt.Printf("%12s %22s %12s\n", "CIL (ms)", "P(RIL > 1024 ms)", "coverage")
	for _, cil := range []float64{1, 16, 256, 512, 1024, 2048, 8192, 32768} {
		p := pareto.ConditionalExceedEmpirical(intervals, cil, 1024)
		cov := pareto.CoverageAtCIL(intervals, cil)
		fmt.Printf("%12.0f %22.2f %11.1f%%\n", cil, p, 100*cov)
	}
}
