// Quickstart: run the MEMCON engine end to end on a generated workload
// trace and print the headline metrics — refresh reduction, LO-REF
// coverage, and prediction accuracy.
package main

import (
	"fmt"
	"log"

	"memcon"
)

func main() {
	// Generate a write trace for the Netflix-like streaming workload
	// (scaled down for a fast demo run).
	app, err := memcon.AppByName("Netflix")
	if err != nil {
		log.Fatal(err)
	}
	tr := app.Generate(1, 0.25)
	fmt.Printf("workload %s: %d write-backs to %d pages over %.0f s\n",
		tr.Name, len(tr.Events), tr.Pages(), app.DurationSec)

	// Run the MEMCON engine with the paper's primary configuration:
	// 1024 ms quantum, HI-REF 16 ms, LO-REF 64 ms, Read-and-Compare.
	cfg := memcon.DefaultConfig()
	rep, err := memcon.Run(tr, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nMEMCON results (MinWriteInterval %d ms):\n", rep.MinWriteInterval/1e6)
	fmt.Printf("  refresh reduction vs 16 ms baseline: %5.1f%% (upper bound %.1f%%)\n",
		100*rep.RefreshReduction(), 100*rep.UpperBoundReduction())
	fmt.Printf("  time at LO-REF:                      %5.1f%%\n", 100*rep.LoRefCoverage())
	fmt.Printf("  tests: %d started, %d completed, %d aborted by writes\n",
		rep.TestsStarted, rep.TestsCompleted, rep.TestsAborted)
	fmt.Printf("  prediction: %d amortized, %d mispredicted\n",
		rep.CorrectTests, rep.MispredictedTests)
	fmt.Printf("  testing time: %.5f%% of baseline refresh time\n",
		100*rep.TestingTimeNs()/rep.BaselineRefreshTimeNs())
}
