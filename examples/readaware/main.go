// Read-aware refresh: implement and quantify the paper's footnote-3
// future-work idea — rows that are read often enough do not need
// refreshing, because every access recharges the row. This example
// stacks the read-skip savings on top of MEMCON's content-based
// reduction.
package main

import (
	"fmt"
	"log"

	"memcon"
	"memcon/internal/dram"
)

func main() {
	app, err := memcon.AppByName("AdobePremiere")
	if err != nil {
		log.Fatal(err)
	}
	writes := app.Generate(5, 0.25)
	reads := app.GenerateReads(5, 0.25)
	fmt.Printf("workload %s: %d write-backs, %d reads, %d pages\n",
		app.Name, len(writes.Events), len(reads.Events), writes.Pages())

	// MEMCON alone.
	rep, err := memcon.Run(writes, memcon.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMEMCON refresh reduction:        %5.1f%%\n", 100*rep.RefreshReduction())

	// Read-skip alone, against the LO-REF interval (the residual
	// refreshes MEMCON still issues mostly run at 64 ms).
	rs, err := memcon.ReadSkipAnalysis(reads, dram.RefreshWindowDefault)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read-skip coverage (64 ms wins): %5.1f%% of scheduled refreshes\n", 100*rs.SkipFraction())
	fmt.Printf("pages with read activity:        %d\n", rs.PagesWithReads)

	// Stacked.
	fmt.Printf("\ncombined refresh reduction:      %5.1f%% (vs 16 ms baseline)\n",
		100*memcon.CombinedSavings(rep, rs))
	fmt.Println("\n(the paper's footnote 3 leaves this optimization as future work;")
	fmt.Println(" the analysis above implements it over synthesized read traces)")
}
