// Refresh-savings study: sweep MEMCON's quantum length (the PRIL
// current-interval-length threshold) and the LO-REF interval over a
// streaming-video workload, printing the refresh reduction and testing
// overhead for each point — the §6.1 analysis as a library consumer
// would run it.
package main

import (
	"fmt"
	"log"

	"memcon"
	"memcon/internal/dram"
	"memcon/internal/trace"
)

func main() {
	app, err := memcon.AppByName("MotionPlayBack")
	if err != nil {
		log.Fatal(err)
	}
	tr := app.Generate(7, 0.25)
	fmt.Printf("workload %s: %d write-backs, %d pages\n\n", tr.Name, len(tr.Events), tr.Pages())

	fmt.Println("quantum sweep (LO-REF 64 ms):")
	fmt.Printf("%12s %12s %12s %14s %14s\n", "quantum", "reduction", "coverage", "tests", "mispredicted")
	for _, quantumMs := range []int64{512, 1024, 2048, 4096} {
		cfg := memcon.DefaultConfig()
		cfg.Quantum = trace.Microseconds(quantumMs) * trace.Millisecond
		rep, err := memcon.Run(tr, cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d ms %11.1f%% %11.1f%% %14d %14d\n",
			quantumMs, 100*rep.RefreshReduction(), 100*rep.LoRefCoverage(),
			rep.TestsCompleted, rep.MispredictedTests)
	}

	fmt.Println("\nLO-REF sweep (quantum 1024 ms):")
	fmt.Printf("%12s %12s %16s %12s\n", "LO-REF", "reduction", "upper bound", "MWI")
	for _, loMs := range []dram.Nanoseconds{64, 128, 256} {
		cfg := memcon.DefaultConfig()
		cfg.LoRef = loMs * dram.Millisecond
		rep, err := memcon.Run(tr, cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d ms %11.1f%% %15.1f%% %9d ms\n",
			loMs, 100*rep.RefreshReduction(), 100*rep.UpperBoundReduction(),
			rep.MinWriteInterval/dram.Millisecond)
	}
}
