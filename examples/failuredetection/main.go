// Failure detection: characterize a simulated DRAM chip the way the
// paper's SoftMC experiments do — fill with manufacturing data patterns
// and with SPEC program content, idle for a refresh window, read back —
// then run MEMCON's full-fidelity mode on the same chip and verify the
// reliability guarantee (no silent failure escapes).
package main

import (
	"fmt"
	"log"

	"memcon"
	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/softmc"
	"memcon/internal/trace"
	"memcon/internal/workload"
)

func main() {
	geom := memcon.DefaultGeometry()
	geom.RowsPerBank = 1024 // keep the demo snappy
	chip, err := memcon.NewChip(geom, 2024)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: pattern characterization (Fig. 3 style). The chip's
	// fault-model parameters are scaled to the 64 ms LO-REF window, so
	// characterize at that idle time.
	idle := dram.Nanoseconds(64) * dram.Millisecond
	fmt.Println("pattern characterization (64 ms idle):")
	for _, p := range []softmc.Pattern{
		softmc.SolidPattern(0), softmc.SolidPattern(1),
		softmc.CheckerboardPattern(0), softmc.RowStripePattern(0),
		softmc.RandomPattern(7),
	} {
		fails, err := chip.Tester.RunPattern(p, idle)
		if err != nil {
			log.Fatal(err)
		}
		cells := 0
		for _, f := range fails {
			cells += len(f.Cells)
		}
		fmt.Printf("  %-12s %4d failing rows, %4d failing cells\n", p.Name, len(fails), cells)
	}

	// Part 2: program content excites far fewer failures (Fig. 4 style).
	spec, err := workload.ContentByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	img := spec.Image(geom.RowsPerBank, geom.ColsPerRow, 0, 1)
	frac, err := chip.Tester.FailingRowFraction(img, idle)
	if err != nil {
		log.Fatal(err)
	}
	all := chip.Tester.AllFailFraction(idle)
	fmt.Printf("\nmcf content: %.2f%% failing rows vs %.2f%% under ANY pattern (%.1fx fewer)\n",
		100*frac, 100*all, all/maxf(frac, 1e-9))

	// Part 3: full-fidelity MEMCON with the reliability audit. Build a
	// fresh chip (the characterization above consumed the clock).
	chip2, err := memcon.NewChip(geom, 2024)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := memcon.NewSystem(memcon.DefaultConfig(), chip2)
	if err != nil {
		log.Fatal(err)
	}
	tr := &memcon.Trace{Duration: 30 * 1024 * trace.Millisecond}
	for p := uint32(0); p < 512; p++ {
		tr.Events = append(tr.Events, memcon.Event{Page: p, At: trace.Microseconds(p) * 1009})
	}
	tr.Sort()
	rep, err := sys.Run(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMEMCON online run over %d pages:\n", tr.Pages())
	fmt.Printf("  tests completed: %d, failed (mitigated at HI-REF): %d\n",
		rep.TestsCompleted, rep.TestsFailed)
	fmt.Printf("  failing cells detected online: %d\n", sys.DetectedFailures())
	fmt.Printf("  SILENT failures escaped:       %d (guarantee: 0)\n", sys.UndetectedFailures())
	fmt.Printf("  refresh reduction achieved:    %.1f%%\n", 100*rep.RefreshReduction())
	_ = faults.CharacterizationIdle // keep the import for documentation reference
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
