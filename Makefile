GO ?= go

.PHONY: build test race vet bench fuzz ci metrics-demo serve-demo reports

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the whole suite under the race detector. The experiment
# sweeps, the -all CLI path and AllFailFractionParallel all fan out
# across goroutines, so this is the tier that catches data races the
# plain suite cannot. -short skips the slowest golden sweeps; ci runs
# them in the plain pass.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# fuzz gives each fuzz target a short budget on top of its checked-in
# seed corpus.
fuzz:
	$(GO) test -fuzz=FuzzMemconsimArgs -fuzztime=10s ./cmd/memconsim

ci:
	./scripts/ci.sh

# metrics-demo runs a scaled-down sweep with the observability layer
# attached and prints the human-readable metrics table (counters,
# histograms, per-phase wall times, worker-pool utilization).
metrics-demo:
	$(GO) run ./cmd/memconsim -exp fig14 -scale 0.1 -metrics - -metrics-format table

# serve-demo starts the experiment-serving daemon and drives it with
# 2000 concurrent requests over 4 distinct cache keys: singleflight
# collapses them onto 4 runs, every other response is a byte-identical
# cache hit, and SIGTERM drains the daemon cleanly.
serve-demo:
	./scripts/serve_demo.sh

# reports regenerates the committed small-scale reference reports that
# CI diffs against (and the golden -all text capture, which uses the
# same settings). Run after an intended numeric change and commit the
# result; unintended diffs in the output are regressions.
reports:
	$(GO) run ./cmd/memconsim -all -scale 0.05 -simtime 200000 -mixes 3 -parallel 4 \
		-out testdata/reports > cmd/memconsim/testdata/golden_all.txt
