package memcon_test

import (
	"fmt"

	"memcon"
	"memcon/internal/trace"
)

// The minimal MEMCON flow: feed a write trace to the engine and read
// the refresh savings.
func ExampleRun() {
	tr := &memcon.Trace{
		Name:     "demo",
		Duration: 20 * 1024 * trace.Millisecond, // 20 quanta
		Events:   []memcon.Event{{Page: 0, At: 0}},
	}
	rep, err := memcon.Run(tr, memcon.DefaultConfig(), nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tests: %d, reduction: %.0f%% of upper bound %.0f%%\n",
		rep.TestsCompleted,
		100*rep.RefreshReduction()/rep.UpperBoundReduction()*rep.UpperBoundReduction(),
		100*rep.UpperBoundReduction())
	// Output: tests: 1, reduction: 67% of upper bound 75%
}

// MinWriteInterval exposes the paper's central cost-model result.
func ExampleMinWriteInterval() {
	fmt.Printf("%d ms\n", memcon.MinWriteInterval()/1_000_000)
	// Output: 560 ms
}

// Experiments regenerate the paper's tables and figures by id.
func ExampleExperiment() {
	out, err := memcon.Experiment("minwi", memcon.ExperimentOptions{})
	if err != nil {
		panic(err)
	}
	_ = out // a fmt.Stringer holding the appendix table
	fmt.Println("ok")
	// Output: ok
}
