package memcon_test

import (
	"fmt"

	"memcon"
	"memcon/internal/trace"
)

// The minimal MEMCON flow: feed a write trace to the engine and read
// the refresh savings.
func ExampleRun() {
	tr := &memcon.Trace{
		Name:     "demo",
		Duration: 20 * 1024 * trace.Millisecond, // 20 quanta
		Events:   []memcon.Event{{Page: 0, At: 0}},
	}
	rep, err := memcon.Run(tr, memcon.DefaultConfig(), nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tests: %d, reduction: %.0f%% of upper bound %.0f%%\n",
		rep.TestsCompleted,
		100*rep.RefreshReduction()/rep.UpperBoundReduction()*rep.UpperBoundReduction(),
		100*rep.UpperBoundReduction())
	// Output: tests: 1, reduction: 67% of upper bound 75%
}

// Observers receive the engine's structured lifecycle events: attach
// one with the option-based constructor and watch a page be written,
// tracked by PRIL, predicted idle, tested, and moved to LO-REF. The
// KindRunDone event is skipped here because its payload is wall-clock
// time.
func ExampleNew_observer() {
	eng, err := memcon.New(memcon.DefaultConfig(),
		memcon.WithObserver(memcon.ObserverFunc(func(e memcon.ObserverEvent) {
			if e.Kind != memcon.KindRunDone {
				fmt.Println(e)
			}
		})))
	if err != nil {
		panic(err)
	}
	tr := &memcon.Trace{
		Name:     "demo",
		Duration: 4 * 1024 * trace.Millisecond, // 4 quanta
		Events:   []memcon.Event{{Page: 0, At: 0}},
	}
	if _, err := eng.Run(tr); err != nil {
		panic(err)
	}
	// Output:
	// write page=0 at=0 aux=-1
	// pril_insert page=0 at=0 aux=1
	// predict page=0 at=2048000 aux=0
	// test_queued page=0 at=2048000 aux=2112000
	// test_drained page=0 at=2112000 aux=1
	// refresh_to_lo page=0 at=2112000 aux=0
}

// MinWriteInterval exposes the paper's central cost-model result.
func ExampleMinWriteInterval() {
	fmt.Printf("%d ms\n", memcon.MinWriteInterval()/1_000_000)
	// Output: 560 ms
}

// Experiments regenerate the paper's tables and figures by id.
func ExampleExperiment() {
	out, err := memcon.Experiment("minwi", memcon.ExperimentOptions{})
	if err != nil {
		panic(err)
	}
	_ = out // a fmt.Stringer holding the appendix table
	fmt.Println("ok")
	// Output: ok
}
