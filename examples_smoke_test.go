package memcon

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesSmoke builds and runs every example program and requires
// a zero exit status and non-empty stdout. The examples double as
// living documentation; a refactor that silently breaks one should
// fail the suite, not a reader.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example programs in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) != 5 {
		t.Fatalf("found %d example dirs %v, want 5", len(names), names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("building example %s: %v\n%s", name, err, out)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("running example %s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
