#!/bin/sh
# bench.sh — regenerate BENCH_hotpath.json, the before/after evidence
# for the flat-array fault-model kernel and the parallel ReadBack path.
#
# Runs BenchmarkFailingCells and BenchmarkReadBack (workers 1/4/8) on
# the default geometry and rewrites BENCH_hotpath.json. The "baseline"
# block is pinned to the numbers measured at commit 41aed67 (map-based
# lazy fault model, sequential commit-as-you-go ReadBack) on the same
# machine class; re-measure it by checking out that commit and running
# these benchmarks there.
set -eu

cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench 'BenchmarkFailingCells|BenchmarkReadBack' \
	-benchmem -benchtime=2s .)
echo "$out"

echo "$out" | awk '
function emit(name, line,    f) {
	split(line, f, /[ \t]+/)
	# fields: name iters ns/op "ns/op" B/op "B/op" allocs/op "allocs/op"
	printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, f[3], f[5], f[7]
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^go/ { }
/^BenchmarkFailingCells/        { fc = $0 }
/^BenchmarkReadBack\/workers-1/ { rb1 = $0 }
/^BenchmarkReadBack\/workers-4/ { rb4 = $0 }
/^BenchmarkReadBack\/workers-8/ { rb8 = $0 }
END {
	print "{"
	print "  \"benchmarks\": \"go test -run ^$ -bench BenchmarkFailingCells|BenchmarkReadBack -benchmem -benchtime=2s .\","
	print "  \"geometry\": \"DefaultGeometry (1 rank, 8 chips, 8 banks, 4096x1024, 32 redundant cols)\","
	print "  \"baseline\": {"
	print "    \"commit\": \"41aed67\","
	print "    \"cpu\": \"Intel(R) Xeon(R) Processor @ 2.10GHz (1 core)\","
	print "    \"BenchmarkFailingCells\": {\"ns_per_op\": 106.5, \"bytes_per_op\": 0, \"allocs_per_op\": 0},"
	print "    \"BenchmarkReadBack/workers-1\": {\"ns_per_op\": 3475589, \"bytes_per_op\": 169072, \"allocs_per_op\": 1690}"
	print "  },"
	print "  \"after\": {"
	printf "    \"cpu\": \"%s\",\n", cpu
	emit("BenchmarkFailingCells", fc); printf ",\n"
	emit("BenchmarkReadBack/workers-1", rb1); printf ",\n"
	emit("BenchmarkReadBack/workers-4", rb4); printf ",\n"
	emit("BenchmarkReadBack/workers-8", rb8); printf "\n"
	print "  }"
	print "}"
}' >BENCH_hotpath.json

echo "bench: BENCH_hotpath.json updated"
