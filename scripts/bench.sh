#!/bin/sh
# bench.sh — regenerate the committed benchmark measurement files:
# BENCH_hotpath.json (fault-model kernel, parallel ReadBack),
# BENCH_disturb.json (read-disturb victim sweep), BENCH_engine.json
# (engine hot loop) and BENCH_fleet.json (fleet simulation). Each
# section prints the raw `go test -bench` output and rewrites its JSON
# document.
#
# Runs BenchmarkFailingCells (sparse and dense populations) and
# BenchmarkReadBack (workers 1/4/8) on the default geometry and
# rewrites BENCH_hotpath.json. Two pinned comparison blocks:
# "baseline" holds the numbers measured at commit 41aed67 (map-based
# lazy fault model, sequential commit-as-you-go ReadBack), "pr3" the
# numbers after the flat-CSR kernel and frozen-parallel ReadBack but
# before the bit-parallel word kernel and the scan-scratch reuse.
# Re-measure either by checking out that commit and running these
# benchmarks there (BenchmarkFailingCellsDense exists only after pr3).
set -eu

cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench 'BenchmarkFailingCells|BenchmarkReadBack' \
	-benchmem -benchtime=2s .)
echo "$out"

echo "$out" | awk '
function emit(name, line,    f) {
	split(line, f, /[ \t]+/)
	# fields: name iters ns/op "ns/op" B/op "B/op" allocs/op "allocs/op"
	printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, f[3], f[5], f[7]
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^go/ { }
/^BenchmarkFailingCells-|^BenchmarkFailingCells / { fc = $0 }
/^BenchmarkFailingCellsDense/   { fcd = $0 }
/^BenchmarkReadBack\/workers-1/ { rb1 = $0 }
/^BenchmarkReadBack\/workers-4/ { rb4 = $0 }
/^BenchmarkReadBack\/workers-8/ { rb8 = $0 }
END {
	print "{"
	print "  \"benchmarks\": \"go test -run ^$ -bench BenchmarkFailingCells|BenchmarkReadBack -benchmem -benchtime=2s .\","
	print "  \"geometry\": \"DefaultGeometry (1 rank, 8 chips, 8 banks, 4096x1024, 32 redundant cols)\","
	print "  \"baseline\": {"
	print "    \"commit\": \"41aed67\","
	print "    \"cpu\": \"Intel(R) Xeon(R) Processor @ 2.10GHz (1 core)\","
	print "    \"BenchmarkFailingCells\": {\"ns_per_op\": 106.5, \"bytes_per_op\": 0, \"allocs_per_op\": 0},"
	print "    \"BenchmarkReadBack/workers-1\": {\"ns_per_op\": 3475589, \"bytes_per_op\": 169072, \"allocs_per_op\": 1690}"
	print "  },"
	print "  \"pr3\": {"
	print "    \"cpu\": \"Intel(R) Xeon(R) Processor @ 2.10GHz\","
	print "    \"BenchmarkFailingCells\": {\"ns_per_op\": 31.20, \"bytes_per_op\": 0, \"allocs_per_op\": 0},"
	print "    \"BenchmarkReadBack/workers-1\": {\"ns_per_op\": 1527545, \"bytes_per_op\": 345969, \"allocs_per_op\": 2133},"
	print "    \"BenchmarkReadBack/workers-4\": {\"ns_per_op\": 1478864, \"bytes_per_op\": 346386, \"allocs_per_op\": 2139},"
	print "    \"BenchmarkReadBack/workers-8\": {\"ns_per_op\": 1595760, \"bytes_per_op\": 346770, \"allocs_per_op\": 2143}"
	print "  },"
	print "  \"after\": {"
	printf "    \"cpu\": \"%s\",\n", cpu
	emit("BenchmarkFailingCells", fc); printf ",\n"
	emit("BenchmarkFailingCellsDense", fcd); printf ",\n"
	emit("BenchmarkReadBack/workers-1", rb1); printf ",\n"
	emit("BenchmarkReadBack/workers-4", rb4); printf ",\n"
	emit("BenchmarkReadBack/workers-8", rb8); printf "\n"
	print "  }"
	print "}"
}' >BENCH_hotpath.json

echo "bench: BENCH_hotpath.json updated"

# --- Read-disturb scan (BENCH_disturb.json) ---
# First-measurement baseline for the read-disturb mechanism: a full
# victim sweep (one AppendFailures query per victim row at a hammer
# count inside the threshold population) on the default geometry with
# random content. There is no "before" commit — the mechanism is new —
# so the recorded numbers ARE the baseline future PRs compare against.
# The victim-rows/op and flipped-rows/op metrics pin the population
# shape: a drift there is a model change, not noise.

out=$(go test -run '^$' -bench 'BenchmarkDisturbScan' \
	-benchmem -benchtime=2s .)
echo "$out"

echo "$out" | awk '
function field(line, unit,    f, i, n) {
	n = split(line, f, /[ \t]+/)
	for (i = 2; i <= n; i++) {
		if (f[i] == unit) {
			return f[i - 1]
		}
	}
	return "null"
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkDisturbScan/ { ds = $0 }
END {
	print "{"
	print "  \"benchmarks\": \"go test -run ^$ -bench BenchmarkDisturbScan -benchmem -benchtime=2s .\","
	print "  \"geometry\": \"DefaultGeometry (1 rank, 8 chips, 8 banks, 4096x1024, 32 redundant cols), random content, hammer 22600/window\","
	print "  \"note\": \"new mechanism; these numbers are the baseline. victim-rows/op and flipped-rows/op pin the sampled population.\","
	print "  \"baseline\": {"
	printf "    \"cpu\": \"%s\",\n", cpu
	printf "    \"BenchmarkDisturbScan\": {\"ns_per_op\": %s, \"victim_rows_per_op\": %s, \"flipped_rows_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}\n", \
		field(ds, "ns/op"), field(ds, "victim-rows/op"), field(ds, "flipped-rows/op"), field(ds, "B/op"), field(ds, "allocs/op")
	print "  }"
	print "}"
}' >BENCH_disturb.json

echo "bench: BENCH_disturb.json updated"

# --- Engine hot loop (BENCH_engine.json) ---
# Before/after evidence for the flat-state engine rewrite: bitset+order
# write buffers, epoch-stamped page-state arrays, and streaming replay.
# The baseline block is pinned to commit ccc749a (map-based write
# buffers, map-backed System state; measured via
# BenchmarkEngineObserverDisabled / BenchmarkPRILObserve there — the
# same code path BenchmarkEngineRun/accounting and BenchmarkPRILObserve
# time now). Compare runs with benchstat:
#
#   go test -run '^$' -bench BenchmarkEngineRun -benchmem -count=10 . >new.txt
#   benchstat old.txt new.txt

out=$(go test -run '^$' -bench 'BenchmarkEngineRun|BenchmarkPRILObserve' \
	-benchmem -benchtime=2s .)
echo "$out"

echo "$out" | awk '
# field pulls the value preceding the given unit token, so custom
# metrics (events/op, MB/s) cannot shift the -benchmem columns.
function field(line, unit,    f, i, n) {
	n = split(line, f, /[ \t]+/)
	for (i = 2; i <= n; i++) {
		if (f[i] == unit) {
			return f[i - 1]
		}
	}
	return "null"
}
function emit(name, line) {
	printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, field(line, "ns/op"), field(line, "B/op"), field(line, "allocs/op")
}
function emitmbs(name, line) {
	printf "    \"%s\": {\"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, field(line, "ns/op"), field(line, "MB/s"), field(line, "B/op"), field(line, "allocs/op")
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkEngineRun\/accounting/ { acc = $0 }
/^BenchmarkEngineRun\/steady/     { std = $0 }
/^BenchmarkEngineRun\/stream/     { stm = $0 }
/^BenchmarkEngineRun\/system/     { sys = $0 }
/^BenchmarkPRILObserve/           { prl = $0 }
END {
	print "{"
	print "  \"benchmarks\": \"go test -run ^$ -bench BenchmarkEngineRun|BenchmarkPRILObserve -benchmem -benchtime=2s .\","
	print "  \"workload\": \"Netflix seed 42 scale 0.05 (152934 events); system: 512-row module, 20000 events\","
	print "  \"baseline\": {"
	print "    \"commit\": \"ccc749a\","
	print "    \"cpu\": \"Intel(R) Xeon(R) Processor @ 2.10GHz (1 core)\","
	print "    \"note\": \"map-based write buffers and page state; accounting path measured as BenchmarkEngineObserverDisabled, PRIL as BenchmarkPRILObserve\","
	print "    \"BenchmarkEngineRun/accounting\": {\"ns_per_op\": 2786626, \"bytes_per_op\": 43440, \"allocs_per_op\": 703},"
	print "    \"BenchmarkPRILObserve\": {\"ns_per_op\": 1961683}"
	print "  },"
	print "  \"after\": {"
	printf "    \"cpu\": \"%s\",\n", cpu
	emit("BenchmarkEngineRun/accounting", acc); printf ",\n"
	emit("BenchmarkEngineRun/steady", std); printf ",\n"
	emitmbs("BenchmarkEngineRun/stream", stm); printf ",\n"
	emit("BenchmarkEngineRun/system", sys); printf ",\n"
	emit("BenchmarkPRILObserve", prl); printf "\n"
	print "  }"
	print "}"
}' >BENCH_engine.json

echo "bench: BENCH_engine.json updated"

# --- Fleet simulation (BENCH_fleet.json) ---
# First-measurement baseline for the fleet-scale subsystem: end-to-end
# simulation of 64 heterogeneous modules over 12 weekly scrub epochs at
# workers 1/4/8, plus the analytics pass alone. There is no "before"
# commit — the subsystem is new — so the recorded numbers ARE the
# baseline future optimisation PRs compare against (benchstat works
# too: -count=10 runs of BenchmarkFleetRun).

out=$(go test -run '^$' -bench 'BenchmarkFleetRun|BenchmarkFleetAnalyze' \
	-benchmem -benchtime=2s .)
echo "$out"

echo "$out" | awk '
function field(line, unit,    f, i, n) {
	n = split(line, f, /[ \t]+/)
	for (i = 2; i <= n; i++) {
		if (f[i] == unit) {
			return f[i - 1]
		}
	}
	return "null"
}
function emit(name, line, metric, unit) {
	printf "    \"%s\": {\"ns_per_op\": %s, \"%s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, field(line, "ns/op"), metric, field(line, unit), field(line, "B/op"), field(line, "allocs/op")
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkFleetRun\/workers-1/ { w1 = $0 }
/^BenchmarkFleetRun\/workers-4/ { w4 = $0 }
/^BenchmarkFleetRun\/workers-8/ { w8 = $0 }
/^BenchmarkFleetAnalyze/        { an = $0 }
END {
	print "{"
	print "  \"benchmarks\": \"go test -run ^$ -bench BenchmarkFleetRun|BenchmarkFleetAnalyze -benchmem -benchtime=2s .\","
	print "  \"workload\": \"64 modules, seed 42, scale 0.05, 12 weekly epochs (DefaultClasses geometry mix)\","
	print "  \"note\": \"new subsystem; these numbers are the baseline. events/op must be identical at every worker count.\","
	print "  \"baseline\": {"
	printf "    \"cpu\": \"%s\",\n", cpu
	emit("BenchmarkFleetRun/workers-1", w1, "events_per_op", "events/op"); printf ",\n"
	emit("BenchmarkFleetRun/workers-4", w4, "events_per_op", "events/op"); printf ",\n"
	emit("BenchmarkFleetRun/workers-8", w8, "events_per_op", "events/op"); printf ",\n"
	emit("BenchmarkFleetAnalyze", an, "cells_per_op", "cells/op"); printf "\n"
	print "  }"
	print "}"
}' >BENCH_fleet.json

echo "bench: BENCH_fleet.json updated"

# --- Serving tier (BENCH_serve.json) ---
# Before/after evidence for the persistent sharded cache and zero-copy
# serving path. The pinned baseline block was measured immediately
# before the refactor on the same machine: the single-mutex in-memory
# cache (BenchmarkServeCacheBaseline/mem-hit-parallel, the architecture
# the shards-1 case reproduces) and the pre-refactor daemon serving
# 2000 warm memory hits at concurrency 1000 via memload. The "after"
# block holds the sharded cache microbenchmarks plus a daemon ladder:
# cold corpus, warm memory hits, ETag 304 revalidation, a warm restart
# (same -cache-dir: zero re-runs, disk tier), and a cold restart
# (cleared -cache-dir: every key re-runs).

serve_out=$(go test -run '^$' -bench 'BenchmarkServeCache' \
	-benchmem -benchtime=2s ./internal/servecache)
echo "$serve_out"

serve_cpu=$(echo "$serve_out" | awk '/^cpu:/ { sub(/^cpu: */, ""); print; exit }')
serve_bench=$(echo "$serve_out" | awk '
function field(line, unit,    f, i, n) {
	n = split(line, f, /[ \t]+/)
	for (i = 2; i <= n; i++) {
		if (f[i] == unit) {
			return f[i - 1]
		}
	}
	return "null"
}
function emit(name, line) {
	printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, field(line, "ns/op"), field(line, "B/op"), field(line, "allocs/op")
}
$1 ~ /^BenchmarkServeCache\/mem-hit\/shards-1(-[0-9]+)?$/  { s1 = $0 }
$1 ~ /^BenchmarkServeCache\/mem-hit\/shards-4(-[0-9]+)?$/  { s4 = $0 }
$1 ~ /^BenchmarkServeCache\/mem-hit\/shards-16(-[0-9]+)?$/ { s16 = $0 }
$1 ~ /^BenchmarkServeCache\/disk-hit(-[0-9]+)?$/           { dh = $0 }
$1 ~ /^BenchmarkServeCache\/disk-write-through(-[0-9]+)?$/ { dw = $0 }
END {
	emit("BenchmarkServeCache/mem-hit/shards-1", s1); printf ",\n"
	emit("BenchmarkServeCache/mem-hit/shards-4", s4); printf ",\n"
	emit("BenchmarkServeCache/mem-hit/shards-16", s16); printf ",\n"
	emit("BenchmarkServeCache/disk-hit", dh); printf ",\n"
	emit("BenchmarkServeCache/disk-write-through", dw)
}')

servetmp=$(mktemp -d)
memcond_pid=""
trap 'kill "$memcond_pid" 2>/dev/null || true; rm -rf "$servetmp"' EXIT
go build -o "$servetmp/memcond" ./cmd/memcond
go build -o "$servetmp/memload" ./cmd/memload

start_memcond() {
	rm -f "$servetmp/addr"
	"$servetmp/memcond" -addr 127.0.0.1:0 -addr-file "$servetmp/addr" \
		-cache-dir "$servetmp/cache" 2>/dev/null &
	memcond_pid=$!
	i=0
	while [ ! -s "$servetmp/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "bench: memcond never wrote its address file" >&2
			exit 1
		fi
		sleep 0.1
	done
}
stop_memcond() {
	kill -TERM "$memcond_pid"
	wait "$memcond_pid"
	memcond_pid=""
}
load() {
	"$servetmp/memload" -addr "$(cat "$servetmp/addr")" \
		-exp fig4,fig6 -seeds 2 -scale 0.05 -simtime 200000 -mixes 3 -json "$@"
}

echo "bench: serving ladder (4 keys = fig4,fig6 x 2 seeds)"
start_memcond
load -n 4 -c 4 >"$servetmp/cold.json"
load -n 2000 -c 1000 -min-hits 1 >"$servetmp/memhit.json"
load -n 2000 -c 1000 -etag >"$servetmp/etag.json"
stop_memcond
start_memcond
load -n 2000 -c 1000 -min-disk 1 >"$servetmp/warm_restart.json"
stop_memcond
rm -rf "$servetmp/cache"
start_memcond
load -n 2000 -c 1000 >"$servetmp/cold_restart.json"
stop_memcond

cat >BENCH_serve.json <<EOF
{
  "benchmarks": "go test -run ^\$ -bench BenchmarkServeCache -benchmem -benchtime=2s ./internal/servecache; daemon ladder via cmd/memload -json (fig4,fig6 x 2 seeds = 4 keys, -scale 0.05 -simtime 200000 -mixes 3)",
  "baseline": {
    "note": "measured immediately before this refactor: single-mutex LRU (no shards, no disk tier, per-request JSON encoding) and the daemon it backed",
    "cpu": "Intel(R) Xeon(R) Processor @ 2.10GHz (1 core)",
    "BenchmarkServeCacheBaseline/mem-hit-parallel": {"ns_per_op": 38.24, "bytes_per_op": 0, "allocs_per_op": 0},
    "memload_mem_hit_c1000": {"requests": 2000, "rps": 3428, "latency_ms": {"min": 10.366, "p50": 198.727, "p95": 448.773, "max": 476.111}}
  },
  "after": {
    "cpu": "$serve_cpu",
$serve_bench,
    "serving": {
      "note": "cold = first run of each key (experiments execute); mem_hit = warm daemon, memory tier; etag_304 = If-None-Match revalidation (no bodies); warm_restart = restarted daemon over the same -cache-dir (disk_hits > 0, misses must be 0: zero re-runs); cold_restart = restarted daemon with the cache directory cleared (every key re-runs)",
      "cold": $(cat "$servetmp/cold.json"),
      "mem_hit_c1000": $(cat "$servetmp/memhit.json"),
      "etag_304_c1000": $(cat "$servetmp/etag.json"),
      "warm_restart_c1000": $(cat "$servetmp/warm_restart.json"),
      "cold_restart_c1000": $(cat "$servetmp/cold_restart.json")
    }
  }
}
EOF

echo "bench: BENCH_serve.json updated"
