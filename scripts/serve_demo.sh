#!/bin/sh
# serve_demo.sh — the serving-daemon demonstration: start memcond on an
# ephemeral port, fire 2000 concurrent experiment requests at it
# (concurrency 1000) spread over 2 experiments x 2 seeds = 4 distinct
# cache keys, and print the client summary plus the server's metrics.
#
# What it demonstrates:
#   - singleflight: 4 distinct keys cost 4 experiment runs, no matter
#     how many thousands of requests ask for them concurrently;
#   - byte-identity: memload hashes every response body and exits
#     non-zero if two responses for one key ever differ;
#   - graceful drain: SIGTERM lets in-flight work finish, exit 0.
set -eu

cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
memcond_pid=""
cleanup() {
    if [ -n "$memcond_pid" ]; then
        kill "$memcond_pid" 2>/dev/null || true
    fi
    rm -rf "$tmpdir"
}
trap cleanup EXIT

echo "== building memcond + memload =="
go build -o "$tmpdir/memcond" ./cmd/memcond
go build -o "$tmpdir/memload" ./cmd/memload

"$tmpdir/memcond" -addr 127.0.0.1:0 -addr-file "$tmpdir/addr" &
memcond_pid=$!
i=0
while [ ! -s "$tmpdir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "memcond never wrote its address file" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmpdir/addr")

echo "== 2000 requests, 1000 concurrent, 4 distinct keys =="
"$tmpdir/memload" -addr "$addr" \
    -exp fig4,fig6 -seeds 2 -n 2000 -c 1000 \
    -min-hits 1000 -show-metrics

echo "== draining (SIGTERM) =="
kill -TERM "$memcond_pid"
wait "$memcond_pid"
memcond_pid=""
echo "serve demo: ok"
