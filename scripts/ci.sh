#!/bin/sh
# ci.sh — the checks a change must pass before merging:
#   1. everything compiles (including examples, which are plain
#      package-main programs the test suite shells out to),
#   2. go vet is clean,
#   3. the full test suite passes,
#   4. the suite also passes under the race detector (-short trims the
#      slowest golden sweeps; they already ran race-free in step 3's
#      process because the experiment sweeps are parallel by default).
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race -short ./... =="
go test -race -short ./...

echo "ci: all checks passed"
