#!/bin/sh
# ci.sh — the checks a change must pass before merging:
#   1. every file is gofmt-clean,
#   2. everything compiles (including examples, which are plain
#      package-main programs the test suite shells out to),
#   3. go vet is clean,
#   4. the full test suite passes,
#   5. the suite also passes under the race detector (-short trims the
#      slowest golden sweeps; they already ran race-free in step 4's
#      process because the experiment sweeps are parallel by default),
#   6. the fleet simulation's sharded fan-out runs race-clean at the
#      small scale the -short race pass skips,
#   7. the hot-path benchmarks still run (single iteration smoke; see
#      scripts/bench.sh for real measurements),
#   8. both read-disturb co-simulation ids run race-instrumented at
#      workers 1/4/8 with byte-identical output, plus one mitigated
#      run exercising the -disturb flag path,
#   9. every committed reference report under testdata/reports/ is
#      regenerated and diffed at zero tolerance (report regression),
#  10. the serving daemon survives a race-instrumented end-to-end
#      smoke: memcond starts, memload observes cache hits with
#      byte-identical bodies, and SIGTERM drains cleanly,
#  11. the persistent cache survives a daemon restart: a second
#      race-instrumented memcond over the same -cache-dir serves the
#      first daemon's corpus from disk, byte-identical (memload
#      -digests), without re-running an experiment.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race -short ./... =="
go test -race -short ./...

# Fleet race smoke: the sharded fleet fan-out and the fleet CLI paths
# under the race detector. The full sharding-invariance sweep skips
# itself in -short (step 5), so this runs the small-scale fleet tests
# explicitly — they drive parallel.Map at workers 4 and 8.
echo "== fleet race smoke =="
go test -race -run 'TestRunLogInvariants|TestAnalyzeMatchesOracle' ./internal/fleet
go test -race -run 'TestFleet' ./cmd/memconsim

# Smoke-run the hot-path benchmarks (one iteration each): catches
# compile or runtime breakage in the bench harness without spending
# CI time on stable measurements. Real numbers come from
# scripts/bench.sh, which rewrites BENCH_hotpath.json,
# BENCH_engine.json and BENCH_fleet.json.
echo "== bench smoke =="
go test -run '^$' -bench 'BenchmarkReadBack|BenchmarkFailingCells|BenchmarkFailingCellsDense|BenchmarkDisturbScan|BenchmarkEngineRun|BenchmarkFleetRun' -benchtime=1x .

# Mapping sweep smoke: one chip-level experiment per vendor address
# mapping, race-instrumented and fanned out over 4 workers. Catches a
# mapping whose permutation breaks under concurrency (the bit-parallel
# kernel reads neighbour rows of whatever layout the mapping chose) and
# keeps the -mapping flag wired end to end.
echo "== mapping sweep smoke (race) =="
for pair in "fig3 default" "fig4 gray" "vrt linear" "profile mirror"; do
    set -- $pair
    go run -race ./cmd/memconsim -exp "$1" -mapping "$2" -scale 0.05 -parallel 4 > /dev/null
done

# Disturb sweep smoke: both read-disturb co-simulation ids,
# race-instrumented at workers 1/4/8, with one mitigated run. The
# workers-1 output is the reference; higher worker counts must be
# byte-identical (the same contract every other experiment honours).
echo "== disturb sweep smoke (race) =="
disturbtmp=$(mktemp -d)
trap 'rm -rf "$disturbtmp"' EXIT # replaced by the serve smoke's trap; rm'd below first
for id in disturb-exposure disturb-mitigation; do
    go run -race ./cmd/memconsim -exp "$id" -scale 0.05 -simtime 200000 \
        -mixes 3 -parallel 1 > "$disturbtmp/ref"
    for w in 4 8; do
        go run -race ./cmd/memconsim -exp "$id" -scale 0.05 -simtime 200000 \
            -mixes 3 -parallel "$w" > "$disturbtmp/out"
        cmp "$disturbtmp/ref" "$disturbtmp/out" || {
            echo "$id output differs between -parallel 1 and -parallel $w" >&2
            exit 1
        }
    done
done
go run -race ./cmd/memconsim -exp disturb-mitigation -disturb para -para-p 0.01 \
    -scale 0.05 -simtime 200000 -mixes 3 -parallel 4 > /dev/null
rm -rf "$disturbtmp"

# Report regression: re-run every experiment from its committed
# reference document and fail on any numeric drift. `make reports`
# regenerates the references after an intended change.
echo "== report regression =="
for f in testdata/reports/*.json; do
    go run ./cmd/memconsim -diff "$f" > /dev/null
done

# Serving smoke: build the daemon race-instrumented, run a small load
# through it (12 requests over 2 experiments = at least 10 cache
# outcomes beyond the 2 misses; memload exits non-zero on any
# byte-identity violation or if hits stay under -min-hits), then
# SIGTERM and require a clean drain (exit 0).
echo "== memcond serve smoke (race) =="
servetmp=$(mktemp -d)
trap 'rm -rf "$servetmp"' EXIT
go build -race -o "$servetmp/memcond" ./cmd/memcond
go build -o "$servetmp/memload" ./cmd/memload
"$servetmp/memcond" -addr 127.0.0.1:0 -addr-file "$servetmp/addr" &
memcond_pid=$!
i=0
while [ ! -s "$servetmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "memcond never wrote its address file" >&2
        kill "$memcond_pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
"$servetmp/memload" -addr "$(cat "$servetmp/addr")" \
    -exp fig4,minwi -n 12 -c 4 -min-hits 4
kill -TERM "$memcond_pid"
wait "$memcond_pid"

# Restart-persistence smoke: run a daemon with the disk tier, seed its
# corpus (recording per-key body digests), SIGTERM it, start a fresh
# daemon over the same directory and require that the load is answered
# from disk (-min-disk) with byte-identical bodies (the same -digests
# file verifies every key against the first run).
echo "== memcond restart persistence smoke (race) =="
start_memcond() {
    rm -f "$servetmp/addr"
    "$servetmp/memcond" -addr 127.0.0.1:0 -addr-file "$servetmp/addr" \
        -cache-dir "$servetmp/cache" &
    memcond_pid=$!
    i=0
    while [ ! -s "$servetmp/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "memcond never wrote its address file" >&2
            kill "$memcond_pid" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
}
start_memcond
"$servetmp/memload" -addr "$(cat "$servetmp/addr")" \
    -exp fig4,minwi -n 12 -c 4 -min-hits 4 -digests "$servetmp/digests"
kill -TERM "$memcond_pid"
wait "$memcond_pid"
start_memcond
"$servetmp/memload" -addr "$(cat "$servetmp/addr")" \
    -exp fig4,minwi -n 12 -c 4 -min-disk 1 -digests "$servetmp/digests"
kill -TERM "$memcond_pid"
wait "$memcond_pid"

echo "ci: all checks passed"
