#!/bin/sh
# ci.sh — the checks a change must pass before merging:
#   1. every file is gofmt-clean,
#   2. everything compiles (including examples, which are plain
#      package-main programs the test suite shells out to),
#   3. go vet is clean,
#   4. the full test suite passes,
#   5. the suite also passes under the race detector (-short trims the
#      slowest golden sweeps; they already ran race-free in step 4's
#      process because the experiment sweeps are parallel by default),
#   6. the fleet simulation's sharded fan-out runs race-clean at the
#      small scale the -short race pass skips,
#   7. the hot-path benchmarks still run (single iteration smoke; see
#      scripts/bench.sh for real measurements),
#   8. every committed reference report under testdata/reports/ is
#      regenerated and diffed at zero tolerance (report regression).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race -short ./... =="
go test -race -short ./...

# Fleet race smoke: the sharded fleet fan-out and the fleet CLI paths
# under the race detector. The full sharding-invariance sweep skips
# itself in -short (step 5), so this runs the small-scale fleet tests
# explicitly — they drive parallel.Map at workers 4 and 8.
echo "== fleet race smoke =="
go test -race -run 'TestRunLogInvariants|TestAnalyzeMatchesOracle' ./internal/fleet
go test -race -run 'TestFleet' ./cmd/memconsim

# Smoke-run the hot-path benchmarks (one iteration each): catches
# compile or runtime breakage in the bench harness without spending
# CI time on stable measurements. Real numbers come from
# scripts/bench.sh, which rewrites BENCH_hotpath.json,
# BENCH_engine.json and BENCH_fleet.json.
echo "== bench smoke =="
go test -run '^$' -bench 'BenchmarkReadBack|BenchmarkFailingCells|BenchmarkEngineRun|BenchmarkFleetRun' -benchtime=1x .

# Report regression: re-run every experiment from its committed
# reference document and fail on any numeric drift. `make reports`
# regenerates the references after an intended change.
echo "== report regression =="
for f in testdata/reports/*.json; do
    go run ./cmd/memconsim -diff "$f" > /dev/null
done

echo "ci: all checks passed"
