module memcon

go 1.22
