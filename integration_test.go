package memcon

import (
	"bytes"
	"testing"

	"memcon/internal/trace"
)

// Full-stack integration: a generated workload runs through the
// full-fidelity MEMCON system with every extension enabled — silent
// writes, neighbour re-testing, remap mitigation — against the silicon
// model, and the reliability guarantee holds end to end.
func TestIntegrationFullStack(t *testing.T) {
	geom := DefaultGeometry()
	geom.BanksPerChip = 2
	geom.RowsPerBank = 512
	chip, err := NewChip(geom, 99)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(DefaultConfig(), chip)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetContentSource(NewRepeatingContent(0.3, 5))
	sys.EnableSilentWriteDetection()
	sys.EnableNeighborRetest()
	if err := sys.EnableRemapMitigation(8, 2); err != nil {
		t.Fatal(err)
	}

	// A scaled-down application trace mapped onto the chip.
	app, err := AppByName("BlurMotion")
	if err != nil {
		t.Fatal(err)
	}
	tr := app.Generate(7, 0.05)
	// Clamp pages into the module.
	total := uint32(geom.TotalRows())
	for i := range tr.Events {
		tr.Events[i].Page %= total
	}
	tr.Sort()

	rep, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsCompleted == 0 {
		t.Fatal("integration run completed no tests")
	}
	if got := sys.UndetectedFailures(); got != 0 {
		t.Errorf("reliability guarantee broken: %d undetected failures", got)
	}
	if rep.RefreshReduction() <= 0 {
		t.Errorf("no refresh reduction achieved: %v", rep.RefreshReduction())
	}
	if rep.RefreshReduction() >= rep.UpperBoundReduction() {
		t.Errorf("reduction %v exceeds the physical upper bound %v",
			rep.RefreshReduction(), rep.UpperBoundReduction())
	}
	t.Logf("integration: reduction %.1f%%, coverage %.1f%%, tests %d (failed %d), silent %d, retests %d, remapped %d",
		100*rep.RefreshReduction(), 100*rep.LoRefCoverage(),
		rep.TestsCompleted, rep.TestsFailed, sys.SilentWrites(),
		sys.NeighborRetests(), sys.RemappedRows())
}

// Integration: the read-aware extension stacks with a real engine run.
func TestIntegrationReadAwareStacking(t *testing.T) {
	app, err := AppByName("FinalMaster")
	if err != nil {
		t.Fatal(err)
	}
	writes := app.Generate(11, 0.05)
	reads := app.GenerateReads(11, 0.05)
	rep, err := Run(writes, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ReadSkipAnalysis(reads, 64*1000*1000)
	if err != nil {
		t.Fatal(err)
	}
	combined := CombinedSavings(rep, rs)
	if combined < rep.RefreshReduction() {
		t.Errorf("stacking read-skip lowered savings: %v vs %v", combined, rep.RefreshReduction())
	}
	if combined > 1 {
		t.Errorf("combined savings %v exceeds 1", combined)
	}
}

// Integration: trace round-trips through both formats feed identical
// engine results.
func TestIntegrationTraceFormatsEquivalent(t *testing.T) {
	app, _ := AppByName("BlurMotion")
	tr := app.Generate(3, 0.03)
	repA, err := Run(tr, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the compact format.
	var buf bytes.Buffer
	if err := tr.WriteCompact(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.ReadCompact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Run(tr2, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if repA.RefreshOps != repB.RefreshOps || repA.TestsCompleted != repB.TestsCompleted {
		t.Error("round-tripped trace produced different engine results")
	}
}
