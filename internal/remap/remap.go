// Package remap implements the third mitigation substrate the paper
// lists (§1: failures are mitigated "via a high refresh rate, ECC,
// and/or remapping of faulty cells to reliable memory regions"):
// controller-side row remapping. Rows that keep failing online tests —
// rows whose content will practically always need HI-REF — can instead
// be remapped to spare rows in a reliable region, freeing them from the
// aggressive refresh rate entirely.
//
// The table models the memory-controller indirection: a bounded set of
// (faulty row -> spare row) entries consulted on every access. Spare
// rows come from a reserved region, like the Copy-and-Compare parking
// region but permanent.
package remap

import (
	"fmt"

	"memcon/internal/dram"
)

// Table is the controller-side remap table.
type Table struct {
	geom dram.Geometry
	// capacity bounds the number of remapped rows (CAM size).
	capacity int
	// spares lists unused spare rows, drawn from the reserved region.
	spares []dram.RowAddress
	// forward maps faulty rows to their spares.
	forward map[dram.RowAddress]dram.RowAddress
	// taken marks spares in use (for Reverse lookups).
	reverse map[dram.RowAddress]dram.RowAddress
}

// New builds a remap table with sparesPerBank spare rows reserved at
// the top of each bank and a CAM of the given capacity (0 means as many
// entries as spares).
func New(geom dram.Geometry, sparesPerBank, capacity int) (*Table, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if sparesPerBank <= 0 || sparesPerBank >= geom.RowsPerBank {
		return nil, fmt.Errorf("remap: spares per bank %d outside (0,%d)", sparesPerBank, geom.RowsPerBank)
	}
	totalSpares := sparesPerBank * geom.BanksPerChip
	if capacity <= 0 || capacity > totalSpares {
		capacity = totalSpares
	}
	t := &Table{
		geom:     geom,
		capacity: capacity,
		forward:  make(map[dram.RowAddress]dram.RowAddress),
		reverse:  make(map[dram.RowAddress]dram.RowAddress),
	}
	for b := 0; b < geom.BanksPerChip; b++ {
		for i := 0; i < sparesPerBank; i++ {
			t.spares = append(t.spares, dram.RowAddress{Bank: b, Row: geom.RowsPerBank - 1 - i})
		}
	}
	return t, nil
}

// SpareRegionStart returns the first reserved row index within a bank;
// rows at or above it must not be used as program memory.
func (t *Table) SpareRegionStart() int {
	return t.geom.RowsPerBank - len(t.spares)/t.geom.BanksPerChip
}

// Len returns the number of active remappings.
func (t *Table) Len() int { return len(t.forward) }

// FreeSpares returns the number of unused spare rows.
func (t *Table) FreeSpares() int { return len(t.spares) }

// Resolve returns the physical target of an access to row a: the spare
// when a is remapped, a itself otherwise.
func (t *Table) Resolve(a dram.RowAddress) dram.RowAddress {
	if spare, ok := t.forward[a]; ok {
		return spare
	}
	return a
}

// IsRemapped reports whether row a has been remapped.
func (t *Table) IsRemapped(a dram.RowAddress) bool {
	_, ok := t.forward[a]
	return ok
}

// Remap redirects faulty row a to a spare row in the same bank (same
// bank keeps timing behaviour identical). It fails when the row is in
// the spare region, already remapped, the CAM is full, or the bank has
// no free spare.
func (t *Table) Remap(a dram.RowAddress) (dram.RowAddress, error) {
	if !t.geom.ValidAddress(a) {
		return dram.RowAddress{}, fmt.Errorf("remap: invalid address %+v", a)
	}
	if a.Row >= t.SpareRegionStart() {
		return dram.RowAddress{}, fmt.Errorf("remap: row %+v is inside the spare region", a)
	}
	if _, ok := t.forward[a]; ok {
		return dram.RowAddress{}, fmt.Errorf("remap: row %+v already remapped", a)
	}
	if len(t.forward) >= t.capacity {
		return dram.RowAddress{}, fmt.Errorf("remap: table full (%d entries)", t.capacity)
	}
	for i, spare := range t.spares {
		if spare.Bank == a.Bank {
			t.spares = append(t.spares[:i], t.spares[i+1:]...)
			t.forward[a] = spare
			t.reverse[spare] = a
			return spare, nil
		}
	}
	return dram.RowAddress{}, fmt.Errorf("remap: bank %d has no free spare rows", a.Bank)
}

// Unmap releases a remapping (e.g. after the faulty row's content
// changed and it now tests clean), returning its spare to the pool.
func (t *Table) Unmap(a dram.RowAddress) error {
	spare, ok := t.forward[a]
	if !ok {
		return fmt.Errorf("remap: row %+v not remapped", a)
	}
	delete(t.forward, a)
	delete(t.reverse, spare)
	t.spares = append(t.spares, spare)
	return nil
}

// OverheadFraction returns the capacity lost to the spare region.
func (t *Table) OverheadFraction() float64 {
	perBank := float64(t.geom.RowsPerBank - t.SpareRegionStart())
	return perBank / float64(t.geom.RowsPerBank)
}

// Policy decides when MEMCON should remap instead of holding a row at
// HI-REF: after FailThreshold consecutive failed tests, the row's
// content is evidently always aggressive, and a remap (one-time copy
// cost) beats refreshing at 4x forever.
type Policy struct {
	Table *Table
	// FailThreshold is the consecutive-failure count that triggers a
	// remap.
	FailThreshold int
	fails         map[dram.RowAddress]int
	remapped      int
}

// NewPolicy builds a policy over a table.
func NewPolicy(t *Table, failThreshold int) (*Policy, error) {
	if failThreshold < 1 {
		return nil, fmt.Errorf("remap: fail threshold must be >= 1, got %d", failThreshold)
	}
	return &Policy{Table: t, FailThreshold: failThreshold, fails: make(map[dram.RowAddress]int)}, nil
}

// RecordTest feeds a test outcome for row a; it returns the spare when
// the policy decided to remap (and did).
func (p *Policy) RecordTest(a dram.RowAddress, passed bool) (remappedTo *dram.RowAddress) {
	if passed {
		delete(p.fails, a)
		return nil
	}
	p.fails[a]++
	if p.fails[a] >= p.FailThreshold && !p.Table.IsRemapped(a) {
		if spare, err := p.Table.Remap(a); err == nil {
			p.remapped++
			delete(p.fails, a)
			return &spare
		}
	}
	return nil
}

// Remapped returns the number of rows the policy remapped.
func (p *Policy) Remapped() int { return p.remapped }
