package remap

import (
	"testing"

	"memcon/internal/dram"
)

func testGeometry() dram.Geometry {
	return dram.Geometry{
		Ranks:         1,
		ChipsPerRank:  1,
		BanksPerChip:  2,
		RowsPerBank:   64,
		ColsPerRow:    64,
		RedundantCols: 0,
	}
}

func TestNewValidation(t *testing.T) {
	g := testGeometry()
	if _, err := New(dram.Geometry{}, 4, 0); err == nil {
		t.Error("invalid geometry accepted")
	}
	if _, err := New(g, 0, 0); err == nil {
		t.Error("zero spares accepted")
	}
	if _, err := New(g, g.RowsPerBank, 0); err == nil {
		t.Error("all-rows-spare accepted")
	}
}

func TestRemapResolveUnmap(t *testing.T) {
	tab, err := New(testGeometry(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := dram.RowAddress{Bank: 0, Row: 10}
	if tab.IsRemapped(a) {
		t.Error("fresh table claims remapping")
	}
	if got := tab.Resolve(a); got != a {
		t.Errorf("unmapped resolve = %+v, want identity", got)
	}
	spare, err := tab.Remap(a)
	if err != nil {
		t.Fatal(err)
	}
	if spare.Bank != a.Bank {
		t.Errorf("spare in bank %d, want same bank %d", spare.Bank, a.Bank)
	}
	if spare.Row < tab.SpareRegionStart() {
		t.Errorf("spare row %d below spare region %d", spare.Row, tab.SpareRegionStart())
	}
	if got := tab.Resolve(a); got != spare {
		t.Errorf("resolve = %+v, want %+v", got, spare)
	}
	if tab.Len() != 1 {
		t.Errorf("len = %d, want 1", tab.Len())
	}
	if err := tab.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if tab.Resolve(a) != a {
		t.Error("unmap did not restore identity")
	}
	if tab.FreeSpares() != 8 {
		t.Errorf("spares after unmap = %d, want 8", tab.FreeSpares())
	}
}

func TestRemapErrors(t *testing.T) {
	tab, _ := New(testGeometry(), 2, 0)
	a := dram.RowAddress{Bank: 0, Row: 1}
	if _, err := tab.Remap(dram.RowAddress{Bank: -1, Row: 0}); err == nil {
		t.Error("invalid address accepted")
	}
	if _, err := tab.Remap(dram.RowAddress{Bank: 0, Row: 63}); err == nil {
		t.Error("spare-region row accepted")
	}
	if _, err := tab.Remap(a); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Remap(a); err == nil {
		t.Error("double remap accepted")
	}
	// Exhaust bank 0's spares (2 per bank).
	if _, err := tab.Remap(dram.RowAddress{Bank: 0, Row: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Remap(dram.RowAddress{Bank: 0, Row: 3}); err == nil {
		t.Error("bank spare exhaustion not detected")
	}
	// Other bank still has spares.
	if _, err := tab.Remap(dram.RowAddress{Bank: 1, Row: 3}); err != nil {
		t.Errorf("other bank rejected: %v", err)
	}
	if err := tab.Unmap(dram.RowAddress{Bank: 1, Row: 50}); err == nil {
		t.Error("unmap of unmapped row accepted")
	}
}

func TestCapacityBound(t *testing.T) {
	tab, _ := New(testGeometry(), 4, 1)
	if _, err := tab.Remap(dram.RowAddress{Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Remap(dram.RowAddress{Bank: 1, Row: 1}); err == nil {
		t.Error("CAM capacity not enforced")
	}
}

func TestOverheadFraction(t *testing.T) {
	tab, _ := New(testGeometry(), 4, 0)
	if got := tab.OverheadFraction(); got != 4.0/64.0 {
		t.Errorf("overhead = %v, want %v", got, 4.0/64.0)
	}
}

func TestPolicyThreshold(t *testing.T) {
	tab, _ := New(testGeometry(), 4, 0)
	p, err := NewPolicy(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := dram.RowAddress{Bank: 0, Row: 7}
	if got := p.RecordTest(a, false); got != nil {
		t.Error("remapped after one failure")
	}
	if got := p.RecordTest(a, false); got != nil {
		t.Error("remapped after two failures")
	}
	if got := p.RecordTest(a, false); got == nil {
		t.Fatal("not remapped after threshold failures")
	}
	if p.Remapped() != 1 {
		t.Errorf("remapped count = %d, want 1", p.Remapped())
	}
	if !tab.IsRemapped(a) {
		t.Error("table does not show the remap")
	}
}

func TestPolicyPassResetsStreak(t *testing.T) {
	tab, _ := New(testGeometry(), 4, 0)
	p, _ := NewPolicy(tab, 2)
	a := dram.RowAddress{Bank: 0, Row: 9}
	p.RecordTest(a, false)
	p.RecordTest(a, true) // clean test resets the streak
	if got := p.RecordTest(a, false); got != nil {
		t.Error("streak not reset by a passing test")
	}
	if got := p.RecordTest(a, false); got == nil {
		t.Error("second consecutive failure after reset should remap")
	}
}

func TestNewPolicyValidation(t *testing.T) {
	tab, _ := New(testGeometry(), 4, 0)
	if _, err := NewPolicy(tab, 0); err == nil {
		t.Error("zero threshold accepted")
	}
}
