package costmodel

import (
	"fmt"

	"memcon/internal/dram"
)

// Energy-domain cost-benefit analysis. The paper's §3.3 model is
// latency-denominated; repeating it in energy reveals a different
// crossover, because a test moves two to three full rows of data
// (hundreds of column accesses) while a refresh is a single internal
// activate/precharge. MEMCON deployments that optimize for energy
// should amortize over the ENERGY MinWriteInterval, which is several
// times the latency one.

// EnergyCosts holds the per-operation energies the analysis needs, in
// nanojoules (see the energy package for a full budget).
type EnergyCosts struct {
	// RefreshNJ is the energy of refreshing one row.
	RefreshNJ float64
	// ActPreNJ is an activate+precharge pair.
	ActPreNJ float64
	// ColumnNJ is one cache-block column access.
	ColumnNJ float64
}

// DefaultEnergyCosts returns DDR3-representative values consistent with
// the energy package's budget.
func DefaultEnergyCosts() EnergyCosts {
	return EnergyCosts{RefreshNJ: 16, ActPreNJ: 20, ColumnNJ: 6}
}

// TestEnergyNJ returns the energy of one test in the given mode: each
// row cycle is an activation plus BlocksPerRow column accesses.
func (e EnergyCosts) TestEnergyNJ(t dram.Timing, mode TestMode) float64 {
	rowCycle := e.ActPreNJ + float64(t.BlocksPerRow)*e.ColumnNJ
	cycles := 2.0
	if mode == CopyCompare {
		cycles = 3.0
	}
	return cycles * rowCycle
}

// EnergyMinWriteInterval returns the smallest interval between writes
// at which testing saves energy versus staying at HI-REF: the test's
// energy must be repaid by the refresh operations eliminated while the
// row runs at LO-REF instead of HI-REF.
func (c Config) EnergyMinWriteInterval(e EnergyCosts) (dram.Nanoseconds, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if e.RefreshNJ <= 0 {
		return 0, fmt.Errorf("costmodel: refresh energy must be positive, got %v", e.RefreshNJ)
	}
	testNJ := e.TestEnergyNJ(c.Timing, c.Mode)
	step := c.HiRefInterval
	limit := dram.Nanoseconds(1) << 42
	for t := step; t <= limit; t += step {
		hiOps := float64(t / c.HiRefInterval)
		loOps := float64(t/c.LoRefInterval - 1)
		if loOps < 0 {
			loOps = 0
		}
		if testNJ+loOps*e.RefreshNJ <= hiOps*e.RefreshNJ {
			return t, nil
		}
	}
	return 0, fmt.Errorf("costmodel: no energy crossover found below %d ns", limit)
}
