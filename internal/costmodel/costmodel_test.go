package costmodel

import (
	"math"
	"testing"

	"memcon/internal/dram"
)

func TestAppendixCosts(t *testing.T) {
	b := Costs(dram.DDR31600())
	if b.RowCycle != 534 {
		t.Errorf("RowCycle = %d, want 534", b.RowCycle)
	}
	if b.RefreshCost != 39 {
		t.Errorf("RefreshCost = %d, want 39", b.RefreshCost)
	}
	if b.ReadCompare != 1068 {
		t.Errorf("ReadCompare = %d, want 1068", b.ReadCompare)
	}
	if b.CopyCompare != 1602 {
		t.Errorf("CopyCompare = %d, want 1602", b.CopyCompare)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := DefaultConfig()
	c.HiRefInterval = 0
	if err := c.Validate(); err == nil {
		t.Error("zero HI-REF accepted")
	}
	c = DefaultConfig()
	c.LoRefInterval = c.HiRefInterval
	if err := c.Validate(); err == nil {
		t.Error("LO-REF == HI-REF accepted")
	}
	c = DefaultConfig()
	c.Mode = TestMode(99)
	if err := c.Validate(); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestTestModeString(t *testing.T) {
	if ReadCompare.String() != "Read and Compare" {
		t.Errorf("got %q", ReadCompare.String())
	}
	if CopyCompare.String() != "Copy and Compare" {
		t.Errorf("got %q", CopyCompare.String())
	}
	if TestMode(7).String() == "" {
		t.Error("unknown mode should still stringify")
	}
}

func TestTestCostPerMode(t *testing.T) {
	c := DefaultConfig()
	if got := c.TestCost(); got != 1068 {
		t.Errorf("ReadCompare cost = %d, want 1068", got)
	}
	c.Mode = CopyCompare
	if got := c.TestCost(); got != 1602 {
		t.Errorf("CopyCompare cost = %d, want 1602", got)
	}
}

func TestMitigationCost(t *testing.T) {
	c := DefaultConfig()
	if got := c.MitigationCost(0); got != 0 {
		t.Errorf("MitigationCost(0) = %d", got)
	}
	if got := c.MitigationCost(-5); got != 0 {
		t.Errorf("MitigationCost(-5) = %d", got)
	}
	// Each mitigation op is one per-row refresh (39 ns at DDR3-1600).
	if got := c.MitigationCost(1000); got != 1000*39 {
		t.Errorf("MitigationCost(1000) = %d, want %d", got, 1000*39)
	}
}

func TestCostAccumulation(t *testing.T) {
	c := DefaultConfig()
	// At t=0: HI-REF has refreshed 0 times, MEMCON has paid the test.
	if got := c.HiRefCost(0); got != 0 {
		t.Errorf("HiRefCost(0) = %d", got)
	}
	if got := c.MemconCost(0); got != 1068 {
		t.Errorf("MemconCost(0) = %d, want 1068", got)
	}
	// After 64 ms: HI-REF refreshed 4 times (156 ns); MEMCON has not yet
	// refreshed — the first LO-REF window is the test window itself.
	if got := c.HiRefCost(64 * dram.Millisecond); got != 4*39 {
		t.Errorf("HiRefCost(64ms) = %d, want 156", got)
	}
	if got := c.MemconCost(64 * dram.Millisecond); got != 1068 {
		t.Errorf("MemconCost(64ms) = %d, want 1068", got)
	}
	// After 128 ms MEMCON has refreshed once.
	if got := c.MemconCost(128 * dram.Millisecond); got != 1068+39 {
		t.Errorf("MemconCost(128ms) = %d, want 1107", got)
	}
	// Negative time clamps to zero accumulation.
	if got := c.HiRefCost(-5); got != 0 {
		t.Errorf("HiRefCost(-5) = %d", got)
	}
	if got := c.MemconCost(-5); got != 0 {
		t.Errorf("MemconCost(-5) = %d", got)
	}
}

// The headline §3.3 result: MinWriteInterval is 560 ms for
// Read-and-Compare and 864 ms for Copy-and-Compare at 64 ms LO-REF, and
// 480/448 ms at 128/256 ms LO-REF.
func TestMinWriteIntervalMatchesPaper(t *testing.T) {
	cases := []struct {
		mode   TestMode
		loRef  dram.Nanoseconds
		wantMs int64
	}{
		{ReadCompare, 64 * dram.Millisecond, 560},
		{CopyCompare, 64 * dram.Millisecond, 864},
		{ReadCompare, 128 * dram.Millisecond, 480},
		{ReadCompare, 256 * dram.Millisecond, 448},
	}
	for _, tc := range cases {
		c := DefaultConfig()
		c.Mode = tc.mode
		c.LoRefInterval = tc.loRef
		got, err := c.MinWriteInterval()
		if err != nil {
			t.Fatalf("%s @%dms: %v", tc.mode, tc.loRef/dram.Millisecond, err)
		}
		gotMs := got / dram.Millisecond
		if gotMs != tc.wantMs {
			t.Errorf("%s @LO-REF %dms: MinWriteInterval = %d ms, want %d ms",
				tc.mode, tc.loRef/dram.Millisecond, gotMs, tc.wantMs)
		}
	}
}

func TestMinWriteIntervalInvalidConfig(t *testing.T) {
	c := DefaultConfig()
	c.LoRefInterval = c.HiRefInterval / 2
	if _, err := c.MinWriteInterval(); err == nil {
		t.Error("invalid config accepted")
	}
}

// At the crossover MEMCON is at most as expensive as HI-REF, and one
// HI-REF step earlier it is strictly more expensive.
func TestMinWriteIntervalIsExactCrossover(t *testing.T) {
	c := DefaultConfig()
	mwi, err := c.MinWriteInterval()
	if err != nil {
		t.Fatal(err)
	}
	if c.MemconCost(mwi) > c.HiRefCost(mwi) {
		t.Errorf("at MWI, MEMCON (%d) still costs more than HI-REF (%d)",
			c.MemconCost(mwi), c.HiRefCost(mwi))
	}
	before := mwi - c.HiRefInterval
	if c.MemconCost(before) <= c.HiRefCost(before) {
		t.Errorf("one step before MWI, MEMCON (%d) already cheaper than HI-REF (%d)",
			c.MemconCost(before), c.HiRefCost(before))
	}
}

// Longer LO-REF intervals amortize faster: MinWriteInterval is
// non-increasing in the LO-REF interval (448 <= 480 <= 560 in the paper).
func TestMinWriteIntervalMonotoneInLoRef(t *testing.T) {
	prev := int64(math.MaxInt64)
	for _, lo := range []dram.Nanoseconds{64, 128, 256, 512} {
		c := DefaultConfig()
		c.LoRefInterval = lo * dram.Millisecond
		got, err := c.MinWriteInterval()
		if err != nil {
			t.Fatal(err)
		}
		if int64(got) > prev {
			t.Errorf("MWI increased when LO-REF grew to %d ms", lo)
		}
		prev = int64(got)
	}
}

func TestCurve(t *testing.T) {
	c := DefaultConfig()
	pts := c.Curve(200*dram.Millisecond, 16*dram.Millisecond)
	if len(pts) != 13 { // 0..192 ms inclusive at 16 ms steps
		t.Fatalf("curve points = %d, want 13", len(pts))
	}
	if pts[0].Time != 0 || pts[0].Memcon != 1068 {
		t.Errorf("first point = %+v", pts[0])
	}
	// Both curves are non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].HiRef < pts[i-1].HiRef || pts[i].Memcon < pts[i-1].Memcon {
			t.Errorf("cost decreased at point %d", i)
		}
	}
	// Default step falls back to HI-REF interval.
	pts2 := c.Curve(32*dram.Millisecond, 0)
	if len(pts2) != 3 {
		t.Errorf("default-step curve points = %d, want 3", len(pts2))
	}
}

func TestCopyCompareReservedRows(t *testing.T) {
	// Appendix example: 512 rows/bank, 8 banks, 262144 rows -> 1.5625%.
	got := CopyCompareReservedRows(512, 8, 262144)
	if math.Abs(got-0.015625) > 1e-12 {
		t.Errorf("reserved fraction = %v, want 0.015625", got)
	}
	if got := CopyCompareReservedRows(1, 1, 0); got != 0 {
		t.Errorf("zero rows should give 0, got %v", got)
	}
}
