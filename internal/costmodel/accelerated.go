package costmodel

import (
	"fmt"

	"memcon/internal/dram"
)

// The paper's footnote 6 lists mechanisms that would make the
// Copy-and-Compare mode "significantly faster": performing the copy
// entirely inside DRAM (RowClone, LISA) and performing the comparison
// inside DRAM or the logic layer of 3D-stacked memory. This file models
// those variants so their effect on MinWriteInterval can be quantified —
// the paper leaves the evaluation as future work; we implement it.

// Accel selects a copy/compare acceleration variant.
type Accel int

// Acceleration variants.
const (
	// NoAccel is the baseline: copies and comparisons move every cache
	// block through the memory controller.
	NoAccel Accel = iota
	// RowCloneCopy performs the row copy inside DRAM: the copy costs
	// roughly two back-to-back activations instead of a full read plus
	// write through the channel.
	RowCloneCopy
	// InDRAMCompare additionally performs the comparison inside the
	// DRAM/logic layer: the post-test read-back is replaced by an
	// in-memory comparison whose result (one bit per row) is returned.
	InDRAMCompare
)

// String names the variant.
func (a Accel) String() string {
	switch a {
	case NoAccel:
		return "baseline"
	case RowCloneCopy:
		return "rowclone-copy"
	case InDRAMCompare:
		return "in-dram-compare"
	default:
		return fmt.Sprintf("Accel(%d)", int(a))
	}
}

// AcceleratedTestCost returns the Copy-and-Compare test latency under
// the given acceleration.
//
//   - baseline: 3 row cycles (two reads + one write) = 1602 ns.
//   - RowClone copy: the initial read+write pair collapses into an
//     in-DRAM copy of two activations (tRAS + tRAS + tRP); the post-test
//     read-back through the controller remains (1 row cycle).
//   - in-DRAM compare: the read-back also collapses; the whole test is
//     the in-DRAM copy plus an in-DRAM comparison, each about two
//     activations.
func AcceleratedTestCost(t dram.Timing, a Accel) (dram.Nanoseconds, error) {
	inDRAMOp := 2*t.TRAS + t.TRP // two back-to-back activations, then precharge
	switch a {
	case NoAccel:
		return t.CopyCompareCost(), nil
	case RowCloneCopy:
		return inDRAMOp + t.RowCycle(), nil
	case InDRAMCompare:
		return 2 * inDRAMOp, nil
	default:
		return 0, fmt.Errorf("costmodel: unknown acceleration %d", int(a))
	}
}

// AcceleratedConfig returns a Copy-and-Compare cost configuration whose
// test cost reflects the acceleration, for MinWriteInterval analysis.
type AcceleratedConfig struct {
	Config
	Accel    Accel
	testCost dram.Nanoseconds
}

// NewAcceleratedConfig builds the configuration.
func NewAcceleratedConfig(base Config, a Accel) (AcceleratedConfig, error) {
	base.Mode = CopyCompare
	if err := base.Validate(); err != nil {
		return AcceleratedConfig{}, err
	}
	cost, err := AcceleratedTestCost(base.Timing, a)
	if err != nil {
		return AcceleratedConfig{}, err
	}
	return AcceleratedConfig{Config: base, Accel: a, testCost: cost}, nil
}

// TestCost returns the accelerated test cost.
func (c AcceleratedConfig) TestCost() dram.Nanoseconds { return c.testCost }

// MemconCost mirrors Config.MemconCost with the accelerated test cost.
func (c AcceleratedConfig) MemconCost(t dram.Nanoseconds) dram.Nanoseconds {
	if t < 0 {
		return 0
	}
	refreshes := t/c.LoRefInterval - 1
	if refreshes < 0 {
		refreshes = 0
	}
	return c.testCost + refreshes*c.Timing.RefreshCost()
}

// MinWriteInterval returns the amortization crossover under the
// accelerated test cost.
func (c AcceleratedConfig) MinWriteInterval() (dram.Nanoseconds, error) {
	step := c.HiRefInterval
	limit := dram.Nanoseconds(1) << 40
	for t := step; t <= limit; t += step {
		if c.MemconCost(t) <= c.HiRefCost(t) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("costmodel: no crossover found below %d ns", limit)
}
