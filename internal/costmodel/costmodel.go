// Package costmodel implements the paper's analytic cost-benefit model
// of online testing (§3.3, Fig. 6, and the appendix). The cost of a
// configuration is the accumulated per-row latency it spends on refresh
// and testing over time:
//
//   - HI-REF refreshes a row every HiRefInterval (16 ms) at 39 ns per
//     refresh (tRAS+tRP).
//   - MEMCON pays a one-time testing latency (1068 ns Read-and-Compare
//     or 1602 ns Copy-and-Compare) and then refreshes at the LO-REF
//     interval (64/128/256 ms).
//
// MinWriteInterval is the earliest time at which MEMCON's accumulated
// cost drops below HI-REF's — the minimum interval between writes to a
// row that amortizes a test.
package costmodel

import (
	"fmt"

	"memcon/internal/dram"
)

// TestMode selects where the in-test row's content is buffered during a
// test (§3.3).
type TestMode int

const (
	// ReadCompare buffers the row inside the memory controller: two full
	// row reads (before and after the idle test window).
	ReadCompare TestMode = iota
	// CopyCompare copies the row into a reserved DRAM region and keeps
	// only ECC in the controller: two full row reads plus one row write.
	CopyCompare
)

// String returns the paper's name for the mode.
func (m TestMode) String() string {
	switch m {
	case ReadCompare:
		return "Read and Compare"
	case CopyCompare:
		return "Copy and Compare"
	default:
		return fmt.Sprintf("TestMode(%d)", int(m))
	}
}

// Config parameterizes the cost model.
type Config struct {
	// Timing supplies the DRAM latency building blocks.
	Timing dram.Timing
	// HiRefInterval is the aggressive (baseline) refresh interval.
	HiRefInterval dram.Nanoseconds
	// LoRefInterval is the relaxed refresh interval used after a row
	// tests clean.
	LoRefInterval dram.Nanoseconds
	// Mode selects the test mode.
	Mode TestMode
}

// DefaultConfig returns the paper's primary configuration: DDR3-1600,
// HI-REF 16 ms, LO-REF 64 ms, Read-and-Compare.
func DefaultConfig() Config {
	return Config{
		Timing:        dram.DDR31600(),
		HiRefInterval: dram.RefreshWindowAggressive,
		LoRefInterval: dram.RefreshWindowDefault,
		Mode:          ReadCompare,
	}
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	if c.HiRefInterval <= 0 {
		return fmt.Errorf("costmodel: HI-REF interval must be positive, got %d", c.HiRefInterval)
	}
	if c.LoRefInterval <= c.HiRefInterval {
		return fmt.Errorf("costmodel: LO-REF interval (%d) must exceed HI-REF interval (%d)", c.LoRefInterval, c.HiRefInterval)
	}
	if c.Mode != ReadCompare && c.Mode != CopyCompare {
		return fmt.Errorf("costmodel: unknown test mode %d", c.Mode)
	}
	return nil
}

// TestCost returns the one-time latency of a test in the configured mode.
func (c Config) TestCost() dram.Nanoseconds {
	if c.Mode == CopyCompare {
		return c.Timing.CopyCompareCost()
	}
	return c.Timing.ReadCompareCost()
}

// HiRefCost returns HI-REF's accumulated per-row refresh latency over
// elapsed time t: one refresh (39 ns) per elapsed HiRefInterval.
func (c Config) HiRefCost(t dram.Nanoseconds) dram.Nanoseconds {
	if t < 0 {
		return 0
	}
	return (t / c.HiRefInterval) * c.Timing.RefreshCost()
}

// MemconCost returns MEMCON's accumulated per-row latency over elapsed
// time t: the one-time test cost up front, then one refresh per elapsed
// LoRefInterval starting at 2*LoRefInterval. The first LO-REF window IS
// the test window — the row is deliberately kept idle through it and the
// test's final read-back recharges the row — so the first scheduled
// LO-REF refresh lands one window later. This reproduces the paper's
// Fig. 6 crossovers exactly (560/864 ms at 64 ms LO-REF, 480/448 ms at
// 128/256 ms).
func (c Config) MemconCost(t dram.Nanoseconds) dram.Nanoseconds {
	if t < 0 {
		return 0
	}
	refreshes := t/c.LoRefInterval - 1
	if refreshes < 0 {
		refreshes = 0
	}
	return c.TestCost() + refreshes*c.Timing.RefreshCost()
}

// MitigationCost returns the accumulated latency of ops extra
// neighbour-refresh operations issued by a RowHammer mitigation policy:
// each is one per-row refresh (the same 39 ns the refresh terms above
// price), which is how mitigation overhead enters the shared currency of
// the cost model.
func (c Config) MitigationCost(ops int64) dram.Nanoseconds {
	if ops <= 0 {
		return 0
	}
	return dram.Nanoseconds(ops) * c.Timing.RefreshCost()
}

// CurvePoint is one sample of the Fig. 6 accumulated-cost curves.
type CurvePoint struct {
	Time   dram.Nanoseconds
	HiRef  dram.Nanoseconds
	Memcon dram.Nanoseconds
}

// Curve samples both accumulated-cost curves from 0 to horizon at the
// given step, reproducing Fig. 6's series.
func (c Config) Curve(horizon, step dram.Nanoseconds) []CurvePoint {
	if step <= 0 {
		step = c.HiRefInterval
	}
	var pts []CurvePoint
	for t := dram.Nanoseconds(0); t <= horizon; t += step {
		pts = append(pts, CurvePoint{Time: t, HiRef: c.HiRefCost(t), Memcon: c.MemconCost(t)})
	}
	return pts
}

// MinWriteInterval returns the smallest time t (quantized to the HI-REF
// interval, the natural resolution of the crossover) at which MEMCON's
// accumulated cost is at or below HI-REF's. This is the minimum interval
// between two writes to a row that amortizes the cost of testing.
func (c Config) MinWriteInterval() (dram.Nanoseconds, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	// The crossover is bounded: per HI-REF interval, HI-REF accrues
	// RefreshCost while MEMCON accrues at most RefreshCost *
	// Hi/Lo ratio < RefreshCost, so the gap closes by at least
	// RefreshCost*(1 - Hi/Lo) per interval. Search stepwise.
	step := c.HiRefInterval
	limit := dram.Nanoseconds(1) << 40 // ~18 minutes; far beyond any real crossover
	for t := step; t <= limit; t += step {
		if c.MemconCost(t) <= c.HiRefCost(t) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("costmodel: no crossover found below %d ns", limit)
}

// Breakdown reports the paper's headline appendix numbers for a timing
// set, used for documentation and verification.
type Breakdown struct {
	RowCycle    dram.Nanoseconds
	RefreshCost dram.Nanoseconds
	ReadCompare dram.Nanoseconds
	CopyCompare dram.Nanoseconds
}

// Costs returns the latency building blocks of the model.
func Costs(t dram.Timing) Breakdown {
	return Breakdown{
		RowCycle:    t.RowCycle(),
		RefreshCost: t.RefreshCost(),
		ReadCompare: t.ReadCompareCost(),
		CopyCompare: t.CopyCompareCost(),
	}
}

// CopyCompareReservedRows computes the storage overhead of the
// Copy-and-Compare mode: reserving rowsPerBank rows in each of banks
// banks out of totalRows rows, as a fraction of DRAM capacity. The
// appendix example (512 rows/bank, 8 banks, 262144 total rows) yields
// 1.5625%.
func CopyCompareReservedRows(rowsPerBank, banks, totalRows int) float64 {
	if totalRows <= 0 {
		return 0
	}
	return float64(rowsPerBank*banks) / float64(totalRows)
}
