package costmodel

import (
	"testing"

	"memcon/internal/dram"
)

func TestAccelString(t *testing.T) {
	if NoAccel.String() != "baseline" || RowCloneCopy.String() == "" || InDRAMCompare.String() == "" {
		t.Error("accel names broken")
	}
	if Accel(9).String() == "" {
		t.Error("unknown accel should still stringify")
	}
}

func TestAcceleratedTestCostOrdering(t *testing.T) {
	tm := dram.DDR31600()
	base, err := AcceleratedTestCost(tm, NoAccel)
	if err != nil {
		t.Fatal(err)
	}
	if base != 1602 {
		t.Errorf("baseline cost = %d, want 1602", base)
	}
	rc, err := AcceleratedTestCost(tm, RowCloneCopy)
	if err != nil {
		t.Fatal(err)
	}
	full, err := AcceleratedTestCost(tm, InDRAMCompare)
	if err != nil {
		t.Fatal(err)
	}
	if !(full < rc && rc < base) {
		t.Errorf("acceleration ordering broken: in-dram %d, rowclone %d, baseline %d", full, rc, base)
	}
	if _, err := AcceleratedTestCost(tm, Accel(42)); err == nil {
		t.Error("unknown acceleration accepted")
	}
}

func TestNewAcceleratedConfigValidates(t *testing.T) {
	bad := DefaultConfig()
	bad.LoRefInterval = bad.HiRefInterval
	if _, err := NewAcceleratedConfig(bad, RowCloneCopy); err == nil {
		t.Error("invalid base config accepted")
	}
	if _, err := NewAcceleratedConfig(DefaultConfig(), Accel(42)); err == nil {
		t.Error("unknown acceleration accepted")
	}
}

// Cheaper tests amortize sooner: MinWriteInterval shrinks monotonically
// with acceleration, quantifying the paper's footnote-6 claim.
func TestAcceleratedMinWriteInterval(t *testing.T) {
	mwis := map[Accel]dram.Nanoseconds{}
	for _, a := range []Accel{NoAccel, RowCloneCopy, InDRAMCompare} {
		cfg, err := NewAcceleratedConfig(DefaultConfig(), a)
		if err != nil {
			t.Fatal(err)
		}
		mwi, err := cfg.MinWriteInterval()
		if err != nil {
			t.Fatal(err)
		}
		mwis[a] = mwi
	}
	if mwis[NoAccel] != 864*dram.Millisecond {
		t.Errorf("baseline Copy-and-Compare MWI = %d ms, want 864", mwis[NoAccel]/dram.Millisecond)
	}
	if !(mwis[InDRAMCompare] <= mwis[RowCloneCopy] && mwis[RowCloneCopy] <= mwis[NoAccel]) {
		t.Errorf("MWI not monotone in acceleration: %v", mwis)
	}
	if mwis[InDRAMCompare] >= 864*dram.Millisecond {
		t.Error("full acceleration did not improve the crossover at all")
	}
}

func TestAcceleratedMemconCostShape(t *testing.T) {
	cfg, err := NewAcceleratedConfig(DefaultConfig(), RowCloneCopy)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.MemconCost(-1); got != 0 {
		t.Errorf("negative time cost = %d", got)
	}
	if got := cfg.MemconCost(0); got != cfg.TestCost() {
		t.Errorf("cost at 0 = %d, want the test cost %d", got, cfg.TestCost())
	}
	// One LO-REF window in: still no refresh charged (test window).
	if got := cfg.MemconCost(64 * dram.Millisecond); got != cfg.TestCost() {
		t.Errorf("cost at 64ms = %d, want %d", got, cfg.TestCost())
	}
	if got := cfg.MemconCost(128 * dram.Millisecond); got != cfg.TestCost()+39 {
		t.Errorf("cost at 128ms = %d, want %d", got, cfg.TestCost()+39)
	}
}

func TestEnergyMinWriteInterval(t *testing.T) {
	cfg := DefaultConfig()
	e := DefaultEnergyCosts()
	latencyMWI, err := cfg.MinWriteInterval()
	if err != nil {
		t.Fatal(err)
	}
	energyMWI, err := cfg.EnergyMinWriteInterval(e)
	if err != nil {
		t.Fatal(err)
	}
	// The central finding: the energy crossover lies well beyond the
	// latency crossover, because a test moves two full rows of data
	// while a refresh is one internal activate/precharge.
	if energyMWI <= latencyMWI {
		t.Errorf("energy MWI %d ms not beyond latency MWI %d ms",
			energyMWI/dram.Millisecond, latencyMWI/dram.Millisecond)
	}
	// Sanity on magnitude: the test energy / per-interval refresh saving
	// ratio bounds the crossover analytically.
	testNJ := e.TestEnergyNJ(cfg.Timing, cfg.Mode)
	perHiWindowSaving := e.RefreshNJ * (1 - float64(cfg.HiRefInterval)/float64(cfg.LoRefInterval))
	approx := dram.Nanoseconds(testNJ/perHiWindowSaving) * cfg.HiRefInterval
	if energyMWI < approx/2 || energyMWI > approx*2 {
		t.Errorf("energy MWI %d ms far from analytic estimate %d ms",
			energyMWI/dram.Millisecond, approx/dram.Millisecond)
	}
}

func TestEnergyMinWriteIntervalErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.LoRefInterval = bad.HiRefInterval
	if _, err := bad.EnergyMinWriteInterval(DefaultEnergyCosts()); err == nil {
		t.Error("invalid config accepted")
	}
	e := DefaultEnergyCosts()
	e.RefreshNJ = 0
	if _, err := DefaultConfig().EnergyMinWriteInterval(e); err == nil {
		t.Error("zero refresh energy accepted")
	}
}

func TestTestEnergyByMode(t *testing.T) {
	e := DefaultEnergyCosts()
	tm := dram.DDR31600()
	rc := e.TestEnergyNJ(tm, ReadCompare)
	cc := e.TestEnergyNJ(tm, CopyCompare)
	if cc <= rc {
		t.Errorf("Copy-and-Compare energy %v not above Read-and-Compare %v", cc, rc)
	}
	want := 2 * (20 + 128*6.0)
	if rc != want {
		t.Errorf("Read-and-Compare energy = %v, want %v", rc, want)
	}
}
