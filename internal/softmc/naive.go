package softmc

import (
	"memcon/internal/dram"
)

// NaiveNeighborTest is the system-level detection approach the paper's
// §2 shows to be broken: assume a LINEAR mapping from system addresses
// to physical cells and test each victim row by writing aggressive
// content into the rows at system addresses r-1 and r+1, the victim's
// presumed physical neighbours. Because vendors scramble the address
// space and remap faulty columns, the rows at r±1 are generally NOT the
// victim's physical neighbours, so the test exercises the wrong
// aggressors and misses failures that real neighbour content triggers.
//
// The returned set is the rows the naive approach flags; comparing it
// against the model's ground truth quantifies the motivation for
// MEMCON's content-based approach (see the `motiv` experiment).
func (t *Tester) NaiveNeighborTest(idle dram.Nanoseconds) map[int]bool {
	g := t.mod.Geometry()
	flagged := make(map[int]bool)

	victimCharged := dram.NewRow(g.ColsPerRow)
	victimCharged.Fill(^uint64(0)) // try to charge true cells
	victimCharged2 := dram.NewRow(g.ColsPerRow)
	// all-zero row charges anti cells
	aggressor := dram.NewRow(g.ColsPerRow)
	aggressor.Fill(0x5555555555555555)
	aggressorInv := dram.NewRow(g.ColsPerRow)
	aggressorInv.Fill(0xAAAAAAAAAAAAAAAA)

	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			victim := dram.RowAddress{Bank: b, Row: r}
			for phase := 0; phase < 4; phase++ {
				var vc, ag dram.Row
				if phase&1 == 0 {
					vc = victimCharged
				} else {
					vc = victimCharged2
				}
				if phase&2 == 0 {
					ag = aggressor
				} else {
					ag = aggressorInv
				}
				// Write the victim and its PRESUMED neighbours (system
				// addresses r-1 and r+1 — the linear-mapping assumption).
				t.mod.WriteRow(victim, vc, t.now)
				if r > 0 {
					t.mod.WriteRow(dram.RowAddress{Bank: b, Row: r - 1}, ag, t.now)
				}
				if r+1 < g.RowsPerBank {
					t.mod.WriteRow(dram.RowAddress{Bank: b, Row: r + 1}, ag, t.now)
				}
				// Victim idles one window at lowest charge; the presumed
				// neighbours hold the aggressor pattern throughout.
				if cells := t.model.FailingCells(t.mod, victim, idle); len(cells) > 0 {
					flagged[g.RowIndex(victim)] = true
				}
			}
		}
	}
	return flagged
}

// GroundTruthWeakRows returns the rows that can fail with SOME content
// at the given idle time — what an oracle with physical knowledge would
// flag.
func (t *Tester) GroundTruthWeakRows(idle dram.Nanoseconds) map[int]bool {
	g := t.mod.Geometry()
	truth := make(map[int]bool)
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			if t.model.RowCanFail(a, idle) {
				truth[g.RowIndex(a)] = true
			}
		}
	}
	return truth
}
