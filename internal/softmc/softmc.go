// Package softmc provides a programmatic DRAM test harness modelled on
// the SoftMC FPGA infrastructure the paper uses to characterize real
// chips. It drives a dram.Module + faults.Model pair through the three
// canonical characterization steps:
//
//  1. fill the array with content (a synthetic data pattern or a dumped
//     program image),
//  2. keep the array idle for a chosen refresh interval,
//  3. read the content back and diff against what was written.
//
// The harness only uses the system-facing Module API — like a real
// memory controller it has no visibility into scrambling or remapping —
// which is exactly the constraint MEMCON is designed around.
package softmc

import (
	"context"
	"fmt"
	"math/rand"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/obs"
	"memcon/internal/parallel"
)

// Pattern is a synthetic data pattern used for characterization, in the
// style of manufacturing test patterns (solid, stripes, checkerboards,
// walking bits, random).
type Pattern struct {
	// Name identifies the pattern in reports.
	Name string
	// Fill writes the pattern's content for a given row into dst.
	// row is the system row index so row-dependent patterns (row
	// stripes, checkerboards) can alternate.
	Fill func(dst dram.Row, row int)
}

// SolidPattern returns a pattern storing the same bit everywhere.
func SolidPattern(bit int) Pattern {
	word := uint64(0)
	if bit == 1 {
		word = ^uint64(0)
	}
	return Pattern{
		Name: fmt.Sprintf("solid-%d", bit),
		Fill: func(dst dram.Row, _ int) { dst.Fill(word) },
	}
}

// CheckerboardPattern returns the classic 0101/1010 checkerboard;
// phase selects which of the two alignments is used.
func CheckerboardPattern(phase int) Pattern {
	return Pattern{
		Name: fmt.Sprintf("checker-%d", phase&1),
		Fill: func(dst dram.Row, row int) {
			even := uint64(0x5555555555555555)
			odd := uint64(0xAAAAAAAAAAAAAAAA)
			if (row+phase)%2 == 0 {
				dst.Fill(even)
			} else {
				dst.Fill(odd)
			}
		},
	}
}

// RowStripePattern alternates all-ones and all-zero rows; phase selects
// the alignment.
func RowStripePattern(phase int) Pattern {
	return Pattern{
		Name: fmt.Sprintf("rowstripe-%d", phase&1),
		Fill: func(dst dram.Row, row int) {
			if (row+phase)%2 == 0 {
				dst.Fill(0)
			} else {
				dst.Fill(^uint64(0))
			}
		},
	}
}

// ColStripePattern alternates columns of ones and zeros; phase selects
// the alignment.
func ColStripePattern(phase int) Pattern {
	return Pattern{
		Name: fmt.Sprintf("colstripe-%d", phase&1),
		Fill: func(dst dram.Row, _ int) {
			w := uint64(0x5555555555555555)
			if phase&1 == 1 {
				w = 0xAAAAAAAAAAAAAAAA
			}
			dst.Fill(w)
		},
	}
}

// WalkingPattern places a walking 1 (bit=1) or walking 0 (bit=0) at the
// given offset within every 64-bit word.
func WalkingPattern(bit, offset int) Pattern {
	w := uint64(1) << (uint(offset) % 64)
	if bit == 0 {
		w = ^w
	}
	kind := "walk1"
	if bit == 0 {
		kind = "walk0"
	}
	return Pattern{
		Name: fmt.Sprintf("%s-%d", kind, offset%64),
		Fill: func(dst dram.Row, _ int) { dst.Fill(w) },
	}
}

// RandomPattern fills rows with pseudo-random bits derived from seed.
// Each call to Fill is deterministic in (seed, row).
func RandomPattern(seed int64) Pattern {
	return Pattern{
		Name: fmt.Sprintf("random-%d", seed),
		Fill: func(dst dram.Row, row int) {
			rng := rand.New(rand.NewSource(seed ^ int64(row)*0x9E3779B9))
			dst.Randomize(rng)
		},
	}
}

// StandardPatterns returns the n-pattern characterization suite used for
// the Fig. 3-style experiments: the classic manufacturing patterns first,
// padded with seeded random patterns up to n.
func StandardPatterns(n int) []Pattern {
	ps := []Pattern{
		SolidPattern(0), SolidPattern(1),
		CheckerboardPattern(0), CheckerboardPattern(1),
		RowStripePattern(0), RowStripePattern(1),
		ColStripePattern(0), ColStripePattern(1),
	}
	for i := 0; i < 8 && len(ps) < n; i++ {
		ps = append(ps, WalkingPattern(1, i*8), WalkingPattern(0, i*8+4))
	}
	for s := int64(1); len(ps) < n; s++ {
		ps = append(ps, RandomPattern(s))
	}
	return ps[:n]
}

// Tester drives characterization runs over one module/fault-model pair.
type Tester struct {
	mod   *dram.Module
	model *faults.Model
	// now is the harness-local clock.
	now dram.Nanoseconds
	// obs receives per-row characterization events. During parallel
	// scans it is invoked from multiple goroutines, so only observers
	// safe for concurrent use (obs.Metrics, obs.Recorder) should be
	// installed when workers > 1.
	obs obs.Observer
}

// NewTester creates a tester over the module and fault model, which must
// share a geometry.
func NewTester(mod *dram.Module, model *faults.Model) (*Tester, error) {
	if mod.Geometry() != model.Geometry() {
		return nil, fmt.Errorf("softmc: module and fault model geometries differ")
	}
	return &Tester{mod: mod, model: model}, nil
}

// SetObserver installs an observer notified of row failures seen by
// ReadBack (obs.KindRowFailure, Aux = failing cells) and weak rows
// found by the exhaustive scan (obs.KindRowWeak). A nil observer — the
// default — adds no work to either path.
func (t *Tester) SetObserver(o obs.Observer) { t.obs = o }

// Now returns the harness clock.
func (t *Tester) Now() dram.Nanoseconds { return t.now }

// FillPattern writes the pattern into every row of every bank, fully
// charging the array.
func (t *Tester) FillPattern(p Pattern) error {
	g := t.mod.Geometry()
	buf := dram.NewRow(g.ColsPerRow)
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			p.Fill(buf, r)
			if err := t.mod.WriteRow(dram.RowAddress{Bank: b, Row: r}, buf, t.now); err != nil {
				return err
			}
		}
	}
	return nil
}

// FillContent replicates the given content image across the whole module
// row by row (the paper duplicates each workload's memory footprint
// across the module so the entire chip holds program content). The image
// is a slice of rows; it wraps when shorter than the module.
func (t *Tester) FillContent(image []dram.Row) error {
	if len(image) == 0 {
		return fmt.Errorf("softmc: empty content image")
	}
	g := t.mod.Geometry()
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			src := image[(b*g.RowsPerBank+r)%len(image)]
			if err := t.mod.WriteRow(dram.RowAddress{Bank: b, Row: r}, src, t.now); err != nil {
				return err
			}
		}
	}
	return nil
}

// Idle advances the harness clock without touching the array.
func (t *Tester) Idle(d dram.Nanoseconds) {
	if d > 0 {
		t.now += d
	}
}

// RowFailure describes the failures observed in one row during ReadBack.
type RowFailure struct {
	Addr  dram.RowAddress
	Cells []int
}

// ReadBack reads the whole array, returning every row that shows
// data-dependent failures given how long each row has been idle.
// Failures are committed to the stored content (the charge is gone) and
// every row is recharged by the read, just like a real read-back pass.
func (t *Tester) ReadBack() []RowFailure {
	g := t.mod.Geometry()
	var fails []RowFailure
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			idle := t.mod.IdleTime(a, t.now)
			cells := t.model.FailingCells(t.mod, a, idle)
			if len(cells) > 0 {
				t.mod.ApplyFlips(a, cells)
				fails = append(fails, RowFailure{Addr: a, Cells: cells})
				if t.obs != nil {
					t.obs.OnEvent(obs.Event{
						Kind: obs.KindRowFailure,
						Page: uint32(g.RowIndex(a)),
						At:   int64(t.now / dram.Microsecond),
						Aux:  int64(len(cells)),
					})
				}
			}
			t.mod.Activate(a, t.now)
		}
	}
	return fails
}

// TestRow checks a single row for failures after its current idle time
// without committing flips or recharging — the primitive MEMCON's online
// testing builds on.
func (t *Tester) TestRow(a dram.RowAddress) []int {
	idle := t.mod.IdleTime(a, t.now)
	return t.model.FailingCells(t.mod, a, idle)
}

// RunPattern performs one full characterization run: fill with the
// pattern, stay idle for idle, read back. It returns the failing rows.
func (t *Tester) RunPattern(p Pattern, idle dram.Nanoseconds) ([]RowFailure, error) {
	if err := t.FillPattern(p); err != nil {
		return nil, err
	}
	t.Idle(idle)
	return t.ReadBack(), nil
}

// RunContent performs one full characterization run with a program
// content image.
func (t *Tester) RunContent(image []dram.Row, idle dram.Nanoseconds) ([]RowFailure, error) {
	if err := t.FillContent(image); err != nil {
		return nil, err
	}
	t.Idle(idle)
	return t.ReadBack(), nil
}

// FailingRowFraction is a convenience that runs the content image and
// returns the fraction of module rows with at least one failure.
func (t *Tester) FailingRowFraction(image []dram.Row, idle dram.Nanoseconds) (float64, error) {
	fails, err := t.RunContent(image, idle)
	if err != nil {
		return 0, err
	}
	g := t.mod.Geometry()
	return float64(len(fails)) / float64(g.TotalRows()), nil
}

// AllFailFraction returns the fraction of rows that can fail under SOME
// data pattern at the given idle time — the exhaustive-testing
// denominator (ALL FAIL in Fig. 4).
func (t *Tester) AllFailFraction(idle dram.Nanoseconds) float64 {
	return t.AllFailFractionParallel(context.Background(), idle, 1)
}

// AllFailFractionParallel is AllFailFraction fanned out over up to
// `workers` goroutines (values below 1 select GOMAXPROCS). RowCanFail
// only reads the fault model, which Preload makes immutable, so the
// row scan shards into contiguous row ranges per bank; the total is a
// count, identical for any worker count.
func (t *Tester) AllFailFractionParallel(ctx context.Context, idle dram.Nanoseconds, workers int) float64 {
	g := t.mod.Geometry()
	t.model.Preload()
	counts, err := parallel.Map(ctx, g.BanksPerChip*chunksPerBank, workers, func(u int) (int, error) {
		b := u / chunksPerBank
		lo, hi := chunkBounds(g.RowsPerBank, u%chunksPerBank)
		fails := 0
		for r := lo; r < hi; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			if t.model.RowCanFail(a, idle) {
				fails++
				if t.obs != nil {
					t.obs.OnEvent(obs.Event{
						Kind: obs.KindRowWeak,
						Page: uint32(g.RowIndex(a)),
						At:   int64(t.now / dram.Microsecond),
					})
				}
			}
		}
		return fails, nil
	})
	if err != nil { // only context cancellation can land here
		return 0
	}
	fails := 0
	for _, c := range counts {
		fails += c
	}
	return float64(fails) / float64(g.TotalRows())
}

// chunksPerBank splits each bank's row scan so a handful of banks still
// feeds many workers.
const chunksPerBank = 8

// chunkBounds returns the [lo, hi) row range of chunk c.
func chunkBounds(rows, c int) (int, int) {
	lo := c * rows / chunksPerBank
	hi := (c + 1) * rows / chunksPerBank
	return lo, hi
}
