// Package softmc provides a programmatic DRAM test harness modelled on
// the SoftMC FPGA infrastructure the paper uses to characterize real
// chips. It drives a dram.Module + faults.Model pair through the three
// canonical characterization steps:
//
//  1. fill the array with content (a synthetic data pattern or a dumped
//     program image),
//  2. keep the array idle for a chosen refresh interval,
//  3. read the content back and diff against what was written.
//
// The harness only uses the system-facing Module API — like a real
// memory controller it has no visibility into scrambling or remapping —
// which is exactly the constraint MEMCON is designed around.
package softmc

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/obs"
	"memcon/internal/parallel"
)

// Pattern is a synthetic data pattern used for characterization, in the
// style of manufacturing test patterns (solid, stripes, checkerboards,
// walking bits, random).
type Pattern struct {
	// Name identifies the pattern in reports.
	Name string
	// Fill writes the pattern's content for a given row into dst.
	// row is the system row index so row-dependent patterns (row
	// stripes, checkerboards) can alternate.
	Fill func(dst dram.Row, row int)
}

// SolidPattern returns a pattern storing the same bit everywhere.
func SolidPattern(bit int) Pattern {
	word := uint64(0)
	if bit == 1 {
		word = ^uint64(0)
	}
	return Pattern{
		Name: fmt.Sprintf("solid-%d", bit),
		Fill: func(dst dram.Row, _ int) { dst.Fill(word) },
	}
}

// CheckerboardPattern returns the classic 0101/1010 checkerboard;
// phase selects which of the two alignments is used.
func CheckerboardPattern(phase int) Pattern {
	return Pattern{
		Name: fmt.Sprintf("checker-%d", phase&1),
		Fill: func(dst dram.Row, row int) {
			even := uint64(0x5555555555555555)
			odd := uint64(0xAAAAAAAAAAAAAAAA)
			if (row+phase)%2 == 0 {
				dst.Fill(even)
			} else {
				dst.Fill(odd)
			}
		},
	}
}

// RowStripePattern alternates all-ones and all-zero rows; phase selects
// the alignment.
func RowStripePattern(phase int) Pattern {
	return Pattern{
		Name: fmt.Sprintf("rowstripe-%d", phase&1),
		Fill: func(dst dram.Row, row int) {
			if (row+phase)%2 == 0 {
				dst.Fill(0)
			} else {
				dst.Fill(^uint64(0))
			}
		},
	}
}

// ColStripePattern alternates columns of ones and zeros; phase selects
// the alignment.
func ColStripePattern(phase int) Pattern {
	return Pattern{
		Name: fmt.Sprintf("colstripe-%d", phase&1),
		Fill: func(dst dram.Row, _ int) {
			w := uint64(0x5555555555555555)
			if phase&1 == 1 {
				w = 0xAAAAAAAAAAAAAAAA
			}
			dst.Fill(w)
		},
	}
}

// WalkingPattern places a walking 1 (bit=1) or walking 0 (bit=0) at the
// given offset within every 64-bit word. The offset wraps modulo 64 with
// a non-negative result, and the same normalized value appears in the
// pattern name, so WalkingPattern(1, -8) both walks bit 56 and is named
// walk1-56.
func WalkingPattern(bit, offset int) Pattern {
	offset = ((offset % 64) + 64) % 64
	w := uint64(1) << uint(offset)
	if bit == 0 {
		w = ^w
	}
	kind := "walk1"
	if bit == 0 {
		kind = "walk0"
	}
	return Pattern{
		Name: fmt.Sprintf("%s-%d", kind, offset),
		Fill: func(dst dram.Row, _ int) { dst.Fill(w) },
	}
}

// RandomPattern fills rows with pseudo-random bits derived from seed.
// Each call to Fill is deterministic in (seed, row).
func RandomPattern(seed int64) Pattern {
	return Pattern{
		Name: fmt.Sprintf("random-%d", seed),
		Fill: func(dst dram.Row, row int) {
			rng := rand.New(rand.NewSource(seed ^ int64(row)*0x9E3779B9))
			dst.Randomize(rng)
		},
	}
}

// StandardPatterns returns the n-pattern characterization suite used for
// the Fig. 3-style experiments: the classic manufacturing patterns first,
// padded with seeded random patterns up to n.
func StandardPatterns(n int) []Pattern {
	ps := []Pattern{
		SolidPattern(0), SolidPattern(1),
		CheckerboardPattern(0), CheckerboardPattern(1),
		RowStripePattern(0), RowStripePattern(1),
		ColStripePattern(0), ColStripePattern(1),
	}
	for i := 0; i < 8 && len(ps) < n; i++ {
		ps = append(ps, WalkingPattern(1, i*8), WalkingPattern(0, i*8+4))
	}
	for s := int64(1); len(ps) < n; s++ {
		ps = append(ps, RandomPattern(s))
	}
	return ps[:n]
}

// Tester drives characterization runs over one module/fault-model pair.
type Tester struct {
	mod   *dram.Module
	model *faults.Model
	// now is the harness-local clock.
	now dram.Nanoseconds
	// workers is the fan-out ReadBack uses; results are byte-identical
	// at any value (see ReadBackParallel). Default 1.
	workers int
	// obs receives per-row characterization events. During parallel
	// scans it is invoked from multiple goroutines, so only observers
	// safe for concurrent use (obs.Metrics, obs.Recorder) should be
	// installed when workers > 1. ReadBack is the exception: its events
	// are emitted from the sequential commit pass regardless of workers.
	obs obs.Observer

	// scan holds ReadBack's frozen-pass scratch, one unit per (bank,
	// chunk), reused across calls so repeated read-backs stop paying the
	// per-row copy allocations PR 3's parallel scan introduced. Reusing
	// it means a Tester must not run overlapping ReadBack calls — which
	// was already the contract (ReadBack mutates the module).
	scan []scanUnit
	// commitBuf is the commit pass's dirty-row re-evaluation buffer.
	commitBuf []int
	// pending is the commit pass's sorted dirty-row worklist.
	pending []int
	// spans stages per-failure arena offsets until the arena stops
	// growing and Cells slices can be cut from it.
	spans []int32
}

// scanUnit is one chunk's reusable frozen-pass result: the failing rows
// and their cells in CSR form (rows[i]'s cells are
// cells[offs[i]:offs[i+1]]).
type scanUnit struct {
	rows  []int32
	offs  []int32
	cells []int
}

// NewTester creates a tester over the module and fault model, which must
// share a geometry.
func NewTester(mod *dram.Module, model *faults.Model) (*Tester, error) {
	if mod.Geometry() != model.Geometry() {
		return nil, fmt.Errorf("softmc: module and fault model geometries differ")
	}
	return &Tester{mod: mod, model: model, workers: 1}, nil
}

// SetParallelism sets the worker count ReadBack (and the runs built on
// it) fans out to. Values below 1 select GOMAXPROCS. The output is
// byte-identical at any setting; the default is 1.
func (t *Tester) SetParallelism(n int) { t.workers = n }

// SetObserver installs an observer notified of row failures seen by
// ReadBack (obs.KindRowFailure, Aux = failing cells) and weak rows
// found by the exhaustive scan (obs.KindRowWeak). A nil observer — the
// default — adds no work to either path.
func (t *Tester) SetObserver(o obs.Observer) { t.obs = o }

// Now returns the harness clock.
func (t *Tester) Now() dram.Nanoseconds { return t.now }

// FillPattern writes the pattern into every row of every bank, fully
// charging the array.
func (t *Tester) FillPattern(p Pattern) error {
	g := t.mod.Geometry()
	buf := dram.NewRow(g.ColsPerRow)
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			p.Fill(buf, r)
			if err := t.mod.WriteRow(dram.RowAddress{Bank: b, Row: r}, buf, t.now); err != nil {
				return err
			}
		}
	}
	return nil
}

// FillContent replicates the given content image across the whole module
// row by row (the paper duplicates each workload's memory footprint
// across the module so the entire chip holds program content). The image
// is a slice of rows; it wraps when shorter than the module.
func (t *Tester) FillContent(image []dram.Row) error {
	if len(image) == 0 {
		return fmt.Errorf("softmc: empty content image")
	}
	g := t.mod.Geometry()
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			src := image[(b*g.RowsPerBank+r)%len(image)]
			if err := t.mod.WriteRow(dram.RowAddress{Bank: b, Row: r}, src, t.now); err != nil {
				return err
			}
		}
	}
	return nil
}

// Idle advances the harness clock without touching the array.
func (t *Tester) Idle(d dram.Nanoseconds) {
	if d > 0 {
		t.now += d
	}
}

// RowFailure describes the failures observed in one row during ReadBack.
type RowFailure struct {
	Addr  dram.RowAddress
	Cells []int
}

// ReadBack reads the whole array, returning every row that shows
// data-dependent failures given how long each row has been idle.
// Failures are committed to the stored content (the charge is gone) and
// every row is recharged by the read, just like a real read-back pass.
// The scan fans out over the tester's configured parallelism (see
// SetParallelism); the result is byte-identical at any worker count.
func (t *Tester) ReadBack() []RowFailure {
	fails, err := t.ReadBackParallel(context.Background(), t.workers)
	if err != nil {
		// A background context cannot be cancelled, so only a worker
		// panic (repackaged by parallel.Map) lands here.
		panic(err)
	}
	return fails
}

// ReadBackParallel is ReadBack fanned out over up to `workers`
// goroutines (values below 1 select GOMAXPROCS), cancellable through
// ctx. Determinism contract: the scan first evaluates every row against
// the FROZEN pre-read content in sharded per-bank row chunks (pure
// reads), then a single sequential commit pass walks rows in global
// (bank, row) order, committing flips and recharging. A committed flip
// discharges a cell, which can only add interference stress to weak
// cells that read it as a neighbour — so any later row a flip could
// influence is re-evaluated against the then-current content
// (Model.AffectedNeighborRows names exactly those rows). The result is
// byte-identical to a strictly sequential commit-as-you-go scan at any
// worker count, and observer events fire from the commit pass in scan
// order.
func (t *Tester) ReadBackParallel(ctx context.Context, workers int) ([]RowFailure, error) {
	g := t.mod.Geometry()
	units := g.BanksPerChip * chunksPerBank
	if len(t.scan) != units {
		t.scan = make([]scanUnit, units)
	}
	err := parallel.ForEach(ctx, units, workers, func(u int) error {
		sc := &t.scan[u]
		sc.rows = sc.rows[:0]
		sc.offs = append(sc.offs[:0], 0)
		sc.cells = sc.cells[:0]
		b := u / chunksPerBank
		// Scan the bank's weak-row worklist instead of all RowsPerBank
		// rows: rows without weak cells can never fail, and at the
		// default weak-cell density that skips ~70% of the bank without
		// even an idle-time lookup. weakRows is ascending, so chunking
		// it keeps each unit's rows sorted and the units concatenating
		// into scan order — the commit-pass merge below is unchanged.
		weakRows, _ := t.model.WeakRowFloors(b)
		lo, hi := chunkBounds(len(weakRows), u%chunksPerBank)
		sc.cells, sc.rows, sc.offs = t.model.AppendFailingRows(
			t.mod, b, lo, hi, t.now, sc.cells, sc.rows, sc.offs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Commit pass: sequential, in global row order. The chunk units are
	// ordered by (bank, row range), so their frozen results concatenate
	// into scan order; the walk merges that stream with the sorted
	// dirty-row worklist instead of visiting every row. Result cells are
	// packed into one arena (cut into per-row slices once it stops
	// growing), so a call allocates O(log n) slice growths rather than
	// one copy per failing row.
	// The frozen pass counted (almost) the final totals: commit-time
	// re-evaluation can add a few rows and cells, so the counts are a
	// capacity hint, not a bound.
	nRows, nCells := 0, 0
	for u := range t.scan {
		nRows += len(t.scan[u].rows)
		nCells += len(t.scan[u].cells)
	}
	fails := make([]RowFailure, 0, nRows+8)
	arena := make([]int, 0, nCells+16)
	t.spans = t.spans[:0]
	for b := 0; b < g.BanksPerChip; b++ {
		// pending holds rows of THIS bank whose frozen verdict may
		// under-report (physical neighbours never cross banks); rows
		// enter only when a committed flip lands next to a weak cell,
		// and always lie past the scan cursor.
		t.pending = t.pending[:0]
		u := b * chunksPerBank
		uEnd := u + chunksPerBank
		ri := 0 // cursor into t.scan[u].rows
		for {
			for u < uEnd && ri >= len(t.scan[u].rows) {
				u, ri = u+1, 0
			}
			fr := g.RowsPerBank // next frozen failing row (sentinel: none)
			if u < uEnd {
				fr = int(t.scan[u].rows[ri])
			}
			r := fr
			if len(t.pending) > 0 && t.pending[0] < r {
				r = t.pending[0]
			}
			if r == g.RowsPerBank {
				break
			}
			a := dram.RowAddress{Bank: b, Row: r}
			var cells []int
			if fr == r {
				sc := &t.scan[u]
				cells = sc.cells[sc.offs[ri]:sc.offs[ri+1]]
				ri++
			}
			if len(t.pending) > 0 && t.pending[0] == r {
				t.pending = t.pending[1:]
				// An earlier committed flip may have added stress here;
				// the frozen verdict can under-report, never over-report.
				t.commitBuf = t.model.AppendFailingCells(t.commitBuf[:0], t.mod, a, t.mod.IdleTime(a, t.now))
				cells = t.commitBuf
			}
			if len(cells) > 0 {
				t.mod.ApplyFlips(a, cells)
				t.spans = append(t.spans, int32(len(arena)))
				arena = append(arena, cells...)
				fails = append(fails, RowFailure{Addr: a})
				if t.obs != nil {
					t.obs.OnEvent(obs.Event{
						Kind: obs.KindRowFailure,
						Page: uint32(g.RowIndex(a)),
						At:   int64(t.now / dram.Microsecond),
						Aux:  int64(len(cells)),
					})
				}
				for _, nb := range t.model.AffectedNeighborRows(a, cells) {
					// Rows at or before the scan cursor were evaluated
					// before these flips existed, exactly as a
					// sequential scan would have.
					if nb.Row > r {
						t.pending = insertRow(t.pending, nb.Row)
					}
				}
			}
		}
	}
	// Every row was read, so every row recharges — exactly what the
	// per-row Activate calls of the row-by-row walk amounted to.
	t.mod.RechargeAll(t.now)
	for i := range fails {
		lo := int(t.spans[i])
		hi := len(arena)
		if i+1 < len(fails) {
			hi = int(t.spans[i+1])
		}
		fails[i].Cells = arena[lo:hi:hi]
	}
	return fails, nil
}

// insertRow inserts r into the sorted worklist p, keeping it unique.
func insertRow(p []int, r int) []int {
	i := sort.SearchInts(p, r)
	if i < len(p) && p[i] == r {
		return p
	}
	p = append(p, 0)
	copy(p[i+1:], p[i:])
	p[i] = r
	return p
}

// TestRow checks a single row for failures after its current idle time
// without committing flips or recharging — the primitive MEMCON's online
// testing builds on.
func (t *Tester) TestRow(a dram.RowAddress) []int {
	idle := t.mod.IdleTime(a, t.now)
	return t.model.FailingCells(t.mod, a, idle)
}

// RunPattern performs one full characterization run: fill with the
// pattern, stay idle for idle, read back. It returns the failing rows.
func (t *Tester) RunPattern(p Pattern, idle dram.Nanoseconds) ([]RowFailure, error) {
	if err := t.FillPattern(p); err != nil {
		return nil, err
	}
	t.Idle(idle)
	return t.ReadBack(), nil
}

// RunContent performs one full characterization run with a program
// content image.
func (t *Tester) RunContent(image []dram.Row, idle dram.Nanoseconds) ([]RowFailure, error) {
	if err := t.FillContent(image); err != nil {
		return nil, err
	}
	t.Idle(idle)
	return t.ReadBack(), nil
}

// FailingRowFraction is a convenience that runs the content image and
// returns the fraction of module rows with at least one failure.
func (t *Tester) FailingRowFraction(image []dram.Row, idle dram.Nanoseconds) (float64, error) {
	fails, err := t.RunContent(image, idle)
	if err != nil {
		return 0, err
	}
	g := t.mod.Geometry()
	return float64(len(fails)) / float64(g.TotalRows()), nil
}

// AllFailFraction returns the fraction of rows that can fail under SOME
// data pattern at the given idle time — the exhaustive-testing
// denominator (ALL FAIL in Fig. 4).
func (t *Tester) AllFailFraction(idle dram.Nanoseconds) float64 {
	frac, err := t.AllFailFractionParallel(context.Background(), idle, 1)
	if err != nil {
		// A background context cannot be cancelled, so only a worker
		// panic (repackaged by parallel.Map) lands here.
		panic(err)
	}
	return frac
}

// AllFailFractionParallel is AllFailFraction fanned out over up to
// `workers` goroutines (values below 1 select GOMAXPROCS). RowCanFail
// only reads the immutable fault model, so the row scan shards into
// contiguous row ranges per bank; the total is a count, identical for
// any worker count. A cancelled context surfaces as a non-nil error —
// never as a silent zero fraction, which would be indistinguishable
// from "no weak rows".
func (t *Tester) AllFailFractionParallel(ctx context.Context, idle dram.Nanoseconds, workers int) (float64, error) {
	g := t.mod.Geometry()
	counts, err := parallel.Map(ctx, g.BanksPerChip*chunksPerBank, workers, func(u int) (int, error) {
		b := u / chunksPerBank
		lo, hi := chunkBounds(g.RowsPerBank, u%chunksPerBank)
		fails := 0
		for r := lo; r < hi; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			if t.model.RowCanFail(a, idle) {
				fails++
				if t.obs != nil {
					t.obs.OnEvent(obs.Event{
						Kind: obs.KindRowWeak,
						Page: uint32(g.RowIndex(a)),
						At:   int64(t.now / dram.Microsecond),
					})
				}
			}
		}
		return fails, nil
	})
	if err != nil {
		return 0, err
	}
	fails := 0
	for _, c := range counts {
		fails += c
	}
	return float64(fails) / float64(g.TotalRows()), nil
}

// chunksPerBank splits each bank's row scan so a handful of banks still
// feeds many workers.
const chunksPerBank = 8

// chunkBounds returns the [lo, hi) row range of chunk c.
func chunkBounds(rows, c int) (int, int) {
	lo := c * rows / chunksPerBank
	hi := (c + 1) * rows / chunksPerBank
	return lo, hi
}
