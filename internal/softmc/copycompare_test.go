package softmc

import (
	"math/rand"
	"testing"

	"memcon/internal/dram"
)

func newCCModule(t *testing.T) *dram.Module {
	t.Helper()
	g := testGeometry()
	mod, err := dram.NewModule(g)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestNewCopyCompareRegionValidation(t *testing.T) {
	mod := newCCModule(t)
	if _, err := NewCopyCompareRegion(mod, 0); err == nil {
		t.Error("zero reserved rows accepted")
	}
	if _, err := NewCopyCompareRegion(mod, mod.Geometry().RowsPerBank); err == nil {
		t.Error("reserving every row accepted")
	}
}

func TestReservedFraction(t *testing.T) {
	mod := newCCModule(t)
	r, err := NewCopyCompareRegion(mod, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := 8.0 / float64(mod.Geometry().RowsPerBank)
	if got := r.ReservedFraction(); got != want {
		t.Errorf("ReservedFraction = %v, want %v", got, want)
	}
}

func TestBeginEndTestCleanRow(t *testing.T) {
	mod := newCCModule(t)
	r, err := NewCopyCompareRegion(mod, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := dram.RowAddress{Bank: 0, Row: 10}
	rng := rand.New(rand.NewSource(1))
	content := dram.NewRow(mod.Geometry().ColsPerRow)
	content.Randomize(rng)
	if err := mod.WriteRow(a, content, 0); err != nil {
		t.Fatal(err)
	}

	if err := r.BeginTest(a, 100); err != nil {
		t.Fatal(err)
	}
	if !r.InTest(a) {
		t.Error("row not marked in test")
	}
	spare, ok := r.RedirectTarget(a)
	if !ok {
		t.Fatal("no redirect target")
	}
	// The parked copy must hold the original content.
	parked, err := mod.PeekRow(spare)
	if err != nil {
		t.Fatal(err)
	}
	if !parked.Equal(content) {
		t.Error("parked copy differs from original content")
	}

	verdict, repaired, err := r.EndTest(a, nil, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Clean() {
		t.Errorf("clean row verdict %+v", verdict)
	}
	if !repaired.Equal(content) {
		t.Error("clean read-back altered")
	}
	if r.InTest(a) {
		t.Error("row still in test after EndTest")
	}
}

func TestEndTestDetectsInjectedFailures(t *testing.T) {
	mod := newCCModule(t)
	r, _ := NewCopyCompareRegion(mod, 4)
	a := dram.RowAddress{Bank: 1, Row: 3}
	content := dram.NewRow(mod.Geometry().ColsPerRow)
	content.SetBit(5, 1)
	if err := mod.WriteRow(a, content, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginTest(a, 0); err != nil {
		t.Fatal(err)
	}
	// One flip in word 0, two flips in word 2.
	verdict, repaired, err := r.EndTest(a, []int{7, 128, 129}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Clean() {
		t.Fatal("injected failures not observed")
	}
	if verdict.CorrectedWords != 1 {
		t.Errorf("corrected words = %d, want 1", verdict.CorrectedWords)
	}
	if verdict.DetectedWords != 1 {
		t.Errorf("detected words = %d, want 1", verdict.DetectedWords)
	}
	// The single-bit word must have been repaired to the original.
	if repaired.Bit(7) != content.Bit(7) {
		t.Error("single-bit failure not repaired")
	}
}

func TestBeginTestErrors(t *testing.T) {
	mod := newCCModule(t)
	r, _ := NewCopyCompareRegion(mod, 1)
	a := dram.RowAddress{Bank: 0, Row: 1}
	b := dram.RowAddress{Bank: 0, Row: 2}
	if err := r.BeginTest(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginTest(a, 0); err == nil {
		t.Error("double BeginTest accepted")
	}
	// Region of 1 row per bank is now exhausted for bank 0.
	if err := r.BeginTest(b, 0); err == nil {
		t.Error("exhausted region accepted new test")
	}
	// Other banks are unaffected.
	if err := r.BeginTest(dram.RowAddress{Bank: 1, Row: 1}, 0); err != nil {
		t.Errorf("other bank rejected: %v", err)
	}
	if got := r.ConcurrentCapacity(0); got != 0 {
		t.Errorf("capacity bank 0 = %d, want 0", got)
	}
}

func TestEndTestWithoutBegin(t *testing.T) {
	mod := newCCModule(t)
	r, _ := NewCopyCompareRegion(mod, 2)
	if _, _, err := r.EndTest(dram.RowAddress{Bank: 0, Row: 5}, nil, 0); err == nil {
		t.Error("EndTest without BeginTest accepted")
	}
}

func TestReservedRowsRecycled(t *testing.T) {
	mod := newCCModule(t)
	r, _ := NewCopyCompareRegion(mod, 1)
	a := dram.RowAddress{Bank: 0, Row: 1}
	for round := 0; round < 3; round++ {
		if err := r.BeginTest(a, dram.Nanoseconds(round)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, _, err := r.EndTest(a, nil, dram.Nanoseconds(round)+1); err != nil {
			t.Fatalf("round %d end: %v", round, err)
		}
	}
	if got := r.ConcurrentCapacity(0); got != 1 {
		t.Errorf("capacity after recycling = %d, want 1", got)
	}
}
