package softmc

import (
	"fmt"

	"memcon/internal/dram"
	"memcon/internal/ecc"
)

// CopyCompareRegion manages the reserved rows that the Copy-and-Compare
// test mode (§3.3) uses: the in-test row's content is parked in a
// reserved row of the same bank so program reads can be redirected
// there, while the memory controller retains only the row's ECC
// syndromes. After the test window, the read-back is verified against
// the syndromes; any mismatch is a data-dependent failure of the in-test
// row.
type CopyCompareRegion struct {
	mod *dram.Module
	// reservedPerBank rows at the TOP of each bank are reserved.
	reservedPerBank int
	// free[bank] lists currently unused reserved rows.
	free [][]int
	// inFlight maps an in-test row to its parking state.
	inFlight map[dram.RowAddress]*parkedRow
}

type parkedRow struct {
	spare dram.RowAddress
	code  ecc.RowCode
}

// NewCopyCompareRegion reserves rowsPerBank rows at the top of every
// bank. The appendix sizes this at 512 rows/bank (1.56% of a 2 GB
// module).
func NewCopyCompareRegion(mod *dram.Module, rowsPerBank int) (*CopyCompareRegion, error) {
	g := mod.Geometry()
	if rowsPerBank <= 0 || rowsPerBank >= g.RowsPerBank {
		return nil, fmt.Errorf("softmc: reserved rows per bank %d outside (0,%d)", rowsPerBank, g.RowsPerBank)
	}
	r := &CopyCompareRegion{
		mod:             mod,
		reservedPerBank: rowsPerBank,
		free:            make([][]int, g.BanksPerChip),
		inFlight:        make(map[dram.RowAddress]*parkedRow),
	}
	for b := range r.free {
		for i := 0; i < rowsPerBank; i++ {
			r.free[b] = append(r.free[b], g.RowsPerBank-1-i)
		}
	}
	return r, nil
}

// ReservedFraction returns the fraction of module capacity consumed by
// the region.
func (r *CopyCompareRegion) ReservedFraction() float64 {
	g := r.mod.Geometry()
	return float64(r.reservedPerBank) / float64(g.RowsPerBank)
}

// InTest reports whether the row currently has a parked copy.
func (r *CopyCompareRegion) InTest(a dram.RowAddress) bool {
	_, ok := r.inFlight[a]
	return ok
}

// RedirectTarget returns the reserved row serving reads for an in-test
// row, and whether the row is in test — the controller-side redirect
// table of the paper's footnote 5.
func (r *CopyCompareRegion) RedirectTarget(a dram.RowAddress) (dram.RowAddress, bool) {
	p, ok := r.inFlight[a]
	if !ok {
		return dram.RowAddress{}, false
	}
	return p.spare, true
}

// BeginTest parks the in-test row: reads it once (one row read), writes
// it to a reserved row of the same bank (one row write), and stores its
// ECC syndromes in the controller. It fails when the bank's reserved
// region is exhausted or the row is already in test.
func (r *CopyCompareRegion) BeginTest(a dram.RowAddress, now dram.Nanoseconds) error {
	if _, ok := r.inFlight[a]; ok {
		return fmt.Errorf("softmc: row %+v already in test", a)
	}
	if len(r.free[a.Bank]) == 0 {
		return fmt.Errorf("softmc: bank %d reserved region exhausted (%d rows)", a.Bank, r.reservedPerBank)
	}
	content, err := r.mod.PeekRow(a)
	if err != nil {
		return err
	}
	spareRow := r.free[a.Bank][len(r.free[a.Bank])-1]
	r.free[a.Bank] = r.free[a.Bank][:len(r.free[a.Bank])-1]
	spare := dram.RowAddress{Bank: a.Bank, Row: spareRow}
	if err := r.mod.WriteRow(spare, content, now); err != nil {
		r.free[a.Bank] = append(r.free[a.Bank], spareRow)
		return err
	}
	// Reading the row for the copy recharges it; the idle test window
	// starts now.
	r.mod.Activate(a, now)
	r.inFlight[a] = &parkedRow{spare: spare, code: ecc.EncodeRow(content)}
	return nil
}

// EndTest completes the test: the in-test row is read back and verified
// against the stored ECC. failingCells is what the silicon actually
// flipped (from the fault model); the method returns the ECC verdict —
// what the controller can OBSERVE — and releases the reserved row.
// Single-bit flips are corrected in the returned repaired content;
// multi-bit flips per word are detected but not correctable.
func (r *CopyCompareRegion) EndTest(a dram.RowAddress, failingCells []int, now dram.Nanoseconds) (ecc.RowVerdict, dram.Row, error) {
	p, ok := r.inFlight[a]
	if !ok {
		return ecc.RowVerdict{}, nil, fmt.Errorf("softmc: row %+v not in test", a)
	}
	readBack, err := r.mod.PeekRow(a)
	if err != nil {
		return ecc.RowVerdict{}, nil, err
	}
	for _, c := range failingCells {
		readBack.SetBit(c, readBack.Bit(c)^1)
	}
	verdict, err := ecc.VerifyRow(readBack, p.code)
	if err != nil {
		return ecc.RowVerdict{}, nil, err
	}
	r.mod.Activate(a, now)
	r.free[a.Bank] = append(r.free[a.Bank], p.spare.Row)
	delete(r.inFlight, a)
	return verdict, readBack, nil
}

// ConcurrentCapacity returns how many rows of one bank can be in test
// simultaneously.
func (r *CopyCompareRegion) ConcurrentCapacity(bank int) int {
	return len(r.free[bank])
}
