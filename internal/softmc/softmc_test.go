package softmc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/obs"
)

func testGeometry() dram.Geometry {
	return dram.Geometry{
		Ranks:         1,
		ChipsPerRank:  1,
		BanksPerChip:  2,
		RowsPerBank:   512,
		ColsPerRow:    512,
		RedundantCols: 16,
	}
}

func newTester(t *testing.T, seed uint64, weakFraction float64) *Tester {
	t.Helper()
	geom := testGeometry()
	scr := dram.NewScrambler(geom, seed, nil)
	params := faults.DefaultParams()
	if weakFraction > 0 {
		params.WeakCellFraction = weakFraction
	}
	model, err := faults.NewModel(geom, scr, seed, params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewTester(mod, model)
	if err != nil {
		t.Fatal(err)
	}
	return tester
}

func TestNewTesterGeometryMismatch(t *testing.T) {
	geomA := testGeometry()
	geomB := testGeometry()
	geomB.RowsPerBank *= 2
	scr := dram.NewScrambler(geomA, 1, nil)
	model, err := faults.NewModel(geomA, scr, 1, faults.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geomB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTester(mod, model); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestPatternNamesAndFill(t *testing.T) {
	row := dram.NewRow(128)
	cases := []struct {
		p        Pattern
		row      int
		wantOnes int
	}{
		{SolidPattern(0), 0, 0},
		{SolidPattern(1), 0, 128},
		{CheckerboardPattern(0), 0, 64},
		{CheckerboardPattern(0), 1, 64},
		{RowStripePattern(0), 0, 0},
		{RowStripePattern(0), 1, 128},
		{ColStripePattern(0), 0, 64},
		{WalkingPattern(1, 3), 0, 2}, // one bit per 64-bit word
		{WalkingPattern(0, 3), 0, 126},
	}
	for _, c := range cases {
		c.p.Fill(row, c.row)
		if got := row.OnesCount(); got != c.wantOnes {
			t.Errorf("%s row %d ones = %d, want %d", c.p.Name, c.row, got, c.wantOnes)
		}
		if c.p.Name == "" {
			t.Error("pattern with empty name")
		}
	}
}

func TestRandomPatternDeterministic(t *testing.T) {
	p := RandomPattern(9)
	a := dram.NewRow(256)
	b := dram.NewRow(256)
	p.Fill(a, 7)
	p.Fill(b, 7)
	if !a.Equal(b) {
		t.Error("random pattern not deterministic per (seed,row)")
	}
	p.Fill(b, 8)
	if a.Equal(b) {
		t.Error("random pattern identical across rows")
	}
}

func TestStandardPatterns(t *testing.T) {
	ps := StandardPatterns(100)
	if len(ps) != 100 {
		t.Fatalf("got %d patterns, want 100", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name] {
			t.Errorf("duplicate pattern name %q", p.Name)
		}
		names[p.Name] = true
	}
	if len(StandardPatterns(4)) != 4 {
		t.Error("truncation to small n failed")
	}
}

func TestIdleAdvancesClock(t *testing.T) {
	tester := newTester(t, 1, 0)
	tester.Idle(5 * dram.Millisecond)
	if tester.Now() != 5*dram.Millisecond {
		t.Errorf("Now = %d", tester.Now())
	}
	tester.Idle(-1) // negative idle is ignored
	if tester.Now() != 5*dram.Millisecond {
		t.Errorf("negative idle changed clock: %d", tester.Now())
	}
}

func TestRunPatternFindsFailures(t *testing.T) {
	tester := newTester(t, 3, 5e-3)
	fails, err := tester.RunPattern(RowStripePattern(0), 2*faults.CharacterizationIdle)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) == 0 {
		t.Fatal("aggressive stripe pattern at 2x idle found no failures; calibration broken")
	}
	for _, f := range fails {
		if len(f.Cells) == 0 {
			t.Error("failure record without failing cells")
		}
	}
}

func TestReadBackCommitsFlipsAndRecharges(t *testing.T) {
	tester := newTester(t, 5, 1e-2)
	fails, err := tester.RunPattern(CheckerboardPattern(0), 2*faults.CharacterizationIdle)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) == 0 {
		t.Skip("no failures with this seed; cannot exercise commit path")
	}
	// Immediately reading back again must observe no failures: all rows
	// were recharged and the flips are now the stored content.
	again := tester.ReadBack()
	if len(again) != 0 {
		t.Errorf("second immediate read-back found %d failing rows, want 0", len(again))
	}
}

func TestDifferentPatternsDifferentFailures(t *testing.T) {
	// Fig. 3: failing cell sets differ across data patterns.
	seed := uint64(7)
	idle := 2 * faults.CharacterizationIdle

	observe := func(p Pattern) map[string]bool {
		tester := newTester(t, seed, 5e-3)
		fails, err := tester.RunPattern(p, idle)
		if err != nil {
			t.Fatal(err)
		}
		set := map[string]bool{}
		for _, f := range fails {
			for _, c := range f.Cells {
				set[keyOf(f.Addr, c)] = true
			}
		}
		return set
	}
	a := observe(SolidPattern(0))
	b := observe(SolidPattern(1))
	onlyA, onlyB := 0, 0
	for k := range a {
		if !b[k] {
			onlyA++
		}
	}
	for k := range b {
		if !a[k] {
			onlyB++
		}
	}
	if onlyA+onlyB == 0 && len(a)+len(b) > 0 {
		t.Error("solid-0 and solid-1 produce identical failing sets; failures are not data-dependent")
	}
	if len(a)+len(b) == 0 {
		t.Skip("no failures with either pattern for this seed")
	}
}

func keyOf(a dram.RowAddress, cell int) string {
	return string(rune(a.Bank)) + ":" + string(rune(a.Row)) + ":" + string(rune(cell))
}

func TestRunContentAndFailingRowFraction(t *testing.T) {
	tester := newTester(t, 11, 0)
	geom := testGeometry()
	rng := rand.New(rand.NewSource(8))
	image := make([]dram.Row, 64)
	for i := range image {
		image[i] = dram.NewRow(geom.ColsPerRow)
		image[i].Randomize(rng)
	}
	frac, err := tester.FailingRowFraction(image, faults.CharacterizationIdle)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0 || frac > 1 {
		t.Errorf("fraction %v outside [0,1]", frac)
	}
	all := tester.AllFailFraction(faults.CharacterizationIdle)
	if frac > all {
		t.Errorf("content failures (%v) exceed all-pattern failures (%v)", frac, all)
	}
	if all <= 0 {
		t.Error("AllFailFraction is zero; default calibration should make some rows vulnerable")
	}
}

func TestFillContentErrors(t *testing.T) {
	tester := newTester(t, 1, 0)
	if err := tester.FillContent(nil); err == nil {
		t.Error("empty image accepted")
	}
	// Wrong-size rows must propagate the module's error.
	if err := tester.FillContent([]dram.Row{dram.NewRow(64)}); err == nil {
		t.Error("wrong-size image row accepted")
	}
}

func TestTestRowDoesNotMutate(t *testing.T) {
	tester := newTester(t, 13, 1e-2)
	if err := tester.FillPattern(RowStripePattern(0)); err != nil {
		t.Fatal(err)
	}
	tester.Idle(2 * faults.CharacterizationIdle)
	g := testGeometry()
	var addr dram.RowAddress
	var cells []int
	for b := 0; b < g.BanksPerChip && cells == nil; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			if c := tester.TestRow(a); len(c) > 0 {
				addr, cells = a, c
				break
			}
		}
	}
	if cells == nil {
		t.Skip("no failing row for this seed")
	}
	// TestRow must be repeatable: no flips committed, no recharge.
	again := tester.TestRow(addr)
	if len(again) != len(cells) {
		t.Errorf("TestRow mutated state: first %v then %v", cells, again)
	}
}

func TestWalkingPatternOffsetNormalization(t *testing.T) {
	// The shift and the name must agree on the normalized offset for
	// negative and >= 64 inputs (the old code shifted by uint(offset)%64
	// but named the pattern with the signed remainder).
	cases := []struct {
		offset  int
		wantBit int
	}{
		{0, 0},
		{3, 3},
		{63, 63},
		{64, 0},
		{72, 8},
		{-1, 63},
		{-8, 56},
		{-64, 0},
		{-65, 63},
	}
	for _, c := range cases {
		p := WalkingPattern(1, c.offset)
		wantName := fmt.Sprintf("walk1-%d", c.wantBit)
		if p.Name != wantName {
			t.Errorf("WalkingPattern(1, %d).Name = %q, want %q", c.offset, p.Name, wantName)
		}
		row := dram.NewRow(64)
		p.Fill(row, 0)
		if row.OnesCount() != 1 || row.Bit(c.wantBit) != 1 {
			t.Errorf("WalkingPattern(1, %d) set bits %v, want only bit %d", c.offset, row, c.wantBit)
		}
		p0 := WalkingPattern(0, c.offset)
		wantName0 := fmt.Sprintf("walk0-%d", c.wantBit)
		if p0.Name != wantName0 {
			t.Errorf("WalkingPattern(0, %d).Name = %q, want %q", c.offset, p0.Name, wantName0)
		}
		p0.Fill(row, 0)
		if row.OnesCount() != 63 || row.Bit(c.wantBit) != 0 {
			t.Errorf("WalkingPattern(0, %d) cleared wrong bit, want only bit %d clear", c.offset, c.wantBit)
		}
	}
}

func TestAllFailFractionParallelCancelled(t *testing.T) {
	tester := newTester(t, 17, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	frac, err := tester.AllFailFractionParallel(ctx, faults.CharacterizationIdle, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scan returned err = %v, want context.Canceled", err)
	}
	if frac != 0 {
		t.Errorf("cancelled scan returned fraction %v alongside the error", frac)
	}
	// The same tester must still produce the real answer afterwards.
	good, err := tester.AllFailFractionParallel(context.Background(), faults.CharacterizationIdle, 4)
	if err != nil {
		t.Fatal(err)
	}
	if good <= 0 {
		t.Error("AllFailFraction is zero; default calibration should make some rows vulnerable")
	}
}

func TestReadBackParallelCancelled(t *testing.T) {
	tester := newTester(t, 17, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tester.ReadBackParallel(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled read-back returned err = %v, want context.Canceled", err)
	}
}

// sequentialReadBack is the seed implementation of ReadBack — a strict
// commit-as-you-go scan — kept as the oracle for the parallel path.
func sequentialReadBack(t *Tester) []RowFailure {
	g := t.mod.Geometry()
	var fails []RowFailure
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			idle := t.mod.IdleTime(a, t.now)
			cells := t.model.FailingCells(t.mod, a, idle)
			if len(cells) > 0 {
				t.mod.ApplyFlips(a, cells)
				fails = append(fails, RowFailure{Addr: a, Cells: cells})
			}
			t.mod.Activate(a, t.now)
		}
	}
	return fails
}

func moduleSnapshot(t *testing.T, mod *dram.Module) []dram.Row {
	t.Helper()
	g := mod.Geometry()
	rows := make([]dram.Row, g.TotalRows())
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			row, err := mod.PeekRow(a)
			if err != nil {
				t.Fatal(err)
			}
			rows[g.RowIndex(a)] = row
		}
	}
	return rows
}

func equalFailures(a, b []RowFailure) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || len(a[i].Cells) != len(b[i].Cells) {
			return false
		}
		for j := range a[i].Cells {
			if a[i].Cells[j] != b[i].Cells[j] {
				return false
			}
		}
	}
	return true
}

// TestReadBackParallelMatchesSequential is the differential test for the
// sharded read-back: at every worker count the failure list AND the
// post-scan module content must be byte-identical to the seed's strictly
// sequential commit-as-you-go scan. The weak-cell population is dense
// enough that physically adjacent weak cells occur, exercising the
// dirty-row re-evaluation in the commit pass.
func TestReadBackParallelMatchesSequential(t *testing.T) {
	const weakFraction = 2e-2
	idle := 2 * faults.CharacterizationIdle
	prep := func(seed uint64, p Pattern) *Tester {
		tester := newTester(t, seed, weakFraction)
		if err := tester.FillPattern(p); err != nil {
			t.Fatal(err)
		}
		tester.Idle(idle)
		return tester
	}
	for _, seed := range []uint64{5, 23} {
		for _, p := range []Pattern{CheckerboardPattern(0), RandomPattern(int64(seed))} {
			refTester := prep(seed, p)
			want := sequentialReadBack(refTester)
			wantContent := moduleSnapshot(t, refTester.mod)
			if len(want) == 0 {
				t.Fatalf("seed %d pattern %s: oracle found no failures; test has no teeth", seed, p.Name)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				tester := prep(seed, p)
				got, err := tester.ReadBackParallel(context.Background(), workers)
				if err != nil {
					t.Fatal(err)
				}
				if !equalFailures(got, want) {
					t.Fatalf("seed %d pattern %s workers %d: failure list diverges from sequential scan (%d vs %d rows)",
						seed, p.Name, workers, len(got), len(want))
				}
				gotContent := moduleSnapshot(t, tester.mod)
				for i := range wantContent {
					if !gotContent[i].Equal(wantContent[i]) {
						t.Fatalf("seed %d pattern %s workers %d: module content diverges at row index %d",
							seed, p.Name, workers, i)
					}
				}
			}
		}
	}
}

// TestReadBackEventsOrderedAcrossWorkers pins the observer contract: the
// KindRowFailure event stream is emitted from the sequential commit pass
// in scan order, identical at every worker count.
func TestReadBackEventsOrderedAcrossWorkers(t *testing.T) {
	idle := 2 * faults.CharacterizationIdle
	run := func(workers int) []obs.Event {
		tester := newTester(t, 5, 2e-2)
		rec := &obs.Recorder{}
		tester.SetObserver(rec)
		tester.SetParallelism(workers)
		if err := tester.FillPattern(CheckerboardPattern(0)); err != nil {
			t.Fatal(err)
		}
		tester.Idle(idle)
		tester.ReadBack()
		return rec.Events()
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("no events recorded; test has no teeth")
	}
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers %d: %d events, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers %d: event %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestReadBackAllocsBounded pins the allocation fix for the parallel
// read-back: the frozen pass reuses per-unit scratch and the commit
// pass packs result cells into one arena, so a steady-state ReadBack
// allocates a bounded handful of slices (result growth + fan-out
// plumbing) instead of one copy per failing row. The bound is loose
// enough for goroutine scheduling noise but far below the per-row
// regime this guards against (hundreds of failing rows per pass here).
func TestReadBackAllocsBounded(t *testing.T) {
	tester := newTester(t, 7, 5e-3)
	tester.SetParallelism(4)
	pattern := CheckerboardPattern(0)
	// Prime the reusable scratch; the first call pays the warm-up.
	if _, err := tester.RunPattern(pattern, faults.CharacterizationIdle); err != nil {
		t.Fatal(err)
	}
	failRows := 0
	allocs := testing.AllocsPerRun(5, func() {
		if err := tester.FillPattern(pattern); err != nil {
			t.Error(err)
			return
		}
		tester.Idle(faults.CharacterizationIdle)
		failRows = len(tester.ReadBack())
	})
	if failRows == 0 {
		t.Fatal("expected failing rows; the allocation bound would be vacuous")
	}
	// FillPattern allocates one row buffer; everything else is
	// ReadBack. 100 covers result-slice growth and parallel fan-out
	// with slack, while the pre-fix per-failing-row copies alone
	// exceeded it several times over.
	if allocs > 100 {
		t.Fatalf("ReadBack cycle allocated %.0f times (bound 100, %d failing rows)", allocs, failRows)
	}
}
