package softmc

import (
	"math/rand"
	"testing"

	"memcon/internal/dram"
	"memcon/internal/faults"
)

func testGeometry() dram.Geometry {
	return dram.Geometry{
		Ranks:         1,
		ChipsPerRank:  1,
		BanksPerChip:  2,
		RowsPerBank:   512,
		ColsPerRow:    512,
		RedundantCols: 16,
	}
}

func newTester(t *testing.T, seed uint64, weakFraction float64) *Tester {
	t.Helper()
	geom := testGeometry()
	scr := dram.NewScrambler(geom, seed, nil)
	params := faults.DefaultParams()
	if weakFraction > 0 {
		params.WeakCellFraction = weakFraction
	}
	model, err := faults.NewModel(geom, scr, seed, params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewTester(mod, model)
	if err != nil {
		t.Fatal(err)
	}
	return tester
}

func TestNewTesterGeometryMismatch(t *testing.T) {
	geomA := testGeometry()
	geomB := testGeometry()
	geomB.RowsPerBank *= 2
	scr := dram.NewScrambler(geomA, 1, nil)
	model, err := faults.NewModel(geomA, scr, 1, faults.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geomB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTester(mod, model); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestPatternNamesAndFill(t *testing.T) {
	row := dram.NewRow(128)
	cases := []struct {
		p        Pattern
		row      int
		wantOnes int
	}{
		{SolidPattern(0), 0, 0},
		{SolidPattern(1), 0, 128},
		{CheckerboardPattern(0), 0, 64},
		{CheckerboardPattern(0), 1, 64},
		{RowStripePattern(0), 0, 0},
		{RowStripePattern(0), 1, 128},
		{ColStripePattern(0), 0, 64},
		{WalkingPattern(1, 3), 0, 2}, // one bit per 64-bit word
		{WalkingPattern(0, 3), 0, 126},
	}
	for _, c := range cases {
		c.p.Fill(row, c.row)
		if got := row.OnesCount(); got != c.wantOnes {
			t.Errorf("%s row %d ones = %d, want %d", c.p.Name, c.row, got, c.wantOnes)
		}
		if c.p.Name == "" {
			t.Error("pattern with empty name")
		}
	}
}

func TestRandomPatternDeterministic(t *testing.T) {
	p := RandomPattern(9)
	a := dram.NewRow(256)
	b := dram.NewRow(256)
	p.Fill(a, 7)
	p.Fill(b, 7)
	if !a.Equal(b) {
		t.Error("random pattern not deterministic per (seed,row)")
	}
	p.Fill(b, 8)
	if a.Equal(b) {
		t.Error("random pattern identical across rows")
	}
}

func TestStandardPatterns(t *testing.T) {
	ps := StandardPatterns(100)
	if len(ps) != 100 {
		t.Fatalf("got %d patterns, want 100", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name] {
			t.Errorf("duplicate pattern name %q", p.Name)
		}
		names[p.Name] = true
	}
	if len(StandardPatterns(4)) != 4 {
		t.Error("truncation to small n failed")
	}
}

func TestIdleAdvancesClock(t *testing.T) {
	tester := newTester(t, 1, 0)
	tester.Idle(5 * dram.Millisecond)
	if tester.Now() != 5*dram.Millisecond {
		t.Errorf("Now = %d", tester.Now())
	}
	tester.Idle(-1) // negative idle is ignored
	if tester.Now() != 5*dram.Millisecond {
		t.Errorf("negative idle changed clock: %d", tester.Now())
	}
}

func TestRunPatternFindsFailures(t *testing.T) {
	tester := newTester(t, 3, 5e-3)
	fails, err := tester.RunPattern(RowStripePattern(0), 2*faults.CharacterizationIdle)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) == 0 {
		t.Fatal("aggressive stripe pattern at 2x idle found no failures; calibration broken")
	}
	for _, f := range fails {
		if len(f.Cells) == 0 {
			t.Error("failure record without failing cells")
		}
	}
}

func TestReadBackCommitsFlipsAndRecharges(t *testing.T) {
	tester := newTester(t, 5, 1e-2)
	fails, err := tester.RunPattern(CheckerboardPattern(0), 2*faults.CharacterizationIdle)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) == 0 {
		t.Skip("no failures with this seed; cannot exercise commit path")
	}
	// Immediately reading back again must observe no failures: all rows
	// were recharged and the flips are now the stored content.
	again := tester.ReadBack()
	if len(again) != 0 {
		t.Errorf("second immediate read-back found %d failing rows, want 0", len(again))
	}
}

func TestDifferentPatternsDifferentFailures(t *testing.T) {
	// Fig. 3: failing cell sets differ across data patterns.
	seed := uint64(7)
	idle := 2 * faults.CharacterizationIdle

	observe := func(p Pattern) map[string]bool {
		tester := newTester(t, seed, 5e-3)
		fails, err := tester.RunPattern(p, idle)
		if err != nil {
			t.Fatal(err)
		}
		set := map[string]bool{}
		for _, f := range fails {
			for _, c := range f.Cells {
				set[keyOf(f.Addr, c)] = true
			}
		}
		return set
	}
	a := observe(SolidPattern(0))
	b := observe(SolidPattern(1))
	onlyA, onlyB := 0, 0
	for k := range a {
		if !b[k] {
			onlyA++
		}
	}
	for k := range b {
		if !a[k] {
			onlyB++
		}
	}
	if onlyA+onlyB == 0 && len(a)+len(b) > 0 {
		t.Error("solid-0 and solid-1 produce identical failing sets; failures are not data-dependent")
	}
	if len(a)+len(b) == 0 {
		t.Skip("no failures with either pattern for this seed")
	}
}

func keyOf(a dram.RowAddress, cell int) string {
	return string(rune(a.Bank)) + ":" + string(rune(a.Row)) + ":" + string(rune(cell))
}

func TestRunContentAndFailingRowFraction(t *testing.T) {
	tester := newTester(t, 11, 0)
	geom := testGeometry()
	rng := rand.New(rand.NewSource(8))
	image := make([]dram.Row, 64)
	for i := range image {
		image[i] = dram.NewRow(geom.ColsPerRow)
		image[i].Randomize(rng)
	}
	frac, err := tester.FailingRowFraction(image, faults.CharacterizationIdle)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0 || frac > 1 {
		t.Errorf("fraction %v outside [0,1]", frac)
	}
	all := tester.AllFailFraction(faults.CharacterizationIdle)
	if frac > all {
		t.Errorf("content failures (%v) exceed all-pattern failures (%v)", frac, all)
	}
	if all <= 0 {
		t.Error("AllFailFraction is zero; default calibration should make some rows vulnerable")
	}
}

func TestFillContentErrors(t *testing.T) {
	tester := newTester(t, 1, 0)
	if err := tester.FillContent(nil); err == nil {
		t.Error("empty image accepted")
	}
	// Wrong-size rows must propagate the module's error.
	if err := tester.FillContent([]dram.Row{dram.NewRow(64)}); err == nil {
		t.Error("wrong-size image row accepted")
	}
}

func TestTestRowDoesNotMutate(t *testing.T) {
	tester := newTester(t, 13, 1e-2)
	if err := tester.FillPattern(RowStripePattern(0)); err != nil {
		t.Fatal(err)
	}
	tester.Idle(2 * faults.CharacterizationIdle)
	g := testGeometry()
	var addr dram.RowAddress
	var cells []int
	for b := 0; b < g.BanksPerChip && cells == nil; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			if c := tester.TestRow(a); len(c) > 0 {
				addr, cells = a, c
				break
			}
		}
	}
	if cells == nil {
		t.Skip("no failing row for this seed")
	}
	// TestRow must be repeatable: no flips committed, no recharge.
	again := tester.TestRow(addr)
	if len(again) != len(cells) {
		t.Errorf("TestRow mutated state: first %v then %v", cells, again)
	}
}
