package softmc

import (
	"testing"

	"memcon/internal/faults"
)

func TestNaiveNeighborTestMissesFailures(t *testing.T) {
	tester := newTester(t, 17, 2e-3)
	idle := faults.CharacterizationIdle

	truth := tester.GroundTruthWeakRows(idle)
	if len(truth) == 0 {
		t.Fatal("ground truth empty; population too sparse for this test")
	}
	flagged := tester.NaiveNeighborTest(idle)

	missed := 0
	for row := range truth {
		if !flagged[row] {
			missed++
		}
	}
	if missed == 0 {
		t.Error("naive linear-mapping test caught everything; the scrambler is not scrambling")
	}
	missRate := float64(missed) / float64(len(truth))
	if missRate < 0.2 {
		t.Errorf("miss rate %.2f, expected substantial misses under scrambling", missRate)
	}
	t.Logf("naive test: %d flagged, %d truly weak, %d missed (%.0f%%)",
		len(flagged), len(truth), missed, 100*missRate)
}

func TestNaiveNeighborTestFindsSomething(t *testing.T) {
	// The naive test is broken, not useless: with a dense population it
	// must still stumble into some failures (the aggressive victim
	// patterns alone stress cells).
	tester := newTester(t, 19, 1e-2)
	flagged := tester.NaiveNeighborTest(2 * faults.CharacterizationIdle)
	if len(flagged) == 0 {
		t.Error("naive test flagged nothing even with a dense weak population")
	}
}

func TestGroundTruthMonotoneInIdle(t *testing.T) {
	tester := newTester(t, 23, 2e-3)
	short := tester.GroundTruthWeakRows(faults.CharacterizationIdle)
	long := tester.GroundTruthWeakRows(4 * faults.CharacterizationIdle)
	if len(long) < len(short) {
		t.Errorf("weak rows decreased with idle time: %d -> %d", len(short), len(long))
	}
	for row := range short {
		if !long[row] {
			t.Fatalf("row %d weak at short idle but not at long idle", row)
		}
	}
}
