package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memcon/internal/dram"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, data := range []uint64{0, 1, ^uint64(0), 0xDEADBEEFCAFEBABE, 1 << 63} {
		cw := Encode(data)
		got, res, _ := Decode(data, cw.Check)
		if res != OK {
			t.Errorf("clean word %x decoded as %v", data, res)
		}
		if got != data {
			t.Errorf("clean word %x changed to %x", data, got)
		}
	}
}

func TestSingleBitCorrection(t *testing.T) {
	data := uint64(0x0123456789ABCDEF)
	cw := Encode(data)
	for bit := 0; bit < 64; bit++ {
		corrupted := data ^ (1 << bit)
		fixed, res, flipped := Decode(corrupted, cw.Check)
		if res != Corrected {
			t.Fatalf("bit %d: result %v, want Corrected", bit, res)
		}
		if fixed != data {
			t.Fatalf("bit %d: repaired to %x, want %x", bit, fixed, data)
		}
		if flipped != bit {
			t.Errorf("bit %d: reported flipped bit %d", bit, flipped)
		}
	}
}

func TestCheckBitMismatchNeverCorruptsData(t *testing.T) {
	// Stored check bits are trusted controller-side state; if they were
	// nevertheless inconsistent, the decoder must never alter the data
	// word into something new on an even-parity mismatch.
	data := uint64(0xFEEDFACE12345678)
	cw := Encode(data)
	for cb := 0; cb < hammingBits; cb++ {
		corrupted := cw.Check ^ (1 << cb)
		fixed, res, _ := Decode(data, corrupted)
		if res == OK {
			t.Errorf("check bit %d mismatch reported OK", cb)
		}
		if res == Detected && fixed != data {
			t.Errorf("check bit %d: detected but data changed to %x", cb, fixed)
		}
	}
	// An overall-parity-bit mismatch alone looks like an odd flip whose
	// syndrome is zero; there is no position to repair, so data must
	// survive regardless of classification.
	fixed, _, _ := Decode(data, cw.Check^(1<<hammingBits))
	if fixed != data {
		t.Errorf("overall-bit mismatch changed data to %x", fixed)
	}
}

func TestDoubleBitDetection(t *testing.T) {
	data := uint64(0xA5A5A5A55A5A5A5A)
	cw := Encode(data)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		a := rng.Intn(64)
		b := rng.Intn(64)
		if a == b {
			continue
		}
		corrupted := data ^ (1 << a) ^ (1 << b)
		fixed, res, _ := Decode(corrupted, cw.Check)
		if res != Detected {
			t.Fatalf("double flip (%d,%d): result %v, want Detected", a, b, res)
		}
		if fixed != corrupted {
			t.Fatalf("double flip (%d,%d): decoder modified an uncorrectable word", a, b)
		}
	}
}

// Property: every single-bit data error is corrected for arbitrary data.
func TestSingleBitCorrectionProperty(t *testing.T) {
	f := func(data uint64, bitRaw uint8) bool {
		bit := int(bitRaw) % 64
		cw := Encode(data)
		fixed, res, _ := Decode(data^(1<<bit), cw.Check)
		return res == Corrected && fixed == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: double data errors are never miscorrected into wrong data.
func TestDoubleBitNeverMiscorrectedProperty(t *testing.T) {
	f := func(data uint64, aRaw, bRaw uint8) bool {
		a, b := int(aRaw)%64, int(bRaw)%64
		if a == b {
			return true
		}
		cw := Encode(data)
		_, res, _ := Decode(data^(1<<a)^(1<<b), cw.Check)
		return res == Detected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() == "" || Detected.String() == "" {
		t.Error("result names broken")
	}
	if Result(42).String() == "" {
		t.Error("unknown result should still stringify")
	}
}

func TestEncodeRowVerifyRow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	row := dram.NewRow(512)
	row.Randomize(rng)
	code := EncodeRow(row)
	if len(code) != len(row) {
		t.Fatalf("code words = %d, want %d", len(code), len(row))
	}

	// Clean row verifies clean.
	v, err := VerifyRow(row.Clone(), code)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean() {
		t.Errorf("clean row verdict %+v", v)
	}

	// Single-bit flips across different words are all repaired.
	damaged := row.Clone()
	damaged.SetBit(3, damaged.Bit(3)^1)
	damaged.SetBit(100, damaged.Bit(100)^1)
	damaged.SetBit(400, damaged.Bit(400)^1)
	v, err = VerifyRow(damaged, code)
	if err != nil {
		t.Fatal(err)
	}
	if v.CorrectedWords != 3 || v.DetectedWords != 0 {
		t.Errorf("verdict %+v, want 3 corrected", v)
	}
	if !damaged.Equal(row) {
		t.Error("repaired row does not match original")
	}

	// Two flips in the same word are detected, not corrected.
	dbl := row.Clone()
	dbl.SetBit(0, dbl.Bit(0)^1)
	dbl.SetBit(1, dbl.Bit(1)^1)
	v, err = VerifyRow(dbl, code)
	if err != nil {
		t.Fatal(err)
	}
	if v.DetectedWords != 1 || v.CorrectedWords != 0 {
		t.Errorf("verdict %+v, want 1 detected", v)
	}
}

func TestVerifyRowLengthMismatch(t *testing.T) {
	if _, err := VerifyRow(dram.NewRow(128), make(RowCode, 1)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestStorageBits(t *testing.T) {
	// 512 in-test rows of 8 KB (65536 bits = 1024 words): 512*1024*8
	// bits = 512 KiB of controller storage.
	got := StorageBits(512, 65536)
	if got != 512*1024*8 {
		t.Errorf("StorageBits = %d, want %d", got, 512*1024*8)
	}
}
