// Package ecc implements the SECDED (single-error-correct,
// double-error-detect) Hamming code used by MEMCON's Copy-and-Compare
// test mode: instead of buffering a whole in-test row in the memory
// controller, only the per-word ECC syndromes are kept, and the
// post-test read-back is checked against them (§3.3). The same code is
// the mitigation substrate the paper lists alongside higher refresh
// rates and remapping.
//
// The code is the standard (72,64) extended Hamming construction: 7
// Hamming parity bits over the 64 data bits plus one overall parity bit.
// It corrects any single-bit error and detects (without miscorrecting)
// any double-bit error.
package ecc

import (
	"fmt"

	"memcon/internal/dram"
)

// Codeword is a 64-bit data word plus its 8 check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// hammingBits is the number of Hamming parity bits for 64 data bits.
const hammingBits = 7

// dataPos maps data bit index (0..63) to its position in the 72-bit
// extended Hamming layout (positions 1..71, skipping the power-of-two
// parity positions). Built once at init.
var dataPos [64]uint

func init() {
	pos := uint(1)
	for i := 0; i < 64; i++ {
		for isPowerOfTwo(pos) {
			pos++
		}
		dataPos[i] = pos
		pos++
	}
}

func isPowerOfTwo(x uint) bool { return x != 0 && x&(x-1) == 0 }

// Encode computes the check bits for a data word.
func Encode(data uint64) Codeword {
	var parity [hammingBits]uint
	overall := uint(0)
	for i := 0; i < 64; i++ {
		bit := uint(data>>i) & 1
		if bit == 0 {
			continue
		}
		overall ^= 1
		p := dataPos[i]
		for j := 0; j < hammingBits; j++ {
			if p&(1<<j) != 0 {
				parity[j] ^= 1
			}
		}
	}
	var check uint8
	for j := 0; j < hammingBits; j++ {
		check |= uint8(parity[j]) << j
	}
	// The eighth check bit is the overall parity of the DATA bits. In
	// this stored-syndrome formulation (check bits are recomputed from
	// the received data rather than transmitted in-band), covering only
	// the data guarantees that any single data-bit flip toggles it,
	// which is what separates single from double errors.
	check |= uint8(overall) << hammingBits
	return Codeword{Data: data, Check: check}
}

// Result classifies a Decode outcome.
type Result int

// Decode outcomes.
const (
	// OK means the word matched its check bits.
	OK Result = iota
	// Corrected means a single-bit error was repaired in place.
	Corrected
	// Detected means a double-bit error was detected but cannot be
	// corrected.
	Detected
)

// String names the result.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Decode checks (and, for single-bit errors, repairs) a received data
// word against the stored check bits. The stored check bits are trusted
// — in MEMCON they live in the memory controller's SRAM, and only DRAM
// cells fail — so any mismatch is attributed to the data word. Decode
// returns the repaired word, the classification, and for Corrected the
// data bit index that flipped (-1 when nothing needed repair).
func Decode(received uint64, stored uint8) (fixed uint64, result Result, flippedBit int) {
	want := Encode(received)
	syndrome := uint(want.Check^stored) & (1<<hammingBits - 1)
	overallMismatch := (want.Check^stored)>>hammingBits&1 == 1

	switch {
	case syndrome == 0 && !overallMismatch:
		return received, OK, -1
	case overallMismatch:
		// Odd number of data flips; under the SECDED guarantee exactly
		// one, at Hamming position `syndrome`.
		for i, p := range dataPos {
			if p == syndrome {
				return received ^ (1 << i), Corrected, i
			}
		}
		// The syndrome points at a parity position, which no single
		// data flip can produce: a >=3-bit corruption outside the
		// guarantee. Flag rather than miscorrect.
		return received, Detected, -1
	default:
		// Even number of data flips (>= 2): detectable, uncorrectable.
		return received, Detected, -1
	}
}

// RowCode holds the per-word check bits of one DRAM row — what the
// memory controller retains during a Copy-and-Compare test.
type RowCode []uint8

// EncodeRow computes check bits for every 64-bit word of a row.
func EncodeRow(row dram.Row) RowCode {
	code := make(RowCode, len(row))
	for i, w := range row {
		code[i] = Encode(w).Check
	}
	return code
}

// RowVerdict summarizes verifying a read-back row against stored codes.
type RowVerdict struct {
	// CorrectedWords counts words repaired in place.
	CorrectedWords int
	// DetectedWords counts words with uncorrectable (>=2 bit) errors.
	DetectedWords int
}

// Clean reports whether the row matched its codes exactly.
func (v RowVerdict) Clean() bool { return v.CorrectedWords == 0 && v.DetectedWords == 0 }

// VerifyRow checks a read-back row against the stored codes, repairing
// single-bit errors in place. Lengths must match.
func VerifyRow(row dram.Row, code RowCode) (RowVerdict, error) {
	if len(row) != len(code) {
		return RowVerdict{}, fmt.Errorf("ecc: row has %d words but code has %d", len(row), len(code))
	}
	var v RowVerdict
	for i := range row {
		fixed, res, _ := Decode(row[i], code[i])
		switch res {
		case Corrected:
			row[i] = fixed
			v.CorrectedWords++
		case Detected:
			v.DetectedWords++
		}
	}
	return v, nil
}

// StorageBits returns the controller storage, in bits, needed to hold
// the codes for n concurrent in-test rows of the given row size — the
// §3.3 footnote's "only the ECC information is calculated and stored in
// the memory controller".
func StorageBits(rows, colsPerRow int) int {
	wordsPerRow := colsPerRow / 64
	return rows * wordsPerRow * 8
}
