package workload

import (
	"testing"

	"memcon/internal/pareto"
	"memcon/internal/stats"
)

func TestAppsInventory(t *testing.T) {
	apps := Apps()
	if len(apps) != 12 {
		t.Fatalf("got %d apps, want 12 (Table 1)", len(apps))
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			t.Errorf("duplicate app %q", a.Name)
		}
		seen[a.Name] = true
		if a.DurationSec <= 0 || a.Pages <= 0 || a.HotClusterLen <= 0 || a.HotPauseMs <= 0 {
			t.Errorf("%s: non-positive parameters: %+v", a.Name, a)
		}
		if !a.IdleDist.Valid() {
			t.Errorf("%s: invalid idle distribution %+v", a.Name, a.IdleDist)
		}
		if a.HotFraction < 0 || a.HotFraction > 0.1 {
			t.Errorf("%s: implausible hot fraction %v", a.Name, a.HotFraction)
		}
		if a.EpisodeExtra < 0 || a.EpisodeExtra > 0.5 {
			t.Errorf("%s: implausible episode-extra probability %v", a.Name, a.EpisodeExtra)
		}
	}
	for _, name := range []string{"ACBrotherHood", "Netflix", "SystemMgt"} {
		if !seen[name] {
			t.Errorf("representative workload %q missing", name)
		}
	}
}

func TestAppByName(t *testing.T) {
	a, err := AppByName("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != "Video streaming" {
		t.Errorf("Netflix type = %q", a.Type)
	}
	if _, err := AppByName("nonexistent"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	app, _ := AppByName("BlurMotion")
	a := app.Generate(1, 0.1)
	b := app.Generate(1, 0.1)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed different lengths: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	c := app.Generate(2, 0.1)
	if len(a.Events) == len(c.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateValidTrace(t *testing.T) {
	app, _ := AppByName("SystemMgt")
	tr := app.Generate(7, 0.05)
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if tr.Name != "SystemMgt" {
		t.Errorf("trace name = %q", tr.Name)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	if tr.Pages() < 8 {
		t.Errorf("too few pages: %d", tr.Pages())
	}
}

func TestGenerateScaleClamping(t *testing.T) {
	app, _ := AppByName("BlurMotion")
	// Out-of-range scales fall back to full scale rather than failing.
	tr := app.Generate(1, -1)
	if tr.Pages() < app.Pages {
		t.Errorf("scale<=0 should mean full size, got %d pages", tr.Pages())
	}
}

// The statistical contract the paper's analysis needs (Section 4.1):
// the overwhelming majority of writes occur within 1 ms of the previous
// write, yet intervals longer than 1024 ms carry most of the time.
func TestGeneratedTraceMatchesPaperStatistics(t *testing.T) {
	for _, name := range []string{"ACBrotherHood", "Netflix", "SystemMgt"} {
		app, err := AppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := app.Generate(42, 0.15)
		intervals := tr.Intervals(true)
		if len(intervals) < 1000 {
			t.Fatalf("%s: too few intervals (%d) for statistics", name, len(intervals))
		}
		var under1ms, count int
		var total, longTime float64
		for _, iv := range intervals {
			count++
			if iv < 1 {
				under1ms++
			}
			total += iv
			if iv > 1024 {
				longTime += iv
			}
		}
		shortFrac := float64(under1ms) / float64(count)
		if shortFrac < 0.90 {
			t.Errorf("%s: only %.1f%% of writes under 1 ms, want > 90%% (paper: >95%%)", name, 100*shortFrac)
		}
		timeShare := longTime / total
		if timeShare < 0.6 {
			t.Errorf("%s: long intervals carry %.1f%% of time, want > 60%% (paper avg: 89.5%%)", name, 100*timeShare)
		}
	}
}

// Fig. 8: the tail of the write-interval distribution fits a Pareto
// distribution with high R².
func TestGeneratedTraceParetoTail(t *testing.T) {
	app, _ := AppByName("Netflix")
	tr := app.Generate(42, 0.15)
	fit, err := pareto.FitCCDFTail(tr.Intervals(false), nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.9 {
		t.Errorf("Pareto tail fit R2 = %.3f, want >= 0.9 (paper: >0.93)", fit.R2)
	}
	if fit.Dist.Alpha <= 0.2 || fit.Dist.Alpha > 2.5 {
		t.Errorf("fitted alpha = %.2f, implausible for configured tail", fit.Dist.Alpha)
	}
}

func TestGenerateReads(t *testing.T) {
	app, _ := AppByName("FinalCutPro")
	reads := app.GenerateReads(3, 0.05)
	if err := reads.Validate(); err != nil {
		t.Fatalf("read trace invalid: %v", err)
	}
	if len(reads.Events) == 0 {
		t.Fatal("empty read trace")
	}
	if reads.Name != "FinalCutPro-reads" {
		t.Errorf("name = %q", reads.Name)
	}
	// Deterministic.
	again := app.GenerateReads(3, 0.05)
	if len(again.Events) != len(reads.Events) {
		t.Error("read generation not deterministic")
	}
	// Reads are independent of the write stream (different seed space).
	writes := app.Generate(3, 0.05)
	if len(writes.Events) == len(reads.Events) {
		same := true
		for i := range writes.Events {
			if writes.Events[i] != reads.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("read trace identical to write trace")
		}
	}
}

func TestSPECContentsInventory(t *testing.T) {
	specs := SPECContents()
	if len(specs) != 20 {
		t.Fatalf("got %d SPEC content specs, want 20 (Fig. 4)", len(specs))
	}
	seen := map[string]bool{}
	for _, c := range specs {
		if seen[c.Name] {
			t.Errorf("duplicate benchmark %q", c.Name)
		}
		seen[c.Name] = true
		if c.ZeroRowFraction < 0 || c.ZeroRowFraction > 1 ||
			c.OnesDensity < 0 || c.OnesDensity > 1 ||
			c.WordSparsity < 0 || c.WordSparsity > 1 {
			t.Errorf("%s: parameter out of range: %+v", c.Name, c)
		}
	}
}

func TestContentByName(t *testing.T) {
	c, err := ContentByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "mcf" {
		t.Errorf("name = %q", c.Name)
	}
	if _, err := ContentByName("quake"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestImageStatistics(t *testing.T) {
	c := ContentSpec{Name: "synthetic", ZeroRowFraction: 0.5, OnesDensity: 0.5, WordSparsity: 0}
	img := c.Image(2000, 512, 0, 1)
	if len(img) != 2000 {
		t.Fatalf("rows = %d", len(img))
	}
	zero := 0
	var density []float64
	for _, row := range img {
		ones := row.OnesCount()
		if ones == 0 {
			zero++
		} else {
			density = append(density, float64(ones)/512)
		}
	}
	zf := float64(zero) / 2000
	if zf < 0.45 || zf > 0.55 {
		t.Errorf("zero-row fraction = %.3f, want ~0.5", zf)
	}
	if m := stats.Mean(density); m < 0.45 || m > 0.55 {
		t.Errorf("ones density = %.3f, want ~0.5", m)
	}
}

func TestImageDensityOrdering(t *testing.T) {
	sparse := ContentSpec{Name: "s", ZeroRowFraction: 0, OnesDensity: 0.2, WordSparsity: 0}
	dense := ContentSpec{Name: "d", ZeroRowFraction: 0, OnesDensity: 0.5, WordSparsity: 0}
	countOnes := func(c ContentSpec) int {
		total := 0
		for _, row := range c.Image(500, 512, 0, 3) {
			total += row.OnesCount()
		}
		return total
	}
	if countOnes(sparse) >= countOnes(dense) {
		t.Error("sparse content has at least as many ones as dense content")
	}
}

func TestImagePhasesDiffer(t *testing.T) {
	c, _ := ContentByName("gcc")
	a := c.Image(100, 512, 0, 1)
	b := c.Image(100, 512, 1, 1)
	same := 0
	for i := range a {
		if a[i].Equal(b[i]) {
			same++
		}
	}
	// Zero rows can coincide; non-zero rows should essentially never.
	if same > 60 {
		t.Errorf("%d/100 rows identical across phases", same)
	}
}

func TestImageDeterministic(t *testing.T) {
	c, _ := ContentByName("lbm")
	a := c.Image(50, 512, 2, 9)
	b := c.Image(50, 512, 2, 9)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("row %d differs between identical generations", i)
		}
	}
}

func TestBiasedWordExtremes(t *testing.T) {
	c := ContentSpec{Name: "x", ZeroRowFraction: 0, OnesDensity: 0, WordSparsity: 0}
	for _, row := range c.Image(10, 256, 0, 1) {
		if row.OnesCount() != 0 {
			t.Error("density 0 produced ones")
		}
	}
	c.OnesDensity = 1
	for _, row := range c.Image(10, 256, 0, 1) {
		if row.OnesCount() != 256 {
			t.Error("density 1 produced zeros")
		}
	}
}

func TestSimBenchmarks(t *testing.T) {
	bench := SimBenchmarks()
	if len(bench) < 20 {
		t.Fatalf("got %d benchmarks, want >= 20", len(bench))
	}
	names := map[string]bool{}
	for _, b := range bench {
		if names[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		if b.MPKI <= 0 || b.BaseIPC <= 0 {
			t.Errorf("%s: non-positive intensity params", b.Name)
		}
		if b.RowHitRate < 0 || b.RowHitRate > 1 || b.WriteFraction < 0 || b.WriteFraction > 1 {
			t.Errorf("%s: rate out of range", b.Name)
		}
	}
	if !names["tpcc"] || !names["tpch"] {
		t.Error("TPC server benchmarks missing")
	}
}

func TestMixes(t *testing.T) {
	mixes := Mixes(30, 4, 1)
	if len(mixes) != 30 {
		t.Fatalf("got %d mixes, want 30", len(mixes))
	}
	for i, m := range mixes {
		if len(m) != 4 {
			t.Errorf("mix %d has %d benchmarks, want 4", i, len(m))
		}
	}
	again := Mixes(30, 4, 1)
	for i := range mixes {
		for j := range mixes[i] {
			if mixes[i][j].Name != again[i][j].Name {
				t.Fatal("mixes not deterministic")
			}
		}
	}
	other := Mixes(30, 4, 2)
	diff := false
	for i := range mixes {
		for j := range mixes[i] {
			if mixes[i][j].Name != other[i][j].Name {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical mixes")
	}
}
