// Package workload synthesizes the two workload families the MEMCON
// evaluation consumes, substituting for inputs this reproduction cannot
// have (FPGA bus traces of commercial applications and SPEC CPU2006
// memory-content dumps):
//
//   - Long-running application write traces (Table 1 analogues): per-page
//     DRAM write-back streams whose idle intervals follow
//     per-application Pareto distributions, reproducing the statistical
//     structure the paper measures (Figs. 7-12) — >95% of writes within
//     1 ms of the previous write, a heavy tail of long intervals
//     carrying ~90% of the execution time, and long-idle episodes that
//     are predominantly single write-backs (the property PRIL's
//     one-write-per-quantum filter relies on, §4.2 footnote).
//   - SPEC CPU2006 memory-content images (Fig. 4): per-benchmark bit
//     images with characteristic sparsity/entropy so different
//     benchmarks excite different numbers of data-dependent failures.
//
// It also carries the per-benchmark core-model parameters the
// performance simulator uses for SPEC/TPC multiprogrammed mixes.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"memcon/internal/pareto"
	"memcon/internal/trace"
)

// AppSpec describes one long-running application trace generator. The
// reporting fields mirror Table 1 of the paper; the rest parameterize
// the statistical structure of the generated write-back stream.
//
// Two page populations model what a memory-bus tracer sees:
//
//   - Hot pages (a small fraction) absorb most of the write COUNT: they
//     emit dense clusters of write-backs (sub-millisecond gaps) with
//     short exponential pauses. They are rewritten every quantum and are
//     never predicted long — correctly so.
//   - Cold pages carry most of the page population and the TIME: each
//     emits short write episodes (usually a single write-back,
//     occasionally a few within a millisecond) separated by
//     Pareto-distributed idle gaps.
type AppSpec struct {
	// Name is the application name (Table 1).
	Name string
	// Type is the application domain, for reporting.
	Type string
	// DurationSec is the traced execution time in seconds.
	DurationSec float64
	// MemGB is the nominal footprint, for reporting only.
	MemGB float64
	// Threads is the nominal thread count, for reporting only.
	Threads int

	// Pages is the number of distinct pages touched at full scale.
	Pages int
	// HotFraction is the fraction of hot pages.
	HotFraction float64
	// HotClusterLen is the mean number of write-backs per hot cluster.
	HotClusterLen int
	// HotPauseMs is the mean of the exponential pause between hot
	// clusters, in milliseconds (well below the 1024 ms threshold).
	HotPauseMs float64
	// EpisodeExtra is the probability that a cold episode carries extra
	// write-backs beyond the first (small: episodes are mostly
	// singletons, which is what lets PRIL's one-write-per-quantum filter
	// keep its accuracy).
	EpisodeExtra float64
	// IntraGapUs is the mean microseconds between write-backs inside an
	// episode or cluster.
	IntraGapUs float64
	// IdleDist is the Pareto distribution of cold idle gaps, in
	// milliseconds.
	IdleDist pareto.Dist
}

// Apps returns the twelve long-running application generators standing
// in for the paper's Table 1 workloads. Streaming and playback
// workloads idle longest (small alpha, large scale); system-management
// and gaming workloads rewrite more.
func Apps() []AppSpec {
	return []AppSpec{
		{Name: "ACBrotherHood", Type: "Game", DurationSec: 209.1, MemGB: 2.8, Threads: 8,
			Pages: 3000, HotFraction: 0.010, HotClusterLen: 110, HotPauseMs: 150,
			EpisodeExtra: 0.09, IntraGapUs: 90, IdleDist: pareto.Dist{Xm: 1200, Alpha: 0.62}},
		{Name: "AdobePhotoshop", Type: "Photo editing", DurationSec: 149.2, MemGB: 3.0, Threads: 4,
			Pages: 2600, HotFraction: 0.011, HotClusterLen: 100, HotPauseMs: 140,
			EpisodeExtra: 0.08, IntraGapUs: 100, IdleDist: pareto.Dist{Xm: 1500, Alpha: 0.59}},
		{Name: "AllSysMark", Type: "Media creation", DurationSec: 300.0, MemGB: 3.4, Threads: 4,
			Pages: 3200, HotFraction: 0.009, HotClusterLen: 110, HotPauseMs: 160,
			EpisodeExtra: 0.08, IntraGapUs: 95, IdleDist: pareto.Dist{Xm: 1400, Alpha: 0.60}},
		{Name: "AVCHD", Type: "Video playback", DurationSec: 217.3, MemGB: 5.2, Threads: 2,
			Pages: 2400, HotFraction: 0.009, HotClusterLen: 130, HotPauseMs: 180,
			EpisodeExtra: 0.05, IntraGapUs: 80, IdleDist: pareto.Dist{Xm: 2500, Alpha: 0.52}},
		{Name: "BlurMotion", Type: "Image processing", DurationSec: 93.4, MemGB: 0.2, Threads: 2,
			Pages: 1400, HotFraction: 0.018, HotClusterLen: 90, HotPauseMs: 120,
			EpisodeExtra: 0.10, IntraGapUs: 110, IdleDist: pareto.Dist{Xm: 1200, Alpha: 0.65}},
		{Name: "FinalCutPro", Type: "Video editing", DurationSec: 76.9, MemGB: 3.0, Threads: 2,
			Pages: 2000, HotFraction: 0.013, HotClusterLen: 100, HotPauseMs: 130,
			EpisodeExtra: 0.08, IntraGapUs: 100, IdleDist: pareto.Dist{Xm: 1400, Alpha: 0.60}},
		{Name: "FinalMaster", Type: "Movie display", DurationSec: 248.1, MemGB: 2.0, Threads: 2,
			Pages: 2200, HotFraction: 0.009, HotClusterLen: 120, HotPauseMs: 170,
			EpisodeExtra: 0.06, IntraGapUs: 85, IdleDist: pareto.Dist{Xm: 2000, Alpha: 0.55}},
		{Name: "AdobePremiere", Type: "Video editing", DurationSec: 298.8, MemGB: 5.0, Threads: 2,
			Pages: 2800, HotFraction: 0.010, HotClusterLen: 105, HotPauseMs: 150,
			EpisodeExtra: 0.08, IntraGapUs: 95, IdleDist: pareto.Dist{Xm: 1600, Alpha: 0.58}},
		{Name: "MotionPlayBack", Type: "Video processing", DurationSec: 233.9, MemGB: 5.6, Threads: 2,
			Pages: 2500, HotFraction: 0.008, HotClusterLen: 135, HotPauseMs: 190,
			EpisodeExtra: 0.05, IntraGapUs: 75, IdleDist: pareto.Dist{Xm: 3000, Alpha: 0.50}},
		{Name: "Netflix", Type: "Video streaming", DurationSec: 229.4, MemGB: 4.6, Threads: 2,
			Pages: 2300, HotFraction: 0.008, HotClusterLen: 140, HotPauseMs: 200,
			EpisodeExtra: 0.04, IntraGapUs: 70, IdleDist: pareto.Dist{Xm: 4000, Alpha: 0.50}},
		{Name: "SystemMgt", Type: "Win 7 managing", DurationSec: 300.0, MemGB: 7.6, Threads: 2,
			Pages: 3600, HotFraction: 0.010, HotClusterLen: 90, HotPauseMs: 130,
			EpisodeExtra: 0.10, IntraGapUs: 110, IdleDist: pareto.Dist{Xm: 1200, Alpha: 0.64}},
		{Name: "VideoEncode", Type: "Video encoding", DurationSec: 299.1, MemGB: 7.3, Threads: 4,
			Pages: 3000, HotFraction: 0.009, HotClusterLen: 105, HotPauseMs: 150,
			EpisodeExtra: 0.08, IntraGapUs: 95, IdleDist: pareto.Dist{Xm: 1600, Alpha: 0.58}},
	}
}

// AppByName returns the spec with the given name.
func AppByName(name string) (AppSpec, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return AppSpec{}, fmt.Errorf("workload: unknown application %q", name)
}

// Generate synthesizes the application's write trace. The result is
// deterministic in (spec, seed). Scale in (0, 1] shrinks the page count
// proportionally to bound generation cost in tests; values outside the
// range mean full scale.
func (a AppSpec) Generate(seed int64, scale float64) *trace.Trace {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	duration := trace.Microseconds(a.DurationSec * float64(trace.Second))
	tr := &trace.Trace{Name: a.Name, Duration: duration}
	pages := int(float64(a.Pages) * scale)
	if pages < 8 {
		pages = 8
	}
	hot := int(float64(pages)*a.HotFraction + 0.5)
	if hot < 1 {
		hot = 1
	}

	for p := 0; p < pages; p++ {
		page := uint32(p)
		if p < hot {
			a.genHotPage(rng, tr, page, duration)
		} else {
			a.genColdPage(rng, tr, page, duration)
		}
	}
	tr.Sort()
	return tr
}

// genHotPage emits dense write-back clusters with short exponential
// pauses: the page is rewritten every quantum and never idles long.
func (a AppSpec) genHotPage(rng *rand.Rand, tr *trace.Trace, page uint32, duration trace.Microseconds) {
	at := trace.Microseconds(rng.Float64() * a.HotPauseMs * float64(trace.Millisecond))
	for at < duration {
		n := 1 + int(rng.ExpFloat64()*float64(a.HotClusterLen))
		for i := 0; i < n && at < duration; i++ {
			tr.Events = append(tr.Events, trace.Event{Page: page, At: at})
			at += trace.Microseconds(rng.ExpFloat64()*a.IntraGapUs) + 1
		}
		at += trace.Microseconds(rng.ExpFloat64() * a.HotPauseMs * float64(trace.Millisecond))
	}
}

// GenerateReads synthesizes a READ trace matched to the application:
// hot pages are read at cluster cadence, cold pages are read at a
// per-page rate drawn log-uniformly between once per second and once
// per minute. Read traces feed the read-aware refresh-skip analysis
// (the paper's footnote-3 future work).
func (a AppSpec) GenerateReads(seed int64, scale float64) *trace.Trace {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eeded))
	duration := trace.Microseconds(a.DurationSec * float64(trace.Second))
	tr := &trace.Trace{Name: a.Name + "-reads", Duration: duration}
	pages := int(float64(a.Pages) * scale)
	if pages < 8 {
		pages = 8
	}
	hot := int(float64(pages)*a.HotFraction + 0.5)
	if hot < 1 {
		hot = 1
	}
	for p := 0; p < pages; p++ {
		page := uint32(p)
		var meanGapUs float64
		if p < hot {
			meanGapUs = a.HotPauseMs * 1000 / 4 // read more often than written
		} else {
			// Log-uniform mean inter-read gap between 1 s and 60 s.
			meanGapUs = 1e6 * math.Exp(rng.Float64()*math.Log(60))
		}
		at := trace.Microseconds(rng.Float64() * meanGapUs)
		for at < duration {
			tr.Events = append(tr.Events, trace.Event{Page: page, At: at})
			at += trace.Microseconds(rng.ExpFloat64()*meanGapUs) + 1
		}
	}
	tr.Sort()
	return tr
}

// genColdPage emits the canonical MEMCON-friendly behaviour: mostly
// single write-backs separated by Pareto-distributed idle gaps;
// occasionally an episode carries a couple of extra write-backs within a
// millisecond.
func (a AppSpec) genColdPage(rng *rand.Rand, tr *trace.Trace, page uint32, duration trace.Microseconds) {
	// Stagger page start times across the first idle scale.
	at := trace.Microseconds(rng.Float64() * float64(a.IdleDist.Xm) * float64(trace.Millisecond))
	for at < duration {
		n := 1
		if rng.Float64() < a.EpisodeExtra {
			n += 1 + rng.Intn(2)
		}
		for i := 0; i < n && at < duration; i++ {
			tr.Events = append(tr.Events, trace.Event{Page: page, At: at})
			at += trace.Microseconds(rng.ExpFloat64()*a.IntraGapUs) + 1
		}
		gap := a.IdleDist.Sample(rng)
		at += trace.Microseconds(gap * float64(trace.Millisecond))
	}
}
