package workload

import (
	"fmt"
	"math/rand"

	"memcon/internal/dram"
)

// ContentSpec describes the memory-content characteristics of one SPEC
// CPU2006 benchmark, the knobs that determine how many data-dependent
// failures its in-memory image excites (Fig. 4). The knobs are
// content-class abstractions:
//
//   - ZeroRowFraction: fraction of rows that are entirely zero
//     (untouched heap, zeroed pages). Solid regions stress cells whose
//     orientation stores the complement as charge.
//   - OnesDensity: probability that a bit in a non-zero region is 1;
//     pointer- and integer-heavy benchmarks sit well below 0.5, media
//     and compression benchmarks near 0.5 (high entropy).
//   - WordSparsity: fraction of 64-bit words in non-zero rows that are
//     zero anyway (sparse structures).
type ContentSpec struct {
	Name            string
	ZeroRowFraction float64
	OnesDensity     float64
	WordSparsity    float64
}

// SPECContents returns the 20 SPEC CPU2006 benchmark content generators
// in the order Fig. 4 plots them. The parameters span the content
// aggressiveness range so that failing-row fractions spread between the
// paper's 0.38% and 5.6% extremes.
func SPECContents() []ContentSpec {
	return []ContentSpec{
		{Name: "perl", ZeroRowFraction: 0.30, OnesDensity: 0.34, WordSparsity: 0.35},
		{Name: "bzip", ZeroRowFraction: 0.05, OnesDensity: 0.50, WordSparsity: 0.05},
		{Name: "gcc", ZeroRowFraction: 0.25, OnesDensity: 0.36, WordSparsity: 0.30},
		{Name: "mcf", ZeroRowFraction: 0.15, OnesDensity: 0.42, WordSparsity: 0.45},
		{Name: "zeusmp", ZeroRowFraction: 0.10, OnesDensity: 0.46, WordSparsity: 0.15},
		{Name: "cactus", ZeroRowFraction: 0.12, OnesDensity: 0.45, WordSparsity: 0.20},
		{Name: "gobmk", ZeroRowFraction: 0.35, OnesDensity: 0.30, WordSparsity: 0.40},
		{Name: "namd", ZeroRowFraction: 0.08, OnesDensity: 0.47, WordSparsity: 0.10},
		{Name: "soplex", ZeroRowFraction: 0.20, OnesDensity: 0.40, WordSparsity: 0.35},
		{Name: "dealII", ZeroRowFraction: 0.18, OnesDensity: 0.41, WordSparsity: 0.30},
		{Name: "calculix", ZeroRowFraction: 0.15, OnesDensity: 0.44, WordSparsity: 0.20},
		{Name: "hmmer", ZeroRowFraction: 0.10, OnesDensity: 0.48, WordSparsity: 0.10},
		{Name: "libquant", ZeroRowFraction: 0.55, OnesDensity: 0.20, WordSparsity: 0.60},
		{Name: "gems", ZeroRowFraction: 0.12, OnesDensity: 0.45, WordSparsity: 0.18},
		{Name: "h264ref", ZeroRowFraction: 0.08, OnesDensity: 0.49, WordSparsity: 0.08},
		{Name: "tonto", ZeroRowFraction: 0.22, OnesDensity: 0.38, WordSparsity: 0.28},
		{Name: "omnetpp", ZeroRowFraction: 0.28, OnesDensity: 0.33, WordSparsity: 0.42},
		{Name: "lbm", ZeroRowFraction: 0.06, OnesDensity: 0.49, WordSparsity: 0.06},
		{Name: "xalanc", ZeroRowFraction: 0.40, OnesDensity: 0.27, WordSparsity: 0.50},
		{Name: "astar", ZeroRowFraction: 0.45, OnesDensity: 0.24, WordSparsity: 0.55},
	}
}

// ContentByName returns the content spec for a benchmark.
func ContentByName(name string) (ContentSpec, error) {
	for _, c := range SPECContents() {
		if c.Name == name {
			return c, nil
		}
	}
	return ContentSpec{}, fmt.Errorf("workload: unknown SPEC benchmark %q", name)
}

// Image synthesizes a memory-content image of the given number of rows,
// each with cols cells (cols must be a multiple of 64). phase selects
// the execution phase (the paper dumps content every 100M instructions);
// different phases yield different images of the same statistical class.
// The result is deterministic in (spec, rows, cols, phase, seed).
func (c ContentSpec) Image(rows, cols int, phase int, seed int64) []dram.Row {
	rng := rand.New(rand.NewSource(seed ^ int64(phase)*0x9E3779B97F4A7))
	img := make([]dram.Row, rows)
	for r := range img {
		row := dram.NewRow(cols)
		if rng.Float64() >= c.ZeroRowFraction {
			for w := 0; w < cols/64; w++ {
				if rng.Float64() < c.WordSparsity {
					continue // sparse zero word
				}
				row[w] = biasedWord(rng, c.OnesDensity)
			}
		}
		img[r] = row
	}
	return img
}

// biasedWord draws a 64-bit word whose bits are 1 with probability p.
func biasedWord(rng *rand.Rand, p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	case p == 0.5:
		return rng.Uint64()
	}
	// Compose from uniform words: AND reduces density by half, OR
	// increases it. Build a 4-step approximation of p.
	w := rng.Uint64()
	density := 0.5
	for i := 0; i < 4; i++ {
		if density > p {
			w &= rng.Uint64()
			density /= 2
		} else {
			w |= rng.Uint64() & rng.Uint64()
			density += (1 - density) / 4
		}
	}
	return w
}

// CoreParams models one benchmark for the performance simulator: how
// memory-intensive it is and how its accesses behave at the DRAM.
type CoreParams struct {
	Name string
	// MPKI is misses (DRAM accesses) per kilo-instruction.
	MPKI float64
	// BaseIPC is the IPC the core would achieve with a perfect memory
	// system.
	BaseIPC float64
	// RowHitRate is the fraction of accesses that hit the open row.
	RowHitRate float64
	// WriteFraction is the fraction of accesses that are writes.
	WriteFraction float64
}

// SimBenchmarks returns the SPEC CPU2006 + TPC benchmark models used to
// build the 30 multiprogrammed mixes of the performance evaluation
// (Fig. 15/16, Table 3). MPKI values follow the well-known
// memory-intensity ordering of SPEC CPU2006 plus two TPC server
// workloads.
func SimBenchmarks() []CoreParams {
	return []CoreParams{
		{Name: "perl", MPKI: 0.8, BaseIPC: 2.2, RowHitRate: 0.75, WriteFraction: 0.28},
		{Name: "bzip", MPKI: 3.5, BaseIPC: 1.8, RowHitRate: 0.62, WriteFraction: 0.32},
		{Name: "gcc", MPKI: 5.0, BaseIPC: 1.6, RowHitRate: 0.58, WriteFraction: 0.30},
		{Name: "mcf", MPKI: 36.0, BaseIPC: 0.9, RowHitRate: 0.30, WriteFraction: 0.24},
		{Name: "milc", MPKI: 18.0, BaseIPC: 1.1, RowHitRate: 0.45, WriteFraction: 0.26},
		{Name: "zeusmp", MPKI: 6.0, BaseIPC: 1.5, RowHitRate: 0.60, WriteFraction: 0.29},
		{Name: "cactus", MPKI: 5.5, BaseIPC: 1.5, RowHitRate: 0.62, WriteFraction: 0.27},
		{Name: "leslie3d", MPKI: 14.0, BaseIPC: 1.2, RowHitRate: 0.55, WriteFraction: 0.25},
		{Name: "gobmk", MPKI: 1.2, BaseIPC: 2.0, RowHitRate: 0.70, WriteFraction: 0.26},
		{Name: "soplex", MPKI: 22.0, BaseIPC: 1.0, RowHitRate: 0.40, WriteFraction: 0.23},
		{Name: "hmmer", MPKI: 1.5, BaseIPC: 2.1, RowHitRate: 0.72, WriteFraction: 0.30},
		{Name: "sjeng", MPKI: 0.9, BaseIPC: 2.0, RowHitRate: 0.68, WriteFraction: 0.27},
		{Name: "gems", MPKI: 25.0, BaseIPC: 1.0, RowHitRate: 0.42, WriteFraction: 0.24},
		{Name: "libquant", MPKI: 28.0, BaseIPC: 1.1, RowHitRate: 0.85, WriteFraction: 0.20},
		{Name: "h264ref", MPKI: 1.8, BaseIPC: 2.0, RowHitRate: 0.70, WriteFraction: 0.31},
		{Name: "lbm", MPKI: 32.0, BaseIPC: 1.0, RowHitRate: 0.50, WriteFraction: 0.40},
		{Name: "omnetpp", MPKI: 21.0, BaseIPC: 1.0, RowHitRate: 0.35, WriteFraction: 0.25},
		{Name: "astar", MPKI: 9.0, BaseIPC: 1.3, RowHitRate: 0.50, WriteFraction: 0.26},
		{Name: "xalanc", MPKI: 12.0, BaseIPC: 1.2, RowHitRate: 0.48, WriteFraction: 0.27},
		{Name: "wrf", MPKI: 7.0, BaseIPC: 1.4, RowHitRate: 0.58, WriteFraction: 0.28},
		{Name: "tpcc", MPKI: 16.0, BaseIPC: 1.1, RowHitRate: 0.38, WriteFraction: 0.35},
		{Name: "tpch", MPKI: 13.0, BaseIPC: 1.2, RowHitRate: 0.44, WriteFraction: 0.22},
	}
}

// Mixes builds n multiprogrammed workload mixes of k benchmarks each by
// deterministic random selection, the way the paper combines 4
// randomly-selected applications into 30 mixes.
func Mixes(n, k int, seed int64) [][]CoreParams {
	bench := SimBenchmarks()
	rng := rand.New(rand.NewSource(seed))
	mixes := make([][]CoreParams, n)
	for i := range mixes {
		mix := make([]CoreParams, k)
		for j := range mix {
			mix[j] = bench[rng.Intn(len(bench))]
		}
		mixes[i] = mix
	}
	return mixes
}
