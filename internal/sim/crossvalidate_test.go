package sim

import (
	"math/rand"
	"testing"

	"memcon/internal/ddr3"
	"memcon/internal/dram"
	"memcon/internal/memctrl"
)

// Cross-validation between the two memory-system fidelity tiers: the
// aggregate memctrl model (drives the large Fig. 15/16 sweeps) and the
// command-level ddr3 model (enforces the full JEDEC constraint set).
// They are different abstractions and will not agree in absolute
// latency, but the refresh-reduction TREND — the quantity every paper
// result rests on — must agree in direction and rough magnitude.

// requestPattern is a shared access stream.
type requestPattern struct {
	at    dram.Nanoseconds
	bank  int
	row   int
	write bool
}

func sharedPattern(n int, seed int64) []requestPattern {
	rng := rand.New(rand.NewSource(seed))
	var out []requestPattern
	at := dram.Nanoseconds(0)
	for i := 0; i < n; i++ {
		at += dram.Nanoseconds(rng.Intn(120))
		out = append(out, requestPattern{
			at:    at,
			bank:  rng.Intn(8),
			row:   rng.Intn(32),
			write: rng.Intn(4) == 0,
		})
	}
	return out
}

func memctrlAvgLatency(t *testing.T, pat []requestPattern, period dram.Nanoseconds) float64 {
	t.Helper()
	cfg := memctrl.DefaultConfig()
	cfg.Density = dram.Density32Gb
	cfg.RefreshPeriod = period
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, r := range pat {
		done, err := ctrl.Access(r.at, r.bank, r.row, r.write)
		if err != nil {
			t.Fatal(err)
		}
		total += float64(done - r.at)
	}
	return total / float64(len(pat))
}

func ddr3AvgLatency(t *testing.T, pat []requestPattern, period dram.Nanoseconds) float64 {
	t.Helper()
	cfg := ddr3.DefaultConfig()
	cfg.Density = dram.Density32Gb
	cfg.RefreshPeriod = period
	ctrl, err := ddr3.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := map[int]dram.Nanoseconds{}
	for i, r := range pat {
		arrivals[i] = r.at
		if err := ctrl.Enqueue(ddr3.Request{ID: i, Arrival: r.at, Bank: r.bank, Row: r.row, Write: r.write}); err != nil {
			t.Fatal(err)
		}
	}
	var total float64
	for _, d := range ctrl.Drain() {
		total += float64(d.Done - arrivals[d.ID])
	}
	return total / float64(len(pat))
}

func TestModelsAgreeOnRefreshReductionTrend(t *testing.T) {
	pat := sharedPattern(3000, 7)
	aggressive := dram.TREFI(dram.RefreshWindowAggressive)
	relaxed := 4 * aggressive

	fastAgg := memctrlAvgLatency(t, pat, aggressive)
	fastRel := memctrlAvgLatency(t, pat, relaxed)
	cmdAgg := ddr3AvgLatency(t, pat, aggressive)
	cmdRel := ddr3AvgLatency(t, pat, relaxed)

	// Direction: both models must get faster with fewer refreshes.
	if fastRel >= fastAgg {
		t.Errorf("fast model: relaxed %v not below aggressive %v", fastRel, fastAgg)
	}
	if cmdRel >= cmdAgg {
		t.Errorf("command model: relaxed %v not below aggressive %v", cmdRel, cmdAgg)
	}

	// Magnitude: the latency improvement ratios agree within 2.5x —
	// different abstractions, same first-order effect.
	fastRatio := fastAgg / fastRel
	cmdRatio := cmdAgg / cmdRel
	if fastRatio > 2.5*cmdRatio || cmdRatio > 2.5*fastRatio {
		t.Errorf("models disagree on refresh impact: fast ratio %v vs command ratio %v", fastRatio, cmdRatio)
	}
	t.Logf("32Gb refresh-relief latency ratio: fast model %.2fx, command model %.2fx", fastRatio, cmdRatio)
}

func TestModelsAgreeRowLocalityHelps(t *testing.T) {
	// A same-row stream must beat a row-thrashing stream in both models.
	mk := func(row func(i int) int) []requestPattern {
		var out []requestPattern
		at := dram.Nanoseconds(0)
		for i := 0; i < 1000; i++ {
			at += 80
			out = append(out, requestPattern{at: at, bank: 0, row: row(i)})
		}
		return out
	}
	hits := mk(func(int) int { return 1 })
	misses := mk(func(i int) int { return i % 16 })
	period := dram.TREFI(dram.RefreshWindowDefault)

	if h, m := memctrlAvgLatency(t, hits, period), memctrlAvgLatency(t, misses, period); h >= m {
		t.Errorf("fast model: row hits (%v) not faster than misses (%v)", h, m)
	}
	if h, m := ddr3AvgLatency(t, hits, period), ddr3AvgLatency(t, misses, period); h >= m {
		t.Errorf("command model: row hits (%v) not faster than misses (%v)", h, m)
	}
}
