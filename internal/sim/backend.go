package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"memcon/internal/ddr3"
	"memcon/internal/dram"
	"memcon/internal/workload"
)

// RunCommandLevel runs the same core model as Run but against the
// command-level ddr3 controller instead of the aggregate memctrl model.
// It is ~10x slower per simulated nanosecond and exists for validation
// and for users who need command-accurate latency distributions; the
// big Fig. 15/16 sweeps use Run.
//
// Differences from Run: test-traffic injection and refresh postponement
// probability are not modelled here (the ddr3 scheduler has its own
// JEDEC-compliant REF postponement), so compare trends, not absolutes.
func RunCommandLevel(cfg Config, memCfg ddr3.Config) (Result, error) {
	if len(cfg.Mix) == 0 {
		return Result{}, fmt.Errorf("sim: empty benchmark mix")
	}
	if cfg.SimTime <= 0 {
		return Result{}, fmt.Errorf("sim: simulation time must be positive, got %d", cfg.SimTime)
	}
	if err := memCfg.Validate(); err != nil {
		return Result{}, err
	}
	ctrl, err := ddr3.New(memCfg)
	if err != nil {
		return Result{}, err
	}

	h := make(coreHeap, 0, len(cfg.Mix))
	cores := make([]*core, len(cfg.Mix))
	for i, params := range cfg.Mix {
		instrsPerMiss := 1000.0 / params.MPKI
		c := &core{
			idx:           i,
			params:        params,
			computeNs:     instrsPerMiss / (params.BaseIPC * CoreFreqGHz),
			instrsPerMiss: instrsPerMiss,
			lastRow:       make([]int, memCfg.Banks),
			rng:           rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
		}
		c.now = dram.Nanoseconds(c.rng.Float64() * c.computeNs)
		cores[i] = c
		h = append(h, c)
	}
	heap.Init(&h)

	reqID := 0
	for h[0].now < cfg.SimTime {
		c := h[0]
		issue := c.now
		bank := c.rng.Intn(memCfg.Banks)
		var row int
		if c.rng.Float64() < c.params.RowHitRate {
			row = c.lastRow[bank]
		} else {
			c.rowSeq++
			row = c.idx*1_000_000 + c.rowSeq
		}
		c.lastRow[bank] = row
		write := c.rng.Float64() < c.params.WriteFraction

		reqID++
		done, err := ctrl.ServeOne(ddr3.Request{ID: reqID, Arrival: issue, Bank: bank, Row: row, Write: write})
		if err != nil {
			return Result{}, err
		}
		exposed := float64(done.Done-issue+FrontendLatency) / MLP
		c.instructions += c.instrsPerMiss
		c.now = issue + dram.Nanoseconds(exposed+c.computeNs)
		if c.now <= issue {
			c.now = issue + 1
		}
		heap.Fix(&h, 0)
	}

	res := Result{
		IPC:          make([]float64, len(cores)),
		Instructions: make([]float64, len(cores)),
	}
	cycles := float64(cfg.SimTime) * CoreFreqGHz
	for i, c := range cores {
		res.IPC[i] = c.instructions / cycles
		res.Instructions[i] = c.instructions
	}
	return res, nil
}

// CommandLevelSpeedup mirrors MixSpeedup on the command-level backend.
func CommandLevelSpeedup(mix []workload.CoreParams, base, scheme ddr3.Config, simTime dram.Nanoseconds, seed int64) (float64, error) {
	b, err := RunCommandLevel(Config{Mix: mix, SimTime: simTime, Seed: seed}, base)
	if err != nil {
		return 0, err
	}
	s, err := RunCommandLevel(Config{Mix: mix, SimTime: simTime, Seed: seed}, scheme)
	if err != nil {
		return 0, err
	}
	return WeightedSpeedup(b, s)
}
