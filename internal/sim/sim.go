// Package sim is the system-level performance simulator for the Fig. 15
// / Fig. 16 / Table 3 experiments: N simple cores, each modelled by its
// benchmark's memory intensity (MPKI), compute IPC, and row-buffer
// locality, issue DRAM requests into a shared memctrl.Controller. Memory
// time lost behind refresh (tRFC every tREFI) and MEMCON test traffic
// shows up directly as lost IPC.
//
// The core model is deliberately first-order — a core alternates a
// deterministic compute phase with a memory access whose exposed latency
// is the DRAM latency divided by the core's memory-level parallelism —
// because the quantities the paper reports (relative speedups across
// refresh policies and densities) are driven by memory availability, not
// by microarchitectural detail.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"memcon/internal/dram"
	"memcon/internal/memctrl"
	"memcon/internal/workload"
)

// CoreFreqGHz is the core clock of the evaluated system (Table 2).
const CoreFreqGHz = 4.0

// MLP is the modelled memory-level parallelism: the fraction of DRAM
// latency a core hides with its 128-entry instruction window.
const MLP = 4.0

// FrontendLatency is the fixed per-request latency outside the DRAM bank
// model — cache-hierarchy lookup and miss handling, on-chip network, and
// memory-controller frontend. It dilutes the refresh-blocking share of
// total latency; the value is calibrated so the refresh-reduction
// speedups land in the paper's reported bands.
const FrontendLatency dram.Nanoseconds = 150

// Config parameterizes one simulation run.
type Config struct {
	// Mix is the set of benchmarks, one per core.
	Mix []workload.CoreParams
	// Mem is the memory-system configuration.
	Mem memctrl.Config
	// SimTime is the simulated wall-clock duration.
	SimTime dram.Nanoseconds
	// Seed drives the per-core access streams.
	Seed int64
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	if len(c.Mix) == 0 {
		return fmt.Errorf("sim: empty benchmark mix")
	}
	if c.SimTime <= 0 {
		return fmt.Errorf("sim: simulation time must be positive, got %d", c.SimTime)
	}
	return c.Mem.Validate()
}

// Result holds the outcome of one run.
type Result struct {
	// IPC is the achieved instructions-per-cycle of each core.
	IPC []float64
	// Instructions is the instruction count retired by each core.
	Instructions []float64
	// Mem is the final memory-controller statistics.
	Mem memctrl.Stats
}

// core is the per-core simulation state.
type core struct {
	idx    int
	params workload.CoreParams
	now    dram.Nanoseconds
	// computeNs is the deterministic compute time between two DRAM
	// accesses.
	computeNs float64
	// instrsPerMiss is the instructions retired per DRAM access.
	instrsPerMiss float64
	instructions  float64
	lastRow       []int // per-bank last-accessed row, for locality
	rowSeq        int
	rng           *rand.Rand
}

// coreHeap orders cores by their next event time.
type coreHeap []*core

func (h coreHeap) Len() int            { return len(h) }
func (h coreHeap) Less(i, j int) bool  { return h[i].now < h[j].now }
func (h coreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x interface{}) { *h = append(*h, x.(*core)) }
func (h *coreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Run executes the simulation and returns per-core IPC.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	ctrl, err := memctrl.New(cfg.Mem)
	if err != nil {
		return Result{}, err
	}

	h := make(coreHeap, 0, len(cfg.Mix))
	cores := make([]*core, len(cfg.Mix))
	for i, params := range cfg.Mix {
		instrsPerMiss := 1000.0 / params.MPKI
		c := &core{
			idx:           i,
			params:        params,
			computeNs:     instrsPerMiss / (params.BaseIPC * CoreFreqGHz),
			instrsPerMiss: instrsPerMiss,
			lastRow:       make([]int, cfg.Mem.Banks),
			rng:           rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
		}
		// Stagger core start times within one compute phase.
		c.now = dram.Nanoseconds(c.rng.Float64() * c.computeNs)
		cores[i] = c
		h = append(h, c)
	}
	heap.Init(&h)

	for h[0].now < cfg.SimTime {
		c := h[0]
		issue := c.now

		bank := c.rng.Intn(cfg.Mem.Banks)
		var row int
		if c.rng.Float64() < c.params.RowHitRate {
			row = c.lastRow[bank]
		} else {
			c.rowSeq++
			row = c.idx*1_000_000 + c.rowSeq
		}
		c.lastRow[bank] = row
		write := c.rng.Float64() < c.params.WriteFraction

		done, err := ctrl.Access(issue, bank, row, write)
		if err != nil {
			return Result{}, err
		}
		exposed := float64(done-issue+FrontendLatency) / MLP
		c.instructions += c.instrsPerMiss
		c.now = issue + dram.Nanoseconds(exposed+c.computeNs)
		if c.now <= issue { // guard against zero-length steps
			c.now = issue + 1
		}
		heap.Fix(&h, 0)
	}

	res := Result{
		IPC:          make([]float64, len(cores)),
		Instructions: make([]float64, len(cores)),
		Mem:          ctrl.Stats(),
	}
	cycles := float64(cfg.SimTime) * CoreFreqGHz
	for i, c := range cores {
		res.IPC[i] = c.instructions / cycles
		res.Instructions[i] = c.instructions
	}
	return res, nil
}

// WeightedSpeedup returns the average per-core IPC ratio of scheme over
// baseline — the multiprogrammed speedup metric used for the Fig. 15/16
// comparisons. The runs must have the same number of cores.
func WeightedSpeedup(baseline, scheme Result) (float64, error) {
	if len(baseline.IPC) != len(scheme.IPC) {
		return 0, fmt.Errorf("sim: core count mismatch %d vs %d", len(baseline.IPC), len(scheme.IPC))
	}
	if len(baseline.IPC) == 0 {
		return 0, fmt.Errorf("sim: empty results")
	}
	var sum float64
	for i := range baseline.IPC {
		if baseline.IPC[i] <= 0 {
			return 0, fmt.Errorf("sim: core %d has non-positive baseline IPC", i)
		}
		sum += scheme.IPC[i] / baseline.IPC[i]
	}
	return sum / float64(len(baseline.IPC)), nil
}

// MixSpeedup runs baseline and scheme memory configurations over the
// same mix and seed and returns the weighted speedup of scheme over
// baseline.
func MixSpeedup(mix []workload.CoreParams, baseMem, schemeMem memctrl.Config, simTime dram.Nanoseconds, seed int64) (float64, error) {
	base, err := Run(Config{Mix: mix, Mem: baseMem, SimTime: simTime, Seed: seed})
	if err != nil {
		return 0, err
	}
	scheme, err := Run(Config{Mix: mix, Mem: schemeMem, SimTime: simTime, Seed: seed})
	if err != nil {
		return 0, err
	}
	return WeightedSpeedup(base, scheme)
}
