package sim

import (
	"testing"

	"memcon/internal/dram"
	"memcon/internal/memctrl"
	"memcon/internal/workload"
)

func testMix(n int) []workload.CoreParams {
	bench := workload.SimBenchmarks()
	mix := make([]workload.CoreParams, n)
	for i := range mix {
		mix[i] = bench[i%len(bench)]
	}
	return mix
}

func simTime() dram.Nanoseconds { return dram.Millisecond / 2 }

func TestConfigValidate(t *testing.T) {
	good := Config{Mix: testMix(1), Mem: memctrl.DefaultConfig(), SimTime: simTime()}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if err := (Config{Mem: memctrl.DefaultConfig(), SimTime: 1}).Validate(); err == nil {
		t.Error("empty mix accepted")
	}
	if err := (Config{Mix: testMix(1), Mem: memctrl.DefaultConfig()}).Validate(); err == nil {
		t.Error("zero sim time accepted")
	}
	bad := memctrl.DefaultConfig()
	bad.Banks = 0
	if err := (Config{Mix: testMix(1), Mem: bad, SimTime: 1}).Validate(); err == nil {
		t.Error("invalid mem config accepted")
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(Config{Mix: testMix(2), Mem: memctrl.DefaultConfig(), SimTime: simTime(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 2 {
		t.Fatalf("IPC entries = %d, want 2", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 {
			t.Errorf("core %d IPC = %v, want positive", i, ipc)
		}
		if ipc > testMix(2)[i].BaseIPC {
			t.Errorf("core %d IPC %v exceeds its compute-bound IPC %v", i, ipc, testMix(2)[i].BaseIPC)
		}
	}
	if res.Mem.Requests == 0 {
		t.Error("no memory requests issued")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Mix: testMix(2), Mem: memctrl.DefaultConfig(), SimTime: simTime(), Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Errorf("core %d IPC differs across identical runs", i)
		}
	}
}

// The paper's central performance claim: stretching the refresh period
// (fewer refresh operations) improves IPC, and the improvement grows
// with chip density.
func TestRefreshReductionImprovesIPC(t *testing.T) {
	mix := testMix(1)
	speedupAt := func(density dram.Density) float64 {
		base := memctrl.DefaultConfig()
		base.Density = density
		scheme := base
		p, err := memctrl.StretchedRefreshPeriod(dram.RefreshWindowAggressive, 0.75)
		if err != nil {
			t.Fatal(err)
		}
		scheme.RefreshPeriod = p
		s, err := MixSpeedup(mix, base, scheme, simTime(), 7)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s8 := speedupAt(dram.Density8Gb)
	s32 := speedupAt(dram.Density32Gb)
	if s8 <= 1.0 {
		t.Errorf("8Gb speedup = %v, want > 1", s8)
	}
	if s32 <= s8 {
		t.Errorf("speedup should grow with density: 8Gb %v vs 32Gb %v", s8, s32)
	}
}

func TestTestTrafficCostsLittle(t *testing.T) {
	// Table 3: 256 concurrent tests per 64 ms cost under ~2% on a
	// single core.
	mix := testMix(1)
	clean := memctrl.DefaultConfig()
	loaded := clean
	loaded.TestsPerWindow = 256
	s, err := MixSpeedup(mix, clean, loaded, 2*simTime(), 9)
	if err != nil {
		t.Fatal(err)
	}
	loss := 1 - s
	if loss < -0.01 {
		t.Errorf("test traffic made the system faster: loss %v", loss)
	}
	if loss > 0.06 {
		t.Errorf("256 tests/64ms cost %.1f%%, paper reports <2%%", 100*loss)
	}
}

func TestWeightedSpeedupErrors(t *testing.T) {
	if _, err := WeightedSpeedup(Result{IPC: []float64{1}}, Result{IPC: []float64{1, 2}}); err == nil {
		t.Error("core count mismatch accepted")
	}
	if _, err := WeightedSpeedup(Result{}, Result{}); err == nil {
		t.Error("empty results accepted")
	}
	if _, err := WeightedSpeedup(Result{IPC: []float64{0}}, Result{IPC: []float64{1}}); err == nil {
		t.Error("zero baseline IPC accepted")
	}
}

func TestWeightedSpeedupIdentity(t *testing.T) {
	r := Result{IPC: []float64{1.5, 0.7}}
	s, err := WeightedSpeedup(r, r)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1.0 {
		t.Errorf("self speedup = %v, want 1", s)
	}
}

func TestFourCoreContention(t *testing.T) {
	// Four cores sharing one channel must each achieve lower IPC than
	// the same benchmark running alone.
	mem := memctrl.DefaultConfig()
	mem.Density = dram.Density32Gb
	mix4 := []workload.CoreParams{}
	bench := workload.SimBenchmarks()[3] // mcf: memory-bound
	for i := 0; i < 4; i++ {
		mix4 = append(mix4, bench)
	}
	solo, err := Run(Config{Mix: mix4[:1], Mem: mem, SimTime: simTime(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Config{Mix: mix4, Mem: mem, SimTime: simTime(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if four.IPC[0] >= solo.IPC[0] {
		t.Errorf("4-core IPC %v not below solo IPC %v under contention", four.IPC[0], solo.IPC[0])
	}
}

func TestMemoryBoundBenchmarksSufferMore(t *testing.T) {
	// A high-MPKI benchmark loses relatively more IPC to aggressive
	// refresh than a compute-bound one.
	mem := memctrl.DefaultConfig()
	mem.Density = dram.Density32Gb
	relaxed := mem
	p, _ := memctrl.StretchedRefreshPeriod(dram.RefreshWindowAggressive, 0.75)
	relaxed.RefreshPeriod = p

	bench := workload.SimBenchmarks()
	var memBound, computeBound workload.CoreParams
	for _, b := range bench {
		if b.Name == "mcf" {
			memBound = b
		}
		if b.Name == "perl" {
			computeBound = b
		}
	}
	sMem, err := MixSpeedup([]workload.CoreParams{memBound}, mem, relaxed, simTime(), 11)
	if err != nil {
		t.Fatal(err)
	}
	sCompute, err := MixSpeedup([]workload.CoreParams{computeBound}, mem, relaxed, simTime(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if sMem <= sCompute {
		t.Errorf("memory-bound speedup %v should exceed compute-bound %v", sMem, sCompute)
	}
}
