package sim

import (
	"testing"

	"memcon/internal/ddr3"
	"memcon/internal/dram"
)

func TestRunCommandLevelBasics(t *testing.T) {
	cfg := Config{Mix: testMix(2), SimTime: 100_000, Seed: 3}
	res, err := RunCommandLevel(cfg, ddr3.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 2 {
		t.Fatalf("IPC entries = %d", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 {
			t.Errorf("core %d IPC = %v", i, ipc)
		}
	}
}

func TestRunCommandLevelValidation(t *testing.T) {
	if _, err := RunCommandLevel(Config{SimTime: 1}, ddr3.DefaultConfig()); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := RunCommandLevel(Config{Mix: testMix(1)}, ddr3.DefaultConfig()); err == nil {
		t.Error("zero sim time accepted")
	}
	bad := ddr3.DefaultConfig()
	bad.Banks = 0
	if _, err := RunCommandLevel(Config{Mix: testMix(1), SimTime: 1}, bad); err == nil {
		t.Error("invalid memory config accepted")
	}
}

// The headline validation: both backends agree that refresh reduction
// speeds the system up, with the command-level speedup in the same
// ballpark as the fast model's.
func TestCommandLevelSpeedupAgreesWithFastModel(t *testing.T) {
	mix := testMix(1)
	simTime := dram.Nanoseconds(200_000)

	base := ddr3.DefaultConfig()
	base.Density = dram.Density32Gb
	relaxed := base
	relaxed.RefreshPeriod = 4 * base.RefreshPeriod

	cmdSpeedup, err := CommandLevelSpeedup(mix, base, relaxed, simTime, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cmdSpeedup <= 1.0 {
		t.Errorf("command-level speedup = %v, want > 1", cmdSpeedup)
	}
	if cmdSpeedup > 4.0 {
		t.Errorf("command-level speedup = %v, implausibly large", cmdSpeedup)
	}
}

func TestServeOneOrdering(t *testing.T) {
	ctrl, err := ddr3.New(ddr3.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.ServeOne(ddr3.Request{ID: 1, Arrival: 100, Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.ServeOne(ddr3.Request{ID: 2, Arrival: 50, Bank: 0, Row: 1}); err == nil {
		t.Error("decreasing arrival accepted by ServeOne")
	}
	if _, err := ctrl.ServeOne(ddr3.Request{ID: 3, Arrival: 200, Bank: -1, Row: 1}); err == nil {
		t.Error("bad bank accepted by ServeOne")
	}
}
