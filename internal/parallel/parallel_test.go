package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for unit := 0; unit < 1000; unit++ {
		s := Seed(42, unit)
		if s != Seed(42, unit) {
			t.Fatalf("Seed(42, %d) unstable", unit)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("Seed collision between units %d and %d", prev, unit)
		}
		seen[s] = unit
	}
	// Different bases give different streams.
	if Seed(1, 0) == Seed(2, 0) {
		t.Error("Seed ignores base")
	}
	// Unit 0 is mixed too (a plain xor/add scheme would return base).
	if Seed(42, 0) == 42 {
		t.Error("Seed(base, 0) returned base unmixed")
	}
}

func TestMapOrderedFanIn(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		got, err := Map(context.Background(), 50, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapDeterministicUnderLoad re-runs a randomized workload at several
// worker counts and requires identical results: the core contract the
// experiment sweeps rely on.
func TestMapDeterministicUnderLoad(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), 200, workers, func(i int) (float64, error) {
			rng := rand.New(rand.NewSource(Seed(7, i)))
			var sum float64
			for k := 0; k < 100+i%17; k++ {
				sum += rng.Float64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: unit %d = %v, want %v (serial)", workers, i, got[i], want[i])
			}
		}
	}
}

// TestForEachLowestErrorWins checks the deterministic error contract:
// whichever worker count is used, the reported error is the lowest
// failing unit's.
func TestForEachLowestErrorWins(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), 64, workers, func(i int) error {
			if i == 7 || i == 3 || i == 60 {
				return fmt.Errorf("unit %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 3 failed" {
			t.Errorf("workers=%d: err = %v, want unit 3's error", workers, err)
		}
	}
}

func TestForEachRunsAllUnitsDespiteError(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), 32, 4, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if ran.Load() != 32 {
		t.Errorf("ran %d of 32 units; errors must not skip work (determinism)", ran.Load())
	}
}

func TestForEachPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 16, workers, func(i int) error {
			if i == 5 {
				panic("boom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Unit != 5 || pe.Value != "boom" {
			t.Errorf("workers=%d: captured %d/%v, want 5/boom", workers, pe.Unit, pe.Value)
		}
		if !strings.Contains(pe.Error(), "boom") || len(pe.Stack) == 0 {
			t.Error("panic error lost its message or stack")
		}
	}
}

func TestForEachContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEach(ctx, 1000, workers, func(i int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Errorf("workers=%d: cancellation did not stop the sweep (%d units ran)", workers, n)
		}
	}
}

func TestForEachNilContextAndEmptyInput(t *testing.T) {
	if err := ForEach(nil, 0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	var ran atomic.Int64
	if err := ForEach(nil, 3, 0, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Errorf("nil ctx: %v", err)
	}
	if ran.Load() != 3 {
		t.Errorf("ran %d of 3 units", ran.Load())
	}
}

func TestMapErrorReturnsNil(t *testing.T) {
	out, err := Map(context.Background(), 4, 2, func(i int) (string, error) {
		if i == 2 {
			return "", errors.New("nope")
		}
		return "ok", nil
	})
	if err == nil || out != nil {
		t.Errorf("Map error path returned (%v, %v)", out, err)
	}
}
