package parallel

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"memcon/internal/obs"
)

// WorkerStats is the utilization of one pool worker: how many work
// units it executed and how long it spent inside unit functions.
type WorkerStats struct {
	Units  int64
	BusyNs int64
}

// PoolStats accumulates per-worker utilization across every sweep run
// under a context carrying it (see ContextWithStats). The numbers are
// wall-clock derived and schedule-dependent — two identical runs report
// different splits — so PoolStats exports only as VOLATILE gauges,
// which the deterministic JSON/Prometheus sinks exclude; it surfaces in
// the human table and String().
//
// PoolStats is safe for concurrent use.
type PoolStats struct {
	mu      sync.Mutex
	workers map[int]*WorkerStats
}

// NewPoolStats creates an empty collector.
func NewPoolStats() *PoolStats {
	return &PoolStats{workers: make(map[int]*WorkerStats)}
}

// Add merges one worker's contribution from a finished sweep.
func (p *PoolStats) Add(worker int, units, busyNs int64) {
	if p == nil || units == 0 && busyNs == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ws := p.workers[worker]
	if ws == nil {
		ws = &WorkerStats{}
		p.workers[worker] = ws
	}
	ws.Units += units
	ws.BusyNs += busyNs
}

// Workers returns a copy of the per-worker stats keyed by worker index.
func (p *PoolStats) Workers() map[int]WorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]WorkerStats, len(p.workers))
	for id, ws := range p.workers {
		out[id] = *ws
	}
	return out
}

// ExportTo publishes the utilization into reg as volatile gauges
// (pool_worker_<id>_units, pool_worker_<id>_busy_ns) so it shows up in
// the human metrics table without perturbing the deterministic sinks.
func (p *PoolStats) ExportTo(reg *obs.Registry) {
	for id, ws := range p.Workers() {
		reg.Gauge(fmt.Sprintf("pool_worker_%d_units", id),
			"work units executed by this pool worker", true).Add(float64(ws.Units))
		reg.Gauge(fmt.Sprintf("pool_worker_%d_busy_ns", id),
			"wall time this pool worker spent inside unit functions", true).Add(float64(ws.BusyNs))
	}
}

// String renders a small utilization table, one line per worker.
func (p *PoolStats) String() string {
	workers := p.Workers()
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sb strings.Builder
	sb.WriteString("worker  units  busy\n")
	for _, id := range ids {
		ws := workers[id]
		fmt.Fprintf(&sb, "%6d  %5d  %s\n", id, ws.Units, time.Duration(ws.BusyNs))
	}
	return sb.String()
}

// statsKey carries a *PoolStats through a context.
type statsKey struct{}

// ContextWithStats returns a context that makes every ForEach/Map sweep
// under it record per-worker utilization into ps.
func ContextWithStats(ctx context.Context, ps *PoolStats) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, statsKey{}, ps)
}

// StatsFrom extracts the collector installed by ContextWithStats, or
// nil when the context carries none.
func StatsFrom(ctx context.Context) *PoolStats {
	if ctx == nil {
		return nil
	}
	ps, _ := ctx.Value(statsKey{}).(*PoolStats)
	return ps
}
