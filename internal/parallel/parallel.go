// Package parallel is the deterministic fan-out/fan-in layer under every
// embarrassingly parallel sweep in this repository (experiment mixes,
// characterization pattern sweeps, the memconsim -all driver).
//
// The contract is strict determinism: a sweep's result must be
// byte-identical for ANY worker count, including 1. The package enforces
// the two halves of that contract mechanically:
//
//   - ordered fan-in: Map writes each unit's result into a slice indexed
//     by unit, so the caller always observes results in unit order no
//     matter which worker computed them or when;
//   - derived seeds: Seed(base, unit) gives every work unit its own RNG
//     stream as a pure function of (base seed, unit index), never of
//     worker identity or scheduling.
//
// Workers never share mutable state through the pool; a unit may only
// touch its own inputs and its own result slot. Panics inside a unit are
// captured and surfaced as *PanicError values rather than tearing down
// the process, and a cancelled context stops the sweep between units.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a requested worker count: values below 1 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Seed derives the RNG seed of one work unit from the sweep's base seed
// using the splitmix64 finalizer. The result depends only on
// (base, unit), so per-unit random streams are stable across worker
// counts, scheduling orders, and process runs, and adjacent unit indices
// land in statistically unrelated streams (unlike base+unit, which
// hands consecutive units overlapping rand.Source state).
func Seed(base int64, unit int) int64 {
	z := uint64(base) + (uint64(unit)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// PanicError is a panic captured from a work unit.
type PanicError struct {
	// Unit is the work-unit index whose function panicked.
	Unit int
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error renders the panic with its unit index.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: unit %d panicked: %v\n%s", e.Unit, e.Value, e.Stack)
}

// ForEach runs fn(i) for every i in [0, n) on up to `workers`
// goroutines (resolved via Workers). It always runs every unit — even
// after a unit fails — so the error it returns is the error of the
// LOWEST failing unit index regardless of worker count or scheduling,
// matching what a serial loop that collected all errors would report.
// The exception is context cancellation: once ctx is done, remaining
// units are skipped and the context error is reported for them.
//
// A panicking unit does not crash the process; its panic is returned as
// a *PanicError.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	ps := StatsFrom(ctx)
	errs := make([]error, n)
	if workers == 1 {
		var units, busyNs int64
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				break
			}
			if ps != nil {
				t0 := time.Now()
				errs[i] = call(i, fn)
				busyNs += time.Since(t0).Nanoseconds()
				units++
				continue
			}
			errs[i] = call(i, fn)
		}
		ps.Add(0, units, busyNs)
		return firstErr(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var units, busyNs int64
			defer func() { ps.Add(w, units, busyNs) }()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if ps != nil {
					t0 := time.Now()
					errs[i] = call(i, fn)
					busyNs += time.Since(t0).Nanoseconds()
					units++
					continue
				}
				errs[i] = call(i, fn)
			}
		}()
	}
	wg.Wait()
	return firstErr(errs)
}

// Map runs fn over every unit in [0, n) with ForEach's scheduling and
// error semantics and returns the results in unit order. On error the
// result slice is nil.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// call invokes fn(i), converting a panic into a *PanicError.
func call(i int, fn func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Unit: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// firstErr returns the error of the lowest failing unit.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
