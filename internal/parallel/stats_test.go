package parallel

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"memcon/internal/obs"
)

func TestPoolStatsCollection(t *testing.T) {
	ps := NewPoolStats()
	ctx := ContextWithStats(context.Background(), ps)
	var ran atomic.Int64
	if err := ForEach(ctx, 20, 4, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d units, want 20", ran.Load())
	}
	var units int64
	for id, ws := range ps.Workers() {
		if id < 0 || id >= 4 {
			t.Errorf("worker id %d outside pool of 4", id)
		}
		units += ws.Units
	}
	if units != 20 {
		t.Errorf("recorded %d units, want 20", units)
	}
}

func TestPoolStatsSerialPath(t *testing.T) {
	ps := NewPoolStats()
	ctx := ContextWithStats(context.Background(), ps)
	if err := ForEach(ctx, 5, 1, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	ws := ps.Workers()
	if len(ws) != 1 || ws[0].Units != 5 {
		t.Errorf("serial stats = %+v, want worker 0 with 5 units", ws)
	}
	if !strings.Contains(ps.String(), "worker") {
		t.Errorf("String() missing header:\n%s", ps.String())
	}
}

func TestPoolStatsAbsentFromContext(t *testing.T) {
	if StatsFrom(context.Background()) != nil {
		t.Error("StatsFrom on a bare context must be nil")
	}
	if StatsFrom(nil) != nil {
		t.Error("StatsFrom(nil) must be nil")
	}
	// A nil collector is inert: sweeps without one must be unaffected.
	if err := ForEach(context.Background(), 8, 2, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestPoolStatsExportVolatileOnly(t *testing.T) {
	ps := NewPoolStats()
	ps.Add(0, 3, 1500)
	ps.Add(1, 2, 900)
	ps.Add(0, 1, 100) // accumulates into worker 0
	ws := ps.Workers()
	if ws[0].Units != 4 || ws[0].BusyNs != 1600 {
		t.Errorf("worker 0 = %+v, want 4 units / 1600 ns", ws[0])
	}

	reg := obs.NewRegistry()
	ps.ExportTo(reg)
	var js, table strings.Builder
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(js.String(), "pool_worker") {
		t.Errorf("pool stats leaked into the deterministic JSON sink:\n%s", js.String())
	}
	if err := reg.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "pool_worker_0_units") {
		t.Errorf("pool stats missing from the table sink:\n%s", table.String())
	}
}
