// Package fleet scales the single-module MEMCON simulation out to the
// deployments that motivate it: N modules with heterogeneous
// geometries, per-module fault populations, and per-module workload
// mixes, observed over months of simulated time through the
// correctable-error (CE) events a patrol scrub would report. The
// output is a typed, canonically ordered CE event log — (module, rank,
// bank, row, col, sim-time) tuples — plus per-module ground truth
// (first uncorrectable error, if any) that the analytics layer scores
// predictions against.
//
// # Determinism and sharding
//
// A fleet run is embarrassingly parallel: every module's months are a
// pure function of (base seed, module index) via parallel.Seed, never
// of shard boundaries, worker identity, or scheduling. Execution
// shards modules into contiguous ranges fanned out over
// internal/parallel workers with ordered fan-in, so the log — and
// every report derived from it — is byte-identical for ANY shard count
// and ANY worker count, including 1. The property test in
// fleet_test.go pins exactly that for shards 1/4/8 × workers 1/4/8.
//
// # Simulation model
//
// Each module draws a geometry class (density/rank diversity), a SPEC
// content class (its resident workload), and a fault-population scale
// (module quality varies wildly in the field; most modules are quiet,
// a few are noisy). Months are discretized into scrub epochs: per
// epoch the module's content advances one execution phase, the rows
// sit through a drawn vulnerable idle window, and a read-back commits
// the data-dependent failures — each failing cell is one CE event
// stamped with the epoch's scrub time. A read-back that finds two
// failing cells inside one ECC word is an uncorrectable error (SEC-DED
// cannot repair a double flip); with x8 chips a 64-bit word interleaves
// eight bits from each chip of the rank, so two failures inside one
// 8-column-aligned group of a chip row share a word. The module is
// retired at its first UE and the UE time recorded as the prediction
// target.
package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/parallel"
	"memcon/internal/softmc"
	"memcon/internal/workload"
)

// EpochNs is the simulated time between patrol scrubs: one week. A
// default 12-epoch run covers roughly three months of field time.
const EpochNs = int64(7*24) * int64(3600) * 1_000_000_000

// DefaultEpochs is the default observation length in scrub epochs.
const DefaultEpochs = 12

// Event is one correctable error: a single failing cell reported by a
// scrub read-back. The canonical log order is (Module, At, Rank, Bank,
// Row, Col), lexicographically non-decreasing.
type Event struct {
	Module uint32
	Rank   uint8
	Bank   uint8
	Row    uint32
	Col    uint32
	// At is the simulated time of the scrub that observed the error,
	// in nanoseconds since the fleet observation started.
	At int64
}

// Less reports whether e precedes o in the canonical log order.
func (e Event) Less(o Event) bool {
	switch {
	case e.Module != o.Module:
		return e.Module < o.Module
	case e.At != o.At:
		return e.At < o.At
	case e.Rank != o.Rank:
		return e.Rank < o.Rank
	case e.Bank != o.Bank:
		return e.Bank < o.Bank
	case e.Row != o.Row:
		return e.Row < o.Row
	default:
		return e.Col < o.Col
	}
}

// Class is one geometry/population class modules are drawn from —
// the fleet's density and rank diversity.
type Class struct {
	// Name labels the class in reports ("2Gb-x8").
	Name string
	// Geom is the unscaled per-chip geometry of the class. Run scales
	// RowsPerBank by Config.Scale (floor 64) the way the
	// characterization experiments scale theirs.
	Geom dram.Geometry
}

// DefaultClasses returns the stock fleet mix: two single-rank
// densities plus a dual-rank part, so logs carry real rank diversity.
func DefaultClasses() []Class {
	return []Class{
		{Name: "2Gb-x8", Geom: dram.Geometry{
			Ranks: 1, ChipsPerRank: 8, BanksPerChip: 4,
			RowsPerBank: 1024, ColsPerRow: 256, RedundantCols: 8,
		}},
		{Name: "4Gb-x8", Geom: dram.Geometry{
			Ranks: 1, ChipsPerRank: 8, BanksPerChip: 8,
			RowsPerBank: 2048, ColsPerRow: 256, RedundantCols: 8,
		}},
		{Name: "4Gb-2R", Geom: dram.Geometry{
			Ranks: 2, ChipsPerRank: 8, BanksPerChip: 4,
			RowsPerBank: 1024, ColsPerRow: 256, RedundantCols: 8,
		}},
	}
}

// Config parameterizes one fleet run.
type Config struct {
	// Modules is the fleet size. Required (>= 1).
	Modules int
	// Seed drives all randomness; per-module streams derive from it
	// with parallel.Seed(Seed, module).
	Seed int64
	// Scale in (0,1] shrinks per-module geometries (rows per bank,
	// floor 64); values outside the range select 1.
	Scale float64
	// Epochs is the number of weekly scrub epochs; values below 1
	// select DefaultEpochs.
	Epochs int
	// Shards is the number of contiguous module ranges the run fans
	// out over — the work-unit count, NOT the concurrency. Values
	// below 1 select one shard per module (maximum parallelism). The
	// log is byte-identical for any value.
	Shards int
	// Workers bounds the goroutines executing shards; values below 1
	// select runtime.GOMAXPROCS(0). The log is byte-identical for any
	// value.
	Workers int
	// Classes is the geometry-class mix modules draw from; nil selects
	// DefaultClasses.
	Classes []Class
}

// normalize fills defaulted fields and validates the rest.
func (c Config) normalize() (Config, error) {
	if c.Modules < 1 {
		return c, fmt.Errorf("fleet: Modules must be at least 1, got %d", c.Modules)
	}
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.Epochs < 1 {
		c.Epochs = DefaultEpochs
	}
	if c.Shards < 1 || c.Shards > c.Modules {
		c.Shards = c.Modules
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Classes) == 0 {
		c.Classes = DefaultClasses()
	}
	for _, cl := range c.Classes {
		if err := cl.Geom.Validate(); err != nil {
			return c, fmt.Errorf("fleet: class %q: %w", cl.Name, err)
		}
	}
	return c, nil
}

// ModuleInfo is the per-module ground truth a run records alongside
// the event log.
type ModuleInfo struct {
	// Module is the fleet index.
	Module int
	// Class and Content name the drawn geometry class and SPEC
	// content class.
	Class, Content string
	// WeakScale is the module's fault-population quality factor (the
	// multiplier applied to the class weak-cell fraction).
	WeakScale float64
	// CEs is the module's total correctable-error count.
	CEs int
	// UEAtNs is the simulated time of the module's first uncorrectable
	// error, or -1 when the module survived the observation window.
	UEAtNs int64
}

// Log is one fleet run's output: the canonical CE event log plus the
// per-module ground truth.
type Log struct {
	// Modules is the fleet size.
	Modules int
	// Epochs and EpochNs describe the observation window.
	Epochs  int
	EpochNs int64
	// Events holds every CE in canonical (Module, At, Rank, Bank, Row,
	// Col) order.
	Events []Event
	// Info holds one entry per module, in module order.
	Info []ModuleInfo
}

// Run simulates the fleet and returns its CE log. The result is a pure
// function of the normalized Config minus Shards and Workers — those
// only partition and schedule the work.
func Run(ctx context.Context, cfg Config) (*Log, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	type shardOut struct {
		events []Event
		info   []ModuleInfo
	}
	shards, err := parallel.Map(ctx, cfg.Shards, cfg.Workers, func(s int) (shardOut, error) {
		lo, hi := shardBounds(cfg.Modules, cfg.Shards, s)
		var out shardOut
		for m := lo; m < hi; m++ {
			ev, info, err := simModule(cfg, m)
			if err != nil {
				return shardOut{}, fmt.Errorf("fleet: module %d: %w", m, err)
			}
			out.events = append(out.events, ev...)
			out.info = append(out.info, info)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	log := &Log{Modules: cfg.Modules, Epochs: cfg.Epochs, EpochNs: EpochNs}
	for _, s := range shards {
		log.Events = append(log.Events, s.events...)
		log.Info = append(log.Info, s.info...)
	}
	return log, nil
}

// shardBounds returns the half-open module range of shard s: the
// balanced contiguous partition of n modules into k shards.
func shardBounds(n, k, s int) (lo, hi int) {
	per, rem := n/k, n%k
	lo = s*per + min(s, rem)
	hi = lo + per
	if s < rem {
		hi++
	}
	return lo, hi
}

// simModule runs one module's observation window. Everything derives
// from the module's own splitmix64-derived seed, so the result is
// independent of which shard or worker executes it.
func simModule(cfg Config, module int) ([]Event, ModuleInfo, error) {
	seed := parallel.Seed(cfg.Seed, module)
	rng := rand.New(rand.NewSource(seed))

	class := cfg.Classes[rng.Intn(len(cfg.Classes))]
	geom := class.Geom
	geom.RowsPerBank = int(float64(geom.RowsPerBank) * cfg.Scale)
	if geom.RowsPerBank < 64 {
		geom.RowsPerBank = 64
	}

	specs := workload.SPECContents()
	spec := specs[rng.Intn(len(specs))]

	// Module quality: a cubed uniform draw keeps most modules near the
	// quiet end while a few carry several times the nominal weak-cell
	// population — the skew field CE logs show.
	q := rng.Float64()
	weakScale := 0.05 + 2.5*q*q*q

	params := faults.DefaultParams()
	params.WeakCellFraction *= weakScale

	info := ModuleInfo{
		Module: module, Class: class.Name, Content: spec.Name,
		WeakScale: weakScale, UEAtNs: -1,
	}

	// One tester per rank: ranks are electrically independent chips,
	// so each gets its own fault population from a rank-salted seed.
	testers := make([]*softmc.Tester, geom.Ranks)
	for r := range testers {
		rankSeed := uint64(parallel.Seed(seed, r+1))
		scr := dram.NewScrambler(geom, rankSeed, nil)
		model, err := faults.NewModel(geom, scr, rankSeed, params)
		if err != nil {
			return nil, ModuleInfo{}, err
		}
		mod, err := dram.NewModule(geom)
		if err != nil {
			return nil, ModuleInfo{}, err
		}
		t, err := softmc.NewTester(mod, model)
		if err != nil {
			return nil, ModuleInfo{}, err
		}
		testers[r] = t
	}

	var events []Event
	floor := float64(params.RetentionFloor)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		at := int64(epoch+1) * EpochNs
		// The vulnerable idle window this epoch's rows sat through
		// before the scrub: log-uniform in [0.5, 2] refresh floors.
		// Draws are per epoch, not per rank, so rank count does not
		// perturb the module's RNG stream.
		idle := dram.Nanoseconds(floor * math.Exp((rng.Float64()*2-1)*math.Ln2))
		phaseImg := spec.Image(geom.RowsPerBank, geom.ColsPerRow, epoch, seed)
		ue := false
		for r, tester := range testers {
			fails, err := tester.RunContent(phaseImg, idle)
			if err != nil {
				return nil, ModuleInfo{}, err
			}
			for _, f := range fails {
				// FailingCells reports system columns, which the
				// scrambler permutes out of physical order; the log
				// wants canonical column order within a row (and the
				// UE check below wants sorted neighbours).
				sort.Ints(f.Cells)
				for i, c := range f.Cells {
					events = append(events, Event{
						Module: uint32(module), Rank: uint8(r),
						Bank: uint8(f.Addr.Bank), Row: uint32(f.Addr.Row),
						Col: uint32(c), At: at,
					})
					info.CEs++
					// Two flips inside one ECC word defeat SEC-DED.
					// The x8 interleave maps a chip's 8-column-aligned
					// groups onto words; cells are sorted ascending,
					// so only the previous one can share the group.
					if i > 0 && f.Cells[i-1]/8 == c/8 {
						ue = true
					}
				}
			}
		}
		if ue {
			info.UEAtNs = at
			break // the module is retired at its first UE
		}
	}
	return events, info, nil
}
