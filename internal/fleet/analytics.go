package fleet

import (
	"math"
	"sort"
)

// Analytics over the CE log: the three field-study questions the fleet
// layer exists to answer.
//
//   - WHAT failed: per-(module, rank, bank) row/column clustering in
//     the AMD field-study style (SNIPPETS.md Snippet 1) — two errors
//     sharing a row make a row fault, sharing a column a column fault,
//     both a multi-cluster; more than five distinct cells in a
//     two-dimensional cluster is a genuine multi-bit bank fault rather
//     than coincident single-bit faults.
//   - HOW OFTEN: unique-failure deduplication — field logs re-report
//     the same stuck cell every scrub, so raw CE counts overstate the
//     distinct fault population.
//   - WHAT NEXT: time-to-UE risk scoring from early-CE features
//     ("First CE Matters"): the structure of the FIRST CEs — onset
//     time, volume, repetition, row/column clustering — carries the
//     signal for predicting uncorrectable failures, and the fleet's
//     recorded UE ground truth scores the prediction.
//
// Everything here is a pure function of the log (events + ground
// truth); analytics_test.go holds it against a brute-force oracle.

// BankKey addresses one bank of one rank of one module.
type BankKey struct {
	Module uint32
	Rank   uint8
	Bank   uint8
}

// less orders bank keys lexicographically.
func (k BankKey) less(o BankKey) bool {
	switch {
	case k.Module != o.Module:
		return k.Module < o.Module
	case k.Rank != o.Rank:
		return k.Rank < o.Rank
	default:
		return k.Bank < o.Bank
	}
}

// Bank fault classes, from most to least localized.
const (
	ClassSingleCell = "single-cell" // one distinct failing cell
	ClassRow        = "row"         // ≥2 cells share a row, no column cluster
	ClassColumn     = "column"      // ≥2 cells share a column, no row cluster
	ClassScattered  = "scattered"   // isolated cells, or a 2-D cluster of ≤5
	ClassMultiBit   = "multi-bit"   // row and column clusters, >5 distinct cells
)

// BankCluster summarizes the failures of one bank.
type BankCluster struct {
	Key BankKey
	// Events is the raw CE count; Unique the distinct (row, col) count.
	Events, Unique int
	// Rows and Cols count distinct failing rows and columns.
	Rows, Cols int
	// MaxRowSpan is the largest distinct-column count within one row;
	// MaxColSpan the largest distinct-row count within one column.
	MaxRowSpan, MaxColSpan int
	// Class is the AMD-style fault classification.
	Class string
}

// classify derives the fault class from the cluster shape.
func classify(unique, maxRowSpan, maxColSpan int) string {
	switch {
	case unique <= 1:
		return ClassSingleCell
	case maxRowSpan >= 2 && maxColSpan < 2:
		return ClassRow
	case maxColSpan >= 2 && maxRowSpan < 2:
		return ClassColumn
	case maxRowSpan >= 2 && maxColSpan >= 2 && unique > 5:
		return ClassMultiBit
	default:
		return ClassScattered
	}
}

// ModuleRisk is one module's early-CE feature vector, risk score, and
// outcome.
type ModuleRisk struct {
	Module int
	// FirstCEAtNs is the time of the module's first CE, or -1.
	FirstCEAtNs int64
	// EarlyCEs counts CEs inside the early window; EarlyUnique the
	// distinct cells among them.
	EarlyCEs, EarlyUnique int
	// EarlyRepeats counts early CEs that re-reported an already-seen
	// cell — stuck-at behaviour, the strongest single predictor.
	EarlyRepeats int
	// EarlyMaxRowSpan and EarlyMaxColSpan are the clustering features
	// over the early window only.
	EarlyMaxRowSpan, EarlyMaxColSpan int
	// Score is the deterministic risk score in (0,1); Predicted is
	// Score >= 0.5.
	Score     float64
	Predicted bool
	// UEAtNs mirrors the ground truth (-1 when the module survived).
	UEAtNs int64
	// FailedEarly marks modules whose UE fell inside the early window
	// itself: they are observation, not prediction, and are excluded
	// from the confusion matrix.
	FailedEarly bool
}

// Confusion is the predictor's confusion matrix over the modules that
// survived the early window.
type Confusion struct {
	TP, FP, FN, TN int
}

// Precision returns TP/(TP+FP), or NaN with no positive predictions.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or NaN with no positive labels.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Analytics is the full analysis of one fleet log.
type Analytics struct {
	// Events and UniqueCells give the fleet-wide dedup headline: raw
	// CE count versus distinct (module, rank, bank, row, col) cells.
	Events, UniqueCells int
	// MaxRepeat is the largest CE count any single cell produced.
	MaxRepeat int
	// Banks holds one cluster per bank that reported at least one CE,
	// sorted by key.
	Banks []BankCluster
	// ClassCounts counts banks per fault class, in the fixed class
	// order (single-cell, row, column, scattered, multi-bit).
	ClassCounts [5]int
	// Risk holds one entry per module (module order), CEs or not.
	Risk []ModuleRisk
	// EarlyEpochs is the early-window length the features were drawn
	// from (the first quarter of the observation window, minimum 1).
	EarlyEpochs int
	// Matrix scores Predicted against the UE ground truth.
	Matrix Confusion
	// MeanLeadNs is the mean (UE time - first CE time) over true
	// positives, or -1 with none — the repair window the prediction
	// buys.
	MeanLeadNs int64
}

// ClassNames lists the fault classes in ClassCounts order.
func ClassNames() [5]string {
	return [5]string{ClassSingleCell, ClassRow, ClassColumn, ClassScattered, ClassMultiBit}
}

// EarlyWindow returns the early-window length for an observation of n
// epochs: the first quarter, minimum one epoch.
func EarlyWindow(epochs int) int {
	w := epochs / 4
	if w < 1 {
		w = 1
	}
	return w
}

// cell identifies one distinct failing cell.
type cell struct {
	rank uint8
	bank uint8
	row  uint32
	col  uint32
}

// Analyze computes the full analytics over a log. It requires the
// log's Info ground truth (logs decoded from a file carry none; re-run
// the fleet to score predictions).
func Analyze(log *Log) *Analytics {
	a := &Analytics{
		Events:      len(log.Events),
		EarlyEpochs: EarlyWindow(log.Epochs),
	}
	earlyNs := int64(a.EarlyEpochs) * log.EpochNs

	// One pass builds the per-bank clusters and the per-module early
	// features. The log is canonically ordered, so per-module and
	// per-bank state reset at boundaries without fleet-wide maps.
	type bankState struct {
		key    BankKey
		events int
		cells  map[[2]uint32]int // (row,col) -> CE count
		byRow  map[uint32]map[uint32]bool
		byCol  map[uint32]map[uint32]bool
	}
	var banks []*bankState
	byKey := map[BankKey]*bankState{}

	risk := make([]ModuleRisk, log.Modules)
	for m := range risk {
		risk[m] = ModuleRisk{Module: m, FirstCEAtNs: -1, UEAtNs: -1}
	}
	type modEarly struct {
		seen    map[cell]bool
		byRow   map[[3]uint32]map[uint32]bool // (rank,bank,row) -> cols
		byCol   map[[3]uint32]map[uint32]bool // (rank,bank,col) -> rows
		repeats int
	}
	early := map[int]*modEarly{}

	for _, ev := range log.Events {
		key := BankKey{Module: ev.Module, Rank: ev.Rank, Bank: ev.Bank}
		bs := byKey[key]
		if bs == nil {
			bs = &bankState{
				key:   key,
				cells: map[[2]uint32]int{},
				byRow: map[uint32]map[uint32]bool{},
				byCol: map[uint32]map[uint32]bool{},
			}
			byKey[key] = bs
			banks = append(banks, bs)
		}
		bs.events++
		rc := [2]uint32{ev.Row, ev.Col}
		bs.cells[rc]++
		if bs.cells[rc] > a.MaxRepeat {
			a.MaxRepeat = bs.cells[rc]
		}
		if bs.byRow[ev.Row] == nil {
			bs.byRow[ev.Row] = map[uint32]bool{}
		}
		bs.byRow[ev.Row][ev.Col] = true
		if bs.byCol[ev.Col] == nil {
			bs.byCol[ev.Col] = map[uint32]bool{}
		}
		bs.byCol[ev.Col][ev.Row] = true

		if int(ev.Module) < len(risk) {
			r := &risk[ev.Module]
			if r.FirstCEAtNs < 0 {
				r.FirstCEAtNs = ev.At
			}
			if ev.At <= earlyNs {
				me := early[int(ev.Module)]
				if me == nil {
					me = &modEarly{
						seen:  map[cell]bool{},
						byRow: map[[3]uint32]map[uint32]bool{},
						byCol: map[[3]uint32]map[uint32]bool{},
					}
					early[int(ev.Module)] = me
				}
				r.EarlyCEs++
				c := cell{rank: ev.Rank, bank: ev.Bank, row: ev.Row, col: ev.Col}
				if me.seen[c] {
					me.repeats++
				} else {
					me.seen[c] = true
				}
				rk := [3]uint32{uint32(ev.Rank), uint32(ev.Bank), ev.Row}
				if me.byRow[rk] == nil {
					me.byRow[rk] = map[uint32]bool{}
				}
				me.byRow[rk][ev.Col] = true
				ck := [3]uint32{uint32(ev.Rank), uint32(ev.Bank), ev.Col}
				if me.byCol[ck] == nil {
					me.byCol[ck] = map[uint32]bool{}
				}
				me.byCol[ck][ev.Row] = true
			}
		}
	}

	// Flatten the bank clusters in key order.
	sort.Slice(banks, func(i, j int) bool { return banks[i].key.less(banks[j].key) })
	classIdx := map[string]int{}
	for i, n := range ClassNames() {
		classIdx[n] = i
	}
	for _, bs := range banks {
		bc := BankCluster{
			Key: bs.key, Events: bs.events, Unique: len(bs.cells),
			Rows: len(bs.byRow), Cols: len(bs.byCol),
		}
		for _, cols := range bs.byRow {
			if len(cols) > bc.MaxRowSpan {
				bc.MaxRowSpan = len(cols)
			}
		}
		for _, rows := range bs.byCol {
			if len(rows) > bc.MaxColSpan {
				bc.MaxColSpan = len(rows)
			}
		}
		bc.Class = classify(bc.Unique, bc.MaxRowSpan, bc.MaxColSpan)
		a.ClassCounts[classIdx[bc.Class]]++
		a.UniqueCells += bc.Unique
		a.Banks = append(a.Banks, bc)
	}

	// Score every module and fill the confusion matrix from the
	// ground truth.
	var leadSum, leadN int64
	for m := range risk {
		r := &risk[m]
		if m < len(log.Info) {
			r.UEAtNs = log.Info[m].UEAtNs
		}
		if me := early[m]; me != nil {
			r.EarlyUnique = len(me.seen)
			r.EarlyRepeats = me.repeats
			for _, cols := range me.byRow {
				if len(cols) > r.EarlyMaxRowSpan {
					r.EarlyMaxRowSpan = len(cols)
				}
			}
			for _, rows := range me.byCol {
				if len(rows) > r.EarlyMaxColSpan {
					r.EarlyMaxColSpan = len(rows)
				}
			}
		}
		r.Score = RiskScore(*r, earlyNs)
		r.Predicted = r.Score >= 0.5
		r.FailedEarly = r.UEAtNs >= 0 && r.UEAtNs <= earlyNs
		if r.FailedEarly {
			continue // already failed: nothing left to predict
		}
		ue := r.UEAtNs > earlyNs
		switch {
		case r.Predicted && ue:
			a.Matrix.TP++
			leadSum += r.UEAtNs - r.FirstCEAtNs
			leadN++
		case r.Predicted && !ue:
			a.Matrix.FP++
		case !r.Predicted && ue:
			a.Matrix.FN++
		default:
			a.Matrix.TN++
		}
	}
	a.MeanLeadNs = -1
	if leadN > 0 {
		a.MeanLeadNs = leadSum / leadN
	}
	a.Risk = risk
	return a
}

// RiskScore maps a module's early-CE features to a UE risk in (0,1).
// The weights are fixed, not trained: each term encodes one "First CE
// Matters" finding — early CE volume is the backbone (a large early
// error population means a large weak-cell population, which is what a
// double-flip UE is a coincidence draw from), with repetition (stuck
// cells), row/column clustering, and early onset as secondary boosts.
// The decision threshold (score 0.5 at s = 3.0, i.e. roughly a
// thousand-CE early window or a few dozen CEs with clustered
// structure) flags only the noisy tail of the fleet, matching the
// field reality that UEs are rare and predictors trade precision for
// recall. The score is a pure function of the feature vector, so
// scoring is deterministic and diffable like every other report
// quantity.
func RiskScore(r ModuleRisk, earlyNs int64) float64 {
	if r.EarlyCEs == 0 {
		return 0
	}
	s := math.Log1p(float64(r.EarlyCEs)) / math.Ln10 // volume (decades)
	if r.EarlyRepeats > 0 {
		s += 0.5 // a cell re-reported: stuck-at behaviour
	}
	if r.EarlyMaxRowSpan >= 2 {
		s += 0.8 // row cluster forming (a step toward a same-word pair)
	}
	if r.EarlyMaxColSpan >= 2 {
		s += 0.3 // column cluster forming
	}
	if earlyNs > 0 && r.FirstCEAtNs >= 0 {
		s += 0.3 * (1 - float64(r.FirstCEAtNs)/float64(earlyNs)) // early onset
	}
	return 1 / (1 + math.Exp(-2*(s-3.0)))
}
