package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"memcon/internal/dram"
)

// TestShardingInvariance is the tentpole property test: a 1,000-module
// fleet produces a byte-identical CE log — and identical ground truth —
// across shard counts 1/4/8 and worker counts 1/4/8. Sharding and
// scheduling partition the work; they must never leak into the result.
func TestShardingInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("1,000-module fleet sweep")
	}
	base := Config{Modules: 1000, Seed: 42, Scale: 0.05}

	var ref []byte
	var refInfo []ModuleInfo
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 4, 8} {
			cfg := base
			cfg.Shards, cfg.Workers = shards, workers
			log, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			var buf bytes.Buffer
			if err := WriteLog(&buf, log); err != nil {
				t.Fatalf("shards=%d workers=%d: encoding: %v", shards, workers, err)
			}
			if ref == nil {
				ref, refInfo = buf.Bytes(), log.Info
				if len(log.Events) == 0 {
					t.Fatal("reference run produced no CE events; the property test is vacuous")
				}
				continue
			}
			if !bytes.Equal(buf.Bytes(), ref) {
				t.Errorf("shards=%d workers=%d: CE log differs from shards=1 workers=1 (%d vs %d bytes)",
					shards, workers, buf.Len(), len(ref))
			}
			if len(log.Info) != len(refInfo) {
				t.Fatalf("shards=%d workers=%d: %d Info entries, want %d", shards, workers, len(log.Info), len(refInfo))
			}
			for m := range log.Info {
				if log.Info[m] != refInfo[m] {
					t.Errorf("shards=%d workers=%d: Info[%d] = %+v, want %+v",
						shards, workers, m, log.Info[m], refInfo[m])
				}
			}
		}
	}
}

// TestRunLogInvariants checks the structural contract of a run's output
// on a small fleet: canonical event order, consistent ground truth, and
// retirement at the first UE.
func TestRunLogInvariants(t *testing.T) {
	log, err := Run(context.Background(), Config{Modules: 24, Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if log.Modules != 24 || log.Epochs != DefaultEpochs || log.EpochNs != EpochNs {
		t.Fatalf("log header = (%d, %d, %d)", log.Modules, log.Epochs, log.EpochNs)
	}
	if len(log.Info) != log.Modules {
		t.Fatalf("%d Info entries for %d modules", len(log.Info), log.Modules)
	}
	for i := 1; i < len(log.Events); i++ {
		if log.Events[i].Less(log.Events[i-1]) {
			t.Fatalf("events %d..%d out of canonical order: %+v then %+v",
				i-1, i, log.Events[i-1], log.Events[i])
		}
	}
	ces := make([]int, log.Modules)
	lastAt := make([]int64, log.Modules)
	for _, ev := range log.Events {
		ces[ev.Module]++
		lastAt[ev.Module] = ev.At
		if ev.At <= 0 || ev.At%EpochNs != 0 || ev.At > int64(log.Epochs)*EpochNs {
			t.Fatalf("event timestamp %d is not a scrub instant", ev.At)
		}
	}
	for m, info := range log.Info {
		if info.Module != m {
			t.Fatalf("Info[%d].Module = %d", m, info.Module)
		}
		if info.CEs != ces[m] {
			t.Errorf("module %d: Info.CEs = %d, log has %d", m, info.CEs, ces[m])
		}
		if info.Class == "" || info.Content == "" || info.WeakScale <= 0 {
			t.Errorf("module %d: incomplete ground truth %+v", m, info)
		}
		switch {
		case info.UEAtNs == -1: // survived
		case info.UEAtNs <= 0 || info.UEAtNs%EpochNs != 0:
			t.Errorf("module %d: UE time %d is not a scrub instant", m, info.UEAtNs)
		case lastAt[m] > info.UEAtNs:
			t.Errorf("module %d: events at %d after retirement at %d", m, lastAt[m], info.UEAtNs)
		}
	}

	// The run's log must round-trip through the codec.
	var buf bytes.Buffer
	if err := WriteLog(&buf, log); err != nil {
		t.Fatalf("a run's log failed canonical encoding: %v", err)
	}
	back, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(log.Events) {
		t.Fatalf("round-trip %d events, want %d", len(back.Events), len(log.Events))
	}
	for i := range back.Events {
		if back.Events[i] != log.Events[i] {
			t.Fatalf("round-trip changed event %d", i)
		}
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("Run accepted a zero-module fleet")
	}
	bad := Config{Modules: 2, Classes: []Class{{Name: "bad", Geom: dram.Geometry{}}}}
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("Run accepted an invalid geometry class")
	} else if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %v does not name the failing class", err)
	}
	// Out-of-range knobs normalize rather than fail.
	log, err := Run(context.Background(), Config{
		Modules: 3, Seed: 1, Scale: -2, Epochs: -1, Shards: 99, Workers: -5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if log.Epochs != DefaultEpochs {
		t.Errorf("Epochs normalized to %d, want %d", log.Epochs, DefaultEpochs)
	}
}

// TestShardBounds pins the partition property: the shard ranges tile
// [0, n) contiguously with sizes differing by at most one.
func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {7, 3}, {8, 8}, {1000, 4}, {1000, 8}, {5, 4},
	} {
		next, minSize, maxSize := 0, tc.n, 0
		for s := 0; s < tc.k; s++ {
			lo, hi := shardBounds(tc.n, tc.k, s)
			if lo != next {
				t.Fatalf("n=%d k=%d: shard %d starts at %d, want %d", tc.n, tc.k, s, lo, next)
			}
			if hi < lo {
				t.Fatalf("n=%d k=%d: shard %d is negative [%d,%d)", tc.n, tc.k, s, lo, hi)
			}
			minSize = min(minSize, hi-lo)
			maxSize = max(maxSize, hi-lo)
			next = hi
		}
		if next != tc.n {
			t.Fatalf("n=%d k=%d: shards end at %d", tc.n, tc.k, next)
		}
		if maxSize-minSize > 1 {
			t.Fatalf("n=%d k=%d: unbalanced shard sizes %d..%d", tc.n, tc.k, minSize, maxSize)
		}
	}
}
