package fleet

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"memcon/internal/dram"
)

// oracleAnalyze recomputes the full analytics by brute force: repeated
// linear scans over the raw event list instead of the single-pass
// grouped maps of Analyze. Quadratic and slow, but independently
// derived from the definitions — the differential test holds the real
// implementation against it.
func oracleAnalyze(log *Log) *Analytics {
	a := &Analytics{Events: len(log.Events)}
	a.EarlyEpochs = log.Epochs / 4
	if a.EarlyEpochs < 1 {
		a.EarlyEpochs = 1
	}
	earlyNs := int64(a.EarlyEpochs) * log.EpochNs

	// Distinct bank keys, in order.
	var keys []BankKey
	for _, ev := range log.Events {
		k := BankKey{Module: ev.Module, Rank: ev.Rank, Bank: ev.Bank}
		found := false
		for _, seen := range keys {
			if seen == k {
				found = true
				break
			}
		}
		if !found {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })

	classIdx := map[string]int{}
	for i, n := range ClassNames() {
		classIdx[n] = i
	}
	for _, k := range keys {
		var evs []Event
		for _, ev := range log.Events {
			if ev.Module == k.Module && ev.Rank == k.Rank && ev.Bank == k.Bank {
				evs = append(evs, ev)
			}
		}
		bc := BankCluster{Key: k, Events: len(evs)}
		// Distinct cells by linear search.
		var cells [][2]uint32
		for _, ev := range evs {
			rc := [2]uint32{ev.Row, ev.Col}
			dup := false
			for _, c := range cells {
				if c == rc {
					dup = true
					break
				}
			}
			if !dup {
				cells = append(cells, rc)
			}
			// Total CE count of this cell.
			n := 0
			for _, other := range evs {
				if other.Row == ev.Row && other.Col == ev.Col {
					n++
				}
			}
			if n > a.MaxRepeat {
				a.MaxRepeat = n
			}
		}
		bc.Unique = len(cells)
		for _, c := range cells {
			// c is the first cell of its row (resp. column)?
			firstRow, firstCol := true, true
			span, colSpan := 0, 0
			for _, o := range cells {
				if o[0] == c[0] {
					span++
					if o[1] < c[1] {
						firstRow = false
					}
				}
				if o[1] == c[1] {
					colSpan++
					if o[0] < c[0] {
						firstCol = false
					}
				}
			}
			if firstRow {
				bc.Rows++
				if span > bc.MaxRowSpan {
					bc.MaxRowSpan = span
				}
			}
			if firstCol {
				bc.Cols++
				if colSpan > bc.MaxColSpan {
					bc.MaxColSpan = colSpan
				}
			}
		}
		// The classification rules, restated.
		switch {
		case bc.Unique <= 1:
			bc.Class = ClassSingleCell
		case bc.MaxRowSpan > 1 && bc.MaxColSpan <= 1:
			bc.Class = ClassRow
		case bc.MaxColSpan > 1 && bc.MaxRowSpan <= 1:
			bc.Class = ClassColumn
		case bc.MaxRowSpan > 1 && bc.MaxColSpan > 1 && bc.Unique >= 6:
			bc.Class = ClassMultiBit
		default:
			bc.Class = ClassScattered
		}
		a.ClassCounts[classIdx[bc.Class]]++
		a.UniqueCells += bc.Unique
		a.Banks = append(a.Banks, bc)
	}

	var leadSum, leadN int64
	for m := 0; m < log.Modules; m++ {
		r := ModuleRisk{Module: m, FirstCEAtNs: -1, UEAtNs: -1}
		var early []Event
		for _, ev := range log.Events {
			if int(ev.Module) != m {
				continue
			}
			if r.FirstCEAtNs < 0 || ev.At < r.FirstCEAtNs {
				r.FirstCEAtNs = ev.At
			}
			if ev.At <= earlyNs {
				early = append(early, ev)
			}
		}
		r.EarlyCEs = len(early)
		var cells []cell
		for _, ev := range early {
			c := cell{rank: ev.Rank, bank: ev.Bank, row: ev.Row, col: ev.Col}
			dup := false
			for _, o := range cells {
				if o == c {
					dup = true
					break
				}
			}
			if !dup {
				cells = append(cells, c)
			}
		}
		r.EarlyUnique = len(cells)
		r.EarlyRepeats = r.EarlyCEs - r.EarlyUnique
		for _, c := range cells {
			span, colSpan := 0, 0
			for _, o := range cells {
				if o.rank == c.rank && o.bank == c.bank && o.row == c.row {
					span++
				}
				if o.rank == c.rank && o.bank == c.bank && o.col == c.col {
					colSpan++
				}
			}
			if span > r.EarlyMaxRowSpan {
				r.EarlyMaxRowSpan = span
			}
			if colSpan > r.EarlyMaxColSpan {
				r.EarlyMaxColSpan = colSpan
			}
		}
		r.Score = RiskScore(r, earlyNs)
		r.Predicted = r.Score >= 0.5
		if m < len(log.Info) {
			r.UEAtNs = log.Info[m].UEAtNs
		}
		r.FailedEarly = r.UEAtNs >= 0 && r.UEAtNs <= earlyNs
		if !r.FailedEarly {
			ue := r.UEAtNs > earlyNs
			switch {
			case r.Predicted && ue:
				a.Matrix.TP++
				leadSum += r.UEAtNs - r.FirstCEAtNs
				leadN++
			case r.Predicted:
				a.Matrix.FP++
			case ue:
				a.Matrix.FN++
			default:
				a.Matrix.TN++
			}
		}
		a.Risk = append(a.Risk, r)
	}
	a.MeanLeadNs = -1
	if leadN > 0 {
		a.MeanLeadNs = leadSum / leadN
	}
	return a
}

// diffAnalytics reports the first field where two analyses disagree.
func diffAnalytics(t *testing.T, got, want *Analytics) {
	t.Helper()
	if got.Events != want.Events || got.UniqueCells != want.UniqueCells || got.MaxRepeat != want.MaxRepeat {
		t.Errorf("headline: got (%d, %d, %d), oracle (%d, %d, %d)",
			got.Events, got.UniqueCells, got.MaxRepeat, want.Events, want.UniqueCells, want.MaxRepeat)
	}
	if got.ClassCounts != want.ClassCounts {
		t.Errorf("class counts: got %v, oracle %v", got.ClassCounts, want.ClassCounts)
	}
	if len(got.Banks) != len(want.Banks) {
		t.Fatalf("%d bank clusters, oracle %d", len(got.Banks), len(want.Banks))
	}
	for i := range got.Banks {
		if got.Banks[i] != want.Banks[i] {
			t.Errorf("bank %d: got %+v, oracle %+v", i, got.Banks[i], want.Banks[i])
		}
	}
	if len(got.Risk) != len(want.Risk) {
		t.Fatalf("%d risk entries, oracle %d", len(got.Risk), len(want.Risk))
	}
	for i := range got.Risk {
		if got.Risk[i] != want.Risk[i] {
			t.Errorf("module %d risk: got %+v, oracle %+v", i, got.Risk[i], want.Risk[i])
		}
	}
	if got.EarlyEpochs != want.EarlyEpochs || got.Matrix != want.Matrix || got.MeanLeadNs != want.MeanLeadNs {
		t.Errorf("scoring: got (%d, %+v, %d), oracle (%d, %+v, %d)",
			got.EarlyEpochs, got.Matrix, got.MeanLeadNs, want.EarlyEpochs, want.Matrix, want.MeanLeadNs)
	}
}

// TestAnalyzeMatchesOracle is the differential test: real fleet runs
// across 3 seeds × 2 geometry-class mixes, analyzed both ways.
func TestAnalyzeMatchesOracle(t *testing.T) {
	classSets := map[string][]Class{
		"default": DefaultClasses(),
		"dense-2R": {
			{Name: "8Gb-x8", Geom: dram.Geometry{
				Ranks: 1, ChipsPerRank: 8, BanksPerChip: 8,
				RowsPerBank: 4096, ColsPerRow: 256, RedundantCols: 8,
			}},
			{Name: "4Gb-2R", Geom: dram.Geometry{
				Ranks: 2, ChipsPerRank: 8, BanksPerChip: 8,
				RowsPerBank: 1024, ColsPerRow: 256, RedundantCols: 8,
			}},
		},
	}
	for name, classes := range classSets {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				log, err := Run(context.Background(), Config{
					Modules: 40, Seed: seed, Scale: 0.05, Classes: classes,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(log.Events) == 0 {
					t.Fatal("run produced no events; differential test is vacuous")
				}
				diffAnalytics(t, Analyze(log), oracleAnalyze(log))
			})
		}
	}
}

// TestAnalyzeSyntheticLog exercises every confusion-matrix cell and the
// early-window boundaries on a hand-built log, checking Analyze against
// both the oracle and directly computed expectations.
func TestAnalyzeSyntheticLog(t *testing.T) {
	const ns = int64(1000) // short epochs for readability
	log := &Log{Modules: 6, Epochs: 8, EpochNs: ns}
	// Early window: 8/4 = 2 epochs, so earlyNs = 2000.
	add := func(m uint32, at int64, rank, bank uint8, row, col uint32) {
		log.Events = append(log.Events, Event{Module: m, At: at, Rank: rank, Bank: bank, Row: row, Col: col})
	}
	// Module 0: silent. -> TN
	// Module 1: noisy with row+column clusters and repeats, then a UE
	// after the early window. -> TP
	for i := uint32(0); i < 10; i++ {
		add(1, ns, 0, 0, 5, i)
		add(1, ns, 0, 1, i, 50)
	}
	for i := uint32(0); i < 10; i++ {
		add(1, 2*ns, 0, 0, 5, i) // repeats of the row cluster
	}
	// Module 2: the same early pattern, but survives. -> FP
	for i := uint32(0); i < 10; i++ {
		add(2, ns, 0, 0, 5, i)
		add(2, ns, 0, 1, i, 50)
	}
	for i := uint32(0); i < 10; i++ {
		add(2, 2*ns, 0, 0, 5, i)
	}
	// Module 3: two quiet singles, then a UE. -> FN
	add(3, ns, 0, 2, 9, 9)
	add(3, 2*ns, 1, 0, 3, 100)
	// Module 4: CEs only after the early window. -> TN (score 0)
	add(4, 3*ns, 0, 0, 1, 2)
	add(4, 5*ns, 0, 0, 1, 2)
	// Module 5: UE at the early-window boundary: observation, not
	// prediction — excluded from the matrix.
	add(5, ns, 0, 0, 7, 7)
	add(5, 2*ns, 0, 0, 7, 8)
	log.Info = []ModuleInfo{
		{Module: 0, UEAtNs: -1},
		{Module: 1, UEAtNs: 5 * ns},
		{Module: 2, UEAtNs: -1},
		{Module: 3, UEAtNs: 6 * ns},
		{Module: 4, UEAtNs: -1},
		{Module: 5, UEAtNs: 2 * ns},
	}
	sort.Slice(log.Events, func(i, j int) bool { return log.Events[i].Less(log.Events[j]) })

	a := Analyze(log)
	diffAnalytics(t, a, oracleAnalyze(log))

	if want := (Confusion{TP: 1, FP: 1, FN: 1, TN: 2}); a.Matrix != want {
		t.Errorf("matrix = %+v, want %+v", a.Matrix, want)
	}
	if !a.Risk[5].FailedEarly {
		t.Error("UE at the early-window boundary not marked FailedEarly")
	}
	if a.MeanLeadNs != 4*ns {
		t.Errorf("MeanLeadNs = %d, want %d", a.MeanLeadNs, 4*ns)
	}
	if a.EarlyEpochs != 2 {
		t.Errorf("EarlyEpochs = %d, want 2", a.EarlyEpochs)
	}
	// Module 1's bank 0 is a row cluster; bank 1 a column cluster.
	for _, bc := range a.Banks {
		if bc.Key.Module == 1 && bc.Key.Bank == 0 && bc.Class != ClassRow {
			t.Errorf("module 1 bank 0 classified %q, want %q", bc.Class, ClassRow)
		}
		if bc.Key.Module == 1 && bc.Key.Bank == 1 && bc.Class != ClassColumn {
			t.Errorf("module 1 bank 1 classified %q, want %q", bc.Class, ClassColumn)
		}
	}
	if !a.Risk[1].Predicted || a.Risk[2].Score != a.Risk[1].Score {
		t.Errorf("noisy twins scored %v/%v, want equal and predicted",
			a.Risk[1].Score, a.Risk[2].Score)
	}
	if a.Risk[4].Score != 0 || a.Risk[4].FirstCEAtNs != 3*ns {
		t.Errorf("late-onset module risk = %+v, want score 0 with first CE at %d", a.Risk[4], 3*ns)
	}
}

// TestClassifyTable pins the AMD-style classification rules directly.
func TestClassifyTable(t *testing.T) {
	cases := []struct {
		unique, rowSpan, colSpan int
		want                     string
	}{
		{0, 0, 0, ClassSingleCell},
		{1, 1, 1, ClassSingleCell},
		{3, 3, 1, ClassRow},
		{3, 1, 3, ClassColumn},
		{4, 2, 2, ClassScattered},
		{5, 2, 3, ClassScattered},
		{6, 2, 2, ClassMultiBit},
		{12, 4, 3, ClassMultiBit},
	}
	for _, tc := range cases {
		if got := classify(tc.unique, tc.rowSpan, tc.colSpan); got != tc.want {
			t.Errorf("classify(%d, %d, %d) = %q, want %q", tc.unique, tc.rowSpan, tc.colSpan, got, tc.want)
		}
	}
}

// TestConfusionRates checks the NaN contracts of the derived rates.
func TestConfusionRates(t *testing.T) {
	c := Confusion{TP: 3, FP: 1, FN: 2, TN: 10}
	if p := c.Precision(); p != 0.75 {
		t.Errorf("precision = %v", p)
	}
	if r := c.Recall(); r != 0.6 {
		t.Errorf("recall = %v", r)
	}
	empty := Confusion{TN: 5}
	if p := empty.Precision(); p == p { // NaN != NaN
		t.Errorf("precision with no positive predictions = %v, want NaN", p)
	}
	if r := empty.Recall(); r == r {
		t.Errorf("recall with no positive labels = %v, want NaN", r)
	}
}
