package fleet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Compact streaming codec for CE event logs, modeled on trace.Stream:
// a fleet-scale log holds one event per correctable error across
// months of simulated time for thousands of modules, so both ends are
// incremental — LogEncoder writes events as the run produces them and
// LogStream decodes one event per Next call in O(1) memory. The format
// is delta/varint over the canonical (Module, At, Rank, Bank, Row,
// Col) order, whose delta-bearing prefix the encoder enforces: module
// indices arrive non-decreasing and timestamps non-decreasing within a
// module. The decoder tolerates non-minimal varints, so re-encoding a
// decoded log canonicalizes it — encode∘decode is a fixed point
// (FuzzCELog pins it).
//
// Layout (all varints unsigned LEB128):
//
//	magic "FCE1" (LE uint32)
//	modules, epochs, epochNs, count   — header varints
//	per event:
//	  moduleDelta                     — module - prevModule
//	  at / atDelta                    — absolute when the module
//	                                    changed, else at - prevAt
//	  rank, bank, row, col            — absolute varints

// celogMagic is "FCE1" little-endian.
const celogMagic = 0x31454346

// ErrBadLog reports a structurally invalid CE log.
var ErrBadLog = errors.New("fleet: malformed CE log")

// LogDecodeError locates a malformed field in a CE log stream: the
// event index it belongs to (-1 for header fields) and the byte offset
// where its encoding starts.
type LogDecodeError struct {
	// Event is the 0-based index of the event being decoded, or -1
	// when the header failed.
	Event int64
	// Offset is the byte offset of the failing field's first byte.
	Offset int64
	// Field names the field being decoded.
	Field string
	// Err is the underlying cause (ErrBadLog for structural
	// violations, io.ErrUnexpectedEOF for truncation, ...).
	Err error
}

// Error implements error.
func (e *LogDecodeError) Error() string {
	if e.Event < 0 {
		return fmt.Sprintf("fleet: decoding %s at offset %d: %v", e.Field, e.Offset, e.Err)
	}
	return fmt.Sprintf("fleet: decoding event %d %s at offset %d: %v", e.Event, e.Field, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *LogDecodeError) Unwrap() error { return e.Err }

// logReader counts consumed bytes so decode errors carry the offset of
// the field that failed.
type logReader struct {
	br *bufio.Reader
	n  int64
}

func (c *logReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *logReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// declared-length stream, running out of bytes is truncation, never a
// clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// LogStream incrementally decodes a CE log: NewLogStream consumes the
// header, then each Next call decodes one event. Memory use is
// constant regardless of log size.
type LogStream struct {
	r       logReader
	modules int
	epochs  int
	epochNs int64
	total   uint64
	idx     uint64
	prevMod uint32
	prevAt  int64
	err     error // sticky decode error
}

// NewLogStream opens a CE log over r, reading and validating the
// header. The events decode lazily through Next.
func NewLogStream(r io.Reader) (*LogStream, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	s := &LogStream{r: logReader{br: br}}
	var m uint32
	if err := binary.Read(&s.r, binary.LittleEndian, &m); err != nil {
		return nil, &LogDecodeError{Event: -1, Offset: 0, Field: "magic", Err: noEOF(err)}
	}
	if m != celogMagic {
		return nil, ErrBadLog
	}
	hdr := func(field string, max uint64) (uint64, error) {
		v, off, err := s.uvarint()
		if err != nil {
			return 0, &LogDecodeError{Event: -1, Offset: off, Field: field, Err: noEOF(err)}
		}
		if v > max {
			return 0, &LogDecodeError{Event: -1, Offset: off, Field: field,
				Err: fmt.Errorf("%w: implausible %s %d", ErrBadLog, field, v)}
		}
		return v, nil
	}
	modules, err := hdr("module count", 1<<32)
	if err != nil {
		return nil, err
	}
	epochs, err := hdr("epoch count", 1<<32)
	if err != nil {
		return nil, err
	}
	epochNs, err := hdr("epoch duration", math.MaxInt64)
	if err != nil {
		return nil, err
	}
	count, err := hdr("event count", 1<<40)
	if err != nil {
		return nil, err
	}
	s.modules = int(modules)
	s.epochs = int(epochs)
	s.epochNs = int64(epochNs)
	s.total = count
	return s, nil
}

// uvarint reads one varint, returning the offset of its first byte.
func (s *LogStream) uvarint() (v uint64, off int64, err error) {
	off = s.r.n
	v, err = binary.ReadUvarint(&s.r)
	return v, off, err
}

// Modules returns the fleet size from the header.
func (s *LogStream) Modules() int { return s.modules }

// Epochs returns the observation length from the header.
func (s *LogStream) Epochs() int { return s.epochs }

// EpochNs returns the scrub interval from the header.
func (s *LogStream) EpochNs() int64 { return s.epochNs }

// Events returns the declared event count from the header.
func (s *LogStream) Events() uint64 { return s.total }

// Next decodes and returns the next event. It returns io.EOF after the
// declared count has been delivered; any other error (truncation,
// field overflow, ordering violation) is positioned and sticky.
func (s *LogStream) Next() (Event, error) {
	if s.err != nil {
		return Event{}, s.err
	}
	if s.idx >= s.total {
		return Event{}, io.EOF
	}
	modDelta, off, err := s.uvarint()
	if err != nil {
		return Event{}, s.fail(off, "module delta", noEOF(err))
	}
	if modDelta > uint64(math.MaxUint32)-uint64(s.prevMod) {
		return Event{}, s.fail(off, "module delta",
			fmt.Errorf("%w: module delta %d overflows uint32 at module %d", ErrBadLog, modDelta, s.prevMod))
	}
	mod := s.prevMod + uint32(modDelta)
	if s.modules > 0 && uint64(mod) >= uint64(s.modules) {
		return Event{}, s.fail(off, "module delta",
			fmt.Errorf("%w: module %d outside declared fleet of %d", ErrBadLog, mod, s.modules))
	}
	if modDelta > 0 {
		s.prevAt = 0
	}
	at, off, err := s.uvarint()
	if err != nil {
		return Event{}, s.fail(off, "timestamp", noEOF(err))
	}
	// Reject deltas that would wrap the running timestamp: the wrap
	// would surface only later as an out-of-order event, far from the
	// corrupt bytes.
	if at > math.MaxInt64 || int64(at) > math.MaxInt64-s.prevAt {
		return Event{}, s.fail(off, "timestamp",
			fmt.Errorf("%w: delta %d overflows the timestamp at %d", ErrBadLog, at, s.prevAt))
	}
	s.prevMod = mod
	s.prevAt += int64(at)
	ev := Event{Module: mod, At: s.prevAt}
	field := func(name string, max uint64) (uint64, bool) {
		v, off, err := s.uvarint()
		if err != nil {
			s.fail(off, name, noEOF(err))
			return 0, false
		}
		if v > max {
			s.fail(off, name, fmt.Errorf("%w: %s %d overflows", ErrBadLog, name, v))
			return 0, false
		}
		return v, true
	}
	rank, ok := field("rank", math.MaxUint8)
	if !ok {
		return Event{}, s.err
	}
	bank, ok := field("bank", math.MaxUint8)
	if !ok {
		return Event{}, s.err
	}
	row, ok := field("row", math.MaxUint32)
	if !ok {
		return Event{}, s.err
	}
	col, ok := field("col", math.MaxUint32)
	if !ok {
		return Event{}, s.err
	}
	ev.Rank, ev.Bank, ev.Row, ev.Col = uint8(rank), uint8(bank), uint32(row), uint32(col)
	s.idx++
	return ev, nil
}

// fail records and returns the positioned sticky error.
func (s *LogStream) fail(off int64, field string, cause error) error {
	s.err = &LogDecodeError{Event: int64(s.idx), Offset: off, Field: field, Err: cause}
	return s.err
}

// LogEncoder writes the compact CE log incrementally. The event count
// must be known up front — the header carries it — and Close verifies
// that exactly that many events were encoded in canonical order.
type LogEncoder struct {
	bw      *bufio.Writer
	total   uint64
	written uint64
	prevMod uint32
	prevAt  int64
	started bool
	buf     [binary.MaxVarintLen64]byte
}

// NewLogEncoder writes the header and returns an encoder expecting
// exactly count canonically ordered events.
func NewLogEncoder(w io.Writer, modules, epochs int, epochNs int64, count uint64) (*LogEncoder, error) {
	if modules < 0 || epochs < 0 || epochNs < 0 {
		return nil, fmt.Errorf("fleet: negative log header field (%d modules, %d epochs, %d ns)", modules, epochs, epochNs)
	}
	e := &LogEncoder{bw: bufio.NewWriter(w), total: count}
	if err := binary.Write(e.bw, binary.LittleEndian, uint32(celogMagic)); err != nil {
		return nil, fmt.Errorf("fleet: writing magic: %w", err)
	}
	for _, v := range []uint64{uint64(modules), uint64(epochs), uint64(epochNs), count} {
		if err := e.uvarint(v); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// uvarint writes one varint.
func (e *LogEncoder) uvarint(v uint64) error {
	n := binary.PutUvarint(e.buf[:], v)
	_, err := e.bw.Write(e.buf[:n])
	return err
}

// Encode appends one event. Events must arrive in canonical log order
// (non-decreasing module; within a module non-decreasing time).
func (e *LogEncoder) Encode(ev Event) error {
	if e.written >= e.total {
		return fmt.Errorf("fleet: encoder declared %d events, got more", e.total)
	}
	if ev.At < 0 {
		return fmt.Errorf("fleet: event timestamp %d is negative", ev.At)
	}
	prevAt := e.prevAt
	if ev.Module != e.prevMod {
		if e.started && ev.Module < e.prevMod {
			return fmt.Errorf("fleet: module %d out of order (previous %d)", ev.Module, e.prevMod)
		}
		prevAt = 0
	}
	if ev.At < prevAt {
		return fmt.Errorf("fleet: module %d event at %d out of order (previous %d)", ev.Module, ev.At, prevAt)
	}
	if err := e.uvarint(uint64(ev.Module - e.prevMod)); err != nil {
		return err
	}
	if err := e.uvarint(uint64(ev.At - prevAt)); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(ev.Rank), uint64(ev.Bank), uint64(ev.Row), uint64(ev.Col)} {
		if err := e.uvarint(v); err != nil {
			return err
		}
	}
	e.prevMod, e.prevAt, e.started = ev.Module, ev.At, true
	e.written++
	return nil
}

// Close flushes the stream and verifies the declared event count was
// met.
func (e *LogEncoder) Close() error {
	if e.written != e.total {
		return fmt.Errorf("fleet: encoder declared %d events, encoded %d", e.total, e.written)
	}
	return e.bw.Flush()
}

// WriteLog encodes a materialized log. The ground-truth Info entries
// are not serialized — they are regenerable from the run inputs; the
// file is the pure event log a field pipeline would collect.
func WriteLog(w io.Writer, log *Log) error {
	enc, err := NewLogEncoder(w, log.Modules, log.Epochs, log.EpochNs, uint64(len(log.Events)))
	if err != nil {
		return err
	}
	for _, ev := range log.Events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return enc.Close()
}

// ReadLog materializes a CE log file written by WriteLog (Info is not
// serialized and comes back nil).
func ReadLog(r io.Reader) (*Log, error) {
	s, err := NewLogStream(r)
	if err != nil {
		return nil, err
	}
	log := &Log{
		Modules: s.Modules(), Epochs: s.Epochs(), EpochNs: s.EpochNs(),
		Events: make([]Event, 0, min(s.Events(), 1<<20)),
	}
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return log, nil
		}
		if err != nil {
			return nil, err
		}
		log.Events = append(log.Events, ev)
	}
}
