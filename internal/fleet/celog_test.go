package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// buildCELog hand-assembles a CE log from raw header fields and
// pre-encoded event varints, so tests can express malformed inputs the
// LogEncoder refuses to produce.
func buildCELog(modules, epochs, epochNs, count uint64, events ...uint64) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(celogMagic))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		b.Write(tmp[:n])
	}
	put(modules)
	put(epochs)
	put(epochNs)
	put(count)
	for _, v := range events {
		put(v)
	}
	return b.Bytes()
}

// sampleLog covers the encoding's interesting shapes: module changes
// (timestamp goes absolute), repeated timestamps within a module, and
// rank/bank diversity.
func sampleLog() *Log {
	return &Log{
		Modules: 4, Epochs: 3, EpochNs: 1000,
		Events: []Event{
			{Module: 0, At: 1000, Rank: 0, Bank: 1, Row: 7, Col: 42},
			{Module: 0, At: 1000, Rank: 0, Bank: 1, Row: 7, Col: 43},
			{Module: 0, At: 3000, Rank: 1, Bank: 0, Row: 2, Col: 5},
			{Module: 2, At: 2000, Rank: 0, Bank: 3, Row: 1023, Col: 263},
			{Module: 3, At: 1000, Rank: 0, Bank: 0, Row: 0, Col: 0},
		},
	}
}

// encodeCELog encodes through the streaming LogEncoder and returns the
// bytes.
func encodeCELog(t *testing.T, log *Log) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteLog(&b, log); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestCELogRoundTrip(t *testing.T) {
	want := sampleLog()
	raw := encodeCELog(t, want)

	got, err := ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Modules != want.Modules || got.Epochs != want.Epochs || got.EpochNs != want.EpochNs {
		t.Fatalf("header = (%d, %d, %d), want (%d, %d, %d)",
			got.Modules, got.Epochs, got.EpochNs, want.Modules, want.Epochs, want.EpochNs)
	}
	if got.Info != nil {
		t.Fatalf("ReadLog materialized Info = %v, want nil (ground truth is not serialized)", got.Info)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("decoded %d events, want %d", len(got.Events), len(want.Events))
	}
	for i := range got.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}
}

func TestLogStreamMatchesReadLog(t *testing.T) {
	raw := encodeCELog(t, sampleLog())

	got, err := ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewLogStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if s.Modules() != got.Modules || s.Epochs() != got.Epochs ||
		s.EpochNs() != got.EpochNs || s.Events() != uint64(len(got.Events)) {
		t.Fatalf("stream header = (%d, %d, %d, %d)", s.Modules(), s.Epochs(), s.EpochNs(), s.Events())
	}
	for i := range got.Events {
		ev, err := s.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev != got.Events[i] {
			t.Fatalf("event %d: stream %+v != materialized %+v", i, ev, got.Events[i])
		}
	}
	// Next after the declared count keeps returning io.EOF.
	for i := 0; i < 2; i++ {
		if _, err := s.Next(); err != io.EOF {
			t.Fatalf("Next after end = %v, want io.EOF", err)
		}
	}
}

// TestCELogDecodeErrors is the truncation/overflow table test: every
// malformed input must fail with a positioned LogDecodeError naming the
// failing event, never decode silently or report a clean end.
func TestCELogDecodeErrors(t *testing.T) {
	// Two events of module 0: at 1000 (r0 b1 row7 col42), at 3000.
	valid := buildCELog(2, 3, 1000, 2,
		0, 1000, 0, 1, 7, 42,
		0, 2000, 1, 0, 2, 5)
	cases := []struct {
		name      string
		input     []byte
		wantEvent int64 // expected LogDecodeError.Event
		wantIs    error // expected errors.Is target
	}{
		{
			name:      "module delta overflows uint32",
			input:     buildCELog(2, 1, 1000, 1, math.MaxUint64),
			wantEvent: 0,
			wantIs:    ErrBadLog,
		},
		{
			name:      "module outside declared fleet",
			input:     buildCELog(2, 1, 1000, 1, 2, 0, 0, 0, 0, 0),
			wantEvent: 0,
			wantIs:    ErrBadLog,
		},
		{
			name:      "timestamp overflows int64",
			input:     buildCELog(1, 1, 1000, 1, 0, math.MaxUint64),
			wantEvent: 0,
			wantIs:    ErrBadLog,
		},
		{
			name: "running timestamp overflows",
			// First event lands at MaxInt64-1; the second delta of 2
			// would wrap negative.
			input: buildCELog(1, 1, 1000, 2,
				0, math.MaxInt64-1, 0, 0, 0, 0,
				0, 2, 0, 0, 0, 0),
			wantEvent: 1,
			wantIs:    ErrBadLog,
		},
		{
			name:      "rank overflows uint8",
			input:     buildCELog(1, 1, 1000, 1, 0, 5, 256, 0, 0, 0),
			wantEvent: 0,
			wantIs:    ErrBadLog,
		},
		{
			name:      "bank overflows uint8",
			input:     buildCELog(1, 1, 1000, 1, 0, 5, 0, 256, 0, 0),
			wantEvent: 0,
			wantIs:    ErrBadLog,
		},
		{
			name:      "row overflows uint32",
			input:     buildCELog(1, 1, 1000, 1, 0, 5, 0, 0, 1<<33, 0),
			wantEvent: 0,
			wantIs:    ErrBadLog,
		},
		{
			name:      "col overflows uint32",
			input:     buildCELog(1, 1, 1000, 1, 0, 5, 0, 0, 1, 1<<33),
			wantEvent: 0,
			wantIs:    ErrBadLog,
		},
		{
			name:      "truncated mid-event",
			input:     valid[:len(valid)-1],
			wantEvent: 1,
			wantIs:    io.ErrUnexpectedEOF,
		},
		{
			name:      "truncated before events",
			input:     buildCELog(2, 3, 1000, 2),
			wantEvent: 0,
			wantIs:    io.ErrUnexpectedEOF,
		},
		{
			name:      "truncated header",
			input:     valid[:5],
			wantEvent: -1,
			wantIs:    io.ErrUnexpectedEOF,
		},
		{
			name:      "implausible module count",
			input:     buildCELog(1<<33, 1, 1000, 0),
			wantEvent: -1,
			wantIs:    ErrBadLog,
		},
		{
			name:      "implausible event count",
			input:     buildCELog(1, 1, 1000, 1<<41),
			wantEvent: -1,
			wantIs:    ErrBadLog,
		},
		{
			name:      "epoch duration overflows int64",
			input:     buildCELog(1, 1, math.MaxUint64, 0),
			wantEvent: -1,
			wantIs:    ErrBadLog,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadLog(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatal("ReadLog accepted malformed input")
			}
			var de *LogDecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %v (%T) is not a *LogDecodeError", err, err)
			}
			if de.Event != tc.wantEvent {
				t.Errorf("LogDecodeError.Event = %d, want %d (err: %v)", de.Event, tc.wantEvent, err)
			}
			if de.Offset <= 0 {
				t.Errorf("LogDecodeError.Offset = %d, want positive (err: %v)", de.Offset, err)
			}
			if !errors.Is(err, tc.wantIs) {
				t.Errorf("errors.Is(%v, %v) = false", err, tc.wantIs)
			}
			if !strings.Contains(err.Error(), "offset") {
				t.Errorf("error %q does not mention the offset", err)
			}
			// The streaming path must reject the same input, and the
			// error must be sticky.
			if s, serr := NewLogStream(bytes.NewReader(tc.input)); serr == nil {
				var first error
				for {
					_, nerr := s.Next()
					if nerr != nil {
						first = nerr
						break
					}
				}
				if first == io.EOF {
					t.Fatal("stream path decoded malformed input cleanly")
				}
				if _, again := s.Next(); !errors.Is(again, first) {
					t.Errorf("decode error is not sticky: %v then %v", first, again)
				}
			} else if tc.wantEvent >= 0 {
				t.Errorf("header rejected (%v) but materializing path failed on event %d", serr, tc.wantEvent)
			}
		})
	}

	if _, err := ReadLog(bytes.NewReader([]byte("not a CE log"))); !errors.Is(err, ErrBadLog) {
		t.Fatalf("bad magic = %v, want ErrBadLog", err)
	}
}

func TestLogEncoderRejectsMisuse(t *testing.T) {
	if _, err := NewLogEncoder(io.Discard, -1, 0, 0, 0); err == nil {
		t.Error("NewLogEncoder accepted a negative module count")
	}
	if _, err := NewLogEncoder(io.Discard, 0, 0, -1, 0); err == nil {
		t.Error("NewLogEncoder accepted a negative epoch duration")
	}

	var b bytes.Buffer
	enc, err := NewLogEncoder(&b, 4, 3, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err == nil {
		t.Error("Close accepted an unmet event count")
	}
	if err := enc.Encode(Event{Module: 1, At: -5}); err == nil {
		t.Error("Encode accepted a negative timestamp")
	}
	if err := enc.Encode(Event{Module: 1, At: 2000}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Event{Module: 1, At: 1000}); err == nil {
		t.Error("Encode accepted an out-of-order timestamp within a module")
	}
	if err := enc.Encode(Event{Module: 0, At: 5000}); err == nil {
		t.Error("Encode accepted an out-of-order module")
	}
	// A module change resets the timestamp baseline: an earlier absolute
	// time on a later module is canonical.
	if err := enc.Encode(Event{Module: 2, At: 1000}); err != nil {
		t.Errorf("Encode rejected a module change with an earlier timestamp: %v", err)
	}
	if err := enc.Encode(Event{Module: 3, At: 1000}); err == nil {
		t.Error("Encode accepted an event beyond the declared count")
	}
}

// FuzzCELog cross-checks the two decode paths on arbitrary bytes: they
// must agree on accept/reject, and on accepted inputs the decoded
// events must match and a re-encode must be a canonical fixed point.
func FuzzCELog(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := WriteLog(&seedBuf, sampleLog()); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add(buildCELog(0, 0, 0, 0))
	f.Add(buildCELog(1, 1, 1000, 1, 0, math.MaxInt64, 0, 0, 0, 0))
	f.Add([]byte("FCE1 garbage"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		log, rlErr := ReadLog(bytes.NewReader(raw))

		var streamed []Event
		s, sErr := NewLogStream(bytes.NewReader(raw))
		if sErr == nil {
			for {
				ev, err := s.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					sErr = err
					break
				}
				streamed = append(streamed, ev)
			}
		}

		if (rlErr == nil) != (sErr == nil) {
			t.Fatalf("paths disagree: ReadLog err=%v, LogStream err=%v", rlErr, sErr)
		}
		if rlErr != nil {
			return
		}
		if len(streamed) != len(log.Events) {
			t.Fatalf("stream %d events, ReadLog %d", len(streamed), len(log.Events))
		}
		for i := range streamed {
			if streamed[i] != log.Events[i] {
				t.Fatalf("event %d: %+v != %+v", i, streamed[i], log.Events[i])
			}
		}
		// Re-encoding the decoded log and decoding again must
		// round-trip losslessly, and the re-encode must be a canonical
		// fixed point: encode(decode(encode(x))) == encode(x). (A plain
		// byte-compare against raw would be too strong — ReadUvarint
		// tolerates non-minimal varints the canonical encoder never
		// emits.)
		first := encodeCELog(t, log)
		again, err := ReadLog(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("re-encoded log failed to decode: %v", err)
		}
		if again.Modules != log.Modules || again.Epochs != log.Epochs ||
			again.EpochNs != log.EpochNs || len(again.Events) != len(log.Events) {
			t.Fatalf("round-trip changed the log header: %+v vs %+v", again, log)
		}
		for i := range again.Events {
			if again.Events[i] != log.Events[i] {
				t.Fatalf("round-trip changed event %d: %+v != %+v", i, again.Events[i], log.Events[i])
			}
		}
		if second := encodeCELog(t, again); !bytes.Equal(first, second) {
			t.Fatalf("re-encode is not a fixed point:\n first  %x\n second %x", first, second)
		}
	})
}
