package ddr3

import (
	"fmt"
	"sort"

	"memcon/internal/dram"
)

// Violation describes one timing-constraint breach in a command trace.
type Violation struct {
	Constraint string
	First      Command
	Second     Command
	Required   dram.Nanoseconds
	Actual     dram.Nanoseconds
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s@%d -> %s@%d gap %d < %d",
		v.Constraint, v.First.Kind, v.First.At, v.Second.Kind, v.Second.At, v.Actual, v.Required)
}

// CheckTrace validates a command trace against the timing set. It is an
// independent re-implementation of the constraints (no shared code with
// the scheduler) so controller bugs cannot hide in shared logic.
func CheckTrace(cmds []Command, tm Timing, trfc dram.Nanoseconds) []Violation {
	sorted := append([]Command(nil), cmds...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	var out []Violation
	add := func(name string, a, b Command, req dram.Nanoseconds) {
		gap := b.At - a.At
		if gap < req {
			out = append(out, Violation{Constraint: name, First: a, Second: b, Required: req, Actual: gap})
		}
	}

	type bankHist struct {
		lastACT, lastPRE *Command
		lastRD, lastWR   *Command
		lastACTAt        dram.Nanoseconds
	}
	banks := map[int]*bankHist{}
	getBank := func(b int) *bankHist {
		h, ok := banks[b]
		if !ok {
			h = &bankHist{}
			banks[b] = h
		}
		return h
	}
	var lastColumn *Command // rank-wide last RD/WR
	var lastWR *Command
	var lastACTRank *Command
	var actWindow []Command
	var lastREF *Command

	for i := range sorted {
		cmd := sorted[i]
		switch cmd.Kind {
		case ACT:
			h := getBank(cmd.Bank)
			if h.lastACT != nil {
				add("tRC", *h.lastACT, cmd, tm.TRC)
			}
			if h.lastPRE != nil {
				add("tRP", *h.lastPRE, cmd, tm.TRP)
			}
			if lastACTRank != nil && lastACTRank.Bank != cmd.Bank {
				add("tRRD", *lastACTRank, cmd, tm.TRRD)
			}
			if len(actWindow) >= 4 {
				add("tFAW", actWindow[len(actWindow)-4], cmd, tm.TFAW)
			}
			if lastREF != nil {
				add("tRFC", *lastREF, cmd, trfc)
			}
			c := cmd
			h.lastACT = &c
			h.lastACTAt = cmd.At
			lastACTRank = &c
			actWindow = append(actWindow, cmd)
			if len(actWindow) > 8 {
				actWindow = actWindow[len(actWindow)-8:]
			}
		case PRE:
			h := getBank(cmd.Bank)
			if h.lastACT != nil {
				add("tRAS", *h.lastACT, cmd, tm.TRAS)
			}
			if h.lastRD != nil {
				add("tRTP", *h.lastRD, cmd, tm.TRTP)
			}
			if h.lastWR != nil {
				add("tWR(after data)", *h.lastWR, cmd, tm.CWL+tm.TBurst+tm.TWR)
			}
			c := cmd
			h.lastPRE = &c
		case RD, WR:
			h := getBank(cmd.Bank)
			if h.lastACT != nil {
				add("tRCD", *h.lastACT, cmd, tm.TRCD)
			}
			if lastColumn != nil {
				add("tCCD", *lastColumn, cmd, tm.TCCD)
			}
			if cmd.Kind == RD && lastWR != nil {
				add("tWTR", *lastWR, cmd, tm.CWL+tm.TBurst+tm.TWTR)
			}
			c := cmd
			lastColumn = &c
			if cmd.Kind == WR {
				lastWR = &c
				h.lastWR = &c
			} else {
				h.lastRD = &c
			}
		case REF:
			c := cmd
			lastREF = &c
		}
	}
	return out
}
