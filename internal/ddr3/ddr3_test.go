package ddr3

import (
	"math/rand"
	"testing"

	"memcon/internal/dram"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := DefaultConfig()
	c.Banks = 0
	if err := c.Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	c = DefaultConfig()
	c.RefreshPeriod = -1
	if err := c.Validate(); err == nil {
		t.Error("negative refresh period accepted")
	}
	c = DefaultConfig()
	c.RefreshPeriod = c.Density.TRFC()
	if err := c.Validate(); err == nil {
		t.Error("refresh period <= tRFC accepted")
	}
}

func TestCommandKindString(t *testing.T) {
	for _, k := range []CommandKind{ACT, PRE, RD, WR, REF} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
	if CommandKind(42).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestEnqueueValidation(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(Request{ID: 1, Bank: -1}); err == nil {
		t.Error("negative bank accepted")
	}
	if err := c.Enqueue(Request{ID: 1, Bank: 0, Arrival: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(Request{ID: 2, Bank: 0, Arrival: 50}); err == nil {
		t.Error("decreasing arrival accepted")
	}
}

func TestSingleReadCommandSequence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = 0 // no refresh noise
	c, _ := New(cfg)
	if err := c.Enqueue(Request{ID: 1, Arrival: 0, Bank: 2, Row: 7}); err != nil {
		t.Fatal(err)
	}
	done := c.Drain()
	if len(done) != 1 {
		t.Fatalf("completions = %d, want 1", len(done))
	}
	tm := cfg.Timing
	want := tm.TRCD + tm.CL + tm.TBurst // ACT@0, RD@tRCD, data after CL+burst
	if done[0].Done != want {
		t.Errorf("completion = %d, want %d", done[0].Done, want)
	}
	trace := c.Trace()
	if len(trace) != 2 || trace[0].Kind != ACT || trace[1].Kind != RD {
		t.Fatalf("command sequence = %v, want [ACT RD]", trace)
	}
}

func TestRowHitSkipsActivation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = 0
	c, _ := New(cfg)
	c.Enqueue(Request{ID: 1, Arrival: 0, Bank: 0, Row: 5})
	c.Enqueue(Request{ID: 2, Arrival: 1, Bank: 0, Row: 5})
	c.Drain()
	acts := 0
	for _, cmd := range c.Trace() {
		if cmd.Kind == ACT {
			acts++
		}
	}
	if acts != 1 {
		t.Errorf("row hit issued %d ACTs, want 1", acts)
	}
}

func TestRowConflictPrecharges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = 0
	c, _ := New(cfg)
	c.Enqueue(Request{ID: 1, Arrival: 0, Bank: 0, Row: 5})
	c.Enqueue(Request{ID: 2, Arrival: 1, Bank: 0, Row: 9})
	c.Drain()
	kinds := []CommandKind{}
	for _, cmd := range c.Trace() {
		kinds = append(kinds, cmd.Kind)
	}
	want := []CommandKind{ACT, RD, PRE, ACT, RD}
	if len(kinds) != len(want) {
		t.Fatalf("commands = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("commands = %v, want %v", kinds, want)
		}
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = 0
	c, _ := New(cfg)
	// Open row 1 in bank 0, then enqueue a conflicting request followed
	// by a row hit arriving at the same time: the hit should be served
	// first.
	c.Enqueue(Request{ID: 1, Arrival: 0, Bank: 0, Row: 1})
	c.Enqueue(Request{ID: 2, Arrival: 100, Bank: 0, Row: 2}) // conflict
	c.Enqueue(Request{ID: 3, Arrival: 100, Bank: 0, Row: 1}) // hit
	done := c.Drain()
	order := map[int]dram.Nanoseconds{}
	for _, d := range done {
		order[d.ID] = d.Done
	}
	if order[3] >= order[2] {
		t.Errorf("row hit (id 3, done %d) not prioritized over conflict (id 2, done %d)", order[3], order[2])
	}
}

func TestRefreshBlocksAndCloses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = 3 * dram.Microsecond
	c, _ := New(cfg)
	// A request arriving right at the refresh boundary must wait tRFC
	// and re-activate (refresh precharges all banks).
	c.Enqueue(Request{ID: 1, Arrival: 0, Bank: 0, Row: 1})
	c.Enqueue(Request{ID: 2, Arrival: cfg.RefreshPeriod, Bank: 0, Row: 1})
	done := c.Drain()
	refs, acts := 0, 0
	for _, cmd := range c.Trace() {
		if cmd.Kind == REF {
			refs++
		}
		if cmd.Kind == ACT {
			acts++
		}
	}
	if refs == 0 {
		t.Fatal("no REF issued")
	}
	if acts != 2 {
		t.Errorf("ACTs = %d, want 2 (REF closes the row)", acts)
	}
	var d2 dram.Nanoseconds
	for _, d := range done {
		if d.ID == 2 {
			d2 = d.Done
		}
	}
	if d2 < cfg.RefreshPeriod+cfg.Density.TRFC() {
		t.Errorf("request 2 finished at %d, inside the refresh window", d2)
	}
}

func TestWriteReadTurnaround(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = 0
	c, _ := New(cfg)
	c.Enqueue(Request{ID: 1, Arrival: 0, Bank: 0, Row: 1, Write: true})
	c.Enqueue(Request{ID: 2, Arrival: 1, Bank: 1, Row: 1})
	c.Drain()
	if v := CheckTrace(c.Trace(), cfg.Timing, cfg.Density.TRFC()); len(v) != 0 {
		t.Fatalf("turnaround violations: %v", v)
	}
}

// The central correctness property: every schedule the controller emits
// satisfies every JEDEC constraint, verified by the independent checker.
func TestRandomScheduleHasNoViolations(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		cfg := DefaultConfig()
		cfg.Density = dram.Density32Gb
		cfg.RefreshPeriod = 2 * dram.Microsecond
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		at := dram.Nanoseconds(0)
		for i := 0; i < 400; i++ {
			at += dram.Nanoseconds(rng.Intn(60))
			if err := c.Enqueue(Request{
				ID:      i,
				Arrival: at,
				Bank:    rng.Intn(cfg.Banks),
				Row:     rng.Intn(16),
				Write:   rng.Intn(3) == 0,
			}); err != nil {
				t.Fatal(err)
			}
		}
		done := c.Drain()
		if len(done) != 400 {
			t.Fatalf("seed %d: completions = %d, want 400", seed, len(done))
		}
		for _, d := range done {
			if d.Done <= 0 {
				t.Fatalf("seed %d: request %d has non-positive completion", seed, d.ID)
			}
		}
		if v := CheckTrace(c.Trace(), cfg.Timing, cfg.Density.TRFC()); len(v) != 0 {
			for i, viol := range v {
				if i >= 5 {
					break
				}
				t.Errorf("seed %d: %s", seed, viol)
			}
			t.Fatalf("seed %d: %d timing violations", seed, len(v))
		}
	}
}

func TestCheckTraceCatchesViolations(t *testing.T) {
	tm := DDR31600()
	// Two ACTs to the same bank violating tRC.
	cmds := []Command{
		{Kind: ACT, Bank: 0, Row: 1, At: 0},
		{Kind: ACT, Bank: 0, Row: 2, At: 5},
	}
	v := CheckTrace(cmds, tm, 350)
	if len(v) == 0 {
		t.Fatal("tRC violation not caught")
	}
	if v[0].String() == "" {
		t.Error("violation must render")
	}
	// RD before tRCD after ACT.
	cmds = []Command{
		{Kind: ACT, Bank: 0, Row: 1, At: 0},
		{Kind: RD, Bank: 0, Row: 1, At: 2},
	}
	if v := CheckTrace(cmds, tm, 350); len(v) == 0 {
		t.Error("tRCD violation not caught")
	}
	// ACT during tRFC after REF.
	cmds = []Command{
		{Kind: REF, Bank: -1, Row: -1, At: 0},
		{Kind: ACT, Bank: 0, Row: 1, At: 10},
	}
	if v := CheckTrace(cmds, tm, 350); len(v) == 0 {
		t.Error("tRFC violation not caught")
	}
}

// Cross-validation with the fast model: lowering the refresh rate must
// reduce average latency in the command-level model too, and by a
// comparable relative magnitude at high density.
func TestRefreshReductionTrendMatchesFastModel(t *testing.T) {
	run := func(period dram.Nanoseconds) float64 {
		cfg := DefaultConfig()
		cfg.Density = dram.Density32Gb
		cfg.RefreshPeriod = period
		c, _ := New(cfg)
		rng := rand.New(rand.NewSource(99))
		at := dram.Nanoseconds(0)
		arrivals := map[int]dram.Nanoseconds{}
		for i := 0; i < 2000; i++ {
			at += dram.Nanoseconds(rng.Intn(100))
			arrivals[i] = at
			c.Enqueue(Request{ID: i, Arrival: at, Bank: rng.Intn(8), Row: rng.Intn(8), Write: rng.Intn(4) == 0})
		}
		var total float64
		for _, d := range c.Drain() {
			total += float64(d.Done - arrivals[d.ID])
		}
		return total / 2000
	}
	aggressive := run(dram.TREFI(dram.RefreshWindowAggressive))
	relaxed := run(4 * dram.TREFI(dram.RefreshWindowAggressive))
	if relaxed >= aggressive {
		t.Errorf("relaxed refresh latency %v not below aggressive %v", relaxed, aggressive)
	}
	ratio := aggressive / relaxed
	if ratio < 1.2 {
		t.Errorf("latency ratio %v at 32Gb, expected substantial refresh penalty", ratio)
	}
}
