// Package ddr3 is a command-level DDR3 memory-controller model — the
// reproduction's analogue of the cycle-accurate simulator (Ramulator)
// the paper evaluates with. Where memctrl models bank occupancy with
// aggregate service times, this package issues the actual command
// stream (ACT, RD, WR, PRE, REF) under the full JEDEC timing-constraint
// set (tRCD, tRP, tRAS, tRC, tCCD, tRRD, tFAW, tWR, tWTR, tRTP, tRFC,
// tREFI) with an FR-FCFS scheduler, and exposes the emitted command
// trace so tests can verify every constraint independently.
//
// The fast memctrl model drives the large Fig. 15/16 sweeps; this model
// validates it (see sim tests comparing trends) and serves downstream
// users who need command-accurate behaviour.
package ddr3

import (
	"fmt"
	"sort"

	"memcon/internal/dram"
)

// CommandKind enumerates DDR3 commands.
type CommandKind int

// DDR3 command kinds.
const (
	ACT CommandKind = iota
	PRE
	RD
	WR
	REF
)

// String names the command.
func (k CommandKind) String() string {
	switch k {
	case ACT:
		return "ACT"
	case PRE:
		return "PRE"
	case RD:
		return "RD"
	case WR:
		return "WR"
	case REF:
		return "REF"
	default:
		return fmt.Sprintf("CommandKind(%d)", int(k))
	}
}

// Command is one issued command with its issue time.
type Command struct {
	Kind CommandKind
	Bank int
	Row  int
	At   dram.Nanoseconds
}

// Timing extends the base DRAM timing with the inter-command
// constraints a command-level model needs.
type Timing struct {
	dram.Timing
	// TRC is the ACT-to-ACT minimum to the same bank.
	TRC dram.Nanoseconds
	// TRRD is the ACT-to-ACT minimum across banks.
	TRRD dram.Nanoseconds
	// TFAW bounds four ACTs in a rolling window.
	TFAW dram.Nanoseconds
	// TWR is write recovery: last write data to PRE.
	TWR dram.Nanoseconds
	// TWTR is write-to-read turnaround.
	TWTR dram.Nanoseconds
	// TRTP is read-to-precharge.
	TRTP dram.Nanoseconds
	// TBurst is the data burst duration (BL8).
	TBurst dram.Nanoseconds
}

// DDR31600 returns the command-level timing set consistent with
// dram.DDR31600.
func DDR31600() Timing {
	base := dram.DDR31600()
	return Timing{
		Timing: base,
		TRC:    base.TRAS + base.TRP,
		TRRD:   6,
		TFAW:   30,
		TWR:    15,
		TWTR:   8,
		TRTP:   8,
		TBurst: base.TCCD,
	}
}

// Config parameterizes the controller.
type Config struct {
	Timing Timing
	Banks  int
	// Density sets tRFC for REF commands.
	Density dram.Density
	// RefreshPeriod is tREFI; 0 disables refresh.
	RefreshPeriod dram.Nanoseconds
}

// DefaultConfig returns an 8-bank DDR3-1600 controller with the
// aggressive 16 ms-window refresh.
func DefaultConfig() Config {
	return Config{
		Timing:        DDR31600(),
		Banks:         8,
		Density:       dram.Density8Gb,
		RefreshPeriod: dram.TREFI(dram.RefreshWindowAggressive),
	}
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("ddr3: bank count must be positive, got %d", c.Banks)
	}
	if c.RefreshPeriod < 0 {
		return fmt.Errorf("ddr3: refresh period cannot be negative, got %d", c.RefreshPeriod)
	}
	if c.RefreshPeriod > 0 && c.RefreshPeriod <= c.Density.TRFC() {
		return fmt.Errorf("ddr3: refresh period %d not above tRFC %d", c.RefreshPeriod, c.Density.TRFC())
	}
	return nil
}

// Request is one memory request.
type Request struct {
	ID      int
	Arrival dram.Nanoseconds
	Bank    int
	Row     int
	Write   bool
}

// Completion reports when a request's data finished on the bus.
type Completion struct {
	ID   int
	Done dram.Nanoseconds
}

// bankState is the per-bank FSM.
type bankState struct {
	openRow int // -1 when precharged
	// earliest permissible times for the next command of each kind.
	nextACT dram.Nanoseconds
	nextPRE dram.Nanoseconds
	nextRD  dram.Nanoseconds
	nextWR  dram.Nanoseconds
}

// Controller is the command-level controller. Requests are enqueued in
// arrival order; Drain runs the FR-FCFS schedule to completion.
type Controller struct {
	cfg   Config
	banks []bankState
	queue []Request

	// Rank-global constraint state.
	nextColumn  dram.Nanoseconds // earliest next RD/WR anywhere (tCCD / turnaround)
	lastWasWR   bool
	lastColumn  dram.Nanoseconds
	actTimes    []dram.Nanoseconds // recent ACT issue times for tFAW
	nextACTRank dram.Nanoseconds   // tRRD across banks
	nextRefresh dram.Nanoseconds
	rankFreeAt  dram.Nanoseconds // end of current REF, if any

	trace       []Command
	lastEmit    dram.Nanoseconds
	lastArrival dram.Nanoseconds
}

// New creates a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, banks: make([]bankState, cfg.Banks)}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	if cfg.RefreshPeriod > 0 {
		c.nextRefresh = cfg.RefreshPeriod
	}
	return c, nil
}

// Enqueue adds a request. Arrival times must be non-decreasing.
func (c *Controller) Enqueue(r Request) error {
	if r.Bank < 0 || r.Bank >= c.cfg.Banks {
		return fmt.Errorf("ddr3: bank %d outside [0,%d)", r.Bank, c.cfg.Banks)
	}
	if n := len(c.queue); n > 0 && r.Arrival < c.queue[n-1].Arrival {
		return fmt.Errorf("ddr3: request %d arrives at %d, before previous arrival %d", r.ID, r.Arrival, c.queue[n-1].Arrival)
	}
	c.queue = append(c.queue, r)
	return nil
}

// Trace returns the emitted command stream (valid after Drain).
func (c *Controller) Trace() []Command { return c.trace }

// emit records a command. Commands are emitted in non-decreasing time
// order; alignTime guarantees this for the scheduler.
func (c *Controller) emit(k CommandKind, bank, row int, at dram.Nanoseconds) {
	c.trace = append(c.trace, Command{Kind: k, Bank: bank, Row: row, At: at})
	if at > c.lastEmit {
		c.lastEmit = at
	}
}

// refreshAt issues a REF: all banks close, rank blocked for tRFC. A REF
// whose scheduled slot has passed while commands were in flight issues
// as soon as the command bus is clear (JEDEC allows postponing REF).
func (c *Controller) refreshAt(scheduled dram.Nanoseconds) {
	at := scheduled
	if c.lastEmit > at {
		at = c.lastEmit
	}
	c.emit(REF, -1, -1, at)
	end := at + c.cfg.Density.TRFC()
	c.rankFreeAt = end
	for i := range c.banks {
		c.banks[i].openRow = -1
		if c.banks[i].nextACT < end {
			c.banks[i].nextACT = end
		}
	}
	c.nextRefresh += c.cfg.RefreshPeriod
}

// alignTime settles a tentative command time against the refresh
// schedule: every REF whose slot lands at or before the command is
// issued first, and the command moves past the rank-blocked window.
func (c *Controller) alignTime(t dram.Nanoseconds) dram.Nanoseconds {
	for {
		if c.cfg.RefreshPeriod > 0 && c.nextRefresh <= t {
			c.refreshAt(c.nextRefresh)
			if c.rankFreeAt > t {
				t = c.rankFreeAt
			}
			continue
		}
		if c.rankFreeAt > t {
			t = c.rankFreeAt
			continue
		}
		return t
	}
}

// actConstraint returns the earliest time an ACT may issue to the bank
// at or after t, considering tRRD, tFAW and the bank's own tRC/tRP.
func (c *Controller) actConstraint(bank int, t dram.Nanoseconds) dram.Nanoseconds {
	at := t
	if c.banks[bank].nextACT > at {
		at = c.banks[bank].nextACT
	}
	if c.nextACTRank > at {
		at = c.nextACTRank
	}
	if len(c.actTimes) >= 4 {
		if faw := c.actTimes[len(c.actTimes)-4] + c.cfg.Timing.TFAW; faw > at {
			at = faw
		}
	}
	if c.rankFreeAt > at {
		at = c.rankFreeAt
	}
	return at
}

// serve issues the command sequence for one request starting no earlier
// than `from` and returns the time of its first command and the data
// completion time. Per-bank and rank-wide constraint state serializes
// what must serialize; requests to different banks pipeline.
func (c *Controller) serve(r Request, from dram.Nanoseconds) (start, completion dram.Nanoseconds) {
	tm := c.cfg.Timing
	b := &c.banks[r.Bank]
	t := from
	if r.Arrival > t {
		t = r.Arrival
	}
	t = c.alignTime(t)
	start = t

	// Refreshes are settled at transaction boundaries only: a REF whose
	// slot lands mid-transaction is postponed (refreshAt issues it after
	// the last emitted command), as JEDEC's pull-in/postpone rules allow.
	if b.openRow != r.Row {
		if b.openRow != -1 {
			// Precharge the open row.
			pt := t
			if b.nextPRE > pt {
				pt = b.nextPRE
			}
			c.emit(PRE, r.Bank, b.openRow, pt)
			b.openRow = -1
			if pt+tm.TRP > b.nextACT {
				b.nextACT = pt + tm.TRP
			}
			t = pt
		}
		at := c.actConstraint(r.Bank, t)
		c.emit(ACT, r.Bank, r.Row, at)
		b.openRow = r.Row
		b.nextRD = at + tm.TRCD
		b.nextWR = at + tm.TRCD
		b.nextPRE = at + tm.TRAS
		b.nextACT = at + c.cfg.Timing.TRC
		c.nextACTRank = at + tm.TRRD
		c.actTimes = append(c.actTimes, at)
		if len(c.actTimes) > 8 {
			c.actTimes = c.actTimes[len(c.actTimes)-8:]
		}
		t = at
	}

	// Column command.
	ct := t
	if r.Write {
		if b.nextWR > ct {
			ct = b.nextWR
		}
	} else if b.nextRD > ct {
		ct = b.nextRD
	}
	if c.nextColumn > ct {
		ct = c.nextColumn
	}
	// Write-to-read turnaround.
	if !r.Write && c.lastWasWR {
		if wtr := c.lastColumn + tm.CWL + tm.TBurst + tm.TWTR; wtr > ct {
			ct = wtr
		}
	}
	var done dram.Nanoseconds
	if r.Write {
		c.emit(WR, r.Bank, r.Row, ct)
		done = ct + tm.CWL + tm.TBurst
		// Write recovery gates precharge.
		if rec := done + tm.TWR; rec > b.nextPRE {
			b.nextPRE = rec
		}
	} else {
		c.emit(RD, r.Bank, r.Row, ct)
		done = ct + tm.CL + tm.TBurst
		if rtp := ct + tm.TRTP; rtp > b.nextPRE {
			b.nextPRE = rtp
		}
	}
	c.nextColumn = ct + tm.TCCD
	c.lastWasWR = r.Write
	c.lastColumn = ct
	return start, done
}

// ServeOne issues one request immediately (closed-loop use: the caller
// decides ordering, e.g. a core model that blocks on completions).
// Requests must be presented with non-decreasing arrival times.
func (c *Controller) ServeOne(r Request) (Completion, error) {
	if r.Bank < 0 || r.Bank >= c.cfg.Banks {
		return Completion{}, fmt.Errorf("ddr3: bank %d outside [0,%d)", r.Bank, c.cfg.Banks)
	}
	if r.Arrival < c.lastArrival {
		return Completion{}, fmt.Errorf("ddr3: request %d arrives at %d before previous arrival %d", r.ID, r.Arrival, c.lastArrival)
	}
	c.lastArrival = r.Arrival
	_, done := c.serve(r, r.Arrival)
	return Completion{ID: r.ID, Done: done}, nil
}

// Drain runs the FR-FCFS schedule over all enqueued requests and
// returns their completions in issue order. FR-FCFS: among pending
// requests (arrived by the current scheduling time), row hits first,
// then oldest; requests that have not arrived yet wait.
func (c *Controller) Drain() []Completion {
	var out []Completion
	pending := append([]Request(nil), c.queue...)
	c.queue = nil
	now := dram.Nanoseconds(0)
	for len(pending) > 0 {
		// Advance now to the earliest arrival if nothing is pending yet.
		if pending[0].Arrival > now {
			arrived := false
			for _, r := range pending {
				if r.Arrival <= now {
					arrived = true
					break
				}
			}
			if !arrived {
				min := pending[0].Arrival
				for _, r := range pending {
					if r.Arrival < min {
						min = r.Arrival
					}
				}
				now = min
			}
		}
		// Pick FR-FCFS among arrived requests.
		best := -1
		for i, r := range pending {
			if r.Arrival > now {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			bHit := c.banks[r.Bank].openRow == r.Row
			curHit := c.banks[pending[best].Bank].openRow == pending[best].Row
			if bHit && !curHit {
				best = i
			} else if bHit == curHit && r.Arrival < pending[best].Arrival {
				best = i
			}
		}
		if best == -1 {
			best = 0 // nothing arrived: serve the oldest, serve() waits
		}
		r := pending[best]
		pending = append(pending[:best], pending[best+1:]...)
		start, done := c.serve(r, now)
		out = append(out, Completion{ID: r.ID, Done: done})
		// The scheduler clock advances to the chosen request's first
		// command, NOT its completion: requests to other banks pipeline
		// underneath, with the per-bank and rank-wide constraint state
		// enforcing every serialization that the protocol requires.
		if start > now {
			now = start
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Done < out[j].Done })
	return out
}
