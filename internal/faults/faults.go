// Package faults models data-dependent DRAM failures — the failure class
// MEMCON detects and mitigates. It plays the role of the silicon: it owns
// the vendor's physical view of the array (scrambled addresses, remapped
// columns, true-/anti-cell orientation) and decides which cells flip
// given the stored content and how long a row has been idle.
//
// # Physical model
//
// A small fraction of cells are "weak": their retention is close enough
// to the refresh window that cell-to-cell interference matters. Each weak
// cell has
//
//   - a base retention time, drawn log-uniformly from a window above the
//     characterization idle time (cells below it would fail with ANY
//     content; the paper notes those are trivially detected and excludes
//     them),
//   - coupling weights to its four physical neighbours (bitline
//     neighbours couple more strongly than wordline neighbours, per the
//     bitline-coupling literature the paper cites),
//   - an orientation: true cells store logical 1 as charge, anti cells
//     store logical 0 as charge, alternating in row pairs.
//
// A charged weak cell leaks faster when neighbouring cells are
// discharged (the interference condition); its effective retention is
// base*(1 - MaxStress*stress) where stress in [0,1] aggregates the
// discharged neighbours by coupling weight. The cell fails when its row
// stays idle longer than the effective retention. This reproduces the
// paper's observations: failures are content-dependent (Fig. 3), only a
// subset of all-pattern failures occur with program content (Fig. 4),
// and failure counts grow with the refresh interval.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"memcon/internal/dram"
)

// neverFails is the per-row retention sentinel for rows without mapped
// weak cells: no finite idle time exceeds it.
const neverFails = dram.Nanoseconds(math.MaxInt64)

// Params configures the failure model.
type Params struct {
	// WeakCellFraction is the probability that a cell is weak
	// (coupling-sensitive). Typical silicon-inspired values are around
	// 1e-4..1e-3.
	WeakCellFraction float64
	// RetentionFloor is the minimum base retention of a weak cell. It
	// should sit at or above the characterization idle time so that no
	// cell fails content-independently.
	RetentionFloor dram.Nanoseconds
	// RetentionCeil is the maximum base retention of a weak cell.
	RetentionCeil dram.Nanoseconds
	// MaxStress is the maximum fractional retention degradation when all
	// neighbours aggress (0..1).
	MaxStress float64
	// BitlineWeight scales how much of the coupling budget goes to the
	// two same-row (bitline) neighbours versus the two adjacent-row
	// (wordline) neighbours. 0.7 means 70% bitline / 30% wordline.
	BitlineWeight float64
}

// DefaultParams returns parameters calibrated so that, with the default
// geometry and a 328 ms characterization idle (the paper's 4 s at 45 °C
// scaled to 85 °C), roughly 13-14% of rows contain at least one cell that
// fails under SOME data pattern, while typical program content triggers
// far fewer failures — the Fig. 4 regime.
func DefaultParams() Params {
	return Params{
		WeakCellFraction: 3.2e-4,
		RetentionFloor:   328 * dram.Millisecond,
		RetentionCeil:    8 * 328 * dram.Millisecond,
		MaxStress:        0.6,
		BitlineWeight:    0.7,
	}
}

// CharacterizationIdle is the idle time used by the paper's chip tests:
// 4 s at 45 °C, equivalent to 328 ms at 85 °C.
const CharacterizationIdle = 328 * dram.Millisecond

// ParamsForRefresh returns parameters scaled so that data-dependent
// failures matter exactly at the given LO-REF window: no cell can fail
// within the aggressive HI-REF window even under maximum stress (the
// HI-REF state is unconditionally safe), while content-dependent
// failures occur within one LO-REF window for aggressive content. This
// is the configuration the full-fidelity MEMCON system runs with.
func ParamsForRefresh(loRef dram.Nanoseconds) Params {
	p := DefaultParams()
	p.RetentionFloor = loRef
	p.RetentionCeil = 8 * loRef
	return p
}

// Validate reports an error for unusable parameters.
func (p Params) Validate() error {
	switch {
	case p.WeakCellFraction < 0 || p.WeakCellFraction > 1:
		return fmt.Errorf("faults: WeakCellFraction %v outside [0,1]", p.WeakCellFraction)
	case p.RetentionFloor <= 0:
		return fmt.Errorf("faults: RetentionFloor must be positive, got %d", p.RetentionFloor)
	case p.RetentionCeil < p.RetentionFloor:
		return fmt.Errorf("faults: RetentionCeil %d below floor %d", p.RetentionCeil, p.RetentionFloor)
	case p.MaxStress < 0 || p.MaxStress >= 1:
		return fmt.Errorf("faults: MaxStress %v outside [0,1)", p.MaxStress)
	case p.BitlineWeight < 0 || p.BitlineWeight > 1:
		return fmt.Errorf("faults: BitlineWeight %v outside [0,1]", p.BitlineWeight)
	}
	return nil
}

// weakCell holds the silicon attributes of one weak cell at a physical
// location. It is the sampling-time representation; query paths run on
// the precomputed flatCell kernel instead.
type weakCell struct {
	physRow, physCol int
	baseRetention    dram.Nanoseconds
	// w[0..3]: coupling weights for left, right, up, down neighbours;
	// they sum to 1.
	w [4]float64
}

// neighborRef is one precomputed neighbour of a weak cell: everything
// the stress evaluation needs to read the neighbour's current bit and
// decide whether it aggresses, resolved once at model build time.
type neighborRef struct {
	// w is the coupling weight the neighbour contributes when
	// discharged.
	w float64
	// rowIdx is the flat module row index (Geometry.RowIndex order) of
	// the system row holding the neighbour, or -1 when the neighbour's
	// physical column has no mapped system column (its stored bit is
	// constant 0).
	rowIdx int32
	// col is the neighbour's system column (valid when rowIdx >= 0).
	col int32
	// chargedBit is the logical bit value that stores charge at the
	// neighbour's physical row (1 for true cells, 0 for anti cells).
	chargedBit uint8
}

// flatCell is one weak cell with every address resolution and
// pattern-independent quantity precomputed, so the per-query work is a
// handful of packed-word bit reads and one float compare.
type flatCell struct {
	baseRetention dram.Nanoseconds
	// worstRetention is the effective retention under the worst
	// achievable stress (every existing neighbour aggressing) — the
	// pattern-independent bound RowCanFail tests against, and a cheap
	// per-cell reject for FailingCells (content stress never exceeds
	// the worst case, so idle <= worstRetention means "cannot fail").
	worstRetention   dram.Nanoseconds
	physRow, physCol int32
	// sysCol is the cell's mapped system column (cells on unmapped
	// physical columns store no data and are excluded from the kernel).
	sysCol int32
	// chargedBit is the logical bit value that charges this cell.
	chargedBit uint8
	// nbCount is the number of valid entries in nb.
	nbCount uint8
	// nb lists the in-array neighbours in the fixed left, right, up,
	// down evaluation order (out-of-array neighbours are dropped).
	nb [4]neighborRef
}

// Model is the failure model for one chip. It is deterministic in
// (geometry, seed, params). All per-bank state is built eagerly by
// NewModel, so a Model is immutable afterwards and safe for concurrent
// readers without any warm-up call.
type Model struct {
	geom   dram.Geometry
	scr    *dram.Scrambler
	seed   uint64
	params Params

	// banks holds the flat per-bank fault kernels.
	banks []*bankFaults
	// sysRowOfPhys is the inverse row permutation per bank.
	sysRowOfPhys [][]int
	// physRowOfSys is the forward row permutation per bank, cached so
	// queries skip the scrambler's cycle-walking permutation.
	physRowOfSys [][]int32
	sysColOfPhys []int
}

// bankFaults is one bank's weak-cell population in CSR form: the
// mapped weak cells of physical row pr are cells[offsets[pr]:offsets[pr+1]],
// sorted by physical column.
type bankFaults struct {
	offsets []int32
	cells   []flatCell
	// minWorstBySysRow[r] is the minimum worstRetention over the mapped
	// weak cells of the physical row SYSTEM row r maps to (neverFails
	// when that row has none). Indexing by system row makes RowCanFail a
	// single comparison and keeps full-array scans walking this table
	// sequentially instead of through the scrambled row permutation.
	minWorstBySysRow []dram.Nanoseconds
	// count is the sampled weak-cell total, including cells on
	// unmapped physical columns that never store data.
	count int
}

// NewModel builds a failure model over the given geometry. The scrambler
// represents the same chip (it must be constructed with the same
// geometry); seed determines the weak-cell population.
func NewModel(geom dram.Geometry, scr *dram.Scrambler, seed uint64, params Params) (*Model, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		geom:         geom,
		scr:          scr,
		seed:         seed,
		params:       params,
		banks:        make([]*bankFaults, geom.BanksPerChip),
		sysRowOfPhys: make([][]int, geom.BanksPerChip),
		physRowOfSys: make([][]int32, geom.BanksPerChip),
	}
	// Inverse column table (shared by all banks).
	m.sysColOfPhys = make([]int, geom.PhysCols())
	for i := range m.sysColOfPhys {
		m.sysColOfPhys[i] = -1
	}
	for c := 0; c < geom.ColsPerRow; c++ {
		m.sysColOfPhys[scr.PhysCol(c)] = c
	}
	// Build every bank eagerly: the flat kernel is cheap to construct
	// (the population is sparse), and an immutable model removes the
	// lazy-initialization race first concurrent queries used to hit.
	for b := 0; b < geom.BanksPerChip; b++ {
		m.buildRowMaps(b)
		m.banks[b] = m.buildBank(b)
	}
	return m, nil
}

// Preload is a no-op kept for API compatibility: NewModel now builds
// all per-bank state eagerly, so a Model is always safe for concurrent
// readers.
func (m *Model) Preload() {}

// buildRowMaps computes the forward and inverse row permutations of a
// bank.
func (m *Model) buildRowMaps(b int) {
	fwd := make([]int32, m.geom.RowsPerBank)
	inv := make([]int, m.geom.RowsPerBank)
	for r := 0; r < m.geom.RowsPerBank; r++ {
		pr := m.scr.PhysRow(b, r)
		fwd[r] = int32(pr)
		inv[pr] = r
	}
	m.physRowOfSys[b] = fwd
	m.sysRowOfPhys[b] = inv
}

// buildBank samples the weak-cell population of a bank and compiles it
// into the flat CSR kernel. The population is sampled without per-cell
// hashing: the expected number of weak cells is drawn and distinct
// positions are placed uniformly, all from a deterministic per-bank RNG
// (the exact sampling sequence of the original map-based model, so
// populations are identical seed-for-seed).
func (m *Model) buildBank(b int) *bankFaults {
	rng := rand.New(rand.NewSource(int64(m.seed ^ uint64(b)*0x9e3779b97f4a7c15)))
	cells := m.geom.RowsPerBank * m.geom.PhysCols()
	n := int(math.Round(float64(cells) * m.params.WeakCellFraction))
	raw := make([]weakCell, 0, n)
	seen := make(map[int]bool, n)
	for len(seen) < n {
		pos := rng.Intn(cells)
		if seen[pos] {
			continue
		}
		seen[pos] = true
		pr := pos / m.geom.PhysCols()
		pc := pos % m.geom.PhysCols()
		raw = append(raw, m.makeWeakCell(rng, pr, pc))
	}
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].physRow != raw[j].physRow {
			return raw[i].physRow < raw[j].physRow
		}
		return raw[i].physCol < raw[j].physCol
	})

	rows := m.geom.RowsPerBank
	bf := &bankFaults{
		offsets:          make([]int32, rows+1),
		minWorstBySysRow: make([]dram.Nanoseconds, rows),
		count:            n,
	}
	minByPhysRow := make([]dram.Nanoseconds, rows)
	for pr := range minByPhysRow {
		minByPhysRow[pr] = neverFails
	}
	bf.cells = make([]flatCell, 0, len(raw))
	next := 0 // next physical row whose offset is unset
	for _, wc := range raw {
		sysCol := m.sysColOfPhys[wc.physCol]
		if sysCol < 0 {
			continue // faulty/unused column: no data stored there
		}
		for next <= wc.physRow {
			bf.offsets[next] = int32(len(bf.cells))
			next++
		}
		fc := m.compileCell(b, wc, sysCol)
		bf.cells = append(bf.cells, fc)
		if fc.worstRetention < minByPhysRow[wc.physRow] {
			minByPhysRow[wc.physRow] = fc.worstRetention
		}
	}
	for ; next <= rows; next++ {
		bf.offsets[next] = int32(len(bf.cells))
	}
	for r := 0; r < rows; r++ {
		bf.minWorstBySysRow[r] = minByPhysRow[m.physRowOfSys[b][r]]
	}
	return bf
}

// compileCell resolves one mapped weak cell into its flat kernel form:
// charge orientation, per-neighbour (system row, system column)
// resolutions, and the pattern-independent worst-case retention.
func (m *Model) compileCell(b int, wc weakCell, sysCol int) flatCell {
	fc := flatCell{
		baseRetention: wc.baseRetention,
		physRow:       int32(wc.physRow),
		physCol:       int32(wc.physCol),
		sysCol:        int32(sysCol),
	}
	if m.trueCell(wc.physRow) {
		fc.chargedBit = 1
	}
	// Worst-case stress sums the weights of neighbours that physically
	// exist, accumulated in neighbour order so the float result matches
	// a direct per-query evaluation bit for bit.
	var worst float64
	for i, n := range neighborOffsets {
		pr := wc.physRow + n.dr
		pc := wc.physCol + n.dc
		if pr < 0 || pr >= m.geom.RowsPerBank || pc < 0 || pc >= m.geom.PhysCols() {
			continue // outside the array: the weight is wasted
		}
		worst += wc.w[i]
		ref := neighborRef{w: wc.w[i], rowIdx: -1}
		if m.trueCell(pr) {
			ref.chargedBit = 1
		}
		if nsc := m.sysColOfPhys[pc]; nsc >= 0 {
			ref.rowIdx = int32(m.geom.RowIndex(dram.RowAddress{Bank: b, Row: m.sysRowOfPhys[b][pr]}))
			ref.col = int32(nsc)
		}
		fc.nb[fc.nbCount] = ref
		fc.nbCount++
	}
	fc.worstRetention = dram.Nanoseconds(float64(wc.baseRetention) * (1 - m.params.MaxStress*worst))
	return fc
}

// neighborOffsets is the fixed left, right, up, down neighbour order of
// the stress evaluation.
var neighborOffsets = [4]struct{ dr, dc int }{{0, -1}, {0, 1}, {-1, 0}, {1, 0}}

func (m *Model) makeWeakCell(rng *rand.Rand, pr, pc int) weakCell {
	// Log-uniform base retention in [floor, ceil].
	lf := math.Log(float64(m.params.RetentionFloor))
	lc := math.Log(float64(m.params.RetentionCeil))
	base := dram.Nanoseconds(math.Exp(lf + rng.Float64()*(lc-lf)))

	// Coupling weights: split the budget between bitline (left/right)
	// and wordline (up/down) neighbours, then randomize within each
	// pair.
	bl := m.params.BitlineWeight
	l := rng.Float64()
	u := rng.Float64()
	w := [4]float64{
		bl * l,
		bl * (1 - l),
		(1 - bl) * u,
		(1 - bl) * (1 - u),
	}
	return weakCell{physRow: pr, physCol: pc, baseRetention: base, w: w}
}

// trueCell reports whether the physical cell stores logical 1 as charge.
// Orientation alternates in pairs of physical rows, offset per chip.
func (m *Model) trueCell(physRow int) bool {
	off := int(m.seed>>7) & 1
	return ((physRow+off)/2)%2 == 0
}

// charged reports whether a cell holding logical bit v at the given
// physical row is in the charged state.
func (m *Model) charged(physRow, bit int) bool {
	if m.trueCell(physRow) {
		return bit == 1
	}
	return bit == 0
}

// rowCells returns the flat kernel cells of one physical row of a bank.
func (m *Model) rowCells(bank, physRow int) []flatCell {
	bf := m.banks[bank]
	return bf.cells[bf.offsets[physRow]:bf.offsets[physRow+1]]
}

// contentStress computes the interference stress on a flat cell from
// its precomputed neighbours under the module's current content.
// Neighbours on unmapped physical columns store a constant 0; neighbours
// outside the array were dropped at compile time (their weight is
// wasted, matching edge cells being less exposed).
func (m *Model) contentStress(mod *dram.Module, fc *flatCell) float64 {
	var s float64
	for k := 0; k < int(fc.nbCount); k++ {
		nb := &fc.nb[k]
		bit := uint8(0)
		if nb.rowIdx >= 0 {
			bit = uint8(mod.RowAt(int(nb.rowIdx)).Bit(int(nb.col)))
		}
		if bit != nb.chargedBit {
			s += nb.w
		}
	}
	return s
}

// FailingCells returns the system-column indices of cells in the
// addressed (system-space) row that fail after the row has been idle for
// the given time, under the module's current content. The module content
// is not modified; callers decide whether to commit the flips.
func (m *Model) FailingCells(mod *dram.Module, a dram.RowAddress, idle dram.Nanoseconds) []int {
	return m.AppendFailingCells(nil, mod, a, idle)
}

// AppendFailingCells is FailingCells appending into dst, so steady-state
// callers (the online-test and audit hot paths) can reuse one buffer
// instead of allocating per query.
func (m *Model) AppendFailingCells(dst []int, mod *dram.Module, a dram.RowAddress, idle dram.Nanoseconds) []int {
	bf := m.banks[a.Bank]
	if idle <= bf.minWorstBySysRow[a.Row] {
		return dst // no cell of this row fails even under worst-case stress
	}
	pr := m.physRowOfSys[a.Bank][a.Row]
	row := mod.RowRef(a)
	for i := bf.offsets[pr]; i < bf.offsets[pr+1]; i++ {
		fc := &bf.cells[i]
		if idle <= fc.worstRetention {
			continue // cannot fail at this idle time under any content
		}
		if uint8(row.Bit(int(fc.sysCol))) != fc.chargedBit {
			continue // discharged cells cannot leak
		}
		s := m.contentStress(mod, fc)
		if idle > dram.Nanoseconds(float64(fc.baseRetention)*(1-m.params.MaxStress*s)) {
			dst = append(dst, int(fc.sysCol))
		}
	}
	return dst
}

// RowCanFail reports whether the addressed row contains at least one weak
// cell that could fail under SOME data pattern at the given idle time —
// the "ALL FAIL" denominator of Fig. 4. A cell can fail under some
// pattern iff idle > base*(1-MaxStress*maxAchievableStress), where the
// worst pattern charges the victim and discharges every neighbour; that
// bound is precomputed per cell and cached as a system-row-indexed
// minimum, so the query is one comparison with no permutation lookup.
func (m *Model) RowCanFail(a dram.RowAddress, idle dram.Nanoseconds) bool {
	return idle > m.banks[a.Bank].minWorstBySysRow[a.Row]
}

// NeighborSysRows returns the system addresses of the rows that are
// PHYSICALLY adjacent to the given system row — the rows whose cells'
// stress changes when this row's content changes (wordline coupling).
// Only the silicon knows this mapping; the full-fidelity System uses it
// to model a DRAM-internal adjacency hint (in the spirit of target-row
// refresh), never the DRAM-transparent engine itself.
func (m *Model) NeighborSysRows(a dram.RowAddress) []dram.RowAddress {
	inv := m.sysRowOfPhys[a.Bank]
	pr := int(m.physRowOfSys[a.Bank][a.Row])
	var out []dram.RowAddress
	if pr-1 >= 0 {
		out = append(out, dram.RowAddress{Bank: a.Bank, Row: inv[pr-1]})
	}
	if pr+1 < m.geom.RowsPerBank {
		out = append(out, dram.RowAddress{Bank: a.Bank, Row: inv[pr+1]})
	}
	return out
}

// AffectedNeighborRows returns the system rows (always in the same
// bank) holding a weak cell whose interference stress depends on any of
// the given cells of row a — the rows whose FailingCells verdict can
// change once those cells flip. A read-back pass that evaluated rows
// against pre-flip content re-evaluates exactly these rows after
// committing flips, which keeps batched evaluation bit-identical to a
// strictly sequential commit-as-you-go scan.
func (m *Model) AffectedNeighborRows(a dram.RowAddress, flipped []int) []dram.RowAddress {
	bf := m.banks[a.Bank]
	inv := m.sysRowOfPhys[a.Bank]
	pr := int(m.physRowOfSys[a.Bank][a.Row])
	var out []dram.RowAddress
	appendRow := func(sysRow int) {
		addr := dram.RowAddress{Bank: a.Bank, Row: sysRow}
		for _, seen := range out {
			if seen == addr {
				return
			}
		}
		out = append(out, addr)
	}
	// A weak cell at physical (qr, qc) reads the flipped cell at
	// (pr, pc) as a neighbour iff qr==pr, |qc-pc|==1 (bitline) or
	// qc==pc, |qr-pr|==1 (wordline).
	hasWeakAt := func(qr, qc int) bool {
		if qr < 0 || qr >= m.geom.RowsPerBank || qc < 0 || qc >= m.geom.PhysCols() {
			return false
		}
		for i := bf.offsets[qr]; i < bf.offsets[qr+1]; i++ {
			switch c := int(bf.cells[i].physCol); {
			case c == qc:
				return true
			case c > qc:
				return false // cells are sorted by physical column
			}
		}
		return false
	}
	for _, c := range flipped {
		pc := m.scr.PhysCol(c)
		if hasWeakAt(pr, pc-1) || hasWeakAt(pr, pc+1) {
			appendRow(inv[pr])
		}
		if hasWeakAt(pr-1, pc) {
			appendRow(inv[pr-1])
		}
		if hasWeakAt(pr+1, pc) {
			appendRow(inv[pr+1])
		}
	}
	return out
}

// WeakCellCount returns the number of weak cells in the bank.
func (m *Model) WeakCellCount(bank int) int { return m.banks[bank].count }

// Geometry returns the model's geometry.
func (m *Model) Geometry() dram.Geometry { return m.geom }
