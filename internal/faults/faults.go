// Package faults models data-dependent DRAM failures — the failure class
// MEMCON detects and mitigates. It plays the role of the silicon: it owns
// the vendor's physical view of the array (scrambled addresses, remapped
// columns, true-/anti-cell orientation) and decides which cells flip
// given the stored content and how long a row has been idle.
//
// # Physical model
//
// A small fraction of cells are "weak": their retention is close enough
// to the refresh window that cell-to-cell interference matters. Each weak
// cell has
//
//   - a base retention time, drawn log-uniformly from a window above the
//     characterization idle time (cells below it would fail with ANY
//     content; the paper notes those are trivially detected and excludes
//     them),
//   - coupling weights to its four physical neighbours (bitline
//     neighbours couple more strongly than wordline neighbours, per the
//     bitline-coupling literature the paper cites),
//   - an orientation: true cells store logical 1 as charge, anti cells
//     store logical 0 as charge, alternating in row pairs.
//
// A charged weak cell leaks faster when neighbouring cells are
// discharged (the interference condition); its effective retention is
// base*(1 - MaxStress*stress) where stress in [0,1] aggregates the
// discharged neighbours by coupling weight. The cell fails when its row
// stays idle longer than the effective retention. This reproduces the
// paper's observations: failures are content-dependent (Fig. 3), only a
// subset of all-pattern failures occur with program content (Fig. 4),
// and failure counts grow with the refresh interval.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"memcon/internal/dram"
)

// neverFails is the per-row retention sentinel for rows without mapped
// weak cells: no finite idle time exceeds it.
const neverFails = dram.Nanoseconds(math.MaxInt64)

// Params configures the failure model.
type Params struct {
	// WeakCellFraction is the probability that a cell is weak
	// (coupling-sensitive). Typical silicon-inspired values are around
	// 1e-4..1e-3.
	WeakCellFraction float64
	// RetentionFloor is the minimum base retention of a weak cell. It
	// should sit at or above the characterization idle time so that no
	// cell fails content-independently.
	RetentionFloor dram.Nanoseconds
	// RetentionCeil is the maximum base retention of a weak cell.
	RetentionCeil dram.Nanoseconds
	// MaxStress is the maximum fractional retention degradation when all
	// neighbours aggress (0..1).
	MaxStress float64
	// BitlineWeight scales how much of the coupling budget goes to the
	// two same-row (bitline) neighbours versus the two adjacent-row
	// (wordline) neighbours. 0.7 means 70% bitline / 30% wordline.
	BitlineWeight float64
}

// DefaultParams returns parameters calibrated so that, with the default
// geometry and a 328 ms characterization idle (the paper's 4 s at 45 °C
// scaled to 85 °C), roughly 13-14% of rows contain at least one cell that
// fails under SOME data pattern, while typical program content triggers
// far fewer failures — the Fig. 4 regime.
func DefaultParams() Params {
	return Params{
		WeakCellFraction: 3.2e-4,
		RetentionFloor:   328 * dram.Millisecond,
		RetentionCeil:    8 * 328 * dram.Millisecond,
		MaxStress:        0.6,
		BitlineWeight:    0.7,
	}
}

// CharacterizationIdle is the idle time used by the paper's chip tests:
// 4 s at 45 °C, equivalent to 328 ms at 85 °C.
const CharacterizationIdle = 328 * dram.Millisecond

// ParamsForRefresh returns parameters scaled so that data-dependent
// failures matter exactly at the given LO-REF window: content-dependent
// failures occur within one LO-REF window for aggressive content, while
// the HI-REF state stays unconditionally safe PROVIDED the HI-REF
// window is shorter than loRef*(1-MaxStress). The guarantee is a
// property of the window ratio, not of the floor alone: with the floor
// at loRef and MaxStress 0.6, a fully-stressed floor cell retains for
// 0.4*loRef, so e.g. the shipped 64 ms LO-REF / 16 ms HI-REF pair
// keeps a 25.6 ms worst case above HI-REF with margin, but a HI-REF at
// or above 0.4*loRef would NOT be safe. TestParamsForRefreshHiRefSafe
// pins both sides of that boundary, and a core-side test pins the
// ratio for the default windows the full-fidelity system runs with.
func ParamsForRefresh(loRef dram.Nanoseconds) Params {
	p := DefaultParams()
	p.RetentionFloor = loRef
	p.RetentionCeil = 8 * loRef
	return p
}

// Validate reports an error for unusable parameters.
func (p Params) Validate() error {
	switch {
	case p.WeakCellFraction < 0 || p.WeakCellFraction > 1:
		return fmt.Errorf("faults: WeakCellFraction %v outside [0,1]", p.WeakCellFraction)
	case p.RetentionFloor <= 0:
		return fmt.Errorf("faults: RetentionFloor must be positive, got %d", p.RetentionFloor)
	case p.RetentionCeil < p.RetentionFloor:
		return fmt.Errorf("faults: RetentionCeil %d below floor %d", p.RetentionCeil, p.RetentionFloor)
	case p.MaxStress < 0 || p.MaxStress >= 1:
		return fmt.Errorf("faults: MaxStress %v outside [0,1)", p.MaxStress)
	case p.BitlineWeight < 0 || p.BitlineWeight > 1:
		return fmt.Errorf("faults: BitlineWeight %v outside [0,1]", p.BitlineWeight)
	}
	return nil
}

// weakCell holds the silicon attributes of one weak cell at a physical
// location. It is the sampling-time representation; query paths run on
// the precomputed flatCell kernel instead.
type weakCell struct {
	physRow, physCol int
	baseRetention    dram.Nanoseconds
	// w[0..3]: coupling weights for left, right, up, down neighbours;
	// they sum to 1.
	w [4]float64
}

// neighborRef is one precomputed neighbour of a weak cell: everything
// the stress evaluation needs to read the neighbour's current bit and
// decide whether it aggresses, resolved once at model build time.
type neighborRef struct {
	// w is the coupling weight the neighbour contributes when
	// discharged.
	w float64
	// rowIdx is the flat module row index (Geometry.RowIndex order) of
	// the system row holding the neighbour, or -1 when the neighbour's
	// physical column has no mapped system column (its stored bit is
	// constant 0).
	rowIdx int32
	// col is the neighbour's system column (valid when rowIdx >= 0).
	col int32
	// chargedBit is the logical bit value that stores charge at the
	// neighbour's physical row (1 for true cells, 0 for anti cells).
	chargedBit uint8
}

// flatCell is one weak cell with every address resolution and
// pattern-independent quantity precomputed, so the per-query work is a
// handful of packed-word bit reads and one float compare.
type flatCell struct {
	baseRetention dram.Nanoseconds
	// worstRetention is the effective retention under the worst
	// achievable stress (every existing neighbour aggressing) — the
	// pattern-independent bound RowCanFail tests against, and a cheap
	// per-cell reject for FailingCells (content stress never exceeds
	// the worst case, so idle <= worstRetention means "cannot fail").
	worstRetention   dram.Nanoseconds
	physRow, physCol int32
	// sysCol is the cell's mapped system column (cells on unmapped
	// physical columns store no data and are excluded from the kernel).
	sysCol int32
	// chargedBit is the logical bit value that charges this cell.
	chargedBit uint8
	// nbCount is the number of valid entries in nb.
	nbCount uint8
	// nb lists the in-array neighbours in the fixed left, right, up,
	// down evaluation order (out-of-array neighbours are dropped).
	nb [4]neighborRef
}

// Model is the failure model for one chip. It is deterministic in
// (geometry, seed, params). All per-bank state is built eagerly by
// NewModel, so a Model is immutable afterwards and safe for concurrent
// readers without any warm-up call.
type Model struct {
	geom   dram.Geometry
	scr    *dram.Scrambler
	seed   uint64
	params Params

	// banks holds the flat per-bank fault kernels.
	banks []*bankFaults
	// sysRowOfPhys is the inverse row permutation per bank.
	sysRowOfPhys [][]int
	// physRowOfSys is the forward row permutation per bank, cached so
	// queries skip the scrambler's cycle-walking permutation.
	physRowOfSys [][]int32
	sysColOfPhys []int
}

// bankFaults is one bank's weak-cell population in CSR form: the
// mapped weak cells of physical row pr are cells[offsets[pr]:offsets[pr+1]],
// sorted by physical column.
type bankFaults struct {
	offsets []int32
	cells   []flatCell
	// minWorstBySysRow[r] is the minimum worstRetention over the mapped
	// weak cells of the physical row SYSTEM row r maps to (neverFails
	// when that row has none). Indexing by system row makes RowCanFail a
	// single comparison and keeps full-array scans walking this table
	// sequentially instead of through the scrambled row permutation.
	minWorstBySysRow []dram.Nanoseconds
	// weakRows lists, in ascending order, the system rows whose mapped
	// physical row holds at least one weak cell; weakFloors is parallel
	// to it, carrying that row's minWorstBySysRow value. Full-array
	// scans iterate this dense worklist instead of testing every row.
	weakRows   []int32
	weakFloors []dram.Nanoseconds
	// count is the sampled weak-cell total, including cells on
	// unmapped physical columns that never store data.
	count int

	// Bit-parallel kernel: the same mapped cells regrouped by the
	// 64-bit word of their SYSTEM column, so one AND/XOR pass over a
	// row word classifies 64 candidate cells at once. The groups of
	// SYSTEM row r are groups[groupOff[r]:groupOff[r+1]], and a
	// group's cells are packed[cellBase:cellBase+popcount(mask)] in
	// ascending system-column (= bit) order. Indexing by system row —
	// the order full-array scans visit rows — lays groups and packed
	// cells out as one forward stream, so the scan's index loads ride
	// the hardware prefetcher instead of chasing the row permutation.
	groupOff []int32
	groups   []wordGroup
	packed   []packedCell
	// neigh caches, per SYSTEM row, the kernel's view of the row
	// permutation: the system rows of both physical neighbours and the
	// true-cell orientations of the row and its neighbours. Read in
	// scan order it is one sequential stream, replacing three random
	// permutation lookups per evaluated row.
	neigh []rowNeigh
}

// rowNeigh is one bank row's entry in bankFaults.neigh. upSys/dnSys
// are -1 when the physical row sits at the array edge.
type rowNeigh struct {
	upSys, dnSys int32
	flags        uint32
}

const (
	neighSelfTrue = 1 << iota // the row itself stores true cells
	neighUpTrue               // physical row above stores true cells
	neighDnTrue               // physical row below stores true cells
)

// wordGroup is the word-level index of the packed kernel: the weak
// cells of one physical row that share one 64-bit word of the system
// row buffer.
type wordGroup struct {
	// mask has a bit set at each weak cell's system-column bit.
	mask uint64
	// word is the row-word index (system column / 64).
	word int32
	// cellBase indexes the group's first cell in bankFaults.packed.
	cellBase int32
	// minWorst is the minimum worstRetention over the group's cells:
	// one compare rejects the whole word at low idle times.
	minWorst dram.Nanoseconds
}

// packedCell is the word-kernel view of one weak cell. The charge test
// is hoisted to the group mask; what remains per surviving candidate is
// the stress sum, with both bitline neighbours resolved to system
// columns of the victim's OWN row and both wordline neighbours read
// straight from the adjacent rows' words (they share the victim's
// column because the column swizzle is row-independent).
type packedCell struct {
	baseRetention  dram.Nanoseconds
	worstRetention dram.Nanoseconds
	// wL/wR/wU/wD are the left/right/up/down coupling weights (0 when
	// the neighbour is outside the array).
	wL, wR, wU, wD float64
	// lConstW/rConstW are the constant stress contributions of bitline
	// neighbours on unmapped physical columns (which store 0 forever:
	// they aggress iff this row's cells charge as 1).
	lConstW, rConstW float64
	// lCol/rCol are the bitline neighbours' system columns, or -1 when
	// unmapped or outside the array.
	lCol, rCol int32
	// sysCol is the cell's own system column.
	sysCol int32
	// rank is the cell's index within its row's CSR span (physical
	// column order), used to restore the kernel's output order.
	rank int32
}

// NewModel builds a failure model over the given geometry. The scrambler
// represents the same chip (it must be constructed with the same
// geometry); seed determines the weak-cell population.
func NewModel(geom dram.Geometry, scr *dram.Scrambler, seed uint64, params Params) (*Model, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		geom:         geom,
		scr:          scr,
		seed:         seed,
		params:       params,
		banks:        make([]*bankFaults, geom.BanksPerChip),
		sysRowOfPhys: make([][]int, geom.BanksPerChip),
		physRowOfSys: make([][]int32, geom.BanksPerChip),
	}
	// Inverse column table (shared by all banks).
	m.sysColOfPhys = make([]int, geom.PhysCols())
	for i := range m.sysColOfPhys {
		m.sysColOfPhys[i] = -1
	}
	for c := 0; c < geom.ColsPerRow; c++ {
		m.sysColOfPhys[scr.PhysCol(c)] = c
	}
	// Build every bank eagerly: the flat kernel is cheap to construct
	// (the population is sparse), and an immutable model removes the
	// lazy-initialization race first concurrent queries used to hit.
	for b := 0; b < geom.BanksPerChip; b++ {
		m.buildRowMaps(b)
		m.banks[b] = m.buildBank(b)
	}
	return m, nil
}

// buildRowMaps computes the forward and inverse row permutations of a
// bank.
func (m *Model) buildRowMaps(b int) {
	fwd := make([]int32, m.geom.RowsPerBank)
	inv := make([]int, m.geom.RowsPerBank)
	for r := 0; r < m.geom.RowsPerBank; r++ {
		pr := m.scr.PhysRow(b, r)
		fwd[r] = int32(pr)
		inv[pr] = r
	}
	m.physRowOfSys[b] = fwd
	m.sysRowOfPhys[b] = inv
}

// buildBank samples the weak-cell population of a bank and compiles it
// into the flat CSR kernel. The population is sampled without per-cell
// hashing: the expected number of weak cells is drawn and distinct
// positions are placed uniformly, all from a deterministic per-bank RNG
// (the exact sampling sequence of the original map-based model, so
// populations are identical seed-for-seed).
func (m *Model) buildBank(b int) *bankFaults {
	rng := rand.New(rand.NewSource(int64(m.seed ^ uint64(b)*0x9e3779b97f4a7c15)))
	cells := m.geom.RowsPerBank * m.geom.PhysCols()
	n := int(math.Round(float64(cells) * m.params.WeakCellFraction))
	raw := make([]weakCell, 0, n)
	seen := make(map[int]bool, n)
	for len(seen) < n {
		pos := rng.Intn(cells)
		if seen[pos] {
			continue
		}
		seen[pos] = true
		pr := pos / m.geom.PhysCols()
		pc := pos % m.geom.PhysCols()
		raw = append(raw, m.makeWeakCell(rng, pr, pc))
	}
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].physRow != raw[j].physRow {
			return raw[i].physRow < raw[j].physRow
		}
		return raw[i].physCol < raw[j].physCol
	})

	rows := m.geom.RowsPerBank
	bf := &bankFaults{
		offsets:          make([]int32, rows+1),
		minWorstBySysRow: make([]dram.Nanoseconds, rows),
		count:            n,
	}
	minByPhysRow := make([]dram.Nanoseconds, rows)
	for pr := range minByPhysRow {
		minByPhysRow[pr] = neverFails
	}
	bf.cells = make([]flatCell, 0, len(raw))
	seeds := make([]weakCell, 0, len(raw)) // mapped cells, parallel to bf.cells
	next := 0                              // next physical row whose offset is unset
	for _, wc := range raw {
		sysCol := m.sysColOfPhys[wc.physCol]
		if sysCol < 0 {
			continue // faulty/unused column: no data stored there
		}
		for next <= wc.physRow {
			bf.offsets[next] = int32(len(bf.cells))
			next++
		}
		fc := m.compileCell(b, wc, sysCol)
		bf.cells = append(bf.cells, fc)
		seeds = append(seeds, wc)
		if fc.worstRetention < minByPhysRow[wc.physRow] {
			minByPhysRow[wc.physRow] = fc.worstRetention
		}
	}
	for ; next <= rows; next++ {
		bf.offsets[next] = int32(len(bf.cells))
	}
	for r := 0; r < rows; r++ {
		worst := minByPhysRow[m.physRowOfSys[b][r]]
		bf.minWorstBySysRow[r] = worst
		if worst != neverFails {
			bf.weakRows = append(bf.weakRows, int32(r))
			bf.weakFloors = append(bf.weakFloors, worst)
		}
	}
	m.buildPacked(b, bf, seeds)
	return bf
}

// buildPacked regroups a bank's mapped weak cells (seeds is parallel to
// bf.cells) into the word-indexed bit-parallel kernel: per row, cells
// are re-sorted by system column and split into one wordGroup per
// 64-bit row word. Rows are emitted in ascending SYSTEM row order (see
// the groupOff field comment) by walking the row permutation here,
// once, at build time.
func (m *Model) buildPacked(b int, bf *bankFaults, seeds []weakCell) {
	rows := m.geom.RowsPerBank
	bf.groupOff = make([]int32, rows+1)
	bf.packed = make([]packedCell, 0, len(seeds))
	bf.neigh = make([]rowNeigh, rows)
	var order []int32 // CSR indices of one row, sorted by system column
	for r := 0; r < rows; r++ {
		pr := int(m.physRowOfSys[b][r])
		ni := rowNeigh{upSys: -1, dnSys: -1}
		if m.trueCell(pr) {
			ni.flags |= neighSelfTrue
		}
		if pr > 0 {
			ni.upSys = int32(m.sysRowOfPhys[b][pr-1])
			if m.trueCell(pr - 1) {
				ni.flags |= neighUpTrue
			}
		}
		if pr+1 < rows {
			ni.dnSys = int32(m.sysRowOfPhys[b][pr+1])
			if m.trueCell(pr + 1) {
				ni.flags |= neighDnTrue
			}
		}
		bf.neigh[r] = ni
		lo, hi := bf.offsets[pr], bf.offsets[pr+1]
		order = order[:0]
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
		sort.Slice(order, func(x, y int) bool {
			return bf.cells[order[x]].sysCol < bf.cells[order[y]].sysCol
		})
		lastWord := int32(-1)
		for _, i := range order {
			sysCol := bf.cells[i].sysCol
			if word := sysCol >> 6; word != lastWord {
				bf.groups = append(bf.groups, wordGroup{
					word:     word,
					cellBase: int32(len(bf.packed)),
					minWorst: neverFails,
				})
				lastWord = word
			}
			g := &bf.groups[len(bf.groups)-1]
			g.mask |= 1 << uint(sysCol&63)
			if w := bf.cells[i].worstRetention; w < g.minWorst {
				g.minWorst = w
			}
			bf.packed = append(bf.packed, m.compilePacked(seeds[i], sysCol, i-lo, bf.cells[i].worstRetention))
		}
		bf.groupOff[r+1] = int32(len(bf.groups))
	}
}

// compileCell resolves one mapped weak cell into its flat kernel form:
// charge orientation, per-neighbour (system row, system column)
// resolutions, and the pattern-independent worst-case retention.
func (m *Model) compileCell(b int, wc weakCell, sysCol int) flatCell {
	fc := flatCell{
		baseRetention: wc.baseRetention,
		physRow:       int32(wc.physRow),
		physCol:       int32(wc.physCol),
		sysCol:        int32(sysCol),
	}
	if m.trueCell(wc.physRow) {
		fc.chargedBit = 1
	}
	// Worst-case stress sums the weights of neighbours that physically
	// exist, accumulated in neighbour order so the float result matches
	// a direct per-query evaluation bit for bit.
	var worst float64
	for i, n := range neighborOffsets {
		pr := wc.physRow + n.dr
		pc := wc.physCol + n.dc
		if pr < 0 || pr >= m.geom.RowsPerBank || pc < 0 || pc >= m.geom.PhysCols() {
			continue // outside the array: the weight is wasted
		}
		worst += wc.w[i]
		ref := neighborRef{w: wc.w[i], rowIdx: -1}
		if m.trueCell(pr) {
			ref.chargedBit = 1
		}
		if nsc := m.sysColOfPhys[pc]; nsc >= 0 {
			ref.rowIdx = int32(m.geom.RowIndex(dram.RowAddress{Bank: b, Row: m.sysRowOfPhys[b][pr]}))
			ref.col = int32(nsc)
		}
		fc.nb[fc.nbCount] = ref
		fc.nbCount++
	}
	fc.worstRetention = dram.Nanoseconds(float64(wc.baseRetention) * (1 - m.params.MaxStress*worst))
	return fc
}

// compilePacked resolves one mapped weak cell into its word-kernel
// form. Bitline (left/right) neighbours live in the victim's own
// system row: mapped ones get their system column, unmapped ones fold
// to a constant stress term (they store 0 forever and aggress exactly
// when the victim's row charges as 1). Wordline (up/down) neighbours
// keep only their weights — they are read word-wide from the adjacent
// rows at query time.
func (m *Model) compilePacked(wc weakCell, sysCol, rank int32, worst dram.Nanoseconds) packedCell {
	p := packedCell{
		baseRetention:  wc.baseRetention,
		worstRetention: worst,
		sysCol:         sysCol,
		rank:           rank,
		lCol:           -1,
		rCol:           -1,
	}
	charged1 := m.trueCell(wc.physRow) // bitline neighbours share the victim's orientation
	if wc.physCol-1 >= 0 {
		p.wL = wc.w[0]
		if nsc := m.sysColOfPhys[wc.physCol-1]; nsc >= 0 {
			p.lCol = int32(nsc)
		} else if charged1 {
			p.lConstW = wc.w[0]
		}
	}
	if wc.physCol+1 < m.geom.PhysCols() {
		p.wR = wc.w[1]
		if nsc := m.sysColOfPhys[wc.physCol+1]; nsc >= 0 {
			p.rCol = int32(nsc)
		} else if charged1 {
			p.rConstW = wc.w[1]
		}
	}
	if wc.physRow-1 >= 0 {
		p.wU = wc.w[2]
	}
	if wc.physRow+1 < m.geom.RowsPerBank {
		p.wD = wc.w[3]
	}
	return p
}

// neighborOffsets is the fixed left, right, up, down neighbour order of
// the stress evaluation.
var neighborOffsets = [4]struct{ dr, dc int }{{0, -1}, {0, 1}, {-1, 0}, {1, 0}}

func (m *Model) makeWeakCell(rng *rand.Rand, pr, pc int) weakCell {
	// Log-uniform base retention in [floor, ceil].
	lf := math.Log(float64(m.params.RetentionFloor))
	lc := math.Log(float64(m.params.RetentionCeil))
	base := dram.Nanoseconds(math.Exp(lf + rng.Float64()*(lc-lf)))

	// Coupling weights: split the budget between bitline (left/right)
	// and wordline (up/down) neighbours, then randomize within each
	// pair.
	bl := m.params.BitlineWeight
	l := rng.Float64()
	u := rng.Float64()
	w := [4]float64{
		bl * l,
		bl * (1 - l),
		(1 - bl) * u,
		(1 - bl) * (1 - u),
	}
	return weakCell{physRow: pr, physCol: pc, baseRetention: base, w: w}
}

// trueCell reports whether the physical cell stores logical 1 as charge.
// Orientation alternates in pairs of physical rows, offset per chip.
func (m *Model) trueCell(physRow int) bool {
	off := int(m.seed>>7) & 1
	return ((physRow+off)/2)%2 == 0
}

// charged reports whether a cell holding logical bit v at the given
// physical row is in the charged state.
func (m *Model) charged(physRow, bit int) bool {
	if m.trueCell(physRow) {
		return bit == 1
	}
	return bit == 0
}

// rowCells returns the flat kernel cells of one physical row of a bank.
func (m *Model) rowCells(bank, physRow int) []flatCell {
	bf := m.banks[bank]
	return bf.cells[bf.offsets[physRow]:bf.offsets[physRow+1]]
}

// NeighborSysRows returns the system addresses of the rows that are
// PHYSICALLY adjacent to the given system row — the rows whose cells'
// stress changes when this row's content changes (wordline coupling).
// Only the silicon knows this mapping; the full-fidelity System uses it
// to model a DRAM-internal adjacency hint (in the spirit of target-row
// refresh), never the DRAM-transparent engine itself.
func (m *Model) NeighborSysRows(a dram.RowAddress) []dram.RowAddress {
	inv := m.sysRowOfPhys[a.Bank]
	pr := int(m.physRowOfSys[a.Bank][a.Row])
	var out []dram.RowAddress
	if pr-1 >= 0 {
		out = append(out, dram.RowAddress{Bank: a.Bank, Row: inv[pr-1]})
	}
	if pr+1 < m.geom.RowsPerBank {
		out = append(out, dram.RowAddress{Bank: a.Bank, Row: inv[pr+1]})
	}
	return out
}

// AffectedNeighborRows returns the system rows (always in the same
// bank) holding a weak cell whose interference stress depends on any of
// the given cells of row a — the rows whose FailingCells verdict can
// change once those cells flip. A read-back pass that evaluated rows
// against pre-flip content re-evaluates exactly these rows after
// committing flips, which keeps batched evaluation bit-identical to a
// strictly sequential commit-as-you-go scan. The flipped cells must be
// cells FailingCells reported for row a (flips only ever land on the
// row's own weak cells); the fast paths below rely on that.
func (m *Model) AffectedNeighborRows(a dram.RowAddress, flipped []int) []dram.RowAddress {
	bf := m.banks[a.Bank]
	inv := m.sysRowOfPhys[a.Bank]
	pr := int(m.physRowOfSys[a.Bank][a.Row])
	// A weak cell at physical (qr, qc) reads the flipped cell at
	// (pr, pc) as a neighbour iff qr==pr, |qc-pc|==1 (bitline) or
	// qc==pc, |qr-pr|==1 (wordline).
	hasWeakAt := func(qr, qc int) bool {
		if qc < 0 || qc >= m.geom.PhysCols() {
			return false
		}
		for i := bf.offsets[qr]; i < bf.offsets[qr+1]; i++ {
			switch c := int(bf.cells[i].physCol); {
			case c == qc:
				return true
			case c > qc:
				return false // cells are sorted by physical column
			}
		}
		return false
	}
	// Only three rows can ever be affected — this row and its two
	// physical neighbours — and each is decided at most once: a
	// candidate's need flag drops when the row is appended, and starts
	// false when no flip can match it. The self row needs a SECOND weak
	// cell bitline-adjacent to a flipped one (the flipped cell is
	// itself weak), so single-weak-cell rows — the common case at
	// realistic weak-cell densities — return without a single column
	// probe; a neighbour row without weak cells likewise never scans.
	needSelf := bf.offsets[pr+1]-bf.offsets[pr] >= 2
	needUp := pr > 0 && bf.offsets[pr] > bf.offsets[pr-1]
	needDn := pr+1 < m.geom.RowsPerBank && bf.offsets[pr+2] > bf.offsets[pr+1]
	var out []dram.RowAddress
	for _, c := range flipped {
		if !needSelf && !needUp && !needDn {
			break
		}
		pc := m.scr.PhysCol(c)
		if needSelf && (hasWeakAt(pr, pc-1) || hasWeakAt(pr, pc+1)) {
			out = append(out, dram.RowAddress{Bank: a.Bank, Row: inv[pr]})
			needSelf = false
		}
		if needUp && hasWeakAt(pr-1, pc) {
			out = append(out, dram.RowAddress{Bank: a.Bank, Row: inv[pr-1]})
			needUp = false
		}
		if needDn && hasWeakAt(pr+1, pc) {
			out = append(out, dram.RowAddress{Bank: a.Bank, Row: inv[pr+1]})
			needDn = false
		}
	}
	return out
}

// WeakCellCount returns the number of weak cells in the bank.
func (m *Model) WeakCellCount(bank int) int { return m.banks[bank].count }

// Geometry returns the model's geometry.
func (m *Model) Geometry() dram.Geometry { return m.geom }
