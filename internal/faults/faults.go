// Package faults models data-dependent DRAM failures — the failure class
// MEMCON detects and mitigates. It plays the role of the silicon: it owns
// the vendor's physical view of the array (scrambled addresses, remapped
// columns, true-/anti-cell orientation) and decides which cells flip
// given the stored content and how long a row has been idle.
//
// # Physical model
//
// A small fraction of cells are "weak": their retention is close enough
// to the refresh window that cell-to-cell interference matters. Each weak
// cell has
//
//   - a base retention time, drawn log-uniformly from a window above the
//     characterization idle time (cells below it would fail with ANY
//     content; the paper notes those are trivially detected and excludes
//     them),
//   - coupling weights to its four physical neighbours (bitline
//     neighbours couple more strongly than wordline neighbours, per the
//     bitline-coupling literature the paper cites),
//   - an orientation: true cells store logical 1 as charge, anti cells
//     store logical 0 as charge, alternating in row pairs.
//
// A charged weak cell leaks faster when neighbouring cells are
// discharged (the interference condition); its effective retention is
// base*(1 - MaxStress*stress) where stress in [0,1] aggregates the
// discharged neighbours by coupling weight. The cell fails when its row
// stays idle longer than the effective retention. This reproduces the
// paper's observations: failures are content-dependent (Fig. 3), only a
// subset of all-pattern failures occur with program content (Fig. 4),
// and failure counts grow with the refresh interval.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"memcon/internal/dram"
)

// Params configures the failure model.
type Params struct {
	// WeakCellFraction is the probability that a cell is weak
	// (coupling-sensitive). Typical silicon-inspired values are around
	// 1e-4..1e-3.
	WeakCellFraction float64
	// RetentionFloor is the minimum base retention of a weak cell. It
	// should sit at or above the characterization idle time so that no
	// cell fails content-independently.
	RetentionFloor dram.Nanoseconds
	// RetentionCeil is the maximum base retention of a weak cell.
	RetentionCeil dram.Nanoseconds
	// MaxStress is the maximum fractional retention degradation when all
	// neighbours aggress (0..1).
	MaxStress float64
	// BitlineWeight scales how much of the coupling budget goes to the
	// two same-row (bitline) neighbours versus the two adjacent-row
	// (wordline) neighbours. 0.7 means 70% bitline / 30% wordline.
	BitlineWeight float64
}

// DefaultParams returns parameters calibrated so that, with the default
// geometry and a 328 ms characterization idle (the paper's 4 s at 45 °C
// scaled to 85 °C), roughly 13-14% of rows contain at least one cell that
// fails under SOME data pattern, while typical program content triggers
// far fewer failures — the Fig. 4 regime.
func DefaultParams() Params {
	return Params{
		WeakCellFraction: 3.2e-4,
		RetentionFloor:   328 * dram.Millisecond,
		RetentionCeil:    8 * 328 * dram.Millisecond,
		MaxStress:        0.6,
		BitlineWeight:    0.7,
	}
}

// CharacterizationIdle is the idle time used by the paper's chip tests:
// 4 s at 45 °C, equivalent to 328 ms at 85 °C.
const CharacterizationIdle = 328 * dram.Millisecond

// ParamsForRefresh returns parameters scaled so that data-dependent
// failures matter exactly at the given LO-REF window: no cell can fail
// within the aggressive HI-REF window even under maximum stress (the
// HI-REF state is unconditionally safe), while content-dependent
// failures occur within one LO-REF window for aggressive content. This
// is the configuration the full-fidelity MEMCON system runs with.
func ParamsForRefresh(loRef dram.Nanoseconds) Params {
	p := DefaultParams()
	p.RetentionFloor = loRef
	p.RetentionCeil = 8 * loRef
	return p
}

// Validate reports an error for unusable parameters.
func (p Params) Validate() error {
	switch {
	case p.WeakCellFraction < 0 || p.WeakCellFraction > 1:
		return fmt.Errorf("faults: WeakCellFraction %v outside [0,1]", p.WeakCellFraction)
	case p.RetentionFloor <= 0:
		return fmt.Errorf("faults: RetentionFloor must be positive, got %d", p.RetentionFloor)
	case p.RetentionCeil < p.RetentionFloor:
		return fmt.Errorf("faults: RetentionCeil %d below floor %d", p.RetentionCeil, p.RetentionFloor)
	case p.MaxStress < 0 || p.MaxStress >= 1:
		return fmt.Errorf("faults: MaxStress %v outside [0,1)", p.MaxStress)
	case p.BitlineWeight < 0 || p.BitlineWeight > 1:
		return fmt.Errorf("faults: BitlineWeight %v outside [0,1]", p.BitlineWeight)
	}
	return nil
}

// weakCell holds the silicon attributes of one weak cell at a physical
// location.
type weakCell struct {
	physRow, physCol int
	baseRetention    dram.Nanoseconds
	// w[0..3]: coupling weights for left, right, up, down neighbours;
	// they sum to 1.
	w [4]float64
}

// Model is the failure model for one chip. It is deterministic in
// (geometry, seed, params). Model is not safe for concurrent mutation
// but becomes read-only after warm-up, so concurrent FailingCells calls
// after Preload are safe.
type Model struct {
	geom   dram.Geometry
	scr    *dram.Scrambler
	seed   uint64
	params Params

	// Per-bank physical structures, built lazily.
	banks []*bankFaults
	// sysRowOfPhys caches the inverse row permutation per bank.
	sysRowOfPhys [][]int
	sysColOfPhys []int
}

type bankFaults struct {
	// byPhysRow indexes the bank's weak cells by physical row.
	byPhysRow map[int][]weakCell
	count     int
}

// NewModel builds a failure model over the given geometry. The scrambler
// represents the same chip (it must be constructed with the same
// geometry); seed determines the weak-cell population.
func NewModel(geom dram.Geometry, scr *dram.Scrambler, seed uint64, params Params) (*Model, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		geom:         geom,
		scr:          scr,
		seed:         seed,
		params:       params,
		banks:        make([]*bankFaults, geom.BanksPerChip),
		sysRowOfPhys: make([][]int, geom.BanksPerChip),
	}
	// Inverse column table (shared by all banks).
	m.sysColOfPhys = make([]int, geom.PhysCols())
	for i := range m.sysColOfPhys {
		m.sysColOfPhys[i] = -1
	}
	for c := 0; c < geom.ColsPerRow; c++ {
		m.sysColOfPhys[scr.PhysCol(c)] = c
	}
	return m, nil
}

// Preload forces construction of all per-bank fault state, making
// subsequent queries read-only (and therefore safe for concurrent use).
func (m *Model) Preload() {
	for b := 0; b < m.geom.BanksPerChip; b++ {
		m.bank(b)
		m.invRows(b)
	}
}

// bank lazily builds the weak-cell population of a bank. The population
// is sampled without per-cell hashing: the expected number of weak cells
// is drawn and distinct positions are placed uniformly, all from a
// deterministic per-bank RNG.
func (m *Model) bank(b int) *bankFaults {
	if m.banks[b] != nil {
		return m.banks[b]
	}
	rng := rand.New(rand.NewSource(int64(m.seed ^ uint64(b)*0x9e3779b97f4a7c15)))
	cells := m.geom.RowsPerBank * m.geom.PhysCols()
	n := int(math.Round(float64(cells) * m.params.WeakCellFraction))
	bf := &bankFaults{byPhysRow: make(map[int][]weakCell), count: n}
	seen := make(map[int]bool, n)
	for len(seen) < n {
		pos := rng.Intn(cells)
		if seen[pos] {
			continue
		}
		seen[pos] = true
		pr := pos / m.geom.PhysCols()
		pc := pos % m.geom.PhysCols()
		wc := m.makeWeakCell(rng, pr, pc)
		bf.byPhysRow[pr] = append(bf.byPhysRow[pr], wc)
	}
	for pr := range bf.byPhysRow {
		row := bf.byPhysRow[pr]
		sort.Slice(row, func(i, j int) bool { return row[i].physCol < row[j].physCol })
	}
	m.banks[b] = bf
	return bf
}

func (m *Model) makeWeakCell(rng *rand.Rand, pr, pc int) weakCell {
	// Log-uniform base retention in [floor, ceil].
	lf := math.Log(float64(m.params.RetentionFloor))
	lc := math.Log(float64(m.params.RetentionCeil))
	base := dram.Nanoseconds(math.Exp(lf + rng.Float64()*(lc-lf)))

	// Coupling weights: split the budget between bitline (left/right)
	// and wordline (up/down) neighbours, then randomize within each
	// pair.
	bl := m.params.BitlineWeight
	l := rng.Float64()
	u := rng.Float64()
	w := [4]float64{
		bl * l,
		bl * (1 - l),
		(1 - bl) * u,
		(1 - bl) * (1 - u),
	}
	return weakCell{physRow: pr, physCol: pc, baseRetention: base, w: w}
}

// invRows lazily builds the inverse row permutation of a bank.
func (m *Model) invRows(b int) []int {
	if m.sysRowOfPhys[b] != nil {
		return m.sysRowOfPhys[b]
	}
	inv := make([]int, m.geom.RowsPerBank)
	for r := 0; r < m.geom.RowsPerBank; r++ {
		inv[m.scr.PhysRow(b, r)] = r
	}
	m.sysRowOfPhys[b] = inv
	return inv
}

// trueCell reports whether the physical cell stores logical 1 as charge.
// Orientation alternates in pairs of physical rows, offset per chip.
func (m *Model) trueCell(physRow int) bool {
	off := int(m.seed>>7) & 1
	return ((physRow+off)/2)%2 == 0
}

// charged reports whether a cell holding logical bit v at the given
// physical row is in the charged state.
func (m *Model) charged(physRow, bit int) bool {
	if m.trueCell(physRow) {
		return bit == 1
	}
	return bit == 0
}

// bitAtPhys returns the logical bit stored at a physical location of the
// bank, reading through the module's system-addressed content. Cells
// without a mapped system column (unused redundant or remapped-away
// faulty columns) read as 0.
func (m *Model) bitAtPhys(mod *dram.Module, bank, physRow, physCol int) int {
	if physRow < 0 || physRow >= m.geom.RowsPerBank || physCol < 0 || physCol >= m.geom.PhysCols() {
		return -1 // outside the array
	}
	sysCol := m.sysColOfPhys[physCol]
	if sysCol < 0 {
		return 0
	}
	sysRow := m.invRows(bank)[physRow]
	return mod.RowRef(dram.RowAddress{Bank: bank, Row: sysRow}).Bit(sysCol)
}

// stress computes the interference stress on a weak cell from its four
// physical neighbours given current module content. Neighbours outside
// the array contribute nothing (their weight is wasted), matching edge
// cells being less exposed.
func (m *Model) stress(mod *dram.Module, bank int, wc weakCell) float64 {
	type nb struct{ dr, dc int }
	neighbours := [4]nb{{0, -1}, {0, 1}, {-1, 0}, {1, 0}}
	var s float64
	for i, n := range neighbours {
		pr := wc.physRow + n.dr
		pc := wc.physCol + n.dc
		bit := m.bitAtPhys(mod, bank, pr, pc)
		if bit < 0 {
			continue
		}
		if !m.charged(pr, bit) {
			s += wc.w[i]
		}
	}
	return s
}

// EffectiveRetention returns the retention of the weak cell under the
// current content, before comparing with idle time.
func (m *Model) effectiveRetention(mod *dram.Module, bank int, wc weakCell) dram.Nanoseconds {
	s := m.stress(mod, bank, wc)
	return dram.Nanoseconds(float64(wc.baseRetention) * (1 - m.params.MaxStress*s))
}

// FailingCells returns the system-column indices of cells in the
// addressed (system-space) row that fail after the row has been idle for
// the given time, under the module's current content. The module content
// is not modified; callers decide whether to commit the flips.
func (m *Model) FailingCells(mod *dram.Module, a dram.RowAddress, idle dram.Nanoseconds) []int {
	bf := m.bank(a.Bank)
	physRow := m.scr.PhysRow(a.Bank, a.Row)
	cells := bf.byPhysRow[physRow]
	if len(cells) == 0 {
		return nil
	}
	var failing []int
	for _, wc := range cells {
		sysCol := m.sysColOfPhys[wc.physCol]
		if sysCol < 0 {
			continue // faulty/unused column: no data stored there
		}
		bit := mod.RowRef(a).Bit(sysCol)
		if !m.charged(wc.physRow, bit) {
			continue // discharged cells cannot leak
		}
		if idle > m.effectiveRetention(mod, a.Bank, wc) {
			failing = append(failing, sysCol)
		}
	}
	return failing
}

// RowCanFail reports whether the addressed row contains at least one weak
// cell that could fail under SOME data pattern at the given idle time —
// the "ALL FAIL" denominator of Fig. 4. A cell can fail under some
// pattern iff idle > base*(1-MaxStress*maxAchievableStress), where the
// worst pattern charges the victim and discharges every neighbour.
func (m *Model) RowCanFail(a dram.RowAddress, idle dram.Nanoseconds) bool {
	bf := m.bank(a.Bank)
	physRow := m.scr.PhysRow(a.Bank, a.Row)
	for _, wc := range bf.byPhysRow[physRow] {
		if m.sysColOfPhys[wc.physCol] < 0 {
			continue
		}
		maxStress := m.maxAchievableStress(wc)
		eff := dram.Nanoseconds(float64(wc.baseRetention) * (1 - m.params.MaxStress*maxStress))
		if idle > eff {
			return true
		}
	}
	return false
}

// maxAchievableStress sums the weights of neighbours that physically
// exist (edge cells lose the out-of-array weight).
func (m *Model) maxAchievableStress(wc weakCell) float64 {
	type nb struct{ dr, dc int }
	neighbours := [4]nb{{0, -1}, {0, 1}, {-1, 0}, {1, 0}}
	var s float64
	for i, n := range neighbours {
		pr := wc.physRow + n.dr
		pc := wc.physCol + n.dc
		if pr < 0 || pr >= m.geom.RowsPerBank || pc < 0 || pc >= m.geom.PhysCols() {
			continue
		}
		s += wc.w[i]
	}
	return s
}

// NeighborSysRows returns the system addresses of the rows that are
// PHYSICALLY adjacent to the given system row — the rows whose cells'
// stress changes when this row's content changes (wordline coupling).
// Only the silicon knows this mapping; the full-fidelity System uses it
// to model a DRAM-internal adjacency hint (in the spirit of target-row
// refresh), never the DRAM-transparent engine itself.
func (m *Model) NeighborSysRows(a dram.RowAddress) []dram.RowAddress {
	inv := m.invRows(a.Bank)
	pr := m.scr.PhysRow(a.Bank, a.Row)
	var out []dram.RowAddress
	if pr-1 >= 0 {
		out = append(out, dram.RowAddress{Bank: a.Bank, Row: inv[pr-1]})
	}
	if pr+1 < m.geom.RowsPerBank {
		out = append(out, dram.RowAddress{Bank: a.Bank, Row: inv[pr+1]})
	}
	return out
}

// WeakCellCount returns the number of weak cells in the bank.
func (m *Model) WeakCellCount(bank int) int { return m.bank(bank).count }

// Geometry returns the model's geometry.
func (m *Model) Geometry() dram.Geometry { return m.geom }
