package faults

import (
	"math/rand"
	"testing"

	"memcon/internal/dram"
)

// TestMechanismRetentionBitIdentical is the refactor's differential
// test: routing retention through the Mechanism interface must yield
// exactly the verdicts of the frozen pre-refactor kernel (refModel, the
// oracle the flat kernel was originally verified against), across
// seeds × geometries × mappings × contents × idle times. The hammer
// count in the window must be irrelevant to retention verdicts.
func TestMechanismRetentionBitIdentical(t *testing.T) {
	for _, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			scr := newDiffScrambler(t, cfg)
			model, err := NewModel(cfg.geom, scr, cfg.seed, cfg.params)
			if err != nil {
				t.Fatal(err)
			}
			var mech Mechanism = model
			if mech.MechanismName() != "retention" {
				t.Fatalf("MechanismName = %q, want retention", mech.MechanismName())
			}
			ref := newRefModel(cfg.geom, scr, cfg.seed, cfg.params)
			for ci, fill := range []func(*dram.Module){
				func(m *dram.Module) { fillRandom(t, m, 11) },
				func(m *dram.Module) { fillSolid(t, m, 0) },
				func(m *dram.Module) { fillSolid(t, m, ^uint64(0)) },
			} {
				mod, err := dram.NewModule(cfg.geom)
				if err != nil {
					t.Fatal(err)
				}
				fill(mod)
				for _, idle := range diffIdles(cfg.params) {
					// Retention must ignore the window's hammer count.
					hammer := int64(ci * 100_000)
					w := RowWindow{Idle: idle, Hammer: hammer}
					var buf []int
					for b := 0; b < cfg.geom.BanksPerChip; b++ {
						for r := 0; r < cfg.geom.RowsPerBank; r++ {
							a := dram.RowAddress{Bank: b, Row: r}
							buf = mech.AppendFailures(buf[:0], mod, a, w)
							want := ref.failingCells(mod, a, idle)
							if !equalInts(buf, want) {
								t.Fatalf("content %d idle %d bank %d row %d: AppendFailures = %v, frozen kernel %v",
									ci, idle, b, r, buf, want)
							}
							if g, w := mech.RowVulnerable(a, w), ref.rowCanFail(a, idle); g != w {
								t.Fatalf("content %d idle %d bank %d row %d: RowVulnerable = %v, frozen kernel %v",
									ci, idle, b, r, g, w)
							}
						}
					}
				}
			}
		})
	}
}

// TestRowChargedBitMatchesOrientation pins the orientation accessor a
// secondary mechanism builds on: RowChargedBit must agree with the
// kernel's own verdicts — a solid fill of the charged value is the
// all-charged worst case (failures possible), while a solid fill of the
// discharged value can never fail.
func TestRowChargedBitMatchesOrientation(t *testing.T) {
	p := DefaultParams()
	p.WeakCellFraction = 5e-3
	m, mod := newTestModel(t, 21, p)
	geom := m.Geometry()
	idle := p.RetentionCeil + p.RetentionFloor // beyond ceiling: every charged weak cell fails
	buf1 := dram.NewRow(geom.ColsPerRow)
	buf1.Fill(^uint64(0))
	buf0 := dram.NewRow(geom.ColsPerRow)
	for b := 0; b < geom.BanksPerChip; b++ {
		for r := 0; r < geom.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			cb := m.RowChargedBit(b, r)
			discharged := buf1
			if cb == 1 {
				discharged = buf0
			}
			if err := mod.WriteRow(a, discharged, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for b := 0; b < geom.BanksPerChip; b++ {
		for r := 0; r < geom.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			if cells := m.FailingCells(mod, a, idle); len(cells) > 0 {
				t.Fatalf("bank %d row %d: fully discharged row (charged bit %d) reported failures %v",
					b, r, m.RowChargedBit(b, r), cells)
			}
		}
	}
}

// TestPhysRowOfSysRoundTrips pins the permutation accessor: it must
// invert NeighborSysRows' view of physical adjacency.
func TestPhysRowOfSysRoundTrips(t *testing.T) {
	m, _ := newTestModel(t, 33, DefaultParams())
	geom := m.Geometry()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 128; i++ {
		b := rng.Intn(geom.BanksPerChip)
		r := rng.Intn(geom.RowsPerBank)
		pr := m.PhysRowOfSys(b, r)
		if pr < 0 || pr >= geom.RowsPerBank {
			t.Fatalf("PhysRowOfSys(%d,%d) = %d outside [0,%d)", b, r, pr, geom.RowsPerBank)
		}
		for _, nb := range m.NeighborSysRows(dram.RowAddress{Bank: b, Row: r}) {
			npr := m.PhysRowOfSys(nb.Bank, nb.Row)
			if d := npr - pr; d != 1 && d != -1 {
				t.Fatalf("neighbour of sys row %d (phys %d) maps to phys %d; want adjacent", r, pr, npr)
			}
		}
	}
}
