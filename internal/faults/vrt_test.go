package faults

import (
	"testing"

	"memcon/internal/dram"
)

func newVRT(t *testing.T, params VRTParams, weakFraction float64) (*VRTModel, *dram.Module) {
	t.Helper()
	base, mod := newTestModel(t, 31, func() Params {
		p := ParamsForRefresh(dram.RefreshWindowDefault)
		if weakFraction > 0 {
			p.WeakCellFraction = weakFraction
		}
		return p
	}())
	return NewVRTModel(base, params, 31), mod
}

func TestVRTNoToggleWithoutRate(t *testing.T) {
	params := DefaultVRTParams()
	params.ToggleRate = 0
	params.AffectedFraction = 1
	v, _ := newVRT(t, params, 1e-3)
	v.Advance(100 * 3600 * dram.Second)
	if got := v.RetentionScaleAt(0, 1, 1); got != 1.0 {
		t.Errorf("zero rate toggled a cell: scale %v", got)
	}
}

func TestVRTUnaffectedCellsStable(t *testing.T) {
	params := DefaultVRTParams()
	params.AffectedFraction = 0
	v, _ := newVRT(t, params, 1e-3)
	v.Advance(1000 * 3600 * dram.Second)
	for i := 0; i < 100; i++ {
		if v.RetentionScaleAt(0, i, i) != 1.0 {
			t.Fatal("unaffected cell degraded")
		}
	}
	if v.ToggledCells() != 0 {
		t.Errorf("toggled cells = %d, want 0", v.ToggledCells())
	}
}

func TestVRTTogglesOverTime(t *testing.T) {
	params := VRTParams{ToggleRate: 10, DegradeFactor: 0.5, AffectedFraction: 1}
	v, _ := newVRT(t, params, 1e-3)
	// Touch a population of cells at time 0.
	for i := 0; i < 200; i++ {
		v.RetentionScaleAt(0, i, i)
	}
	if v.ToggledCells() != 0 {
		t.Fatalf("cells degraded at time 0: %d", v.ToggledCells())
	}
	// After many expected toggle periods, roughly half should be
	// degraded (stationary distribution of the two-state chain).
	v.Advance(100 * 3600 * dram.Second)
	toggled := v.ToggledCells()
	if toggled < 50 || toggled > 150 {
		t.Errorf("toggled cells = %d of 200, want near half", toggled)
	}
}

func TestVRTDegradedCellsFailEarlier(t *testing.T) {
	// With degradation active, a row can fail at an idle time where the
	// static model says it is safe.
	params := VRTParams{ToggleRate: 50, DegradeFactor: 0.2, AffectedFraction: 1}
	v, mod := newVRT(t, params, 5e-3)
	geom := v.Geometry()

	// Fill rows with all-ones (charges true cells) plus all-zero
	// neighbours would need orientation knowledge; random is fine.
	content := dram.NewRow(geom.ColsPerRow)
	content.Fill(^uint64(0))
	for r := 0; r < geom.RowsPerBank; r++ {
		if err := mod.WriteRow(dram.RowAddress{Bank: 0, Row: r}, content, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Below floor*(1-MaxStress) = 0.4*64 ms no cell can fail statically
	// even under maximal coupling stress.
	idle := 25 * dram.Millisecond
	staticFails := 0
	for r := 0; r < geom.RowsPerBank; r++ {
		staticFails += len(v.FailingCells(mod, dram.RowAddress{Bank: 0, Row: r}, idle))
	}
	if staticFails != 0 {
		t.Fatalf("static model fails %d cells at the retention floor", staticFails)
	}
	v.Advance(50 * 3600 * dram.Second)
	vrtFails := 0
	for r := 0; r < geom.RowsPerBank; r++ {
		vrtFails += len(v.FailingCellsVRT(mod, dram.RowAddress{Bank: 0, Row: r}, idle))
	}
	if vrtFails == 0 {
		t.Error("VRT degradation produced no additional failures; extension is vacuous")
	}
}

// MEMCON's resilience to VRT: a row that toggles weak AFTER its clean
// test is re-tested on its next content change, so the new state is
// caught — unlike a one-shot profile. This test verifies the mechanism
// primitive: FailingCellsVRT reflects the current state at test time.
func TestVRTStateVisibleToFreshTests(t *testing.T) {
	params := VRTParams{ToggleRate: 20, DegradeFactor: 0.2, AffectedFraction: 1}
	v, mod := newVRT(t, params, 5e-3)
	geom := v.Geometry()
	content := dram.NewRow(geom.ColsPerRow)
	content.Fill(^uint64(0))
	a := dram.RowAddress{Bank: 0, Row: 3}
	if err := mod.WriteRow(a, content, 0); err != nil {
		t.Fatal(err)
	}
	idle := dram.RefreshWindowDefault
	before := len(v.FailingCellsVRT(mod, a, idle))
	v.Advance(200 * 3600 * dram.Second)
	after := len(v.FailingCellsVRT(mod, a, idle))
	// Not guaranteed per row, but across a sweep the state must be able
	// to differ; check at least that repeated queries are consistent at
	// a fixed time.
	again := len(v.FailingCellsVRT(mod, a, idle))
	if after != again {
		t.Errorf("VRT evaluation not stable at fixed time: %d vs %d", after, again)
	}
	_ = before
}

// TestVRTToggledCellsDeterministic pins the rng-order bugfix: two
// identically-seeded VRT models driven through an identical query
// sequence must agree on every count AND every subsequent per-cell
// state. Before ToggledCells iterated in sorted key order it walked
// v.state in Go's randomized map order, and because cellState draws
// elapsed-toggle steps from the shared rng, the draw order — and so the
// post-walk per-cell states — differed run to run.
func TestVRTToggledCellsDeterministic(t *testing.T) {
	run := func() ([]int, []float64) {
		params := VRTParams{ToggleRate: 5, DegradeFactor: 0.5, AffectedFraction: 0.7}
		v, _ := newVRT(t, params, 1e-3)
		// Touch a spread of cells so the state map has many keys.
		for i := 0; i < 400; i++ {
			v.RetentionScaleAt(i%2, (i*37)%1024, (i*13)%1024)
		}
		var counts []int
		for step := 1; step <= 4; step++ {
			v.Advance(dram.Nanoseconds(step) * 20 * 3600 * dram.Second)
			counts = append(counts, v.ToggledCells())
		}
		var scales []float64
		for i := 0; i < 400; i++ {
			scales = append(scales, v.RetentionScaleAt(i%2, (i*37)%1024, (i*13)%1024))
		}
		return counts, scales
	}
	c1, s1 := run()
	c2, s2 := run()
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("ToggledCells diverged between identical runs at step %d: %d vs %d", i, c1[i], c2[i])
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("per-cell state diverged between identical runs at cell %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}
