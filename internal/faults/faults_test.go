package faults

import (
	"math/rand"
	"testing"

	"memcon/internal/dram"
)

func testGeometry() dram.Geometry {
	return dram.Geometry{
		Ranks:         1,
		ChipsPerRank:  1,
		BanksPerChip:  2,
		RowsPerBank:   1024,
		ColsPerRow:    1024,
		RedundantCols: 16,
	}
}

func newTestModel(t *testing.T, seed uint64, params Params) (*Model, *dram.Module) {
	t.Helper()
	geom := testGeometry()
	scr := dram.NewScrambler(geom, seed, nil)
	m, err := NewModel(geom, scr, seed, params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		t.Fatal(err)
	}
	return m, mod
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{WeakCellFraction: -0.1, RetentionFloor: 1, RetentionCeil: 2, MaxStress: 0.5, BitlineWeight: 0.5},
		{WeakCellFraction: 1.5, RetentionFloor: 1, RetentionCeil: 2, MaxStress: 0.5, BitlineWeight: 0.5},
		{WeakCellFraction: 0.1, RetentionFloor: 0, RetentionCeil: 2, MaxStress: 0.5, BitlineWeight: 0.5},
		{WeakCellFraction: 0.1, RetentionFloor: 5, RetentionCeil: 2, MaxStress: 0.5, BitlineWeight: 0.5},
		{WeakCellFraction: 0.1, RetentionFloor: 1, RetentionCeil: 2, MaxStress: 1.0, BitlineWeight: 0.5},
		{WeakCellFraction: 0.1, RetentionFloor: 1, RetentionCeil: 2, MaxStress: -0.1, BitlineWeight: 0.5},
		{WeakCellFraction: 0.1, RetentionFloor: 1, RetentionCeil: 2, MaxStress: 0.5, BitlineWeight: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestNewModelRejectsBadInputs(t *testing.T) {
	geom := testGeometry()
	scr := dram.NewScrambler(geom, 1, nil)
	if _, err := NewModel(dram.Geometry{}, scr, 1, DefaultParams()); err == nil {
		t.Error("invalid geometry accepted")
	}
	if _, err := NewModel(geom, scr, 1, Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestWeakCellPopulationDeterministic(t *testing.T) {
	p := DefaultParams()
	p.WeakCellFraction = 1e-3
	a, _ := newTestModel(t, 42, p)
	b, _ := newTestModel(t, 42, p)
	if a.WeakCellCount(0) != b.WeakCellCount(0) {
		t.Errorf("same seed yields different populations: %d vs %d", a.WeakCellCount(0), b.WeakCellCount(0))
	}
	c, _ := newTestModel(t, 43, p)
	// Counts are the same by construction; the positions must differ, which
	// shows up as differing failing sets below, but at minimum verify the
	// deterministic count formula.
	cells := testGeometry().RowsPerBank * testGeometry().PhysCols()
	want := int(float64(cells)*p.WeakCellFraction + 0.5)
	if a.WeakCellCount(0) != want {
		t.Errorf("weak count = %d, want %d", a.WeakCellCount(0), want)
	}
	_ = c
}

func TestNoFailuresWhenFullyCharged(t *testing.T) {
	p := DefaultParams()
	p.WeakCellFraction = 5e-3
	m, mod := newTestModel(t, 7, p)
	rng := rand.New(rand.NewSource(1))
	content := dram.NewRow(testGeometry().ColsPerRow)
	content.Randomize(rng)
	a := dram.RowAddress{Bank: 0, Row: 5}
	if err := mod.WriteRow(a, content, 0); err != nil {
		t.Fatal(err)
	}
	// Idle shorter than the retention floor: nothing can fail.
	if cells := m.FailingCells(mod, a, p.RetentionFloor/2); len(cells) != 0 {
		t.Errorf("failures at half the retention floor: %v", cells)
	}
}

func TestNoContentIndependentFailures(t *testing.T) {
	// With all cells discharged no cell can fail regardless of idle time.
	// All-zero content discharges true cells; all-one discharges anti
	// cells. A row that is all-discharged requires knowing orientation,
	// so instead verify the model invariant: FailingCells only reports
	// cells that were charged, i.e. flipping them discharges them.
	p := DefaultParams()
	p.WeakCellFraction = 1e-2
	m, mod := newTestModel(t, 11, p)
	rng := rand.New(rand.NewSource(2))
	geom := testGeometry()
	idle := 4 * CharacterizationIdle
	found := 0
	for r := 0; r < 200 && found < 20; r++ {
		a := dram.RowAddress{Bank: 0, Row: r}
		content := dram.NewRow(geom.ColsPerRow)
		content.Randomize(rng)
		if err := mod.WriteRow(a, content, 0); err != nil {
			t.Fatal(err)
		}
		cells := m.FailingCells(mod, a, idle)
		found += len(cells)
		// Flip each failing cell (discharging it) and confirm it no
		// longer fails.
		for _, c := range cells {
			content.SetBit(c, content.Bit(c)^1)
		}
		if err := mod.WriteRow(a, content, 0); err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			for _, still := range m.FailingCells(mod, a, idle) {
				if still == c {
					t.Errorf("row %d cell %d still fails after discharge flip", r, c)
				}
			}
		}
	}
	if found == 0 {
		t.Error("test never observed a failure; model or parameters too weak to be meaningful")
	}
}

func TestFailuresAreDataDependent(t *testing.T) {
	// The same cell should fail with one data pattern and survive with
	// another — Fig. 3's core observation.
	p := DefaultParams()
	p.WeakCellFraction = 1e-2
	m, mod := newTestModel(t, 13, p)
	geom := testGeometry()
	idle := 2 * CharacterizationIdle

	conditional := 0
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 300 && conditional == 0; r++ {
		a := dram.RowAddress{Bank: 1, Row: r}
		content := dram.NewRow(geom.ColsPerRow)
		content.Randomize(rng)
		if err := mod.WriteRow(a, content, 0); err != nil {
			t.Fatal(err)
		}
		first := m.FailingCells(mod, a, idle)
		if len(first) == 0 {
			continue
		}
		// Rewrite neighbours with different content, keeping the failing
		// cell's own bit: if the failing set changes, failures are
		// content-dependent.
		content2 := dram.NewRow(geom.ColsPerRow)
		content2.Randomize(rng)
		for _, c := range first {
			content2.SetBit(c, content.Bit(c))
		}
		if err := mod.WriteRow(a, content2, 0); err != nil {
			t.Fatal(err)
		}
		second := m.FailingCells(mod, a, idle)
		secondSet := map[int]bool{}
		for _, c := range second {
			secondSet[c] = true
		}
		for _, c := range first {
			if !secondSet[c] {
				conditional++
			}
		}
	}
	if conditional == 0 {
		t.Skip("no conditional cell found in sampled rows; extremely unlikely but not an invariant violation")
	}
}

func TestMoreFailuresAtLongerIdle(t *testing.T) {
	p := DefaultParams()
	p.WeakCellFraction = 5e-3
	m, mod := newTestModel(t, 17, p)
	geom := testGeometry()
	rng := rand.New(rand.NewSource(4))
	for r := 0; r < 300; r++ {
		a := dram.RowAddress{Bank: 0, Row: r}
		content := dram.NewRow(geom.ColsPerRow)
		content.Randomize(rng)
		if err := mod.WriteRow(a, content, 0); err != nil {
			t.Fatal(err)
		}
	}
	count := func(idle dram.Nanoseconds) int {
		n := 0
		for r := 0; r < 300; r++ {
			n += len(m.FailingCells(mod, dram.RowAddress{Bank: 0, Row: r}, idle))
		}
		return n
	}
	short := count(CharacterizationIdle)
	long := count(4 * CharacterizationIdle)
	if long < short {
		t.Errorf("failures decreased with idle time: %d @1x vs %d @4x", short, long)
	}
	if long == 0 {
		t.Error("no failures even at 4x characterization idle; parameters unusable")
	}
}

func TestRowCanFailIsSupersetOfContentFailures(t *testing.T) {
	p := DefaultParams()
	p.WeakCellFraction = 2e-3
	m, mod := newTestModel(t, 19, p)
	geom := testGeometry()
	rng := rand.New(rand.NewSource(5))
	idle := 2 * CharacterizationIdle
	for r := 0; r < 500; r++ {
		a := dram.RowAddress{Bank: 0, Row: r}
		content := dram.NewRow(geom.ColsPerRow)
		content.Randomize(rng)
		if err := mod.WriteRow(a, content, 0); err != nil {
			t.Fatal(err)
		}
		if len(m.FailingCells(mod, a, idle)) > 0 && !m.RowCanFail(a, idle) {
			t.Fatalf("row %d fails with content but RowCanFail is false", r)
		}
	}
}

func TestContentFailuresFewerThanAllFail(t *testing.T) {
	// Fig. 4: program content triggers substantially fewer failing rows
	// than the all-pattern worst case.
	p := DefaultParams()
	m, mod := newTestModel(t, 23, p)
	geom := testGeometry()
	rng := rand.New(rand.NewSource(6))
	idle := CharacterizationIdle

	allFail, contentFail := 0, 0
	for r := 0; r < geom.RowsPerBank; r++ {
		a := dram.RowAddress{Bank: 0, Row: r}
		content := dram.NewRow(geom.ColsPerRow)
		content.Randomize(rng)
		if err := mod.WriteRow(a, content, 0); err != nil {
			t.Fatal(err)
		}
		if m.RowCanFail(a, idle) {
			allFail++
		}
		if len(m.FailingCells(mod, a, idle)) > 0 {
			contentFail++
		}
	}
	if allFail == 0 {
		t.Fatal("no rows can fail at all; calibration broken")
	}
	if contentFail >= allFail {
		t.Errorf("content failures (%d) not fewer than all-pattern failures (%d)", contentFail, allFail)
	}
}

func TestModelSafeForConcurrentReads(t *testing.T) {
	p := DefaultParams()
	p.WeakCellFraction = 1e-3
	m, mod := newTestModel(t, 29, p)
	geom := testGeometry()
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < 64; r++ {
		content := dram.NewRow(geom.ColsPerRow)
		content.Randomize(rng)
		if err := mod.WriteRow(dram.RowAddress{Bank: 0, Row: r}, content, 0); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for r := 0; r < 64; r++ {
				m.FailingCells(mod, dram.RowAddress{Bank: 0, Row: r}, CharacterizationIdle)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestGeometryAccessor(t *testing.T) {
	m, _ := newTestModel(t, 1, DefaultParams())
	if m.Geometry().RowsPerBank != testGeometry().RowsPerBank {
		t.Error("Geometry accessor mismatch")
	}
}
