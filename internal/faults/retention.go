// The retention mechanism's query kernel: everything that evaluates
// which cells leak past their effective retention under current content
// and a row's idle time. The population/build side (sampling, CSR and
// packed-kernel compilation) stays in faults.go; this file is the
// read-only query surface the Mechanism interface fronts.

package faults

import (
	"math/bits"
	"runtime"

	"memcon/internal/dram"
)

// contentStress computes the interference stress on a flat cell from
// its precomputed neighbours under the module's current content.
// Neighbours on unmapped physical columns store a constant 0; neighbours
// outside the array were dropped at compile time (their weight is
// wasted, matching edge cells being less exposed).
func (m *Model) contentStress(mod *dram.Module, fc *flatCell) float64 {
	var s float64
	for k := 0; k < int(fc.nbCount); k++ {
		nb := &fc.nb[k]
		bit := uint8(0)
		if nb.rowIdx >= 0 {
			bit = uint8(mod.RowAt(int(nb.rowIdx)).Bit(int(nb.col)))
		}
		if bit != nb.chargedBit {
			s += nb.w
		}
	}
	return s
}

// FailingCells returns the system-column indices of cells in the
// addressed (system-space) row that fail after the row has been idle for
// the given time, under the module's current content. The module content
// is not modified; callers decide whether to commit the flips.
func (m *Model) FailingCells(mod *dram.Module, a dram.RowAddress, idle dram.Nanoseconds) []int {
	return m.AppendFailingCells(nil, mod, a, idle)
}

// maxRowFails bounds the word kernel's on-stack result staging. Rows
// that fail in more cells than this (possible only under extreme
// WeakCellFraction) fall back to the scalar path for the whole row.
const maxRowFails = 64

// AppendFailingCells is FailingCells appending into dst, so steady-state
// callers (the online-test and audit hot paths) can reuse one buffer
// instead of allocating per query.
//
// This is the bit-parallel kernel: per 64-bit row word, one XOR+AND
// classifies which weak cells currently hold charge, and the wordline
// neighbours' discharge states come from the SAME word of the two
// physically adjacent rows (the column swizzle is row-independent, so
// an up/down neighbour shares the victim's system column). Only
// charged candidates pay the per-cell stress sum, which accumulates
// the left, right, up, down terms in the scalar path's order so the
// float result — and therefore every verdict — is bit-identical to
// appendFailingCellsScalar.
func (m *Model) AppendFailingCells(dst []int, mod *dram.Module, a dram.RowAddress, idle dram.Nanoseconds) []int {
	bf := m.banks[a.Bank]
	if idle <= bf.minWorstBySysRow[a.Row] {
		return dst // no cell of this row fails even under worst-case stress
	}
	gl, gh := bf.groupOff[a.Row], bf.groupOff[a.Row+1]
	if gl == gh {
		return dst
	}
	ni := &bf.neigh[a.Row]
	row := mod.RowRef(a)
	cb := uint8(0)
	candXor := ^uint64(0) // anti-cell rows: charge is a stored 0
	if ni.flags&neighSelfTrue != 0 {
		cb, candXor = 1, 0
	}
	// The physically adjacent rows resolve lazily, on the first charged
	// candidate that also clears its worst-case retention bound: rows
	// whose candidates all read as discharged or all reject on the
	// bound never touch the two neighbour rows at all, and those
	// scrambled-row loads are the kernel's cache misses. disXor turns a
	// neighbour's raw words into discharge masks (bit set = neighbour
	// aggresses; a missing neighbour leaves wU/wD at 0, so its du/dd
	// value is never observed).
	bankBase := a.Bank * m.geom.RowsPerBank
	var up, dn dram.Row
	var disXorU, disXorD uint64
	neighbours := false
	var ranks, cols [maxRowFails]int32
	nf := 0
	for gi := gl; gi < gh; gi++ {
		g := &bf.groups[gi]
		if idle <= g.minWorst {
			continue // whole word rejected by its retention bound
		}
		cand := (row[g.word] ^ candXor) & g.mask
		if cand == 0 {
			continue // no charged weak cell in this word
		}
		var du, dd uint64
		duddReady := false
		for c := cand; c != 0; c &= c - 1 {
			bit := uint(bits.TrailingZeros64(c))
			lane := bits.OnesCount64(g.mask & (1<<bit - 1))
			p := &bf.packed[int(g.cellBase)+lane]
			if idle <= p.worstRetention {
				continue
			}
			if !duddReady {
				duddReady = true
				if !neighbours {
					neighbours = true
					if ni.upSys >= 0 {
						up = mod.RowAt(bankBase + int(ni.upSys))
						if ni.flags&neighUpTrue != 0 {
							disXorU = ^uint64(0)
						}
					}
					if ni.dnSys >= 0 {
						dn = mod.RowAt(bankBase + int(ni.dnSys))
						if ni.flags&neighDnTrue != 0 {
							disXorD = ^uint64(0)
						}
					}
				}
				if up != nil {
					du = up[g.word] ^ disXorU
				}
				if dn != nil {
					dd = dn[g.word] ^ disXorD
				}
			}
			var s float64
			if p.lCol >= 0 {
				if uint8(row.Bit(int(p.lCol))) != cb {
					s += p.wL
				}
			} else {
				s += p.lConstW
			}
			if p.rCol >= 0 {
				if uint8(row.Bit(int(p.rCol))) != cb {
					s += p.wR
				}
			} else {
				s += p.rConstW
			}
			s += p.wU * float64(du>>bit&1)
			s += p.wD * float64(dd>>bit&1)
			if idle > dram.Nanoseconds(float64(p.baseRetention)*(1-m.params.MaxStress*s)) {
				if nf == maxRowFails {
					return m.appendFailingCellsScalar(dst, mod, a, idle)
				}
				ranks[nf], cols[nf] = p.rank, p.sysCol
				nf++
			}
		}
	}
	// The kernel visits cells in system-column order; restore the CSR
	// (physical-column) order the scalar path reports.
	for i := 1; i < nf; i++ {
		for j := i; j > 0 && ranks[j] < ranks[j-1]; j-- {
			ranks[j], ranks[j-1] = ranks[j-1], ranks[j]
			cols[j], cols[j-1] = cols[j-1], cols[j]
		}
	}
	for i := 0; i < nf; i++ {
		dst = append(dst, int(cols[i]))
	}
	return dst
}

// AppendFailingRows runs the word kernel over entries [lo, hi) of the
// bank's weak-row worklist (WeakRowFloors order) against current
// content at time now. Each failing row appends its failing cells to
// cells, its system row to rows, and the new len(cells) to offs —
// extending the caller's CSR bookkeeping (offs must already hold its
// leading sentinel). Verdicts are exactly AppendFailingCells's, row by
// row; the only addition is a lookahead touch of a future row's hot
// words, which keeps several cache misses in flight where a
// row-at-a-time caller would serialise on each miss in turn.
func (m *Model) AppendFailingRows(mod *dram.Module, bank, lo, hi int, now dram.Nanoseconds, cells []int, rows, offs []int32) ([]int, []int32, []int32) {
	bf := m.banks[bank]
	base := bank * m.geom.RowsPerBank
	// 8 rows ahead ≈ the distance a row's evaluation takes to catch up
	// with an L3-latency load issued now.
	const lookahead = 8
	var pre uint64
	for i := lo; i < hi; i++ {
		if j := i + lookahead; j < hi {
			if r := int(bf.weakRows[j]); mod.IdleAtIndex(base+r, now) > bf.weakFloors[j] {
				g := &bf.groups[bf.groupOff[r]]
				pre += uint64(mod.RowAt(base + r)[g.word])
				pre += uint64(bf.packed[g.cellBase].worstRetention)
				// Touch both neighbour words too: roughly half the
				// rows that pass the floor keep a candidate alive long
				// enough to read them, and their scrambled-row misses
				// are the scan's longest stalls.
				if ni := &bf.neigh[r]; ni.upSys >= 0 {
					pre += uint64(mod.RowAt(base + int(ni.upSys))[g.word])
					if ni.dnSys >= 0 {
						pre += uint64(mod.RowAt(base + int(ni.dnSys))[g.word])
					}
				} else if ni.dnSys >= 0 {
					pre += uint64(mod.RowAt(base + int(ni.dnSys))[g.word])
				}
			}
		}
		r := int(bf.weakRows[i])
		idle := mod.IdleAtIndex(base+r, now)
		if idle <= bf.weakFloors[i] {
			continue
		}
		n0 := len(cells)
		cells = m.AppendFailingCells(cells, mod, dram.RowAddress{Bank: bank, Row: r}, idle)
		if len(cells) > n0 {
			rows = append(rows, int32(r))
			offs = append(offs, int32(len(cells)))
		}
	}
	// The lookahead loads exist only for their cache side effect; keep
	// the compiler from proving them dead.
	runtime.KeepAlive(pre)
	return cells, rows, offs
}

// appendFailingCellsScalar is the frozen per-cell evaluation the word
// kernel is differential-tested against (and its spill fallback for
// rows with more than maxRowFails failing cells).
func (m *Model) appendFailingCellsScalar(dst []int, mod *dram.Module, a dram.RowAddress, idle dram.Nanoseconds) []int {
	bf := m.banks[a.Bank]
	if idle <= bf.minWorstBySysRow[a.Row] {
		return dst // no cell of this row fails even under worst-case stress
	}
	pr := m.physRowOfSys[a.Bank][a.Row]
	row := mod.RowRef(a)
	for i := bf.offsets[pr]; i < bf.offsets[pr+1]; i++ {
		fc := &bf.cells[i]
		if idle <= fc.worstRetention {
			continue // cannot fail at this idle time under any content
		}
		if uint8(row.Bit(int(fc.sysCol))) != fc.chargedBit {
			continue // discharged cells cannot leak
		}
		s := m.contentStress(mod, fc)
		if idle > dram.Nanoseconds(float64(fc.baseRetention)*(1-m.params.MaxStress*s)) {
			dst = append(dst, int(fc.sysCol))
		}
	}
	return dst
}

// RowCanFail reports whether the addressed row contains at least one weak
// cell that could fail under SOME data pattern at the given idle time —
// the "ALL FAIL" denominator of Fig. 4. A cell can fail under some
// pattern iff idle > base*(1-MaxStress*maxAchievableStress), where the
// worst pattern charges the victim and discharges every neighbour; that
// bound is precomputed per cell and cached as a system-row-indexed
// minimum, so the query is one comparison with no permutation lookup.
func (m *Model) RowCanFail(a dram.RowAddress, idle dram.Nanoseconds) bool {
	return idle > m.banks[a.Bank].minWorstBySysRow[a.Row]
}

// WeakRowFloors returns, in ascending system-row order, the rows of the
// bank that hold at least one weak cell, together with each row's
// RowCanFail floor (the idle time a query must exceed for any cell of
// the row to fail under any pattern). A full-array scan that walks this
// dense worklist instead of probing all RowsPerBank rows visits only
// the ~WeakCellFraction*rows candidates that can matter; rows absent
// from the list never fail at any idle time. Both slices are owned by
// the model and must not be modified.
func (m *Model) WeakRowFloors(bank int) ([]int32, []dram.Nanoseconds) {
	bf := m.banks[bank]
	return bf.weakRows, bf.weakFloors
}
