package faults

import (
	"fmt"
	"math"

	"memcon/internal/dram"
)

// DRAM retention degrades exponentially with temperature. The paper's
// own test-condition equivalence — 4 s idle at 45 °C corresponds to
// 328 ms at 85 °C — pins the scaling constant: retention halves every
// retentionHalvingC degrees Celsius. MEMCON itself does not handle
// temperature variation; it relies (§3) on exactly this kind of
// experimentally validated model plus a guardband on the mitigation.
// This file provides that model so deployments of the library can size
// their guardbands.

// retentionHalvingC is derived from ln(4000/328)/40 per °C.
var retentionHalvingC = 40 * math.Ln2 / math.Log(4000.0/328.0)

// RetentionScale returns the multiplicative retention change when the
// operating temperature moves from fromC to toC: above-nominal
// temperatures return values below 1.
func RetentionScale(fromC, toC float64) float64 {
	return math.Pow(2, (fromC-toC)/retentionHalvingC)
}

// EquivalentIdle converts an idle time measured at fromC to the idle
// time with the same failure behaviour at toC — how the paper converts
// its 4 s @45 °C test to 328 ms @85 °C.
func EquivalentIdle(idle dram.Nanoseconds, fromC, toC float64) dram.Nanoseconds {
	return dram.Nanoseconds(float64(idle) * RetentionScale(fromC, toC))
}

// AtTemperature returns a copy of the parameters with retention scaled
// from the calibration temperature to an operating temperature. Use it
// to ask "would this chip, calibrated at 85 °C, still be safe at 95 °C?"
func (p Params) AtTemperature(calibratedC, operatingC float64) Params {
	s := RetentionScale(calibratedC, operatingC)
	p.RetentionFloor = dram.Nanoseconds(float64(p.RetentionFloor) * s)
	p.RetentionCeil = dram.Nanoseconds(float64(p.RetentionCeil) * s)
	return p
}

// GuardbandedLoRef returns the LO-REF interval to program so that rows
// tested clean at testC remain safe up to worstC, with an additional
// multiplicative margin (>= 1). This is the §3 guardband: MEMCON's test
// certifies the row at the test temperature; the refresh interval must
// absorb the retention lost at the worst-case temperature.
func GuardbandedLoRef(loRef dram.Nanoseconds, testC, worstC, margin float64) (dram.Nanoseconds, error) {
	if margin < 1 {
		return 0, fmt.Errorf("faults: guardband margin must be >= 1, got %v", margin)
	}
	if worstC < testC {
		// Cooler operation only gains retention; no derating needed.
		worstC = testC
	}
	derated := float64(loRef) * RetentionScale(testC, worstC) / margin
	if derated < 1 {
		return 0, fmt.Errorf("faults: guardband collapses LO-REF below 1 ns")
	}
	return dram.Nanoseconds(derated), nil
}
