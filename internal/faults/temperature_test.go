package faults

import (
	"math"
	"testing"

	"memcon/internal/dram"
)

func TestPaperTemperatureEquivalence(t *testing.T) {
	// The constant is calibrated on the paper's own test condition:
	// 4 s at 45 C must map to 328 ms at 85 C.
	got := EquivalentIdle(4*dram.Second, 45, 85)
	if got < 327*dram.Millisecond || got > 329*dram.Millisecond {
		t.Errorf("EquivalentIdle(4s, 45->85) = %d ms, want 328", got/dram.Millisecond)
	}
}

func TestRetentionScaleProperties(t *testing.T) {
	// Identity at equal temperatures.
	if s := RetentionScale(60, 60); math.Abs(s-1) > 1e-12 {
		t.Errorf("scale at equal temps = %v, want 1", s)
	}
	// Hotter -> less retention; cooler -> more.
	if RetentionScale(45, 85) >= 1 {
		t.Error("heating should shrink retention")
	}
	if RetentionScale(85, 45) <= 1 {
		t.Error("cooling should grow retention")
	}
	// Composition: 45->65->85 equals 45->85.
	comp := RetentionScale(45, 65) * RetentionScale(65, 85)
	direct := RetentionScale(45, 85)
	if math.Abs(comp-direct) > 1e-12 {
		t.Errorf("scaling does not compose: %v vs %v", comp, direct)
	}
}

func TestAtTemperature(t *testing.T) {
	p := DefaultParams()
	hotter := p.AtTemperature(85, 95)
	if hotter.RetentionFloor >= p.RetentionFloor {
		t.Error("retention floor did not shrink at higher temperature")
	}
	if hotter.RetentionCeil >= p.RetentionCeil {
		t.Error("retention ceiling did not shrink at higher temperature")
	}
	// The scaled params must remain valid.
	if err := hotter.Validate(); err != nil {
		t.Errorf("scaled params invalid: %v", err)
	}
	cooler := p.AtTemperature(85, 45)
	if cooler.RetentionFloor <= p.RetentionFloor {
		t.Error("retention floor did not grow at lower temperature")
	}
}

func TestGuardbandedLoRef(t *testing.T) {
	lo := dram.RefreshWindowDefault // 64 ms
	// Same temperature, margin 1: unchanged.
	got, err := GuardbandedLoRef(lo, 85, 85, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != lo {
		t.Errorf("no-op guardband changed LO-REF: %d", got)
	}
	// Hotter worst case shrinks the interval.
	hot, err := GuardbandedLoRef(lo, 85, 95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hot >= lo {
		t.Errorf("hot guardband = %d, want < %d", hot, lo)
	}
	// Margin shrinks it further.
	margined, err := GuardbandedLoRef(lo, 85, 95, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if margined >= hot {
		t.Errorf("margin did not shrink interval: %d vs %d", margined, hot)
	}
	// Cooler worst case never relaxes beyond the programmed interval.
	cool, err := GuardbandedLoRef(lo, 85, 45, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cool != lo {
		t.Errorf("cooler worst case changed LO-REF: %d", cool)
	}
}

func TestGuardbandedLoRefErrors(t *testing.T) {
	if _, err := GuardbandedLoRef(dram.RefreshWindowDefault, 85, 95, 0.5); err == nil {
		t.Error("margin < 1 accepted")
	}
	if _, err := GuardbandedLoRef(1, 0, 400, 1); err == nil {
		t.Error("collapsing guardband accepted")
	}
}

// End-to-end: a chip safe at its calibration temperature can exhibit
// failures at a hotter operating point; the guardbanded interval
// restores safety.
func TestTemperatureGuardbandEndToEnd(t *testing.T) {
	geom := testGeometry()
	scr := dram.NewScrambler(geom, 21, nil)
	base := ParamsForRefresh(dram.RefreshWindowDefault)
	base.WeakCellFraction = 5e-3

	hot := base.AtTemperature(85, 105)
	model, err := NewModel(geom, scr, 21, hot)
	if err != nil {
		t.Fatal(err)
	}
	// At 105 C, the retention floor sits below the 64 ms LO-REF window
	// scaled: some rows may now fail within LO-REF even under modest
	// stress. The guardbanded interval must be at most the scaled floor
	// under max stress, i.e. provably safe.
	guarded, err := GuardbandedLoRef(dram.RefreshWindowDefault, 85, 105, 1)
	if err != nil {
		t.Fatal(err)
	}
	if guarded >= dram.RefreshWindowDefault {
		t.Fatal("guardband did not tighten the interval")
	}
	// Safety: no cell can fail within the guarded interval even with
	// maximal stress, because floor_hot * (1-MaxStress) >= guarded *
	// (1-MaxStress) relation holds via floor scaling.
	minEff := float64(hot.RetentionFloor) * (1 - hot.MaxStress)
	if float64(guarded)*(1-base.MaxStress) > minEff {
		// The guarded window must sit within the worst-case retention.
		if float64(guarded) > minEff {
			t.Errorf("guarded interval %d exceeds worst-case retention %v", guarded, minEff)
		}
	}
	_ = model
}
