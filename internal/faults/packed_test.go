package faults

import (
	"testing"

	"memcon/internal/dram"
)

// TestWordKernelMatchesScalar differential-tests the bit-parallel
// AppendFailingCells against the retained scalar path, byte for byte —
// same cells, same output order — across seeds, geometries, vendor
// address mappings, contents and idle times. The tiny-seed17-spill
// config packs more than maxRowFails failing cells into single rows,
// so the on-stack overflow fallback is exercised too (asserted below,
// not assumed).
func TestWordKernelMatchesScalar(t *testing.T) {
	for _, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			scr := newDiffScrambler(t, cfg)
			model, err := NewModel(cfg.geom, scr, cfg.seed, cfg.params)
			if err != nil {
				t.Fatal(err)
			}
			maxFails := 0
			for ci, fill := range []func(*dram.Module){
				func(m *dram.Module) { fillRandom(t, m, 1) },
				func(m *dram.Module) { fillRandom(t, m, 6) },
				func(m *dram.Module) { fillSolid(t, m, 0) },
				func(m *dram.Module) { fillSolid(t, m, ^uint64(0)) },
				func(m *dram.Module) { fillSolid(t, m, 0xAAAAAAAAAAAAAAAA) },
			} {
				mod, err := dram.NewModule(cfg.geom)
				if err != nil {
					t.Fatal(err)
				}
				fill(mod)
				for _, idle := range diffIdles(cfg.params) {
					for b := 0; b < cfg.geom.BanksPerChip; b++ {
						for r := 0; r < cfg.geom.RowsPerBank; r++ {
							a := dram.RowAddress{Bank: b, Row: r}
							got := model.AppendFailingCells(nil, mod, a, idle)
							want := model.appendFailingCellsScalar(nil, mod, a, idle)
							if !equalInts(got, want) {
								t.Fatalf("content %d idle %d bank %d row %d: word kernel %v, scalar %v",
									ci, idle, b, r, got, want)
							}
							if len(got) > maxFails {
								maxFails = len(got)
							}
						}
					}
				}
			}
			if cfg.wantSpill && maxFails <= maxRowFails {
				t.Fatalf("spill config topped out at %d failing cells per row; need > %d to cover the fallback",
					maxFails, maxRowFails)
			}
		})
	}
}
