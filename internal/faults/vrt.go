package faults

import (
	"math/rand"
	"sort"

	"memcon/internal/dram"
)

// Variable retention time (VRT): real DRAM cells spontaneously toggle
// between retention states (the two-state "random telegraph" behaviour
// that motivates AVATAR, one of the paper's baselines [70]). A cell that
// profiled strong can later weaken — which is fatal for one-shot
// profiling (RAIDR) but handled naturally by MEMCON, because every
// content change triggers a fresh test of the row as it now behaves.
//
// VRTModel wraps a Model with per-cell retention toggling: each weak
// cell flips between its base retention and a degraded retention as a
// Poisson process in simulated time.

// VRTParams configures retention toggling.
type VRTParams struct {
	// ToggleRate is the expected number of state flips per cell per
	// simulated hour. Field studies report order 1e-2..1 for VRT-active
	// cells.
	ToggleRate float64
	// DegradeFactor scales retention in the degraded state (0..1).
	DegradeFactor float64
	// AffectedFraction is the fraction of weak cells that exhibit VRT.
	AffectedFraction float64
}

// DefaultVRTParams returns a moderate VRT population.
func DefaultVRTParams() VRTParams {
	return VRTParams{ToggleRate: 0.5, DegradeFactor: 0.5, AffectedFraction: 0.3}
}

// VRTModel augments a fault model with time-varying retention.
type VRTModel struct {
	*Model
	params VRTParams
	rng    *rand.Rand
	// state maps (bank, physRow, physCol) of VRT-affected cells to
	// their degraded flag; cells enter lazily on first touch.
	state map[vrtKey]*vrtCell
	now   dram.Nanoseconds
}

type vrtKey struct{ bank, physRow, physCol int }

type vrtCell struct {
	affected   bool
	degraded   bool
	nextToggle dram.Nanoseconds
}

// NewVRTModel wraps a model.
func NewVRTModel(m *Model, params VRTParams, seed int64) *VRTModel {
	return &VRTModel{
		Model:  m,
		params: params,
		rng:    rand.New(rand.NewSource(seed)),
		state:  make(map[vrtKey]*vrtCell),
	}
}

// Advance moves simulated time forward; cells toggle lazily when
// queried, so Advance only records the clock.
func (v *VRTModel) Advance(to dram.Nanoseconds) {
	if to > v.now {
		v.now = to
	}
}

// meanTogglePeriod converts the per-hour rate into nanoseconds.
func (v *VRTModel) meanTogglePeriod() float64 {
	const hour = 3600 * float64(dram.Second)
	if v.params.ToggleRate <= 0 {
		return 0
	}
	return hour / v.params.ToggleRate
}

// cellState fetches (lazily creating) the VRT state of a cell and
// applies any toggles that elapsed since the last touch.
func (v *VRTModel) cellState(k vrtKey) *vrtCell {
	c, ok := v.state[k]
	if !ok {
		// A zero toggle rate means no cell ever toggles.
		c = &vrtCell{affected: v.meanTogglePeriod() > 0 && v.rng.Float64() < v.params.AffectedFraction}
		if c.affected {
			c.nextToggle = dram.Nanoseconds(v.rng.ExpFloat64() * v.meanTogglePeriod())
		}
		v.state[k] = c
	}
	if !c.affected {
		return c
	}
	for c.nextToggle <= v.now {
		c.degraded = !c.degraded
		step := dram.Nanoseconds(v.rng.ExpFloat64() * v.meanTogglePeriod())
		if step < 1 {
			step = 1 // exponential samples can round to zero; always advance
		}
		c.nextToggle += step
	}
	return c
}

// RetentionScaleAt returns the multiplicative retention factor of the
// cell at the current simulated time (1.0 or DegradeFactor).
func (v *VRTModel) RetentionScaleAt(bank, physRow, physCol int) float64 {
	c := v.cellState(vrtKey{bank, physRow, physCol})
	if c.degraded {
		return v.params.DegradeFactor
	}
	return 1.0
}

// FailingCellsVRT evaluates failures like Model.FailingCells but with
// the VRT retention scaling applied per cell: a cell in the degraded
// state fails at proportionally shorter idle times.
func (v *VRTModel) FailingCellsVRT(mod *dram.Module, a dram.RowAddress, idle dram.Nanoseconds) []int {
	pr := int(v.physRowOfSys[a.Bank][a.Row])
	cells := v.rowCells(a.Bank, pr)
	if len(cells) == 0 {
		return nil
	}
	row := mod.RowRef(a)
	var failing []int
	for i := range cells {
		fc := &cells[i]
		if uint8(row.Bit(int(fc.sysCol))) != fc.chargedBit {
			continue
		}
		scale := v.RetentionScaleAt(a.Bank, int(fc.physRow), int(fc.physCol))
		s := v.contentStress(mod, fc)
		static := dram.Nanoseconds(float64(fc.baseRetention) * (1 - v.Model.params.MaxStress*s))
		if idle > dram.Nanoseconds(float64(static)*scale) {
			failing = append(failing, int(fc.sysCol))
		}
	}
	return failing
}

// ToggledCells reports how many tracked cells are currently degraded —
// instrumentation for VRT experiments.
//
// The walk visits cells in sorted key order, never Go's randomized map
// order: cellState draws from the shared rng when it applies elapsed
// toggles, so the iteration order here IS the rng consumption order,
// and identically-seeded models must consume identically or their
// subsequent per-cell states diverge run to run.
func (v *VRTModel) ToggledCells() int {
	keys := make([]vrtKey, 0, len(v.state))
	for k := range v.state {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.bank != b.bank {
			return a.bank < b.bank
		}
		if a.physRow != b.physRow {
			return a.physRow < b.physRow
		}
		return a.physCol < b.physCol
	})
	n := 0
	for _, k := range keys {
		if v.cellState(k).degraded {
			n++
		}
	}
	return n
}
