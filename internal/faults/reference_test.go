package faults

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"memcon/internal/dram"
)

// refModel is a frozen copy of the original map-based fault model (the
// implementation the flat kernel replaced), kept as the oracle for the
// differential tests below. It samples the weak-cell population with the
// exact same RNG call sequence and evaluates stress with the exact same
// float accumulation order, so any divergence from Model is a kernel
// bug, not noise.
type refModel struct {
	geom   dram.Geometry
	scr    *dram.Scrambler
	seed   uint64
	params Params

	byPhysRow    []map[int][]weakCell
	sysRowOfPhys [][]int
	sysColOfPhys []int
}

func newRefModel(geom dram.Geometry, scr *dram.Scrambler, seed uint64, params Params) *refModel {
	m := &refModel{
		geom:         geom,
		scr:          scr,
		seed:         seed,
		params:       params,
		byPhysRow:    make([]map[int][]weakCell, geom.BanksPerChip),
		sysRowOfPhys: make([][]int, geom.BanksPerChip),
	}
	m.sysColOfPhys = make([]int, geom.PhysCols())
	for i := range m.sysColOfPhys {
		m.sysColOfPhys[i] = -1
	}
	for c := 0; c < geom.ColsPerRow; c++ {
		m.sysColOfPhys[scr.PhysCol(c)] = c
	}
	for b := 0; b < geom.BanksPerChip; b++ {
		rng := rand.New(rand.NewSource(int64(seed ^ uint64(b)*0x9e3779b97f4a7c15)))
		cells := geom.RowsPerBank * geom.PhysCols()
		n := int(math.Round(float64(cells) * params.WeakCellFraction))
		byRow := make(map[int][]weakCell)
		seen := make(map[int]bool, n)
		for len(seen) < n {
			pos := rng.Intn(cells)
			if seen[pos] {
				continue
			}
			seen[pos] = true
			pr := pos / geom.PhysCols()
			pc := pos % geom.PhysCols()
			byRow[pr] = append(byRow[pr], m.makeWeakCell(rng, pr, pc))
		}
		for pr := range byRow {
			row := byRow[pr]
			sort.Slice(row, func(i, j int) bool { return row[i].physCol < row[j].physCol })
		}
		m.byPhysRow[b] = byRow
		inv := make([]int, geom.RowsPerBank)
		for r := 0; r < geom.RowsPerBank; r++ {
			inv[scr.PhysRow(b, r)] = r
		}
		m.sysRowOfPhys[b] = inv
	}
	return m
}

func (m *refModel) makeWeakCell(rng *rand.Rand, pr, pc int) weakCell {
	lf := math.Log(float64(m.params.RetentionFloor))
	lc := math.Log(float64(m.params.RetentionCeil))
	base := dram.Nanoseconds(math.Exp(lf + rng.Float64()*(lc-lf)))
	bl := m.params.BitlineWeight
	l := rng.Float64()
	u := rng.Float64()
	w := [4]float64{bl * l, bl * (1 - l), (1 - bl) * u, (1 - bl) * (1 - u)}
	return weakCell{physRow: pr, physCol: pc, baseRetention: base, w: w}
}

func (m *refModel) trueCell(physRow int) bool {
	off := int(m.seed>>7) & 1
	return ((physRow+off)/2)%2 == 0
}

func (m *refModel) charged(physRow, bit int) bool {
	if m.trueCell(physRow) {
		return bit == 1
	}
	return bit == 0
}

func (m *refModel) bitAtPhys(mod *dram.Module, bank, physRow, physCol int) int {
	if physRow < 0 || physRow >= m.geom.RowsPerBank || physCol < 0 || physCol >= m.geom.PhysCols() {
		return -1
	}
	sysCol := m.sysColOfPhys[physCol]
	if sysCol < 0 {
		return 0
	}
	sysRow := m.sysRowOfPhys[bank][physRow]
	return mod.RowRef(dram.RowAddress{Bank: bank, Row: sysRow}).Bit(sysCol)
}

func (m *refModel) stress(mod *dram.Module, bank int, wc weakCell) float64 {
	neighbours := [4]struct{ dr, dc int }{{0, -1}, {0, 1}, {-1, 0}, {1, 0}}
	var s float64
	for i, n := range neighbours {
		pr := wc.physRow + n.dr
		pc := wc.physCol + n.dc
		bit := m.bitAtPhys(mod, bank, pr, pc)
		if bit < 0 {
			continue
		}
		if !m.charged(pr, bit) {
			s += wc.w[i]
		}
	}
	return s
}

func (m *refModel) failingCells(mod *dram.Module, a dram.RowAddress, idle dram.Nanoseconds) []int {
	physRow := m.scr.PhysRow(a.Bank, a.Row)
	cells := m.byPhysRow[a.Bank][physRow]
	var failing []int
	for _, wc := range cells {
		sysCol := m.sysColOfPhys[wc.physCol]
		if sysCol < 0 {
			continue
		}
		bit := mod.RowRef(a).Bit(sysCol)
		if !m.charged(wc.physRow, bit) {
			continue
		}
		s := m.stress(mod, a.Bank, wc)
		eff := dram.Nanoseconds(float64(wc.baseRetention) * (1 - m.params.MaxStress*s))
		if idle > eff {
			failing = append(failing, sysCol)
		}
	}
	return failing
}

func (m *refModel) rowCanFail(a dram.RowAddress, idle dram.Nanoseconds) bool {
	physRow := m.scr.PhysRow(a.Bank, a.Row)
	for _, wc := range m.byPhysRow[a.Bank][physRow] {
		if m.sysColOfPhys[wc.physCol] < 0 {
			continue
		}
		neighbours := [4]struct{ dr, dc int }{{0, -1}, {0, 1}, {-1, 0}, {1, 0}}
		var maxStress float64
		for i, n := range neighbours {
			pr := wc.physRow + n.dr
			pc := wc.physCol + n.dc
			if pr < 0 || pr >= m.geom.RowsPerBank || pc < 0 || pc >= m.geom.PhysCols() {
				continue
			}
			maxStress += wc.w[i]
		}
		eff := dram.Nanoseconds(float64(wc.baseRetention) * (1 - m.params.MaxStress*maxStress))
		if idle > eff {
			return true
		}
	}
	return false
}

// diffConfig is one differential-test chip configuration.
type diffConfig struct {
	name       string
	geom       dram.Geometry
	seed       uint64
	params     Params
	faultyCols []int
	// mapping selects the vendor address mapping ("" = default).
	mapping string
	// wantSpill marks configs dense enough that some row must overflow
	// the word kernel's on-stack staging and take the scalar fallback.
	wantSpill bool
}

func diffConfigs() []diffConfig {
	small := dram.Geometry{
		Ranks: 1, ChipsPerRank: 1, BanksPerChip: 2,
		RowsPerBank: 256, ColsPerRow: 512, RedundantCols: 16,
	}
	dense := small
	odd := dram.Geometry{
		Ranks: 1, ChipsPerRank: 1, BanksPerChip: 2,
		RowsPerBank: 192, ColsPerRow: 256, RedundantCols: 8,
	}
	tiny := dram.Geometry{
		Ranks: 1, ChipsPerRank: 1, BanksPerChip: 1,
		RowsPerBank: 64, ColsPerRow: 128, RedundantCols: 8,
	}
	denseParams := DefaultParams()
	denseParams.WeakCellFraction = 2e-2 // dense enough for edge cells and adjacent weak pairs
	spillParams := DefaultParams()
	spillParams.WeakCellFraction = 0.6 // >64 weak cells per row word span: forces the spill fallback
	return []diffConfig{
		{name: "small-seed3", geom: small, seed: 3, params: DefaultParams()},
		{name: "small-seed42-dense", geom: dense, seed: 42, params: denseParams},
		{name: "small-seed99-remapped", geom: small, seed: 99, params: denseParams,
			faultyCols: []int{0, 1, 7, 100, 101, 511}},
		{name: "oddrows-seed7", geom: odd, seed: 7, params: denseParams},
		{name: "small-seed5-gray", geom: small, seed: 5, params: denseParams, mapping: "gray"},
		{name: "small-seed13-linear", geom: small, seed: 13, params: denseParams, mapping: "linear",
			faultyCols: []int{2, 3, 200, 201}},
		{name: "oddrows-seed11-mirror", geom: odd, seed: 11, params: denseParams, mapping: "mirror"},
		{name: "tiny-seed17-spill", geom: tiny, seed: 17, params: spillParams, wantSpill: true},
	}
}

// newDiffScrambler builds a config's scrambler through the mapping
// registry, so every differential test sweeps vendor mappings.
func newDiffScrambler(tb testing.TB, cfg diffConfig) *dram.Scrambler {
	tb.Helper()
	scr, err := dram.NewMappedScrambler(cfg.geom, cfg.seed, cfg.faultyCols, cfg.mapping)
	if err != nil {
		tb.Fatal(err)
	}
	return scr
}

// diffIdles returns the idle times each config is checked at: below the
// retention floor (nothing fails), at the floor, within the window, and
// above the ceiling (every charged weak cell fails).
func diffIdles(p Params) []dram.Nanoseconds {
	return []dram.Nanoseconds{
		p.RetentionFloor / 2,
		p.RetentionFloor,
		2 * p.RetentionFloor,
		p.RetentionCeil + p.RetentionFloor,
	}
}

// fillRandom stores deterministic pseudo-random content in every row.
func fillRandom(t *testing.T, mod *dram.Module, seed int64) {
	t.Helper()
	g := mod.Geometry()
	rng := rand.New(rand.NewSource(seed))
	buf := dram.NewRow(g.ColsPerRow)
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			buf.Randomize(rng)
			if err := mod.WriteRow(dram.RowAddress{Bank: b, Row: r}, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func fillSolid(t *testing.T, mod *dram.Module, word uint64) {
	t.Helper()
	g := mod.Geometry()
	buf := dram.NewRow(g.ColsPerRow)
	buf.Fill(word)
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			if err := mod.WriteRow(dram.RowAddress{Bank: b, Row: r}, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestFlatKernelMatchesReference is the differential test for the flat
// CSR kernel: FailingCells and RowCanFail must agree cell-for-cell with
// the original map-based implementation on every row, across seeds,
// geometries (edge rows/cols, non-power-of-two rows, remapped columns),
// contents, and idle times.
func TestFlatKernelMatchesReference(t *testing.T) {
	for _, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			scr := newDiffScrambler(t, cfg)
			model, err := NewModel(cfg.geom, scr, cfg.seed, cfg.params)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefModel(cfg.geom, scr, cfg.seed, cfg.params)
			for b := 0; b < cfg.geom.BanksPerChip; b++ {
				if got, want := model.WeakCellCount(b), len(flatten(ref.byPhysRow[b])); got != want {
					t.Fatalf("bank %d: WeakCellCount = %d, reference sampled %d", b, got, want)
				}
			}
			for ci, fill := range []func(*dram.Module){
				func(m *dram.Module) { fillRandom(t, m, 1) },
				func(m *dram.Module) { fillRandom(t, m, 2) },
				func(m *dram.Module) { fillSolid(t, m, 0) },
				func(m *dram.Module) { fillSolid(t, m, ^uint64(0)) },
			} {
				mod, err := dram.NewModule(cfg.geom)
				if err != nil {
					t.Fatal(err)
				}
				fill(mod)
				for _, idle := range diffIdles(cfg.params) {
					for b := 0; b < cfg.geom.BanksPerChip; b++ {
						for r := 0; r < cfg.geom.RowsPerBank; r++ {
							a := dram.RowAddress{Bank: b, Row: r}
							got := model.FailingCells(mod, a, idle)
							want := ref.failingCells(mod, a, idle)
							if !equalInts(got, want) {
								t.Fatalf("content %d idle %d bank %d row %d: FailingCells = %v, reference %v",
									ci, idle, b, r, got, want)
							}
							if g, w := model.RowCanFail(a, idle), ref.rowCanFail(a, idle); g != w {
								t.Fatalf("content %d idle %d bank %d row %d: RowCanFail = %v, reference %v",
									ci, idle, b, r, g, w)
							}
						}
					}
				}
			}
		})
	}
}

func flatten(byRow map[int][]weakCell) []weakCell {
	var out []weakCell
	for _, cells := range byRow {
		out = append(out, cells...)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestColdModelConcurrentQueries hits a freshly built model from many
// goroutines without any warm-up call — the lazy-initialization race the
// eager NewModel build removed. Run under -race this fails loudly if
// construction ever becomes lazy again.
func TestColdModelConcurrentQueries(t *testing.T) {
	geom := dram.Geometry{
		Ranks: 1, ChipsPerRank: 1, BanksPerChip: 4,
		RowsPerBank: 128, ColsPerRow: 256, RedundantCols: 8,
	}
	params := DefaultParams()
	params.WeakCellFraction = 5e-3
	scr := dram.NewScrambler(geom, 11, nil)
	model, err := NewModel(geom, scr, 11, params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, mod, 5)

	const goroutines = 8
	var wg sync.WaitGroup
	counts := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			idle := 2 * params.RetentionFloor
			for b := 0; b < geom.BanksPerChip; b++ {
				for r := 0; r < geom.RowsPerBank; r++ {
					a := dram.RowAddress{Bank: b, Row: r}
					if model.RowCanFail(a, idle) {
						counts[g] += len(model.FailingCells(mod, a, idle))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if counts[g] != counts[0] {
			t.Fatalf("goroutine %d counted %d failing cells, goroutine 0 counted %d", g, counts[g], counts[0])
		}
	}
}

// TestAppendFailingCellsReusesBuffer pins the buffer-reuse contract the
// core hot path depends on: appending into a capacious dst must not
// allocate a new backing array.
func TestAppendFailingCellsReusesBuffer(t *testing.T) {
	geom := dram.Geometry{
		Ranks: 1, ChipsPerRank: 1, BanksPerChip: 1,
		RowsPerBank: 128, ColsPerRow: 256, RedundantCols: 8,
	}
	params := DefaultParams()
	params.WeakCellFraction = 2e-2
	scr := dram.NewScrambler(geom, 21, nil)
	model, err := NewModel(geom, scr, 21, params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		t.Fatal(err)
	}
	fillSolid(t, mod, 0xAAAAAAAAAAAAAAAA)
	idle := params.RetentionCeil + params.RetentionFloor

	buf := make([]int, 0, geom.ColsPerRow)
	var total int
	allocs := testing.AllocsPerRun(10, func() {
		total = 0
		for r := 0; r < geom.RowsPerBank; r++ {
			buf = model.AppendFailingCells(buf[:0], mod, dram.RowAddress{Bank: 0, Row: r}, idle)
			total += len(buf)
		}
	})
	if total == 0 {
		t.Fatal("expected some failing cells above the retention ceiling")
	}
	if allocs != 0 {
		t.Fatalf("AppendFailingCells allocated %.1f times per scan with a reused buffer", allocs)
	}
}

// TestRowCanFailMonotone sanity-checks the cached per-row bound: a row
// reported unable to fail must show no failing cells under any of the
// probe contents at that idle time.
func TestRowCanFailMonotone(t *testing.T) {
	cfg := diffConfigs()[1]
	scr := newDiffScrambler(t, cfg)
	model, err := NewModel(cfg.geom, scr, cfg.seed, cfg.params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(cfg.geom)
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, mod, 9)
	for _, idle := range diffIdles(cfg.params) {
		for b := 0; b < cfg.geom.BanksPerChip; b++ {
			for r := 0; r < cfg.geom.RowsPerBank; r++ {
				a := dram.RowAddress{Bank: b, Row: r}
				if !model.RowCanFail(a, idle) {
					if cells := model.FailingCells(mod, a, idle); len(cells) > 0 {
						t.Fatalf("bank %d row %d idle %d: RowCanFail false but %d cells fail",
							b, r, idle, len(cells))
					}
				}
			}
		}
	}
}

func BenchmarkReferenceParity(b *testing.B) {
	// Not a performance benchmark: a cheap guard that keeps the
	// reference model compiling and sampling, so the differential
	// oracle cannot silently rot. Runs one row end to end.
	cfg := diffConfigs()[0]
	scr := newDiffScrambler(b, cfg)
	model, err := NewModel(cfg.geom, scr, cfg.seed, cfg.params)
	if err != nil {
		b.Fatal(err)
	}
	ref := newRefModel(cfg.geom, scr, cfg.seed, cfg.params)
	mod, err := dram.NewModule(cfg.geom)
	if err != nil {
		b.Fatal(err)
	}
	a := dram.RowAddress{Bank: 0, Row: 17}
	idle := 2 * cfg.params.RetentionFloor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := model.FailingCells(mod, a, idle)
		want := ref.failingCells(mod, a, idle)
		if !equalInts(got, want) {
			b.Fatalf("parity broken: %v vs %v", got, want)
		}
	}
}
