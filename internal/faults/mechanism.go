package faults

import (
	"memcon/internal/dram"
)

// RowWindow is the access/idle history of one row over the window being
// evaluated — the mechanism-independent inputs a failure mechanism may
// condition on. Retention reads Idle; read disturb reads Hammer; a
// future mechanism adds its field here without touching existing
// implementations.
type RowWindow struct {
	// Idle is how long the row's content has gone without a recharge
	// (refresh or activation) at evaluation time.
	Idle dram.Nanoseconds
	// Hammer is the number of activations of the row's physically
	// adjacent aggressor rows accumulated inside the current refresh
	// window (a blanket refresh restores every victim's charge, so
	// counts never carry across windows).
	Hammer int64
}

// Mechanism is one physical failure mechanism of the simulated silicon.
// The contract: given the module's CURRENT content and one row's
// access/idle history for the window, append the system columns of the
// cells that fail, deterministically — same (model seed, content,
// window) always yields the same cells, in the same order. Verdicts
// must depend only on the arguments and on immutable model state, so a
// Mechanism is safe for concurrent readers and two mechanisms can be
// co-simulated against one module without coordination.
//
// DESIGN.md §6 records the invariants consumers rely on.
type Mechanism interface {
	// MechanismName identifies the mechanism ("retention", "disturb").
	MechanismName() string
	// AppendFailures appends the failing system columns of row a under
	// the module's current content and the row's window history. The
	// module is never modified; callers decide whether to commit flips.
	AppendFailures(dst []int, mod *dram.Module, a dram.RowAddress, w RowWindow) []int
	// RowVulnerable reports whether the row could fail under SOME
	// content with this window history — a cheap, content-independent
	// pre-filter (no module access).
	RowVulnerable(a dram.RowAddress, w RowWindow) bool
}

// Model implements Mechanism with the retention kernel: failures depend
// on the window's idle time and the stored content's interference
// stress; the hammer count is irrelevant to leakage.
var _ Mechanism = (*Model)(nil)

// MechanismName implements Mechanism.
func (m *Model) MechanismName() string { return "retention" }

// AppendFailures implements Mechanism by delegating to the retention
// kernel: verdicts are exactly AppendFailingCells's at w.Idle.
func (m *Model) AppendFailures(dst []int, mod *dram.Module, a dram.RowAddress, w RowWindow) []int {
	return m.AppendFailingCells(dst, mod, a, w.Idle)
}

// RowVulnerable implements Mechanism via the per-row retention floor.
func (m *Model) RowVulnerable(a dram.RowAddress, w RowWindow) bool {
	return m.RowCanFail(a, w.Idle)
}

// PhysRowOfSys returns the physical row the given system row of a bank
// maps to. Secondary mechanisms (disturb) anchor their victim
// populations to physical rows so aggressor adjacency matches the
// retention model's NeighborSysRows view of the same silicon.
func (m *Model) PhysRowOfSys(bank, sysRow int) int {
	return int(m.physRowOfSys[bank][sysRow])
}

// RowChargedBit returns the logical bit value that stores charge in the
// given system row (1 for true-cell rows, 0 for anti-cell rows). Charge
// orientation is a property of the physical row, shared by every
// mechanism: a disturb victim loses charge exactly like a leaky
// retention cell, so only cells currently holding the charged value can
// flip.
func (m *Model) RowChargedBit(bank, sysRow int) uint8 {
	if m.trueCell(int(m.physRowOfSys[bank][sysRow])) {
		return 1
	}
	return 0
}
