package faults

import (
	"math/rand"
	"testing"

	"memcon/internal/dram"
)

// Manufacturing-time column remapping interacts with the failure model:
// a faulty physical column remapped away holds no data, so nothing can
// "fail" there, and the remapped system column's cells now live in the
// redundant region with redundant-region neighbours (Fig. 2b).
func TestFaultsWithRemappedColumns(t *testing.T) {
	geom := testGeometry()
	// Find in-use physical columns to declare faulty.
	clean := dram.NewScrambler(geom, 41, nil)
	faulty := []int{clean.PhysCol(100), clean.PhysCol(200)}
	scr := dram.NewScrambler(geom, 41, faulty)

	params := DefaultParams()
	params.WeakCellFraction = 1e-2
	m, err := NewModel(geom, scr, 41, params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	content := dram.NewRow(geom.ColsPerRow)

	// Whole-bank sweep: no failing cell may be reported at a system
	// column that does not exist, and the model must still find
	// failures somewhere (the remap does not disable detection).
	total := 0
	for r := 0; r < geom.RowsPerBank; r++ {
		a := dram.RowAddress{Bank: 0, Row: r}
		content.Randomize(rng)
		if err := mod.WriteRow(a, content, 0); err != nil {
			t.Fatal(err)
		}
		cells := m.FailingCells(mod, a, 2*CharacterizationIdle)
		for _, c := range cells {
			if c < 0 || c >= geom.ColsPerRow {
				t.Fatalf("failing cell at non-existent system column %d", c)
			}
		}
		total += len(cells)
	}
	if total == 0 {
		t.Error("no failures found on a chip with remapped columns; detection broken")
	}
}

// Physical neighbours resolved by NeighborSysRows are symmetric: if B
// is A's neighbour, A is B's neighbour.
func TestNeighborSymmetry(t *testing.T) {
	geom := testGeometry()
	scr := dram.NewScrambler(geom, 43, nil)
	m, err := NewModel(geom, scr, 43, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 64; r++ {
		a := dram.RowAddress{Bank: 1, Row: r}
		for _, nb := range m.NeighborSysRows(a) {
			back := m.NeighborSysRows(nb)
			found := false
			for _, bb := range back {
				if bb == a {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbour asymmetry: %+v -> %+v but not back", a, nb)
			}
		}
	}
}

// Neighbours always live in the same bank and are at most 2 per row.
func TestNeighborBounds(t *testing.T) {
	geom := testGeometry()
	scr := dram.NewScrambler(geom, 47, nil)
	m, err := NewModel(geom, scr, 47, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	edge := 0
	for r := 0; r < geom.RowsPerBank; r++ {
		a := dram.RowAddress{Bank: 0, Row: r}
		nbs := m.NeighborSysRows(a)
		if len(nbs) > 2 {
			t.Fatalf("row %d has %d neighbours", r, len(nbs))
		}
		if len(nbs) < 2 {
			edge++ // physical edge rows have one neighbour
		}
		for _, nb := range nbs {
			if nb.Bank != a.Bank {
				t.Fatalf("neighbour crossed banks: %+v -> %+v", a, nb)
			}
		}
	}
	if edge != 2 {
		t.Errorf("edge rows = %d, want exactly 2 (top and bottom physical rows)", edge)
	}
}
