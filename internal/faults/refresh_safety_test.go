package faults

import (
	"testing"

	"memcon/internal/dram"
)

// TestParamsForRefreshHiRefSafe pins the guarantee ParamsForRefresh
// documents: with the retention floor at loRef, the HI-REF window is
// unconditionally safe iff hiRef < loRef*(1-MaxStress). The original
// doc claimed safety "even under maximum stress" unconditionally, which
// the arithmetic does not support — a fully-stressed floor cell retains
// for only 0.4*loRef — so this test checks both the shipped-window side
// (64 ms / 16 ms holds with margin) and the boundary side (a tighter
// LO-REF really does break the claim).
func TestParamsForRefreshHiRefSafe(t *testing.T) {
	p := ParamsForRefresh(dram.RefreshWindowDefault)
	hiRef := dram.RefreshWindowAggressive

	// Arithmetic bound: the worst effective retention of a floor cell.
	worst := dram.Nanoseconds(float64(p.RetentionFloor) * (1 - p.MaxStress))
	if worst <= hiRef {
		t.Fatalf("shipped windows violate the claim: floor*(1-MaxStress) = %d <= HI-REF %d", worst, hiRef)
	}

	// Empirical, worst-case patterns: across seeds and a dense
	// population, no row may fail within HI-REF under ANY pattern
	// (RowCanFail is the per-row worst-achievable-stress bound).
	dense := p
	dense.WeakCellFraction = 2e-2
	for _, seed := range []uint64{1, 42, 12345} {
		m, mod := newTestModel(t, seed, dense)
		geom := m.Geometry()
		for b := 0; b < geom.BanksPerChip; b++ {
			for r := 0; r < geom.RowsPerBank; r++ {
				a := dram.RowAddress{Bank: b, Row: r}
				if m.RowCanFail(a, hiRef) {
					t.Fatalf("seed %d: row (%d,%d) can fail within HI-REF %d", seed, b, r, hiRef)
				}
				if cells := m.FailingCells(mod, a, hiRef); len(cells) != 0 {
					t.Fatalf("seed %d: row (%d,%d) fails at HI-REF under zero content: %v", seed, b, r, cells)
				}
			}
		}
	}

	// Boundary: a LO-REF below hiRef/(1-MaxStress) breaks the
	// guarantee — some cell's worst-case retention drops under HI-REF.
	tight := ParamsForRefresh(dram.Nanoseconds(float64(hiRef) / (1 - p.MaxStress) * 0.99))
	tight.WeakCellFraction = 2e-2
	m, _ := newTestModel(t, 42, tight)
	geom := m.Geometry()
	vulnerable := false
	for b := 0; b < geom.BanksPerChip && !vulnerable; b++ {
		for r := 0; r < geom.RowsPerBank; r++ {
			if m.RowCanFail(dram.RowAddress{Bank: b, Row: r}, hiRef) {
				vulnerable = true
				break
			}
		}
	}
	if !vulnerable {
		t.Fatal("expected HI-REF-vulnerable rows once loRef*(1-MaxStress) < hiRef")
	}
}
