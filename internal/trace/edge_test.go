package trace

import (
	"bytes"
	"testing"
)

func TestHalveIntervalsEmpty(t *testing.T) {
	tr := &Trace{Name: "empty", Duration: 1000}
	h := tr.HalveIntervals()
	if h.Duration != 500 || len(h.Events) != 0 {
		t.Errorf("halved empty trace = %+v", h)
	}
	if h.Name != "empty-halved" {
		t.Errorf("name = %q", h.Name)
	}
}

func TestIntervalsEmptyAndSingle(t *testing.T) {
	empty := &Trace{Duration: 100}
	if got := empty.Intervals(true); len(got) != 0 {
		t.Errorf("empty trace intervals = %v", got)
	}
	single := &Trace{Duration: 5 * Millisecond, Events: []Event{{Page: 1, At: Millisecond}}}
	closed := single.Intervals(false)
	if len(closed) != 0 {
		t.Errorf("single write closed intervals = %v", closed)
	}
	open := single.Intervals(true)
	if len(open) != 1 || open[0] != 4 {
		t.Errorf("single write trailing interval = %v, want [4]", open)
	}
}

func TestIntervalsNoTrailingWhenEventAtEnd(t *testing.T) {
	tr := &Trace{Duration: 100, Events: []Event{{Page: 1, At: 100}}}
	if got := tr.Intervals(true); len(got) != 0 {
		t.Errorf("event at trace end yielded trailing interval %v", got)
	}
}

func TestSliceEmptyWindow(t *testing.T) {
	tr := &Trace{Duration: 100, Events: []Event{{Page: 1, At: 50}}}
	s := tr.Slice(60, 70)
	if len(s.Events) != 0 || s.Duration != 10 {
		t.Errorf("empty-window slice = %+v", s)
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	m := Merge("nothing")
	if len(m.Events) != 0 || m.Duration != 0 {
		t.Errorf("merge of nothing = %+v", m)
	}
	m2 := Merge("one", &Trace{Duration: 10})
	if m2.Duration != 10 {
		t.Errorf("merge of empty trace duration = %d", m2.Duration)
	}
}

func TestReadRejectsHugeName(t *testing.T) {
	// Construct a v1 header with an absurd name length.
	var buf bytes.Buffer
	tr := &Trace{Name: "x", Duration: 1}
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Name length lives at offset 8 (after magic+version), little endian.
	b[8], b[9], b[10], b[11] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("huge name length accepted")
	}
}

func TestWritesPerPageOrderPreserved(t *testing.T) {
	tr := &Trace{Duration: 100, Events: []Event{
		{Page: 1, At: 10}, {Page: 1, At: 10}, {Page: 1, At: 20},
	}}
	times := tr.WritesPerPage()[1]
	if len(times) != 3 || times[0] != 10 || times[1] != 10 || times[2] != 20 {
		t.Errorf("times = %v", times)
	}
}
