package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Streaming access to the compact (v2) format. A multi-minute bus trace
// at production scale holds hundreds of millions of events — far more
// than a materialized []Event should hold resident. Stream decodes the
// delta/varint encoding incrementally, so replay memory is bounded by
// the consumer's per-page state (O(pages)), not by the event count, and
// Encoder writes the same format incrementally for producers in the
// same position.

// Source is a forward-only supplier of time-ordered write events plus
// the trace metadata a replay needs to finish. Both materialized traces
// (via Trace.Source) and incremental decoders (Stream) implement it, so
// the engine and predictor replay either through one entry point.
type Source interface {
	// Name labels the workload that produced the events.
	Name() string
	// Duration is the traced execution time; replays flush quanta and
	// pending work up to it after the last event.
	Duration() Microseconds
	// Next returns the next event in time order; io.EOF ends the
	// stream. Any other error poisons the source.
	Next() (Event, error)
}

// DecodeError locates a malformed field in a compact stream: the event
// index it belongs to (-1 for header fields) and the byte offset where
// its encoding starts.
type DecodeError struct {
	// Event is the 0-based index of the event being decoded, or -1 when
	// the header failed.
	Event int64
	// Offset is the byte offset of the failing field's first byte.
	Offset int64
	// Field names the field being decoded.
	Field string
	// Err is the underlying cause (ErrBadFormat for structural
	// violations, io.ErrUnexpectedEOF for truncation, ...).
	Err error
}

// Error implements error.
func (e *DecodeError) Error() string {
	if e.Event < 0 {
		return fmt.Sprintf("trace: decoding %s at offset %d: %v", e.Field, e.Offset, e.Err)
	}
	return fmt.Sprintf("trace: decoding event %d %s at offset %d: %v", e.Event, e.Field, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *DecodeError) Unwrap() error { return e.Err }

// countingReader counts consumed bytes so decode errors carry the
// offset of the field that failed.
type countingReader struct {
	br *bufio.Reader
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// Stream incrementally decodes a compact (v2) trace: NewStream consumes
// the header, then each Next call decodes one event. Memory use is
// constant regardless of trace size. Stream implements Source.
type Stream struct {
	r     countingReader
	name  string
	dur   Microseconds
	total uint64
	idx   uint64
	prev  Microseconds
	err   error // sticky decode error
}

// NewStream opens a compact (v2) stream over r, reading and validating
// the header. The remaining events decode lazily through Next.
func NewStream(r io.Reader) (*Stream, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	s := &Stream{r: countingReader{br: br}}
	var m uint32
	if err := binary.Read(&s.r, binary.LittleEndian, &m); err != nil {
		return nil, &DecodeError{Event: -1, Offset: 0, Field: "magic", Err: noEOF(err)}
	}
	if m != compactMagic {
		return nil, ErrBadFormat
	}
	nameLen, off, err := s.uvarint()
	if err != nil {
		return nil, &DecodeError{Event: -1, Offset: off, Field: "name length", Err: noEOF(err)}
	}
	if nameLen > 1<<16 {
		return nil, &DecodeError{Event: -1, Offset: off, Field: "name length",
			Err: fmt.Errorf("%w: implausible name length %d", ErrBadFormat, nameLen)}
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(&s.r, name); err != nil {
		return nil, &DecodeError{Event: -1, Offset: off, Field: "name", Err: noEOF(err)}
	}
	s.name = string(name)
	dur, off, err := s.uvarint()
	if err != nil {
		return nil, &DecodeError{Event: -1, Offset: off, Field: "duration", Err: noEOF(err)}
	}
	if dur > math.MaxInt64 {
		return nil, &DecodeError{Event: -1, Offset: off, Field: "duration",
			Err: fmt.Errorf("%w: duration %d overflows the timestamp range", ErrBadFormat, dur)}
	}
	s.dur = Microseconds(dur)
	count, off, err := s.uvarint()
	if err != nil {
		return nil, &DecodeError{Event: -1, Offset: off, Field: "event count", Err: noEOF(err)}
	}
	if count > 1<<32 {
		return nil, &DecodeError{Event: -1, Offset: off, Field: "event count",
			Err: fmt.Errorf("%w: implausible event count %d", ErrBadFormat, count)}
	}
	s.total = count
	return s, nil
}

// uvarint reads one varint, returning the offset of its first byte.
func (s *Stream) uvarint() (v uint64, off int64, err error) {
	off = s.r.n
	v, err = binary.ReadUvarint(&s.r)
	return v, off, err
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// declared-length stream, running out of bytes is truncation, never a
// clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Name returns the trace name from the header.
func (s *Stream) Name() string { return s.name }

// Duration returns the traced execution time from the header.
func (s *Stream) Duration() Microseconds { return s.dur }

// Events returns the declared event count from the header.
func (s *Stream) Events() uint64 { return s.total }

// Next decodes and returns the next event. It returns io.EOF after the
// declared count has been delivered; any other error (truncation,
// timestamp overflow, page overflow) is positioned and sticky.
func (s *Stream) Next() (Event, error) {
	if s.err != nil {
		return Event{}, s.err
	}
	if s.idx >= s.total {
		return Event{}, io.EOF
	}
	delta, off, err := s.uvarint()
	if err != nil {
		return Event{}, s.fail(off, "delta", noEOF(err))
	}
	// Reject deltas that would wrap the running timestamp past the
	// int64 range: the wrap would surface as an out-of-order negative
	// timestamp only later, in Validate, far from the corrupt bytes.
	if delta > math.MaxInt64 || Microseconds(delta) > math.MaxInt64-s.prev {
		return Event{}, s.fail(off, "delta",
			fmt.Errorf("%w: delta %d overflows the timestamp at %d", ErrBadFormat, delta, s.prev))
	}
	page, off, err := s.uvarint()
	if err != nil {
		return Event{}, s.fail(off, "page", noEOF(err))
	}
	if page > math.MaxUint32 {
		return Event{}, s.fail(off, "page",
			fmt.Errorf("%w: page %d overflows uint32", ErrBadFormat, page))
	}
	s.prev += Microseconds(delta)
	ev := Event{Page: uint32(page), At: s.prev}
	s.idx++
	return ev, nil
}

// fail records and returns the positioned sticky error.
func (s *Stream) fail(off int64, field string, cause error) error {
	s.err = &DecodeError{Event: int64(s.idx), Offset: off, Field: field, Err: cause}
	return s.err
}

// Source returns a forward-only Source view over the materialized
// trace, so batch traces and incremental streams replay through the
// same entry points.
func (t *Trace) Source() Source { return &traceCursor{t: t} }

// traceCursor adapts a materialized Trace to the Source interface.
type traceCursor struct {
	t *Trace
	i int
}

func (c *traceCursor) Name() string           { return c.t.Name }
func (c *traceCursor) Duration() Microseconds { return c.t.Duration }

func (c *traceCursor) Next() (Event, error) {
	if c.i >= len(c.t.Events) {
		return Event{}, io.EOF
	}
	e := c.t.Events[c.i]
	c.i++
	return e, nil
}

// Format identifies a serialized trace format.
type Format int

// The wire formats a trace file can carry.
const (
	FormatUnknown Format = iota
	FormatV1             // fixed-width (Write/Read)
	FormatCompact        // delta/varint v2 (WriteCompact/ReadCompact/Stream)
)

// DetectFormat peeks the leading magic without consuming it, so the
// caller can route the same reader to Read, ReadCompact, or NewStream.
func DetectFormat(br *bufio.Reader) (Format, error) {
	head, err := br.Peek(4)
	if err != nil {
		return FormatUnknown, fmt.Errorf("trace: reading magic: %w", noEOF(err))
	}
	switch binary.LittleEndian.Uint32(head) {
	case magic:
		return FormatV1, nil
	case compactMagic:
		return FormatCompact, nil
	}
	return FormatUnknown, nil
}

// ReadAuto sniffs the leading magic and reads either trace format (v1
// fixed-width or v2 compact) without requiring a seekable reader.
func ReadAuto(r io.Reader) (*Trace, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	switch f, err := DetectFormat(br); {
	case err != nil:
		return nil, err
	case f == FormatV1:
		return Read(br)
	case f == FormatCompact:
		return ReadCompact(br)
	default:
		return nil, ErrBadFormat
	}
}

// Encoder writes the compact (v2) format incrementally, for producers
// whose event streams should not be materialized. The event count must
// be known up front — the header carries it — and Close verifies that
// exactly that many events were encoded.
type Encoder struct {
	bw      *bufio.Writer
	total   uint64
	written uint64
	prev    Microseconds
	buf     [binary.MaxVarintLen64]byte
}

// NewEncoder writes the compact header and returns an encoder expecting
// exactly count time-ordered events.
func NewEncoder(w io.Writer, name string, duration Microseconds, count uint64) (*Encoder, error) {
	if duration < 0 {
		return nil, fmt.Errorf("trace: negative duration %d", duration)
	}
	e := &Encoder{bw: bufio.NewWriter(w), total: count}
	if err := binary.Write(e.bw, binary.LittleEndian, compactMagic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := e.uvarint(uint64(len(name))); err != nil {
		return nil, err
	}
	if _, err := e.bw.WriteString(name); err != nil {
		return nil, err
	}
	if err := e.uvarint(uint64(duration)); err != nil {
		return nil, err
	}
	if err := e.uvarint(count); err != nil {
		return nil, err
	}
	return e, nil
}

// uvarint writes one varint.
func (e *Encoder) uvarint(v uint64) error {
	n := binary.PutUvarint(e.buf[:], v)
	_, err := e.bw.Write(e.buf[:n])
	return err
}

// Encode appends one event. Events must arrive with non-decreasing,
// non-negative timestamps.
func (e *Encoder) Encode(ev Event) error {
	if e.written >= e.total {
		return fmt.Errorf("trace: encoder declared %d events, got more", e.total)
	}
	if ev.At < e.prev || ev.At < 0 {
		return fmt.Errorf("trace: event at %d out of order (previous %d)", ev.At, e.prev)
	}
	if err := e.uvarint(uint64(ev.At - e.prev)); err != nil {
		return err
	}
	e.prev = ev.At
	if err := e.uvarint(uint64(ev.Page)); err != nil {
		return err
	}
	e.written++
	return nil
}

// Close flushes the stream and verifies the declared event count was
// met.
func (e *Encoder) Close() error {
	if e.written != e.total {
		return fmt.Errorf("trace: encoder declared %d events, encoded %d", e.total, e.written)
	}
	return e.bw.Flush()
}
