package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompactRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCompact(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Duration != tr.Duration || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestCompactRejectsInvalidTrace(t *testing.T) {
	bad := &Trace{Events: []Event{{Page: 1, At: 10}, {Page: 1, At: 5}}}
	var buf bytes.Buffer
	if err := bad.WriteCompact(&buf); err == nil {
		t.Error("unsorted trace written")
	}
}

func TestCompactRejectsGarbage(t *testing.T) {
	if _, err := ReadCompact(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
	// v1 magic is not v2.
	var buf bytes.Buffer
	tr := sampleTrace()
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCompact(&buf); err == nil {
		t.Error("v1 stream accepted by compact reader")
	}
	// Truncation.
	var c bytes.Buffer
	tr.WriteCompact(&c)
	if _, err := ReadCompact(bytes.NewReader(c.Bytes()[:c.Len()-2])); err == nil {
		t.Error("truncated compact stream accepted")
	}
}

func TestCompactSmallerThanV1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &Trace{Name: "big"}
	var at Microseconds
	for i := 0; i < 20000; i++ {
		at += Microseconds(rng.Intn(500))
		tr.Events = append(tr.Events, Event{Page: uint32(rng.Intn(256)), At: at})
	}
	tr.Duration = at + 1
	var v1, v2 bytes.Buffer
	if err := tr.Write(&v1); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCompact(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len()/2 {
		t.Errorf("compact format %d bytes, v1 %d bytes; want at least 2x smaller", v2.Len(), v1.Len())
	}
}

// Property: compact round-trip preserves arbitrary sorted traces.
func TestCompactRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop"}
		var at Microseconds
		for i := 0; i < int(n); i++ {
			at += Microseconds(rng.Intn(100000))
			tr.Events = append(tr.Events, Event{Page: uint32(rng.Uint32()), At: at})
		}
		tr.Duration = at + 1
		var buf bytes.Buffer
		if err := tr.WriteCompact(&buf); err != nil {
			return false
		}
		got, err := ReadCompact(&buf)
		if err != nil {
			return false
		}
		if got.Duration != tr.Duration || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := &Trace{Name: "a", Duration: 100, Events: []Event{{Page: 0, At: 10}, {Page: 1, At: 50}}}
	b := &Trace{Name: "b", Duration: 200, Events: []Event{{Page: 0, At: 20}}}
	m := Merge("mix", a, b)
	if m.Duration != 200 {
		t.Errorf("merged duration = %d, want 200", m.Duration)
	}
	if len(m.Events) != 3 {
		t.Fatalf("merged events = %d, want 3", len(m.Events))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	// b's page 0 must have been offset past a's pages (0 and 1 -> base 2).
	found := false
	for _, e := range m.Events {
		if e.At == 20 && e.Page == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("merged events = %+v, want b's page offset to 2", m.Events)
	}
	if m.Pages() != 3 {
		t.Errorf("merged pages = %d, want 3", m.Pages())
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Duration: 100, Events: []Event{
		{Page: 1, At: 10}, {Page: 2, At: 40}, {Page: 3, At: 80},
	}}
	s := tr.Slice(30, 90)
	if s.Duration != 60 {
		t.Errorf("slice duration = %d, want 60", s.Duration)
	}
	if len(s.Events) != 2 {
		t.Fatalf("slice events = %d, want 2", len(s.Events))
	}
	if s.Events[0].At != 10 || s.Events[1].At != 50 {
		t.Errorf("slice timestamps not rebased: %+v", s.Events)
	}
}

func TestFilterPages(t *testing.T) {
	tr := &Trace{Duration: 100, Events: []Event{
		{Page: 1, At: 10}, {Page: 2, At: 40}, {Page: 1, At: 80},
	}}
	f := tr.FilterPages(func(p uint32) bool { return p == 1 })
	if len(f.Events) != 2 {
		t.Fatalf("filtered events = %d, want 2", len(f.Events))
	}
	for _, e := range f.Events {
		if e.Page != 1 {
			t.Errorf("filter leaked page %d", e.Page)
		}
	}
	if f.Duration != tr.Duration {
		t.Error("filter changed duration")
	}
}
