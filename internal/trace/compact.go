package trace

import (
	"fmt"
	"io"
)

// Compact (v2) trace format: delta/varint encoded. Timestamps are
// monotone, so storing per-event deltas in unsigned varints compresses
// long traces by 3-5x against the fixed-width v1 format — worthwhile for
// multi-minute, multi-million-event bus traces.

// compactMagic identifies the compact format.
const compactMagic = uint32(0x4d435443) // "MCTC"

// WriteCompact serializes the trace in the delta/varint format. The
// trace must be sorted by timestamp (Validate). Producers whose events
// do not fit in memory should use Encoder, which writes the identical
// byte stream incrementally.
func (t *Trace) WriteCompact(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to write invalid trace: %w", err)
	}
	enc, err := NewEncoder(w, t.Name, t.Duration, uint64(len(t.Events)))
	if err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return enc.Close()
}

// maxEventPrealloc caps the event capacity trusted from a stream header
// before any event bytes have been seen; larger traces grow by append.
const maxEventPrealloc = 1 << 20

// ReadCompact deserializes a trace written by WriteCompact. It
// materializes the whole event slice; use NewStream to replay traces
// too large to hold resident. Decoding is shared with Stream, so a
// malformed stream fails with the same positioned DecodeError on both
// paths.
func ReadCompact(r io.Reader) (*Trace, error) {
	s, err := NewStream(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: s.Name(), Duration: s.Duration()}
	if n := s.Events(); n > 0 {
		t.Events = make([]Event, 0, min(n, maxEventPrealloc))
	}
	for {
		e, err := s.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Events = append(t.Events, e)
	}
}

// Merge combines multiple traces into one time-ordered trace. Page ids
// are offset per input so the merged trace keeps pages distinct (the
// multiprogrammed-workload view of a shared memory). The merged
// duration is the maximum input duration.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	var pageBase uint32
	for _, tr := range traces {
		maxPage := tr.MaxPage()
		for _, e := range tr.Events {
			out.Events = append(out.Events, Event{Page: pageBase + e.Page, At: e.At})
		}
		if tr.Duration > out.Duration {
			out.Duration = tr.Duration
		}
		pageBase += uint32(maxPage + 1)
	}
	out.Sort()
	return out
}

// Slice returns the sub-trace covering [from, to), with timestamps
// rebased to zero. Pages keep their ids.
func (t *Trace) Slice(from, to Microseconds) *Trace {
	out := &Trace{Name: t.Name, Duration: to - from}
	for _, e := range t.Events {
		if e.At >= from && e.At < to {
			out.Events = append(out.Events, Event{Page: e.Page, At: e.At - from})
		}
	}
	return out
}

// FilterPages returns the sub-trace containing only events whose page
// satisfies keep.
func (t *Trace) FilterPages(keep func(page uint32) bool) *Trace {
	out := &Trace{Name: t.Name, Duration: t.Duration}
	for _, e := range t.Events {
		if keep(e.Page) {
			out.Events = append(out.Events, e)
		}
	}
	return out
}
