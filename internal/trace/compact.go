package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Compact (v2) trace format: delta/varint encoded. Timestamps are
// monotone, so storing per-event deltas in unsigned varints compresses
// long traces by 3-5x against the fixed-width v1 format — worthwhile for
// multi-minute, multi-million-event bus traces.

// compactMagic identifies the compact format.
const compactMagic = uint32(0x4d435443) // "MCTC"

// WriteCompact serializes the trace in the delta/varint format. The
// trace must be sorted by timestamp (Validate).
func (t *Trace) WriteCompact(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to write invalid trace: %w", err)
	}
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, compactMagic); err != nil {
		return fmt.Errorf("trace: writing magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.Duration)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	var prev Microseconds
	for _, e := range t.Events {
		if err := putUvarint(uint64(e.At - prev)); err != nil {
			return err
		}
		prev = e.At
		if err := putUvarint(uint64(e.Page)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCompact deserializes a trace written by WriteCompact.
func ReadCompact(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != compactMagic {
		return nil, ErrBadFormat
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: implausible name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t := &Trace{Name: string(name)}
	dur, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading duration: %w", err)
	}
	t.Duration = Microseconds(dur)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading event count: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrBadFormat, count)
	}
	t.Events = make([]Event, count)
	var prev Microseconds
	for i := range t.Events {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event %d delta: %w", i, err)
		}
		page, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event %d page: %w", i, err)
		}
		if page > 1<<32-1 {
			return nil, fmt.Errorf("%w: page %d overflows uint32", ErrBadFormat, page)
		}
		prev += Microseconds(delta)
		t.Events[i] = Event{Page: uint32(page), At: prev}
	}
	return t, nil
}

// Merge combines multiple traces into one time-ordered trace. Page ids
// are offset per input so the merged trace keeps pages distinct (the
// multiprogrammed-workload view of a shared memory). The merged
// duration is the maximum input duration.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	var pageBase uint32
	for _, tr := range traces {
		maxPage := tr.MaxPage()
		for _, e := range tr.Events {
			out.Events = append(out.Events, Event{Page: pageBase + e.Page, At: e.At})
		}
		if tr.Duration > out.Duration {
			out.Duration = tr.Duration
		}
		pageBase += uint32(maxPage + 1)
	}
	out.Sort()
	return out
}

// Slice returns the sub-trace covering [from, to), with timestamps
// rebased to zero. Pages keep their ids.
func (t *Trace) Slice(from, to Microseconds) *Trace {
	out := &Trace{Name: t.Name, Duration: to - from}
	for _, e := range t.Events {
		if e.At >= from && e.At < to {
			out.Events = append(out.Events, Event{Page: e.Page, At: e.At - from})
		}
	}
	return out
}

// FilterPages returns the sub-trace containing only events whose page
// satisfies keep.
func (t *Trace) FilterPages(keep func(page uint32) bool) *Trace {
	out := &Trace{Name: t.Name, Duration: t.Duration}
	for _, e := range t.Events {
		if keep(e.Page) {
			out.Events = append(out.Events, e)
		}
	}
	return out
}
