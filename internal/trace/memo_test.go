package trace

import (
	"testing"
)

func memoTrace() *Trace {
	tr := &Trace{Name: "memo", Duration: 10 * Second}
	for i := 0; i < 500; i++ {
		tr.Events = append(tr.Events, Event{Page: uint32(i % 37), At: Microseconds(i) * 1000})
	}
	tr.Sort()
	return tr
}

// TestAnalysisAccessorsAllocationFree is the satellite regression test:
// Pages/MaxPage/PageWrites memoize on the sorted trace, so repeated
// calls must not allocate (they used to build a fresh seen-map or
// per-page index every call).
func TestAnalysisAccessorsAllocationFree(t *testing.T) {
	tr := memoTrace()
	// Warm the memos.
	tr.Pages()
	tr.PageWrites()
	if n := testing.AllocsPerRun(100, func() {
		if tr.Pages() != 37 || tr.MaxPage() != 36 {
			t.Fatal("memoized stats wrong")
		}
	}); n != 0 {
		t.Errorf("Pages/MaxPage allocate %.1f times per call after warm-up, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if len(tr.PageWrites()) != 37 {
			t.Fatal("memoized index wrong")
		}
	}); n != 0 {
		t.Errorf("PageWrites allocates %.1f times per call after warm-up, want 0", n)
	}
}

// TestSortInvalidatesMemos pins the invalidation contract: mutate
// Events, Sort, and every accessor must see the new shape.
func TestSortInvalidatesMemos(t *testing.T) {
	tr := memoTrace()
	if got := tr.MaxPage(); got != 36 {
		t.Fatalf("MaxPage = %d, want 36", got)
	}
	if got := len(tr.PageWrites()[100]); got != 0 {
		t.Fatalf("page 100 has %d writes before it exists", got)
	}
	tr.Events = append(tr.Events, Event{Page: 100, At: 5 * Second})
	tr.Sort()
	if got := tr.MaxPage(); got != 100 {
		t.Errorf("MaxPage after Sort = %d, want 100", got)
	}
	if got := tr.Pages(); got != 38 {
		t.Errorf("Pages after Sort = %d, want 38", got)
	}
	if got := len(tr.PageWrites()[100]); got != 1 {
		t.Errorf("page 100 writes after Sort = %d, want 1", got)
	}
}

// TestAppendWritesPerPageReuse pins the sweep-friendly reusable form:
// the second fill reuses the first map's buckets, drops pages the new
// trace does not write, and matches a fresh build.
func TestAppendWritesPerPageReuse(t *testing.T) {
	a := &Trace{Duration: Second, Events: []Event{{Page: 1, At: 1}, {Page: 2, At: 2}, {Page: 1, At: 3}}}
	b := &Trace{Duration: Second, Events: []Event{{Page: 2, At: 5}, {Page: 3, At: 6}}}
	m := a.AppendWritesPerPage(nil)
	if len(m) != 2 || len(m[1]) != 2 {
		t.Fatalf("first fill = %v", m)
	}
	m = b.AppendWritesPerPage(m)
	want := b.WritesPerPage()
	if len(m) != len(want) {
		t.Fatalf("reuse fill = %v, want %v", m, want)
	}
	for p, times := range want {
		got := m[p]
		if len(got) != len(times) {
			t.Fatalf("page %d: %v, want %v", p, got, times)
		}
		for i := range times {
			if got[i] != times[i] {
				t.Fatalf("page %d: %v, want %v", p, got, times)
			}
		}
	}
	if _, ok := m[1]; ok {
		t.Error("page 1 survived the refill although trace b never writes it")
	}
}
