package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	t := &Trace{
		Name:     "sample",
		Duration: 10 * Second,
		Events: []Event{
			{Page: 1, At: 0},
			{Page: 2, At: 100},
			{Page: 1, At: 2 * Second},
			{Page: 3, At: 3 * Second},
			{Page: 1, At: 3 * Second},
		},
	}
	return t
}

func TestValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := &Trace{Events: []Event{{Page: 1, At: 5}, {Page: 1, At: 3}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order trace accepted")
	}
	neg := &Trace{Events: []Event{{Page: 1, At: -1}}}
	if err := neg.Validate(); err == nil {
		t.Error("negative timestamp accepted")
	}
	shortDur := &Trace{Duration: 1, Events: []Event{{Page: 1, At: 5}}}
	if err := shortDur.Validate(); err == nil {
		t.Error("duration shorter than events accepted")
	}
}

func TestSortStable(t *testing.T) {
	tr := &Trace{
		Duration: 100,
		Events: []Event{
			{Page: 9, At: 50},
			{Page: 1, At: 10},
			{Page: 2, At: 50},
		},
	}
	tr.Sort()
	if tr.Events[0].Page != 1 {
		t.Errorf("first event page = %d, want 1", tr.Events[0].Page)
	}
	// Stable: page 9 written before page 2 at the same timestamp.
	if tr.Events[1].Page != 9 || tr.Events[2].Page != 2 {
		t.Errorf("tie order not preserved: %+v", tr.Events)
	}
}

func TestPagesAndMaxPage(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Pages(); got != 3 {
		t.Errorf("Pages = %d, want 3", got)
	}
	if got := tr.MaxPage(); got != 3 {
		t.Errorf("MaxPage = %d, want 3", got)
	}
	empty := &Trace{}
	if got := empty.MaxPage(); got != -1 {
		t.Errorf("empty MaxPage = %d, want -1", got)
	}
}

func TestIntervals(t *testing.T) {
	tr := sampleTrace()
	// Page 1: writes at 0, 2s, 3s -> intervals 2000ms, 1000ms, trailing 7000ms.
	// Page 2: write at 100us -> trailing only.
	// Page 3: write at 3s -> trailing only.
	noTrail := tr.Intervals(false)
	if len(noTrail) != 2 {
		t.Fatalf("closed intervals = %v, want 2 entries", noTrail)
	}
	withTrail := tr.Intervals(true)
	if len(withTrail) != 5 {
		t.Fatalf("with trailing = %v, want 5 entries", withTrail)
	}
	var sum float64
	for _, iv := range withTrail {
		sum += iv
		if iv <= 0 {
			t.Errorf("non-positive interval %v", iv)
		}
	}
}

func TestWritesPerPage(t *testing.T) {
	tr := sampleTrace()
	m := tr.WritesPerPage()
	if len(m[1]) != 3 || len(m[2]) != 1 || len(m[3]) != 1 {
		t.Errorf("WritesPerPage = %v", m)
	}
	if m[1][0] != 0 || m[1][1] != 2*Second || m[1][2] != 3*Second {
		t.Errorf("page 1 times = %v", m[1])
	}
}

func TestHalveIntervals(t *testing.T) {
	tr := sampleTrace()
	h := tr.HalveIntervals()
	if err := h.Validate(); err != nil {
		t.Fatalf("halved trace invalid: %v", err)
	}
	if h.Duration != tr.Duration/2 {
		t.Errorf("halved duration = %d, want %d", h.Duration, tr.Duration/2)
	}
	m := h.WritesPerPage()
	// Page 1 gaps were 2s and 1s; halved to 1s and 0.5s.
	if got := m[1][1] - m[1][0]; got != Second {
		t.Errorf("halved first gap = %d, want 1s", got)
	}
	if got := m[1][2] - m[1][1]; got != Second/2 {
		t.Errorf("halved second gap = %d, want 0.5s", got)
	}
	if len(h.Events) != len(tr.Events) {
		t.Errorf("event count changed: %d -> %d", len(tr.Events), len(h.Events))
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Duration != tr.Duration || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	// Correct magic, wrong version.
	var buf bytes.Buffer
	tr := sampleTrace()
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xFF // clobber version
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("wrong version accepted")
	}
	// Truncated stream.
	if _, err := Read(bytes.NewReader(buf.Bytes()[:len(b)-4])); err == nil {
		t.Error("truncated stream accepted")
	}
}

// Property: Write/Read round-trips arbitrary traces.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop"}
		var at Microseconds
		for i := 0; i < int(n); i++ {
			at += Microseconds(rng.Intn(1000))
			tr.Events = append(tr.Events, Event{Page: uint32(rng.Intn(64)), At: at})
		}
		tr.Duration = at + 1
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Duration != tr.Duration || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: halving preserves per-page write counts and never produces
// an invalid trace.
func TestHalveIntervalsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop"}
		var at Microseconds
		for i := 0; i < int(n)+1; i++ {
			at += Microseconds(rng.Intn(100000))
			tr.Events = append(tr.Events, Event{Page: uint32(rng.Intn(8)), At: at})
		}
		tr.Duration = at + Microseconds(rng.Intn(100000))
		h := tr.HalveIntervals()
		if h.Validate() != nil {
			return false
		}
		orig := tr.WritesPerPage()
		halved := h.WritesPerPage()
		if len(orig) != len(halved) {
			return false
		}
		for p, times := range orig {
			if len(halved[p]) != len(times) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
