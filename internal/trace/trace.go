// Package trace defines the memory write-trace representation consumed
// by MEMCON's write-interval analysis and the PRIL predictor. A trace is
// the stream an HMTT-style bus tracer would produce, reduced to what the
// paper's analysis needs: (page, timestamp) pairs for every write request
// reaching DRAM.
//
// Timestamps are in microseconds: intra-burst write gaps are tens of
// microseconds while the intervals MEMCON exploits are hundreds of
// milliseconds, so microseconds cover both ends comfortably in an int64.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Microseconds is the trace time unit.
type Microseconds = int64

// Time conversion constants.
const (
	Millisecond Microseconds = 1000
	Second      Microseconds = 1000 * 1000
)

// Event is a single write request to a page.
type Event struct {
	// Page is the written page (one page maps to one DRAM row).
	Page uint32
	// At is the event timestamp.
	At Microseconds
}

// Trace is a time-ordered sequence of write events.
type Trace struct {
	// Name labels the workload that produced the trace.
	Name string
	// Duration is the traced execution time; it is at least the last
	// event timestamp.
	Duration Microseconds
	// Events are sorted by At (ties keep insertion order).
	Events []Event
}

// Sort orders events by timestamp, preserving the relative order of
// simultaneous events.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].At < t.Events[j].At })
}

// Validate checks internal consistency: sorted events, non-negative
// timestamps, and a duration covering all events.
func (t *Trace) Validate() error {
	var prev Microseconds
	for i, e := range t.Events {
		if e.At < 0 {
			return fmt.Errorf("trace: event %d has negative timestamp %d", i, e.At)
		}
		if e.At < prev {
			return fmt.Errorf("trace: event %d out of order (%d after %d)", i, e.At, prev)
		}
		prev = e.At
	}
	if len(t.Events) > 0 && t.Duration < prev {
		return fmt.Errorf("trace: duration %d shorter than last event %d", t.Duration, prev)
	}
	return nil
}

// Pages returns the number of distinct pages written in the trace.
func (t *Trace) Pages() int {
	seen := make(map[uint32]struct{})
	for _, e := range t.Events {
		seen[e.Page] = struct{}{}
	}
	return len(seen)
}

// MaxPage returns the largest page id written, or -1 for an empty trace.
func (t *Trace) MaxPage() int {
	max := -1
	for _, e := range t.Events {
		if int(e.Page) > max {
			max = int(e.Page)
		}
	}
	return max
}

// WritesPerPage returns, for each page, its time-ordered write
// timestamps.
func (t *Trace) WritesPerPage() map[uint32][]Microseconds {
	m := make(map[uint32][]Microseconds)
	for _, e := range t.Events {
		m[e.Page] = append(m[e.Page], e.At)
	}
	return m
}

// Intervals returns every write interval in the trace in milliseconds:
// for each page, the gaps between consecutive writes, plus the final
// open interval from the last write to the end of the trace (the paper's
// analysis counts the trailing idle time; it is what MEMCON exploits for
// pages written once). Pages are visited in ascending page order so the
// slice — and everything downstream of it, e.g. float accumulations in
// the interval experiments — is byte-stable across process runs.
func (t *Trace) Intervals(includeTrailing bool) []float64 {
	perPage := t.WritesPerPage()
	var out []float64
	for _, page := range sortedPages(perPage) {
		times := perPage[page]
		for i := 1; i < len(times); i++ {
			out = append(out, float64(times[i]-times[i-1])/float64(Millisecond))
		}
		if includeTrailing && t.Duration > times[len(times)-1] {
			out = append(out, float64(t.Duration-times[len(times)-1])/float64(Millisecond))
		}
	}
	return out
}

// sortedPages returns the map's keys in ascending order; iterating a
// Go map directly would leak the runtime's randomized order into
// results that must be reproducible.
func sortedPages(m map[uint32][]Microseconds) []uint32 {
	pages := make([]uint32, 0, len(m))
	for p := range m {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// HalveIntervals returns a copy of the trace with every write interval
// halved (the Fig. 19 cache-pressure sensitivity transform): for each
// page, gaps between consecutive writes are scaled by 0.5 while the
// first write time is kept; the duration is also halved so trailing
// intervals shrink proportionally.
func (t *Trace) HalveIntervals() *Trace {
	perPage := t.WritesPerPage()
	out := &Trace{Name: t.Name + "-halved", Duration: t.Duration / 2}
	for _, page := range sortedPages(perPage) {
		times := perPage[page]
		at := times[0] / 2
		out.Events = append(out.Events, Event{Page: page, At: at})
		for i := 1; i < len(times); i++ {
			at += (times[i] - times[i-1]) / 2
			out.Events = append(out.Events, Event{Page: page, At: at})
		}
	}
	out.Sort()
	if n := len(out.Events); n > 0 && out.Events[n-1].At > out.Duration {
		out.Duration = out.Events[n-1].At
	}
	return out
}

// magic identifies the binary trace format.
const magic = uint32(0x4d435452) // "MCTR"

// formatVersion is bumped on incompatible format changes.
const formatVersion = uint32(1)

// Write serializes the trace in the compact binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []interface{}{
		magic,
		formatVersion,
		uint32(len(t.Name)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("trace: writing header: %w", err)
		}
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return fmt.Errorf("trace: writing name: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Duration); err != nil {
		return fmt.Errorf("trace: writing duration: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Events))); err != nil {
		return fmt.Errorf("trace: writing event count: %w", err)
	}
	for _, e := range t.Events {
		if err := binary.Write(bw, binary.LittleEndian, e.Page); err != nil {
			return fmt.Errorf("trace: writing event: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, e.At); err != nil {
			return fmt.Errorf("trace: writing event: %w", err)
		}
	}
	return bw.Flush()
}

// ErrBadFormat indicates the reader input is not a trace stream of a
// supported version.
var ErrBadFormat = errors.New("trace: bad format")

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m, version, nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadFormat
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: implausible name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t := &Trace{Name: string(name)}
	if err := binary.Read(br, binary.LittleEndian, &t.Duration); err != nil {
		return nil, fmt.Errorf("trace: reading duration: %w", err)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading event count: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrBadFormat, count)
	}
	t.Events = make([]Event, count)
	for i := range t.Events {
		if err := binary.Read(br, binary.LittleEndian, &t.Events[i].Page); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &t.Events[i].At); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
	}
	return t, nil
}
