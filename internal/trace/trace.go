// Package trace defines the memory write-trace representation consumed
// by MEMCON's write-interval analysis and the PRIL predictor. A trace is
// the stream an HMTT-style bus tracer would produce, reduced to what the
// paper's analysis needs: (page, timestamp) pairs for every write request
// reaching DRAM.
//
// Timestamps are in microseconds: intra-burst write gaps are tens of
// microseconds while the intervals MEMCON exploits are hundreds of
// milliseconds, so microseconds cover both ends comfortably in an int64.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Microseconds is the trace time unit.
type Microseconds = int64

// Time conversion constants.
const (
	Millisecond Microseconds = 1000
	Second      Microseconds = 1000 * 1000
)

// Event is a single write request to a page.
type Event struct {
	// Page is the written page (one page maps to one DRAM row).
	Page uint32
	// At is the event timestamp.
	At Microseconds
}

// Trace is a time-ordered sequence of write events.
//
// The analysis accessors (Pages, MaxPage, PageWrites, Intervals) memoize
// their derived indexes on first use; Sort invalidates them. Mutating
// Events by hand after an accessor has run without calling Sort leaves
// the memos stale — generators should build Events, Sort, then analyse.
// Memoization is race-safe: concurrent readers of a shared trace (the
// experiment sweeps fan one trace out across workers) may all trigger
// the first computation, and one result wins.
type Trace struct {
	// Name labels the workload that produced the trace.
	Name string
	// Duration is the traced execution time; it is at least the last
	// event timestamp.
	Duration Microseconds
	// Events are sorted by At (ties keep insertion order).
	Events []Event

	// pageStats caches Pages/MaxPage; perPage caches the PageWrites
	// index. Both are write-once-per-generation pointers so concurrent
	// first calls race benignly (each computes the same value).
	pageStats atomic.Pointer[pageStats]
	perPage   atomic.Pointer[map[uint32][]Microseconds]
}

// pageStats is the memoized result of one page-space scan.
type pageStats struct {
	pages   int
	maxPage int
}

// Sort orders events by timestamp, preserving the relative order of
// simultaneous events, and invalidates the memoized analysis indexes.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].At < t.Events[j].At })
	t.pageStats.Store(nil)
	t.perPage.Store(nil)
}

// Validate checks internal consistency: sorted events, non-negative
// timestamps, and a duration covering all events.
func (t *Trace) Validate() error {
	var prev Microseconds
	for i, e := range t.Events {
		if e.At < 0 {
			return fmt.Errorf("trace: event %d has negative timestamp %d", i, e.At)
		}
		if e.At < prev {
			return fmt.Errorf("trace: event %d out of order (%d after %d)", i, e.At, prev)
		}
		prev = e.At
	}
	if len(t.Events) > 0 && t.Duration < prev {
		return fmt.Errorf("trace: duration %d shorter than last event %d", t.Duration, prev)
	}
	return nil
}

// stats returns the memoized page-space scan, computing it on first
// use. Distinct pages are counted with a bit vector over [0, MaxPage]
// rather than a map: one allocation per generation instead of one map
// per call.
func (t *Trace) stats() *pageStats {
	if s := t.pageStats.Load(); s != nil {
		return s
	}
	s := &pageStats{maxPage: -1}
	for _, e := range t.Events {
		if int(e.Page) > s.maxPage {
			s.maxPage = int(e.Page)
		}
	}
	if s.maxPage >= 0 {
		seen := make([]uint64, s.maxPage/64+1)
		for _, e := range t.Events {
			w, b := e.Page/64, e.Page%64
			if seen[w]&(1<<b) == 0 {
				seen[w] |= 1 << b
				s.pages++
			}
		}
	}
	t.pageStats.Store(s)
	return s
}

// Pages returns the number of distinct pages written in the trace. The
// result is memoized; repeated calls are allocation-free.
func (t *Trace) Pages() int { return t.stats().pages }

// MaxPage returns the largest page id written, or -1 for an empty
// trace. The result is memoized; repeated calls are allocation-free.
func (t *Trace) MaxPage() int { return t.stats().maxPage }

// WritesPerPage returns, for each page, its time-ordered write
// timestamps. The returned map is a fresh copy the caller owns; use
// PageWrites for the shared memoized index, or AppendWritesPerPage to
// reuse a map across traces.
func (t *Trace) WritesPerPage() map[uint32][]Microseconds {
	return t.AppendWritesPerPage(nil)
}

// AppendWritesPerPage fills m with the per-page time-ordered write
// timestamps and returns it, reusing m's buckets and slice capacity
// when the page sets overlap — the form for sweeps that index one
// trace after another. A nil m allocates a fresh map.
func (t *Trace) AppendWritesPerPage(m map[uint32][]Microseconds) map[uint32][]Microseconds {
	if m == nil {
		m = make(map[uint32][]Microseconds)
	}
	for p, times := range m {
		m[p] = times[:0]
	}
	for _, e := range t.Events {
		m[e.Page] = append(m[e.Page], e.At)
	}
	for p, times := range m {
		if len(times) == 0 {
			delete(m, p)
		}
	}
	return m
}

// PageWrites returns the memoized per-page write-timestamp index. The
// map and its slices are shared: callers must treat them as read-only.
// The first call builds the index; repeated calls (Intervals,
// HalveIntervals, and read-skip analysis all consume it) are free.
func (t *Trace) PageWrites() map[uint32][]Microseconds {
	if m := t.perPage.Load(); m != nil {
		return *m
	}
	m := t.AppendWritesPerPage(nil)
	t.perPage.Store(&m)
	return m
}

// Intervals returns every write interval in the trace in milliseconds:
// for each page, the gaps between consecutive writes, plus the final
// open interval from the last write to the end of the trace (the paper's
// analysis counts the trailing idle time; it is what MEMCON exploits for
// pages written once). Pages are visited in ascending page order so the
// slice — and everything downstream of it, e.g. float accumulations in
// the interval experiments — is byte-stable across process runs.
func (t *Trace) Intervals(includeTrailing bool) []float64 {
	perPage := t.PageWrites()
	var out []float64
	for _, page := range sortedPages(perPage) {
		times := perPage[page]
		for i := 1; i < len(times); i++ {
			out = append(out, float64(times[i]-times[i-1])/float64(Millisecond))
		}
		if includeTrailing && t.Duration > times[len(times)-1] {
			out = append(out, float64(t.Duration-times[len(times)-1])/float64(Millisecond))
		}
	}
	return out
}

// sortedPages returns the map's keys in ascending order; iterating a
// Go map directly would leak the runtime's randomized order into
// results that must be reproducible.
func sortedPages(m map[uint32][]Microseconds) []uint32 {
	pages := make([]uint32, 0, len(m))
	for p := range m {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// HalveIntervals returns a copy of the trace with every write interval
// halved (the Fig. 19 cache-pressure sensitivity transform): for each
// page, gaps between consecutive writes are scaled by 0.5 while the
// first write time is kept; the duration is also halved so trailing
// intervals shrink proportionally.
func (t *Trace) HalveIntervals() *Trace {
	perPage := t.PageWrites()
	out := &Trace{Name: t.Name + "-halved", Duration: t.Duration / 2}
	for _, page := range sortedPages(perPage) {
		times := perPage[page]
		at := times[0] / 2
		out.Events = append(out.Events, Event{Page: page, At: at})
		for i := 1; i < len(times); i++ {
			at += (times[i] - times[i-1]) / 2
			out.Events = append(out.Events, Event{Page: page, At: at})
		}
	}
	out.Sort()
	if n := len(out.Events); n > 0 && out.Events[n-1].At > out.Duration {
		out.Duration = out.Events[n-1].At
	}
	return out
}

// magic identifies the binary trace format.
const magic = uint32(0x4d435452) // "MCTR"

// formatVersion is bumped on incompatible format changes.
const formatVersion = uint32(1)

// Write serializes the trace in the compact binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []interface{}{
		magic,
		formatVersion,
		uint32(len(t.Name)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("trace: writing header: %w", err)
		}
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return fmt.Errorf("trace: writing name: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Duration); err != nil {
		return fmt.Errorf("trace: writing duration: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Events))); err != nil {
		return fmt.Errorf("trace: writing event count: %w", err)
	}
	for _, e := range t.Events {
		if err := binary.Write(bw, binary.LittleEndian, e.Page); err != nil {
			return fmt.Errorf("trace: writing event: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, e.At); err != nil {
			return fmt.Errorf("trace: writing event: %w", err)
		}
	}
	return bw.Flush()
}

// ErrBadFormat indicates the reader input is not a trace stream of a
// supported version.
var ErrBadFormat = errors.New("trace: bad format")

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m, version, nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadFormat
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: implausible name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t := &Trace{Name: string(name)}
	if err := binary.Read(br, binary.LittleEndian, &t.Duration); err != nil {
		return nil, fmt.Errorf("trace: reading duration: %w", err)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading event count: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrBadFormat, count)
	}
	t.Events = make([]Event, count)
	for i := range t.Events {
		if err := binary.Read(br, binary.LittleEndian, &t.Events[i].Page); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &t.Events[i].At); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
	}
	return t, nil
}
