package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// buildCompact hand-assembles a compact stream from raw header fields
// and pre-encoded event varints, so tests can express malformed inputs
// the Encoder refuses to produce.
func buildCompact(name string, duration uint64, count uint64, events ...uint64) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, compactMagic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		b.Write(tmp[:n])
	}
	put(uint64(len(name)))
	b.WriteString(name)
	put(duration)
	put(count)
	for _, v := range events {
		put(v)
	}
	return b.Bytes()
}

func streamSampleTrace() *Trace {
	return &Trace{
		Name:     "sample",
		Duration: 5 * Second,
		Events: []Event{
			{Page: 3, At: 10},
			{Page: 0, At: 10},
			{Page: 9, At: 4000},
			{Page: 3, At: 2 * Second},
		},
	}
}

func TestStreamMatchesReadCompact(t *testing.T) {
	tr := streamSampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCompact(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	got, err := ReadCompact(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != tr.Name || s.Duration() != tr.Duration || s.Events() != uint64(len(tr.Events)) {
		t.Fatalf("stream header = (%q, %d, %d), want (%q, %d, %d)",
			s.Name(), s.Duration(), s.Events(), tr.Name, tr.Duration, len(tr.Events))
	}
	var streamed []Event
	for {
		e, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, e)
	}
	if len(streamed) != len(got.Events) {
		t.Fatalf("stream yielded %d events, ReadCompact %d", len(streamed), len(got.Events))
	}
	for i := range streamed {
		if streamed[i] != got.Events[i] {
			t.Fatalf("event %d: stream %+v != materialized %+v", i, streamed[i], got.Events[i])
		}
	}
	// Next after EOF keeps returning EOF.
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("Next after end = %v, want io.EOF", err)
	}
}

func TestTraceSourceCursor(t *testing.T) {
	tr := streamSampleTrace()
	tr.Sort()
	src := tr.Source()
	if src.Name() != tr.Name || src.Duration() != tr.Duration {
		t.Fatalf("cursor header = (%q, %d)", src.Name(), src.Duration())
	}
	for i := range tr.Events {
		e, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if e != tr.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, tr.Events[i])
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("exhausted cursor = %v, want io.EOF", err)
	}
}

// TestCompactDecodeErrors is the satellite table test: truncated and
// overflowing inputs must fail with a positioned DecodeError — on both
// the streaming and the materializing path — rather than wrapping
// silently or reporting a clean end.
func TestCompactDecodeErrors(t *testing.T) {
	valid := buildCompact("t", 100, 2, 5, 1, 10, 2) // events at 5/page1, 15/page2
	cases := []struct {
		name      string
		input     []byte
		wantEvent int64 // expected DecodeError.Event
		wantIs    error // expected errors.Is target (nil = any)
	}{
		{
			name:      "delta overflows int64",
			input:     buildCompact("t", 100, 1, math.MaxUint64, 0),
			wantEvent: 0,
			wantIs:    ErrBadFormat,
		},
		{
			name: "running timestamp overflows",
			// First event lands at MaxInt64-1; the second delta of 2
			// would wrap negative.
			input:     buildCompact("t", 100, 2, math.MaxInt64-1, 0, 2, 0),
			wantEvent: 1,
			wantIs:    ErrBadFormat,
		},
		{
			name:      "page overflows uint32",
			input:     buildCompact("t", 100, 1, 0, 1<<33),
			wantEvent: 0,
			wantIs:    ErrBadFormat,
		},
		{
			name:      "truncated mid-event",
			input:     valid[:len(valid)-1],
			wantEvent: 1,
			wantIs:    io.ErrUnexpectedEOF,
		},
		{
			name:      "truncated before events",
			input:     buildCompact("t", 100, 2),
			wantEvent: 0,
			wantIs:    io.ErrUnexpectedEOF,
		},
		{
			name:      "truncated header",
			input:     valid[:5],
			wantEvent: -1,
			wantIs:    io.ErrUnexpectedEOF,
		},
		{
			name:      "implausible event count",
			input:     buildCompact("t", 100, 1<<33),
			wantEvent: -1,
			wantIs:    ErrBadFormat,
		},
		{
			name:      "duration overflows int64",
			input:     buildCompact("t", math.MaxUint64, 0),
			wantEvent: -1,
			wantIs:    ErrBadFormat,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCompact(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatal("ReadCompact accepted malformed input")
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %v (%T) is not a *DecodeError", err, err)
			}
			if de.Event != tc.wantEvent {
				t.Errorf("DecodeError.Event = %d, want %d (err: %v)", de.Event, tc.wantEvent, err)
			}
			if de.Offset <= 0 {
				t.Errorf("DecodeError.Offset = %d, want positive (err: %v)", de.Offset, err)
			}
			if tc.wantIs != nil && !errors.Is(err, tc.wantIs) {
				t.Errorf("errors.Is(%v, %v) = false", err, tc.wantIs)
			}
			if !strings.Contains(err.Error(), "offset") {
				t.Errorf("error %q does not mention the offset", err)
			}
		})
	}
}

func TestEncoderMatchesWriteCompact(t *testing.T) {
	tr := streamSampleTrace()
	tr.Sort()
	var want bytes.Buffer
	if err := tr.WriteCompact(&want); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	enc, err := NewEncoder(&got, tr.Name, tr.Duration, uint64(len(tr.Events)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("encoder output differs from WriteCompact (%d vs %d bytes)", got.Len(), want.Len())
	}
}

func TestEncoderRejectsMisuse(t *testing.T) {
	var b bytes.Buffer
	enc, err := NewEncoder(&b, "t", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err == nil {
		t.Error("Close accepted an unmet event count")
	}
	if err := enc.Encode(Event{Page: 1, At: 10}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Event{Page: 1, At: 5}); err == nil {
		t.Error("Encode accepted an out-of-order event")
	}
	if err := enc.Encode(Event{Page: 2, At: 20}); err == nil {
		t.Error("Encode accepted an event beyond the declared count")
	}
}

func TestReadAuto(t *testing.T) {
	tr := streamSampleTrace()
	tr.Sort()
	var v1, v2 bytes.Buffer
	if err := tr.Write(&v1); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCompact(&v2); err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{"v1": v1.Bytes(), "compact": v2.Bytes()} {
		got, err := ReadAuto(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != tr.Name || len(got.Events) != len(tr.Events) {
			t.Fatalf("%s: read %q/%d events", name, got.Name, len(got.Events))
		}
	}
	if _, err := ReadAuto(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("garbage = %v, want ErrBadFormat", err)
	}
}

// FuzzStream cross-checks the two decode paths on arbitrary bytes:
// they must agree on accept/reject, and on accepted inputs the decoded
// events must match and the re-encode must be byte-identical up to the
// consumed prefix.
func FuzzStream(f *testing.F) {
	f.Add(buildCompact("t", 100, 2, 5, 1, 10, 2))
	f.Add(buildCompact("", 0, 0))
	f.Add(buildCompact("x", math.MaxInt64, 1, math.MaxInt64, 0))
	f.Add([]byte("MCTC garbage"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, rcErr := ReadCompact(bytes.NewReader(raw))

		var streamed []Event
		s, sErr := NewStream(bytes.NewReader(raw))
		if sErr == nil {
			for {
				e, err := s.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					sErr = err
					break
				}
				streamed = append(streamed, e)
			}
		}

		if (rcErr == nil) != (sErr == nil) {
			t.Fatalf("paths disagree: ReadCompact err=%v, Stream err=%v", rcErr, sErr)
		}
		if rcErr != nil {
			return
		}
		if len(streamed) != len(tr.Events) {
			t.Fatalf("stream %d events, ReadCompact %d", len(streamed), len(tr.Events))
		}
		for i := range streamed {
			if streamed[i] != tr.Events[i] {
				t.Fatalf("event %d: %+v != %+v", i, streamed[i], tr.Events[i])
			}
		}
		// Re-encoding the decoded trace and decoding again must
		// round-trip losslessly, and the re-encode must be a canonical
		// fixed point: encode(decode(encode(x))) == encode(x). (A plain
		// prefix check against raw would be too strong — ReadUvarint
		// tolerates non-minimal varints the canonical encoder never
		// emits.)
		first := encodeCompact(t, tr)
		again, err := ReadCompact(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if again.Name != tr.Name || again.Duration != tr.Duration || len(again.Events) != len(tr.Events) {
			t.Fatalf("round-trip changed the trace: %q/%d/%d vs %q/%d/%d",
				again.Name, again.Duration, len(again.Events), tr.Name, tr.Duration, len(tr.Events))
		}
		for i := range again.Events {
			if again.Events[i] != tr.Events[i] {
				t.Fatalf("round-trip changed event %d: %+v != %+v", i, again.Events[i], tr.Events[i])
			}
		}
		if second := encodeCompact(t, again); !bytes.Equal(first, second) {
			t.Fatalf("re-encode is not a fixed point:\n first  %x\n second %x", first, second)
		}
	})
}

// encodeCompact encodes through the streaming Encoder and returns the
// bytes.
func encodeCompact(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var b bytes.Buffer
	enc, err := NewEncoder(&b, tr.Name, tr.Duration, uint64(len(tr.Events)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}
