package memctrl

import (
	"fmt"
	"math/rand"

	"memcon/internal/dram"
)

// DIMM models a multi-rank module: each rank is an independent
// Controller, and REF windows are STAGGERED across ranks so that while
// one rank is refreshing, requests can still be served by the others.
// Rank-level parallelism is one of the standard levers against refresh
// overhead (the paper's related work, e.g. refresh pausing and elastic
// refresh, exploits the same slack); modelling it lets the `abl` suite
// quantify how much of MEMCON's benefit survives on multi-rank systems.
type DIMM struct {
	ranks []*Controller
	rng   *rand.Rand
}

// NewDIMM builds a module with `ranks` ranks of the given per-rank
// configuration. Each rank's REF schedule is offset by
// period*i/ranks — the staggering a rank-aware controller applies.
func NewDIMM(ranks int, cfg Config) (*DIMM, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("memctrl: rank count must be positive, got %d", ranks)
	}
	d := &DIMM{rng: rand.New(rand.NewSource(cfg.Seed ^ 0xd1))}
	for i := 0; i < ranks; i++ {
		rankCfg := cfg
		rankCfg.Seed = cfg.Seed + int64(i)*131
		ctrl, err := New(rankCfg)
		if err != nil {
			return nil, err
		}
		// Stagger this rank's refresh schedule.
		ctrl.refreshOffset = cfg.RefreshPeriod * dram.Nanoseconds(i) / dram.Nanoseconds(ranks)
		d.ranks = append(d.ranks, ctrl)
	}
	return d, nil
}

// Ranks returns the rank count.
func (d *DIMM) Ranks() int { return len(d.ranks) }

// Access serves a request on the addressed rank.
func (d *DIMM) Access(at dram.Nanoseconds, rank, bank, row int, write bool) (dram.Nanoseconds, error) {
	if rank < 0 || rank >= len(d.ranks) {
		return 0, fmt.Errorf("memctrl: rank %d outside [0,%d)", rank, len(d.ranks))
	}
	return d.ranks[rank].Access(at, bank, row, write)
}

// AccessInterleaved serves a request on a hash-selected rank — the
// default address interleaving that spreads traffic across ranks. The
// hash mixes bits properly: a linear combination of bank and row would
// alias for strided access patterns.
func (d *DIMM) AccessInterleaved(at dram.Nanoseconds, bank, row int, write bool) (dram.Nanoseconds, error) {
	x := uint64(bank)<<32 ^ uint64(uint32(row))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	rank := int(x % uint64(len(d.ranks)))
	return d.ranks[rank].Access(at, bank, row, write)
}

// Stats sums the per-rank statistics.
func (d *DIMM) Stats() Stats {
	var s Stats
	for _, r := range d.ranks {
		rs := r.Stats()
		s.Requests += rs.Requests
		s.RowHits += rs.RowHits
		s.RowMisses += rs.RowMisses
		s.TestBusies += rs.TestBusies
		s.TotalLatency += rs.TotalLatency
	}
	return s
}
