package memctrl

import (
	"testing"

	"memcon/internal/dram"
)

func TestNewDIMMValidation(t *testing.T) {
	if _, err := NewDIMM(0, DefaultConfig()); err == nil {
		t.Error("zero ranks accepted")
	}
	bad := DefaultConfig()
	bad.Banks = 0
	if _, err := NewDIMM(2, bad); err == nil {
		t.Error("invalid rank config accepted")
	}
}

func TestDIMMAccessValidation(t *testing.T) {
	d, err := NewDIMM(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Access(0, -1, 0, 0, false); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := d.Access(0, 2, 0, 0, false); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if d.Ranks() != 2 {
		t.Errorf("Ranks = %d", d.Ranks())
	}
}

func TestDIMMStatsAggregate(t *testing.T) {
	d, _ := NewDIMM(2, DefaultConfig())
	for i := 0; i < 10; i++ {
		if _, err := d.Access(dram.Nanoseconds(i)*1000, i%2, i%8, i, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().Requests; got != 10 {
		t.Errorf("aggregated requests = %d, want 10", got)
	}
}

// The point of rank staggering: at high density and aggressive refresh,
// a 2-rank module with staggered REF serves interleaved traffic with
// lower average latency than a single rank, because an in-REF rank's
// load can land on the other rank's open window.
func TestStaggeredRefreshReducesLatency(t *testing.T) {
	run := func(ranks int) float64 {
		cfg := DefaultConfig()
		cfg.Density = dram.Density32Gb
		d, err := NewDIMM(ranks, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		var n int
		at := dram.Nanoseconds(0)
		for i := 0; i < 4000; i++ {
			at += 90
			done, err := d.AccessInterleaved(at, i%8, i*7, i%4 == 0)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(done - at)
			n++
		}
		return total / float64(n)
	}
	one := run(1)
	two := run(2)
	if two >= one {
		t.Errorf("2-rank staggered latency %v not below 1-rank %v", two, one)
	}
}

func TestRefreshOffsetShiftsWindows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Density = dram.Density32Gb // tRFC 1600, period 1953
	ctrl, _ := New(cfg)
	ctrl.refreshOffset = 1700 // window [1700, 3300)
	// A request at t=100 is before the first shifted window: unblocked.
	done, err := ctrl.Access(100, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	tm := cfg.Timing
	if done != 100+tm.TRP+tm.TRCD+tm.CL+tm.TCCD {
		t.Errorf("pre-window request delayed: done %d", done)
	}
	// A request at t=1800 is inside the shifted window: waits to 3300.
	done, err = ctrl.Access(1800, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if done < 3300 {
		t.Errorf("in-window request finished at %d, inside shifted REF", done)
	}
}
