package memctrl

import (
	"math"
	"testing"

	"memcon/internal/dram"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := DefaultConfig()
	c.Banks = 0
	if err := c.Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	c = DefaultConfig()
	c.RefreshPeriod = 0
	if err := c.Validate(); err == nil {
		t.Error("zero refresh period accepted")
	}
	c = DefaultConfig()
	c.RefreshPeriod = c.Density.TRFC()
	if err := c.Validate(); err == nil {
		t.Error("refresh period <= tRFC accepted (rank never available)")
	}
	c = DefaultConfig()
	c.TestsPerWindow = -1
	if err := c.Validate(); err == nil {
		t.Error("negative tests accepted")
	}
	c = DefaultConfig()
	c.TestsPerWindow = 10
	c.TestWindow = 0
	if err := c.Validate(); err == nil {
		t.Error("zero test window with tests accepted")
	}
	c = DefaultConfig()
	c.TestsPerWindow = 10
	c.TestRowCycles = 5
	if err := c.Validate(); err == nil {
		t.Error("bad row cycles accepted")
	}
}

func TestAccessRowHitVsMiss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = dram.Second // effectively no refresh interference after t=tRFC
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm := cfg.Timing
	base := dram.Second / 2 // far from any refresh window

	// First access to a bank: row miss.
	done1, err := ctrl.Access(base, 0, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	missLatency := tm.TRP + tm.TRCD + tm.CL + tm.TCCD
	if done1 != base+missLatency {
		t.Errorf("miss completion = %d, want %d", done1-base, missLatency)
	}
	// Same row again: hit, shorter.
	done2, err := ctrl.Access(done1, 0, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	hitLatency := tm.CL + tm.TCCD
	if done2 != done1+hitLatency {
		t.Errorf("hit completion = %d, want %d", done2-done1, hitLatency)
	}
	st := ctrl.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAccessBankQueueing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = dram.Second
	ctrl, _ := New(cfg)
	base := dram.Second / 2
	done1, _ := ctrl.Access(base, 3, 1, false)
	// Second request to the same bank arrives immediately: it queues
	// behind the first.
	done2, _ := ctrl.Access(base+1, 3, 1, false)
	if done2 <= done1 {
		t.Errorf("queued request finished at %d, not after %d", done2, done1)
	}
	// A request to a different bank at the same time does not queue.
	done3, _ := ctrl.Access(base+1, 4, 1, false)
	if done3 >= done2 {
		t.Errorf("different-bank request should not queue: %d vs %d", done3, done2)
	}
}

func TestAccessRefreshBlocking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Density = dram.Density32Gb // tRFC = 1600 ns
	cfg.RefreshPeriod = 10000      // refresh windows at 0, 10 us, ...
	ctrl, _ := New(cfg)
	// Arrive in the middle of the first refresh window.
	done, err := ctrl.Access(800, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if done < 1600 {
		t.Errorf("request completed at %d, inside the refresh window", done)
	}
	// Arrive outside a window: no extra delay beyond service.
	done2, _ := ctrl.Access(5000, 1, 1, false)
	tm := cfg.Timing
	if done2 != 5000+tm.TRP+tm.TRCD+tm.CL+tm.TCCD {
		t.Errorf("unblocked request delayed: done at %d", done2)
	}
}

func TestAccessErrors(t *testing.T) {
	ctrl, _ := New(DefaultConfig())
	if _, err := ctrl.Access(0, -1, 0, false); err == nil {
		t.Error("negative bank accepted")
	}
	if _, err := ctrl.Access(0, 8, 0, false); err == nil {
		t.Error("out-of-range bank accepted")
	}
}

func TestWriteUsesCWL(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = dram.Second
	ctrl, _ := New(cfg)
	base := dram.Second / 2
	doneW, _ := ctrl.Access(base, 0, 1, true)
	ctrl2, _ := New(cfg)
	doneR, _ := ctrl2.Access(base, 0, 1, false)
	tm := cfg.Timing
	if doneW-doneR != tm.CWL-tm.CL {
		t.Errorf("write/read completion delta = %d, want %d", doneW-doneR, tm.CWL-tm.CL)
	}
}

func TestRefreshBusyFraction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Density = dram.Density32Gb
	cfg.RefreshPeriod = dram.TREFI(dram.RefreshWindowAggressive) // 1953 ns
	ctrl, _ := New(cfg)
	got := ctrl.RefreshBusyFraction()
	want := 1600.0 / 1953.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("busy fraction = %v, want %v", got, want)
	}
	// This is the paper's core scaling argument: at 32 Gb and 16 ms
	// refresh, the rank is blocked for most of the time.
	if got < 0.5 {
		t.Errorf("32Gb @16ms busy fraction = %v, expected majority of time", got)
	}
}

func TestTestTrafficInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshPeriod = dram.Second
	cfg.TestsPerWindow = 64
	cfg.TestWindow = dram.Millisecond
	ctrl, _ := New(cfg)
	// Touch the controller late enough that several windows have passed.
	if _, err := ctrl.Access(5*dram.Millisecond, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	st := ctrl.Stats()
	// Windows 0..5 ms inject 6 windows of 64 tests.
	if st.TestBusies < 5*64 {
		t.Errorf("test busies = %d, want >= %d", st.TestBusies, 5*64)
	}
}

func TestTestTrafficSlowsPrograms(t *testing.T) {
	run := func(tests int) dram.Nanoseconds {
		cfg := DefaultConfig()
		cfg.RefreshPeriod = dram.Second
		cfg.TestsPerWindow = tests
		cfg.TestWindow = dram.Millisecond
		cfg.Seed = 3
		ctrl, _ := New(cfg)
		var total dram.Nanoseconds
		at := dram.Nanoseconds(2 * dram.Millisecond)
		for i := 0; i < 2000; i++ {
			done, err := ctrl.Access(at, i%cfg.Banks, i, false)
			if err != nil {
				panic(err)
			}
			total += done - at
			at += 100
		}
		return total
	}
	clean := run(0)
	loaded := run(500)
	if loaded <= clean {
		t.Errorf("heavy test traffic did not increase total latency: %d vs %d", loaded, clean)
	}
}

func TestStretchedRefreshPeriod(t *testing.T) {
	p, err := StretchedRefreshPeriod(dram.RefreshWindowAggressive, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	// 75% reduction of a 16 ms-window refresh: period 4x = 7812 ns.
	if p != 4*dram.TREFI(dram.RefreshWindowAggressive) {
		t.Errorf("stretched period = %d, want %d", p, 4*dram.TREFI(dram.RefreshWindowAggressive))
	}
	if _, err := StretchedRefreshPeriod(dram.RefreshWindowAggressive, 1.0); err == nil {
		t.Error("reduction of 1.0 accepted")
	}
	if _, err := StretchedRefreshPeriod(dram.RefreshWindowAggressive, -0.1); err == nil {
		t.Error("negative reduction accepted")
	}
}

// Monotonicity: lowering the refresh rate (longer REF period) never
// hurts program latency.
func TestLongerRefreshPeriodNeverHurts(t *testing.T) {
	run := func(period dram.Nanoseconds) dram.Nanoseconds {
		cfg := DefaultConfig()
		cfg.Density = dram.Density32Gb
		cfg.RefreshPeriod = period
		ctrl, _ := New(cfg)
		var total dram.Nanoseconds
		at := dram.Nanoseconds(0)
		for i := 0; i < 5000; i++ {
			done, err := ctrl.Access(at, i%8, i/8, false)
			if err != nil {
				panic(err)
			}
			total += done - at
			at += 50
		}
		return total
	}
	aggressive := run(dram.TREFI(dram.RefreshWindowAggressive))
	relaxed := run(4 * dram.TREFI(dram.RefreshWindowAggressive))
	if relaxed > aggressive {
		t.Errorf("relaxed refresh increased latency: %d vs %d", relaxed, aggressive)
	}
	if aggressive <= relaxed {
		// At 32 Gb the difference must be substantial, not marginal.
		ratio := float64(aggressive) / float64(relaxed)
		if ratio < 1.5 {
			t.Errorf("latency ratio %v, expected large refresh penalty at 32Gb", ratio)
		}
	}
}
