// Package memctrl is an event-driven model of a single-channel DDR3
// memory system: per-bank row-buffer state machines, all-bank refresh
// that blocks the rank for tRFC every tREFI, and MEMCON's test-traffic
// injection. It supplies the memory-latency side of the performance
// evaluation (Fig. 15/16, Table 3): the first-order effects are the
// fraction of time the rank is unavailable behind REF commands (which
// grows with chip density through tRFC) and the bandwidth consumed by
// online testing.
package memctrl

import (
	"fmt"
	"math/rand"

	"memcon/internal/dram"
	"memcon/internal/refresh"
)

// Config parameterizes the memory system.
type Config struct {
	// Timing supplies command latencies.
	Timing dram.Timing
	// Banks is the number of banks in the rank.
	Banks int
	// Density sets tRFC.
	Density dram.Density
	// RefreshPeriod is the interval between REF commands (tREFI). For an
	// all-rows 16 ms refresh window this is 1.95 µs; refresh-reduction
	// schemes stretch it (a 75% reduction means one REF per 7.8 µs).
	RefreshPeriod dram.Nanoseconds
	// TestsPerWindow injects MEMCON test traffic: each test occupies a
	// random bank for two (Read-and-Compare) or three (Copy-and-Compare)
	// full row cycles during every TestWindow.
	TestsPerWindow int
	// TestWindow is the period over which TestsPerWindow tests run
	// (64 ms in the paper).
	TestWindow dram.Nanoseconds
	// TestRowCycles is the number of row cycles per test (2 for
	// Read-and-Compare, 3 for Copy-and-Compare).
	TestRowCycles int
	// RefreshPostponeProb is the probability that a request arriving
	// inside a REF window does not wait because the controller had
	// postponed that REF to an idle period (elastic/flexible refresh
	// scheduling, which JEDEC permits for up to 8 REF commands). 0
	// models a rigid controller.
	RefreshPostponeProb float64
	// Seed drives test-traffic placement and any model randomness.
	Seed int64
	// Rows, when positive, enables per-row activation accounting for
	// RowHammer co-simulation: every row miss and every injected-test row
	// cycle counts as an ACT against its row within the current hammer
	// window (one full refresh cycle, RefreshPeriod*8192 — the span over
	// which every row is refreshed once, so per-row disturbance resets).
	// 0 — the default — disables tracking and adds no per-access work.
	Rows int
	// Mitigation, when non-nil, is a RowHammer mitigation policy
	// consulted on every tracked activation; the extra neighbour-refresh
	// operations it issues accumulate in Stats.MitigationOps for the
	// cost model to price. Requires Rows > 0.
	Mitigation refresh.Mitigation
}

// DefaultConfig returns a DDR3-1600, 8-bank, 8 Gb configuration with an
// aggressive all-rows 16 ms refresh and no test traffic.
func DefaultConfig() Config {
	return Config{
		Timing:        dram.DDR31600(),
		Banks:         8,
		Density:       dram.Density8Gb,
		RefreshPeriod: dram.TREFI(dram.RefreshWindowAggressive),
		TestWindow:    64 * dram.Millisecond,
		TestRowCycles: 2,
		Seed:          1,
	}
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("memctrl: bank count must be positive, got %d", c.Banks)
	}
	if c.RefreshPeriod <= 0 {
		return fmt.Errorf("memctrl: refresh period must be positive, got %d", c.RefreshPeriod)
	}
	if c.RefreshPeriod <= c.Density.TRFC() {
		return fmt.Errorf("memctrl: refresh period %d not above tRFC %d; rank would never be available",
			c.RefreshPeriod, c.Density.TRFC())
	}
	if c.TestsPerWindow < 0 {
		return fmt.Errorf("memctrl: tests per window cannot be negative, got %d", c.TestsPerWindow)
	}
	if c.TestsPerWindow > 0 && c.TestWindow <= 0 {
		return fmt.Errorf("memctrl: test window must be positive when tests are injected, got %d", c.TestWindow)
	}
	if c.TestsPerWindow > 0 && (c.TestRowCycles < 2 || c.TestRowCycles > 3) {
		return fmt.Errorf("memctrl: test row cycles must be 2 or 3, got %d", c.TestRowCycles)
	}
	if c.RefreshPostponeProb < 0 || c.RefreshPostponeProb > 1 {
		return fmt.Errorf("memctrl: refresh postpone probability %v outside [0,1]", c.RefreshPostponeProb)
	}
	if c.Rows < 0 {
		return fmt.Errorf("memctrl: row count cannot be negative, got %d", c.Rows)
	}
	if c.Mitigation != nil && c.Rows == 0 {
		return fmt.Errorf("memctrl: mitigation %q requires activation tracking (Rows > 0)", c.Mitigation.Name())
	}
	return nil
}

// Stats aggregates controller activity.
type Stats struct {
	Requests     int64
	RowHits      int64
	RowMisses    int64
	TestBusies   int64
	TotalLatency dram.Nanoseconds

	// Activation accounting (populated only when Config.Rows > 0):
	// Activations counts tracked ACT commands (row misses plus injected
	// test row cycles), TestActivations the test-attributable subset.
	Activations     int64
	TestActivations int64
	// MaxRowActivations is the largest single-row activation count
	// observed within any hammer window — the worst hammer any row's
	// neighbours endured.
	MaxRowActivations int64
	// HammerWindows counts the hammer-window boundaries (full refresh
	// cycles) the activation stream crossed.
	HammerWindows int64
	// MitigationOps counts the extra neighbour-refresh operations the
	// configured mitigation policy issued.
	MitigationOps int64
}

// Controller simulates the memory system. It is single-goroutine: the
// system simulator serializes request arrivals by time.
type Controller struct {
	cfg  Config
	trfc dram.Nanoseconds

	bankBusyUntil []dram.Nanoseconds
	bankOpenRow   []int

	// refreshOffset shifts this controller's REF schedule (rank
	// staggering on multi-rank DIMMs).
	refreshOffset dram.Nanoseconds

	// Test traffic: tests are injected one by one in time order at an
	// average spacing of TestWindow/TestsPerWindow with jitter.
	rng        *rand.Rand
	nextTestAt dram.Nanoseconds

	// Activation accounting (Config.Rows > 0). Test-row placement draws
	// from its own RNG stream: c.rng's draw sequence is pinned by the
	// latency goldens and must not shift when tracking is enabled.
	testRNG   *rand.Rand
	windowLen dram.Nanoseconds
	curEpoch  int64
	// Per (bank, row): activation count and test-attributable subset
	// within the window stamped in actStamp (stamps store epoch+1 so the
	// zero value means "never activated").
	actCount  [][]int64
	testCount [][]int64
	actStamp  [][]int64

	// tracer, when attached, records every access (the HMTT analogue).
	tracer *BusTracer

	stats Stats
}

// testRowStream decorrelates test-row placement from the bank-selection
// and jitter stream (c.rng), which existing goldens pin draw-for-draw.
const testRowStream = 0x7e57b0b5c0ffee11

// New creates a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:           cfg,
		trfc:          cfg.Density.TRFC(),
		bankBusyUntil: make([]dram.Nanoseconds, cfg.Banks),
		bankOpenRow:   make([]int, cfg.Banks),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range c.bankOpenRow {
		c.bankOpenRow[i] = -1
	}
	if cfg.Rows > 0 {
		c.testRNG = rand.New(rand.NewSource(int64(uint64(cfg.Seed) ^ testRowStream)))
		c.windowLen = cfg.RefreshPeriod * 8192
		c.actCount = make([][]int64, cfg.Banks)
		c.testCount = make([][]int64, cfg.Banks)
		c.actStamp = make([][]int64, cfg.Banks)
		for b := 0; b < cfg.Banks; b++ {
			c.actCount[b] = make([]int64, cfg.Rows)
			c.testCount[b] = make([]int64, cfg.Rows)
			c.actStamp[b] = make([]int64, cfg.Rows)
		}
	}
	return c, nil
}

// noteActivation records one tracked ACT of (bank, row) at time at,
// resetting the row's counters lazily when the activation falls in a
// later hammer window than the row's last, and consults the mitigation
// policy. Rows outside [0, Config.Rows) — possible for program traffic
// on a larger address space — are ignored.
func (c *Controller) noteActivation(at dram.Nanoseconds, bank, row int, test bool) {
	if c.actCount == nil || row < 0 || row >= c.cfg.Rows {
		return
	}
	epoch := int64(at / c.windowLen)
	if epoch > c.curEpoch {
		c.stats.HammerWindows += epoch - c.curEpoch
		c.curEpoch = epoch
	}
	stamp := epoch + 1
	if c.actStamp[bank][row] != stamp {
		c.actStamp[bank][row] = stamp
		c.actCount[bank][row] = 0
		c.testCount[bank][row] = 0
	}
	c.actCount[bank][row]++
	c.stats.Activations++
	if test {
		c.testCount[bank][row]++
		c.stats.TestActivations++
	}
	if n := c.actCount[bank][row]; n > c.stats.MaxRowActivations {
		c.stats.MaxRowActivations = n
	}
	if c.cfg.Mitigation != nil {
		c.stats.MitigationOps += int64(c.cfg.Mitigation.OnActivation(bank, row, c.actCount[bank][row]))
	}
}

// WindowActivations returns the addressed row's activation counts —
// total and test-attributable — within the current hammer window. Rows
// last activated in an earlier window (or never) report zero, matching
// the refresh cycle having restored their neighbours' charge. Without
// activation tracking it returns zeros.
func (c *Controller) WindowActivations(bank, row int) (total, test int64) {
	if c.actCount == nil || row < 0 || row >= c.cfg.Rows {
		return 0, 0
	}
	if c.actStamp[bank][row] != c.curEpoch+1 {
		return 0, 0
	}
	return c.actCount[bank][row], c.testCount[bank][row]
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// refreshEnd returns the earliest time at or after t when the rank is
// not blocked by a REF command. REF windows are
// [k*period+offset, k*period+offset+tRFC).
func (c *Controller) refreshEnd(t dram.Nanoseconds) dram.Nanoseconds {
	shifted := t - c.refreshOffset
	if shifted < 0 {
		return t
	}
	k := shifted / c.cfg.RefreshPeriod
	windowStart := k*c.cfg.RefreshPeriod + c.refreshOffset
	if t < windowStart+c.trfc {
		return windowStart + c.trfc
	}
	return t
}

// injectTests applies, in time order, every test whose start time has
// been reached. Tests are background traffic: each occupies a random
// bank for TestRowCycles full row cycles; they do not wait for
// program-visible completion. With TestsPerWindow tests per TestWindow
// the average spacing is TestWindow/TestsPerWindow; spacing is jittered
// uniformly so tests do not beat against program access patterns.
func (c *Controller) injectTests(now dram.Nanoseconds) {
	if c.cfg.TestsPerWindow == 0 {
		return
	}
	spacing := c.cfg.TestWindow / dram.Nanoseconds(c.cfg.TestsPerWindow)
	if spacing < 1 {
		spacing = 1
	}
	for c.nextTestAt <= now {
		bank := c.rng.Intn(c.cfg.Banks)
		busy := dram.Nanoseconds(c.cfg.TestRowCycles) * c.cfg.Timing.RowCycle()
		start := c.refreshEnd(maxNS(c.nextTestAt, c.bankBusyUntil[bank]))
		c.bankBusyUntil[bank] = start + busy
		c.bankOpenRow[bank] = -1 // the test closes whatever row was open
		c.stats.TestBusies++
		if c.actCount != nil {
			// MEMCON's own probes hammer the rows they test: each row
			// cycle of the test opens the row once, so a test is
			// TestRowCycles ACTs of one tracked row.
			row := c.testRNG.Intn(c.cfg.Rows)
			for k := 0; k < c.cfg.TestRowCycles; k++ {
				c.noteActivation(start, bank, row, true)
			}
		}
		// Jittered spacing in [0.5, 1.5) of the average.
		c.nextTestAt += spacing/2 + dram.Nanoseconds(c.rng.Int63n(int64(spacing)))
	}
}

func maxNS(a, b dram.Nanoseconds) dram.Nanoseconds {
	if a > b {
		return a
	}
	return b
}

// Access serves one program request arriving at time at to (bank, row)
// and returns its completion time. Requests must arrive in
// non-decreasing time order across the whole controller.
func (c *Controller) Access(at dram.Nanoseconds, bank, row int, write bool) (dram.Nanoseconds, error) {
	if bank < 0 || bank >= c.cfg.Banks {
		return 0, fmt.Errorf("memctrl: bank %d outside [0,%d)", bank, c.cfg.Banks)
	}
	c.injectTests(at)
	if c.tracer != nil {
		c.tracer.Record(at, bank, row, write)
	}

	ready := maxNS(at, c.bankBusyUntil[bank])
	start := ready
	if blocked := c.refreshEnd(ready); blocked > ready {
		// The rank is mid-REF; an elastic controller may have postponed
		// this REF to serve pending demand.
		if c.cfg.RefreshPostponeProb == 0 || c.rng.Float64() >= c.cfg.RefreshPostponeProb {
			start = blocked
		}
	}
	t := c.cfg.Timing
	var service dram.Nanoseconds
	if c.bankOpenRow[bank] == row {
		c.stats.RowHits++
		service = t.CL + t.TCCD
	} else {
		c.stats.RowMisses++
		service = t.TRP + t.TRCD + t.CL + t.TCCD
		c.bankOpenRow[bank] = row
		c.noteActivation(at, bank, row, false) // a row miss issues an ACT
	}
	if write {
		// Writes complete into the write queue; model the same bank
		// occupancy with CWL instead of CL.
		service += t.CWL - t.CL
	}
	done := start + service
	c.bankBusyUntil[bank] = done
	c.stats.Requests++
	c.stats.TotalLatency += done - at
	return done, nil
}

// RefreshBusyFraction returns the fraction of time the rank is blocked
// behind REF commands under this configuration — the analytic first-order
// driver of the Fig. 15 speedups.
func (c *Controller) RefreshBusyFraction() float64 {
	return float64(c.trfc) / float64(c.cfg.RefreshPeriod)
}

// StretchedRefreshPeriod returns the REF period that an all-rows refresh
// at baseWindow stretches to when a scheme eliminates the given fraction
// of refresh operations.
func StretchedRefreshPeriod(baseWindow dram.Nanoseconds, reduction float64) (dram.Nanoseconds, error) {
	if reduction < 0 || reduction >= 1 {
		return 0, fmt.Errorf("memctrl: reduction %v outside [0,1)", reduction)
	}
	base := dram.TREFI(baseWindow)
	return dram.Nanoseconds(float64(base) / (1 - reduction)), nil
}
