package memctrl

import (
	"testing"

	"memcon/internal/core"
	"memcon/internal/dram"
)

func TestBusTracerCapturesWrites(t *testing.T) {
	cfg := DefaultConfig()
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracer := NewBusTracer(cfg.Banks)
	tracer.CaptureReads = true
	ctrl.AttachTracer(tracer)

	at := dram.Nanoseconds(0)
	for i := 0; i < 100; i++ {
		at += dram.Microsecond
		if _, err := ctrl.Access(at, i%8, i/8, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	writes := tracer.WriteTrace("captured", at)
	reads := tracer.ReadTrace("captured-reads", at)
	if len(writes.Events) != 50 || len(reads.Events) != 50 {
		t.Fatalf("captured %d writes / %d reads, want 50/50", len(writes.Events), len(reads.Events))
	}
	if err := writes.Validate(); err != nil {
		t.Fatalf("captured write trace invalid: %v", err)
	}
	if err := reads.Validate(); err != nil {
		t.Fatalf("captured read trace invalid: %v", err)
	}
}

func TestBusTracerReadsDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	ctrl, _ := New(cfg)
	tracer := NewBusTracer(cfg.Banks)
	ctrl.AttachTracer(tracer)
	if _, err := ctrl.Access(100, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if got := len(tracer.ReadTrace("r", 1000).Events); got != 0 {
		t.Errorf("reads captured without CaptureReads: %d", got)
	}
}

// The closed loop the paper's methodology implies: simulate a system,
// capture its bus trace HMTT-style, and feed the captured trace straight
// into the MEMCON engine.
func TestCapturedTraceFeedsMemcon(t *testing.T) {
	cfg := DefaultConfig()
	ctrl, _ := New(cfg)
	tracer := NewBusTracer(cfg.Banks)
	ctrl.AttachTracer(tracer)

	// Synthetic system activity: one write-back per page, then long
	// idle — the page pattern PRIL predicts.
	at := dram.Nanoseconds(0)
	for i := 0; i < 64; i++ {
		at += 10 * dram.Microsecond
		if _, err := ctrl.Access(at, i%8, i, true); err != nil {
			t.Fatal(err)
		}
	}
	end := at + 10*dram.Second
	tr := tracer.WriteTrace("system", end)

	rep, err := core.Run(tr, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsCompleted == 0 {
		t.Error("captured trace produced no MEMCON tests")
	}
	if rep.RefreshReduction() <= 0 {
		t.Error("captured trace produced no refresh reduction")
	}
}
