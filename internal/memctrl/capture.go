package memctrl

import (
	"memcon/internal/dram"
	"memcon/internal/trace"
)

// BusTracer is the HMTT analogue: the paper's second FPGA infrastructure
// intercepts the memory bus and records command/address/timestamp for
// every request. Attaching a tracer to a Controller captures the WRITE
// stream in the exact format MEMCON's analysis consumes, closing the
// loop: simulate a system -> capture its bus trace -> feed MEMCON.
type BusTracer struct {
	// writes accumulates write events; page = bank-interleaved row id.
	writes []trace.Event
	banks  int
	// CaptureReads optionally records reads into a second trace for the
	// read-aware analysis.
	CaptureReads bool
	reads        []trace.Event
}

// NewBusTracer creates a tracer for a controller with the given bank
// count (used to flatten bank/row into a page id).
func NewBusTracer(banks int) *BusTracer {
	return &BusTracer{banks: banks}
}

// pageOf flattens (bank, row) into a page id the way MEMCON's per-page
// tracking sees memory.
func (t *BusTracer) pageOf(bank, row int) uint32 {
	return uint32(row*t.banks + bank)
}

// Record captures one request. Timestamps are converted from the
// controller's nanoseconds to trace microseconds.
func (t *BusTracer) Record(at dram.Nanoseconds, bank, row int, write bool) {
	e := trace.Event{Page: t.pageOf(bank, row), At: trace.Microseconds(at / dram.Microsecond)}
	if write {
		t.writes = append(t.writes, e)
	} else if t.CaptureReads {
		t.reads = append(t.reads, e)
	}
}

// WriteTrace returns the captured write trace with the given name and
// end time.
func (t *BusTracer) WriteTrace(name string, end dram.Nanoseconds) *trace.Trace {
	out := &trace.Trace{Name: name, Duration: trace.Microseconds(end / dram.Microsecond), Events: t.writes}
	out.Sort()
	return out
}

// ReadTrace returns the captured read trace (empty unless CaptureReads).
func (t *BusTracer) ReadTrace(name string, end dram.Nanoseconds) *trace.Trace {
	out := &trace.Trace{Name: name, Duration: trace.Microseconds(end / dram.Microsecond), Events: t.reads}
	out.Sort()
	return out
}

// AttachTracer installs the tracer on the controller; every subsequent
// Access is recorded.
func (c *Controller) AttachTracer(t *BusTracer) { c.tracer = t }
