package memctrl

import (
	"testing"

	"memcon/internal/dram"
	"memcon/internal/refresh"
)

func trackedConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows = 64
	return cfg
}

// TestAccessActivationAccounting: every row miss is one tracked ACT,
// row hits are free, and WindowActivations attributes counts per row.
func TestAccessActivationAccounting(t *testing.T) {
	c, err := New(trackedConfig())
	if err != nil {
		t.Fatal(err)
	}
	at := dram.Nanoseconds(0)
	access := func(bank, row int) {
		done, err := c.Access(at, bank, row, false)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	access(0, 5) // miss
	access(0, 5) // hit
	access(0, 5) // hit
	access(0, 9) // miss
	access(0, 5) // miss (9 closed 5)
	access(1, 5) // miss, other bank
	s := c.Stats()
	if s.Activations != 4 {
		t.Fatalf("Activations = %d, want 4", s.Activations)
	}
	if s.TestActivations != 0 {
		t.Fatalf("TestActivations = %d, want 0", s.TestActivations)
	}
	if total, test := c.WindowActivations(0, 5); total != 2 || test != 0 {
		t.Fatalf("WindowActivations(0,5) = %d,%d; want 2,0", total, test)
	}
	if total, _ := c.WindowActivations(0, 9); total != 1 {
		t.Fatalf("WindowActivations(0,9) = %d, want 1", total)
	}
	if total, _ := c.WindowActivations(1, 5); total != 1 {
		t.Fatalf("WindowActivations(1,5) = %d, want 1", total)
	}
	if s.MaxRowActivations != 2 {
		t.Fatalf("MaxRowActivations = %d, want 2", s.MaxRowActivations)
	}
	// Rows outside the tracked space are served but not counted.
	if _, err := c.Access(at, 0, c.cfg.Rows+3, false); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Activations; got != 4 {
		t.Fatalf("untracked row counted: Activations = %d, want 4", got)
	}
}

// TestTrackingDisabledByDefault: with Rows 0 nothing is counted and
// WindowActivations reports zeros.
func TestTrackingDisabledByDefault(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access(0, 0, 7, false); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Activations != 0 || s.MaxRowActivations != 0 {
		t.Fatalf("tracking disabled but stats populated: %+v", s)
	}
	if total, test := c.WindowActivations(0, 7); total != 0 || test != 0 {
		t.Fatalf("WindowActivations = %d,%d; want 0,0", total, test)
	}
}

// TestInjectedTestsCountAsHammer: MEMCON's own probes are ACTs — each
// injected test contributes TestRowCycles test-attributable activations,
// and enabling tracking must not change the latency-visible schedule
// (the test-row draw uses a separate RNG stream).
func TestInjectedTestsCountAsHammer(t *testing.T) {
	cfg := trackedConfig()
	cfg.TestsPerWindow = 128
	cfg.TestWindow = 64 * dram.Millisecond
	cfg.TestRowCycles = 2

	plain := cfg
	plain.Rows = 0
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(plain)
	if err != nil {
		t.Fatal(err)
	}
	at := dram.Nanoseconds(0)
	for i := 0; i < 2000; i++ {
		da, err := a.Access(at, i%cfg.Banks, i%cfg.Rows, false)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Access(at, i%cfg.Banks, i%cfg.Rows, false)
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Fatalf("request %d: tracking changed completion time %d vs %d", i, da, db)
		}
		at = da + 50*dram.Microsecond
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.TestBusies != sb.TestBusies {
		t.Fatalf("tracking changed test schedule: %d vs %d busies", sa.TestBusies, sb.TestBusies)
	}
	if sa.TestBusies == 0 {
		t.Fatal("no tests injected; lengthen the run")
	}
	if want := sa.TestBusies * int64(cfg.TestRowCycles); sa.TestActivations != want {
		t.Fatalf("TestActivations = %d, want %d (%d tests x %d cycles)",
			sa.TestActivations, want, sa.TestBusies, cfg.TestRowCycles)
	}
	if sa.Activations <= sa.TestActivations {
		t.Fatalf("program misses missing from Activations: %d total, %d test", sa.Activations, sa.TestActivations)
	}
}

// TestWindowResetBoundary: a row's per-window count resets once the
// activation stream crosses a hammer-window boundary (one full refresh
// cycle = RefreshPeriod*8192), and HammerWindows counts the crossings.
func TestWindowResetBoundary(t *testing.T) {
	cfg := trackedConfig()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := cfg.RefreshPeriod * 8192
	hammer := func(at dram.Nanoseconds, n int) {
		for i := 0; i < n; i++ {
			// Alternate with row 1 so every access to row 0 is a miss.
			if _, err := c.Access(at, 0, 1, false); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Access(at, 0, 0, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	hammer(window-1, 5) // last nanosecond of window 0
	if total, _ := c.WindowActivations(0, 0); total != 5 {
		t.Fatalf("window 0 count = %d, want 5", total)
	}
	if s := c.Stats(); s.HammerWindows != 0 {
		t.Fatalf("HammerWindows = %d before any crossing", s.HammerWindows)
	}

	hammer(window, 3) // first nanosecond of window 1: counter must reset
	if total, _ := c.WindowActivations(0, 0); total != 3 {
		t.Fatalf("count after boundary = %d, want 3 (reset)", total)
	}
	if s := c.Stats(); s.HammerWindows != 1 {
		t.Fatalf("HammerWindows = %d, want 1", s.HammerWindows)
	}
	// Cumulative stats keep the pre-reset history.
	if s := c.Stats(); s.Activations != 16 || s.MaxRowActivations != 5 {
		t.Fatalf("cumulative stats %d/%d, want 16 activations, max 5", s.Activations, s.MaxRowActivations)
	}

	// A row untouched since an earlier window reads zero even without an
	// intervening activation of that row.
	hammer(window-1+3*window, 1) // jump to window 3
	if total, _ := c.WindowActivations(0, 1); total != 1 {
		t.Fatalf("row 1 count in window 3 = %d, want 1", total)
	}
	if s := c.Stats(); s.HammerWindows != 3 {
		t.Fatalf("HammerWindows = %d, want 3 (crossed two more)", s.HammerWindows)
	}
}

// TestMitigationAccounting: PRAC issues exactly 2 ops every threshold-th
// activation of a row, priced into Stats.MitigationOps; the Validate
// coupling to Rows is enforced.
func TestMitigationAccounting(t *testing.T) {
	bad := DefaultConfig()
	var err error
	bad.Mitigation, err = refresh.NewPRAC(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("mitigation without Rows accepted")
	}

	cfg := trackedConfig()
	cfg.Mitigation, err = refresh.NewPRAC(4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // 10 ACTs of row 0
		if _, err := c.Access(0, 0, 1, false); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Access(0, 0, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	// Row 0 and row 1 each saw 10 ACTs → two mitigations each → 8 ops.
	if got := c.Stats().MitigationOps; got != 8 {
		t.Fatalf("MitigationOps = %d, want 8", got)
	}
}
