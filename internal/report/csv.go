package report

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// CSV renders the report's primary data table as RFC-4180 text: one
// header row of column names followed by every row (including hidden
// ones — elision is a text-rendering concern) at canonical full
// precision. Reports with several data tables choose via Primary;
// without it the first data table is emitted.
func (r *Report) CSV() (string, error) {
	t, err := r.primaryTable()
	if err != nil {
		return "", err
	}
	records := make([][]string, 0, len(t.Rows)+1)
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Name
	}
	records = append(records, header)
	for _, row := range t.Rows {
		rec := make([]string, len(row.Cells))
		for i, c := range row.Cells {
			rec[i] = c.Value()
		}
		records = append(records, rec)
	}
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.WriteAll(records); err != nil {
		return "", fmt.Errorf("report: encoding csv: %w", err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", fmt.Errorf("report: flushing csv: %w", err)
	}
	return b.String(), nil
}

func (r *Report) primaryTable() (*Table, error) {
	tables := r.Tables()
	if len(tables) == 0 {
		return nil, fmt.Errorf("report %s: no data table to render as CSV", r.Prov.Experiment)
	}
	if r.Primary == "" {
		return tables[0], nil
	}
	for _, t := range tables {
		if t.Key == r.Primary {
			return t, nil
		}
	}
	return nil, fmt.Errorf("report %s: primary table %q not found", r.Prov.Experiment, r.Primary)
}
