package report

import (
	"fmt"
	"strings"
)

// Text renders the report as the CLI's fixed-width text document:
// prose blocks verbatim, data and presentation tables as fixed-width
// grids, DataOnly blocks omitted. The algorithm (two-space column
// separators, dash underline, left-justified padding including the last
// column) is byte-compatible with the table builder the experiments
// package used before reports were typed.
func (r *Report) Text() string {
	var b strings.Builder
	for _, blk := range r.Blocks {
		if blk.DataOnly {
			continue
		}
		if blk.Table != nil {
			writeTableText(&b, blk.Table)
			continue
		}
		b.WriteString(blk.Text)
	}
	return b.String()
}

// writeTableText renders one table. Column widths are computed over the
// header labels and the visible rows only, so hidden data rows cannot
// widen the text rendering. Rows wider than the header (possible only
// in hand-built or decoded reports; Add validates) render with their
// own width instead of panicking.
func writeTableText(b *strings.Builder, t *Table) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c.label())
	}
	for _, r := range t.Rows {
		if r.Hidden {
			continue
		}
		for i, c := range r.Cells {
			if i < len(widths) && len(c.Text()) > widths[i] {
				widths[i] = len(c.Text())
			}
		}
	}
	width := func(i, n int) int {
		if i < len(widths) {
			return widths[i]
		}
		return n
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", width(i, len(c)), c)
		}
		b.WriteByte('\n')
	}
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.label()
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	cells := make([]string, 0, len(t.Columns))
	for _, r := range t.Rows {
		if r.Hidden {
			continue
		}
		cells = cells[:0]
		for _, c := range r.Cells {
			cells = append(cells, c.Text())
		}
		writeRow(cells)
	}
}
