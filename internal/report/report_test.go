package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sample() *Report {
	r := New(Provenance{
		Experiment: "fig14", Title: "Fig. 14: refresh reduction",
		Seed: 42, Scale: 0.04, SimTimeNs: 200_000, Mixes: 3,
	})
	r.Textf("Fig. 14 — reduction in refresh count with MEMCON\n\n")
	t := NewTable("rows",
		CStr("application", ""),
		CFloat("cil_512ms", "CIL 512ms", "fraction"),
		CFloat("cil_1024ms", "CIL 1024ms", "fraction"))
	t.Add(S("Netflix"), F(0.691, "69.1%"), F(0.678, "67.8%"))
	t.Add(S("SystemMgt"), F(0.657, "65.7%"), F(0.628, "62.8%"))
	t.AddHidden(S("UPPER BOUND"), F(0.75, "75.0%"), F(0.75, "75.0%"))
	r.AddTable(t)
	r.Textf("\nreduction at CIL 1024 ms: avg %s\n", "63.3%")
	return r
}

func TestTextRendering(t *testing.T) {
	got := sample().Text()
	want := "Fig. 14 — reduction in refresh count with MEMCON\n\n" +
		"application  CIL 512ms  CIL 1024ms\n" +
		"-----------  ---------  ----------\n" +
		"Netflix      69.1%      67.8%     \n" +
		"SystemMgt    65.7%      62.8%     \n" +
		"\nreduction at CIL 1024 ms: avg 63.3%\n"
	if got != want {
		t.Errorf("text rendering mismatch:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
	if s := sample().String(); s != got {
		t.Error("String() differs from Text()")
	}
}

// TestTableAddValidatesWidth pins the fix for the old experiments table
// builder, where a row wider than the header indexed past the width
// slice and panicked deep inside rendering. Add now fails fast, loudly,
// at the call site.
func TestTableAddValidatesWidth(t *testing.T) {
	tb := NewTable("x", CStr("a", ""), CStr("b", ""))
	for _, cells := range [][]Cell{
		{S("1")},
		{S("1"), S("2"), S("3")},
		nil,
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("Add(%d cells) did not panic", len(cells))
					return
				}
				if !strings.Contains(r.(string), `table "x"`) {
					t.Errorf("panic %v does not name the table", r)
				}
			}()
			tb.Add(cells...)
		}()
	}
	tb.Add(S("1"), S("2")) // matching width still works
	if len(tb.Rows) != 1 {
		t.Errorf("rows = %d, want 1", len(tb.Rows))
	}
}

// TestRaggedTableRenders pins that the renderer itself (reachable with
// ragged rows through a hand-built or JSON-decoded report) pads instead
// of inheriting the index-out-of-range bug.
func TestRaggedTableRenders(t *testing.T) {
	tb := &Table{
		Key:     "ragged",
		Columns: []Column{CStr("a", ""), CStr("b", "")},
		Rows: []Row{
			{Cells: []Cell{S("1"), S("2"), S("extra-wide-cell")}},
			{Cells: []Cell{S("only")}},
		},
	}
	r := New(Provenance{Experiment: "x"})
	r.AddTable(tb)
	got := r.Text()
	if !strings.Contains(got, "extra-wide-cell") || !strings.Contains(got, "only") {
		t.Errorf("ragged rows dropped:\n%s", got)
	}
}

func TestHiddenRowsExcludedFromTextWidths(t *testing.T) {
	tb := NewTable("x", CStr("a", ""))
	tb.Add(S("ab"))
	tb.AddHidden(S("a-very-long-hidden-row"))
	r := New(Provenance{}).AddTable(tb)
	for _, line := range strings.Split(strings.TrimRight(r.Text(), "\n"), "\n") {
		if len(line) > len("ab") {
			t.Errorf("hidden row influenced text widths: %q", line)
		}
	}
}

func TestCSV(t *testing.T) {
	got, err := sample().CSV()
	if err != nil {
		t.Fatal(err)
	}
	want := "application,cil_512ms,cil_1024ms\n" +
		"Netflix,0.691,0.678\n" +
		"SystemMgt,0.657,0.628\n" +
		"UPPER BOUND,0.75,0.75\n"
	if got != want {
		t.Errorf("csv mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestCSVPrimarySelection(t *testing.T) {
	r := New(Provenance{Experiment: "fig6"})
	a := NewTable("configs", CStr("mode", ""))
	a.Add(S("rc"))
	b := NewTable("curve", CInt("time_ms", "", "ms"))
	b.Add(I(112))
	r.AddTable(a).AddTable(b)

	// Default: first data table.
	got, err := r.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got, "mode\n") {
		t.Errorf("default primary not first table:\n%s", got)
	}
	// Explicit primary.
	r.Primary = "curve"
	if got, err = r.CSV(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got, "time_ms\n112\n") {
		t.Errorf("explicit primary ignored:\n%s", got)
	}
	// Unknown primary errors.
	r.Primary = "nope"
	if _, err = r.CSV(); err == nil {
		t.Error("unknown primary accepted")
	}
	// TextOnly tables are not data.
	empty := New(Provenance{Experiment: "e"})
	empty.AddTextTable(NewTable("pivot", CStr("a", "")))
	if _, err := empty.CSV(); err == nil {
		t.Error("presentation-only report rendered CSV")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := sample()
	b, err := r.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1] != '\n' {
		t.Error("canonical document missing trailing newline")
	}
	back, err := DecodeBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(back) {
		t.Errorf("round trip changed the report:\n%+v\nvs\n%+v", r, back)
	}
	// Canonical: re-encoding the decoded report is byte-identical.
	b2, err := back.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("re-encoded document differs from the original")
	}
}

func TestDecodeRejectsBadSchema(t *testing.T) {
	if _, err := DecodeBytes([]byte(`{"schema":99,"provenance":{"experiment":"x","seed":1,"scale":1,"simtime_ns":1,"mixes":1},"blocks":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := DecodeBytes([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeBytes([]byte(`{"blocks":[{"table":{"key":"t","columns":[{"name":"a","kind":"nope"}]}}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDiffClean(t *testing.T) {
	d := Diff(sample(), sample(), Tolerance{})
	if !d.Clean() {
		t.Errorf("identical reports differ:\n%s", d)
	}
	if !strings.Contains(d.String(), "no differences") {
		t.Errorf("clean diff rendering: %q", d.String())
	}
}

func TestDiffFloatTolerance(t *testing.T) {
	a, b := sample(), sample()
	b.Tables()[0].Rows[0].Cells[1].Float += 0.005

	d := Diff(a, b, Tolerance{})
	if d.Clean() {
		t.Fatal("drifted float not flagged at zero tolerance")
	}
	e := d.Entries[0]
	if e.Path != "rows[0].cil_512ms" || e.Label != "Netflix" {
		t.Errorf("entry path/label = %q/%q", e.Path, e.Label)
	}
	if e.Delta < 0.004 || e.Delta > 0.006 {
		t.Errorf("delta = %v", e.Delta)
	}
	if !strings.Contains(d.String(), "cil_512ms") {
		t.Errorf("diff rendering missing path:\n%s", d)
	}

	// Abs and Rel tolerances absorb the drift.
	if d := Diff(a, b, Tolerance{Abs: 0.01}); !d.Clean() {
		t.Errorf("abs tolerance did not absorb drift:\n%s", d)
	}
	if d := Diff(a, b, Tolerance{Rel: 0.01}); !d.Clean() {
		t.Errorf("rel tolerance did not absorb drift:\n%s", d)
	}
}

func TestDiffHiddenRowsCompared(t *testing.T) {
	a, b := sample(), sample()
	rows := b.Tables()[0]
	rows.Rows[2].Cells[1].Float = 0.9 // the hidden UPPER BOUND row
	if Diff(a, b, Tolerance{}).Clean() {
		t.Error("drift in hidden row not flagged")
	}
}

func TestDiffStructural(t *testing.T) {
	a, b := sample(), sample()
	b.Tables()[0].Rows = b.Tables()[0].Rows[:2]
	d := Diff(a, b, Tolerance{})
	if d.Clean() {
		t.Fatal("row-count mismatch not flagged")
	}
	if !strings.Contains(d.Entries[0].Path, "row count") {
		t.Errorf("entry = %+v", d.Entries[0])
	}

	// Missing table.
	c := sample()
	c.Blocks = c.Blocks[:1] // drop the table block
	d = Diff(sample(), c, Tolerance{})
	if d.Clean() {
		t.Error("missing table not flagged")
	}

	// Column rename.
	e := sample()
	e.Tables()[0].Columns[1].Name = "renamed"
	if Diff(sample(), e, Tolerance{}).Clean() {
		t.Error("column rename not flagged")
	}

	// String-cell change.
	f := sample()
	f.Tables()[0].Rows[0].Cells[0].Str = "Nitflix"
	if Diff(sample(), f, Tolerance{Abs: 100}).Clean() {
		t.Error("string drift absorbed by numeric tolerance")
	}
}

func TestDiffProvenanceGates(t *testing.T) {
	a, b := sample(), sample()
	b.Prov.Seed = 7
	b.Prov.Scale = 0.5
	d := Diff(a, b, Tolerance{})
	if len(d.Entries) < 2 {
		t.Fatalf("seed+scale mismatch produced %d entries", len(d.Entries))
	}

	// Version and title are notes, not gates.
	c := sample()
	c.Prov.Version = "v1.2.3"
	c.Prov.Title = "renamed"
	d = Diff(sample(), c, Tolerance{})
	if !d.Clean() {
		t.Errorf("version/title mismatch gated:\n%s", d)
	}
	if len(d.Notes) != 2 {
		t.Errorf("notes = %v", d.Notes)
	}
	if !strings.Contains(d.String(), "note: ") {
		t.Error("notes missing from rendering")
	}
}

func TestCellValueAndText(t *testing.T) {
	cases := []struct {
		c     Cell
		value string
		text  string
	}{
		{S("x"), "x", "x"},
		{Sd("x", "X!"), "x", "X!"},
		{I(-3), "-3", "-3"},
		{Id(5, "5 ms"), "5", "5 ms"},
		{F(0.25, "25.0%"), "0.25", "25.0%"},
		{Fv(0.1), "0.1", "0.1"},
		{B(true), "true", "true"},
		{Bd(false, "no"), "false", "no"},
	}
	for _, c := range cases {
		if got := c.c.Value(); got != c.value {
			t.Errorf("%+v Value = %q, want %q", c.c, got, c.value)
		}
		if got := c.c.Text(); got != c.text {
			t.Errorf("%+v Text = %q, want %q", c.c, got, c.text)
		}
	}
	if KindFloat.String() != "float" || Kind(9).String() == "" {
		t.Error("kind names broken")
	}
}

// floatReport builds a one-column float report for the Diff edge-case
// table: one row per value.
func floatReport(vals ...float64) *Report {
	r := New(Provenance{Experiment: "edge"})
	t := NewTable("t", CFloat("v", "", ""))
	for _, v := range vals {
		t.Add(Fv(v))
	}
	r.AddTable(t)
	return r
}

// TestDiffEdgeCases makes the comparison semantics explicit for the
// inputs that used to fall out of the arithmetic incidentally:
// zero-tolerance exact compare, NaN and ±Inf cells, and mismatched row
// counts.
func TestDiffEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		name        string
		a, b        *Report
		tol         Tolerance
		wantEntries int
	}{
		{"zero tolerance, exact", floatReport(0.25, -3), floatReport(0.25, -3), Tolerance{}, 0},
		{"zero tolerance, one-ulp drift", floatReport(0.25), floatReport(math.Nextafter(0.25, 1)), Tolerance{}, 1},
		{"NaN equals NaN", floatReport(nan), floatReport(nan), Tolerance{}, 0},
		{"NaN vs finite", floatReport(nan), floatReport(1.0), Tolerance{Abs: inf}, 1},
		{"finite vs NaN", floatReport(1.0), floatReport(nan), Tolerance{Abs: inf}, 1},
		{"+Inf equals +Inf", floatReport(inf), floatReport(inf), Tolerance{}, 0},
		{"-Inf equals -Inf", floatReport(-inf), floatReport(-inf), Tolerance{}, 0},
		{"+Inf vs -Inf ignores Rel", floatReport(inf), floatReport(-inf), Tolerance{Rel: 0.5}, 1},
		{"+Inf vs finite ignores Abs", floatReport(inf), floatReport(1e300), Tolerance{Abs: 1e308}, 1},
		{"rel absorbs proportional drift", floatReport(100), floatReport(100.4), Tolerance{Rel: 0.01}, 0},
		// A row-count mismatch gates once and the common prefix is
		// still compared — a drifted shared row reports separately.
		{"extra rows", floatReport(1, 2), floatReport(1, 2, 3), Tolerance{}, 1},
		{"missing rows plus drift", floatReport(1, 2, 3), floatReport(1.5), Tolerance{}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := Diff(tc.a, tc.b, tc.tol)
			if len(d.Entries) != tc.wantEntries {
				t.Fatalf("got %d entries, want %d:\n%s", len(d.Entries), tc.wantEntries, d)
			}
			// Every diff must stay JSON-encodable, whatever the cells
			// held (NaN/Inf deltas would make Marshal fail).
			if _, err := json.Marshal(d); err != nil {
				t.Fatalf("diff not JSON-encodable: %v", err)
			}
			for _, e := range d.Entries {
				if math.IsNaN(e.Delta) || math.IsInf(e.Delta, 0) {
					t.Errorf("entry %q carries non-finite delta %v", e.Path, e.Delta)
				}
			}
		})
	}
}
