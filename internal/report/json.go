package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
)

// MarshalCanonical encodes the report as canonical JSON: two-space
// indentation, struct-declaration field order, no maps anywhere in the
// document, and a trailing newline. Two runs that produce equal reports
// produce byte-identical documents, which is what lets the committed
// reference set under testdata/reports/ be compared with plain diff.
func (r *Report) MarshalCanonical() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("report: encoding %s: %w", r.Prov.Experiment, err)
	}
	return append(b, '\n'), nil
}

// Encode writes the canonical JSON document to w.
func (r *Report) Encode(w io.Writer) error {
	b, err := r.MarshalCanonical()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Decode reads one canonical JSON report. Decode(Encode(r)) equals r
// for every report the experiments layer produces (pinned by the
// registry-wide round-trip test).
func Decode(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("report: decoding: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("report: schema %d not supported (want %d)", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// DecodeBytes decodes a canonical JSON document from memory.
func DecodeBytes(b []byte) (*Report, error) {
	return Decode(bytes.NewReader(b))
}

// Equal reports whether two reports carry identical provenance, blocks,
// and cells (displays included).
func (r *Report) Equal(o *Report) bool {
	return reflect.DeepEqual(r, o)
}
