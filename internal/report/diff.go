package report

import (
	"fmt"
	"math"
	"strings"
)

// Tolerance bounds the numeric drift Diff accepts in float cells: a
// float pair passes when |a-b| <= Abs + Rel*max(|a|,|b|). The zero
// tolerance demands exact equality, which is the right default here —
// every experiment is deterministic, so a reproduced number that moved
// at all has a cause worth finding.
type Tolerance struct {
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

// within reports whether the pair passes the tolerance. Non-finite
// values compare by identity, never by distance: NaN only equals NaN,
// and an infinity only equals the same infinity — the arithmetic rule
// would call equal infinities different (Inf-Inf is NaN) and opposite
// infinities equal under any Rel tolerance (Inf <= Rel*Inf).
func (t Tolerance) within(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= t.Abs+t.Rel*math.Max(math.Abs(a), math.Abs(b))
}

// DiffEntry is one out-of-tolerance difference between two reports.
type DiffEntry struct {
	// Path locates the difference: "provenance.seed",
	// "rows[3].cil_1024ms", "curve: row count".
	Path string `json:"path"`
	// Label names the row (its first string cell) when the difference
	// is a cell, easing CI triage.
	Label string `json:"label,omitempty"`
	// A and B are the canonical values on each side.
	A string `json:"a"`
	B string `json:"b"`
	// Delta is |a-b| for float cells when that distance is finite, 0
	// otherwise (non-float cells, NaN or infinite distances).
	Delta float64 `json:"delta,omitempty"`
}

// DiffReport is the outcome of comparing two reports.
type DiffReport struct {
	// Experiment is the id of the reports compared.
	Experiment string `json:"experiment"`
	// Entries holds every out-of-tolerance difference; empty means the
	// reports agree.
	Entries []DiffEntry `json:"entries"`
	// Notes are informational mismatches (version strings, titles)
	// that do not gate.
	Notes []string `json:"notes,omitempty"`
}

// Clean reports whether the diff found no gating differences.
func (d *DiffReport) Clean() bool { return len(d.Entries) == 0 }

// String renders the diff as a text table of differences.
func (d *DiffReport) String() string {
	var b strings.Builder
	if d.Clean() {
		fmt.Fprintf(&b, "report %s: no differences\n", d.Experiment)
	} else {
		fmt.Fprintf(&b, "report %s: %d difference(s)\n\n", d.Experiment, len(d.Entries))
		t := NewTable("diff",
			CStr("path", ""), CStr("label", ""), CStr("a", ""), CStr("b", ""), CStr("delta", ""))
		for _, e := range d.Entries {
			delta := ""
			if e.Delta != 0 {
				delta = fmt.Sprintf("%g", e.Delta)
			}
			t.Add(S(e.Path), S(e.Label), S(e.A), S(e.B), S(delta))
		}
		writeTableText(&b, t)
	}
	for _, n := range d.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Diff compares two reports cell by cell. Provenance fields that
// determine the numbers (experiment, seed, scale, simtime, mixes,
// fleet, mapping, schema) gate like data; version and title mismatches
// are notes.
// Data tables are matched by key; presentation (TextOnly) blocks and
// prose are not compared. Hidden rows are compared like visible ones.
func Diff(a, b *Report, tol Tolerance) *DiffReport {
	d := &DiffReport{Experiment: a.Prov.Experiment}
	add := func(path, label, av, bv string, delta float64) {
		d.Entries = append(d.Entries, DiffEntry{Path: path, Label: label, A: av, B: bv, Delta: delta})
	}
	if a.Schema != b.Schema {
		add("schema", "", fmt.Sprint(a.Schema), fmt.Sprint(b.Schema), 0)
	}
	pa, pb := a.Prov, b.Prov
	if pa.Experiment != pb.Experiment {
		add("provenance.experiment", "", pa.Experiment, pb.Experiment, 0)
	}
	if pa.Seed != pb.Seed {
		add("provenance.seed", "", fmt.Sprint(pa.Seed), fmt.Sprint(pb.Seed), 0)
	}
	if pa.Scale != pb.Scale {
		add("provenance.scale", "", fmt.Sprint(pa.Scale), fmt.Sprint(pb.Scale), 0)
	}
	if pa.SimTimeNs != pb.SimTimeNs {
		add("provenance.simtime_ns", "", fmt.Sprint(pa.SimTimeNs), fmt.Sprint(pb.SimTimeNs), 0)
	}
	if pa.Mixes != pb.Mixes {
		add("provenance.mixes", "", fmt.Sprint(pa.Mixes), fmt.Sprint(pb.Mixes), 0)
	}
	if pa.Fleet != pb.Fleet {
		add("provenance.fleet", "", fmt.Sprint(pa.Fleet), fmt.Sprint(pb.Fleet), 0)
	}
	if pa.Mapping != pb.Mapping {
		add("provenance.mapping", "", pa.Mapping, pb.Mapping, 0)
	}
	if pa.Disturb != pb.Disturb {
		add("provenance.disturb", "", pa.Disturb, pb.Disturb, 0)
	}
	if pa.Title != pb.Title {
		d.Notes = append(d.Notes, fmt.Sprintf("title differs: %q vs %q", pa.Title, pb.Title))
	}
	if pa.Version != pb.Version {
		d.Notes = append(d.Notes, fmt.Sprintf("version differs: %q vs %q", pa.Version, pb.Version))
	}

	ta, tb := a.Tables(), b.Tables()
	byKey := func(ts []*Table, key string) *Table {
		for _, t := range ts {
			if t.Key == key {
				return t
			}
		}
		return nil
	}
	for _, t := range tb {
		if byKey(ta, t.Key) == nil {
			add(t.Key, "", "(absent)", "(present)", 0)
		}
	}
	for _, at := range ta {
		bt := byKey(tb, at.Key)
		if bt == nil {
			add(at.Key, "", "(present)", "(absent)", 0)
			continue
		}
		diffTable(d, at, bt, tol)
	}
	return d
}

func diffTable(d *DiffReport, a, b *Table, tol Tolerance) {
	if len(a.Columns) != len(b.Columns) {
		d.Entries = append(d.Entries, DiffEntry{
			Path: a.Key + ": column count",
			A:    fmt.Sprint(len(a.Columns)), B: fmt.Sprint(len(b.Columns)),
		})
		return
	}
	for i := range a.Columns {
		if a.Columns[i].Name != b.Columns[i].Name {
			d.Entries = append(d.Entries, DiffEntry{
				Path: fmt.Sprintf("%s: column %d", a.Key, i),
				A:    a.Columns[i].Name, B: b.Columns[i].Name,
			})
			return
		}
	}
	if len(a.Rows) != len(b.Rows) {
		d.Entries = append(d.Entries, DiffEntry{
			Path: a.Key + ": row count",
			A:    fmt.Sprint(len(a.Rows)), B: fmt.Sprint(len(b.Rows)),
		})
	}
	n := len(a.Rows)
	if len(b.Rows) < n {
		n = len(b.Rows)
	}
	for r := 0; r < n; r++ {
		ra, rb := a.Rows[r], b.Rows[r]
		label := rowLabel(ra)
		if len(ra.Cells) != len(rb.Cells) {
			d.Entries = append(d.Entries, DiffEntry{
				Path: fmt.Sprintf("%s[%d]: cell count", a.Key, r), Label: label,
				A: fmt.Sprint(len(ra.Cells)), B: fmt.Sprint(len(rb.Cells)),
			})
			continue
		}
		for c := range ra.Cells {
			ca, cb := ra.Cells[c], rb.Cells[c]
			path := fmt.Sprintf("%s[%d].%s", a.Key, r, columnName(a, c))
			if ca.Kind != cb.Kind {
				d.Entries = append(d.Entries, DiffEntry{
					Path: path, Label: label,
					A: ca.Kind.String() + " " + ca.Value(), B: cb.Kind.String() + " " + cb.Value(),
				})
				continue
			}
			equal := ca.Value() == cb.Value()
			var delta float64
			if ca.Kind == KindFloat {
				equal = tol.within(ca.Float, cb.Float)
				// Delta is informational and must stay JSON-encodable:
				// leave it 0 when the distance is NaN or infinite (the
				// A/B values already show what happened).
				if dist := math.Abs(ca.Float - cb.Float); !math.IsNaN(dist) && !math.IsInf(dist, 0) {
					delta = dist
				}
			}
			if !equal {
				d.Entries = append(d.Entries, DiffEntry{
					Path: path, Label: label, A: ca.Value(), B: cb.Value(), Delta: delta,
				})
			}
		}
	}
}

// rowLabel returns the row's first string cell, the conventional row
// name in every experiment table.
func rowLabel(r Row) string {
	for _, c := range r.Cells {
		if c.Kind == KindString {
			return c.Str
		}
	}
	return ""
}

func columnName(t *Table, i int) string {
	if i < len(t.Columns) {
		return t.Columns[i].Name
	}
	return fmt.Sprint(i)
}
