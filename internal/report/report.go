// Package report defines the typed, diffable result document every
// experiment produces. A Report is a provenance header (which inputs
// produced the numbers) plus an ordered list of blocks: verbatim prose
// and typed tables (named columns with kinds and units, rows of typed
// cells). Three generic renderers — the fixed-width text table, RFC-4180
// CSV, and a canonical JSON encoding — replace the per-result String
// and CSV methods the experiments layer used to hand-roll, and
// Diff compares two reports cell by cell under a numeric tolerance so a
// reproduced artifact can be regression-gated on its numbers rather
// than on prose.
//
// Reports are deliberately wall-clock-free: provenance records only the
// inputs that determine the numbers (experiment id, seed, scale,
// simtime, mixes, and a caller-supplied version string). The worker
// count is excluded on purpose — the repo's determinism contract makes
// every report byte-identical for any -parallel value, and recording
// the worker count would break exactly that property.
package report

import (
	"fmt"
	"strconv"
)

// Kind is the value type of a column or cell.
type Kind uint8

const (
	// KindString cells carry free text (names, labels).
	KindString Kind = iota
	// KindInt cells carry exact integers (counts, nanoseconds).
	KindInt
	// KindFloat cells carry float64 measurements — the values Diff
	// compares under a tolerance.
	KindFloat
	// KindBool cells carry a boolean fact.
	KindBool
)

var kindNames = [...]string{"string", "int", "float", "bool"}

// String returns the canonical kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its canonical name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("report: invalid kind %d", uint8(k))
	}
	return []byte(`"` + kindNames[k] + `"`), nil
}

// UnmarshalJSON decodes a canonical kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("report: kind is not a string: %s", b)
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("report: unknown kind %q", s)
}

// Provenance identifies the inputs that produced a report. Two reports
// are comparable when everything but Version matches; Version mismatches
// are surfaced by Diff as a note, not as drift, so a re-run against a
// saved report from an older build still gates on the numbers.
type Provenance struct {
	// Experiment is the registry id (fig14, table3, ...).
	Experiment string `json:"experiment"`
	// Title is the one-line registry description of the experiment.
	Title string `json:"title,omitempty"`
	// Seed is the normalized random seed the run used.
	Seed int64 `json:"seed"`
	// Scale is the normalized workload scale in (0,1].
	Scale float64 `json:"scale"`
	// SimTimeNs bounds performance-simulation runs (per configuration).
	SimTimeNs int64 `json:"simtime_ns"`
	// Mixes is the multiprogrammed-mix count for performance runs.
	Mixes int `json:"mixes"`
	// Fleet is the module count of fleet-scale experiments; zero for
	// single-module experiments (and omitted from their JSON, keeping
	// pre-fleet reports byte-identical).
	Fleet int `json:"fleet,omitempty"`
	// Mapping is the vendor address-mapping scheme of chip-level
	// experiments; empty for the default mapping and for experiments
	// that build no chips (and omitted from their JSON, keeping
	// pre-mapping reports byte-identical).
	Mapping string `json:"mapping,omitempty"`
	// Disturb is the RowHammer mitigation spec of read-disturb
	// experiments (e.g. "para:0.001"); empty for no mitigation and for
	// experiments that simulate no disturbance (and omitted from their
	// JSON, keeping pre-disturb reports byte-identical).
	Disturb string `json:"disturb,omitempty"`
	// Version is an opaque caller-supplied build identifier (for
	// example a git-describe string). Empty means unrecorded.
	Version string `json:"version,omitempty"`
}

// Cell is one typed value plus an optional display override. The text
// renderer prints Display when set and the canonical rendering of the
// typed value otherwise; CSV and Diff always use the typed value, so
// presentation rounding ("64.4%") never hides numeric drift.
type Cell struct {
	Kind    Kind    `json:"k"`
	Str     string  `json:"s,omitempty"`
	Int     int64   `json:"i,omitempty"`
	Float   float64 `json:"f,omitempty"`
	Bool    bool    `json:"b,omitempty"`
	Display string  `json:"d,omitempty"`
}

// S returns a string cell displayed verbatim.
func S(v string) Cell { return Cell{Kind: KindString, Str: v} }

// Sd returns a string cell whose text rendering differs from the value.
func Sd(v, display string) Cell { return Cell{Kind: KindString, Str: v, Display: display} }

// I returns an integer cell with the default (base-10) rendering.
func I(v int64) Cell { return Cell{Kind: KindInt, Int: v} }

// Id returns an integer cell with an explicit text rendering.
func Id(v int64, display string) Cell { return Cell{Kind: KindInt, Int: v, Display: display} }

// F returns a float cell with an explicit text rendering. Floats almost
// always want presentation rounding, so the display is mandatory here;
// use Fv for the rare full-precision cell.
func F(v float64, display string) Cell { return Cell{Kind: KindFloat, Float: v, Display: display} }

// Fv returns a float cell rendered at full precision.
func Fv(v float64) Cell { return Cell{Kind: KindFloat, Float: v} }

// B returns a boolean cell.
func B(v bool) Cell { return Cell{Kind: KindBool, Bool: v} }

// Bd returns a boolean cell with an explicit text rendering.
func Bd(v bool, display string) Cell { return Cell{Kind: KindBool, Bool: v, Display: display} }

// Value renders the cell's typed value canonically: strings verbatim,
// integers in base 10, floats via strconv 'g' at full precision, bools
// as true/false. This is what CSV emits and what Diff reports.
func (c Cell) Value() string {
	switch c.Kind {
	case KindInt:
		return strconv.FormatInt(c.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(c.Float, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(c.Bool)
	default:
		return c.Str
	}
}

// Text renders the cell for the fixed-width table: the display override
// when present, the canonical value otherwise.
func (c Cell) Text() string {
	if c.Display != "" {
		return c.Display
	}
	return c.Value()
}

// Column describes one table column.
type Column struct {
	// Name is the machine-readable identifier (CSV/JSON header).
	Name string `json:"name"`
	// Label is the text-table header, verbatim — it may be empty (an
	// unlabeled text column). The constructors default it to Name.
	Label string `json:"label,omitempty"`
	// Kind is the column's value type. Cells in the column must match.
	Kind Kind `json:"kind"`
	// Unit documents the measurement unit ("ms", "ns", "fraction").
	Unit string `json:"unit,omitempty"`
}

func (c Column) label() string { return c.Label }

func orName(name, label string) string {
	if label == "" {
		return name
	}
	return label
}

// CStr declares a string column. An empty label defaults to the name.
func CStr(name, label string) Column {
	return Column{Name: name, Label: orName(name, label), Kind: KindString}
}

// CInt declares an integer column with an optional unit.
func CInt(name, label, unit string) Column {
	return Column{Name: name, Label: orName(name, label), Kind: KindInt, Unit: unit}
}

// CFloat declares a float column with an optional unit.
func CFloat(name, label, unit string) Column {
	return Column{Name: name, Label: orName(name, label), Kind: KindFloat, Unit: unit}
}

// CBool declares a boolean column.
func CBool(name, label string) Column {
	return Column{Name: name, Label: orName(name, label), Kind: KindBool}
}

// Row is one table row. Hidden rows carry data that the text rendering
// elides (for example Fig. 3's random-pattern tail); they still appear
// in CSV and JSON and are still diffed.
type Row struct {
	Cells  []Cell `json:"cells"`
	Hidden bool   `json:"hidden,omitempty"`
}

// Table is a named grid of typed cells.
type Table struct {
	// Key names the table within its report ("cells", "curve"); Diff
	// matches tables across reports by key.
	Key     string   `json:"key"`
	Columns []Column `json:"columns"`
	Rows    []Row    `json:"rows"`
}

// NewTable builds a table with the given key and columns.
func NewTable(key string, cols ...Column) *Table {
	return &Table{Key: key, Columns: cols}
}

// Add appends a visible row. The cell count must match the column
// count; a mismatch is a programming error at the call site (the old
// experiments table builder silently accepted ragged rows and then
// panicked with an index error deep inside rendering), so Add panics
// immediately with a message naming the table.
func (t *Table) Add(cells ...Cell) *Table {
	t.checkWidth(cells)
	t.Rows = append(t.Rows, Row{Cells: cells})
	return t
}

// AddHidden appends a row elided from the text rendering but present in
// CSV, JSON, and diffs.
func (t *Table) AddHidden(cells ...Cell) *Table {
	t.checkWidth(cells)
	t.Rows = append(t.Rows, Row{Cells: cells, Hidden: true})
	return t
}

// VisibleRows counts the rows the text rendering will show — handy for
// builders capping a table at one screenful.
func (t *Table) VisibleRows() int {
	n := 0
	for _, r := range t.Rows {
		if !r.Hidden {
			n++
		}
	}
	return n
}

func (t *Table) checkWidth(cells []Cell) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: table %q row has %d cells, want %d", t.Key, len(cells), len(t.Columns)))
	}
}

// Block is one report fragment: verbatim prose, a table, or both never
// — exactly one of Text and Table is set. TextOnly marks presentation
// blocks (per-core pivots of a flat data table, histograms rendered as
// prose) that CSV and Diff skip; DataOnly marks machine-facing tables
// the text rendering omits.
type Block struct {
	Text     string `json:"text,omitempty"`
	Table    *Table `json:"table,omitempty"`
	TextOnly bool   `json:"text_only,omitempty"`
	DataOnly bool   `json:"data_only,omitempty"`
}

// Report is the typed result document of one experiment run.
type Report struct {
	// Schema versions the encoding; bump on incompatible change.
	Schema int `json:"schema"`
	// Prov records the inputs that produced the numbers.
	Prov Provenance `json:"provenance"`
	// Primary names the table the CSV renderer emits when the report
	// holds several; empty selects the first data table.
	Primary string  `json:"primary,omitempty"`
	Blocks  []Block `json:"blocks"`
}

// SchemaVersion is the current canonical-JSON schema.
const SchemaVersion = 1

// New returns an empty report carrying the given provenance.
func New(prov Provenance) *Report {
	return &Report{Schema: SchemaVersion, Prov: prov}
}

// Textf appends a verbatim prose block (rendered by Text exactly as
// formatted, including any embedded newlines).
func (r *Report) Textf(format string, args ...any) *Report {
	r.Blocks = append(r.Blocks, Block{Text: fmt.Sprintf(format, args...)})
	return r
}

// AddTable appends a table rendered in every format.
func (r *Report) AddTable(t *Table) *Report {
	r.Blocks = append(r.Blocks, Block{Table: t})
	return r
}

// AddTextTable appends a presentation-only table: rendered in the text
// output, skipped by CSV and Diff. Pair it with a DataOnly table
// carrying the same numbers in machine shape.
func (r *Report) AddTextTable(t *Table) *Report {
	r.Blocks = append(r.Blocks, Block{Table: t, TextOnly: true})
	return r
}

// AddDataTable appends a machine-only table: absent from the text
// rendering, present in CSV, JSON, and diffs.
func (r *Report) AddDataTable(t *Table) *Report {
	r.Blocks = append(r.Blocks, Block{Table: t, DataOnly: true})
	return r
}

// Tables returns the report's data tables (the ones CSV and Diff see),
// in order.
func (r *Report) Tables() []*Table {
	var out []*Table
	for _, b := range r.Blocks {
		if b.Table != nil && !b.TextOnly {
			out = append(out, b.Table)
		}
	}
	return out
}

// TableByKey returns the data table with the given key, or nil.
func (r *Report) TableByKey(key string) *Table {
	for _, t := range r.Tables() {
		if t.Key == key {
			return t
		}
	}
	return nil
}

// String renders the report as text, making *Report a fmt.Stringer
// drop-in for the pre-typed experiment results.
func (r *Report) String() string { return r.Text() }
