package core

import (
	"testing"

	"memcon/internal/trace"
)

// silentTrace writes the same page repeatedly with long gaps — the
// pattern where silent-write detection pays off.
func silentTrace() *trace.Trace {
	tr := &trace.Trace{Duration: 30 * q}
	for k := trace.Microseconds(0); k < 8; k++ {
		tr.Events = append(tr.Events, trace.Event{Page: 0, At: k * 3 * q})
	}
	return tr
}

func TestRepeatingContentSource(t *testing.T) {
	src := NewRepeatingContent(1.0, 7) // always silent after the first write
	g := systemGeometry()
	a := make([]uint64, g.ColsPerRow/64)
	b := make([]uint64, g.ColsPerRow/64)
	src.Content(0, 0, a)
	src.Content(0, 1, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("silent probability 1.0 produced different content")
		}
	}
	// A different page gets its own content.
	c := make([]uint64, g.ColsPerRow/64)
	src.Content(1, 2, c)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("distinct pages produced identical content")
	}
}

func TestSilentWriteDetectionKeepsLoRef(t *testing.T) {
	run := func(detect bool) (Report, int64) {
		sys, _ := newSystem(t, 0)
		sys.SetContentSource(NewRepeatingContent(1.0, 3))
		if detect {
			sys.EnableSilentWriteDetection()
		}
		rep, err := sys.Run(silentTrace())
		if err != nil {
			t.Fatal(err)
		}
		return rep, sys.SilentWrites()
	}
	plain, silentPlain := run(false)
	optimized, silentOpt := run(true)

	if silentPlain != 0 {
		t.Errorf("silent writes counted without detection: %d", silentPlain)
	}
	// All writes after the first store identical content.
	if silentOpt != 7 {
		t.Errorf("silent writes detected = %d, want 7", silentOpt)
	}
	// With detection, the page is never demoted after its first clean
	// test, so LO-REF time strictly grows.
	if optimized.LoRefTime <= plain.LoRefTime {
		t.Errorf("silent-write detection did not increase LO-REF time: %v vs %v",
			optimized.LoRefTime, plain.LoRefTime)
	}
	// And it needs at most as many tests.
	if optimized.TestsStarted > plain.TestsStarted {
		t.Errorf("silent-write detection started more tests: %d vs %d",
			optimized.TestsStarted, plain.TestsStarted)
	}
}

// twoRoundTrace writes every page once early and once again late — the
// second round changes aggressor content under neighbours that were
// already tested clean.
func twoRoundTrace(pages uint32) *trace.Trace {
	tr := &trace.Trace{Duration: 20 * q}
	for p := uint32(0); p < pages; p++ {
		tr.Events = append(tr.Events, trace.Event{Page: p, At: trace.Microseconds(p) * 977})
		tr.Events = append(tr.Events, trace.Event{Page: p, At: 10*q + trace.Microseconds(p)*977})
	}
	tr.Sort()
	return tr
}

// Without neighbour re-testing, cross-row aggressor changes can produce
// audited escapes; with it, the guarantee must hold exactly. This is
// the DESIGN.md §5a finding made executable.
func TestNeighborRetestClosesCrossRowEscapes(t *testing.T) {
	runOnce := func(harden bool) (escapes int, retests int64) {
		sys, _ := newSystem(t, 2e-2)
		sys.SetContentSource(NewRepeatingContent(0.5, 11))
		sys.EnableSilentWriteDetection()
		if harden {
			sys.EnableNeighborRetest()
		}
		if _, err := sys.Run(twoRoundTrace(100)); err != nil {
			t.Fatal(err)
		}
		return sys.UndetectedFailures(), sys.NeighborRetests()
	}
	plainEscapes, _ := runOnce(false)
	hardenedEscapes, retests := runOnce(true)
	if hardenedEscapes != 0 {
		t.Errorf("escapes with neighbour re-testing = %d, want 0", hardenedEscapes)
	}
	if retests == 0 {
		t.Error("hardened run initiated no neighbour re-tests; test is vacuous")
	}
	t.Logf("cross-row escapes: plain %d, hardened 0 (%d re-tests)", plainEscapes, retests)
}

func TestSetContentSourceNilRestoresDefault(t *testing.T) {
	sys, _ := newSystem(t, 0)
	sys.SetContentSource(nil)
	tr := &trace.Trace{Duration: 4 * q, Events: []trace.Event{{Page: 0, At: 0}}}
	if _, err := sys.Run(tr); err != nil {
		t.Fatal(err)
	}
}
