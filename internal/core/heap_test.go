package core

import (
	"math/rand"
	"sort"
	"testing"

	"memcon/internal/trace"
)

// TestPQueueOrdering pushes shuffled values and requires sorted pops.
func TestPQueueOrdering(t *testing.T) {
	q := newPQueue(func(a, b int) bool { return a < b })
	rng := rand.New(rand.NewSource(7))
	values := rng.Perm(1000)
	for _, v := range values {
		q.Push(v)
	}
	if q.Len() != len(values) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(values))
	}
	sort.Ints(values)
	for i, want := range values {
		if got := q.Peek(); got != want {
			t.Fatalf("Peek %d = %d, want %d", i, got, want)
		}
		if got := q.Pop(); got != want {
			t.Fatalf("Pop %d = %d, want %d", i, got, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not empty after draining: %d", q.Len())
	}
}

// TestPendingTestFIFOTieBreak pins the engine's drain order for tests
// completing at the same instant: first-queued pops first (the seq
// tie-break), matching a hardware CAM draining oldest-first. The old
// container/heap implementation left equal-done order unspecified.
func TestPendingTestFIFOTieBreak(t *testing.T) {
	q := newPQueue(lessPendingTest)
	done := trace.Microseconds(5000)
	for seq, page := range []uint32{9, 3, 7, 1} {
		q.Push(pendingTest{page: page, done: done, seq: uint64(seq)})
	}
	// An earlier-done test pushed last must still pop first.
	q.Push(pendingTest{page: 42, done: 1000, seq: 99})
	wantPages := []uint32{42, 9, 3, 7, 1}
	for i, want := range wantPages {
		if got := q.Pop().page; got != want {
			t.Errorf("pop %d = page %d, want %d", i, got, want)
		}
	}
}

// TestPQueueInterleaved alternates pushes and pops to exercise sift-down
// over partially drained heaps.
func TestPQueueInterleaved(t *testing.T) {
	q := newPQueue(func(a, b int) bool { return a < b })
	q.Push(5)
	q.Push(1)
	q.Push(3)
	if got := q.Pop(); got != 1 {
		t.Fatalf("Pop = %d, want 1", got)
	}
	q.Push(2)
	q.Push(0)
	for _, want := range []int{0, 2, 3, 5} {
		if got := q.Pop(); got != want {
			t.Errorf("Pop = %d, want %d", got, want)
		}
	}
}
