package core

import (
	"math/rand"
	"testing"

	"memcon/internal/trace"
)

// randomTrace builds a random but valid write trace.
func randomTrace(seed int64, events, pages int, horizon trace.Microseconds) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Duration: horizon}
	for i := 0; i < events; i++ {
		tr.Events = append(tr.Events, trace.Event{
			Page: uint32(rng.Intn(pages)),
			At:   trace.Microseconds(rng.Int63n(int64(horizon))),
		})
	}
	tr.Sort()
	return tr
}

// Engine invariants that must hold on ANY trace:
//
//  1. RefreshOps within [UpperBoundOps, BaselineOps].
//  2. LoRefTime within [0, pages*duration].
//  3. TestsCompleted + TestsAborted <= TestsStarted.
//  4. CorrectTests + MispredictedTests == TestsCompleted (every completed
//     test eventually gets a verdict).
//  5. Coverage within [0, 1].
func TestEngineInvariantsOnRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		tr := randomTrace(seed, 400, 24, 30*q)
		rep, err := Run(tr, cfgForTest(), nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.RefreshOps < rep.UpperBoundOps-1e-6 || rep.RefreshOps > rep.BaselineOps+1e-6 {
			t.Errorf("seed %d: ops %v outside [%v, %v]", seed, rep.RefreshOps, rep.UpperBoundOps, rep.BaselineOps)
		}
		maxLo := float64(rep.Duration) * float64(rep.Pages)
		if rep.LoRefTime < 0 || rep.LoRefTime > maxLo {
			t.Errorf("seed %d: LoRefTime %v outside [0, %v]", seed, rep.LoRefTime, maxLo)
		}
		if rep.TestsCompleted+rep.TestsAborted > rep.TestsStarted {
			t.Errorf("seed %d: completed %d + aborted %d > started %d",
				seed, rep.TestsCompleted, rep.TestsAborted, rep.TestsStarted)
		}
		if rep.CorrectTests+rep.MispredictedTests != rep.TestsCompleted {
			t.Errorf("seed %d: verdicts %d+%d != completed %d",
				seed, rep.CorrectTests, rep.MispredictedTests, rep.TestsCompleted)
		}
		if cov := rep.LoRefCoverage(); cov < 0 || cov > 1 {
			t.Errorf("seed %d: coverage %v outside [0,1]", seed, cov)
		}
	}
}

// The same invariants with a failing tester and a bounded buffer — the
// paths that diverge from the happy path.
func TestEngineInvariantsUnderFailuresAndOverflow(t *testing.T) {
	flaky := TesterFunc(func(page uint32, _ trace.Microseconds) bool { return page%3 != 0 })
	for seed := int64(0); seed < 8; seed++ {
		tr := randomTrace(1000+seed, 600, 48, 20*q)
		cfg := cfgForTest()
		cfg.BufferCap = 6
		rep, err := Run(tr, cfg, flaky)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.TestsFailed > rep.TestsCompleted {
			t.Errorf("seed %d: failed %d > completed %d", seed, rep.TestsFailed, rep.TestsCompleted)
		}
		if rep.RefreshOps < rep.UpperBoundOps-1e-6 || rep.RefreshOps > rep.BaselineOps+1e-6 {
			t.Errorf("seed %d: ops %v out of bounds", seed, rep.RefreshOps)
		}
		if rep.CorrectTests+rep.MispredictedTests != rep.TestsCompleted {
			t.Errorf("seed %d: verdict accounting broken", seed)
		}
	}
}

// Determinism: identical traces and configs produce identical reports.
func TestEngineDeterministic(t *testing.T) {
	tr := randomTrace(77, 300, 16, 20*q)
	a, err := Run(tr, cfgForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, cfgForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("engine not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
