package core

// pqueue is a small generic binary min-heap, replacing the pre-generics
// container/heap testHeap (interface{} Push/Pop boxing on the engine's
// hot test-scheduling path). The ordering function is fixed at
// construction; Push/Pop run the usual sift-up/sift-down.
type pqueue[T any] struct {
	less  func(a, b T) bool
	items []T
}

// newPQueue builds an empty heap ordered by less.
func newPQueue[T any](less func(a, b T) bool) pqueue[T] {
	return pqueue[T]{less: less}
}

// Len returns the number of queued items.
func (q *pqueue[T]) Len() int { return len(q.items) }

// Peek returns the minimum item without removing it. It must not be
// called on an empty queue.
func (q *pqueue[T]) Peek() T { return q.items[0] }

// Push inserts v.
func (q *pqueue[T]) Push(v T) {
	q.items = append(q.items, v)
	// Sift up.
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.items[i], q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// Reset empties the queue, keeping the backing array for reuse.
func (q *pqueue[T]) Reset() {
	var zero T
	for i := range q.items {
		q.items[i] = zero // release references held by the slots
	}
	q.items = q.items[:0]
}

// Pop removes and returns the minimum item. It must not be called on
// an empty queue.
func (q *pqueue[T]) Pop() T {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero T
	q.items[last] = zero // release references held by the slot
	q.items = q.items[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.items) && q.less(q.items[l], q.items[smallest]) {
			smallest = l
		}
		if r < len(q.items) && q.less(q.items[r], q.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
