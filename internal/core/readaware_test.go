package core

import (
	"math"
	"testing"

	"memcon/internal/dram"
	"memcon/internal/trace"
)

func TestReadSkipAnalysisBasics(t *testing.T) {
	// One page, duration 10 windows of 64 ms, reads in windows 0, 1, 5.
	iv := dram.RefreshWindowDefault
	ivUs := trace.Microseconds(iv / dram.Microsecond)
	reads := &trace.Trace{
		Duration: 10 * ivUs,
		Events: []trace.Event{
			{Page: 0, At: 1},
			{Page: 0, At: ivUs + 5},
			{Page: 0, At: ivUs + 7}, // same window as the previous read
			{Page: 0, At: 5*ivUs + 3},
		},
	}
	rep, err := ReadSkipAnalysis(reads, iv)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesWithReads != 1 {
		t.Errorf("pages = %d, want 1", rep.PagesWithReads)
	}
	if math.Abs(rep.Scheduled-10) > 1e-9 {
		t.Errorf("scheduled = %v, want 10", rep.Scheduled)
	}
	if rep.Skipped != 3 {
		t.Errorf("skipped = %v, want 3 (windows 0, 1, 5)", rep.Skipped)
	}
	if math.Abs(rep.SkipFraction()-0.3) > 1e-9 {
		t.Errorf("skip fraction = %v, want 0.3", rep.SkipFraction())
	}
}

func TestReadSkipAnalysisErrors(t *testing.T) {
	if _, err := ReadSkipAnalysis(&trace.Trace{}, 0); err == nil {
		t.Error("zero interval accepted")
	}
	bad := &trace.Trace{Events: []trace.Event{{Page: 0, At: 5}, {Page: 0, At: 1}}}
	if _, err := ReadSkipAnalysis(bad, dram.RefreshWindowDefault); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestReadSkipEmptyTrace(t *testing.T) {
	rep, err := ReadSkipAnalysis(&trace.Trace{Duration: 1000}, dram.RefreshWindowDefault)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheduled != 0 || rep.SkipFraction() != 0 {
		t.Errorf("empty trace report %+v", rep)
	}
}

func TestReadSkipDenseReadsSkipEverything(t *testing.T) {
	iv := dram.RefreshWindowDefault
	ivUs := trace.Microseconds(iv / dram.Microsecond)
	reads := &trace.Trace{Duration: 20 * ivUs}
	for w := trace.Microseconds(0); w < 20; w++ {
		reads.Events = append(reads.Events, trace.Event{Page: 3, At: w*ivUs + 10})
	}
	rep, err := ReadSkipAnalysis(reads, iv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.SkipFraction()-1.0) > 1e-9 {
		t.Errorf("dense reads skip fraction = %v, want 1.0", rep.SkipFraction())
	}
}

func TestCombinedSavings(t *testing.T) {
	// MEMCON at 70% reduction plus read-skip covering half the residual
	// refreshes: total 85%.
	rep := Report{BaselineOps: 100, RefreshOps: 30}
	rs := ReadSkipReport{Scheduled: 10, Skipped: 5}
	got := CombinedSavings(rep, rs)
	if math.Abs(got-0.85) > 1e-9 {
		t.Errorf("combined = %v, want 0.85", got)
	}
	// No reads: combined equals MEMCON alone.
	if got := CombinedSavings(rep, ReadSkipReport{}); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("combined without reads = %v, want 0.7", got)
	}
}
