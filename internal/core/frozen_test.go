package core

import (
	"fmt"
	"math/rand"
	"testing"

	"memcon/internal/dram"
	"memcon/internal/pril"
	"memcon/internal/trace"
)

// This file freezes the engine as it was before the epoch-stamped
// flat-state rewrite: eagerly initialized page entries, a separate
// lastWrite model (here irrelevant — no observer), no reuse. The
// accounting logic is copied verbatim. The differential test replays
// identical traces through the frozen engine and the live one — fresh,
// epoch-reset, and streaming — and demands identical reports.
// (The predictor rewrite is pinned separately in internal/pril.)

type frozenPageState struct {
	loRef    bool
	loSince  trace.Microseconds
	testing  bool
	testedAt trace.Microseconds
}

type frozenEngine struct {
	cfg      Config
	tester   Tester
	pred     *pril.Predictor
	pages    []frozenPageState
	tests    pqueue[pendingTest]
	seq      uint64
	mwi      dram.Nanoseconds
	testCost dram.Nanoseconds
	now      trace.Microseconds
	rep      Report
}

func newFrozenEngine(cfg Config, tester Tester) (*frozenEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mwi, err := cfg.costConfig().MinWriteInterval()
	if err != nil {
		return nil, err
	}
	pred, err := pril.New(pril.Config{
		Quantum:   cfg.Quantum,
		NumPages:  cfg.NumPages,
		BufferCap: cfg.BufferCap,
	})
	if err != nil {
		return nil, err
	}
	e := &frozenEngine{
		cfg:      cfg,
		tester:   tester,
		pred:     pred,
		pages:    make([]frozenPageState, cfg.NumPages),
		tests:    newPQueue(lessPendingTest),
		mwi:      mwi,
		testCost: cfg.costConfig().TestCost(),
	}
	for i := range e.pages {
		e.pages[i].testedAt = -1
	}
	e.rep.Pages = cfg.NumPages
	e.rep.MinWriteInterval = mwi
	pred.OnPredict(e.onPredict)
	return e, nil
}

func (e *frozenEngine) onPredict(page uint32, at trace.Microseconds) {
	st := &e.pages[page]
	if st.testing || st.loRef {
		return
	}
	st.testing = true
	e.rep.TestsStarted++
	done := at + trace.Microseconds(e.cfg.LoRef/dram.Microsecond)
	e.seq++
	e.tests.Push(pendingTest{page: page, done: done, seq: e.seq})
}

func (e *frozenEngine) drainTests(now trace.Microseconds) {
	for e.tests.Len() > 0 && e.tests.Peek().done <= now {
		t := e.tests.Pop()
		st := &e.pages[t.page]
		if !st.testing {
			continue
		}
		st.testing = false
		e.rep.TestsCompleted++
		if e.tester.Test(t.page, t.done) {
			st.loRef = true
			st.loSince = t.done
			st.testedAt = t.done
		} else {
			e.rep.TestsFailed++
			st.testedAt = t.done
		}
	}
}

func (e *frozenEngine) observe(ev trace.Event) error {
	if int(ev.Page) >= len(e.pages) {
		return fmt.Errorf("core: page %d outside configured space of %d", ev.Page, len(e.pages))
	}
	if ev.At < e.now {
		return fmt.Errorf("core: event at %d before engine time %d", ev.At, e.now)
	}
	e.pred.Finish(ev.At)
	e.drainTests(ev.At)
	e.now = ev.At

	st := &e.pages[ev.Page]
	if st.testing {
		st.testing = false
		e.rep.TestsAborted++
		e.rep.TestingTimeMispredNs += float64(e.testCost)
		e.rep.TestingTimeAbortedNs += float64(e.testCost)
	}
	if st.loRef {
		st.loRef = false
		e.rep.LoRefTime += float64(ev.At - st.loSince)
	}
	if st.testedAt >= 0 {
		idleNs := dram.Nanoseconds(ev.At-st.testedAt) * dram.Microsecond
		if idleNs < e.mwi {
			e.rep.MispredictedTests++
			e.rep.TestingTimeMispredNs += float64(e.testCost)
		} else {
			e.rep.CorrectTests++
			e.rep.TestingTimeCorrectNs += float64(e.testCost)
		}
		st.testedAt = -1
	}
	return e.pred.Observe(ev)
}

func (e *frozenEngine) finish(end trace.Microseconds) (Report, error) {
	if end < e.now {
		return Report{}, fmt.Errorf("core: finish time %d before engine time %d", end, e.now)
	}
	e.pred.Finish(end)
	e.drainTests(end)
	e.now = end

	for i := range e.pages {
		st := &e.pages[i]
		if st.loRef {
			e.rep.LoRefTime += float64(end - st.loSince)
			st.loRef = false
		}
		if st.testedAt >= 0 {
			idleNs := dram.Nanoseconds(end-st.testedAt) * dram.Microsecond
			if idleNs >= e.mwi {
				e.rep.CorrectTests++
				e.rep.TestingTimeCorrectNs += float64(e.testCost)
			} else {
				e.rep.MispredictedTests++
				e.rep.TestingTimeMispredNs += float64(e.testCost)
			}
			st.testedAt = -1
		}
		if st.testing {
			st.testing = false
		}
	}

	if ro := e.cfg.ReadOnlyRows; ro > 0 {
		loRefUs := float64(e.cfg.LoRef / dram.Microsecond)
		roLo := float64(end) - loRefUs
		if roLo < 0 {
			roLo = 0
		}
		e.rep.LoRefTime += float64(ro) * roLo
		e.rep.TestsStarted += int64(ro)
		e.rep.TestsCompleted += int64(ro)
		e.rep.CorrectTests += int64(ro)
		e.rep.TestingTimeCorrectNs += float64(ro) * float64(e.testCost)
	}

	e.rep.Duration = end
	e.rep.Pages = len(e.pages) + e.cfg.ReadOnlyRows
	durNs := float64(end) * float64(dram.Microsecond)
	pages := float64(e.rep.Pages)
	loNs := e.rep.LoRefTime * float64(dram.Microsecond)
	hiNs := durNs*pages - loNs
	e.rep.RefreshOps = hiNs/float64(e.cfg.HiRef) + loNs/float64(e.cfg.LoRef)
	e.rep.BaselineOps = durNs * pages / float64(e.cfg.HiRef)
	e.rep.UpperBoundOps = durNs * pages / float64(e.cfg.LoRef)
	e.rep.Pril = e.pred.Stats()
	return e.rep, nil
}

// engineDiffTrace generates a deterministic trace exercising the full
// engine state machine: predictions, test aborts (writes during the
// LO-REF test window), LO-REF pull-backs, and misprediction windows.
func engineDiffTrace(seed int64, pages int, quantum trace.Microseconds, quanta int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: fmt.Sprintf("engdiff-%d", seed), Duration: quantum * trace.Microseconds(quanta)}
	// Touch the top page so a streaming replay grows to the same page
	// space the materialized configuration declares.
	tr.Events = append(tr.Events, trace.Event{Page: uint32(pages - 1), At: 0})
	for qi := 0; qi < quanta; qi++ {
		base := quantum * trace.Microseconds(qi)
		writes := 30 + rng.Intn(150)
		for i := 0; i < writes; i++ {
			page := uint32(rng.Intn(pages))
			at := base + trace.Microseconds(rng.Int63n(int64(quantum)))
			tr.Events = append(tr.Events, trace.Event{Page: page, At: at})
			// Re-write some pages 1-3 quanta later to hit pages that are
			// mid-test or already at LO-REF.
			if rng.Intn(3) == 0 {
				later := at + trace.Microseconds(rng.Int63n(3*int64(quantum)))
				if later < tr.Duration {
					tr.Events = append(tr.Events, trace.Event{Page: page, At: later})
				}
			}
		}
	}
	tr.Sort()
	return tr
}

// flakyTester fails a deterministic subset of tests so the HI-REF
// mitigation path diverges from AlwaysPass.
func flakyTester(mod uint32) Tester {
	return TesterFunc(func(page uint32, _ trace.Microseconds) bool { return page%mod != 0 })
}

// TestDifferentialAgainstFrozenEngine pins the epoch-stamped engine to
// the frozen pre-rewrite engine across seeds × quanta × buffer caps,
// through the fresh, reset-reuse, and streaming entry points.
func TestDifferentialAgainstFrozenEngine(t *testing.T) {
	quanta := []trace.Microseconds{512 * trace.Millisecond, 1024 * trace.Millisecond, 2048 * trace.Millisecond}
	caps := []int{0, 5, 64}
	for seed := int64(1); seed <= 4; seed++ {
		for _, quantum := range quanta {
			for _, bufCap := range caps {
				cfg := DefaultConfig()
				cfg.Quantum = quantum
				cfg.BufferCap = bufCap
				cfg.NumPages = 256
				cfg.ReadOnlyRows = 64
				tester := flakyTester(7)
				tr := engineDiffTrace(seed, cfg.NumPages, quantum, 8)
				name := fmt.Sprintf("seed=%d quantum=%dms cap=%d", seed, quantum/trace.Millisecond, bufCap)

				frozen, err := newFrozenEngine(cfg, tester)
				if err != nil {
					t.Fatal(err)
				}
				for _, ev := range tr.Events {
					if err := frozen.observe(ev); err != nil {
						t.Fatal(err)
					}
				}
				want, err := frozen.finish(tr.Duration)
				if err != nil {
					t.Fatal(err)
				}

				// Fresh engine.
				eng, err := New(cfg, WithTester(tester))
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.Run(tr)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s: fresh run diverges:\n got %+v\nwant %+v", name, got, want)
				}

				// Reset-reuse: the same engine, epoch-reset, must
				// reproduce the report bit for bit.
				eng.Reset()
				got, err = eng.Run(tr)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s: reset-reuse run diverges:\n got %+v\nwant %+v", name, got, want)
				}

				// Streaming: replay through the Source path with a
				// deliberately undersized initial page space so the run
				// exercises on-demand growth.
				small := cfg
				small.NumPages = 1
				got, err = RunSource(nil, tr.Source(), small, WithTester(tester))
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s: streaming run diverges:\n got %+v\nwant %+v", name, got, want)
				}
			}
		}
	}
}
