package core

import (
	"testing"

	"memcon/internal/trace"
)

// With a dense weak-cell population and single-write pages, some tests
// fail; remap mitigation converts those permanently-HI rows into LO-REF
// rows backed by spares, improving the refresh reduction without
// breaking the reliability audit.
func TestRemapMitigationImprovesReduction(t *testing.T) {
	mkTrace := func() *trace.Trace {
		tr := &trace.Trace{Duration: 20 * q}
		for p := uint32(0); p < 200; p++ {
			tr.Events = append(tr.Events, trace.Event{Page: p, At: trace.Microseconds(p) * 991})
		}
		tr.Sort()
		return tr
	}
	plainSys, _ := newSystem(t, 3e-2)
	plain, err := plainSys.Run(mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	if plain.TestsFailed == 0 {
		t.Skip("no failing tests for this seed; remap has nothing to do")
	}

	remapSys, _ := newSystem(t, 3e-2)
	if err := remapSys.EnableRemapMitigation(8, 1); err != nil {
		t.Fatal(err)
	}
	mitigated, err := remapSys.Run(mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	if remapSys.RemappedRows() == 0 {
		t.Fatal("remap mitigation never fired despite failing tests")
	}
	if mitigated.RefreshReduction() <= plain.RefreshReduction() {
		t.Errorf("remap did not improve reduction: %v vs %v",
			mitigated.RefreshReduction(), plain.RefreshReduction())
	}
	if got := remapSys.UndetectedFailures(); got != 0 {
		t.Errorf("undetected failures with remap = %d, want 0", got)
	}
}

func TestRemapMitigationValidation(t *testing.T) {
	sys, _ := newSystem(t, 0)
	if err := sys.EnableRemapMitigation(0, 1); err == nil {
		t.Error("zero spares accepted")
	}
	if err := sys.EnableRemapMitigation(4, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if sys.RemappedRows() != 0 {
		t.Error("remapped rows nonzero without policy")
	}
}

// A remapped row that is rewritten stays safe: subsequent tests trust
// the screened spare and the row returns to LO-REF.
func TestRemappedRowSurvivesRewrites(t *testing.T) {
	sys, _ := newSystem(t, 5e-2)
	if err := sys.EnableRemapMitigation(8, 1); err != nil {
		t.Fatal(err)
	}
	// Rewrites change neighbour aggressor content; the cross-row
	// hardening (see TestNeighborRetestClosesCrossRowEscapes) is what
	// guarantees zero escapes on multi-round traces.
	sys.EnableNeighborRetest()
	tr := &trace.Trace{Duration: 30 * q}
	for p := uint32(0); p < 100; p++ {
		tr.Events = append(tr.Events, trace.Event{Page: p, At: trace.Microseconds(p) * 701})
		tr.Events = append(tr.Events, trace.Event{Page: p, At: 10*q + trace.Microseconds(p)*701})
	}
	tr.Sort()
	rep, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sys.RemappedRows() == 0 {
		t.Skip("no remaps for this seed")
	}
	if got := sys.UndetectedFailures(); got != 0 {
		t.Errorf("undetected failures = %d, want 0", got)
	}
	_ = rep
}
