package core

import (
	"testing"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/trace"
)

func systemGeometry() dram.Geometry {
	return dram.Geometry{
		Ranks:         1,
		ChipsPerRank:  1,
		BanksPerChip:  2,
		RowsPerBank:   256,
		ColsPerRow:    512,
		RedundantCols: 16,
	}
}

func newSystem(t *testing.T, weakFraction float64) (*System, dram.Geometry) {
	t.Helper()
	geom := systemGeometry()
	scr := dram.NewScrambler(geom, 77, nil)
	params := faults.ParamsForRefresh(dram.RefreshWindowDefault)
	if weakFraction > 0 {
		params.WeakCellFraction = weakFraction
	}
	model, err := faults.NewModel(geom, scr, 77, params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfgForTest(), mod, model)
	if err != nil {
		t.Fatal(err)
	}
	return sys, geom
}

func TestNewSystemGeometryMismatch(t *testing.T) {
	geomA := systemGeometry()
	geomB := systemGeometry()
	geomB.RowsPerBank *= 2
	scr := dram.NewScrambler(geomA, 1, nil)
	model, err := faults.NewModel(geomA, scr, 1, faults.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geomB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(cfgForTest(), mod, model); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestSystemRejectsOversizedTrace(t *testing.T) {
	sys, geom := newSystem(t, 0)
	tr := &trace.Trace{
		Duration: 4 * q,
		Events:   []trace.Event{{Page: uint32(geom.TotalRows()), At: 0}},
	}
	if _, err := sys.Run(tr); err == nil {
		t.Error("page beyond module capacity accepted")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	sys, _ := newSystem(t, 2e-3)
	// 50 pages, each written once and left idle: most go to LO-REF, a
	// few may fail their test and stay mitigated at HI-REF.
	tr := &trace.Trace{Duration: 20 * q}
	for p := uint32(0); p < 50; p++ {
		tr.Events = append(tr.Events, trace.Event{Page: p, At: trace.Microseconds(p) * 997})
	}
	tr.Sort()
	rep, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsCompleted == 0 {
		t.Fatal("no tests completed")
	}
	// The reliability guarantee: no silent failures, ever.
	if got := sys.UndetectedFailures(); got != 0 {
		t.Errorf("undetected failures = %d, want 0", got)
	}
	if rep.RefreshReduction() <= 0 {
		t.Errorf("reduction = %v, want positive", rep.RefreshReduction())
	}
}

func TestSystemDetectsAggressiveContent(t *testing.T) {
	// With a dense weak-cell population, some tests must fail and the
	// engine must keep those rows at HI-REF.
	sys, _ := newSystem(t, 3e-2)
	tr := &trace.Trace{Duration: 20 * q}
	for p := uint32(0); p < 200; p++ {
		tr.Events = append(tr.Events, trace.Event{Page: p, At: trace.Microseconds(p) * 991})
	}
	tr.Sort()
	rep, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsFailed == 0 {
		t.Skip("no failing content drawn for this seed; cannot exercise mitigation path")
	}
	if sys.DetectedFailures() == 0 {
		t.Error("failed tests but no detected failing cells recorded")
	}
	if got := sys.UndetectedFailures(); got != 0 {
		t.Errorf("undetected failures = %d, want 0", got)
	}
	// Mitigated rows must not have contributed LO-REF time... unless
	// they were re-tested after a later write with friendlier content;
	// with single writes per page, failed rows stay at HI-REF, so the
	// reduction must sit below the upper bound.
	if rep.RefreshReduction() >= rep.UpperBoundReduction() {
		t.Errorf("reduction %v not below upper bound %v despite mitigated rows",
			rep.RefreshReduction(), rep.UpperBoundReduction())
	}
}

func TestSystemHiRefIsUnconditionallySafe(t *testing.T) {
	// A trace that hammers pages with rewrites keeps everything at
	// HI-REF; the audit must stay clean no matter the content.
	sys, _ := newSystem(t, 5e-2)
	tr := &trace.Trace{Duration: 6 * q}
	for k := trace.Microseconds(0); k < 6; k++ {
		for p := uint32(0); p < 64; p++ {
			tr.Events = append(tr.Events, trace.Event{Page: p, At: k*q + trace.Microseconds(p)})
		}
	}
	tr.Sort()
	rep, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.UndetectedFailures(); got != 0 {
		t.Errorf("undetected failures at HI-REF = %d, want 0", got)
	}
	if rep.LoRefTime != 0 {
		t.Errorf("rewrite-heavy trace reached LO-REF for %v us", rep.LoRefTime)
	}
}
