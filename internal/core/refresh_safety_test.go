package core

import (
	"testing"

	"memcon/internal/dram"
	"memcon/internal/faults"
)

// TestDefaultConfigHiRefSafeUnderMaxStress pins the window-ratio
// precondition faults.ParamsForRefresh documents: the default HI-REF
// window must sit below LoRef*(1-MaxStress), or rows in the HI-REF
// state could fail before their next refresh under adversarial
// content — exactly the failure MEMCON's HI-REF state is meant to rule
// out. The abstract engine cannot enforce this itself (it never sees
// MaxStress), so the default wiring is checked here.
func TestDefaultConfigHiRefSafeUnderMaxStress(t *testing.T) {
	cfg := DefaultConfig()
	p := faults.ParamsForRefresh(cfg.LoRef)
	worst := dram.Nanoseconds(float64(p.RetentionFloor) * (1 - p.MaxStress))
	if worst <= cfg.HiRef {
		t.Fatalf("DefaultConfig HI-REF %d not covered by worst-case retention %d (LoRef %d, MaxStress %v)",
			cfg.HiRef, worst, cfg.LoRef, p.MaxStress)
	}
}
