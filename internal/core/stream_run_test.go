package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"testing"

	"memcon/internal/trace"
)

// cancellingSource wraps a Source and fires a context cancellation
// after a fixed number of events have been handed out, emulating a
// user interrupt in the middle of a long streaming replay.
type cancellingSource struct {
	src    trace.Source
	served int
	after  int
	cancel context.CancelFunc
}

func (c *cancellingSource) Name() string                 { return c.src.Name() }
func (c *cancellingSource) Duration() trace.Microseconds { return c.src.Duration() }

func (c *cancellingSource) Next() (trace.Event, error) {
	c.served++
	if c.served == c.after {
		c.cancel()
	}
	return c.src.Next()
}

func TestRunSourceCancelledContext(t *testing.T) {
	const events = 10 * ctxCheckStride
	tr := &trace.Trace{Name: "cancel", Duration: trace.Microseconds(events) * 10}
	for i := 0; i < events; i++ {
		tr.Events = append(tr.Events, trace.Event{
			Page: uint32(i % 128),
			At:   trace.Microseconds(i) * 10,
		})
	}

	t.Run("already cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		src := &cancellingSource{src: tr.Source(), after: -1, cancel: func() {}}
		if _, err := RunSource(ctx, src, DefaultConfig()); !errors.Is(err, context.Canceled) {
			t.Fatalf("RunSource = %v, want context.Canceled", err)
		}
		if src.served != 0 {
			t.Errorf("cancelled run consumed %d events before the first check", src.served)
		}
	})

	t.Run("mid stream", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		src := &cancellingSource{src: tr.Source(), after: events / 2, cancel: cancel}
		if _, err := RunSource(ctx, src, DefaultConfig()); !errors.Is(err, context.Canceled) {
			t.Fatalf("RunSource = %v, want context.Canceled", err)
		}
		// The run must stop at the next stride check, not drain the
		// remaining half of the stream.
		if src.served >= events {
			t.Errorf("cancelled run drained all %d events", events)
		}
	})
}

// TestRunSourceDecodeError pins error plumbing: a truncated compact
// stream surfaces its positioned DecodeError through RunSource.
func TestRunSourceDecodeError(t *testing.T) {
	var buf bytes.Buffer
	enc, err := trace.NewEncoder(&buf, "trunc", 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := enc.Encode(trace.Event{Page: uint32(i), At: trace.Microseconds(i) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := trace.NewStream(bytes.NewReader(buf.Bytes()[:buf.Len()-2]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSource(context.Background(), s, DefaultConfig())
	var de *trace.DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("RunSource on truncated stream = %v (%T), want *trace.DecodeError", err, err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("errors.Is(%v, io.ErrUnexpectedEOF) = false", err)
	}
}

// TestStreamingReplayMemoryIsOPages is the acceptance test for the
// streaming path: a 5M-event compact trace replays through
// trace.Stream with heap growth proportional to the page count, far
// below the ~80 MB the materialized event slice would occupy.
func TestStreamingReplayMemoryIsOPages(t *testing.T) {
	if testing.Short() {
		t.Skip("5M-event replay skipped in -short mode")
	}
	const (
		events = 5_000_000
		pages  = 4096
		stepUs = 13 // 5M * 13 µs = 65 s of trace time
	)
	duration := trace.Microseconds(events)*stepUs + trace.Second

	var buf bytes.Buffer
	buf.Grow(16 << 20)
	enc, err := trace.NewEncoder(&buf, "big", duration, events)
	if err != nil {
		t.Fatal(err)
	}
	at := trace.Microseconds(0)
	for i := 0; i < events; i++ {
		// Knuth-hash page walk: touches the whole page space without
		// per-event rand overhead, deterministic across runs.
		page := uint32(uint64(i) * 2654435761 % pages)
		if err := enc.Encode(trace.Event{Page: page, At: at}); err != nil {
			t.Fatal(err)
		}
		at += stepUs
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("encoded %d events into %d bytes (%.1f bits/event)",
		events, buf.Len(), 8*float64(buf.Len())/events)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	s, err := trace.NewStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NumPages = 1 // force streaming growth
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.RunSource(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(e) // keep engine state resident across the measurement

	if rep.Pril.Writes != events {
		t.Fatalf("replayed %d writes, want %d", rep.Pril.Writes, events)
	}
	if got := rep.Pages - cfg.ReadOnlyRows; got != pages {
		t.Fatalf("engine grew to %d pages, want %d", got, pages)
	}

	const eventBytes = events * 16 // size of the materialized []Event
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	t.Logf("heap growth %d bytes (materialized events would be %d)", growth, eventBytes)
	if growth > eventBytes/8 {
		t.Fatalf("streaming replay grew the heap by %d bytes — not O(pages) (event storage is %d)",
			growth, eventBytes)
	}
}
