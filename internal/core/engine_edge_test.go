package core

import (
	"math"
	"testing"

	"memcon/internal/trace"
)

func TestReadOnlyRowsValidation(t *testing.T) {
	c := cfgForTest()
	c.ReadOnlyRows = -1
	if err := c.Validate(); err == nil {
		t.Error("negative read-only rows accepted")
	}
}

func TestReadOnlyRowsAccounting(t *testing.T) {
	tr := &trace.Trace{
		Duration: 10 * q,
		Events:   []trace.Event{{Page: 0, At: 0}},
	}
	cfg := cfgForTest()
	cfg.NumPages = 1
	cfg.ReadOnlyRows = 9
	rep, err := Run(tr, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pages != 10 {
		t.Errorf("pages = %d, want 10 (1 written + 9 read-only)", rep.Pages)
	}
	// Read-only rows: tested once each, then LO for duration-64ms.
	if rep.TestsCompleted != 1+9 {
		t.Errorf("tests completed = %d, want 10", rep.TestsCompleted)
	}
	// Reduction approaches the upper bound as read-only rows dominate.
	if rep.RefreshReduction() < 0.70 {
		t.Errorf("reduction with 90%% read-only module = %v, want > 0.70", rep.RefreshReduction())
	}
	// Baseline scales with the full module.
	wantBase := 10.0 * float64(10*q) * 1000 / float64(16*1000*1000)
	if math.Abs(rep.BaselineOps-wantBase) > 1e-6 {
		t.Errorf("baseline ops = %v, want %v", rep.BaselineOps, wantBase)
	}
}

func TestRetestErrors(t *testing.T) {
	e, err := New(cfgForTest())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Retest(5, 0); err == nil {
		t.Error("out-of-range retest page accepted")
	}
	if err := e.Observe(trace.Event{Page: 0, At: q}); err != nil {
		t.Fatal(err)
	}
	if err := e.Retest(0, 0); err == nil {
		t.Error("retest in the past accepted")
	}
}

func TestRetestOnHiRefPageIsNoop(t *testing.T) {
	e, _ := New(cfgForTest())
	if err := e.Retest(0, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Finish(4 * q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsStarted != 0 {
		t.Errorf("retest on an untested HI page started %d tests, want 0", rep.TestsStarted)
	}
}

func TestRetestVoidsLoRef(t *testing.T) {
	e, _ := New(cfgForTest())
	if err := e.Observe(trace.Event{Page: 0, At: 0}); err != nil {
		t.Fatal(err)
	}
	// Advance past prediction+test: page is at LO-REF.
	if err := e.Observe(trace.Event{Page: 0, At: 5 * q}); err != nil {
		t.Fatal(err)
	}
	// (the write itself demoted it; set up again)
	rep, err := e.Finish(10 * q)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: two tests (one per long idle).
	if rep.TestsStarted != 2 {
		t.Errorf("tests started = %d, want 2", rep.TestsStarted)
	}

	// Fresh engine: retest while LO-REF must abort LO and start a test.
	e2, _ := New(cfgForTest())
	e2.Observe(trace.Event{Page: 0, At: 0})
	// Force quantum processing to get the page to LO: feed another page.
	e2.Observe(trace.Event{Page: 0, At: 0}) // duplicate at same time: multi-write, never predicted
	rep2, _ := e2.Finish(10 * q)
	if rep2.TestsStarted != 0 {
		t.Errorf("multi-write page was tested %d times, want 0", rep2.TestsStarted)
	}
}

func TestFailingTestStillCountsTowardsPredictionAccuracy(t *testing.T) {
	// A failing test followed by a long idle still amortizes (the page
	// stayed idle; MEMCON just could not relax it).
	tr := &trace.Trace{Duration: 10 * q, Events: []trace.Event{{Page: 0, At: 0}}}
	alwaysFail := TesterFunc(func(uint32, trace.Microseconds) bool { return false })
	rep, err := Run(tr, cfgForTest(), alwaysFail)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorrectTests != 1 {
		t.Errorf("correct tests = %d, want 1 (idle exceeded MWI)", rep.CorrectTests)
	}
}

func TestEngineWithBoundedBuffer(t *testing.T) {
	tr := &trace.Trace{Duration: 6 * q}
	for p := uint32(0); p < 50; p++ {
		tr.Events = append(tr.Events, trace.Event{Page: p, At: trace.Microseconds(p)})
	}
	cfg := cfgForTest()
	cfg.BufferCap = 10
	rep, err := Run(tr, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pril.Discards != 40 {
		t.Errorf("discards = %d, want 40", rep.Pril.Discards)
	}
	if rep.TestsStarted != 10 {
		t.Errorf("tests = %d, want 10 (buffer capacity)", rep.TestsStarted)
	}
}
