// Package core implements the MEMCON engine — the paper's primary
// contribution. MEMCON ensures correct DRAM operation against
// data-dependent failures using only the CURRENT memory content:
//
//   - every row starts (and returns on every write) to the aggressive
//     HI-REF refresh rate, under which no data-dependent failure can
//     manifest;
//   - the PRIL predictor watches the write stream and flags pages whose
//     remaining write interval is predicted long enough to amortize a
//     test (≥ MinWriteInterval, §3.3);
//   - a flagged page is tested with its current content: the row is kept
//     idle for one LO-REF window and read back (Read-and-Compare or
//     Copy-and-Compare);
//   - rows that test clean move to LO-REF until their next write; rows
//     that fail stay at HI-REF (the mitigation).
//
// The engine is trace-driven and accounts refresh operations, testing
// time, LO-REF coverage and prediction accuracy — the §6.1/§6.4
// quantities. Whether a test passes is delegated to a Tester, so the
// engine runs both in fast accounting mode (synthetic outcomes) and
// against the full dram+faults silicon model (see System).
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"memcon/internal/costmodel"
	"memcon/internal/dram"
	"memcon/internal/obs"
	"memcon/internal/pril"
	"memcon/internal/trace"
)

// Tester decides the outcome of a MEMCON online test of a page with its
// current content. It returns true when the page has no data-dependent
// failure (row may move to LO-REF).
type Tester interface {
	Test(page uint32, at trace.Microseconds) bool
}

// TesterFunc adapts a function to the Tester interface.
type TesterFunc func(page uint32, at trace.Microseconds) bool

// Test implements Tester.
func (f TesterFunc) Test(page uint32, at trace.Microseconds) bool { return f(page, at) }

// AlwaysPass is the accounting-mode tester: every test finds no failure.
var AlwaysPass Tester = TesterFunc(func(uint32, trace.Microseconds) bool { return true })

// Config parameterizes the engine.
type Config struct {
	// Quantum is PRIL's quantum (and therefore the current-interval
	// length threshold); the paper evaluates 512/1024/2048 ms.
	Quantum trace.Microseconds
	// HiRef is the aggressive refresh interval (16 ms).
	HiRef dram.Nanoseconds
	// LoRef is the relaxed refresh interval for clean tested rows (64 ms).
	LoRef dram.Nanoseconds
	// Mode selects the test mode and with it the per-test cost.
	Mode costmodel.TestMode
	// BufferCap bounds PRIL's write buffers (0 = unbounded).
	BufferCap int
	// NumPages is the page space; traces are auto-sized when larger.
	NumPages int
	// ReadOnlyRows models the rest of the module: rows that hold static
	// (read-only) content and are never written during the run. MEMCON
	// tests each once at startup and keeps it at LO-REF thereafter
	// (§6.1: the LO-REF state applies to rows identified as read-only,
	// besides rows predicted idle). They widen the refresh-accounting
	// denominators the way a real module — much larger than a
	// workload's written footprint — does.
	ReadOnlyRows int
}

// DefaultConfig returns the paper's primary configuration: 1024 ms
// quantum, HI-REF 16 ms, LO-REF 64 ms, Read-and-Compare.
func DefaultConfig() Config {
	return Config{
		Quantum:   1024 * trace.Millisecond,
		HiRef:     dram.RefreshWindowAggressive,
		LoRef:     dram.RefreshWindowDefault,
		Mode:      costmodel.ReadCompare,
		BufferCap: 0,
		NumPages:  1,
	}
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	if c.Quantum <= 0 {
		return fmt.Errorf("core: quantum must be positive, got %d", c.Quantum)
	}
	if c.HiRef <= 0 || c.LoRef <= c.HiRef {
		return fmt.Errorf("core: need 0 < HiRef (%d) < LoRef (%d)", c.HiRef, c.LoRef)
	}
	if c.NumPages <= 0 {
		return fmt.Errorf("core: page count must be positive, got %d", c.NumPages)
	}
	if c.BufferCap < 0 {
		return fmt.Errorf("core: buffer capacity cannot be negative, got %d", c.BufferCap)
	}
	if c.ReadOnlyRows < 0 {
		return fmt.Errorf("core: read-only rows cannot be negative, got %d", c.ReadOnlyRows)
	}
	return nil
}

// costConfig builds the cost-model view of this configuration.
func (c Config) costConfig() costmodel.Config {
	return costmodel.Config{
		Timing:        dram.DDR31600(),
		HiRefInterval: c.HiRef,
		LoRefInterval: c.LoRef,
		Mode:          c.Mode,
	}
}

// Report is the outcome of one engine run — the §6.1/§6.4 metrics.
type Report struct {
	// Duration is the simulated time.
	Duration trace.Microseconds
	// Pages is the tracked page count.
	Pages int

	// RefreshOps is the number of refresh operations MEMCON issued.
	RefreshOps float64
	// BaselineOps is the all-rows HI-REF refresh operation count.
	BaselineOps float64
	// UpperBoundOps is the all-rows LO-REF count (the 75% floor).
	UpperBoundOps float64

	// TestsStarted/TestsCompleted/TestsAborted count online tests; a
	// test aborts when its page is written during the test window.
	TestsStarted   int64
	TestsCompleted int64
	TestsAborted   int64
	// TestsFailed counts completed tests that found a failure (row kept
	// at HI-REF).
	TestsFailed int64
	// CorrectTests/MispredictedTests split completed tests by whether
	// the page then stayed idle at least MinWriteInterval.
	CorrectTests      int64
	MispredictedTests int64

	// LoRefTime is the page-time spent at LO-REF (µs·pages).
	LoRefTime float64
	// TestingTimeNs is the latency spent on test accesses, split by
	// prediction correctness.
	TestingTimeCorrectNs float64
	TestingTimeMispredNs float64
	TestingTimeAbortedNs float64

	// MinWriteInterval is the amortization threshold used.
	MinWriteInterval dram.Nanoseconds

	// Pril is the predictor's bookkeeping.
	Pril pril.Stats
}

// RefreshReduction returns the fractional refresh reduction vs the
// HI-REF baseline.
func (r Report) RefreshReduction() float64 {
	if r.BaselineOps <= 0 {
		return 0
	}
	return 1 - r.RefreshOps/r.BaselineOps
}

// UpperBoundReduction returns the best achievable reduction (all rows at
// LO-REF all the time).
func (r Report) UpperBoundReduction() float64 {
	if r.BaselineOps <= 0 {
		return 0
	}
	return 1 - r.UpperBoundOps/r.BaselineOps
}

// LoRefCoverage returns the fraction of page-time spent at LO-REF —
// Fig. 17's coverage metric.
func (r Report) LoRefCoverage() float64 {
	total := float64(r.Duration) * float64(r.Pages)
	if total <= 0 {
		return 0
	}
	return r.LoRefTime / total
}

// TestingTimeNs returns the total testing latency.
func (r Report) TestingTimeNs() float64 {
	return r.TestingTimeCorrectNs + r.TestingTimeMispredNs + r.TestingTimeAbortedNs
}

// BaselineRefreshTimeNs returns the latency the baseline spends on
// refresh operations (for the Fig. 18 normalization).
func (r Report) BaselineRefreshTimeNs() float64 {
	return r.BaselineOps * float64(dram.DDR31600().RefreshCost())
}

// pendingTest is a scheduled test completion. seq is the scheduling
// order, used as the tie-break so tests that complete at the same
// instant drain oldest-first (the order a hardware CAM drains in).
type pendingTest struct {
	page uint32
	done trace.Microseconds
	seq  uint64
}

// lessPendingTest orders the engine's test queue: by completion time,
// then by scheduling order for equal completion times.
func lessPendingTest(a, b pendingTest) bool {
	if a.done != b.done {
		return a.done < b.done
	}
	return a.seq < b.seq
}

// pageState tracks MEMCON's view of one page/row. Entries are
// epoch-stamped: an entry whose epoch differs from the engine's is
// logically in the initial state (HI-REF, no test, no history), so
// Reset invalidates the whole array in O(1) by bumping the engine
// epoch, and stateOf normalizes stale entries lazily on first touch.
type pageState struct {
	// epoch is the engine epoch this entry was last written under.
	epoch uint32
	// loRef is true while the row runs at the relaxed rate.
	loRef bool
	// testing is true while a test is in flight.
	testing bool
	// loSince is when the row entered LO-REF (valid when loRef).
	loSince trace.Microseconds
	// testedAt is the completion time of the last clean test (for
	// misprediction accounting); negative when unset.
	testedAt trace.Microseconds
	// lastWrite is the page's previous write time (-1 before the first
	// write), feeding the write-interval observability payload.
	lastWrite trace.Microseconds
}

// Engine is the trace-driven MEMCON engine.
type Engine struct {
	cfg      Config
	tester   Tester
	pred     *pril.Predictor
	pages    []pageState
	epoch    uint32
	tests    pqueue[pendingTest]
	seq      uint64
	mwi      dram.Nanoseconds
	testCost dram.Nanoseconds
	now      trace.Microseconds
	rep      Report

	// obs receives structured lifecycle events; nil disables the event
	// path entirely (every emission is behind a nil check and events
	// are value structs, so the disabled engine pays one branch).
	obs obs.Observer
	// clock supplies wall time for the run-duration event; injectable
	// for deterministic tests. Only consulted when obs is set.
	clock func() time.Time
}

// engineOptions collects the optional engine dependencies.
type engineOptions struct {
	tester Tester
	obs    obs.Observer
	clock  func() time.Time
}

// EngineOption customizes engine construction (see New).
type EngineOption func(*engineOptions)

// WithTester installs the online-test oracle. A nil tester (or no
// WithTester option at all) selects AlwaysPass, the accounting mode.
func WithTester(t Tester) EngineOption {
	return func(o *engineOptions) { o.tester = t }
}

// WithObserver installs a structured-event observer on the engine
// lifecycle (writes, predictions, test queue/drain/abort, HI-REF and
// LO-REF transitions). A nil observer disables observation; the
// disabled event path costs a nil check and performs no allocation.
func WithObserver(o obs.Observer) EngineOption {
	return func(eo *engineOptions) { eo.obs = o }
}

// WithClock injects the wall-clock source used for the run-duration
// observability event (obs.KindRunDone). A nil clock selects time.Now.
// The clock never influences simulation results — simulated time comes
// exclusively from the trace.
func WithClock(now func() time.Time) EngineOption {
	return func(o *engineOptions) { o.clock = now }
}

// applyEngineOptions folds the options over the defaults.
func applyEngineOptions(opts []EngineOption) engineOptions {
	var eo engineOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&eo)
		}
	}
	if eo.tester == nil {
		eo.tester = AlwaysPass
	}
	if eo.clock == nil {
		eo.clock = time.Now
	}
	return eo
}

// New builds an engine over the configuration with functional options:
//
//	eng, err := core.New(cfg, core.WithTester(t), core.WithObserver(o))
//
// It is the constructor the public memcon facade wraps.
func New(cfg Config, opts ...EngineOption) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eo := applyEngineOptions(opts)
	mwi, err := cfg.costConfig().MinWriteInterval()
	if err != nil {
		return nil, err
	}
	pred, err := pril.New(pril.Config{
		Quantum:   cfg.Quantum,
		NumPages:  cfg.NumPages,
		BufferCap: cfg.BufferCap,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		tester:   eo.tester,
		pred:     pred,
		pages:    make([]pageState, cfg.NumPages),
		epoch:    1, // zero-valued entries carry epoch 0, i.e. stale
		tests:    newPQueue(lessPendingTest),
		mwi:      mwi,
		testCost: cfg.costConfig().TestCost(),
		obs:      eo.obs,
		clock:    eo.clock,
	}
	if e.obs != nil {
		pred.SetObserver(e.obs)
	}
	e.rep.Pages = cfg.NumPages
	e.rep.MinWriteInterval = mwi
	pred.OnPredict(e.onPredict)
	return e, nil
}

// stateOf returns the current-epoch state for page, normalizing an
// entry left stale by Reset (or never touched since New) to the
// initial state.
func (e *Engine) stateOf(page uint32) *pageState {
	st := &e.pages[page]
	if st.epoch != e.epoch {
		*st = pageState{epoch: e.epoch, testedAt: -1, lastWrite: -1}
	}
	return st
}

// pageStatus reports whether page currently runs at LO-REF and whether
// a test is in flight, without materializing state: stale-epoch (or
// out-of-range) entries read as the initial HI-REF/idle state. It is
// the read-only probe System uses on its neighbour-retest and audit
// paths.
func (e *Engine) pageStatus(page uint32) (loRef, testing bool) {
	if int(page) >= len(e.pages) {
		return false, false
	}
	st := &e.pages[page]
	if st.epoch != e.epoch {
		return false, false
	}
	return st.loRef, st.testing
}

// grow extends the engine's page space to at least pages, preserving
// all state; the streaming replay calls it as the source reveals its
// page space. New entries arrive stale and normalize on first touch.
func (e *Engine) grow(pages int) {
	if pages <= len(e.pages) {
		return
	}
	e.pages = append(e.pages, make([]pageState, pages-len(e.pages))...)
	e.pred.Grow(pages)
	e.cfg.NumPages = pages
	e.rep.Pages = pages
}

// Reset returns the engine to its initial state while keeping every
// allocation: the page array is invalidated in O(1) by bumping the
// epoch (stale entries normalize lazily), the test queue keeps its
// backing array, and the predictor resets in place. One engine can
// replay trace after trace with zero steady-state allocations.
func (e *Engine) Reset() {
	e.epoch++
	if e.epoch == 0 {
		// The 32-bit epoch wrapped: old stamps would be ambiguous, so
		// pay one eager clear and restart at epoch 1.
		for i := range e.pages {
			e.pages[i] = pageState{}
		}
		e.epoch = 1
	}
	e.tests.Reset()
	e.seq = 0
	e.now = 0
	e.rep = Report{Pages: e.cfg.NumPages, MinWriteInterval: e.mwi}
	e.pred.Reset()
}

// onPredict is invoked by PRIL at quantum boundaries for pages predicted
// to stay idle: MEMCON initiates a test with the current content. The
// test occupies one LO-REF window (the row is deliberately kept idle so
// victims are tested at lowest charge, §3.2).
func (e *Engine) onPredict(page uint32, at trace.Microseconds) {
	st := e.stateOf(page)
	if st.testing || st.loRef {
		return // already under test or already relaxed
	}
	st.testing = true
	e.rep.TestsStarted++
	done := at + trace.Microseconds(e.cfg.LoRef/dram.Microsecond)
	e.schedule(page, at, done)
	if e.obs != nil {
		e.obs.OnEvent(obs.Event{Kind: obs.KindPredict, Page: page, At: int64(at)})
		e.obs.OnEvent(obs.Event{Kind: obs.KindTestQueued, Page: page, At: int64(at), Aux: int64(done)})
	}
}

// schedule enqueues a test completion.
func (e *Engine) schedule(page uint32, _ trace.Microseconds, done trace.Microseconds) {
	e.seq++
	e.tests.Push(pendingTest{page: page, done: done, seq: e.seq})
}

// drainTests completes every scheduled test up to time now.
func (e *Engine) drainTests(now trace.Microseconds) {
	for e.tests.Len() > 0 && e.tests.Peek().done <= now {
		t := e.tests.Pop()
		st := e.stateOf(t.page)
		if !st.testing {
			continue // aborted by an intervening write
		}
		st.testing = false
		e.rep.TestsCompleted++
		if e.tester.Test(t.page, t.done) {
			st.loRef = true
			st.loSince = t.done
			st.testedAt = t.done
			if e.obs != nil {
				e.obs.OnEvent(obs.Event{Kind: obs.KindTestDrained, Page: t.page, At: int64(t.done), Aux: 1})
				e.obs.OnEvent(obs.Event{Kind: obs.KindRefreshToLo, Page: t.page, At: int64(t.done)})
			}
		} else {
			e.rep.TestsFailed++
			// Mitigation: the row stays at HI-REF. The test itself was
			// still a correct prediction cost-wise if the page stays
			// idle; count it via testedAt as well.
			st.testedAt = t.done
			if e.obs != nil {
				e.obs.OnEvent(obs.Event{Kind: obs.KindTestDrained, Page: t.page, At: int64(t.done), Aux: 0})
			}
		}
	}
}

// Observe processes one write event in time order.
func (e *Engine) Observe(ev trace.Event) error {
	if int(ev.Page) >= len(e.pages) {
		return fmt.Errorf("core: page %d outside configured space of %d", ev.Page, len(e.pages))
	}
	if ev.At < e.now {
		return fmt.Errorf("core: event at %d before engine time %d", ev.At, e.now)
	}
	// Advance the predictor to the event time FIRST so that quantum
	// boundaries (and the predictions they emit) are processed in time
	// order before this write, then complete any tests that finished
	// before the write arrived.
	e.pred.Finish(ev.At)
	e.drainTests(ev.At)
	e.now = ev.At

	st := e.stateOf(ev.Page)
	if e.obs != nil {
		gap := int64(-1)
		if prev := st.lastWrite; prev >= 0 {
			gap = int64(ev.At - prev)
		}
		st.lastWrite = ev.At
		e.obs.OnEvent(obs.Event{Kind: obs.KindWrite, Page: ev.Page, At: int64(ev.At), Aux: gap})
	}

	// A write to an in-test row aborts the test: the content changed.
	if st.testing {
		st.testing = false
		e.rep.TestsAborted++
		e.rep.TestingTimeMispredNs += float64(e.testCost)
		e.rep.TestingTimeAbortedNs += float64(e.testCost)
		if e.obs != nil {
			e.obs.OnEvent(obs.Event{Kind: obs.KindTestAborted, Page: ev.Page, At: int64(ev.At), Aux: 0})
		}
	}
	// A write to a LO-REF row pulls it back to HI-REF until re-tested.
	if st.loRef {
		st.loRef = false
		e.rep.LoRefTime += float64(ev.At - st.loSince)
		if e.obs != nil {
			e.obs.OnEvent(obs.Event{Kind: obs.KindRefreshToHi, Page: ev.Page, At: int64(ev.At), Aux: int64(ev.At - st.loSince)})
		}
	}
	// Misprediction accounting for the last completed test.
	if st.testedAt >= 0 {
		idleNs := dram.Nanoseconds(ev.At-st.testedAt) * dram.Microsecond
		if idleNs < e.mwi {
			e.rep.MispredictedTests++
			e.rep.TestingTimeMispredNs += float64(e.testCost)
		} else {
			e.rep.CorrectTests++
			e.rep.TestingTimeCorrectNs += float64(e.testCost)
		}
		st.testedAt = -1
	}
	return e.pred.Observe(ev)
}

// Retest voids a page's current protection and immediately starts a new
// test with its current content, without counting a program write. The
// full-fidelity System calls this for the physical neighbours of a
// written row (their aggressor content changed, so an earlier clean
// verdict no longer applies). No-op for pages at HI-REF with no test in
// flight — they carry no stale verdict to void.
func (e *Engine) Retest(page uint32, at trace.Microseconds) error {
	if int(page) >= len(e.pages) {
		return fmt.Errorf("core: retest page %d outside configured space of %d", page, len(e.pages))
	}
	if at < e.now {
		return fmt.Errorf("core: retest at %d before engine time %d", at, e.now)
	}
	st := e.stateOf(page)
	if !st.loRef && !st.testing {
		st.testedAt = -1
		return nil
	}
	if st.testing {
		st.testing = false
		e.rep.TestsAborted++
		e.rep.TestingTimeAbortedNs += float64(e.testCost)
		if e.obs != nil {
			e.obs.OnEvent(obs.Event{Kind: obs.KindTestAborted, Page: page, At: int64(at), Aux: 1})
		}
	}
	if st.loRef {
		st.loRef = false
		e.rep.LoRefTime += float64(at - st.loSince)
		if e.obs != nil {
			e.obs.OnEvent(obs.Event{Kind: obs.KindRefreshToHi, Page: page, At: int64(at), Aux: int64(at - st.loSince)})
		}
	}
	st.testedAt = -1
	st.testing = true
	e.rep.TestsStarted++
	done := at + trace.Microseconds(e.cfg.LoRef/dram.Microsecond)
	e.schedule(page, at, done)
	if e.obs != nil {
		e.obs.OnEvent(obs.Event{Kind: obs.KindTestQueued, Page: page, At: int64(at), Aux: int64(done)})
	}
	return nil
}

// ctxCheckStride bounds how many events RunContext processes between
// context polls — the same between-units cancellation granularity the
// internal/parallel pool provides for sweeps.
const ctxCheckStride = 4096

// Run replays a whole trace and returns the report. It is RunContext
// with a background context.
func (e *Engine) Run(tr *trace.Trace) (Report, error) {
	return e.RunContext(context.Background(), tr)
}

// RunContext replays a whole trace, checking ctx between event batches
// so a cancelled run stops promptly (the engine is left mid-run and
// should be discarded). A nil ctx means context.Background().
func (e *Engine) RunContext(ctx context.Context, tr *trace.Trace) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var start time.Time
	if e.obs != nil {
		start = e.clock()
	}
	for i, ev := range tr.Events {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return Report{}, err
			}
		}
		if err := e.Observe(ev); err != nil {
			return Report{}, err
		}
	}
	rep, err := e.Finish(tr.Duration)
	if err != nil {
		return Report{}, err
	}
	if e.obs != nil {
		e.obs.OnEvent(obs.Event{Kind: obs.KindRunDone, At: int64(tr.Duration), Aux: e.clock().Sub(start).Nanoseconds()})
	}
	return rep, nil
}

// Finish flushes predictor quanta and pending tests up to end and
// produces the final report.
func (e *Engine) Finish(end trace.Microseconds) (Report, error) {
	if end < e.now {
		return Report{}, fmt.Errorf("core: finish time %d before engine time %d", end, e.now)
	}
	e.pred.Finish(end)
	e.drainTests(end)
	e.now = end

	// Close LO-REF segments and settle outstanding test verdicts: a
	// page that stayed idle to the end amortized its test. Stale-epoch
	// entries are pages never touched this run — nothing to settle.
	for i := range e.pages {
		st := &e.pages[i]
		if st.epoch != e.epoch {
			continue
		}
		if st.loRef {
			e.rep.LoRefTime += float64(end - st.loSince)
			st.loRef = false
		}
		if st.testedAt >= 0 {
			idleNs := dram.Nanoseconds(end-st.testedAt) * dram.Microsecond
			if idleNs >= e.mwi {
				e.rep.CorrectTests++
				e.rep.TestingTimeCorrectNs += float64(e.testCost)
			} else {
				e.rep.MispredictedTests++
				e.rep.TestingTimeMispredNs += float64(e.testCost)
			}
			st.testedAt = -1
		}
		if st.testing {
			// Test still in flight at the end; count it as started but
			// neither completed nor aborted.
			st.testing = false
		}
	}

	// Fold in the module's read-only rows: each is tested once at
	// startup (the test occupies the first LO-REF window) and stays at
	// LO-REF for the remainder of the run.
	if ro := e.cfg.ReadOnlyRows; ro > 0 {
		loRefUs := float64(e.cfg.LoRef / dram.Microsecond)
		roLo := float64(end) - loRefUs
		if roLo < 0 {
			roLo = 0
		}
		e.rep.LoRefTime += float64(ro) * roLo
		e.rep.TestsStarted += int64(ro)
		e.rep.TestsCompleted += int64(ro)
		e.rep.CorrectTests += int64(ro)
		e.rep.TestingTimeCorrectNs += float64(ro) * float64(e.testCost)
	}

	e.rep.Duration = end
	e.rep.Pages = len(e.pages) + e.cfg.ReadOnlyRows
	durNs := float64(end) * float64(dram.Microsecond)
	pages := float64(e.rep.Pages)
	// Refresh ops: LO-REF page-time at the LO rate, the rest at HI.
	loNs := e.rep.LoRefTime * float64(dram.Microsecond)
	hiNs := durNs*pages - loNs
	e.rep.RefreshOps = hiNs/float64(e.cfg.HiRef) + loNs/float64(e.cfg.LoRef)
	e.rep.BaselineOps = durNs * pages / float64(e.cfg.HiRef)
	e.rep.UpperBoundOps = durNs * pages / float64(e.cfg.LoRef)
	e.rep.Pril = e.pred.Stats()
	return e.rep, nil
}

// Run is the batch entry point: it sizes the engine to the trace,
// replays it, and returns the report.
func Run(tr *trace.Trace, cfg Config, tester Tester) (Report, error) {
	return RunWith(tr, cfg, WithTester(tester))
}

// RunWith is the option-based batch entry point: it sizes the engine
// to the trace, replays it, and returns the report.
func RunWith(tr *trace.Trace, cfg Config, opts ...EngineOption) (Report, error) {
	return RunContext(context.Background(), tr, cfg, opts...)
}

// RunContext is RunWith under a cancellation context.
func RunContext(ctx context.Context, tr *trace.Trace, cfg Config, opts ...EngineOption) (Report, error) {
	if max := tr.MaxPage(); max >= cfg.NumPages {
		cfg.NumPages = max + 1
	}
	e, err := New(cfg, opts...)
	if err != nil {
		return Report{}, err
	}
	return e.RunContext(ctx, tr)
}

// RunSource replays a streaming event source through the engine,
// growing the page space on demand as the source reveals it, so a
// multi-GB trace replays at I/O speed with O(pages) memory. ctx is
// checked every ctxCheckStride events; a nil ctx means
// context.Background(). The run finishes at the source's declared
// duration.
func (e *Engine) RunSource(ctx context.Context, src trace.Source) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var start time.Time
	if e.obs != nil {
		start = e.clock()
	}
	for i := 0; ; i++ {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return Report{}, err
			}
		}
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Report{}, err
		}
		if int(ev.Page) >= len(e.pages) {
			e.grow(int(ev.Page) + 1)
		}
		if err := e.Observe(ev); err != nil {
			return Report{}, err
		}
	}
	rep, err := e.Finish(src.Duration())
	if err != nil {
		return Report{}, err
	}
	if e.obs != nil {
		e.obs.OnEvent(obs.Event{Kind: obs.KindRunDone, At: int64(src.Duration()), Aux: e.clock().Sub(start).Nanoseconds()})
	}
	return rep, nil
}

// RunSource is the streaming batch entry point: the engine starts at
// cfg.NumPages (a floor; zero means start minimal) and grows as the
// stream reveals its page space.
func RunSource(ctx context.Context, src trace.Source, cfg Config, opts ...EngineOption) (Report, error) {
	if cfg.NumPages <= 0 {
		cfg.NumPages = 1
	}
	e, err := New(cfg, opts...)
	if err != nil {
		return Report{}, err
	}
	return e.RunSource(ctx, src)
}
