package core

import (
	"fmt"

	"memcon/internal/dram"
	"memcon/internal/trace"
)

// Read-aware refresh elimination — the paper's footnote 3: "MEMCON can
// be further optimized by eliminating testing if the row gets read
// frequently enough such that it does not need refresh" (left as future
// work there; implemented here as an analysis over read traces).
//
// Every row access — reads included — fully recharges the row's cells,
// so a scheduled refresh is redundant when the row was read within the
// preceding refresh window. ReadSkipAnalysis quantifies how many
// refresh operations a read-aware controller could skip for a given
// read trace and refresh interval.

// ReadSkipReport summarizes the analysis.
type ReadSkipReport struct {
	// Scheduled is the number of refresh operations a fixed-rate policy
	// would issue to the traced pages over the trace duration.
	Scheduled float64
	// Skipped is how many of those a read-aware controller elides
	// because a read recharged the row within the preceding window.
	Skipped float64
	// PagesWithReads is the number of pages that had any read.
	PagesWithReads int
}

// SkipFraction returns the fraction of scheduled refreshes eliminated.
func (r ReadSkipReport) SkipFraction() float64 {
	if r.Scheduled <= 0 {
		return 0
	}
	return r.Skipped / r.Scheduled
}

// ReadSkipAnalysis computes the report for a read trace (a trace.Trace
// whose events are READ accesses) at the given refresh interval. Only
// traced pages are counted; each page is charged duration/interval
// scheduled refreshes, and the refresh at the end of window k is
// skipped when the page was read inside window k.
func ReadSkipAnalysis(reads *trace.Trace, interval dram.Nanoseconds) (ReadSkipReport, error) {
	if interval <= 0 {
		return ReadSkipReport{}, fmt.Errorf("core: refresh interval must be positive, got %d", interval)
	}
	if err := reads.Validate(); err != nil {
		return ReadSkipReport{}, fmt.Errorf("core: invalid read trace: %w", err)
	}
	intervalUs := trace.Microseconds(interval / dram.Microsecond)
	if intervalUs <= 0 {
		return ReadSkipReport{}, fmt.Errorf("core: interval %d below trace resolution", interval)
	}
	var rep ReadSkipReport
	windowsPerPage := float64(reads.Duration) / float64(intervalUs)
	perPage := reads.PageWrites() // per-page event times (read-only); reads here
	for _, times := range perPage {
		rep.PagesWithReads++
		rep.Scheduled += windowsPerPage
		// Count distinct windows containing at least one read.
		seen := make(map[trace.Microseconds]struct{})
		for _, at := range times {
			seen[at/intervalUs] = struct{}{}
		}
		rep.Skipped += float64(len(seen))
	}
	return rep, nil
}

// CombinedSavings composes MEMCON's refresh reduction with read-skip on
// top: MEMCON moves rows between HI/LO-REF; a read-aware controller then
// skips the remaining refreshes whose windows contained reads. The
// result approximates the total reduction assuming reads are spread the
// way the read trace says, independent of the rows' refresh state.
func CombinedSavings(memcon Report, readSkip ReadSkipReport) float64 {
	base := memcon.RefreshReduction()
	residual := 1 - base
	return base + residual*readSkip.SkipFraction()
}
