package core

import (
	"context"
	"fmt"
	"math/rand"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/obs"
	"memcon/internal/remap"
	"memcon/internal/trace"
)

// ContentSource supplies the data each write stores. Implementations
// fill dst with the page's new content; the default source randomizes
// every write.
type ContentSource interface {
	Content(page uint32, at trace.Microseconds, dst dram.Row)
}

// randomContent is the default source: fresh random bits per write.
type randomContent struct{ rng *rand.Rand }

func (r randomContent) Content(_ uint32, _ trace.Microseconds, dst dram.Row) {
	dst.Randomize(r.rng)
}

// RepeatingContent is a content source that rewrites a page's previous
// content with probability SilentProb — modelling the silent stores the
// paper's footnote 9 proposes to exploit.
type RepeatingContent struct {
	SilentProb float64
	rng        *rand.Rand
	// last holds each page's previous content, indexed flat by page
	// (nil row = never written); it grows on demand.
	last []dram.Row
}

// NewRepeatingContent builds the source.
func NewRepeatingContent(silentProb float64, seed int64) *RepeatingContent {
	return &RepeatingContent{
		SilentProb: silentProb,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Content implements ContentSource.
func (r *RepeatingContent) Content(page uint32, _ trace.Microseconds, dst dram.Row) {
	if int(page) >= len(r.last) {
		r.last = append(r.last, make([]dram.Row, int(page)+1-len(r.last))...)
	}
	if prev := r.last[page]; prev != nil && r.rng.Float64() < r.SilentProb {
		copy(dst, prev)
		return
	}
	dst.Randomize(r.rng)
	if r.last[page] == nil {
		r.last[page] = dst.Clone()
	} else {
		copy(r.last[page], dst)
	}
}

// System runs the MEMCON engine against the full silicon model: a
// dram.Module holding real content, a faults.Model deciding which cells
// flip, and a content source supplying what each write stores. It is the
// end-to-end fidelity mode used by the examples and the reliability
// tests; the pure Engine accounting mode is preferred for large
// parameter sweeps.
//
// System maps trace pages onto module rows (page p -> bank p mod B,
// row p div B) and audits the reliability guarantee: with MEMCON's
// refresh policy, no data-dependent failure may ever corrupt content
// silently — rows at LO-REF must have tested clean with their current
// content.
type System struct {
	cfg    Config
	mod    *dram.Module
	model  *faults.Model
	eng    *Engine
	geom   dram.Geometry
	rng    *rand.Rand
	report Report

	// mech is the failure mechanism the online tests and audits query;
	// defaults to the retention model itself. A co-simulated secondary
	// mechanism (read disturb) substitutes here without the test or
	// audit paths knowing which physics they are probing.
	mech faults.Mechanism
	// hammer, when set, supplies a row's current-window hammer count for
	// the mechanism's RowWindow; nil means no activation tracking (the
	// retention-only configuration), leaving the count at zero.
	hammer func(dram.RowAddress) int64

	// source supplies per-write content; defaults to random bits.
	source ContentSource
	// detectSilentWrites enables the footnote-9 optimization: a write
	// that stores the value already in memory neither invalidates the
	// row's protection state nor counts as a write for PRIL.
	detectSilentWrites bool
	silentWrites       int64
	// neighborRetest hardens MEMCON against cross-row aggressor
	// changes: when a row is written, its PHYSICAL neighbours (known
	// only to the silicon, surfaced as a DRAM-internal adjacency hint)
	// are immediately re-tested if they held a clean verdict. Without
	// it, a neighbour tested clean under old content can in principle
	// fail under the new content — an escape the audit quantifies.
	neighborRetest bool
	retests        int64

	// obs receives system-level events (silent writes, neighbour
	// retests, remap activity) on top of the engine's own stream.
	obs obs.Observer

	// remapPolicy, when set, remaps rows that repeatedly fail tests to
	// spare rows in a manufacturing-screened reliable region — the third
	// mitigation of the paper's triad (high refresh / ECC / remapping).
	// A remapped row runs at LO-REF: its content lives in the reliable
	// spare. remapped is indexed flat by page over the module's rows;
	// nil until the mitigation is enabled.
	remapPolicy *remap.Policy
	remapped    []bool

	// audit bookkeeping
	undetected int
	detected   int

	// cellBuf is reused across FailingCells queries on the online-test
	// and audit hot paths; System is single-goroutine by contract.
	cellBuf []int
}

// SetContentSource installs a content source (must be called before
// Run). A nil source restores the default randomizer.
func (s *System) SetContentSource(src ContentSource) {
	if src == nil {
		src = randomContent{rng: s.rng}
	}
	s.source = src
}

// EnableSilentWriteDetection turns on the footnote-9 optimization.
func (s *System) EnableSilentWriteDetection() { s.detectSilentWrites = true }

// SilentWrites returns the number of writes recognized as silent.
func (s *System) SilentWrites() int64 { return s.silentWrites }

// EnableNeighborRetest turns on silicon-assisted neighbour re-testing.
func (s *System) EnableNeighborRetest() { s.neighborRetest = true }

// EnableRemapMitigation reserves sparesPerBank screened spare rows per
// bank and remaps any row that fails failThreshold consecutive online
// tests. Must be called before Run.
func (s *System) EnableRemapMitigation(sparesPerBank, failThreshold int) error {
	table, err := remap.New(s.geom, sparesPerBank, 0)
	if err != nil {
		return err
	}
	policy, err := remap.NewPolicy(table, failThreshold)
	if err != nil {
		return err
	}
	s.remapPolicy = policy
	s.remapped = make([]bool, s.geom.TotalRows())
	return nil
}

// isRemapped reports whether page's content lives in a screened spare.
func (s *System) isRemapped(page uint32) bool {
	return int(page) < len(s.remapped) && s.remapped[page]
}

// RemappedRows returns how many rows the remap mitigation redirected.
func (s *System) RemappedRows() int {
	if s.remapPolicy == nil {
		return 0
	}
	return s.remapPolicy.Remapped()
}

// NeighborRetests returns the number of neighbour re-tests initiated.
func (s *System) NeighborRetests() int64 { return s.retests }

// SetMechanism substitutes the failure mechanism the online tests and
// audits query (must be called before Run). The retention model stays in
// place for physical-adjacency queries; nil restores it as the queried
// mechanism too.
func (s *System) SetMechanism(m faults.Mechanism) {
	if m == nil {
		s.mech = s.model
		return
	}
	s.mech = m
}

// SetHammerSource installs a supplier of per-row current-window hammer
// counts, threaded into every mechanism query's RowWindow (must be
// called before Run). Typically memctrl.Controller.WindowActivations
// bound over a co-simulated controller; nil — the default — leaves the
// window's hammer count at zero.
func (s *System) SetHammerSource(f func(dram.RowAddress) int64) { s.hammer = f }

// window assembles the mechanism query window for a row idle for the
// given time.
func (s *System) window(addr dram.RowAddress, idle dram.Nanoseconds) faults.RowWindow {
	w := faults.RowWindow{Idle: idle}
	if s.hammer != nil {
		w.Hammer = s.hammer(addr)
	}
	return w
}

// NewSystem builds a full-fidelity MEMCON system. The module and fault
// model must share a geometry; pages beyond the module capacity are
// rejected at run time. Options apply to the embedded engine; the
// system supplies its own silicon-backed tester, so a WithTester option
// is overridden.
func NewSystem(cfg Config, mod *dram.Module, model *faults.Model, opts ...EngineOption) (*System, error) {
	if mod.Geometry() != model.Geometry() {
		return nil, fmt.Errorf("core: module and fault model geometries differ")
	}
	if cfg.NumPages < mod.Geometry().TotalRows() {
		// The engine tracks every module row the trace can touch.
		cfg.NumPages = mod.Geometry().TotalRows()
	}
	s := &System{
		cfg:   cfg,
		mod:   mod,
		model: model,
		mech:  model,
		geom:  mod.Geometry(),
		rng:   rand.New(rand.NewSource(int64(cfg.Quantum) ^ 0x5eed)),
	}
	s.obs = applyEngineOptions(opts).obs
	eng, err := New(cfg, append(opts, WithTester(TesterFunc(s.test)))...)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	return s, nil
}

// rowOf maps a trace page to a module row address.
func (s *System) rowOf(page uint32) (dram.RowAddress, error) {
	total := s.geom.TotalRows()
	if int(page) >= total {
		return dram.RowAddress{}, fmt.Errorf("core: page %d exceeds module capacity of %d rows", page, total)
	}
	return s.geom.AddressOfIndex(int(page)), nil
}

// test implements the engine's Tester against the silicon: the row has
// been idle for one LO-REF window (the engine schedules completion that
// way); MEMCON reads it back and compares. Failing cells found by the
// test have genuinely flipped — the test detects them, MEMCON refreshes
// the row at HI-REF, and the system (not modelled further here) repairs
// them from ECC or by notifying software; for the audit they count as
// detected, never silent.
func (s *System) test(page uint32, at trace.Microseconds) bool {
	addr, err := s.rowOf(page)
	if err != nil {
		return false
	}
	if s.isRemapped(page) {
		// Already backed by a screened spare: any content is safe there.
		s.mod.Activate(addr, nsOf(at))
		if s.obs != nil {
			s.obs.OnEvent(obs.Event{Kind: obs.KindRemapHit, Page: page, At: int64(at), Aux: 0})
		}
		return true
	}
	idle := s.cfg.LoRef // the engine kept the row idle one LO-REF window
	s.cellBuf = s.mech.AppendFailures(s.cellBuf[:0], s.mod, addr, s.window(addr, idle))
	cells := s.cellBuf
	// The read-back recharges the row either way.
	s.mod.Activate(addr, nsOf(at))
	if len(cells) > 0 {
		s.detected += len(cells)
		if s.remapPolicy != nil {
			if spare := s.remapPolicy.RecordTest(addr, false); spare != nil {
				// The row's content now lives in a screened spare row;
				// it can safely run at LO-REF.
				s.remapped[page] = true
				if s.obs != nil {
					s.obs.OnEvent(obs.Event{Kind: obs.KindRemapHit, Page: page, At: int64(at), Aux: 1})
				}
				return true
			}
		}
		return false
	}
	if s.remapPolicy != nil {
		s.remapPolicy.RecordTest(addr, true)
	}
	return true
}

func nsOf(at trace.Microseconds) dram.Nanoseconds {
	return dram.Nanoseconds(at) * dram.Microsecond
}

// Run replays the trace with real content supplied by the content
// source (fresh random bits per write by default — program stores
// change bits and randomness exercises the data-dependence). The
// reliability audit runs at every write and at the end. It is
// RunContext with a background context.
func (s *System) Run(tr *trace.Trace) (Report, error) {
	return s.RunContext(context.Background(), tr)
}

// RunContext is Run under a cancellation context, checked between
// event batches. A nil ctx means context.Background().
func (s *System) RunContext(ctx context.Context, tr *trace.Trace) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.source == nil {
		s.source = randomContent{rng: s.rng}
	}
	buf := dram.NewRow(s.geom.ColsPerRow)
	for i, ev := range tr.Events {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return Report{}, err
			}
		}
		addr, err := s.rowOf(ev.Page)
		if err != nil {
			return Report{}, err
		}
		// Audit before the content is replaced: did the row silently
		// lose data under the refresh interval MEMCON assigned?
		s.auditRow(ev.Page, addr, nsOf(ev.At))
		s.source.Content(ev.Page, ev.At, buf)
		if s.detectSilentWrites && buf.Equal(s.mod.RowRef(addr)) {
			// Footnote 9: the write does not change memory; the row's
			// protection state stays valid. The access still recharges
			// the row.
			s.mod.Activate(addr, nsOf(ev.At))
			s.silentWrites++
			if s.obs != nil {
				s.obs.OnEvent(obs.Event{Kind: obs.KindSilentWrite, Page: ev.Page, At: int64(ev.At)})
			}
			continue
		}
		if err := s.mod.WriteRow(addr, buf, nsOf(ev.At)); err != nil {
			return Report{}, err
		}
		if err := s.eng.Observe(ev); err != nil {
			return Report{}, err
		}
		if s.neighborRetest {
			for _, nb := range s.model.NeighborSysRows(addr) {
				page := uint32(s.geom.RowIndex(nb))
				if loRef, testing := s.eng.pageStatus(page); loRef || testing {
					if err := s.eng.Retest(page, ev.At); err != nil {
						return Report{}, err
					}
					s.retests++
					if s.obs != nil {
						s.obs.OnEvent(obs.Event{Kind: obs.KindNeighborRetest, Page: ev.Page, At: int64(ev.At), Aux: int64(page)})
					}
				}
			}
		}
	}
	rep, err := s.eng.Finish(tr.Duration)
	if err != nil {
		return Report{}, err
	}
	// Final audit pass over every written row.
	for p := 0; p < rep.Pages && p < s.geom.TotalRows(); p++ {
		addr := s.geom.AddressOfIndex(p)
		s.auditRow(uint32(p), addr, nsOf(tr.Duration))
	}
	s.report = rep
	return rep, nil
}

// auditRow verifies the reliability guarantee for one row at time now:
// under MEMCON the row's effective idle exposure is bounded by its
// assigned refresh interval, so failures can only occur if a cell flips
// within one refresh window — which the engine only permits at LO-REF
// after a clean test of the very same content. A flip under those
// conditions is an undetected failure and breaks the guarantee.
func (s *System) auditRow(page uint32, addr dram.RowAddress, now dram.Nanoseconds) {
	if s.isRemapped(page) {
		// The row's content lives in a manufacturing-screened spare; the
		// faulty physical row is out of service.
		return
	}
	interval := s.cfg.HiRef
	if loRef, _ := s.eng.pageStatus(page); loRef {
		interval = s.cfg.LoRef
	}
	// The row is refreshed every `interval`; its content is therefore
	// never idle longer than that. If the current content would flip
	// cells within one interval, MEMCON failed to protect it.
	s.cellBuf = s.mech.AppendFailures(s.cellBuf[:0], s.mod, addr, s.window(addr, interval))
	if len(s.cellBuf) > 0 {
		s.undetected += len(s.cellBuf)
	}
	_ = now
}

// UndetectedFailures returns the number of audit violations (must be 0
// for a correct MEMCON).
func (s *System) UndetectedFailures() int { return s.undetected }

// DetectedFailures returns the number of failing cells MEMCON's online
// tests caught and mitigated.
func (s *System) DetectedFailures() int { return s.detected }
