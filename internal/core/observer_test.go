package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"memcon/internal/obs"
	"memcon/internal/trace"
)

// TestObserverEventOrdering pins the exact event stream of a small
// scenario covering the full lifecycle: write, PRIL tracking and
// eviction, prediction, test queue/drain, LO-REF entry, in-test abort,
// and the LO->HI transition. The engine is single-goroutine, so the
// stream is fully deterministic; any reordering is an API break for
// downstream observers.
func TestObserverEventOrdering(t *testing.T) {
	var rec obs.Recorder
	cfg := cfgForTest()
	cfg.NumPages = 2
	eng, err := New(cfg,
		WithObserver(&rec),
		WithClock(func() time.Time { return time.Unix(0, 0) }))
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{
		Name:     "lifecycle",
		Duration: 6 * q,
		Events: []trace.Event{
			{Page: 0, At: 0},           // both pages written once in quantum 0...
			{Page: 1, At: 1000},        // ...so both are predicted idle at 2q
			{Page: 1, At: 2*q + 32000}, // lands mid-test: aborts page 1's test
			{Page: 0, At: 5 * q},       // page 0 is at LO-REF by now: back to HI
		},
	}
	if _, err := eng.Run(tr); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range rec.Events() {
		got = append(got, e.String())
	}
	// Note the drain entries surface the engine's actual drain pass
	// (run when the NEXT event arrives): both 2112000-drains and the
	// 4096000-prediction are emitted while processing the write at
	// 5120000, in predictor-then-queue order.
	want := []string{
		"write page=0 at=0 aux=-1",
		"pril_insert page=0 at=0 aux=1",
		"write page=1 at=1000 aux=-1",
		"pril_insert page=1 at=1000 aux=2",
		"predict page=0 at=2048000 aux=0",
		"test_queued page=0 at=2048000 aux=2112000",
		"predict page=1 at=2048000 aux=0",
		"test_queued page=1 at=2048000 aux=2112000",
		"write page=1 at=2080000 aux=2079000",
		"test_aborted page=1 at=2080000 aux=0",
		"pril_insert page=1 at=2080000 aux=1",
		"predict page=1 at=4096000 aux=0",
		"test_queued page=1 at=4096000 aux=4160000",
		"test_drained page=0 at=2112000 aux=1",
		"refresh_to_lo page=0 at=2112000 aux=0",
		"test_drained page=1 at=2112000 aux=1",
		"refresh_to_lo page=1 at=2112000 aux=0",
		"write page=0 at=5120000 aux=5120000",
		"refresh_to_hi page=0 at=5120000 aux=3008000",
		"pril_insert page=0 at=5120000 aux=1",
		"run_done page=0 at=6144000 aux=0",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("event stream changed:\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestObserverOrderingRepeatable replays the same trace twice and
// requires identical streams — the cheap guard against map-order or
// time-dependent leakage into the event path.
func TestObserverOrderingRepeatable(t *testing.T) {
	run := func() []obs.Event {
		var rec obs.Recorder
		cfg := cfgForTest()
		cfg.NumPages = 4
		eng, err := New(cfg, WithObserver(&rec),
			WithClock(func() time.Time { return time.Unix(0, 0) }))
		if err != nil {
			t.Fatal(err)
		}
		tr := &trace.Trace{
			Name:     "repeat",
			Duration: 8 * q,
			Events: []trace.Event{
				{Page: 0, At: 0}, {Page: 1, At: 10}, {Page: 2, At: 20},
				{Page: 3, At: q + 5}, {Page: 0, At: 3 * q}, {Page: 2, At: 5 * q},
			},
		}
		if _, err := eng.Run(tr); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	last := a[len(a)-1]
	if last.Kind != obs.KindRunDone {
		t.Errorf("last event = %v, want run_done", last)
	}
	if last.Aux != 0 {
		t.Errorf("run_done wall ns = %d, want 0 under the frozen clock", last.Aux)
	}
}

// TestRunContextCancellation verifies a cancelled context stops both
// entry points between event batches.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	events := make([]trace.Event, 2*ctxCheckStride)
	for i := range events {
		events[i] = trace.Event{Page: 0, At: trace.Microseconds(i)}
	}
	tr := &trace.Trace{Name: "cancelled", Duration: q, Events: events}

	if _, err := RunContext(ctx, tr, cfgForTest()); err != context.Canceled {
		t.Errorf("RunContext error = %v, want context.Canceled", err)
	}

	eng, err := New(cfgForTest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunContext(ctx, tr); err != context.Canceled {
		t.Errorf("Engine.RunContext error = %v, want context.Canceled", err)
	}

	// A nil context must behave as context.Background().
	eng2, err := New(cfgForTest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.RunContext(nil, tr); err != nil { //nolint:staticcheck // nil ctx tolerance is part of the API
		t.Errorf("nil-context run failed: %v", err)
	}
}

// TestObserverDisabledMatchesEnabled guards the zero-cost path: the
// report must be identical with and without an observer attached.
func TestObserverDisabledMatchesEnabled(t *testing.T) {
	tr := &trace.Trace{
		Name:     "paired",
		Duration: 6 * q,
		Events: []trace.Event{
			{Page: 0, At: 0}, {Page: 1, At: 500}, {Page: 0, At: 3 * q},
		},
	}
	plain, err := Run(tr, cfgForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec obs.Recorder
	observed, err := RunWith(tr, cfgForTest(), WithObserver(&rec))
	if err != nil {
		t.Fatal(err)
	}
	if plain != observed {
		t.Errorf("observer changed the report:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
	if len(rec.Events()) == 0 {
		t.Error("observer saw no events")
	}
}
