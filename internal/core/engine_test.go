package core

import (
	"math"
	"testing"

	"memcon/internal/costmodel"
	"memcon/internal/dram"
	"memcon/internal/trace"
)

const q = 1024 * trace.Millisecond

func cfgForTest() Config {
	c := DefaultConfig()
	c.Quantum = q
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Quantum: 0, HiRef: 1, LoRef: 2, NumPages: 1},
		{Quantum: q, HiRef: 0, LoRef: 2, NumPages: 1},
		{Quantum: q, HiRef: 2, LoRef: 2, NumPages: 1},
		{Quantum: q, HiRef: 1, LoRef: 2, NumPages: 0},
		{Quantum: q, HiRef: 1, LoRef: 2, NumPages: 1, BufferCap: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestSingleIdlePageGoesLoRef(t *testing.T) {
	tr := &trace.Trace{
		Name:     "one-page",
		Duration: 20 * q,
		Events:   []trace.Event{{Page: 0, At: 0}},
	}
	rep, err := Run(tr, cfgForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsStarted != 1 || rep.TestsCompleted != 1 {
		t.Fatalf("tests started/completed = %d/%d, want 1/1", rep.TestsStarted, rep.TestsCompleted)
	}
	if rep.TestsAborted != 0 || rep.TestsFailed != 0 {
		t.Errorf("aborted/failed = %d/%d, want 0/0", rep.TestsAborted, rep.TestsFailed)
	}
	// Prediction at 2q, test completes at 2q + 64ms; LO-REF until 20q.
	wantLo := float64(18*q - 64*trace.Millisecond)
	if math.Abs(rep.LoRefTime-wantLo) > 1 {
		t.Errorf("LoRefTime = %v, want %v", rep.LoRefTime, wantLo)
	}
	if rep.CorrectTests != 1 || rep.MispredictedTests != 0 {
		t.Errorf("correct/mispredicted = %d/%d, want 1/0", rep.CorrectTests, rep.MispredictedTests)
	}
	// Reduction: page spends 90% of time at LO (18/20 quanta), so the
	// reduction approaches 0.75*0.9.
	red := rep.RefreshReduction()
	if red < 0.6 || red > 0.75 {
		t.Errorf("refresh reduction = %v, want in (0.6, 0.75)", red)
	}
	if ub := rep.UpperBoundReduction(); math.Abs(ub-0.75) > 1e-9 {
		t.Errorf("upper bound = %v, want 0.75", ub)
	}
}

func TestWritePullsRowBackToHiRef(t *testing.T) {
	tr := &trace.Trace{
		Name:     "rewrite",
		Duration: 10 * q,
		Events: []trace.Event{
			{Page: 0, At: 0},
			{Page: 0, At: 5 * q}, // long idle, then rewrite
		},
	}
	rep, err := Run(tr, cfgForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two tests: one after the first write (predicted at 2q), aborted?
	// No: completed at 2q+64ms, LO until the write at 5q. Second write
	// predicted at 7q, LO until end.
	if rep.TestsCompleted != 2 {
		t.Fatalf("completed tests = %d, want 2", rep.TestsCompleted)
	}
	if rep.CorrectTests != 2 {
		t.Errorf("correct tests = %d, want 2 (both idles exceed MWI)", rep.CorrectTests)
	}
	wantLo := float64(3*q-64*trace.Millisecond) + float64(3*q-64*trace.Millisecond)
	if math.Abs(rep.LoRefTime-wantLo) > 1 {
		t.Errorf("LoRefTime = %v, want %v", rep.LoRefTime, wantLo)
	}
}

func TestWriteDuringTestAborts(t *testing.T) {
	// Write at 0 predicts a test at 2q; a write during (2q, 2q+64ms)
	// aborts the in-flight test.
	tr := &trace.Trace{
		Name:     "abort",
		Duration: 4 * q,
		Events: []trace.Event{
			{Page: 0, At: 0},
			{Page: 0, At: 2*q + 10*trace.Millisecond},
		},
	}
	rep, err := Run(tr, cfgForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsAborted != 1 {
		t.Errorf("aborted = %d, want 1", rep.TestsAborted)
	}
	if rep.TestingTimeAbortedNs <= 0 {
		t.Error("aborted test cost not accounted")
	}
}

func TestFailingTestKeepsHiRef(t *testing.T) {
	tr := &trace.Trace{
		Name:     "faulty",
		Duration: 10 * q,
		Events:   []trace.Event{{Page: 0, At: 0}},
	}
	alwaysFail := TesterFunc(func(uint32, trace.Microseconds) bool { return false })
	rep, err := Run(tr, cfgForTest(), alwaysFail)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TestsFailed != 1 {
		t.Fatalf("failed tests = %d, want 1", rep.TestsFailed)
	}
	if rep.LoRefTime != 0 {
		t.Errorf("LoRefTime = %v, want 0 (failing row mitigated at HI-REF)", rep.LoRefTime)
	}
	if rep.RefreshReduction() > 1e-9 {
		t.Errorf("reduction = %v, want 0 for an all-failing chip", rep.RefreshReduction())
	}
}

func TestMispredictionAccounting(t *testing.T) {
	// Page tested at 2q+64ms, then written 100 ms later: idle < MWI
	// (560 ms), so the test was mispredicted.
	rewriteAt := 2*q + 164*trace.Millisecond
	tr := &trace.Trace{
		Name:     "mispredict",
		Duration: 3 * q,
		Events: []trace.Event{
			{Page: 0, At: 0},
			{Page: 0, At: rewriteAt},
		},
	}
	rep, err := Run(tr, cfgForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MispredictedTests != 1 {
		t.Errorf("mispredicted = %d, want 1", rep.MispredictedTests)
	}
	if rep.TestingTimeMispredNs <= 0 {
		t.Error("mispredicted test cost not accounted")
	}
}

func TestMinWriteIntervalFollowsMode(t *testing.T) {
	c := cfgForTest()
	e, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if e.mwi != 560*dram.Millisecond {
		t.Errorf("ReadCompare MWI = %d, want 560 ms", e.mwi/dram.Millisecond)
	}
	c.Mode = costmodel.CopyCompare
	e2, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if e2.mwi != 864*dram.Millisecond {
		t.Errorf("CopyCompare MWI = %d, want 864 ms", e2.mwi/dram.Millisecond)
	}
}

func TestObserveErrors(t *testing.T) {
	e, err := New(cfgForTest())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(trace.Event{Page: 5, At: 0}); err == nil {
		t.Error("out-of-range page accepted")
	}
	if err := e.Observe(trace.Event{Page: 0, At: q}); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(trace.Event{Page: 0, At: 0}); err == nil {
		t.Error("time going backwards accepted")
	}
	if _, err := e.Finish(0); err == nil {
		t.Error("finish before engine time accepted")
	}
}

func TestBaselineOpsArithmetic(t *testing.T) {
	tr := &trace.Trace{Name: "empty-ish", Duration: 16 * trace.Millisecond * 100, Events: []trace.Event{{Page: 0, At: 0}}}
	cfg := cfgForTest()
	cfg.NumPages = 10
	rep, err := Run(tr, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: 10 pages x (1600 ms / 16 ms) = 1000 ops.
	if math.Abs(rep.BaselineOps-1000) > 1e-6 {
		t.Errorf("baseline ops = %v, want 1000", rep.BaselineOps)
	}
	if math.Abs(rep.UpperBoundOps-250) > 1e-6 {
		t.Errorf("upper bound ops = %v, want 250", rep.UpperBoundOps)
	}
}

func TestReportDerivedMetricsOnZeroes(t *testing.T) {
	var r Report
	if r.RefreshReduction() != 0 || r.UpperBoundReduction() != 0 || r.LoRefCoverage() != 0 {
		t.Error("zero report should yield zero metrics")
	}
	if r.TestingTimeNs() != 0 || r.BaselineRefreshTimeNs() != 0 {
		t.Error("zero report time metrics should be zero")
	}
}

// The refresh-op identity: MEMCON ops always lie between the upper-bound
// (all-LO) and baseline (all-HI) op counts.
func TestRefreshOpsBounded(t *testing.T) {
	tr := &trace.Trace{Name: "mixed", Duration: 30 * q}
	for p := uint32(0); p < 20; p++ {
		tr.Events = append(tr.Events, trace.Event{Page: p, At: trace.Microseconds(p) * 1000})
		if p%3 == 0 { // some pages are rewritten often
			for k := trace.Microseconds(1); k < 30; k++ {
				tr.Events = append(tr.Events, trace.Event{Page: p, At: k * q})
			}
		}
	}
	tr.Sort()
	rep, err := Run(tr, cfgForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefreshOps < rep.UpperBoundOps-1e-6 {
		t.Errorf("ops %v below the all-LO bound %v", rep.RefreshOps, rep.UpperBoundOps)
	}
	if rep.RefreshOps > rep.BaselineOps+1e-6 {
		t.Errorf("ops %v above the all-HI baseline %v", rep.RefreshOps, rep.BaselineOps)
	}
	if cov := rep.LoRefCoverage(); cov <= 0 || cov >= 1 {
		t.Errorf("coverage = %v, want in (0,1) for this mixed trace", cov)
	}
}
