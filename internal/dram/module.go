package dram

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Row is the packed bit content of one DRAM row, 64 cells per word.
type Row []uint64

// NewRow allocates a zeroed row for cols cells (cols must be a multiple
// of 64).
func NewRow(cols int) Row { return make(Row, cols/64) }

// Bit returns cell c of the row.
func (r Row) Bit(c int) int { return int(r[c/64]>>(uint(c)%64)) & 1 }

// SetBit writes cell c of the row to v (0 or 1).
func (r Row) SetBit(c, v int) {
	if v&1 == 1 {
		r[c/64] |= 1 << (uint(c) % 64)
	} else {
		r[c/64] &^= 1 << (uint(c) % 64)
	}
}

// Clone returns an independent copy of the row.
func (r Row) Clone() Row {
	cp := make(Row, len(r))
	copy(cp, r)
	return cp
}

// Equal reports whether two rows hold identical content.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// DiffBits returns the cell indices at which r and o differ. Rows must be
// the same length.
func (r Row) DiffBits(o Row) []int {
	return r.AppendDiffBits(nil, o)
}

// AppendDiffBits appends the cell indices at which r and o differ to
// dst and returns the extended slice — the allocation-free form of
// DiffBits for callers that diff many rows through one reusable buffer.
// The comparison works a packed 64-cell word at a time. Rows must be
// the same length.
func (r Row) AppendDiffBits(dst []int, o Row) []int {
	for w := range r {
		x := r[w] ^ o[w]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			dst = append(dst, w*64+b)
			x &= x - 1
		}
	}
	return dst
}

// OnesCount returns the number of set cells in the row.
func (r Row) OnesCount() int {
	var n int
	for _, w := range r {
		n += bits.OnesCount64(w)
	}
	return n
}

// Fill sets every 64-cell word of the row to pattern.
func (r Row) Fill(pattern uint64) {
	for i := range r {
		r[i] = pattern
	}
}

// Randomize fills the row with uniform random bits from rng.
func (r Row) Randomize(rng *rand.Rand) {
	for i := range r {
		r[i] = rng.Uint64()
	}
}

// Module is the system-visible DRAM module: stored content per row plus
// per-row charge bookkeeping (the time each row was last fully charged by
// an activation or refresh). Content is addressed in SYSTEM address
// space; the vendor scrambling applied inside the silicon is modelled in
// the faults package, which receives the physical view.
//
// Module is not safe for concurrent use; the simulator drives it from a
// single goroutine, matching a single memory controller.
type Module struct {
	geom Geometry
	// rows holds system-addressed content, indexed by Geometry.RowIndex.
	rows []Row
	// lastCharge[i] is the time row i was last activated or refreshed.
	lastCharge []Nanoseconds
}

// NewModule allocates a module with the given geometry. All cells start
// at zero and fully charged at time 0.
func NewModule(geom Geometry) (*Module, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	m := &Module{
		geom:       geom,
		rows:       make([]Row, geom.TotalRows()),
		lastCharge: make([]Nanoseconds, geom.TotalRows()),
	}
	for i := range m.rows {
		m.rows[i] = NewRow(geom.ColsPerRow)
	}
	return m, nil
}

// Geometry returns the module geometry.
func (m *Module) Geometry() Geometry { return m.geom }

// WriteRow stores content into the addressed row at time now. Writing
// activates the row, fully recharging its cells. The content slice is
// copied.
func (m *Module) WriteRow(a RowAddress, content Row, now Nanoseconds) error {
	if !m.geom.ValidAddress(a) {
		return fmt.Errorf("dram: write to invalid address %+v", a)
	}
	if len(content) != m.geom.ColsPerRow/64 {
		return fmt.Errorf("dram: row content has %d words, geometry needs %d", len(content), m.geom.ColsPerRow/64)
	}
	idx := m.geom.RowIndex(a)
	copy(m.rows[idx], content)
	m.lastCharge[idx] = now
	return nil
}

// PeekRow returns the stored (intended) content of the row without
// modelling failures or recharging — the "what the program wrote" view,
// used by testers to compare against what is read back.
func (m *Module) PeekRow(a RowAddress) (Row, error) {
	if !m.geom.ValidAddress(a) {
		return nil, fmt.Errorf("dram: peek of invalid address %+v", a)
	}
	return m.rows[m.geom.RowIndex(a)].Clone(), nil
}

// RowRef returns the module's internal row storage for the address. It
// is used by the faults package (playing the role of silicon) and must
// not be retained across writes by other callers.
func (m *Module) RowRef(a RowAddress) Row {
	return m.rows[m.geom.RowIndex(a)]
}

// RowAt returns the module's internal row storage at flat index idx
// (Geometry.RowIndex order) without address re-validation — the
// silicon-side fast path the faults kernel uses for neighbour reads.
// Same aliasing rules as RowRef.
func (m *Module) RowAt(idx int) Row { return m.rows[idx] }

// LastCharge returns the time the addressed row was last activated or
// refreshed.
func (m *Module) LastCharge(a RowAddress) Nanoseconds {
	return m.lastCharge[m.geom.RowIndex(a)]
}

// IdleTime returns how long the row has been idle (uncharged) at time now.
func (m *Module) IdleTime(a RowAddress, now Nanoseconds) Nanoseconds {
	d := now - m.lastCharge[m.geom.RowIndex(a)]
	if d < 0 {
		return 0
	}
	return d
}

// IdleAtIndex is IdleTime for a pre-resolved flat row index
// (Geometry.RowIndex order); the parallel read-back scan uses it to
// avoid re-deriving the index per row.
func (m *Module) IdleAtIndex(idx int, now Nanoseconds) Nanoseconds {
	d := now - m.lastCharge[idx]
	if d < 0 {
		return 0
	}
	return d
}

// RechargeAll recharges every row at time now, as a full read-back or
// refresh sweep does once it has visited the whole array.
func (m *Module) RechargeAll(now Nanoseconds) {
	for i := range m.lastCharge {
		m.lastCharge[i] = now
	}
}

// Refresh recharges the addressed row at time now, exactly as an
// activation would (a refresh is an activate+precharge).
func (m *Module) Refresh(a RowAddress, now Nanoseconds) {
	m.lastCharge[m.geom.RowIndex(a)] = now
}

// ApplyFlips mutates stored content, flipping the given cells of the
// addressed row. The faults package calls this when a read observes
// data-dependent failures: once a cell has leaked, the wrong value is
// what the array now holds.
func (m *Module) ApplyFlips(a RowAddress, cells []int) {
	row := m.rows[m.geom.RowIndex(a)]
	for _, c := range cells {
		row.SetBit(c, row.Bit(c)^1)
	}
}

// Activate recharges the row at time now without changing content —
// program reads do this, which is why reads never introduce new
// data-dependent failures (paper §3.2).
func (m *Module) Activate(a RowAddress, now Nanoseconds) {
	m.lastCharge[m.geom.RowIndex(a)] = now
}
