// Package dram models the DRAM device that MEMCON operates on: module
// geometry (rank/chip/bank/row/column), DDR3-1600 timing parameters,
// vendor-internal address scrambling and redundant-column remapping, and
// the per-row stored content with charge state. The model is
// bit-accurate for content and nanosecond-granular for timing.
//
// Two properties of real chips that make system-level detection of
// data-dependent failures hard (paper §2) are modelled faithfully:
//
//   - Address scrambling: consecutive system row/column addresses do not
//     map to physically adjacent cells; the permutation is per-chip and
//     not exposed outside this package's physical view.
//   - Column remapping: columns found faulty at manufacturing time are
//     remapped to redundant columns at the edge of the array, so a
//     remapped cell's physical neighbours live in the redundant region.
package dram

import "fmt"

// Nanoseconds is the time unit for all DRAM timing in this package.
type Nanoseconds = int64

// Common time conversion helpers.
const (
	Microsecond Nanoseconds = 1000
	Millisecond Nanoseconds = 1000 * 1000
	Second      Nanoseconds = 1000 * 1000 * 1000
)

// Timing holds the DRAM timing parameters used by the cost model and the
// memory-controller simulator. Values follow the paper's appendix, which
// uses DDR3-1600 parameters chosen such that
//
//	refresh cost        = tRAS + tRP                  = 39 ns
//	Read-and-Compare    = 2*(tRCD + 128*tCCD + tRP)   = 1068 ns
//	Copy-and-Compare    = 3*(tRCD + 128*tCCD + tRP)   = 1602 ns
type Timing struct {
	// TCK is the clock period (DDR3-1600: 800 MHz command clock, 1.25 ns).
	// Expressed in picoseconds because it is sub-nanosecond.
	TCKPicos int64
	// TRCD is the ACT-to-READ/WRITE delay.
	TRCD Nanoseconds
	// TRP is the precharge latency.
	TRP Nanoseconds
	// TRAS is the minimum row-active time.
	TRAS Nanoseconds
	// TCCD is the column-to-column (burst) delay for one cache block.
	TCCD Nanoseconds
	// CL is the CAS (read) latency.
	CL Nanoseconds
	// CWL is the CAS write latency.
	CWL Nanoseconds
	// BlocksPerRow is the number of cache blocks in one row (8 KB row of
	// 64 B blocks = 128).
	BlocksPerRow int
}

// DDR31600 returns the DDR3-1600 timing parameter set used throughout the
// paper's evaluation.
func DDR31600() Timing {
	return Timing{
		TCKPicos:     1250,
		TRCD:         11,
		TRP:          11,
		TRAS:         28,
		TCCD:         4,
		CL:           11,
		CWL:          8,
		BlocksPerRow: 128,
	}
}

// RowCycle returns the latency of activating a row, streaming all of its
// cache blocks through the memory controller, and precharging:
// tRCD + BlocksPerRow*tCCD + tRP. This is the per-row-read building block
// of the appendix cost model (534 ns for DDR3-1600).
func (t Timing) RowCycle() Nanoseconds {
	return t.TRCD + Nanoseconds(t.BlocksPerRow)*t.TCCD + t.TRP
}

// RefreshCost returns the latency of refreshing one row: tRAS + tRP
// (39 ns for DDR3-1600).
func (t Timing) RefreshCost() Nanoseconds { return t.TRAS + t.TRP }

// ReadCompareCost returns the latency of the Read-and-Compare test mode:
// two full row reads (1068 ns for DDR3-1600).
func (t Timing) ReadCompareCost() Nanoseconds { return 2 * t.RowCycle() }

// CopyCompareCost returns the latency of the Copy-and-Compare test mode:
// two full row reads plus one full row write (1602 ns for DDR3-1600).
func (t Timing) CopyCompareCost() Nanoseconds { return 3 * t.RowCycle() }

// Density identifies a DRAM chip density. Refresh cost (tRFC) grows with
// density, which is why MEMCON's benefit grows with chip capacity
// (Fig. 15).
type Density int

// Supported chip densities.
const (
	Density4Gb Density = iota
	Density8Gb
	Density16Gb
	Density32Gb
)

// String returns the conventional name of the density.
func (d Density) String() string {
	switch d {
	case Density4Gb:
		return "4Gb"
	case Density8Gb:
		return "8Gb"
	case Density16Gb:
		return "16Gb"
	case Density32Gb:
		return "32Gb"
	default:
		return fmt.Sprintf("Density(%d)", int(d))
	}
}

// TRFC returns the refresh-cycle time of an all-bank REF command for the
// density. The 8/16/32 Gb values match the MEMCON system configuration
// (Table 2); 4 Gb uses the DDR3 baseline 350 ns.
func (d Density) TRFC() Nanoseconds {
	switch d {
	case Density4Gb:
		return 350
	case Density8Gb:
		return 530
	case Density16Gb:
		return 890
	case Density32Gb:
		return 1600
	default:
		return 350
	}
}

// TREFI returns the average interval between REF commands required to
// refresh the whole device within refreshWindow. JEDEC divides the device
// into 8192 refresh groups, so a 64 ms window yields the standard 7.8 µs
// and the paper's aggressive 16 ms window yields 1.95 µs.
func TREFI(refreshWindow Nanoseconds) Nanoseconds {
	return refreshWindow / 8192
}

// Standard refresh windows used across the evaluation.
const (
	RefreshWindowAggressive Nanoseconds = 16 * Millisecond  // HI-REF
	RefreshWindow32                     = 32 * Millisecond  // less-aggressive baseline
	RefreshWindowDefault                = 64 * Millisecond  // LO-REF
	RefreshWindow128                    = 128 * Millisecond // extended LO-REF
	RefreshWindow256                    = 256 * Millisecond // extended LO-REF
)
