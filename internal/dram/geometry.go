package dram

import "fmt"

// Geometry describes the logical organization of a DRAM module. A module
// is hierarchically organized into ranks, chips, and banks; each bank is
// a 2D array of rows and columns (paper §2, Fig. 1).
type Geometry struct {
	Ranks        int
	ChipsPerRank int
	BanksPerChip int
	RowsPerBank  int
	// ColsPerRow is the number of cells (bits) in one row of a bank
	// array. The paper's 8 KB rows correspond to 65536 bits spread over
	// the chips of a rank; simulations typically use a smaller per-bank
	// array to keep state manageable without changing behaviour.
	ColsPerRow int
	// RedundantCols is the number of spare columns appended to the right
	// of the array for manufacturing-time column remapping (Fig. 2b).
	RedundantCols int
}

// DefaultGeometry returns a modest module geometry suitable for tests and
// characterization experiments: 1 rank, 8 chips, 8 banks, 4096 rows of
// 1024 cells with 32 redundant columns.
func DefaultGeometry() Geometry {
	return Geometry{
		Ranks:         1,
		ChipsPerRank:  8,
		BanksPerChip:  8,
		RowsPerBank:   4096,
		ColsPerRow:    1024,
		RedundantCols: 32,
	}
}

// Validate reports an error describing the first invalid field, or nil.
func (g Geometry) Validate() error {
	switch {
	case g.Ranks < 1:
		return fmt.Errorf("dram: geometry needs at least 1 rank, got %d", g.Ranks)
	case g.ChipsPerRank < 1:
		return fmt.Errorf("dram: geometry needs at least 1 chip per rank, got %d", g.ChipsPerRank)
	case g.BanksPerChip < 1:
		return fmt.Errorf("dram: geometry needs at least 1 bank per chip, got %d", g.BanksPerChip)
	case g.RowsPerBank < 2:
		return fmt.Errorf("dram: geometry needs at least 2 rows per bank, got %d", g.RowsPerBank)
	case g.ColsPerRow < 8:
		return fmt.Errorf("dram: geometry needs at least 8 columns per row, got %d", g.ColsPerRow)
	case g.RedundantCols < 0:
		return fmt.Errorf("dram: redundant columns cannot be negative, got %d", g.RedundantCols)
	case g.ColsPerRow%64 != 0:
		return fmt.Errorf("dram: columns per row must be a multiple of 64 for packed storage, got %d", g.ColsPerRow)
	}
	return nil
}

// TotalRows returns the number of rows across all banks of one chip.
func (g Geometry) TotalRows() int { return g.BanksPerChip * g.RowsPerBank }

// PhysCols returns the total number of physical columns in a row
// including the redundant region.
func (g Geometry) PhysCols() int { return g.ColsPerRow + g.RedundantCols }

// RowAddress identifies one row of one bank in system (logical) address
// space.
type RowAddress struct {
	Bank int
	Row  int
}

// Valid reports whether the address is inside the geometry.
func (g Geometry) ValidAddress(a RowAddress) bool {
	return a.Bank >= 0 && a.Bank < g.BanksPerChip && a.Row >= 0 && a.Row < g.RowsPerBank
}

// RowIndex flattens a row address into a dense index in
// [0, TotalRows()). It panics on an out-of-range address, which indicates
// a programming error in the caller. The bounds check folds the sign and
// range tests into two unsigned comparisons and the panic message is a
// constant so RowIndex stays within the inlining budget — it sits under
// every per-row operation of the read-back and fault-evaluation hot
// paths.
func (g Geometry) RowIndex(a RowAddress) int {
	if uint(a.Bank) >= uint(g.BanksPerChip) || uint(a.Row) >= uint(g.RowsPerBank) {
		panic("dram: row address outside geometry")
	}
	return a.Bank*g.RowsPerBank + a.Row
}

// AddressOfIndex is the inverse of RowIndex.
func (g Geometry) AddressOfIndex(idx int) RowAddress {
	if idx < 0 || idx >= g.TotalRows() {
		panic(fmt.Sprintf("dram: row index %d outside geometry", idx))
	}
	return RowAddress{Bank: idx / g.RowsPerBank, Row: idx % g.RowsPerBank}
}
