package dram

import (
	"fmt"
	"math/bits"
	"sort"
)

// AddressMapping is the vendor-internal translation from system (logical)
// addresses to physical cell locations — the part of the scrambling that
// differs between vendors and device generations. DRAMDig-style reverse
// engineering shows real devices range from near-linear mappings to
// multi-stage bit permutations; which mapping a chip uses decides which
// cells are physically adjacent, and therefore which cells couple.
//
// A mapping must be a bijection: PhysRow(bank, ·) over [0, RowsPerBank)
// and BaseCol over [0, ColsPerRow) must each be permutations. The
// Scrambler composes BaseCol with the manufacturing-time faulty-column
// remap (Fig. 2b), which is mapping-independent.
type AddressMapping interface {
	// Name is the registry name of the mapping scheme.
	Name() string
	// PhysRow maps a system row index (within a bank) to its physical row.
	PhysRow(bank, row int) int
	// BaseCol maps a system column to its pre-remap physical column.
	BaseCol(col int) int
}

// DefaultMappingName names the Feistel-style scrambler NewScrambler has
// always used; NewMapping treats the empty string as an alias for it.
const DefaultMappingName = "default"

// mappingFactories registers the known vendor mapping schemes.
var mappingFactories = map[string]func(Geometry, uint64) AddressMapping{
	DefaultMappingName: func(g Geometry, seed uint64) AddressMapping { return newFeistelMapping(g, seed) },
	"gray":             func(g Geometry, seed uint64) AddressMapping { return newGrayMapping(g, seed) },
	"linear":           func(g Geometry, seed uint64) AddressMapping { return linearMapping{} },
	"mirror":           func(g Geometry, seed uint64) AddressMapping { return newMirrorMapping(g, seed) },
}

// MappingNames returns the registered vendor mapping names, sorted.
func MappingNames() []string {
	names := make([]string, 0, len(mappingFactories))
	for n := range mappingFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KnownMapping reports whether name is a registered mapping (the empty
// string counts: it aliases the default).
func KnownMapping(name string) bool {
	if name == "" {
		return true
	}
	_, ok := mappingFactories[name]
	return ok
}

// NewMapping builds the named vendor mapping for a chip. The empty
// string selects the default Feistel-style scrambler.
func NewMapping(name string, geom Geometry, seed uint64) (AddressMapping, error) {
	if name == "" {
		name = DefaultMappingName
	}
	mk, ok := mappingFactories[name]
	if !ok {
		return nil, fmt.Errorf("dram: unknown address mapping %q (known: %v)", name, MappingNames())
	}
	return mk(geom, seed), nil
}

// rowBitsOf returns the width of the power-of-two row domain the bit
// permutations operate over ([0, 2^rowBits) covers RowsPerBank).
func rowBitsOf(geom Geometry) uint {
	b := uint(bits.Len(uint(geom.RowsPerBank - 1)))
	if b == 0 {
		b = 1
	}
	return b
}

// feistelMapping is the original per-chip scrambler: a small
// Feistel-style network over the row index bits (odd multiplier, XOR,
// rotation, cycle-walked into range) with an XOR/affine column swizzle.
type feistelMapping struct {
	geom    Geometry
	seed    uint64
	rowBits uint
	rowMask int
	colXor  int
}

func newFeistelMapping(geom Geometry, seed uint64) *feistelMapping {
	m := &feistelMapping{geom: geom, seed: seed}
	m.rowBits = rowBitsOf(geom)
	m.rowMask = (1 << m.rowBits) - 1
	m.colXor = int(splitmix(seed) % uint64(geom.ColsPerRow))
	return m
}

func (m *feistelMapping) Name() string { return DefaultMappingName }

// PhysRow composes bijective steps over the power-of-two domain
// [0, 2^rowBits) — multiply by an odd constant, XOR, and bit rotation —
// and cycle-walks results that land outside [0, RowsPerBank) back into
// range, so the overall mapping is a bijection on the row space.
func (m *feistelMapping) PhysRow(bank, row int) int {
	r := row
	for {
		r = m.permuteRow(bank, r)
		if r < m.geom.RowsPerBank {
			return r
		}
	}
}

func (m *feistelMapping) permuteRow(bank, row int) int {
	k := splitmix(m.seed ^ uint64(bank)*0x2545f4914f6cdd1d)
	mul := (k | 1) & uint64(m.rowMask) // odd multiplier: bijective mod 2^rowBits
	xor := splitmix(k) & uint64(m.rowMask)
	rot := uint(splitmix(k^0x5bf0) % uint64(m.rowBits))

	r := uint64(row)
	r = (r * mul) & uint64(m.rowMask)
	r ^= xor
	// Rotate within rowBits.
	if rot > 0 {
		r = ((r << rot) | (r >> (m.rowBits - rot))) & uint64(m.rowMask)
	}
	return int(r)
}

// BaseCol is an XOR swizzle when ColsPerRow is a power of two (a
// bijection by construction); otherwise an affine map with a stride
// coprime to the column count.
func (m *feistelMapping) BaseCol(col int) int {
	n := m.geom.ColsPerRow
	if n&(n-1) == 0 {
		return col ^ (m.colXor & (n - 1))
	}
	stride := int(splitmix(m.seed^0xabcdef)%uint64(n-1)) + 1
	for gcd(stride, n) != 1 {
		stride++
	}
	return (col*stride + m.colXor) % n
}

// linearMapping is the identity: system order IS physical order. DRAMDig
// reports devices whose row mapping is exactly this straight-through
// routing; it is also the (broken) assumption naive system-level
// neighbour testing makes, so it doubles as the adversarial baseline.
type linearMapping struct{}

func (linearMapping) Name() string              { return "linear" }
func (linearMapping) PhysRow(bank, row int) int { return row }
func (linearMapping) BaseCol(col int) int       { return col }

// grayMapping routes rows in reflected-Gray-code order with a per-bank
// XOR salt — the folded wordline layout where logically adjacent rows
// share all but one physical address bit. Gray coding and the XOR are
// both bijections on the power-of-two domain; out-of-range results
// cycle-walk back in. Columns pass through unpermuted.
type grayMapping struct {
	geom    Geometry
	rowBits uint
	rowMask int
	salt    []int // per-bank XOR constant
}

func newGrayMapping(geom Geometry, seed uint64) *grayMapping {
	m := &grayMapping{geom: geom}
	m.rowBits = rowBitsOf(geom)
	m.rowMask = (1 << m.rowBits) - 1
	m.salt = make([]int, geom.BanksPerChip)
	for b := range m.salt {
		m.salt[b] = int(splitmix(seed^uint64(b)*0x9e3779b97f4a7c15) & uint64(m.rowMask))
	}
	return m
}

func (m *grayMapping) Name() string { return "gray" }

func (m *grayMapping) PhysRow(bank, row int) int {
	r := row
	for {
		r = (r ^ (r >> 1) ^ m.salt[bank]) & m.rowMask
		if r < m.geom.RowsPerBank {
			return r
		}
	}
}

func (m *grayMapping) BaseCol(col int) int { return col }

// mirrorMapping bit-reverses the row address within the bank — the
// mirrored wordline routing of stacked array halves — and applies an
// affine column swizzle with its own seed-derived constants. Both steps
// are bijections; rows cycle-walk into range as usual.
type mirrorMapping struct {
	geom      Geometry
	rowBits   uint
	rowMask   int
	colStride int
	colOff    int
}

func newMirrorMapping(geom Geometry, seed uint64) *mirrorMapping {
	m := &mirrorMapping{geom: geom}
	m.rowBits = rowBitsOf(geom)
	m.rowMask = (1 << m.rowBits) - 1
	n := geom.ColsPerRow
	m.colOff = int(splitmix(seed^0x51ed270b) % uint64(n))
	m.colStride = int(splitmix(seed^0xc2b2ae35)%uint64(n-1)) + 1
	for gcd(m.colStride, n) != 1 {
		m.colStride++
	}
	return m
}

func (m *mirrorMapping) Name() string { return "mirror" }

func (m *mirrorMapping) PhysRow(bank, row int) int {
	r := uint64(row)
	for {
		r = bits.Reverse64(r) >> (64 - m.rowBits)
		if int(r) < m.geom.RowsPerBank {
			return int(r)
		}
	}
}

func (m *mirrorMapping) BaseCol(col int) int {
	return (col*m.colStride + m.colOff) % m.geom.ColsPerRow
}
