package dram

// Scrambler implements the vendor-internal, per-chip mapping from system
// addresses to physical cell locations (paper §2, Fig. 2a). Two rows (or
// columns) that are adjacent in system address space are generally not
// physically adjacent in the cell array. The mapping is a deterministic
// bijection derived from the chip seed; it is intentionally NOT exposed
// through the system-facing Module API — only the faults package, which
// plays the role of silicon, consults it.
//
// The translation scheme itself is pluggable (AddressMapping): the
// default is the original Feistel-style row network with an XOR/rotate
// column swizzle, and DRAMDig-style vendor alternatives are registered
// in addrmap.go. The Scrambler layers the manufacturing-time faulty
// column remap (Fig. 2b) on top of whichever mapping is installed.
type Scrambler struct {
	geom     Geometry
	mapping  AddressMapping
	remap    []int // system column -> physical column (after remapping)
	remapped map[int]bool
}

// NewScrambler builds the default vendor mapping for a chip. faultyCols
// lists manufacturing-time faulty physical columns that are remapped to
// the redundant region at the right edge of the array (Fig. 2b); at most
// geom.RedundantCols entries are honoured, extras are ignored (a real
// vendor would discard such a chip).
func NewScrambler(geom Geometry, seed uint64, faultyCols []int) *Scrambler {
	return NewScramblerWithMapping(geom, faultyCols, newFeistelMapping(geom, seed))
}

// NewMappedScrambler builds a scrambler using the named vendor mapping
// ("" or "default" selects the scheme NewScrambler uses). It fails only
// on an unknown mapping name.
func NewMappedScrambler(geom Geometry, seed uint64, faultyCols []int, mapping string) (*Scrambler, error) {
	m, err := NewMapping(mapping, geom, seed)
	if err != nil {
		return nil, err
	}
	return NewScramblerWithMapping(geom, faultyCols, m), nil
}

// NewScramblerWithMapping builds a scrambler over an explicit address
// mapping, layering the faulty-column remap on the mapping's BaseCol.
func NewScramblerWithMapping(geom Geometry, faultyCols []int, m AddressMapping) *Scrambler {
	s := &Scrambler{
		geom:     geom,
		mapping:  m,
		remapped: make(map[int]bool),
	}
	// Base column mapping, from the installed scheme.
	s.remap = make([]int, geom.ColsPerRow)
	for c := range s.remap {
		s.remap[c] = m.BaseCol(c)
	}
	// Column remapping: redirect system columns whose base physical
	// column is faulty into the redundant region.
	next := geom.ColsPerRow // first redundant physical column
	faulty := make(map[int]bool, len(faultyCols))
	for _, f := range faultyCols {
		if f >= 0 && f < geom.ColsPerRow {
			faulty[f] = true
		}
	}
	for c := range s.remap {
		if faulty[s.remap[c]] && next < geom.PhysCols() {
			s.remap[c] = next
			s.remapped[c] = true
			next++
		}
	}
	return s
}

// splitmix is the SplitMix64 mixing function, used to derive per-chip
// mapping constants from the seed.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// MappingName reports which vendor mapping scheme this scrambler uses.
func (s *Scrambler) MappingName() string { return s.mapping.Name() }

// PhysRow maps a system row index (within a bank) to its physical row.
func (s *Scrambler) PhysRow(bank, row int) int {
	return s.mapping.PhysRow(bank, row)
}

// PhysCol maps a system column to its physical column, honouring the
// manufacturing-time column remapping.
func (s *Scrambler) PhysCol(col int) int {
	return s.remap[col]
}

// IsRemapped reports whether the system column was remapped into the
// redundant region.
func (s *Scrambler) IsRemapped(col int) bool { return s.remapped[col] }

// SysColOfPhys returns the system column currently mapped to physical
// column p, or -1 when no system column maps there (e.g. an unused
// redundant column or a faulty column that was remapped away).
func (s *Scrambler) SysColOfPhys(p int) int {
	for c, pc := range s.remap {
		if pc == p {
			return c
		}
	}
	return -1
}
