package dram

import (
	"math/bits"
)

// Scrambler implements the vendor-internal, per-chip mapping from system
// addresses to physical cell locations (paper §2, Fig. 2a). Two rows (or
// columns) that are adjacent in system address space are generally not
// physically adjacent in the cell array. The mapping is a deterministic
// bijection derived from the chip seed; it is intentionally NOT exposed
// through the system-facing Module API — only the faults package, which
// plays the role of silicon, consults it.
//
// The row permutation is a small Feistel-style network over the row index
// bits and the column permutation is an XOR/rotate swizzle, mirroring how
// real devices scramble via bitline/wordline routing.
type Scrambler struct {
	geom     Geometry
	seed     uint64
	rowBits  uint
	rowMask  int
	colXor   int
	colRot   int
	remap    []int // system column -> physical column (after remapping)
	remapped map[int]bool
}

// NewScrambler builds the vendor mapping for a chip. faultyCols lists
// manufacturing-time faulty physical columns that are remapped to the
// redundant region at the right edge of the array (Fig. 2b); at most
// geom.RedundantCols entries are honoured, extras are ignored (a real
// vendor would discard such a chip).
func NewScrambler(geom Geometry, seed uint64, faultyCols []int) *Scrambler {
	s := &Scrambler{
		geom:     geom,
		seed:     seed,
		remapped: make(map[int]bool),
	}
	s.rowBits = uint(bits.Len(uint(geom.RowsPerBank - 1)))
	if s.rowBits == 0 {
		s.rowBits = 1
	}
	s.rowMask = (1 << s.rowBits) - 1
	s.colXor = int(splitmix(seed) % uint64(geom.ColsPerRow))
	s.colRot = int(splitmix(seed^0x9e3779b97f4a7c15)%uint64(bits.Len(uint(geom.ColsPerRow)))) + 1

	// Base column mapping: XOR-swizzle within the regular array.
	s.remap = make([]int, geom.ColsPerRow)
	for c := range s.remap {
		s.remap[c] = s.baseCol(c)
	}
	// Column remapping: redirect system columns whose base physical
	// column is faulty into the redundant region.
	next := geom.ColsPerRow // first redundant physical column
	faulty := make(map[int]bool, len(faultyCols))
	for _, f := range faultyCols {
		if f >= 0 && f < geom.ColsPerRow {
			faulty[f] = true
		}
	}
	for c := range s.remap {
		if faulty[s.remap[c]] && next < geom.PhysCols() {
			s.remap[c] = next
			s.remapped[c] = true
			next++
		}
	}
	return s
}

// splitmix is the SplitMix64 mixing function, used to derive per-chip
// mapping constants from the seed.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// baseCol computes the pre-remap physical column of a system column.
func (s *Scrambler) baseCol(col int) int {
	// XOR swizzle keeps the mapping a bijection when ColsPerRow is a
	// power of two; otherwise fall back to an affine map with a stride
	// coprime to the column count.
	n := s.geom.ColsPerRow
	if n&(n-1) == 0 {
		return col ^ (s.colXor & (n - 1))
	}
	stride := int(splitmix(s.seed^0xabcdef)%uint64(n-1)) + 1
	for gcd(stride, n) != 1 {
		stride++
	}
	return (col*stride + s.colXor) % n
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PhysRow maps a system row index (within a bank) to its physical row.
// The mapping composes bijective steps over the power-of-two domain
// [0, 2^rowBits) — multiply by an odd constant, XOR, and bit rotation —
// and cycle-walks results that land outside [0, RowsPerBank) back into
// range, so the overall mapping is a bijection on the row space.
func (s *Scrambler) PhysRow(bank, row int) int {
	r := row
	for {
		r = s.permuteRow(bank, r)
		if r < s.geom.RowsPerBank {
			return r
		}
	}
}

func (s *Scrambler) permuteRow(bank, row int) int {
	k := splitmix(s.seed ^ uint64(bank)*0x2545f4914f6cdd1d)
	mul := (k | 1) & uint64(s.rowMask) // odd multiplier: bijective mod 2^rowBits
	xor := splitmix(k) & uint64(s.rowMask)
	rot := uint(splitmix(k^0x5bf0) % uint64(s.rowBits))

	r := uint64(row)
	r = (r * mul) & uint64(s.rowMask)
	r ^= xor
	// Rotate within rowBits.
	if rot > 0 {
		r = ((r << rot) | (r >> (s.rowBits - rot))) & uint64(s.rowMask)
	}
	return int(r)
}

// PhysCol maps a system column to its physical column, honouring the
// manufacturing-time column remapping.
func (s *Scrambler) PhysCol(col int) int {
	return s.remap[col]
}

// IsRemapped reports whether the system column was remapped into the
// redundant region.
func (s *Scrambler) IsRemapped(col int) bool { return s.remapped[col] }

// SysColOfPhys returns the system column currently mapped to physical
// column p, or -1 when no system column maps there (e.g. an unused
// redundant column or a faulty column that was remapped away).
func (s *Scrambler) SysColOfPhys(p int) int {
	for c, pc := range s.remap {
		if pc == p {
			return c
		}
	}
	return -1
}
