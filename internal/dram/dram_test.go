package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimingMatchesPaperAppendix(t *testing.T) {
	tm := DDR31600()
	if got := tm.RowCycle(); got != 534 {
		t.Errorf("RowCycle = %d ns, want 534", got)
	}
	if got := tm.RefreshCost(); got != 39 {
		t.Errorf("RefreshCost = %d ns, want 39 (tRAS+tRP)", got)
	}
	if got := tm.ReadCompareCost(); got != 1068 {
		t.Errorf("ReadCompareCost = %d ns, want 1068", got)
	}
	if got := tm.CopyCompareCost(); got != 1602 {
		t.Errorf("CopyCompareCost = %d ns, want 1602", got)
	}
}

func TestTREFI(t *testing.T) {
	if got := TREFI(RefreshWindowDefault); got != 7812 { // 64 ms / 8192 = 7.8125 us
		t.Errorf("TREFI(64ms) = %d ns, want 7812", got)
	}
	if got := TREFI(RefreshWindowAggressive); got != 1953 {
		t.Errorf("TREFI(16ms) = %d ns, want 1953", got)
	}
}

func TestDensityTRFC(t *testing.T) {
	cases := []struct {
		d    Density
		want Nanoseconds
	}{
		{Density4Gb, 350},
		{Density8Gb, 530},
		{Density16Gb, 890},
		{Density32Gb, 1600},
	}
	for _, c := range cases {
		if got := c.d.TRFC(); got != c.want {
			t.Errorf("TRFC(%s) = %d, want %d", c.d, got, c.want)
		}
	}
	if Density8Gb.String() != "8Gb" {
		t.Errorf("String = %q", Density8Gb.String())
	}
}

func TestGeometryValidate(t *testing.T) {
	good := DefaultGeometry()
	if err := good.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := []Geometry{
		{Ranks: 0, ChipsPerRank: 1, BanksPerChip: 1, RowsPerBank: 2, ColsPerRow: 64},
		{Ranks: 1, ChipsPerRank: 0, BanksPerChip: 1, RowsPerBank: 2, ColsPerRow: 64},
		{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 0, RowsPerBank: 2, ColsPerRow: 64},
		{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 1, RowsPerBank: 1, ColsPerRow: 64},
		{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 1, RowsPerBank: 2, ColsPerRow: 4},
		{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 1, RowsPerBank: 2, ColsPerRow: 100},
		{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 1, RowsPerBank: 2, ColsPerRow: 64, RedundantCols: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted: %+v", i, g)
		}
	}
}

func TestRowIndexRoundTrip(t *testing.T) {
	g := Geometry{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 4, RowsPerBank: 16, ColsPerRow: 64}
	for idx := 0; idx < g.TotalRows(); idx++ {
		a := g.AddressOfIndex(idx)
		if got := g.RowIndex(a); got != idx {
			t.Fatalf("round trip failed: idx %d -> %+v -> %d", idx, a, got)
		}
	}
}

func TestRowIndexPanicsOutOfRange(t *testing.T) {
	g := DefaultGeometry()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range address")
		}
	}()
	g.RowIndex(RowAddress{Bank: g.BanksPerChip, Row: 0})
}

func TestRowBitOps(t *testing.T) {
	r := NewRow(128)
	r.SetBit(0, 1)
	r.SetBit(63, 1)
	r.SetBit(64, 1)
	r.SetBit(127, 1)
	for _, c := range []int{0, 63, 64, 127} {
		if r.Bit(c) != 1 {
			t.Errorf("bit %d = 0, want 1", c)
		}
	}
	if r.OnesCount() != 4 {
		t.Errorf("OnesCount = %d, want 4", r.OnesCount())
	}
	r.SetBit(63, 0)
	if r.Bit(63) != 0 {
		t.Error("clearing bit 63 failed")
	}
	if r.OnesCount() != 3 {
		t.Errorf("OnesCount after clear = %d, want 3", r.OnesCount())
	}
}

func TestRowDiffBits(t *testing.T) {
	a := NewRow(128)
	b := NewRow(128)
	a.SetBit(5, 1)
	a.SetBit(100, 1)
	b.SetBit(100, 1)
	b.SetBit(70, 1)
	diffs := a.DiffBits(b)
	if len(diffs) != 2 || diffs[0] != 5 || diffs[1] != 70 {
		t.Errorf("DiffBits = %v, want [5 70]", diffs)
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone should equal original")
	}
	if a.Equal(b) {
		t.Error("different rows reported equal")
	}
	if a.Equal(NewRow(64)) {
		t.Error("different lengths reported equal")
	}
}

func TestRowAppendDiffBits(t *testing.T) {
	a := NewRow(128)
	b := NewRow(128)
	a.SetBit(5, 1)
	a.SetBit(100, 1)
	b.SetBit(70, 1)
	// Appending into a prefilled slice keeps the prefix.
	got := a.AppendDiffBits([]int{-1}, b)
	want := []int{-1, 5, 70, 100}
	if len(got) != len(want) {
		t.Fatalf("AppendDiffBits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendDiffBits = %v, want %v", got, want)
		}
	}
	// Reusing a capacious buffer must not allocate.
	buf := make([]int, 0, 128)
	allocs := testing.AllocsPerRun(10, func() {
		buf = a.AppendDiffBits(buf[:0], b)
	})
	if allocs != 0 {
		t.Errorf("AppendDiffBits allocated %.1f times with a reused buffer", allocs)
	}
	// Identical rows diff to nothing.
	if d := a.AppendDiffBits(nil, a.Clone()); len(d) != 0 {
		t.Errorf("self-diff = %v, want empty", d)
	}
}

func TestModuleRowAtAliasesRowRef(t *testing.T) {
	g := DefaultGeometry()
	g.RowsPerBank = 64
	m, err := NewModule(g)
	if err != nil {
		t.Fatal(err)
	}
	a := RowAddress{Bank: g.BanksPerChip - 1, Row: 13}
	content := NewRow(g.ColsPerRow)
	content.SetBit(7, 1)
	if err := m.WriteRow(a, content, 0); err != nil {
		t.Fatal(err)
	}
	byRef := m.RowRef(a)
	byIdx := m.RowAt(g.RowIndex(a))
	if &byRef[0] != &byIdx[0] {
		t.Error("RowAt and RowRef return different backing storage for the same row")
	}
	if byIdx.Bit(7) != 1 {
		t.Error("RowAt content does not reflect the write")
	}
}

func TestRowFillAndRandomize(t *testing.T) {
	r := NewRow(256)
	r.Fill(^uint64(0))
	if r.OnesCount() != 256 {
		t.Errorf("Fill(all ones) count = %d, want 256", r.OnesCount())
	}
	rng := rand.New(rand.NewSource(3))
	r.Randomize(rng)
	n := r.OnesCount()
	if n == 0 || n == 256 {
		t.Errorf("randomized row suspicious ones count %d", n)
	}
}

// Property: SetBit then Bit always round-trips, and never disturbs other
// cells.
func TestRowSetBitProperty(t *testing.T) {
	f := func(cRaw uint16, v bool) bool {
		r := NewRow(512)
		r.Fill(0xAAAAAAAAAAAAAAAA)
		before := r.Clone()
		c := int(cRaw) % 512
		val := 0
		if v {
			val = 1
		}
		r.SetBit(c, val)
		if r.Bit(c) != val {
			return false
		}
		diffs := before.DiffBits(r)
		if len(diffs) == 0 {
			return before.Bit(c) == val
		}
		return len(diffs) == 1 && diffs[0] == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModuleWriteReadPeek(t *testing.T) {
	g := Geometry{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 2, RowsPerBank: 8, ColsPerRow: 128}
	m, err := NewModule(g)
	if err != nil {
		t.Fatal(err)
	}
	content := NewRow(128)
	content.SetBit(17, 1)
	a := RowAddress{Bank: 1, Row: 3}
	if err := m.WriteRow(a, content, 100); err != nil {
		t.Fatal(err)
	}
	got, err := m.PeekRow(a)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(content) {
		t.Error("peek does not match written content")
	}
	// Mutating the returned copy must not affect stored state.
	got.SetBit(0, 1)
	again, _ := m.PeekRow(a)
	if again.Bit(0) != 0 {
		t.Error("PeekRow returned aliased storage")
	}
	if m.LastCharge(a) != 100 {
		t.Errorf("LastCharge = %d, want 100", m.LastCharge(a))
	}
}

func TestModuleErrors(t *testing.T) {
	m, err := NewModule(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	bad := RowAddress{Bank: -1, Row: 0}
	if err := m.WriteRow(bad, NewRow(m.Geometry().ColsPerRow), 0); err == nil {
		t.Error("write to invalid address should error")
	}
	if _, err := m.PeekRow(bad); err == nil {
		t.Error("peek of invalid address should error")
	}
	short := NewRow(64)
	if err := m.WriteRow(RowAddress{}, short, 0); err == nil {
		t.Error("short content should error")
	}
	if _, err := NewModule(Geometry{}); err == nil {
		t.Error("invalid geometry should error")
	}
}

func TestModuleChargeBookkeeping(t *testing.T) {
	m, _ := NewModule(DefaultGeometry())
	a := RowAddress{Bank: 0, Row: 10}
	m.Refresh(a, 5*Millisecond)
	if got := m.IdleTime(a, 7*Millisecond); got != 2*Millisecond {
		t.Errorf("IdleTime = %d, want 2ms", got)
	}
	if got := m.IdleTime(a, 1*Millisecond); got != 0 {
		t.Errorf("IdleTime before charge = %d, want clamped 0", got)
	}
	m.Activate(a, 9*Millisecond)
	if got := m.LastCharge(a); got != 9*Millisecond {
		t.Errorf("Activate did not recharge: %d", got)
	}
}

func TestModuleApplyFlips(t *testing.T) {
	m, _ := NewModule(DefaultGeometry())
	a := RowAddress{Bank: 2, Row: 2}
	content := NewRow(m.Geometry().ColsPerRow)
	content.SetBit(8, 1)
	if err := m.WriteRow(a, content, 0); err != nil {
		t.Fatal(err)
	}
	m.ApplyFlips(a, []int{8, 9})
	got, _ := m.PeekRow(a)
	if got.Bit(8) != 0 || got.Bit(9) != 1 {
		t.Errorf("flips not applied: bit8=%d bit9=%d", got.Bit(8), got.Bit(9))
	}
}

func TestScramblerRowPermutation(t *testing.T) {
	g := DefaultGeometry()
	s := NewScrambler(g, 12345, nil)
	for bank := 0; bank < 2; bank++ {
		seen := make(map[int]bool, g.RowsPerBank)
		for r := 0; r < g.RowsPerBank; r++ {
			p := s.PhysRow(bank, r)
			if p < 0 || p >= g.RowsPerBank {
				t.Fatalf("PhysRow(%d,%d) = %d out of range", bank, r, p)
			}
			if seen[p] {
				t.Fatalf("PhysRow not a bijection: %d hit twice (bank %d)", p, bank)
			}
			seen[p] = true
		}
	}
}

func TestScramblerRowPermutationNonPowerOfTwo(t *testing.T) {
	g := DefaultGeometry()
	g.RowsPerBank = 3000 // not a power of two: exercises cycle walking
	s := NewScrambler(g, 99, nil)
	seen := make(map[int]bool, g.RowsPerBank)
	for r := 0; r < g.RowsPerBank; r++ {
		p := s.PhysRow(0, r)
		if p < 0 || p >= g.RowsPerBank {
			t.Fatalf("PhysRow out of range: %d", p)
		}
		if seen[p] {
			t.Fatalf("collision at %d", p)
		}
		seen[p] = true
	}
}

func TestScramblerActuallyScrambles(t *testing.T) {
	g := DefaultGeometry()
	s := NewScrambler(g, 777, nil)
	identical := 0
	adjacentStaysAdjacent := 0
	for r := 0; r+1 < 512; r++ {
		if s.PhysRow(0, r) == r {
			identical++
		}
		d := s.PhysRow(0, r+1) - s.PhysRow(0, r)
		if d == 1 || d == -1 {
			adjacentStaysAdjacent++
		}
	}
	if identical > 50 {
		t.Errorf("scrambler looks like identity: %d fixed points in 512", identical)
	}
	if adjacentStaysAdjacent > 100 {
		t.Errorf("scrambler preserves adjacency too often: %d of 511", adjacentStaysAdjacent)
	}
}

func TestScramblerDiffersAcrossChips(t *testing.T) {
	g := DefaultGeometry()
	a := NewScrambler(g, 1, nil)
	b := NewScrambler(g, 2, nil)
	same := 0
	for r := 0; r < 256; r++ {
		if a.PhysRow(0, r) == b.PhysRow(0, r) {
			same++
		}
	}
	if same > 32 {
		t.Errorf("two chips share %d/256 row mappings; vendors scramble per generation", same)
	}
}

func TestScramblerColumnBijection(t *testing.T) {
	g := DefaultGeometry()
	s := NewScrambler(g, 5, nil)
	seen := make(map[int]bool)
	for c := 0; c < g.ColsPerRow; c++ {
		p := s.PhysCol(c)
		if p < 0 || p >= g.PhysCols() {
			t.Fatalf("PhysCol(%d) = %d out of range", c, p)
		}
		if seen[p] {
			t.Fatalf("column collision at %d", p)
		}
		seen[p] = true
	}
}

func TestScramblerColumnRemapping(t *testing.T) {
	g := DefaultGeometry()
	noRemap := NewScrambler(g, 5, nil)
	// Pick some physical columns that are in use and declare them faulty.
	faulty := []int{noRemap.PhysCol(10), noRemap.PhysCol(20), noRemap.PhysCol(30)}
	s := NewScrambler(g, 5, faulty)
	remapCount := 0
	for c := 0; c < g.ColsPerRow; c++ {
		p := s.PhysCol(c)
		for _, f := range faulty {
			if p == f {
				t.Errorf("system col %d still maps to faulty physical col %d", c, f)
			}
		}
		if s.IsRemapped(c) {
			remapCount++
			if p < g.ColsPerRow {
				t.Errorf("remapped col %d maps to %d, want redundant region >= %d", c, p, g.ColsPerRow)
			}
		}
	}
	if remapCount != 3 {
		t.Errorf("remapped %d columns, want 3", remapCount)
	}
}

func TestSysColOfPhys(t *testing.T) {
	g := DefaultGeometry()
	s := NewScrambler(g, 5, nil)
	for c := 0; c < 64; c++ {
		p := s.PhysCol(c)
		if got := s.SysColOfPhys(p); got != c {
			t.Errorf("SysColOfPhys(PhysCol(%d)) = %d", c, got)
		}
	}
	// An unused redundant column maps to no system column.
	if got := s.SysColOfPhys(g.ColsPerRow); got != -1 {
		t.Errorf("unused redundant col maps to %d, want -1", got)
	}
}
