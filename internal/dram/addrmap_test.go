package dram

import (
	"strings"
	"testing"
)

// mapGeometries covers the shapes that stress an address mapping:
// power-of-two everything (the bit-permutation fast paths), a
// non-power-of-two row count (cycle-walking must stay in range), and a
// non-power-of-two column count (the affine column swizzles).
func mapGeometries() []Geometry {
	return []Geometry{
		{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 2, RowsPerBank: 256, ColsPerRow: 128, RedundantCols: 8},
		{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 3, RowsPerBank: 200, ColsPerRow: 128, RedundantCols: 8},
		{Ranks: 1, ChipsPerRank: 1, BanksPerChip: 2, RowsPerBank: 128, ColsPerRow: 96, RedundantCols: 4},
	}
}

// TestMappingRegistry pins the registry surface: names are sorted and
// stable, "" and "default" are both known, and unknown names error
// mentioning the registry.
func TestMappingRegistry(t *testing.T) {
	names := MappingNames()
	want := []string{"default", "gray", "linear", "mirror"}
	if len(names) != len(want) {
		t.Fatalf("MappingNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("MappingNames() = %v, want %v", names, want)
		}
	}
	if !KnownMapping("") || !KnownMapping(DefaultMappingName) {
		t.Error("empty and default mapping names must be known")
	}
	if KnownMapping("zigzag") {
		t.Error("unknown mapping reported as known")
	}
	if _, err := NewMapping("zigzag", DefaultGeometry(), 1); err == nil ||
		!strings.Contains(err.Error(), "gray") {
		t.Errorf("NewMapping(zigzag) = %v, want error naming the registry", err)
	}
}

// TestMappingBijections proves the property every mapping must have for
// the simulation to be meaningful: PhysRow is a permutation of each
// bank's rows and BaseCol is a permutation of the column space — every
// system address lands on exactly one physical cell.
func TestMappingBijections(t *testing.T) {
	for _, name := range MappingNames() {
		for gi, geom := range mapGeometries() {
			for _, seed := range []uint64{1, 42, 1 << 60} {
				m, err := NewMapping(name, geom, seed)
				if err != nil {
					t.Fatal(err)
				}
				if m.Name() != name {
					t.Errorf("%s: Name() = %q", name, m.Name())
				}
				for b := 0; b < geom.BanksPerChip; b++ {
					seen := make([]bool, geom.RowsPerBank)
					for r := 0; r < geom.RowsPerBank; r++ {
						p := m.PhysRow(b, r)
						if p < 0 || p >= geom.RowsPerBank {
							t.Fatalf("%s geom %d seed %d: PhysRow(%d,%d) = %d out of range", name, gi, seed, b, r, p)
						}
						if seen[p] {
							t.Fatalf("%s geom %d seed %d bank %d: PhysRow not injective at %d", name, gi, seed, b, p)
						}
						seen[p] = true
					}
				}
				cols := geom.ColsPerRow
				seen := make([]bool, cols)
				for c := 0; c < cols; c++ {
					p := m.BaseCol(c)
					if p < 0 || p >= cols {
						t.Fatalf("%s geom %d seed %d: BaseCol(%d) = %d out of range", name, gi, seed, c, p)
					}
					if seen[p] {
						t.Fatalf("%s geom %d seed %d: BaseCol not injective at %d", name, gi, seed, p)
					}
					seen[p] = true
				}
			}
		}
	}
}

// TestDefaultMappingMatchesLegacyScrambler pins backward compatibility:
// a scrambler built through the mapping registry with "" or "default"
// produces exactly the same physical layout as the pre-registry
// NewScrambler, so every golden output keyed on the default stays
// byte-identical.
func TestDefaultMappingMatchesLegacyScrambler(t *testing.T) {
	for _, geom := range mapGeometries() {
		legacy := NewScrambler(geom, 42, []int{3, 7})
		for _, name := range []string{"", DefaultMappingName} {
			scr, err := NewMappedScrambler(geom, 42, []int{3, 7}, name)
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < geom.BanksPerChip; b++ {
				for r := 0; r < geom.RowsPerBank; r++ {
					if legacy.PhysRow(b, r) != scr.PhysRow(b, r) {
						t.Fatalf("mapping %q: PhysRow(%d,%d) diverged from legacy", name, b, r)
					}
				}
			}
			for c := 0; c < geom.ColsPerRow; c++ {
				if legacy.PhysCol(c) != scr.PhysCol(c) {
					t.Fatalf("mapping %q: PhysCol(%d) diverged from legacy", name, c)
				}
			}
		}
	}
}

// TestLinearMappingIsIdentity pins the one mapping with a specified
// layout: linear is the no-scrambling vendor, the layout naive
// system-level testing assumes.
func TestLinearMappingIsIdentity(t *testing.T) {
	geom := mapGeometries()[0]
	m, err := NewMapping("linear", geom, 99)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < geom.BanksPerChip; b++ {
		for r := 0; r < geom.RowsPerBank; r++ {
			if m.PhysRow(b, r) != r {
				t.Fatalf("linear PhysRow(%d,%d) = %d", b, r, m.PhysRow(b, r))
			}
		}
	}
	for c := 0; c < geom.ColsPerRow; c++ {
		if m.BaseCol(c) != c {
			t.Fatalf("linear BaseCol(%d) = %d", c, m.BaseCol(c))
		}
	}
}

// TestMappingsDiffer is the sanity check that the vendor mappings are
// actually different layouts, not renames of each other: for a
// power-of-two geometry, each pair must disagree on at least one row.
func TestMappingsDiffer(t *testing.T) {
	geom := mapGeometries()[0]
	names := MappingNames()
	for i, a := range names {
		ma, err := NewMapping(a, geom, 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range names[i+1:] {
			mb, err := NewMapping(b, geom, 42)
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for r := 0; r < geom.RowsPerBank && same; r++ {
				if ma.PhysRow(0, r) != mb.PhysRow(0, r) {
					same = false
				}
			}
			if same {
				t.Errorf("mappings %q and %q agree on every row of bank 0", a, b)
			}
		}
	}
}
