package stats

import (
	"fmt"
	"math"
	"strings"
)

// LogHistogram buckets positive values into power-of-two bins, matching
// the write-interval axes used throughout the MEMCON paper (1 ms, 2 ms,
// 4 ms, ... 32768 ms). Bucket i covers [Base*2^i, Base*2^(i+1)); values
// below Base fall into an explicit underflow bucket.
type LogHistogram struct {
	// Base is the lower edge of the first regular bucket.
	Base float64
	// Buckets is the number of regular power-of-two buckets.
	Buckets int

	counts    []int64
	underflow int64
	overflow  int64
	total     int64
	// weight accumulates the sum of the bucketed values themselves so
	// that time-weighted shares can be derived (Fig. 9 style analysis).
	weights     []float64
	underWeight float64
	overWeight  float64
	totalWeight float64
}

// NewLogHistogram creates a log-scaled histogram with the given base and
// number of power-of-two buckets. It panics when base <= 0 or buckets < 1,
// which always indicates a programming error at the call site.
func NewLogHistogram(base float64, buckets int) *LogHistogram {
	if base <= 0 || buckets < 1 {
		panic(fmt.Sprintf("stats: invalid log histogram parameters base=%v buckets=%d", base, buckets))
	}
	return &LogHistogram{
		Base:    base,
		Buckets: buckets,
		counts:  make([]int64, buckets),
		weights: make([]float64, buckets),
	}
}

// Add records value v (which must be positive; non-positive values are
// counted as underflow).
func (h *LogHistogram) Add(v float64) {
	h.total++
	h.totalWeight += math.Max(v, 0)
	if v < h.Base {
		h.underflow++
		h.underWeight += math.Max(v, 0)
		return
	}
	idx := int(math.Floor(math.Log2(v / h.Base)))
	if idx >= h.Buckets {
		h.overflow++
		h.overWeight += v
		return
	}
	h.counts[idx]++
	h.weights[idx] += v
}

// AddBucket merges count pre-bucketed values totalling weight into
// regular bucket i. It lets externally aggregated histograms (such as
// the obs package's atomic-integer histograms) materialize as a
// LogHistogram and reuse its rendering and fraction analysis.
func (h *LogHistogram) AddBucket(i int, count int64, weight float64) {
	h.counts[i] += count
	h.weights[i] += weight
	h.total += count
	h.totalWeight += weight
}

// AddUnderflow merges count below-base values totalling weight.
func (h *LogHistogram) AddUnderflow(count int64, weight float64) {
	h.underflow += count
	h.underWeight += weight
	h.total += count
	h.totalWeight += weight
}

// AddOverflow merges count above-range values totalling weight.
func (h *LogHistogram) AddOverflow(count int64, weight float64) {
	h.overflow += count
	h.overWeight += weight
	h.total += count
	h.totalWeight += weight
}

// Total returns the number of recorded values.
func (h *LogHistogram) Total() int64 { return h.total }

// Count returns the count of regular bucket i.
func (h *LogHistogram) Count(i int) int64 { return h.counts[i] }

// Underflow returns the number of values below Base.
func (h *LogHistogram) Underflow() int64 { return h.underflow }

// Overflow returns the number of values at or above Base*2^Buckets.
func (h *LogHistogram) Overflow() int64 { return h.overflow }

// BucketLow returns the inclusive lower edge of regular bucket i.
func (h *LogHistogram) BucketLow(i int) float64 {
	return h.Base * math.Pow(2, float64(i))
}

// Fraction returns the fraction of all recorded values that fall into
// regular bucket i. It returns 0 when the histogram is empty.
func (h *LogHistogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// FractionAtOrAbove returns the fraction of recorded values >= x,
// computed exactly from the recorded totals rather than bucket edges
// would allow; it uses bucket granularity for interior values.
func (h *LogHistogram) FractionAtOrAbove(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var n int64
	for i := 0; i < h.Buckets; i++ {
		if h.BucketLow(i) >= x {
			n += h.counts[i]
		}
	}
	n += h.overflow
	return float64(n) / float64(h.total)
}

// WeightFractionAtOrAbove returns the fraction of the total accumulated
// weight (sum of values) contributed by values in buckets whose lower
// edge is >= x. For write intervals this is the share of time spent in
// intervals at least that long.
func (h *LogHistogram) WeightFractionAtOrAbove(x float64) float64 {
	if h.totalWeight == 0 {
		return 0
	}
	var w float64
	for i := 0; i < h.Buckets; i++ {
		if h.BucketLow(i) >= x {
			w += h.weights[i]
		}
	}
	w += h.overWeight
	return w / h.totalWeight
}

// String renders the histogram as a fixed-width text table, one row per
// non-empty bucket, for CLI reporting.
func (h *LogHistogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %12s %9s\n", "bucket>=", "count", "percent")
	if h.underflow > 0 {
		fmt.Fprintf(&b, "%12s %12d %8.3f%%\n", fmt.Sprintf("<%g", h.Base), h.underflow, 100*float64(h.underflow)/float64(h.total))
	}
	for i := 0; i < h.Buckets; i++ {
		if h.counts[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%12g %12d %8.3f%%\n", h.BucketLow(i), h.counts[i], 100*h.Fraction(i))
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "%12s %12d %8.3f%%\n", fmt.Sprintf(">=%g", h.BucketLow(h.Buckets)), h.overflow, 100*float64(h.overflow)/float64(h.total))
	}
	return b.String()
}
