package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoData {
		t.Fatalf("Summarize(nil) error = %v, want ErrNoData", err)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !almostEqual(s.Stddev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Stddev = %v, want %v", s.Stddev, math.Sqrt(32.0/7.0))
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stddev != 0 {
		t.Errorf("Stddev of single value = %v, want 0", s.Stddev)
	}
	if s.Min != 42 || s.Max != 42 || s.Mean != 42 {
		t.Errorf("single value summary wrong: %+v", s)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("WeightedMean = %v, want 2.5", got)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedMean(nil, nil); err != ErrNoData {
		t.Errorf("empty input error = %v, want ErrNoData", err)
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{0, 0}); err != ErrNoData {
		t.Errorf("zero weight error = %v, want ErrNoData", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrNoData {
		t.Error("empty input should return ErrNoData")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("negative percentile should error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("percentile >100 should error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0.1, 0.9, 2.2, 2.8, 4.1}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R2 = %v, want >= 0.98 for mildly noisy data", fit.R2)
	}
	if fit.Slope < 0.9 || fit.Slope > 1.1 {
		t.Errorf("Slope = %v, want ~1", fit.Slope)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x should error")
	}
}

// Property: the OLS fit of any strictly linear data recovers the line and
// reports R² = 1.
func TestFitLineRecoversLinesProperty(t *testing.T) {
	f := func(slope, intercept float64, n uint8) bool {
		if math.IsNaN(slope) || math.IsInf(slope, 0) || math.IsNaN(intercept) || math.IsInf(intercept, 0) {
			return true
		}
		// Bound magnitudes to avoid float overflow artifacts.
		if math.Abs(slope) > 1e6 || math.Abs(intercept) > 1e6 {
			return true
		}
		points := int(n%20) + 2
		xs := make([]float64, points)
		ys := make([]float64, points)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = slope*xs[i] + intercept
		}
		fit, err := FitLine(xs, ys)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Max(math.Abs(slope), math.Abs(intercept)))
		return almostEqual(fit.Slope, slope, 1e-6*scale) &&
			almostEqual(fit.Intercept, intercept, 1e-6*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogHistogramBuckets(t *testing.T) {
	h := NewLogHistogram(1, 16)
	h.Add(0.5)  // underflow
	h.Add(1)    // bucket 0 [1,2)
	h.Add(1.99) // bucket 0
	h.Add(2)    // bucket 1 [2,4)
	h.Add(1024) // bucket 10
	h.Add(1 << 20)
	if h.Underflow() != 1 {
		t.Errorf("underflow = %d, want 1", h.Underflow())
	}
	if h.Count(0) != 2 {
		t.Errorf("bucket 0 = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 1 {
		t.Errorf("bucket 1 = %d, want 1", h.Count(1))
	}
	if h.Count(10) != 1 {
		t.Errorf("bucket 10 = %d, want 1", h.Count(10))
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow())
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
}

func TestLogHistogramFractions(t *testing.T) {
	h := NewLogHistogram(1, 20)
	for i := 0; i < 99; i++ {
		h.Add(0.5) // all under 1
	}
	h.Add(2048)
	if got := h.FractionAtOrAbove(1024); !almostEqual(got, 0.01, 1e-9) {
		t.Errorf("FractionAtOrAbove(1024) = %v, want 0.01", got)
	}
	// Time share: the single long interval dominates accumulated weight.
	wf := h.WeightFractionAtOrAbove(1024)
	want := 2048.0 / (2048.0 + 99*0.5)
	if !almostEqual(wf, want, 1e-9) {
		t.Errorf("WeightFractionAtOrAbove = %v, want %v", wf, want)
	}
}

func TestLogHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive base")
		}
	}()
	NewLogHistogram(0, 4)
}

func TestLogHistogramString(t *testing.T) {
	h := NewLogHistogram(1, 4)
	h.Add(0.5)
	h.Add(3)
	h.Add(100)
	s := h.String()
	if s == "" {
		t.Error("String() should not be empty")
	}
}

// Property: counts across underflow + buckets + overflow always equal the
// number of Add calls.
func TestLogHistogramConservationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewLogHistogram(1, 12)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(math.Abs(v))
		}
		var sum int64 = h.Underflow() + h.Overflow()
		for i := 0; i < h.Buckets; i++ {
			sum += h.Count(i)
		}
		return sum == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
