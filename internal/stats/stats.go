// Package stats provides small statistical utilities shared by the MEMCON
// simulator: summary statistics, weighted means, linear regression, and
// logarithmically bucketed histograms used for write-interval analysis.
//
// Everything operates on float64 slices and is deterministic; no global
// state is kept so the package is safe for concurrent use.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by functions that cannot produce a result from an
// empty input.
var ErrNoData = errors.New("stats: no data")

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	Sum    float64
}

// Summarize computes descriptive statistics for xs. It returns ErrNoData
// when xs is empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns the weighted mean of xs with weights ws.
// It returns ErrNoData when the slices are empty or the total weight is
// zero, and an error when the lengths differ.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) != len(ws) {
		return 0, errors.New("stats: length mismatch between values and weights")
	}
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	var num, den float64
	for i, x := range xs {
		num += x * ws[i]
		den += ws[i]
	}
	if den == 0 {
		return 0, ErrNoData
	}
	return num / den, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. The input need not be
// sorted; a copy is sorted internally.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0], nil
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo], nil
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// LinearFit holds the result of an ordinary least-squares line fit
// y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine performs an ordinary least-squares fit of ys against xs and
// reports the coefficient of determination R². At least two points are
// required.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: length mismatch between xs and ys")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least two points to fit a line")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values, cannot fit")
	}
	fit := LinearFit{}
	fit.Slope = (n*sxy - sx*sy) / den
	fit.Intercept = (sy - fit.Slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := fit.Slope*xs[i] + fit.Intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}
