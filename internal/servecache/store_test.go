package servecache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// corruptFile flips one bit of the file at pos (clamped into range).
func corruptFile(t *testing.T, path string, pos int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[pos%len(b)] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "cache"), 0)
	if err != nil {
		t.Fatal(err)
	}
	req, data := []byte(`{"experiment":"fig4"}`), []byte(`{"report":1}`)
	if err := st.Put(key(1), req, data); err != nil {
		t.Fatal(err)
	}
	gotReq, gotData, ok := st.Get(key(1))
	if !ok || !bytes.Equal(gotReq, req) || !bytes.Equal(gotData, data) {
		t.Fatalf("Get = %q %q %v", gotReq, gotData, ok)
	}
	if _, _, ok := st.Get(key(2)); ok {
		t.Error("Get found a never-written key")
	}
	s := st.StatsSnapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Writes != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Bytes != storeHeaderSize+int64(len(req)+len(data)) {
		t.Errorf("bytes = %d", s.Bytes)
	}
	// Empty request and data are legal entries.
	if err := st.Put(key(3), nil, nil); err != nil {
		t.Fatal(err)
	}
	if gotReq, gotData, ok := st.Get(key(3)); !ok || len(gotReq) != 0 || len(gotData) != 0 {
		t.Errorf("empty entry Get = %q %q %v", gotReq, gotData, ok)
	}
}

// TestStoreCorruption drives every tamper class through the decoder:
// all of them must read as a miss with the file deleted, and a
// subsequent Put must heal the key.
func TestStoreCorruption(t *testing.T) {
	req, data := []byte("request-json"), []byte("data-json-payload")
	cases := []struct {
		name   string
		tamper func(b []byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:storeHeaderSize/2] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"empty file", func(b []byte) []byte { return nil }},
		{"appended garbage", func(b []byte) []byte { return append(b, 'x') }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"future version", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:8], storeVersion+1); return b }},
		{"wrong key", func(b []byte) []byte { b[8] ^= 1; return b }},
		{"tampered hash", func(b []byte) []byte { b[40] ^= 1; return b }},
		{"tampered request length", func(b []byte) []byte { b[72] ^= 1; return b }},
		{"tampered data length", func(b []byte) []byte { b[76] ^= 1; return b }},
		{"request bit flip", func(b []byte) []byte { b[storeHeaderSize] ^= 0x10; return b }},
		{"data bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x10; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := OpenStore(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Put(key(9), req, data); err != nil {
				t.Fatal(err)
			}
			path := st.path(key(9))
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.tamper(append([]byte(nil), b...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, ok := st.Get(key(9)); ok {
				t.Fatal("corrupt entry was served")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry file not deleted")
			}
			if s := st.StatsSnapshot(); s.Corrupt != 1 || s.Entries != 0 {
				t.Errorf("stats = %+v", s)
			}
			// Heal: re-put and read back.
			if err := st.Put(key(9), req, data); err != nil {
				t.Fatal(err)
			}
			if _, gotData, ok := st.Get(key(9)); !ok || !bytes.Equal(gotData, data) {
				t.Error("healed entry not served")
			}
		})
	}
}

// TestStoreScanWarmBoot pins the restart path: a fresh Store over an
// existing directory indexes the prior corpus (oldest first), removes
// leftover temp files, and serves every entry.
func TestStoreScanWarmBoot(t *testing.T) {
	dir := t.TempDir()
	st1, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := st1.Put(key(byte(i)), nil, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Leftovers and foreign files a scan must skip.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "not-a-key"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := st2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || st2.Len() != 5 {
		t.Fatalf("scan indexed %d entries, Len=%d, want 5", n, st2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-123")); !os.IsNotExist(err) {
		t.Error("scan left the temp file behind")
	}
	for i := 1; i <= 5; i++ {
		if _, data, ok := st2.Get(key(byte(i))); !ok || len(data) != 100 {
			t.Errorf("entry %d not served after warm boot", i)
		}
	}
	// Scanning again is idempotent.
	if n, _ := st2.Scan(); n != 0 {
		t.Errorf("re-scan indexed %d new entries", n)
	}
}

// TestStoreByteBudgetEviction pins the disk budget: oldest-accessed
// entries and their files go first, the newest always survives.
func TestStoreByteBudgetEviction(t *testing.T) {
	payload := bytes.Repeat([]byte("p"), 1000)
	perEntry := int64(storeHeaderSize + len(payload))
	st, err := OpenStore(t.TempDir(), 3*perEntry)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := st.Put(key(byte(i)), nil, payload); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 3 || st.Bytes() != 3*perEntry {
		t.Fatalf("len=%d bytes=%d, want 3 entries / %d bytes", st.Len(), st.Bytes(), 3*perEntry)
	}
	for i := 1; i <= 2; i++ {
		if _, err := os.Stat(st.path(key(byte(i)))); !os.IsNotExist(err) {
			t.Errorf("evicted entry %d still on disk", i)
		}
	}
	for i := 3; i <= 5; i++ {
		if _, _, ok := st.Get(key(byte(i))); !ok {
			t.Errorf("recent entry %d missing", i)
		}
	}
	if s := st.StatsSnapshot(); s.Evictions != 2 {
		t.Errorf("stats = %+v", s)
	}
	// A single over-budget entry still sticks.
	tiny, err := OpenStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tiny.Put(key(1), nil, payload)
	tiny.Put(key(2), nil, payload)
	if _, _, ok := tiny.Get(key(2)); !ok || tiny.Len() != 1 {
		t.Errorf("tiny budget: len=%d", tiny.Len())
	}
}

// TestStoreScanSeedsAccessOrder pins that warm-boot eviction order
// follows file modification times: after a scan with a budget, the
// oldest files are the ones dropped.
func TestStoreScanSeedsAccessOrder(t *testing.T) {
	dir := t.TempDir()
	st1, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("q"), 500)
	now := time.Now()
	for i := 1; i <= 4; i++ {
		if err := st1.Put(key(byte(i)), nil, payload); err != nil {
			t.Fatal(err)
		}
		// Spread mtimes so the scan sees a stable order even on
		// coarse-grained filesystems.
		older := now.Add(time.Duration(i-4) * time.Hour)
		if err := os.Chtimes(st1.path(key(byte(i))), older, older); err != nil {
			t.Fatal(err)
		}
	}
	perEntry := int64(storeHeaderSize + len(payload))
	st2, err := OpenStore(dir, 2*perEntry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Scan(); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 2 {
		t.Fatalf("len = %d, want 2", st2.Len())
	}
	for i := 1; i <= 2; i++ {
		if _, _, ok := st2.Get(key(byte(i))); ok {
			t.Errorf("oldest entry %d survived the scan budget", i)
		}
	}
	for i := 3; i <= 4; i++ {
		if _, _, ok := st2.Get(key(byte(i))); !ok {
			t.Errorf("newest entry %d evicted by the scan budget", i)
		}
	}
}

// FuzzDiskStore is the integrity fuzzer the serving tier's safety
// rests on: arbitrary truncation, bit flips and header tampering of an
// on-disk entry must always read back as a miss (with the bad file
// deleted and the key healable by a fresh Put) and never as served
// corrupt bytes. It also pins the encoding as a fixed point:
// re-encoding a decoded entry reproduces the file byte for byte.
func FuzzDiskStore(f *testing.F) {
	f.Add([]byte(`{"experiment":"fig4"}`), []byte(`{"report":{"rows":[1,2,3]}}`), uint32(10), uint8(0))
	f.Add([]byte(""), []byte("d"), uint32(0), uint8(1))
	f.Add([]byte("r"), []byte(""), uint32(79), uint8(2))
	f.Add([]byte("request"), []byte("data"), uint32(1<<20), uint8(3))
	f.Fuzz(func(t *testing.T, request, data []byte, pos uint32, mode uint8) {
		dir := t.TempDir()
		st, err := OpenStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		k := Key(sha256.Sum256(append(append([]byte(nil), request...), data...)))
		if err := st.Put(k, request, data); err != nil {
			t.Fatal(err)
		}
		orig, err := os.ReadFile(st.path(k))
		if err != nil {
			t.Fatal(err)
		}

		// Fixed point: encode(decode(file)) == file.
		decReq, decData, err := decodeEntry(k, orig)
		if err != nil {
			t.Fatalf("clean entry does not decode: %v", err)
		}
		if !bytes.Equal(encodeEntry(k, decReq, decData), orig) {
			t.Fatal("re-encode is not a fixed point")
		}

		// Tamper.
		mut := append([]byte(nil), orig...)
		switch mode % 4 {
		case 0: // truncate
			mut = mut[:int(pos)%len(mut)]
		case 1: // bit flip anywhere
			mut[int(pos)%len(mut)] ^= 1 << (pos % 8)
		case 2: // header byte tamper
			mut[int(pos)%storeHeaderSize] ^= 0xFF
		case 3: // append garbage
			mut = append(mut, byte(pos), byte(pos>>8))
		}
		changed := !bytes.Equal(mut, orig)
		if err := os.WriteFile(st.path(k), mut, 0o644); err != nil {
			t.Fatal(err)
		}

		gotReq, gotData, ok := st.Get(k)
		if changed && ok {
			t.Fatalf("tampered entry served (mode %d pos %d): req %q data %q", mode%4, pos, gotReq, gotData)
		}
		if !changed && (!ok || !bytes.Equal(gotReq, request) || !bytes.Equal(gotData, data)) {
			t.Fatalf("untampered entry not served intact")
		}
		if changed {
			if _, err := os.Stat(st.path(k)); !os.IsNotExist(err) {
				t.Error("tampered entry file not deleted")
			}
		}

		// Heal: a fresh Put must restore the key exactly.
		if err := st.Put(k, request, data); err != nil {
			t.Fatal(err)
		}
		gotReq, gotData, ok = st.Get(k)
		if !ok || !bytes.Equal(gotReq, request) || !bytes.Equal(gotData, data) {
			t.Fatal("healed entry not served intact")
		}
		healed, err := os.ReadFile(st.path(k))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(healed, orig) {
			t.Fatal("healed file differs from the original encoding")
		}
	})
}
