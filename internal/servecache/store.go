package servecache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the disk tier of the result cache: one file per cache key
// under a flat directory, written atomically (temp file + rename) and
// verified on every read. The file carries a fixed header — magic,
// schema version, the entry's own key, a SHA-256 over the payload, and
// the section lengths — so truncation, bit flips and header tampering
// are all detected; a file that fails any check is deleted and treated
// as a miss, never served. The store never re-runs anything itself:
// it only remembers what the memory tier computed (write-through) and
// hands it back across daemon restarts.
//
// Bounded disk comes from a byte budget over the summed entry sizes,
// evicted least-recently-accessed first. The access order is seeded by
// file modification time during Scan (warm boot) and refined by Get.
// All methods are safe for concurrent use.
type Store struct {
	dir string
	max int64 // byte budget; <1 = unbounded

	mu    sync.Mutex
	elems map[Key]*list.Element // values are *diskEntry
	lru   *list.List            // front = most recently accessed
	bytes int64
	stats StoreStats
}

type diskEntry struct {
	key  Key
	size int64
}

// StoreStats are the disk tier's cumulative counters.
type StoreStats struct {
	// Hits and Misses count Get outcomes; Corrupt counts the subset of
	// misses caused by a file that failed verification (and was
	// deleted).
	Hits, Misses, Corrupt int64
	// Writes counts successful Puts, WriteErrors failed ones.
	Writes, WriteErrors int64
	// Evictions counts entries dropped by the byte budget.
	Evictions int64
	// Entries and Bytes describe the current indexed corpus.
	Entries int
	Bytes   int64
}

// On-disk entry layout (all integers little-endian):
//
//	offset  0: magic "MCS1" (4 bytes)
//	offset  4: schema version uint32
//	offset  8: cache key (32 bytes; must match the file name)
//	offset 40: SHA-256 over request||data (32 bytes)
//	offset 72: request length uint32
//	offset 76: data length uint32
//	offset 80: request bytes, then data bytes
//
// The encoding is a fixed point: decode(encode(k, req, data)) returns
// exactly (req, data), and re-encoding them reproduces the file byte
// for byte (FuzzDiskStore pins this).
const (
	storeVersion    = 1
	storeHeaderSize = 80
)

var storeMagic = [4]byte{'M', 'C', 'S', '1'}

// encodeEntry renders the on-disk form of one entry.
func encodeEntry(k Key, request, data []byte) []byte {
	b := make([]byte, storeHeaderSize+len(request)+len(data))
	copy(b[0:4], storeMagic[:])
	binary.LittleEndian.PutUint32(b[4:8], storeVersion)
	copy(b[8:40], k[:])
	h := sha256.New()
	h.Write(request)
	h.Write(data)
	h.Sum(b[40:40])
	binary.LittleEndian.PutUint32(b[72:76], uint32(len(request)))
	binary.LittleEndian.PutUint32(b[76:80], uint32(len(data)))
	copy(b[storeHeaderSize:], request)
	copy(b[storeHeaderSize+len(request):], data)
	return b
}

// decodeEntry verifies and splits an on-disk entry. Any inconsistency
// — short file, wrong magic or version, key not matching k, section
// lengths not matching the file size, or a payload hash mismatch — is
// an error; the caller treats it as a miss.
func decodeEntry(k Key, b []byte) (request, data []byte, err error) {
	if len(b) < storeHeaderSize {
		return nil, nil, fmt.Errorf("entry truncated: %d bytes, need at least %d", len(b), storeHeaderSize)
	}
	if [4]byte(b[0:4]) != storeMagic {
		return nil, nil, fmt.Errorf("bad magic %q", b[0:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != storeVersion {
		return nil, nil, fmt.Errorf("schema version %d, want %d", v, storeVersion)
	}
	if Key(b[8:40]) != k {
		return nil, nil, fmt.Errorf("entry key %s does not match file name", Key(b[8:40]))
	}
	reqLen := uint64(binary.LittleEndian.Uint32(b[72:76]))
	dataLen := uint64(binary.LittleEndian.Uint32(b[76:80]))
	if storeHeaderSize+reqLen+dataLen != uint64(len(b)) {
		return nil, nil, fmt.Errorf("section lengths %d+%d do not match file size %d", reqLen, dataLen, len(b))
	}
	request = b[storeHeaderSize : storeHeaderSize+reqLen]
	data = b[storeHeaderSize+reqLen:]
	h := sha256.New()
	h.Write(request)
	h.Write(data)
	if sum := h.Sum(nil); [32]byte(sum) != [32]byte(b[40:72]) {
		return nil, nil, fmt.Errorf("payload hash mismatch")
	}
	return request, data, nil
}

// OpenStore opens (creating if needed) a disk store rooted at dir with
// the given byte budget (maxBytes < 1 selects unbounded). The directory
// is usable immediately — Get reads files directly — but eviction
// accounting only covers entries Scan has indexed or Put/Get have
// touched; call Scan to warm-boot the index over a prior corpus.
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("servecache: opening store: %w", err)
	}
	return &Store{
		dir:   dir,
		max:   maxBytes,
		elems: make(map[Key]*list.Element),
		lru:   list.New(),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k Key) string { return filepath.Join(s.dir, k.String()) }

// Scan indexes the directory's existing entries — the warm-boot pass a
// restarted daemon runs so its prior corpus is accounted (and served)
// without re-running anything. Files are indexed oldest-modified first
// so the pre-restart access order approximately survives; leftover
// temp files from an interrupted write are removed. Returns the number
// of entries indexed.
func (s *Store) Scan() (int, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("servecache: scanning store: %w", err)
	}
	type found struct {
		key  Key
		size int64
		mod  int64
	}
	var fs []found
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		raw, err := hex.DecodeString(name)
		if err != nil || len(raw) != 32 || de.IsDir() {
			continue // not an entry file
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		fs = append(fs, found{key: Key(raw), size: info.Size(), mod: info.ModTime().UnixNano()})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].mod < fs[j].mod })

	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range fs {
		if _, ok := s.elems[f.key]; ok {
			continue // already touched by a pre-scan Get/Put
		}
		s.elems[f.key] = s.lru.PushFront(&diskEntry{key: f.key, size: f.size})
		s.bytes += f.size
		n++
	}
	s.enforceBudget()
	return n, nil
}

// Get returns the verified entry for k, or ok=false. A file that fails
// verification is deleted (the next Put heals the key) and reported as
// a miss — a corrupt entry is never served.
func (s *Store) Get(k Key) (request, data []byte, ok bool) {
	b, err := os.ReadFile(s.path(k))
	if err != nil {
		s.mu.Lock()
		s.dropLocked(k)
		s.stats.Misses++
		s.mu.Unlock()
		return nil, nil, false
	}
	request, data, err = decodeEntry(k, b)
	if err != nil {
		os.Remove(s.path(k))
		s.mu.Lock()
		s.dropLocked(k)
		s.stats.Misses++
		s.stats.Corrupt++
		s.mu.Unlock()
		return nil, nil, false
	}
	s.mu.Lock()
	s.touchLocked(k, int64(len(b)))
	s.stats.Hits++
	s.mu.Unlock()
	return request, data, true
}

// Put writes (or replaces) the entry for k atomically: the bytes land
// in a temp file first and are renamed into place, so a reader — or a
// crash — never observes a half-written entry.
func (s *Store) Put(k Key, request, data []byte) error {
	b := encodeEntry(k, request, data)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err == nil {
		_, err = tmp.Write(b)
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), s.path(k))
		}
		if err != nil {
			os.Remove(tmp.Name())
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.stats.WriteErrors++
		return fmt.Errorf("servecache: writing entry %s: %w", k, err)
	}
	s.stats.Writes++
	s.touchLocked(k, int64(len(b)))
	s.enforceBudget()
	return nil
}

// touchLocked marks k most-recently-accessed at the given size,
// inserting it if absent. Callers hold s.mu.
func (s *Store) touchLocked(k Key, size int64) {
	if el, ok := s.elems[k]; ok {
		de := el.Value.(*diskEntry)
		s.bytes += size - de.size
		de.size = size
		s.lru.MoveToFront(el)
		return
	}
	s.elems[k] = s.lru.PushFront(&diskEntry{key: k, size: size})
	s.bytes += size
}

// dropLocked removes k from the index (not the filesystem). Callers
// hold s.mu.
func (s *Store) dropLocked(k Key) {
	if el, ok := s.elems[k]; ok {
		s.bytes -= el.Value.(*diskEntry).size
		s.lru.Remove(el)
		delete(s.elems, k)
	}
}

// enforceBudget evicts least-recently-accessed entries until the
// summed sizes fit the byte budget, always keeping at least one entry
// (a budget too small for a single result must not make the tier
// useless). Callers hold s.mu.
func (s *Store) enforceBudget() {
	if s.max < 1 {
		return
	}
	for s.bytes > s.max && s.lru.Len() > 1 {
		oldest := s.lru.Back()
		de := oldest.Value.(*diskEntry)
		os.Remove(s.path(de.key))
		s.lru.Remove(oldest)
		delete(s.elems, de.key)
		s.bytes -= de.size
		s.stats.Evictions++
	}
}

// Len returns the indexed entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Bytes returns the indexed byte total.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// StatsSnapshot returns the cumulative counters.
func (s *Store) StatsSnapshot() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	return st
}
