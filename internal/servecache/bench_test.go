package servecache

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
)

// BenchmarkServeCache measures the serving tier's hot paths. The
// mem-hit series is the tentpole comparison: parallel Do over a warm
// cache at shard counts 1/4/16 — shards-1 is the pre-sharding
// single-mutex architecture, and its measured line is pinned as the
// baseline block in BENCH_serve.json (scripts/bench.sh). The disk
// series prices one verified Store read (open, header check, SHA-256)
// and one atomic write-through.
func BenchmarkServeCache(b *testing.B) {
	const keys = 64
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	benchKeys := make([]Key, keys)
	for i := range benchKeys {
		binary.LittleEndian.PutUint64(benchKeys[i][:], uint64(i)*0x9e3779b97f4a7c15)
	}

	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("mem-hit/shards-%d", shards), func(b *testing.B) {
			c := NewWithOptions(Options{Shards: shards})
			for _, k := range benchKeys {
				c.Put(k, nil, payload)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := benchKeys[i%keys]
					i++
					if _, o, err := c.Do(context.Background(), k, nil, nil); err != nil || o != Hit {
						b.Fatalf("Do = %v, %v", o, err)
					}
				}
			})
		})
	}

	b.Run("disk-hit", func(b *testing.B) {
		st, err := OpenStore(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range benchKeys {
			if err := st.Put(k, nil, payload); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, ok := st.Get(benchKeys[i%keys]); !ok {
				b.Fatal("disk miss")
			}
		}
	})

	b.Run("disk-write-through", func(b *testing.B) {
		st, err := OpenStore(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Put(benchKeys[i%keys], nil, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
