package servecache

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

// one returns a single-shard cache so eviction tests see one global
// LRU instead of per-shard budgets.
func one(opts Options) *Cache {
	opts.Shards = 1
	return NewWithOptions(opts)
}

func TestDoMissThenHit(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	compute := func(context.Context) ([]byte, error) {
		calls.Add(1)
		return []byte("result"), nil
	}
	e, o, err := c.Do(context.Background(), key(1), []byte("req"), compute)
	if err != nil || o != Miss || string(e.Data) != "result" {
		t.Fatalf("first Do = %+v, %v, %v", e, o, err)
	}
	e, o, err = c.Do(context.Background(), key(1), nil, compute)
	if err != nil || o != Hit || string(e.Data) != "result" {
		t.Fatalf("second Do = %+v, %v, %v", e, o, err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	le, ok := c.Lookup(key(1))
	if !ok || string(le.Request) != "req" || le.Hits != 1 {
		t.Errorf("Lookup = %+v, %v", le, ok)
	}
	s := c.StatsSnapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Shared != 0 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Bytes < int64(len("result")) {
		t.Errorf("stats bytes = %d, want at least the payload", s.Bytes)
	}
}

// TestEntryGzipRoundTrip pins the precomputed wire variant: the gzip
// bytes stored with an entry decompress to exactly its identity bytes.
func TestEntryGzipRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte(`{"row":[1,2,3]}`+"\n"), 64)
	c := New(8)
	_, _, err := c.Do(context.Background(), key(1), nil, func(context.Context) ([]byte, error) {
		return data, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c.Lookup(key(1))
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Gzip == nil {
		t.Fatal("no precomputed gzip variant")
	}
	if len(e.Gzip) >= len(e.Data) {
		t.Errorf("gzip variant (%d bytes) not smaller than identity (%d bytes)", len(e.Gzip), len(e.Data))
	}
	zr, err := gzip.NewReader(bytes.NewReader(e.Gzip))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, data) {
		t.Error("gzip variant does not decompress to the identity bytes")
	}
}

func TestDoError(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	_, o, err := c.Do(context.Background(), key(1), nil, func(context.Context) ([]byte, error) {
		return nil, boom
	})
	if o != Miss || !errors.Is(err, boom) {
		t.Fatalf("Do = %v, %v", o, err)
	}
	if c.Len() != 0 {
		t.Error("failed computation was cached")
	}
	// The key is recomputable after a failure.
	e, o, err := c.Do(context.Background(), key(1), nil, func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || o != Miss || string(e.Data) != "ok" {
		t.Fatalf("retry Do = %+v, %v, %v", e, o, err)
	}
}

// TestSingleflight pins the collapse: N concurrent callers of one key
// run compute exactly once and all see the same bytes.
func TestSingleflight(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(context.Context) ([]byte, error) {
		calls.Add(1)
		close(started)
		<-release
		return []byte("shared-result"), nil
	}

	const n = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	entries := make([]*Entry, n)
	errs := make([]error, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		entries[0], outcomes[0], errs[0] = c.Do(context.Background(), key(7), nil, compute)
	}()
	<-started // the flight exists before the followers arrive
	for i := 1; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			entries[i], outcomes[i], errs[i] = c.Do(context.Background(), key(7), nil, func(context.Context) ([]byte, error) {
				t.Error("follower's compute invoked")
				return nil, nil
			})
		}()
	}
	time.Sleep(10 * time.Millisecond) // let followers reach wait
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	var miss, shared int
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(entries[i].Data, []byte("shared-result")) {
			t.Errorf("caller %d data = %q", i, entries[i].Data)
		}
		switch outcomes[i] {
		case Miss:
			miss++
		case Shared:
			shared++
		default:
			t.Errorf("caller %d outcome = %v", i, outcomes[i])
		}
	}
	if miss != 1 || shared != n-1 {
		t.Errorf("outcomes: %d miss, %d shared; want 1, %d", miss, shared, n-1)
	}
}

// TestAbandonedFlightCancelled pins the refcount contract: when every
// waiter gives up, the compute context is cancelled and nothing is
// cached; a later caller starts a fresh computation.
func TestAbandonedFlightCancelled(t *testing.T) {
	c := New(8)
	cancelled := make(chan struct{})
	compute := func(ctx context.Context) ([]byte, error) {
		<-ctx.Done()
		close(cancelled)
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, o, err := c.Do(ctx, key(3), nil, compute)
	if o != Miss || !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, %v", o, err)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("compute context never cancelled after the last waiter left")
	}
	if c.Len() != 0 {
		t.Error("abandoned flight was cached")
	}
	e, o, err := c.Do(context.Background(), key(3), nil, func(context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || o != Miss || string(e.Data) != "fresh" {
		t.Fatalf("post-abandon Do = %+v, %v, %v", e, o, err)
	}
}

// TestSurvivingWaiterKeepsFlight pins that one waiter cancelling does
// not kill the run for the waiter that stays.
func TestSurvivingWaiterKeepsFlight(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(ctx context.Context) ([]byte, error) {
		close(started)
		select {
		case <-release:
			return []byte("kept"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	quitCtx, quit := context.WithCancel(context.Background())
	quitErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(quitCtx, key(9), nil, compute)
		quitErr <- err
	}()
	<-started

	stayData := make(chan []byte, 1)
	go func() {
		e, _, err := c.Do(context.Background(), key(9), nil, compute)
		if err != nil {
			t.Errorf("surviving waiter: %v", err)
			stayData <- nil
			return
		}
		stayData <- e.Data
	}()
	time.Sleep(10 * time.Millisecond) // let the second caller join the flight
	quit()
	if err := <-quitErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("quitting waiter err = %v", err)
	}
	close(release)
	if data := <-stayData; string(data) != "kept" {
		t.Errorf("surviving waiter data = %q", data)
	}
	if _, ok := c.Get(key(9)); !ok {
		t.Error("completed flight not cached")
	}
}

func TestLRUEviction(t *testing.T) {
	c := one(Options{MaxEntries: 2})
	c.Put(key(1), nil, []byte("a"))
	c.Put(key(2), nil, []byte("b"))
	if _, ok := c.Get(key(1)); !ok { // refresh 1; 2 becomes oldest
		t.Fatal("entry 1 missing")
	}
	c.Put(key(3), nil, []byte("c"))
	if _, ok := c.Get(key(2)); ok {
		t.Error("least-recently-used entry 2 not evicted")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Error("recently-used entry 1 evicted")
	}
	if _, ok := c.Get(key(3)); !ok {
		t.Error("new entry 3 missing")
	}
	if s := c.StatsSnapshot(); s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v", s)
	}
}

// TestByteBudgetEviction pins the byte bound: entries are evicted
// oldest-first once the summed wire sizes exceed the budget, but the
// newest entry always survives even when it alone is over budget.
func TestByteBudgetEviction(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 4096)
	perEntry := newEntry(key(0), nil, payload).size()
	c := one(Options{MaxBytes: 3 * perEntry})
	for i := 1; i <= 5; i++ {
		c.Put(key(byte(i)), nil, payload)
	}
	if got := c.Len(); got != 3 {
		t.Errorf("entries after budget eviction = %d, want 3", got)
	}
	for i := 1; i <= 2; i++ {
		if _, ok := c.Get(key(byte(i))); ok {
			t.Errorf("oldest entry %d survived the byte budget", i)
		}
	}
	for i := 3; i <= 5; i++ {
		if _, ok := c.Get(key(byte(i))); !ok {
			t.Errorf("recent entry %d evicted", i)
		}
	}
	if s := c.StatsSnapshot(); s.Evictions != 2 || s.Bytes != 3*perEntry {
		t.Errorf("stats = %+v, want 2 evictions and %d bytes", s, 3*perEntry)
	}

	// A budget smaller than one entry still holds the newest entry.
	tiny := one(Options{MaxBytes: 1})
	tiny.Put(key(1), nil, payload)
	tiny.Put(key(2), nil, payload)
	if _, ok := tiny.Get(key(2)); !ok || tiny.Len() != 1 {
		t.Errorf("tiny budget: len=%d", tiny.Len())
	}
}

// TestShardedDistribution pins that shards actually partition the key
// space and that per-shard stats sum to the merged snapshot.
func TestShardedDistribution(t *testing.T) {
	c := NewWithOptions(Options{Shards: 4})
	for i := 0; i < 64; i++ {
		var k Key
		k[0], k[3] = byte(i), byte(i*7)
		if _, _, err := c.Do(context.Background(), k, nil, func(context.Context) ([]byte, error) {
			return []byte{byte(i)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	per := c.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats len = %d", len(per))
	}
	var sum Stats
	populated := 0
	for _, st := range per {
		sum.add(st)
		if st.Entries > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Errorf("only %d of 4 shards populated by 64 keys", populated)
	}
	merged := c.StatsSnapshot()
	if sum != merged {
		t.Errorf("shard stats sum %+v != merged %+v", sum, merged)
	}
	if merged.Misses != 64 || merged.Entries != 64 {
		t.Errorf("merged = %+v", merged)
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(4)
	c.Put(key(1), []byte("r1"), []byte("old"))
	c.Put(key(1), []byte("r1"), []byte("new"))
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	data, _ := c.Get(key(1))
	if string(data) != "new" {
		t.Errorf("data = %q", data)
	}
}

func TestKeyAndOutcomeStrings(t *testing.T) {
	k := key(0xAB)
	if got := k.String(); len(got) != 64 || got[:2] != "ab" {
		t.Errorf("key hex = %q", got)
	}
	for o, want := range map[Outcome]string{Hit: "hit", Miss: "miss", Shared: "shared", Disk: "disk", Outcome(9): "unknown"} {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestUnboundedCache(t *testing.T) {
	c := New(0)
	for i := 0; i < 100; i++ {
		c.Put(key(byte(i)), nil, []byte(fmt.Sprintf("v%d", i)))
	}
	if c.Len() != 100 {
		t.Errorf("len = %d, want 100", c.Len())
	}
	if s := c.StatsSnapshot(); s.Evictions != 0 {
		t.Errorf("evictions = %d", s.Evictions)
	}
}

// diskCache builds a cache backed by a store in a test directory.
func diskCache(t *testing.T, dir string, opts Options) *Cache {
	t.Helper()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Scan(); err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	return NewWithOptions(opts)
}

// TestDiskWriteThroughAndRestart pins the persistence contract: a
// computed result is written through to disk, and a fresh cache over
// the same directory (a restarted daemon) serves it as a Disk outcome
// with byte-identical data and no recompute; the next request is a
// memory Hit (lazy promotion).
func TestDiskWriteThroughAndRestart(t *testing.T) {
	dir := t.TempDir()
	c1 := diskCache(t, dir, Options{})
	e, o, err := c1.Do(context.Background(), key(1), []byte("req-1"), func(context.Context) ([]byte, error) {
		return []byte("computed-once"), nil
	})
	if err != nil || o != Miss {
		t.Fatalf("Do = %v, %v", o, err)
	}
	if c1.Store().Len() != 1 {
		t.Fatalf("write-through missing: disk has %d entries", c1.Store().Len())
	}

	// "Restart": new cache, same directory.
	c2 := diskCache(t, dir, Options{})
	e2, o2, err := c2.Do(context.Background(), key(1), nil, func(context.Context) ([]byte, error) {
		t.Error("restarted cache re-ran a persisted result")
		return nil, nil
	})
	if err != nil || o2 != Disk {
		t.Fatalf("post-restart Do = %v, %v", o2, err)
	}
	if !bytes.Equal(e2.Data, e.Data) || string(e2.Request) != "req-1" {
		t.Errorf("post-restart entry = %q req %q", e2.Data, e2.Request)
	}
	// Promoted: now a memory hit.
	_, o3, err := c2.Do(context.Background(), key(1), nil, nil)
	if err != nil || o3 != Hit {
		t.Fatalf("post-promotion Do = %v, %v", o3, err)
	}
	s := c2.StatsSnapshot()
	if s.DiskHits != 1 || s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestDiskCorruptEntryIsMissAndHeals pins the integrity contract end
// to end: a corrupted on-disk entry is never served — the cache
// recomputes, and the recompute heals the file.
func TestDiskCorruptEntryIsMissAndHeals(t *testing.T) {
	dir := t.TempDir()
	c1 := diskCache(t, dir, Options{})
	if _, _, err := c1.Do(context.Background(), key(1), nil, func(context.Context) ([]byte, error) {
		return []byte("good-bytes"), nil
	}); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, c1.Store().path(key(1)), 100)

	c2 := diskCache(t, dir, Options{})
	var ran atomic.Int64
	e, o, err := c2.Do(context.Background(), key(1), nil, func(context.Context) ([]byte, error) {
		ran.Add(1)
		return []byte("good-bytes"), nil
	})
	if err != nil || o != Miss || ran.Load() != 1 {
		t.Fatalf("Do over corrupt entry = %v, %v, ran %d", o, err, ran.Load())
	}
	if string(e.Data) != "good-bytes" {
		t.Errorf("served %q", e.Data)
	}
	if st := c2.Store().StatsSnapshot(); st.Corrupt != 1 {
		t.Errorf("store stats = %+v, want 1 corrupt drop", st)
	}
	// Healed: a third cache serves it from disk again.
	c3 := diskCache(t, dir, Options{})
	_, o, err = c3.Do(context.Background(), key(1), nil, nil)
	if err != nil || o != Disk {
		t.Fatalf("post-heal Do = %v, %v", o, err)
	}
}

// TestProbe pins the 304 fast path's tier resolution.
func TestProbe(t *testing.T) {
	dir := t.TempDir()
	c := diskCache(t, dir, Options{})
	if _, _, ok := c.Probe(key(1)); ok {
		t.Fatal("probe found a nonexistent key")
	}
	c.Put(key(1), nil, []byte("v"))
	if e, o, ok := c.Probe(key(1)); !ok || o != Hit || string(e.Data) != "v" {
		t.Fatalf("memory probe = %v %v %v", e, o, ok)
	}
	// A fresh cache sees it only on disk.
	c2 := diskCache(t, dir, Options{})
	if e, o, ok := c2.Probe(key(1)); !ok || o != Disk || string(e.Data) != "v" {
		t.Fatalf("disk probe = %v %v %v", e, o, ok)
	}
	if _, o, ok := c2.Probe(key(1)); !ok || o != Hit {
		t.Fatalf("promoted probe outcome = %v %v", o, ok)
	}
}

// TestDiskConcurrentPromotion pins that concurrent Do callers racing
// on a disk-resident key all receive identical bytes and none of them
// recomputes.
func TestDiskConcurrentPromotion(t *testing.T) {
	dir := t.TempDir()
	c1 := diskCache(t, dir, Options{})
	if _, _, err := c1.Do(context.Background(), key(5), nil, func(context.Context) ([]byte, error) {
		return []byte("persisted"), nil
	}); err != nil {
		t.Fatal(err)
	}
	c2 := diskCache(t, dir, Options{})
	const n = 16
	var wg sync.WaitGroup
	datas := make([][]byte, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, _, err := c2.Do(context.Background(), key(5), nil, func(context.Context) ([]byte, error) {
				t.Error("recompute despite disk entry")
				return nil, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			datas[i] = e.Data
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(datas[i], datas[0]) {
			t.Fatalf("caller %d saw different bytes", i)
		}
	}
}
