package servecache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestDoMissThenHit(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	compute := func(context.Context) ([]byte, error) {
		calls.Add(1)
		return []byte("result"), nil
	}
	data, o, err := c.Do(context.Background(), key(1), []byte("req"), compute)
	if err != nil || o != Miss || string(data) != "result" {
		t.Fatalf("first Do = %q, %v, %v", data, o, err)
	}
	data, o, err = c.Do(context.Background(), key(1), nil, compute)
	if err != nil || o != Hit || string(data) != "result" {
		t.Fatalf("second Do = %q, %v, %v", data, o, err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	e, ok := c.Lookup(key(1))
	if !ok || string(e.Request) != "req" || e.Hits != 1 {
		t.Errorf("Lookup = %+v, %v", e, ok)
	}
	s := c.StatsSnapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Shared != 0 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDoError(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	_, o, err := c.Do(context.Background(), key(1), nil, func(context.Context) ([]byte, error) {
		return nil, boom
	})
	if o != Miss || !errors.Is(err, boom) {
		t.Fatalf("Do = %v, %v", o, err)
	}
	if c.Len() != 0 {
		t.Error("failed computation was cached")
	}
	// The key is recomputable after a failure.
	data, o, err := c.Do(context.Background(), key(1), nil, func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || o != Miss || string(data) != "ok" {
		t.Fatalf("retry Do = %q, %v, %v", data, o, err)
	}
}

// TestSingleflight pins the collapse: N concurrent callers of one key
// run compute exactly once and all see the same bytes.
func TestSingleflight(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(context.Context) ([]byte, error) {
		calls.Add(1)
		close(started)
		<-release
		return []byte("shared-result"), nil
	}

	const n = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	datas := make([][]byte, n)
	errs := make([]error, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		datas[0], outcomes[0], errs[0] = c.Do(context.Background(), key(7), nil, compute)
	}()
	<-started // the flight exists before the followers arrive
	for i := 1; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			datas[i], outcomes[i], errs[i] = c.Do(context.Background(), key(7), nil, func(context.Context) ([]byte, error) {
				t.Error("follower's compute invoked")
				return nil, nil
			})
		}()
	}
	time.Sleep(10 * time.Millisecond) // let followers reach wait
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	var miss, shared int
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(datas[i], []byte("shared-result")) {
			t.Errorf("caller %d data = %q", i, datas[i])
		}
		switch outcomes[i] {
		case Miss:
			miss++
		case Shared:
			shared++
		default:
			t.Errorf("caller %d outcome = %v", i, outcomes[i])
		}
	}
	if miss != 1 || shared != n-1 {
		t.Errorf("outcomes: %d miss, %d shared; want 1, %d", miss, shared, n-1)
	}
}

// TestAbandonedFlightCancelled pins the refcount contract: when every
// waiter gives up, the compute context is cancelled and nothing is
// cached; a later caller starts a fresh computation.
func TestAbandonedFlightCancelled(t *testing.T) {
	c := New(8)
	cancelled := make(chan struct{})
	compute := func(ctx context.Context) ([]byte, error) {
		<-ctx.Done()
		close(cancelled)
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, o, err := c.Do(ctx, key(3), nil, compute)
	if o != Miss || !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, %v", o, err)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("compute context never cancelled after the last waiter left")
	}
	if c.Len() != 0 {
		t.Error("abandoned flight was cached")
	}
	data, o, err := c.Do(context.Background(), key(3), nil, func(context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || o != Miss || string(data) != "fresh" {
		t.Fatalf("post-abandon Do = %q, %v, %v", data, o, err)
	}
}

// TestSurvivingWaiterKeepsFlight pins that one waiter cancelling does
// not kill the run for the waiter that stays.
func TestSurvivingWaiterKeepsFlight(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(ctx context.Context) ([]byte, error) {
		close(started)
		select {
		case <-release:
			return []byte("kept"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	quitCtx, quit := context.WithCancel(context.Background())
	quitErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(quitCtx, key(9), nil, compute)
		quitErr <- err
	}()
	<-started

	stayData := make(chan []byte, 1)
	go func() {
		data, _, err := c.Do(context.Background(), key(9), nil, compute)
		if err != nil {
			t.Errorf("surviving waiter: %v", err)
		}
		stayData <- data
	}()
	time.Sleep(10 * time.Millisecond) // let the second caller join the flight
	quit()
	if err := <-quitErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("quitting waiter err = %v", err)
	}
	close(release)
	if data := <-stayData; string(data) != "kept" {
		t.Errorf("surviving waiter data = %q", data)
	}
	if _, ok := c.Get(key(9)); !ok {
		t.Error("completed flight not cached")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(key(1), nil, []byte("a"))
	c.Put(key(2), nil, []byte("b"))
	if _, ok := c.Get(key(1)); !ok { // refresh 1; 2 becomes oldest
		t.Fatal("entry 1 missing")
	}
	c.Put(key(3), nil, []byte("c"))
	if _, ok := c.Get(key(2)); ok {
		t.Error("least-recently-used entry 2 not evicted")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Error("recently-used entry 1 evicted")
	}
	if _, ok := c.Get(key(3)); !ok {
		t.Error("new entry 3 missing")
	}
	if s := c.StatsSnapshot(); s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(4)
	c.Put(key(1), []byte("r1"), []byte("old"))
	c.Put(key(1), []byte("r1"), []byte("new"))
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	data, _ := c.Get(key(1))
	if string(data) != "new" {
		t.Errorf("data = %q", data)
	}
}

func TestKeyAndOutcomeStrings(t *testing.T) {
	k := key(0xAB)
	if got := k.String(); len(got) != 64 || got[:2] != "ab" {
		t.Errorf("key hex = %q", got)
	}
	for o, want := range map[Outcome]string{Hit: "hit", Miss: "miss", Shared: "shared", Outcome(9): "unknown"} {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestUnboundedCache(t *testing.T) {
	c := New(0)
	for i := 0; i < 100; i++ {
		c.Put(key(byte(i)), nil, []byte(fmt.Sprintf("v%d", i)))
	}
	if c.Len() != 100 {
		t.Errorf("len = %d, want 100", c.Len())
	}
	if s := c.StatsSnapshot(); s.Evictions != 0 {
		t.Errorf("evictions = %d", s.Evictions)
	}
}
