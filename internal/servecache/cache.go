// Package servecache is the content-addressed result cache behind the
// experiment-serving daemon (cmd/memcond). Entries are keyed by the
// SHA-256 cache key of a canonical experiments.Request and hold the
// byte-exact canonical JSON report that request produced — the repo's
// determinism contract (byte-identical reports for identical inputs)
// is what makes a content-addressed cache sound here: a hit IS the
// answer, not an approximation of it.
//
// The cache collapses concurrent identical requests into one
// computation (singleflight): the first caller starts the run, later
// callers with the same key wait on it, and every waiter receives the
// same bytes. Flights are reference-counted against their waiters —
// when the last interested caller cancels, the flight's context is
// cancelled too, so an abandoned run stops burning worker-pool slots
// mid-sweep instead of completing for nobody.
//
// Bounded memory comes from LRU eviction over a fixed entry budget.
// Everything is safe for concurrent use.
package servecache

import (
	"container/list"
	"context"
	"encoding/hex"
	"sync"
)

// Key is a 32-byte content address (experiments.Request.CacheKey).
type Key [32]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Outcome classifies how Do satisfied a caller.
type Outcome uint8

const (
	// Hit: the bytes came straight from the cache.
	Hit Outcome = iota
	// Miss: this caller started the computation.
	Miss
	// Shared: the caller joined another caller's in-flight computation.
	Shared
)

var outcomeNames = [...]string{"hit", "miss", "shared"}

// String returns the outcome's stable wire name (used in the
// X-Memcond-Cache response header and the memload summary).
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// Entry is one cached result.
type Entry struct {
	// Key is the entry's content address.
	Key Key
	// Request is the canonical JSON of the request that produced the
	// data (kept so revalidation can re-run an entry without the
	// original client).
	Request []byte
	// Data is the canonical JSON report document.
	Data []byte
	// Hits counts cache hits served from this entry.
	Hits int64
}

// Stats are the cache's cumulative counters.
type Stats struct {
	// Hits, Misses, Shared count Do outcomes.
	Hits, Misses, Shared int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// Entries is the current entry count.
	Entries int
}

// flight is one in-progress computation. refs counts the callers still
// waiting on it; when refs drops to zero the flight's context is
// cancelled and the flight is detached from the cache so a late caller
// starts fresh instead of inheriting a doomed run.
type flight struct {
	done   chan struct{} // closed when data/err are set
	cancel context.CancelFunc
	refs   int
	data   []byte
	err    error
}

// Cache is a bounded, content-addressed result store with singleflight
// computation. The zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	max      int
	entries  map[Key]*list.Element // values are *Entry wrapped in lru
	lru      *list.List            // front = most recently used
	inflight map[Key]*flight
	stats    Stats
}

// New builds a cache bounded to max entries; max < 1 selects an
// effectively unbounded cache.
func New(max int) *Cache {
	if max < 1 {
		max = int(^uint(0) >> 1)
	}
	return &Cache{
		max:      max,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		inflight: make(map[Key]*flight),
	}
}

// Get returns the cached entry's data for k, if present, marking the
// entry recently used. The returned slice must be treated as read-only.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*Entry).Data, true
}

// Lookup returns the full cached entry for k without counting a hit —
// the revalidation path uses it to fetch the saved bytes and request.
func (c *Cache) Lookup(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*Entry)
	return &Entry{Key: e.Key, Request: e.Request, Data: e.Data, Hits: e.Hits}, true
}

// Put stores (or replaces) the entry for k. Revalidation uses it to
// refresh a drifted entry; tests use it to inject drift.
func (c *Cache) Put(k Key, request, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(k, request, data)
}

// store inserts or replaces an entry and enforces the LRU bound.
// Callers hold c.mu.
func (c *Cache) store(k Key, request, data []byte) {
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*Entry)
		e.Request, e.Data = request, data
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&Entry{Key: k, Request: request, Data: data})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*Entry).Key)
		c.stats.Evictions++
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// StatsSnapshot returns the cumulative counters.
func (c *Cache) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// Do returns the bytes for k, computing them at most once across
// concurrent callers. On a miss it runs compute in its own goroutine
// under a context that stays alive while ANY caller still waits on the
// flight; the caller's own ctx only governs how long this caller waits.
// A successful computation is stored before anyone is woken, so a
// subsequent Do is a Hit. A failed computation is not cached.
//
// request is the canonical request JSON stored alongside the data (used
// for revalidation); only the caller that starts the flight needs to
// supply it.
func (c *Cache) Do(ctx context.Context, k Key, request []byte, compute func(context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*Entry)
		e.Hits++
		c.stats.Hits++
		data := e.Data
		c.mu.Unlock()
		return data, Hit, nil
	}
	if f, ok := c.inflight[k]; ok {
		f.refs++
		c.stats.Shared++
		c.mu.Unlock()
		return c.wait(ctx, k, f, Shared)
	}
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
	c.inflight[k] = f
	c.stats.Misses++
	c.mu.Unlock()

	go func() {
		data, err := compute(fctx)
		c.mu.Lock()
		f.data, f.err = data, err
		if c.inflight[k] == f {
			delete(c.inflight, k)
			if err == nil {
				c.store(k, request, data)
			}
		}
		c.mu.Unlock()
		cancel()
		close(f.done)
	}()
	return c.wait(ctx, k, f, Miss)
}

// wait blocks until the flight completes or the caller's context is
// done. A caller that gives up drops its reference; the last reference
// out cancels the flight and detaches it so new callers start fresh.
func (c *Cache) wait(ctx context.Context, k Key, f *flight, o Outcome) ([]byte, Outcome, error) {
	// Prefer a completed flight over a racing cancellation: if the
	// result is already there, return it.
	select {
	case <-f.done:
		return f.data, o, f.err
	default:
	}
	select {
	case <-f.done:
		return f.data, o, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.refs--
		abandon := f.refs == 0
		if abandon && c.inflight[k] == f {
			delete(c.inflight, k)
		}
		c.mu.Unlock()
		if abandon {
			f.cancel()
		}
		return nil, o, ctx.Err()
	}
}
