// Package servecache is the content-addressed result cache behind the
// experiment-serving daemon (cmd/memcond). Entries are keyed by the
// SHA-256 cache key of a canonical experiments.Request and hold the
// byte-exact wire forms of the report that request produced — the
// canonical JSON plus a precomputed gzip variant — so a warm hit is
// served without encoding, compression, or allocation. The repo's
// determinism contract (byte-identical reports for identical inputs)
// is what makes a content-addressed cache sound here: a hit IS the
// answer, not an approximation of it.
//
// The cache is two tiers. The memory tier is split into key-prefix
// shards, each with its own mutex, LRU list and singleflight table, so
// high request concurrency does not serialize on one lock. The
// optional disk tier (Store) persists every computed result
// (write-through on miss) and survives daemon restarts: a memory miss
// consults the disk before running anything, and a disk hit is lazily
// promoted back into memory. Both tiers evict by byte budget.
//
// Concurrent identical requests collapse into one computation
// (singleflight): the first caller starts the run, later callers with
// the same key wait on it, and every waiter receives the same bytes.
// Flights are reference-counted against their waiters — when the last
// interested caller cancels, the flight's context is cancelled too, so
// an abandoned run stops burning worker-pool slots mid-sweep instead
// of completing for nobody.
package servecache

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"context"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Key is a 32-byte content address (experiments.Request.CacheKey).
type Key [32]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Outcome classifies how Do satisfied a caller.
type Outcome uint8

const (
	// Hit: the bytes came straight from the memory tier.
	Hit Outcome = iota
	// Miss: this caller started the computation.
	Miss
	// Shared: the caller joined another caller's in-flight computation.
	Shared
	// Disk: the bytes came from the disk tier (and were promoted to
	// memory) without running anything.
	Disk
)

var outcomeNames = [...]string{"hit", "miss", "shared", "disk"}

// String returns the outcome's stable wire name (used in the
// X-Memcond-Cache response header and the memload summary).
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// Entry is one cached result in wire form.
type Entry struct {
	// Key is the entry's content address.
	Key Key
	// Request is the canonical JSON of the request that produced the
	// data (kept so revalidation can re-run an entry without the
	// original client).
	Request []byte
	// Data is the canonical JSON report document — the identity wire
	// form.
	Data []byte
	// Gzip is the precomputed gzip form of Data, built once when the
	// entry is stored so Accept-Encoding negotiation costs nothing at
	// serve time. Nil when compression failed (serve Data instead).
	Gzip []byte
	// Hits counts cache hits served from this entry.
	Hits int64
}

// entryOverhead approximates the bookkeeping bytes an entry costs
// beyond its payload slices (struct, map slot, list element).
const entryOverhead = 160

func (e *Entry) size() int64 {
	return int64(len(e.Request)+len(e.Data)+len(e.Gzip)) + entryOverhead
}

// newEntry builds the wire forms for one result, compressing Data once.
func newEntry(k Key, request, data []byte) *Entry {
	e := &Entry{Key: k, Request: request, Data: data}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err == nil && zw.Close() == nil {
		e.Gzip = buf.Bytes()
	}
	return e
}

// Stats are cumulative cache counters (per shard, or merged across
// shards by StatsSnapshot).
type Stats struct {
	// Hits, Misses, Shared count Do outcomes against the memory tier;
	// DiskHits counts results served from the disk tier.
	Hits, Misses, Shared, DiskHits int64
	// Evictions counts memory-tier entries dropped by a budget.
	Evictions int64
	// Entries and Bytes describe the memory tier's current contents.
	Entries int
	Bytes   int64
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Shared += o.Shared
	s.DiskHits += o.DiskHits
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.Bytes += o.Bytes
}

// flight is one in-progress computation. refs counts the callers still
// waiting on it; when refs drops to zero the flight's context is
// cancelled and the flight is detached from the cache so a late caller
// starts fresh instead of inheriting a doomed run.
type flight struct {
	done   chan struct{} // closed when entry/err are set
	cancel context.CancelFunc
	refs   int
	entry  *Entry
	err    error
}

// shard is one key-prefix slice of the memory tier: its own lock, LRU
// and flight table, so shards never contend with each other.
type shard struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	entries    map[Key]*list.Element // values are *Entry wrapped in lru
	lru        *list.List            // front = most recently used
	inflight   map[Key]*flight
	stats      Stats
}

// Options configures a cache.
type Options struct {
	// Shards is the key-prefix shard count for the memory tier; values
	// below 1 select 16.
	Shards int
	// MaxEntries bounds the memory tier's total entry count across all
	// shards (enforced as an even per-shard split); values below 1
	// select unbounded.
	MaxEntries int
	// MaxBytes bounds the memory tier's total payload bytes across all
	// shards (enforced as an even per-shard split); values below 1
	// select unbounded.
	MaxBytes int64
	// Store is the optional disk tier: consulted between a memory miss
	// and a run, written through on every computed or stored result.
	Store *Store
}

// Cache is a bounded, content-addressed result store with singleflight
// computation. The zero value is not usable; construct with New or
// NewWithOptions.
type Cache struct {
	shards []*shard
	store  *Store
}

// New builds a memory-only cache bounded to max entries with the
// default shard count; max < 1 selects an effectively unbounded cache.
func New(max int) *Cache {
	return NewWithOptions(Options{MaxEntries: max})
}

// NewWithOptions builds a cache from the full option set.
func NewWithOptions(opts Options) *Cache {
	n := opts.Shards
	if n < 1 {
		n = 16
	}
	perEntries := 0
	if opts.MaxEntries > 0 {
		perEntries = (opts.MaxEntries + n - 1) / n
	}
	var perBytes int64
	if opts.MaxBytes > 0 {
		perBytes = (opts.MaxBytes + int64(n) - 1) / int64(n)
	}
	c := &Cache{shards: make([]*shard, n), store: opts.Store}
	for i := range c.shards {
		c.shards[i] = &shard{
			maxEntries: perEntries,
			maxBytes:   perBytes,
			entries:    make(map[Key]*list.Element),
			lru:        list.New(),
			inflight:   make(map[Key]*flight),
		}
	}
	return c
}

// shardFor routes a key to its shard by prefix. Keys are SHA-256
// content addresses, so the first word is uniformly distributed.
func (c *Cache) shardFor(k Key) *shard {
	return c.shards[binary.BigEndian.Uint32(k[:4])%uint32(len(c.shards))]
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Store returns the disk tier, or nil.
func (c *Cache) Store() *Store { return c.store }

// Get returns the cached entry's identity bytes for k from the memory
// tier, if present, marking the entry recently used. The returned
// slice must be treated as read-only.
func (c *Cache) Get(k Key) ([]byte, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[k]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*Entry).Data, true
}

// Lookup returns the full cached entry for k without counting a hit —
// the revalidation path uses it to fetch the saved bytes and request.
// A memory miss falls through to the disk tier (promoting on success),
// so a restarted daemon can revalidate its prior corpus.
func (c *Cache) Lookup(k Key) (*Entry, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.lru.MoveToFront(el)
		e := el.Value.(*Entry)
		cp := *e
		sh.mu.Unlock()
		return &cp, true
	}
	sh.mu.Unlock()
	if e, ok := c.fromDisk(k); ok {
		cp := *e
		return &cp, true
	}
	return nil, false
}

// Probe resolves k against both tiers without ever computing: a memory
// hit returns (entry, Hit), a disk hit promotes and returns
// (entry, Disk), anything else reports false. The serving 304 fast
// path uses it.
func (c *Cache) Probe(k Key) (*Entry, Outcome, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.lru.MoveToFront(el)
		e := el.Value.(*Entry)
		e.Hits++
		sh.stats.Hits++
		sh.mu.Unlock()
		return e, Hit, true
	}
	sh.mu.Unlock()
	if e, ok := c.fromDisk(k); ok {
		sh.mu.Lock()
		sh.stats.DiskHits++
		sh.mu.Unlock()
		return e, Disk, true
	}
	return nil, Disk, false
}

// fromDisk reads k from the disk tier and promotes it into memory.
// When a concurrent caller promoted (or a flight stored) the key
// first, that resident entry wins — both callers see the same bytes.
func (c *Cache) fromDisk(k Key) (*Entry, bool) {
	if c.store == nil {
		return nil, false
	}
	request, data, ok := c.store.Get(k)
	if !ok {
		return nil, false
	}
	e := newEntry(k, request, data)
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, resident := sh.entries[k]; resident {
		return el.Value.(*Entry), true
	}
	sh.storeLocked(e)
	return e, true
}

// Put stores (or replaces) the entry for k in memory and, when a disk
// tier is attached, writes it through. Revalidation uses it to refresh
// a drifted entry; tests use it to inject drift.
func (c *Cache) Put(k Key, request, data []byte) {
	e := newEntry(k, request, data)
	sh := c.shardFor(k)
	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		old := el.Value.(*Entry)
		sh.bytes -= old.size()
		el.Value = e
		sh.bytes += e.size()
		sh.lru.MoveToFront(el)
		sh.enforceBudgetLocked()
	} else {
		sh.storeLocked(e)
	}
	sh.mu.Unlock()
	if c.store != nil {
		c.store.Put(k, request, data)
	}
}

// storeLocked inserts a new entry and enforces the shard budgets.
// Callers hold sh.mu and have checked the key is absent.
func (sh *shard) storeLocked(e *Entry) {
	sh.entries[e.Key] = sh.lru.PushFront(e)
	sh.bytes += e.size()
	sh.enforceBudgetLocked()
}

// enforceBudgetLocked evicts least-recently-used entries until the
// shard fits its entry and byte budgets, always keeping at least one
// entry. Callers hold sh.mu.
func (sh *shard) enforceBudgetLocked() {
	over := func() bool {
		if sh.maxEntries > 0 && sh.lru.Len() > sh.maxEntries {
			return true
		}
		return sh.maxBytes > 0 && sh.bytes > sh.maxBytes
	}
	for over() && sh.lru.Len() > 1 {
		oldest := sh.lru.Back()
		e := oldest.Value.(*Entry)
		sh.lru.Remove(oldest)
		delete(sh.entries, e.Key)
		sh.bytes -= e.size()
		sh.stats.Evictions++
	}
}

// Len returns the memory tier's current entry count.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// StatsSnapshot returns the cumulative counters merged across shards.
func (c *Cache) StatsSnapshot() Stats {
	var s Stats
	for _, sh := range c.shards {
		sh.mu.Lock()
		st := sh.stats
		st.Entries = sh.lru.Len()
		st.Bytes = sh.bytes
		sh.mu.Unlock()
		s.add(st)
	}
	return s
}

// ShardStats returns one counter snapshot per shard, in shard order.
func (c *Cache) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		out[i] = sh.stats
		out[i].Entries = sh.lru.Len()
		out[i].Bytes = sh.bytes
		sh.mu.Unlock()
	}
	return out
}

// Do returns the entry for k, computing it at most once across
// concurrent callers. The resolution order is: memory hit, join an
// in-flight run, disk hit (promoted to memory), fresh run. On a miss
// it runs compute in its own goroutine under a context that stays
// alive while ANY caller still waits on the flight; the caller's own
// ctx only governs how long this caller waits. A successful
// computation is stored in memory and written through to the disk tier
// before anyone is woken, so a subsequent Do is a Hit even across a
// restart. A failed computation is not cached.
//
// request is the canonical request JSON stored alongside the data
// (used for revalidation); only the caller that starts the flight
// needs to supply it.
func (c *Cache) Do(ctx context.Context, k Key, request []byte, compute func(context.Context) ([]byte, error)) (*Entry, Outcome, error) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.lru.MoveToFront(el)
		e := el.Value.(*Entry)
		e.Hits++
		sh.stats.Hits++
		sh.mu.Unlock()
		return e, Hit, nil
	}
	if f, ok := sh.inflight[k]; ok {
		f.refs++
		sh.stats.Shared++
		sh.mu.Unlock()
		return sh.wait(ctx, k, f, Shared)
	}
	sh.mu.Unlock()

	// Memory missed and nothing is in flight: the disk tier may already
	// hold the answer (prior run, prior process). The read happens
	// outside the shard lock; concurrent callers may both land here and
	// both be served from disk — promotion is idempotent and nothing
	// re-runs.
	if e, ok := c.fromDisk(k); ok {
		sh.mu.Lock()
		sh.stats.DiskHits++
		sh.mu.Unlock()
		return e, Disk, nil
	}

	sh.mu.Lock()
	// Re-check: the disk probe ran unlocked, so another caller may have
	// promoted the entry or started a flight in the meantime.
	if el, ok := sh.entries[k]; ok {
		sh.lru.MoveToFront(el)
		e := el.Value.(*Entry)
		e.Hits++
		sh.stats.Hits++
		sh.mu.Unlock()
		return e, Hit, nil
	}
	if f, ok := sh.inflight[k]; ok {
		f.refs++
		sh.stats.Shared++
		sh.mu.Unlock()
		return sh.wait(ctx, k, f, Shared)
	}
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
	sh.inflight[k] = f
	sh.stats.Misses++
	sh.mu.Unlock()

	go func() {
		data, err := compute(fctx)
		var e *Entry
		if err == nil {
			e = newEntry(k, request, data)
		}
		sh.mu.Lock()
		f.entry, f.err = e, err
		if sh.inflight[k] == f {
			delete(sh.inflight, k)
			if err == nil {
				if el, ok := sh.entries[k]; ok {
					// A revalidation or promotion raced us in; its
					// entry is already being served — replace it so
					// the flight's waiters and future hits agree.
					old := el.Value.(*Entry)
					sh.bytes -= old.size()
					el.Value = e
					sh.bytes += e.size()
					sh.lru.MoveToFront(el)
				} else {
					sh.storeLocked(e)
				}
			}
		}
		sh.mu.Unlock()
		if err == nil && c.store != nil {
			c.store.Put(k, request, data) // write-through; restart serves this
		}
		cancel()
		close(f.done)
	}()
	return sh.wait(ctx, k, f, Miss)
}

// wait blocks until the flight completes or the caller's context is
// done. A caller that gives up drops its reference; the last reference
// out cancels the flight and detaches it so new callers start fresh.
func (sh *shard) wait(ctx context.Context, k Key, f *flight, o Outcome) (*Entry, Outcome, error) {
	// Prefer a completed flight over a racing cancellation: if the
	// result is already there, return it.
	select {
	case <-f.done:
		return f.entry, o, f.err
	default:
	}
	select {
	case <-f.done:
		return f.entry, o, f.err
	case <-ctx.Done():
		sh.mu.Lock()
		f.refs--
		abandon := f.refs == 0
		if abandon && sh.inflight[k] == f {
			delete(sh.inflight, k)
		}
		sh.mu.Unlock()
		if abandon {
			f.cancel()
		}
		return nil, o, ctx.Err()
	}
}
