package pril

import (
	"math/rand"
	"sort"
	"testing"

	"memcon/internal/trace"
)

func TestBitmapBasicPrediction(t *testing.T) {
	p, err := NewBitmap(Config{Quantum: q, NumPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	var preds []Prediction
	p.OnPredict(func(page uint32, at trace.Microseconds) {
		preds = append(preds, Prediction{Page: page, At: at})
	})
	p.Observe(trace.Event{Page: 3, At: 100})
	p.Finish(2 * q)
	if len(preds) != 1 || preds[0].Page != 3 || preds[0].At != 2*q {
		t.Errorf("predictions = %+v, want page 3 at 2q", preds)
	}
}

func TestBitmapMultiWriteSuppressed(t *testing.T) {
	p, _ := NewBitmap(Config{Quantum: q, NumPages: 16})
	var preds []Prediction
	p.OnPredict(func(page uint32, at trace.Microseconds) {
		preds = append(preds, Prediction{Page: page, At: at})
	})
	p.Observe(trace.Event{Page: 5, At: 0})
	p.Observe(trace.Event{Page: 5, At: 10})
	p.Finish(4 * q)
	if len(preds) != 0 {
		t.Errorf("multi-write page predicted: %+v", preds)
	}
	if p.Stats().MultiWriteRemovals != 1 {
		t.Errorf("MultiWriteRemovals = %d, want 1", p.Stats().MultiWriteRemovals)
	}
}

func TestBitmapWriteInNextQuantumCancels(t *testing.T) {
	p, _ := NewBitmap(Config{Quantum: q, NumPages: 16})
	var preds []Prediction
	p.OnPredict(func(page uint32, at trace.Microseconds) {
		preds = append(preds, Prediction{Page: page, At: at})
	})
	p.Observe(trace.Event{Page: 7, At: 10})
	p.Observe(trace.Event{Page: 7, At: q + 10})
	p.Finish(4 * q)
	// Only the second write's quantum yields a prediction.
	if len(preds) != 1 || preds[0].At != 3*q {
		t.Errorf("predictions = %+v, want single prediction at 3q", preds)
	}
}

func TestBitmapErrors(t *testing.T) {
	if _, err := NewBitmap(Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	p, _ := NewBitmap(Config{Quantum: q, NumPages: 4})
	if err := p.Observe(trace.Event{Page: 9, At: 0}); err == nil {
		t.Error("out-of-range page accepted")
	}
	p.Observe(trace.Event{Page: 0, At: 3 * q})
	if err := p.Observe(trace.Event{Page: 0, At: q}); err == nil {
		t.Error("backwards time accepted")
	}
}

// The defining property: on any trace, the bitmap predictor emits
// exactly the same predictions as the buffer-based predictor with an
// unbounded buffer.
func TestBitmapEquivalentToUnboundedBuffer(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := &trace.Trace{Duration: 20 * q}
		var at trace.Microseconds
		for i := 0; i < 3000; i++ {
			at += trace.Microseconds(rng.Intn(int(q / 8)))
			tr.Events = append(tr.Events, trace.Event{
				Page: uint32(rng.Intn(64)),
				At:   at,
			})
		}
		if tr.Duration < at {
			tr.Duration = at + q
		}
		cfg := Config{Quantum: q, NumPages: 64}
		a, _, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := RunBitmap(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		normalize := func(ps []Prediction) []Prediction {
			sort.Slice(ps, func(i, j int) bool {
				if ps[i].At != ps[j].At {
					return ps[i].At < ps[j].At
				}
				return ps[i].Page < ps[j].Page
			})
			return ps
		}
		a, b = normalize(a), normalize(b)
		if len(a) != len(b) {
			t.Fatalf("seed %d: buffer %d predictions, bitmap %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: prediction %d differs: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
	}
}

func TestBitmapStorageComparison(t *testing.T) {
	// 1M pages (8 GB / 8 KB), paper's 4000-entry buffers.
	pages := 1 << 20
	buffer := StorageBitsBuffer(pages, 4000)
	bitmap := StorageBitsBitmap(pages)
	if bitmap <= 0 || buffer <= 0 {
		t.Fatal("nonsensical storage numbers")
	}
	// The bitmap design costs 4 bits/page; the buffer design costs 2
	// bits/page of write-map plus the CAM. For a 1M-page module the two
	// are comparable in total bits, but the bitmap has no CAM lookups.
	if bitmap != 4*pages {
		t.Errorf("bitmap bits = %d, want %d", bitmap, 4*pages)
	}
	if buffer <= 2*pages {
		t.Errorf("buffer bits = %d, must exceed the bare write-maps", buffer)
	}
}

func TestBitmapQuantaAndFinish(t *testing.T) {
	p, _ := NewBitmap(Config{Quantum: q, NumPages: 8})
	p.Observe(trace.Event{Page: 1, At: 0})
	p.Finish(7 * q)
	if got := p.Stats().Quanta; got != 7 {
		t.Errorf("quanta = %d, want 7", got)
	}
}
