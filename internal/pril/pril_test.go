package pril

import (
	"testing"

	"memcon/internal/trace"
)

const q = 1024 * trace.Millisecond // 1024 ms quantum

func newPredictor(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	good := Config{Quantum: q, NumPages: 100, BufferCap: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Quantum: 0, NumPages: 10},
		{Quantum: q, NumPages: 0},
		{Quantum: q, NumPages: 10, BufferCap: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted invalid config")
	}
}

// collect returns a predictor that records all predictions.
func collect(p *Predictor) *[]Prediction {
	var preds []Prediction
	p.OnPredict(func(page uint32, at trace.Microseconds) {
		preds = append(preds, Prediction{Page: page, At: at})
	})
	return &preds
}

func TestSingleWriteThenIdlePredicted(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 16})
	preds := collect(p)
	// One write to page 3 in quantum 0, nothing in quantum 1.
	if err := p.Observe(trace.Event{Page: 3, At: 100}); err != nil {
		t.Fatal(err)
	}
	p.Finish(2 * q)
	if len(*preds) != 1 {
		t.Fatalf("predictions = %v, want exactly one", *preds)
	}
	got := (*preds)[0]
	if got.Page != 3 {
		t.Errorf("predicted page %d, want 3", got.Page)
	}
	// The prediction fires at the end of the SECOND quantum: one write in
	// quantum 0 and silence through quantum 1.
	if got.At != 2*q {
		t.Errorf("prediction at %d, want %d", got.At, 2*q)
	}
}

func TestMultipleWritesSameQuantumNotPredicted(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 16})
	preds := collect(p)
	// Two writes in the same quantum: interval < quantum, no prediction.
	p.Observe(trace.Event{Page: 5, At: 0})
	p.Observe(trace.Event{Page: 5, At: 50 * trace.Millisecond})
	p.Finish(4 * q)
	if len(*preds) != 0 {
		t.Errorf("predictions = %v, want none", *preds)
	}
	if p.Stats().MultiWriteRemovals != 1 {
		t.Errorf("MultiWriteRemovals = %d, want 1", p.Stats().MultiWriteRemovals)
	}
}

func TestWriteInNextQuantumCancelsCandidate(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 16})
	preds := collect(p)
	p.Observe(trace.Event{Page: 7, At: 10})
	// Write again in the following quantum: candidate removed (step 3).
	p.Observe(trace.Event{Page: 7, At: q + 10})
	p.Finish(4 * q)
	// The second write itself starts a new single-write quantum; with no
	// further writes it eventually gets predicted once.
	if len(*preds) != 1 {
		t.Fatalf("predictions = %v, want one (from the second write)", *preds)
	}
	if (*preds)[0].At != 3*q {
		t.Errorf("prediction at %d, want %d", (*preds)[0].At, 3*q)
	}
	if p.Stats().PrevQuantumRemovals != 1 {
		t.Errorf("PrevQuantumRemovals = %d, want 1", p.Stats().PrevQuantumRemovals)
	}
}

func TestThirdWriteInQuantumNoDoubleRemoval(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 16})
	p.Observe(trace.Event{Page: 1, At: 0})
	p.Observe(trace.Event{Page: 1, At: 1})
	p.Observe(trace.Event{Page: 1, At: 2})
	if got := p.Stats().MultiWriteRemovals; got != 1 {
		t.Errorf("MultiWriteRemovals = %d, want 1 (third write is a no-op)", got)
	}
}

func TestBufferOverflowDiscards(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 64, BufferCap: 2})
	preds := collect(p)
	for page := uint32(0); page < 5; page++ {
		p.Observe(trace.Event{Page: page, At: trace.Microseconds(page)})
	}
	p.Finish(3 * q)
	if got := p.Stats().Discards; got != 3 {
		t.Errorf("Discards = %d, want 3", got)
	}
	if len(*preds) != 2 {
		t.Errorf("predictions = %d, want 2 (buffer capacity)", len(*preds))
	}
}

func TestUnboundedBuffer(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 1000, BufferCap: 0})
	preds := collect(p)
	for page := uint32(0); page < 500; page++ {
		p.Observe(trace.Event{Page: page, At: trace.Microseconds(page)})
	}
	p.Finish(3 * q)
	if p.Stats().Discards != 0 {
		t.Errorf("unbounded buffer discarded %d", p.Stats().Discards)
	}
	if len(*preds) != 500 {
		t.Errorf("predictions = %d, want 500", len(*preds))
	}
	if p.Stats().PeakBuffer != 500 {
		t.Errorf("PeakBuffer = %d, want 500", p.Stats().PeakBuffer)
	}
}

func TestObserveErrors(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 4})
	if err := p.Observe(trace.Event{Page: 4, At: 0}); err == nil {
		t.Error("out-of-range page accepted")
	}
	if err := p.Observe(trace.Event{Page: 0, At: 3 * q}); err != nil {
		t.Fatal(err)
	}
	// Going backwards in time (before current quantum) must fail.
	if err := p.Observe(trace.Event{Page: 0, At: q}); err == nil {
		t.Error("time went backwards and was accepted")
	}
}

func TestQuantaCounting(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 4})
	p.Observe(trace.Event{Page: 0, At: 0})
	p.Finish(10 * q)
	if got := p.Stats().Quanta; got != 10 {
		t.Errorf("Quanta = %d, want 10", got)
	}
	if p.Stats().Writes != 1 {
		t.Errorf("Writes = %d, want 1", p.Stats().Writes)
	}
}

func TestRunBatch(t *testing.T) {
	tr := &trace.Trace{
		Name:     "t",
		Duration: 5 * q,
		Events: []trace.Event{
			{Page: 0, At: 0},                     // single write, then idle: predicted
			{Page: 1, At: 10},                    // written again next quantum: cancelled
			{Page: 1, At: q + 10},                // then idle: predicted later
			{Page: 2, At: 20}, {Page: 2, At: 30}, // double write: never predicted
			{Page: 3, At: 2*q + 5}, {Page: 3, At: 4*q + 5}, // write, idle a quantum, predicted, rewritten
		},
	}
	tr.Sort()
	preds, st, err := Run(tr, Config{Quantum: q, NumPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Expected predictions: page 0 at 2q, page 1 at 3q, page 3 at 4q,
	// and page 3's second write at... 4q+5 is in quantum 4; end of
	// quantum 5 boundary is beyond duration 5q (Finish flushes the
	// boundary at exactly 5q), so candidates from quantum 4 are emitted
	// at 6q > duration: not flushed.
	want := map[uint32]trace.Microseconds{0: 2 * q, 1: 3 * q, 3: 4 * q}
	if len(preds) != len(want) {
		t.Fatalf("predictions = %+v, want %v", preds, want)
	}
	for _, pr := range preds {
		at, ok := want[pr.Page]
		if !ok {
			t.Errorf("unexpected prediction for page %d", pr.Page)
			continue
		}
		if pr.At != at {
			t.Errorf("page %d predicted at %d, want %d", pr.Page, pr.At, at)
		}
	}
	if st.Writes != int64(len(tr.Events)) {
		t.Errorf("Writes = %d, want %d", st.Writes, len(tr.Events))
	}
	// Run must auto-size the page space.
	if st.Predictions != int64(len(preds)) {
		t.Errorf("Predictions stat = %d, want %d", st.Predictions, len(preds))
	}
}

func TestRunRejectsOutOfOrderTrace(t *testing.T) {
	tr := &trace.Trace{
		Duration: 10 * q,
		Events: []trace.Event{
			{Page: 0, At: 3 * q},
			{Page: 0, At: 0},
		},
	}
	if _, _, err := Run(tr, Config{Quantum: q, NumPages: 1}); err == nil {
		t.Error("out-of-order trace accepted")
	}
}

// Invariant: a page written exactly once is predicted exactly once, at
// the first quantum boundary that follows a full empty quantum.
func TestEveryIdlePageEventuallyPredicted(t *testing.T) {
	tr := &trace.Trace{Duration: 8 * q}
	for page := uint32(0); page < 40; page++ {
		tr.Events = append(tr.Events, trace.Event{Page: page, At: trace.Microseconds(page) * 100})
	}
	preds, _, err := Run(tr, Config{Quantum: q, NumPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]int{}
	for _, p := range preds {
		seen[p.Page]++
	}
	for page := uint32(0); page < 40; page++ {
		if seen[page] != 1 {
			t.Errorf("page %d predicted %d times, want 1", page, seen[page])
		}
	}
}
