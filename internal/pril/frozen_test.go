package pril

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"memcon/internal/trace"
)

// This file freezes the map-based writeBuffer predictor that the
// bitset/insertion-order rewrite replaced, verbatim except for
// identifier renames and the removed observer hooks (observer streams
// are pinned separately by the core snapshot test). The differential
// test below replays identical traces through both and demands
// identical predictions and statistics — the rewrite must be a pure
// representation change.

type frozenWriteBuffer struct {
	cap     int
	members map[uint32]struct{}
	order   []uint32
}

func newFrozenWriteBuffer(capacity int) *frozenWriteBuffer {
	return &frozenWriteBuffer{cap: capacity, members: make(map[uint32]struct{})}
}

func (b *frozenWriteBuffer) add(p uint32) bool {
	if _, ok := b.members[p]; ok {
		return true
	}
	if b.cap > 0 && len(b.members) >= b.cap {
		return false
	}
	b.members[p] = struct{}{}
	b.order = append(b.order, p)
	return true
}

func (b *frozenWriteBuffer) remove(p uint32) { delete(b.members, p) }

func (b *frozenWriteBuffer) contains(p uint32) bool {
	_, ok := b.members[p]
	return ok
}

func (b *frozenWriteBuffer) drain() []uint32 {
	out := make([]uint32, 0, len(b.members))
	for _, p := range b.order {
		if _, ok := b.members[p]; ok {
			delete(b.members, p)
			out = append(out, p)
		}
	}
	b.members = make(map[uint32]struct{})
	b.order = b.order[:0]
	return out
}

func (b *frozenWriteBuffer) len() int { return len(b.members) }

type frozenPredictor struct {
	cfg Config

	curMap  writeMap
	prevMap writeMap
	curBuf  *frozenWriteBuffer
	prevBuf *frozenWriteBuffer

	quantumStart trace.Microseconds
	stats        Stats

	onPredict func(page uint32, at trace.Microseconds)
}

func newFrozenPredictor(cfg Config) (*frozenPredictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &frozenPredictor{
		cfg:     cfg,
		curMap:  newWriteMap(cfg.NumPages),
		prevMap: newWriteMap(cfg.NumPages),
		curBuf:  newFrozenWriteBuffer(cfg.BufferCap),
		prevBuf: newFrozenWriteBuffer(cfg.BufferCap),
	}, nil
}

func (p *frozenPredictor) observe(e trace.Event) error {
	if e.At < p.quantumStart {
		return fmt.Errorf("pril: event at %d before current quantum start %d", e.At, p.quantumStart)
	}
	if int(e.Page) >= p.cfg.NumPages {
		return fmt.Errorf("pril: page %d outside tracked space of %d pages", e.Page, p.cfg.NumPages)
	}
	for e.At >= p.quantumStart+p.cfg.Quantum {
		p.endQuantum()
	}
	p.stats.Writes++

	if !p.curMap.get(e.Page) {
		p.curMap.set(e.Page)
		if p.curBuf.add(e.Page) {
			if p.curBuf.len() > p.stats.PeakBuffer {
				p.stats.PeakBuffer = p.curBuf.len()
			}
		} else {
			p.stats.Discards++
		}
	} else if p.curBuf.contains(e.Page) {
		p.curBuf.remove(e.Page)
		p.stats.MultiWriteRemovals++
	}
	if p.prevBuf.contains(e.Page) {
		p.prevBuf.remove(e.Page)
		p.stats.PrevQuantumRemovals++
	}
	return nil
}

func (p *frozenPredictor) endQuantum() {
	boundary := p.quantumStart + p.cfg.Quantum
	for _, page := range p.prevBuf.drain() {
		p.stats.Predictions++
		if p.onPredict != nil {
			p.onPredict(page, boundary)
		}
	}
	p.prevMap.clear()
	p.prevMap, p.curMap = p.curMap, p.prevMap
	p.prevBuf, p.curBuf = p.curBuf, p.prevBuf
	p.quantumStart = boundary
	p.stats.Quanta++
}

func (p *frozenPredictor) finish(endTime trace.Microseconds) {
	for endTime >= p.quantumStart+p.cfg.Quantum {
		p.endQuantum()
	}
}

// diffTrace generates a deterministic trace exercising the PRIL state
// machine hard: a mix of single-write pages (prediction candidates),
// burst pages (multi-write removals), pages re-written one quantum
// later (prev-buffer evictions), and enough distinct pages to overflow
// small buffer caps.
func diffTrace(seed int64, pages int, quantum trace.Microseconds, quanta int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: fmt.Sprintf("diff-%d", seed), Duration: quantum * trace.Microseconds(quanta)}
	for qi := 0; qi < quanta; qi++ {
		base := quantum * trace.Microseconds(qi)
		writes := 20 + rng.Intn(200)
		for i := 0; i < writes; i++ {
			page := uint32(rng.Intn(pages))
			at := base + trace.Microseconds(rng.Int63n(int64(quantum)))
			tr.Events = append(tr.Events, trace.Event{Page: page, At: at})
			// Occasionally write the same page again in the same or the
			// next quantum to trigger both eviction paths.
			if rng.Intn(4) == 0 {
				again := at + trace.Microseconds(rng.Int63n(int64(quantum)))
				if again < tr.Duration {
					tr.Events = append(tr.Events, trace.Event{Page: page, At: again})
				}
			}
		}
	}
	tr.Sort()
	return tr
}

// TestDifferentialAgainstFrozenPredictor pins the bitset rewrite to the
// frozen map-based implementation across seeds × quanta × buffer caps.
func TestDifferentialAgainstFrozenPredictor(t *testing.T) {
	quanta := []trace.Microseconds{512 * trace.Millisecond, 1024 * trace.Millisecond, 2048 * trace.Millisecond}
	caps := []int{0, 1, 7, 64, 4000}
	for seed := int64(1); seed <= 5; seed++ {
		for _, quantum := range quanta {
			for _, bufCap := range caps {
				cfg := Config{Quantum: quantum, NumPages: 512, BufferCap: bufCap}
				tr := diffTrace(seed, cfg.NumPages, quantum, 9)

				frozen, err := newFrozenPredictor(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var wantPreds []Prediction
				frozen.onPredict = func(page uint32, at trace.Microseconds) {
					wantPreds = append(wantPreds, Prediction{Page: page, At: at})
				}
				for _, e := range tr.Events {
					if err := frozen.observe(e); err != nil {
						t.Fatal(err)
					}
				}
				frozen.finish(tr.Duration)

				gotPreds, gotStats, err := Run(tr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("seed=%d quantum=%dms cap=%d", seed, quantum/trace.Millisecond, bufCap)
				if !reflect.DeepEqual(gotPreds, wantPreds) {
					t.Fatalf("%s: predictions diverge:\n got %d: %v\nwant %d: %v",
						name, len(gotPreds), head(gotPreds), len(wantPreds), head(wantPreds))
				}
				if gotStats != frozen.stats {
					t.Fatalf("%s: stats diverge:\n got %+v\nwant %+v", name, gotStats, frozen.stats)
				}
			}
		}
	}
}

// head truncates a prediction list for readable failure output.
func head(p []Prediction) []Prediction {
	if len(p) > 12 {
		return p[:12]
	}
	return p
}
