package pril

import (
	"math/rand"
	"testing"

	"memcon/internal/trace"
)

// Events landing exactly on quantum boundaries belong to the NEW
// quantum: a write at t=q is the first write of quantum 1, so a page
// written at t=0 and t=q counts once in each quantum (not twice in
// one), and can therefore still be predicted after quantum 2 ends...
// unless the second write cancels the first candidate, which it does.
func TestEventExactlyOnBoundary(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 8})
	preds := collect(p)
	p.Observe(trace.Event{Page: 0, At: 0})
	p.Observe(trace.Event{Page: 0, At: q}) // first write of quantum 1
	p.Finish(4 * q)
	// Candidate from quantum 0 is cancelled by the quantum-1 write; the
	// quantum-1 write is itself a single write followed by idle:
	// predicted at 3q.
	if len(*preds) != 1 || (*preds)[0].At != 3*q {
		t.Errorf("predictions = %+v, want single prediction at 3q", *preds)
	}
}

func TestFinishExactlyAtBoundary(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 8})
	preds := collect(p)
	p.Observe(trace.Event{Page: 2, At: 1})
	// Finishing exactly at 2q includes the boundary at 2q.
	p.Finish(2 * q)
	if len(*preds) != 1 {
		t.Errorf("predictions = %+v, want 1 at the inclusive boundary", *preds)
	}
	// Finishing at 2q-1 would NOT have fired (checked with a fresh one).
	p2 := newPredictor(t, Config{Quantum: q, NumPages: 8})
	preds2 := collect(p2)
	p2.Observe(trace.Event{Page: 2, At: 1})
	p2.Finish(2*q - 1)
	if len(*preds2) != 0 {
		t.Errorf("early finish fired predictions: %+v", *preds2)
	}
}

func TestLongGapSkipsManyQuanta(t *testing.T) {
	p := newPredictor(t, Config{Quantum: q, NumPages: 8})
	preds := collect(p)
	p.Observe(trace.Event{Page: 1, At: 0})
	// Next event 100 quanta later: the engine must process all
	// boundaries in between exactly once.
	p.Observe(trace.Event{Page: 2, At: 100 * q})
	if got := p.Stats().Quanta; got != 100 {
		t.Errorf("quanta = %d, want 100", got)
	}
	if len(*preds) != 1 || (*preds)[0].Page != 1 {
		t.Errorf("predictions = %+v, want page 1 only", *preds)
	}
}

// Differential test: the buffer and bitmap implementations agree on
// boundary-heavy traces too (events at exact multiples of the quantum).
func TestImplementationsAgreeOnBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := &trace.Trace{Duration: 64 * q}
	for i := 0; i < 500; i++ {
		at := trace.Microseconds(rng.Intn(60)) * q / 2 // half-quantum grid
		tr.Events = append(tr.Events, trace.Event{Page: uint32(rng.Intn(16)), At: at})
	}
	tr.Sort()
	cfg := Config{Quantum: q, NumPages: 16}
	a, _, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunBitmap(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("buffer %d vs bitmap %d predictions", len(a), len(b))
	}
	seen := map[Prediction]int{}
	for _, p := range a {
		seen[p]++
	}
	for _, p := range b {
		if seen[p] == 0 {
			t.Fatalf("bitmap-only prediction %+v", p)
		}
		seen[p]--
	}
}
