// Package pril implements the Probabilistic Remaining Interval Length
// predictor (paper §4.2, Fig. 13). PRIL divides execution time into
// fixed-length quanta and tracks, per quantum, the pages that received
// exactly one write. A page that was written once in the previous
// quantum and not at all in the current quantum has a current interval
// length of at least one quantum; by the decreasing-hazard-rate property
// of Pareto-distributed write intervals, its remaining interval is
// predicted to be long, and MEMCON initiates a test on it.
//
// The implementation follows the paper's hardware design: two write-map
// bit vectors plus two bounded write-buffers. When the write-buffer is
// full, new pages are discarded and simply stay at the HI-REF state —
// correctness never depends on a prediction being made.
package pril

import (
	"fmt"
	"io"

	"memcon/internal/obs"
	"memcon/internal/trace"
)

// Config configures a predictor.
type Config struct {
	// Quantum is the quantum length; the paper evaluates 512, 1024 and
	// 2048 ms (equal to the current-interval-length threshold that gives
	// high accuracy AND high coverage, Fig. 12).
	Quantum trace.Microseconds
	// NumPages is the size of the tracked page space (write-map bits).
	NumPages int
	// BufferCap bounds each write-buffer; the paper sizes it at ~4000
	// entries (§6.4). Zero means unbounded (an idealized PRIL used for
	// ablation).
	BufferCap int
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	if c.Quantum <= 0 {
		return fmt.Errorf("pril: quantum must be positive, got %d", c.Quantum)
	}
	if c.NumPages <= 0 {
		return fmt.Errorf("pril: page count must be positive, got %d", c.NumPages)
	}
	if c.BufferCap < 0 {
		return fmt.Errorf("pril: buffer capacity cannot be negative, got %d", c.BufferCap)
	}
	return nil
}

// writeMap is a bit vector marking pages written during a quantum.
type writeMap []uint64

func newWriteMap(pages int) writeMap { return make(writeMap, (pages+63)/64) }

func (w writeMap) set(p uint32)      { w[p/64] |= 1 << (p % 64) }
func (w writeMap) unset(p uint32)    { w[p/64] &^= 1 << (p % 64) }
func (w writeMap) get(p uint32) bool { return w[p/64]&(1<<(p%64)) != 0 }
func (w writeMap) clear() {
	for i := range w {
		w[i] = 0
	}
}

// grown returns the map extended to cover pages, reusing the backing
// array when it already has capacity.
func (w writeMap) grown(pages int) writeMap {
	if need := (pages + 63) / 64; need > len(w) {
		return append(w, make(writeMap, need-len(w))...)
	}
	return w
}

// writeBuffer stores the addresses of pages written exactly once in a
// quantum: a presence bitset for O(1) membership plus a compact
// insertion-order slice, mirroring a hardware CAM that drains
// oldest-first (the engine's test queue inherits that order). All
// operations are allocation-free in steady state; drain recycles both
// the bitset (bits are unset as entries emit, so no O(pages) clear) and
// the order slice's capacity across quanta.
type writeBuffer struct {
	cap     int
	n       int // live entries (order may hold superseded duplicates)
	present writeMap
	// order records insertions; entries whose page has since been
	// removed are skipped (and re-insertions re-appended) at drain.
	order []uint32
}

func newWriteBuffer(capacity, pages int) *writeBuffer {
	return &writeBuffer{cap: capacity, present: newWriteMap(pages)}
}

// add inserts a page; it reports false when the buffer is full.
func (b *writeBuffer) add(p uint32) bool {
	if b.present.get(p) {
		return true
	}
	if b.cap > 0 && b.n >= b.cap {
		return false
	}
	b.present.set(p)
	b.order = append(b.order, p)
	b.n++
	return true
}

func (b *writeBuffer) remove(p uint32) {
	if b.present.get(p) {
		b.present.unset(p)
		b.n--
	}
}

func (b *writeBuffer) contains(p uint32) bool { return b.present.get(p) }

// reset empties the buffer without emitting, clearing only the bits
// that are actually set.
func (b *writeBuffer) reset() {
	for _, p := range b.order {
		b.present.unset(p)
	}
	b.order = b.order[:0]
	b.n = 0
}

func (b *writeBuffer) len() int { return b.n }

// Stats aggregates predictor bookkeeping for the §6.4 evaluation.
type Stats struct {
	// Writes is the number of write events observed.
	Writes int64
	// Predictions is the number of pages predicted long (tests
	// initiated).
	Predictions int64
	// Discards counts pages dropped because the write-buffer was full
	// (they stay at HI-REF; a capacity ablation knob).
	Discards int64
	// MultiWriteRemovals counts pages removed from a buffer because a
	// second write arrived within the same quantum.
	MultiWriteRemovals int64
	// PrevQuantumRemovals counts pages removed from the previous buffer
	// because a write arrived in the current quantum.
	PrevQuantumRemovals int64
	// Quanta is the number of completed quanta.
	Quanta int64
	// PeakBuffer is the maximum number of simultaneously tracked pages
	// in one buffer, for the storage-overhead analysis.
	PeakBuffer int
}

// Predictor is the PRIL mechanism. Feed it the time-ordered write stream
// via Observe; it emits test candidates at quantum boundaries through
// the callback given to OnPredict (or collects them if none is set).
//
// Predictor is single-goroutine, like the memory-controller structure it
// models.
type Predictor struct {
	cfg Config

	curMap  writeMap
	prevMap writeMap
	curBuf  *writeBuffer
	prevBuf *writeBuffer

	quantumStart trace.Microseconds
	stats        Stats

	onPredict func(page uint32, at trace.Microseconds)
	obs       obs.Observer
}

// New creates a predictor.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Predictor{
		cfg:     cfg,
		curMap:  newWriteMap(cfg.NumPages),
		prevMap: newWriteMap(cfg.NumPages),
		curBuf:  newWriteBuffer(cfg.BufferCap, cfg.NumPages),
		prevBuf: newWriteBuffer(cfg.BufferCap, cfg.NumPages),
	}, nil
}

// Grow extends the tracked page space to at least pages, preserving all
// predictor state. Streaming replays call it when an event addresses a
// page beyond the current space; the bitsets grow with amortized
// doubling through append.
func (p *Predictor) Grow(pages int) {
	if pages <= p.cfg.NumPages {
		return
	}
	p.curMap = p.curMap.grown(pages)
	p.prevMap = p.prevMap.grown(pages)
	p.curBuf.present = p.curBuf.present.grown(pages)
	p.prevBuf.present = p.prevBuf.present.grown(pages)
	p.cfg.NumPages = pages
}

// Reset returns the predictor to its initial state while keeping every
// allocation (bitsets, buffer order slices), so one predictor can
// replay trace after trace without churn.
func (p *Predictor) Reset() {
	p.curBuf.reset()
	p.prevBuf.reset()
	p.curMap.clear()
	p.prevMap.clear()
	p.quantumStart = 0
	p.stats = Stats{}
}

// OnPredict installs the callback invoked for every page predicted to
// have a long remaining interval. The callback runs at quantum
// boundaries during Observe or Finish calls.
func (p *Predictor) OnPredict(fn func(page uint32, at trace.Microseconds)) {
	p.onPredict = fn
}

// SetObserver installs an observer notified of buffer activity
// (inserts, evictions, capacity discards). A nil observer — the
// default — keeps the event path free of any extra work.
func (p *Predictor) SetObserver(o obs.Observer) { p.obs = o }

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Stats returns a snapshot of the bookkeeping counters.
func (p *Predictor) Stats() Stats { return p.stats }

// Observe processes one write event. Events must arrive in
// non-decreasing time order; out-of-order events return an error.
func (p *Predictor) Observe(e trace.Event) error {
	if e.At < p.quantumStart {
		return fmt.Errorf("pril: event at %d before current quantum start %d", e.At, p.quantumStart)
	}
	if int(e.Page) >= p.cfg.NumPages {
		return fmt.Errorf("pril: page %d outside tracked space of %d pages", e.Page, p.cfg.NumPages)
	}
	// Advance quanta until the event falls inside the current one.
	for e.At >= p.quantumStart+p.cfg.Quantum {
		p.endQuantum()
	}
	p.stats.Writes++

	// Fig. 13 workflow.
	if !p.curMap.get(e.Page) {
		// First write to the page this quantum (step 1).
		p.curMap.set(e.Page)
		if p.curBuf.add(e.Page) {
			if p.curBuf.len() > p.stats.PeakBuffer {
				p.stats.PeakBuffer = p.curBuf.len()
			}
			if p.obs != nil {
				p.obs.OnEvent(obs.Event{Kind: obs.KindPrilInsert, Page: e.Page, At: int64(e.At), Aux: int64(p.curBuf.len())})
			}
		} else {
			p.stats.Discards++
			if p.obs != nil {
				p.obs.OnEvent(obs.Event{Kind: obs.KindPrilDiscard, Page: e.Page, At: int64(e.At), Aux: int64(p.cfg.BufferCap)})
			}
		}
	} else if p.curBuf.contains(e.Page) {
		// Second write within the quantum: interval is clearly shorter
		// than a quantum (step 2).
		p.curBuf.remove(e.Page)
		p.stats.MultiWriteRemovals++
		if p.obs != nil {
			p.obs.OnEvent(obs.Event{Kind: obs.KindPrilEvict, Page: e.Page, At: int64(e.At), Aux: 0})
		}
	}
	// Any write in the current quantum disqualifies a previous-quantum
	// candidate (step 3).
	if p.prevBuf.contains(e.Page) {
		p.prevBuf.remove(e.Page)
		p.stats.PrevQuantumRemovals++
		if p.obs != nil {
			p.obs.OnEvent(obs.Event{Kind: obs.KindPrilEvict, Page: e.Page, At: int64(e.At), Aux: 1})
		}
	}
	return nil
}

// endQuantum performs the end-of-quantum work (steps 4-5 of Fig. 13):
// pages still in the previous buffer were written once in the previous
// quantum and not at all in this one — predict them long and emit them,
// then swap buffers and maps.
func (p *Predictor) endQuantum() {
	boundary := p.quantumStart + p.cfg.Quantum
	// Drain oldest-first, inline so the per-quantum path stays
	// allocation-free: unsetting bits as entries emit both skips the
	// duplicate order entries a remove-then-re-add sequence leaves
	// behind and leaves the bitset empty for reuse without a clear.
	b := p.prevBuf
	for _, page := range b.order {
		if !b.present.get(page) {
			continue
		}
		b.present.unset(page)
		p.stats.Predictions++
		if p.onPredict != nil {
			p.onPredict(page, boundary)
		}
	}
	b.order = b.order[:0]
	b.n = 0
	p.prevMap.clear()
	p.prevMap, p.curMap = p.curMap, p.prevMap
	p.prevBuf, p.curBuf = p.curBuf, p.prevBuf
	p.quantumStart = boundary
	p.stats.Quanta++
}

// Finish advances time to the end of the run, flushing quantum
// boundaries up to and including the one containing endTime.
func (p *Predictor) Finish(endTime trace.Microseconds) {
	for endTime >= p.quantumStart+p.cfg.Quantum {
		p.endQuantum()
	}
}

// Prediction records one emitted prediction, for offline analysis.
type Prediction struct {
	Page uint32
	At   trace.Microseconds
}

// Run replays an entire trace through a fresh predictor with the given
// configuration and returns the predictions plus final statistics. It is
// the batch entry point used by the experiments.
func Run(tr *trace.Trace, cfg Config) ([]Prediction, Stats, error) {
	if max := tr.MaxPage(); max >= cfg.NumPages {
		cfg.NumPages = max + 1
	}
	p, err := New(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	var preds []Prediction
	p.OnPredict(func(page uint32, at trace.Microseconds) {
		preds = append(preds, Prediction{Page: page, At: at})
	})
	for _, e := range tr.Events {
		if err := p.Observe(e); err != nil {
			return nil, Stats{}, err
		}
	}
	p.Finish(tr.Duration)
	return preds, p.Stats(), nil
}

// RunSource replays a streaming event source through a fresh predictor.
// Unlike Run, the page space is not known up front: cfg.NumPages is
// only a floor and the predictor grows on demand, so memory stays
// O(pages) regardless of event count.
func RunSource(src trace.Source, cfg Config) ([]Prediction, Stats, error) {
	if cfg.NumPages <= 0 {
		cfg.NumPages = 1
	}
	p, err := New(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	var preds []Prediction
	p.OnPredict(func(page uint32, at trace.Microseconds) {
		preds = append(preds, Prediction{Page: page, At: at})
	})
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, Stats{}, err
		}
		if int(e.Page) >= p.cfg.NumPages {
			p.Grow(int(e.Page) + 1)
		}
		if err := p.Observe(e); err != nil {
			return nil, Stats{}, err
		}
	}
	p.Finish(src.Duration())
	return preds, p.Stats(), nil
}
