package pril

import (
	"fmt"
	"math/bits"

	"memcon/internal/trace"
)

// BitmapPredictor is the "cheaper implementation" the paper leaves as
// future work (§4.2): it replaces the write-buffers (associative
// structures holding page addresses) with a second bit vector per
// quantum. Per quantum it keeps
//
//	once[p]  — page p received at least one write
//	multi[p] — page p received at least two writes
//
// At a quantum boundary the candidates are exactly the pages with
// prevOnce AND NOT prevMulti AND NOT curOnce — the same set the
// buffer-based Predictor emits with an unbounded buffer — found by a
// linear scan over the bit vectors. Storage drops from ~17 KB of CAM to
// 2 bits per tracked page, at the cost of the scan (which is off the
// critical path, like the rest of PRIL).
type BitmapPredictor struct {
	cfg Config

	curOnce, curMulti   writeMap
	prevOnce, prevMulti writeMap

	quantumStart trace.Microseconds
	stats        Stats

	onPredict func(page uint32, at trace.Microseconds)
}

// NewBitmap creates a bitmap-based predictor. BufferCap is ignored:
// the structure has no buffer to overflow.
func NewBitmap(cfg Config) (*BitmapPredictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &BitmapPredictor{
		cfg:       cfg,
		curOnce:   newWriteMap(cfg.NumPages),
		curMulti:  newWriteMap(cfg.NumPages),
		prevOnce:  newWriteMap(cfg.NumPages),
		prevMulti: newWriteMap(cfg.NumPages),
	}, nil
}

// OnPredict installs the prediction callback.
func (p *BitmapPredictor) OnPredict(fn func(page uint32, at trace.Microseconds)) {
	p.onPredict = fn
}

// Stats returns the bookkeeping counters.
func (p *BitmapPredictor) Stats() Stats { return p.stats }

// Observe processes one write event in time order.
func (p *BitmapPredictor) Observe(e trace.Event) error {
	if e.At < p.quantumStart {
		return fmt.Errorf("pril: event at %d before current quantum start %d", e.At, p.quantumStart)
	}
	if int(e.Page) >= p.cfg.NumPages {
		return fmt.Errorf("pril: page %d outside tracked space of %d pages", e.Page, p.cfg.NumPages)
	}
	for e.At >= p.quantumStart+p.cfg.Quantum {
		p.endQuantum()
	}
	p.stats.Writes++
	if p.curOnce.get(e.Page) {
		if !p.curMulti.get(e.Page) {
			p.curMulti.set(e.Page)
			p.stats.MultiWriteRemovals++
		}
	} else {
		p.curOnce.set(e.Page)
	}
	return nil
}

// endQuantum scans the bit vectors and emits predictions.
func (p *BitmapPredictor) endQuantum() {
	boundary := p.quantumStart + p.cfg.Quantum
	for w := range p.prevOnce {
		// candidates = prevOnce & ^prevMulti & ^curOnce, word-wise.
		cand := p.prevOnce[w] &^ p.prevMulti[w] &^ p.curOnce[w]
		for cand != 0 {
			b := bits.TrailingZeros64(cand)
			cand &= cand - 1
			page := uint32(w*64 + b)
			if int(page) >= p.cfg.NumPages {
				continue
			}
			p.stats.Predictions++
			if p.onPredict != nil {
				p.onPredict(page, boundary)
			}
		}
	}
	p.prevOnce.clear()
	p.prevMulti.clear()
	p.prevOnce, p.curOnce = p.curOnce, p.prevOnce
	p.prevMulti, p.curMulti = p.curMulti, p.prevMulti
	p.quantumStart = boundary
	p.stats.Quanta++
}

// Finish flushes quantum boundaries up to endTime.
func (p *BitmapPredictor) Finish(endTime trace.Microseconds) {
	for endTime >= p.quantumStart+p.cfg.Quantum {
		p.endQuantum()
	}
}

// RunBitmap replays a trace through a fresh bitmap predictor.
func RunBitmap(tr *trace.Trace, cfg Config) ([]Prediction, Stats, error) {
	if max := tr.MaxPage(); max >= cfg.NumPages {
		cfg.NumPages = max + 1
	}
	p, err := NewBitmap(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	var preds []Prediction
	p.OnPredict(func(page uint32, at trace.Microseconds) {
		preds = append(preds, Prediction{Page: page, At: at})
	})
	for _, e := range tr.Events {
		if err := p.Observe(e); err != nil {
			return nil, Stats{}, err
		}
	}
	p.Finish(tr.Duration)
	return preds, p.Stats(), nil
}

// StorageBitsBuffer returns the storage, in bits, of the buffer-based
// design for the given page count and buffer entries (write-map bit per
// page plus address bits per buffer entry), doubled for the two quanta.
func StorageBitsBuffer(pages, bufferEntries int) int {
	addrBits := bits.Len(uint(pages - 1))
	return 2 * (pages + bufferEntries*addrBits)
}

// StorageBitsBitmap returns the storage of the bitmap design: two bit
// vectors per quantum, two quanta.
func StorageBitsBitmap(pages int) int { return 2 * 2 * pages }
