// Package energy models DRAM energy consumption so that the refresh
// savings MEMCON delivers can be expressed in energy as well as
// performance. The paper's abstract and introduction claim energy
// benefits but the evaluation quantifies only performance; this package
// closes that gap with a standard IDD-style operation-energy model:
// per-operation energies for activate/precharge pairs, column reads and
// writes, per-row refresh, plus background (standby) power.
//
// Absolute joules depend on the device; the defaults are representative
// DDR3 rank-level figures. Every experiment built on this package
// reports RATIOS between policies, which are robust to the absolute
// calibration.
package energy

import (
	"fmt"

	"memcon/internal/dram"
)

// Budget holds per-operation energies (nanojoules) and background power
// (milliwatts) for one rank.
type Budget struct {
	// ActPreNJ is the energy of one activate+precharge pair.
	ActPreNJ float64
	// ReadNJ / WriteNJ are per-cache-block column access energies.
	ReadNJ  float64
	WriteNJ float64
	// RefreshPerRowNJ is the energy to refresh one row (an internal
	// activate+precharge, slightly cheaper than a demand activation).
	RefreshPerRowNJ float64
	// BackgroundMW is standby power, charged for the full duration.
	BackgroundMW float64
}

// DDR3Budget returns representative DDR3 rank energies.
func DDR3Budget() Budget {
	return Budget{
		ActPreNJ:        20,
		ReadNJ:          6,
		WriteNJ:         6.5,
		RefreshPerRowNJ: 16,
		BackgroundMW:    110,
	}
}

// Validate reports an error for unusable budgets.
func (b Budget) Validate() error {
	if b.ActPreNJ < 0 || b.ReadNJ < 0 || b.WriteNJ < 0 || b.RefreshPerRowNJ < 0 || b.BackgroundMW < 0 {
		return fmt.Errorf("energy: negative budget entries: %+v", b)
	}
	return nil
}

// Tally counts the operations of one run.
type Tally struct {
	Activates  int64
	Reads      int64
	Writes     int64
	RefreshOps float64
	// TestRowCycles counts full row reads/writes performed by MEMCON
	// testing (each costs an activate plus a row's worth of column
	// accesses).
	TestRowCycles int64
	// BlocksPerRow sizes a test row cycle in column accesses.
	BlocksPerRow int
	// Duration charges background power.
	Duration dram.Nanoseconds
}

// Breakdown is the computed energy split, in millijoules.
type Breakdown struct {
	ActPreMJ     float64
	ReadMJ       float64
	WriteMJ      float64
	RefreshMJ    float64
	TestingMJ    float64
	BackgroundMJ float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.ActPreMJ + b.ReadMJ + b.WriteMJ + b.RefreshMJ + b.TestingMJ + b.BackgroundMJ
}

// RefreshShare returns refresh energy as a fraction of the total.
func (b Breakdown) RefreshShare() float64 {
	t := b.Total()
	if t <= 0 {
		return 0
	}
	return b.RefreshMJ / t
}

// Compute derives the energy breakdown of a tally under a budget.
func Compute(budget Budget, t Tally) (Breakdown, error) {
	if err := budget.Validate(); err != nil {
		return Breakdown{}, err
	}
	if t.Duration < 0 {
		return Breakdown{}, fmt.Errorf("energy: negative duration %d", t.Duration)
	}
	const nj2mj = 1e-6
	blocks := t.BlocksPerRow
	if blocks <= 0 {
		blocks = 128
	}
	var out Breakdown
	out.ActPreMJ = float64(t.Activates) * budget.ActPreNJ * nj2mj
	out.ReadMJ = float64(t.Reads) * budget.ReadNJ * nj2mj
	out.WriteMJ = float64(t.Writes) * budget.WriteNJ * nj2mj
	out.RefreshMJ = t.RefreshOps * budget.RefreshPerRowNJ * nj2mj
	// One test row cycle = one activation + a row of column reads (or
	// writes; use the read energy, the difference is marginal).
	out.TestingMJ = float64(t.TestRowCycles) * (budget.ActPreNJ + float64(blocks)*budget.ReadNJ) * nj2mj
	// 1 mW = 1e-9 mJ/ns, so mW * ns * 1e-9 = mJ.
	out.BackgroundMJ = budget.BackgroundMW * float64(t.Duration) * 1e-9
	return out, nil
}

// Savings returns the fractional total-energy saving of scheme over
// baseline.
func Savings(baseline, scheme Breakdown) float64 {
	if baseline.Total() <= 0 {
		return 0
	}
	return 1 - scheme.Total()/baseline.Total()
}
