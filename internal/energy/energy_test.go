package energy

import (
	"math"
	"testing"

	"memcon/internal/dram"
)

func TestBudgetValidate(t *testing.T) {
	if err := DDR3Budget().Validate(); err != nil {
		t.Fatalf("default budget invalid: %v", err)
	}
	bad := DDR3Budget()
	bad.ReadNJ = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative energy accepted")
	}
}

func TestComputeBasics(t *testing.T) {
	b := Budget{ActPreNJ: 10, ReadNJ: 2, WriteNJ: 3, RefreshPerRowNJ: 5, BackgroundMW: 100}
	tally := Tally{
		Activates:  1000,
		Reads:      2000,
		Writes:     500,
		RefreshOps: 10000,
		Duration:   dram.Second,
	}
	got, err := Compute(b, tally)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.ActPreMJ-0.01) > 1e-12 {
		t.Errorf("ActPreMJ = %v, want 0.01", got.ActPreMJ)
	}
	if math.Abs(got.ReadMJ-0.004) > 1e-12 {
		t.Errorf("ReadMJ = %v, want 0.004", got.ReadMJ)
	}
	if math.Abs(got.WriteMJ-0.0015) > 1e-12 {
		t.Errorf("WriteMJ = %v, want 0.0015", got.WriteMJ)
	}
	if math.Abs(got.RefreshMJ-0.05) > 1e-12 {
		t.Errorf("RefreshMJ = %v, want 0.05", got.RefreshMJ)
	}
	// 100 mW over 1 s = 100 mJ.
	if math.Abs(got.BackgroundMJ-100) > 1e-9 {
		t.Errorf("BackgroundMJ = %v, want 100", got.BackgroundMJ)
	}
	if got.Total() <= got.BackgroundMJ {
		t.Error("total must exceed background alone")
	}
}

func TestComputeErrors(t *testing.T) {
	bad := DDR3Budget()
	bad.ActPreNJ = -1
	if _, err := Compute(bad, Tally{}); err == nil {
		t.Error("invalid budget accepted")
	}
	if _, err := Compute(DDR3Budget(), Tally{Duration: -1}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestTestingEnergy(t *testing.T) {
	b := Budget{ActPreNJ: 10, ReadNJ: 2}
	tally := Tally{TestRowCycles: 1, BlocksPerRow: 128}
	got, err := Compute(b, tally)
	if err != nil {
		t.Fatal(err)
	}
	want := (10 + 128*2.0) * 1e-6
	if math.Abs(got.TestingMJ-want) > 1e-15 {
		t.Errorf("TestingMJ = %v, want %v", got.TestingMJ, want)
	}
	// Default block count kicks in when unset.
	tally.BlocksPerRow = 0
	got2, _ := Compute(b, tally)
	if got2.TestingMJ != got.TestingMJ {
		t.Errorf("default blocks differ: %v vs %v", got2.TestingMJ, got.TestingMJ)
	}
}

func TestSavings(t *testing.T) {
	base := Breakdown{RefreshMJ: 100, BackgroundMJ: 100}
	scheme := Breakdown{RefreshMJ: 25, BackgroundMJ: 100}
	got := Savings(base, scheme)
	want := 1 - 125.0/200.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("savings = %v, want %v", got, want)
	}
	if Savings(Breakdown{}, scheme) != 0 {
		t.Error("zero baseline should yield zero savings")
	}
}

func TestRefreshShare(t *testing.T) {
	b := Breakdown{RefreshMJ: 30, BackgroundMJ: 70}
	if math.Abs(b.RefreshShare()-0.3) > 1e-12 {
		t.Errorf("share = %v, want 0.3", b.RefreshShare())
	}
	if (Breakdown{}).RefreshShare() != 0 {
		t.Error("empty breakdown share should be 0")
	}
}

// Refresh energy must dominate the variable energy at high density and
// aggressive refresh — the regime where MEMCON's savings matter.
func TestAggressiveRefreshDominates(t *testing.T) {
	budget := DDR3Budget()
	rows := 512 * 1024 // 4 GB at 8 KB rows
	dur := dram.Second
	aggressive := Tally{
		RefreshOps: float64(rows) * float64(dur) / float64(16*dram.Millisecond),
		Duration:   dur,
	}
	relaxed := aggressive
	relaxed.RefreshOps /= 4
	a, err := Compute(budget, aggressive)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Compute(budget, relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if a.RefreshMJ <= r.RefreshMJ {
		t.Error("aggressive refresh should cost more energy")
	}
	if s := Savings(a, r); s <= 0.1 {
		t.Errorf("refresh-dominated savings = %v, want substantial", s)
	}
}
