package refresh

import (
	"math"
	"testing"
	"testing/quick"

	"memcon/internal/dram"
	"memcon/internal/obs"
)

func TestNewCounterErrors(t *testing.T) {
	if _, err := NewCounter(0, dram.Millisecond); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewCounter(4, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestCounterFixedEquivalence(t *testing.T) {
	// With no interval changes, the counter must match FixedRateOps.
	c, err := NewCounter(100, 16*dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	dur := dram.Nanoseconds(10 * dram.Second)
	got := c.Finish(dur)
	want := FixedRateOps(100, dur, 16*dram.Millisecond)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("counter total = %v, want %v", got, want)
	}
}

func TestCounterSegmentedAccounting(t *testing.T) {
	// One row spends half the time at 16 ms, half at 64 ms.
	c, _ := NewCounter(1, 16*dram.Millisecond)
	if err := c.SetInterval(0, 64*dram.Millisecond, dram.Second); err != nil {
		t.Fatal(err)
	}
	got := c.Finish(2 * dram.Second)
	want := float64(dram.Second)/float64(16*dram.Millisecond) +
		float64(dram.Second)/float64(64*dram.Millisecond)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("segmented ops = %v, want %v", got, want)
	}
}

func TestCounterErrors(t *testing.T) {
	c, _ := NewCounter(2, 16*dram.Millisecond)
	if err := c.SetInterval(5, dram.Millisecond, 0); err == nil {
		t.Error("out-of-range row accepted")
	}
	if err := c.SetInterval(0, 0, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if err := c.SetInterval(0, dram.Millisecond, dram.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.SetInterval(0, dram.Millisecond, dram.Second/2); err == nil {
		t.Error("time going backwards accepted")
	}
}

func TestCounterFinishIdempotent(t *testing.T) {
	c, _ := NewCounter(10, 16*dram.Millisecond)
	a := c.Finish(dram.Second)
	b := c.Finish(5 * dram.Second)
	if a != b {
		t.Errorf("Finish not idempotent: %v then %v", a, b)
	}
}

func TestCounterAccessors(t *testing.T) {
	c, _ := NewCounter(3, 16*dram.Millisecond)
	if c.Rows() != 3 {
		t.Errorf("Rows = %d", c.Rows())
	}
	if c.Interval(1) != 16*dram.Millisecond {
		t.Errorf("Interval = %d", c.Interval(1))
	}
	c.SetInterval(1, 64*dram.Millisecond, 0)
	if c.Interval(1) != 64*dram.Millisecond {
		t.Errorf("Interval after set = %d", c.Interval(1))
	}
}

// Property: splitting time into arbitrary same-interval segments never
// changes the total.
func TestCounterSplitInvariance(t *testing.T) {
	f := func(cuts []uint16) bool {
		c, _ := NewCounter(1, 16*dram.Millisecond)
		now := dram.Nanoseconds(0)
		for _, cut := range cuts {
			now += dram.Nanoseconds(cut) * dram.Microsecond
			if err := c.SetInterval(0, 16*dram.Millisecond, now); err != nil {
				return false
			}
		}
		end := now + dram.Second
		got := c.Finish(end)
		want := float64(end) / float64(16*dram.Millisecond)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedRateOps(t *testing.T) {
	// 100 rows over 1 s at 16 ms -> 6250 ops.
	got := FixedRateOps(100, dram.Second, 16*dram.Millisecond)
	if math.Abs(got-6250) > 1e-9 {
		t.Errorf("ops = %v, want 6250", got)
	}
	if FixedRateOps(0, dram.Second, dram.Millisecond) != 0 {
		t.Error("zero rows should give zero ops")
	}
	if FixedRateOps(10, 0, dram.Millisecond) != 0 {
		t.Error("zero duration should give zero ops")
	}
	if FixedRateOps(10, dram.Second, 0) != 0 {
		t.Error("zero interval should give zero ops")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 25); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Reduction = %v, want 0.75", got)
	}
	if got := Reduction(0, 10); got != 0 {
		t.Errorf("Reduction with zero baseline = %v, want 0", got)
	}
}

func TestNewRAIDRValidation(t *testing.T) {
	hi, lo := 16*dram.Millisecond, 64*dram.Millisecond
	if _, err := NewRAIDR(0, 0.1, hi, lo); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewRAIDR(100, -0.1, hi, lo); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := NewRAIDR(100, 1.1, hi, lo); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := NewRAIDR(100, 0.1, lo, hi); err == nil {
		t.Error("hi >= lo accepted")
	}
}

// The paper's RAIDR configuration: 16% of rows at 16 ms, 84% at 64 ms.
// Versus an all-16 ms baseline that is a 63% reduction — consistently
// below MEMCON's 64.7-74.5%.
func TestRAIDRPaperConfiguration(t *testing.T) {
	r, err := NewRAIDR(10000, 0.16, 16*dram.Millisecond, 64*dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	red := r.ReductionVsBaseline(10*dram.Second, 16*dram.Millisecond)
	want := 1 - (0.16 + 0.84*0.25) // 0.63
	if math.Abs(red-want) > 1e-9 {
		t.Errorf("RAIDR reduction = %v, want %v", red, want)
	}
	// MEMCON's upper bound (all rows at 64 ms) is a 75% reduction,
	// strictly better than RAIDR.
	if red >= 0.75 {
		t.Errorf("RAIDR reduction %v should be below the 75%% upper bound", red)
	}
}

func TestRAIDROps(t *testing.T) {
	r, _ := NewRAIDR(100, 0.5, 16*dram.Millisecond, 64*dram.Millisecond)
	got := r.Ops(dram.Second)
	want := FixedRateOps(50, dram.Second, 16*dram.Millisecond) +
		FixedRateOps(50, dram.Second, 64*dram.Millisecond)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ops = %v, want %v", got, want)
	}
}

// TestCounterObserver checks SetInterval reports every rate switch as
// KindRefreshRateSet (Page = row, At in µs, Aux = new interval in ns),
// that failed switches emit nothing, and that the observer never
// perturbs the accounting.
func TestCounterObserver(t *testing.T) {
	var rec obs.Recorder
	c, err := NewCounter(8, 16*dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c.SetObserver(&rec)
	if err := c.SetInterval(3, 64*dram.Millisecond, 32*dram.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.SetInterval(3, 16*dram.Millisecond, 96*dram.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.SetInterval(99, 64*dram.Millisecond, 0); err == nil {
		t.Error("out-of-range row accepted")
	}
	want := []obs.Event{
		{Kind: obs.KindRefreshRateSet, Page: 3, At: 32000, Aux: int64(64 * dram.Millisecond)},
		{Kind: obs.KindRefreshRateSet, Page: 3, At: 96000, Aux: int64(16 * dram.Millisecond)},
	}
	got := rec.Events()
	if len(got) != len(want) {
		t.Fatalf("recorded %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, got[i], want[i])
		}
	}

	// The observed counter must account identically to a bare one.
	bare, _ := NewCounter(8, 16*dram.Millisecond)
	bare.SetInterval(3, 64*dram.Millisecond, 32*dram.Millisecond)
	bare.SetInterval(3, 16*dram.Millisecond, 96*dram.Millisecond)
	end := dram.Nanoseconds(dram.Second)
	if a, b := c.Finish(end), bare.Finish(end); a != b {
		t.Errorf("observer changed accounting: %v vs %v", a, b)
	}
}
