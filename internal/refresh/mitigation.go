// RowHammer mitigation policies. A Mitigation watches the activation
// stream of a bank and decides, per activation, how many extra
// neighbour-refresh operations the controller must issue. Two classic
// policies are modelled:
//
//   - PARA (probabilistic adjacent-row activation): on every activation,
//     refresh both physical neighbours with probability p. Stateless per
//     row; the escape probability of an H-activation hammer is (1-p)^H.
//   - PRAC-style counting: refresh both neighbours on every threshold-th
//     activation of a row. Deterministic; between two mitigations a
//     victim's neighbours absorb at most 2*(threshold-1) activations.
//
// Both express their cost in refresh operations, the currency the rest
// of the cost model already prices (energy.Budget.RefreshPerRowNJ,
// costmodel timing).
package refresh

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Mitigation is a pluggable RowHammer mitigation policy. OnActivation is
// called once per row activation with the row's activation count within
// the current refresh window (including this activation) and returns the
// number of extra refresh operations to issue now (0 for none; 2 when
// both physical neighbours of the aggressor are refreshed).
//
// Implementations must be deterministic in their construction arguments:
// the same activation sequence yields the same operation sequence.
type Mitigation interface {
	// Name returns the policy's canonical spec string (e.g. "para:0.001").
	Name() string
	// OnActivation reports the extra refresh operations for this
	// activation of (bank, row); count is the row's activation count in
	// the current refresh window, starting at 1.
	OnActivation(bank, row int, count int64) int
}

// mitigationStream decorrelates PARA's coin flips from every other seeded
// stream in the simulator (the controller's traffic RNG in particular
// must not shift when mitigation is enabled).
const mitigationStream = 0x5e151f1ab1e0c0de

// PARA refreshes the aggressor's two neighbours with probability P on
// every activation.
type PARA struct {
	p   float64
	rng *rand.Rand
}

// NewPARA builds a PARA policy with the given per-activation refresh
// probability, deterministic in (p, seed).
func NewPARA(p float64, seed uint64) (*PARA, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("refresh: PARA probability %v outside (0,1]", p)
	}
	return &PARA{
		p:   p,
		rng: rand.New(rand.NewSource(int64(seed ^ mitigationStream))),
	}, nil
}

// Name implements Mitigation.
func (m *PARA) Name() string { return "para:" + strconv.FormatFloat(m.p, 'g', -1, 64) }

// P returns the per-activation refresh probability.
func (m *PARA) P() float64 { return m.p }

// OnActivation implements Mitigation: one biased coin flip per
// activation, 2 ops on heads.
func (m *PARA) OnActivation(bank, row int, count int64) int {
	if m.rng.Float64() < m.p {
		return 2
	}
	return 0
}

// PARAEscapeProb returns the probability that an H-activation hammer of
// one aggressor row completes without PARA ever refreshing its
// neighbours: (1-p)^H. This is the policy's analytic blast-radius bound.
func PARAEscapeProb(p float64, hammer int64) float64 {
	if p <= 0 || hammer <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	return math.Exp(float64(hammer) * math.Log(1-p))
}

// PRAC counts per-row activations and refreshes the aggressor's two
// neighbours on every Threshold-th activation within a refresh window,
// modelling DDR5 per-row-activation-counting mitigations.
type PRAC struct {
	threshold int64
}

// NewPRAC builds a counting policy that mitigates every threshold-th
// activation of a row.
func NewPRAC(threshold int64) (*PRAC, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("refresh: PRAC threshold must be at least 1, got %d", threshold)
	}
	return &PRAC{threshold: threshold}, nil
}

// Name implements Mitigation.
func (m *PRAC) Name() string { return "prac:" + strconv.FormatInt(m.threshold, 10) }

// Threshold returns the mitigation period in activations.
func (m *PRAC) Threshold() int64 { return m.threshold }

// OnActivation implements Mitigation.
func (m *PRAC) OnActivation(bank, row int, count int64) int {
	if count%m.threshold == 0 {
		return 2
	}
	return 0
}

// PRACCappedHammer returns the maximum effective hammer count a victim
// can accumulate under PRAC before its next neighbour refresh: a
// single-sided aggressor is mitigated after at most threshold
// activations, and with two aggressor neighbours the victim absorbs at
// most 2*(threshold-1)+1 activations between mitigations. An H-activation
// hammer therefore lands min(H, cap) effective activations.
func PRACCappedHammer(threshold, hammer int64) int64 {
	if threshold < 1 || hammer <= 0 {
		return 0
	}
	cap := 2*(threshold-1) + 1
	if hammer < cap {
		return hammer
	}
	return cap
}

// CanonicalMitigationSpec normalizes a mitigation spec string: trimmed
// and lower-cased, with "" and "none" both canonicalized to "" (no
// mitigation) and numeric parameters reformatted to their shortest form.
// It returns an error for specs ParseMitigation would reject.
func CanonicalMitigationSpec(spec string) (string, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	if s == "" || s == "none" {
		return "", nil
	}
	m, err := ParseMitigation(s, 0)
	if err != nil {
		return "", err
	}
	return m.Name(), nil
}

// ParseMitigation builds a Mitigation from its spec string:
//
//	""            no mitigation (returns nil)
//	"none"        no mitigation (returns nil)
//	"para:<p>"    PARA with per-activation probability p
//	"prac:<n>"    counting mitigation every n-th activation
//
// The seed feeds probabilistic policies (PARA); deterministic policies
// ignore it.
func ParseMitigation(spec string, seed uint64) (Mitigation, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	if s == "" || s == "none" {
		return nil, nil
	}
	kind, arg, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("refresh: mitigation spec %q is not \"none\", \"para:<p>\" or \"prac:<n>\"", spec)
	}
	switch kind {
	case "para":
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return nil, fmt.Errorf("refresh: PARA probability %q: %v", arg, err)
		}
		return NewPARA(p, seed)
	case "prac":
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("refresh: PRAC threshold %q: %v", arg, err)
		}
		return NewPRAC(n)
	default:
		return nil, fmt.Errorf("refresh: unknown mitigation %q (want para or prac)", kind)
	}
}
