// Package refresh models DRAM refresh policies and counts refresh
// operations, the currency of the paper's §6.1 evaluation. It provides:
//
//   - Counter: per-row refresh-operation accounting under dynamically
//     changing per-row refresh intervals (what MEMCON does as rows move
//     between HI-REF and LO-REF),
//   - FixedRate: every row refreshed at one interval (the 16/32/64 ms
//     baselines),
//   - RAIDR: the profile-based multi-rate baseline (rows that can fail
//     with ANY content at HI-REF, all others at LO-REF).
package refresh

import (
	"fmt"

	"memcon/internal/dram"
	"memcon/internal/obs"
)

// Counter accumulates refresh operations for a set of rows whose refresh
// intervals change over time. Refresh operations are counted fractionally
// (elapsed/interval) which matches the paper's reduction percentages; the
// totals are large enough that quantization is irrelevant.
type Counter struct {
	interval []dram.Nanoseconds
	since    []dram.Nanoseconds
	ops      float64
	finished bool
	obs      obs.Observer
}

// NewCounter creates a counter for rows rows, all starting at the given
// interval at time 0.
func NewCounter(rows int, interval dram.Nanoseconds) (*Counter, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("refresh: row count must be positive, got %d", rows)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("refresh: interval must be positive, got %d", interval)
	}
	c := &Counter{
		interval: make([]dram.Nanoseconds, rows),
		since:    make([]dram.Nanoseconds, rows),
	}
	for i := range c.interval {
		c.interval[i] = interval
	}
	return c, nil
}

// SetObserver installs an observer notified of every rate switch
// (obs.KindRefreshRateSet, Aux = the new interval in nanoseconds).
// A nil observer — the default — adds no work to SetInterval.
func (c *Counter) SetObserver(o obs.Observer) { c.obs = o }

// Rows returns the number of tracked rows.
func (c *Counter) Rows() int { return len(c.interval) }

// Interval returns the current refresh interval of a row.
func (c *Counter) Interval(row int) dram.Nanoseconds { return c.interval[row] }

// SetInterval switches a row to a new refresh interval at time now,
// accumulating the refresh operations of the segment that just ended.
// now must not precede the row's previous switch time.
func (c *Counter) SetInterval(row int, interval, now dram.Nanoseconds) error {
	if row < 0 || row >= len(c.interval) {
		return fmt.Errorf("refresh: row %d outside [0,%d)", row, len(c.interval))
	}
	if interval <= 0 {
		return fmt.Errorf("refresh: interval must be positive, got %d", interval)
	}
	if now < c.since[row] {
		return fmt.Errorf("refresh: time went backwards for row %d: %d < %d", row, now, c.since[row])
	}
	c.ops += float64(now-c.since[row]) / float64(c.interval[row])
	c.since[row] = now
	c.interval[row] = interval
	if c.obs != nil {
		c.obs.OnEvent(obs.Event{
			Kind: obs.KindRefreshRateSet,
			Page: uint32(row),
			At:   int64(now / dram.Microsecond),
			Aux:  int64(interval),
		})
	}
	return nil
}

// Finish closes all segments at time end and returns the total refresh
// operations. It can be called once; later calls return the same total.
func (c *Counter) Finish(end dram.Nanoseconds) float64 {
	if c.finished {
		return c.ops
	}
	for i := range c.interval {
		if end > c.since[i] {
			c.ops += float64(end-c.since[i]) / float64(c.interval[i])
			c.since[i] = end
		}
	}
	c.finished = true
	return c.ops
}

// FixedRateOps returns the refresh operations a fixed-rate policy issues
// for rows rows over duration at the given interval.
func FixedRateOps(rows int, duration, interval dram.Nanoseconds) float64 {
	if rows <= 0 || duration <= 0 || interval <= 0 {
		return 0
	}
	return float64(rows) * float64(duration) / float64(interval)
}

// Reduction returns the fractional reduction of ops versus baseline
// (e.g. 0.75 for a 75% reduction).
func Reduction(baseline, ops float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return 1 - ops/baseline
}

// RAIDR is the profile-based multi-rate baseline (§6.3): an initial
// all-pattern profiling pass marks the rows that could fail with any
// content; those are refreshed at HiInterval forever, all other rows at
// LoInterval. RAIDR requires knowledge of DRAM internals for its profile
// to be complete — the paper's point is that MEMCON does not.
type RAIDR struct {
	// HiRows is the number of profiled-weak rows.
	HiRows int
	// TotalRows is the module's row count.
	TotalRows int
	// HiInterval and LoInterval are the two refresh rates.
	HiInterval dram.Nanoseconds
	LoInterval dram.Nanoseconds
}

// NewRAIDR builds the policy from a profiled weak-row fraction. The
// paper models 16% of rows at HI-REF, matching its experimental Fig. 4
// data with a randomly-distributed error rate.
func NewRAIDR(totalRows int, weakRowFraction float64, hi, lo dram.Nanoseconds) (RAIDR, error) {
	if totalRows <= 0 {
		return RAIDR{}, fmt.Errorf("refresh: total rows must be positive, got %d", totalRows)
	}
	if weakRowFraction < 0 || weakRowFraction > 1 {
		return RAIDR{}, fmt.Errorf("refresh: weak-row fraction %v outside [0,1]", weakRowFraction)
	}
	if hi <= 0 || lo <= hi {
		return RAIDR{}, fmt.Errorf("refresh: need 0 < hi (%d) < lo (%d)", hi, lo)
	}
	return RAIDR{
		HiRows:     int(float64(totalRows) * weakRowFraction),
		TotalRows:  totalRows,
		HiInterval: hi,
		LoInterval: lo,
	}, nil
}

// Ops returns the refresh operations RAIDR issues over duration.
func (r RAIDR) Ops(duration dram.Nanoseconds) float64 {
	hi := FixedRateOps(r.HiRows, duration, r.HiInterval)
	lo := FixedRateOps(r.TotalRows-r.HiRows, duration, r.LoInterval)
	return hi + lo
}

// ReductionVsBaseline returns RAIDR's refresh reduction versus an
// all-rows baseline at the given interval.
func (r RAIDR) ReductionVsBaseline(duration, baselineInterval dram.Nanoseconds) float64 {
	base := FixedRateOps(r.TotalRows, duration, baselineInterval)
	return Reduction(base, r.Ops(duration))
}
