package refresh

import (
	"math"
	"testing"
)

func TestParseMitigation(t *testing.T) {
	for _, spec := range []string{"", "none", " NONE "} {
		m, err := ParseMitigation(spec, 1)
		if err != nil || m != nil {
			t.Fatalf("ParseMitigation(%q) = %v, %v; want nil, nil", spec, m, err)
		}
	}
	m, err := ParseMitigation("para:0.01", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "para:0.01" {
		t.Fatalf("PARA name = %q", m.Name())
	}
	m, err = ParseMitigation("PRAC:4096", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "prac:4096" {
		t.Fatalf("PRAC name = %q", m.Name())
	}
	for _, spec := range []string{"para", "para:0", "para:1.5", "para:x", "prac:0", "prac:-3", "prac:x", "blp:2"} {
		if _, err := ParseMitigation(spec, 1); err == nil {
			t.Errorf("ParseMitigation(%q) accepted", spec)
		}
	}
}

func TestCanonicalMitigationSpec(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"none", ""},
		{" None ", ""},
		{"para:0.0100", "para:0.01"},
		{"PARA:0.001", "para:0.001"},
		{"prac:04096", "prac:4096"},
	}
	for _, c := range cases {
		got, err := CanonicalMitigationSpec(c.in)
		if err != nil {
			t.Errorf("CanonicalMitigationSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("CanonicalMitigationSpec(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := CanonicalMitigationSpec("para:2"); err == nil {
		t.Error("CanonicalMitigationSpec accepted para:2")
	}
}

func TestPRACDeterministicSchedule(t *testing.T) {
	m, err := NewPRAC(4)
	if err != nil {
		t.Fatal(err)
	}
	var ops []int
	for count := int64(1); count <= 9; count++ {
		ops = append(ops, m.OnActivation(0, 7, count))
	}
	want := []int{0, 0, 0, 2, 0, 0, 0, 2, 0}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("PRAC schedule %v, want %v", ops, want)
		}
	}
}

func TestPARADeterministicAndCalibrated(t *testing.T) {
	run := func(seed uint64) (total int64) {
		m, err := NewPARA(0.01, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= 100_000; i++ {
			total += int64(m.OnActivation(0, 0, i))
		}
		return total
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed produced different op totals: %d vs %d", a, b)
	}
	// 100k activations at p=0.01 → ~1000 hits → ~2000 ops.
	if a < 1500 || a > 2500 {
		t.Fatalf("PARA ops %d far from expectation 2000", a)
	}
	if c := run(43); c == a {
		t.Fatalf("different seeds produced identical op totals %d", a)
	}
}

func TestPARAEscapeProb(t *testing.T) {
	if got := PARAEscapeProb(0.01, 0); got != 1 {
		t.Fatalf("escape prob of empty hammer = %v", got)
	}
	if got := PARAEscapeProb(1, 5); got != 0 {
		t.Fatalf("escape prob at p=1 = %v", got)
	}
	got := PARAEscapeProb(0.001, 10_000)
	want := math.Pow(1-0.001, 10_000)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PARAEscapeProb = %v, want %v", got, want)
	}
	if !(PARAEscapeProb(0.01, 1000) < PARAEscapeProb(0.001, 1000)) {
		t.Fatal("escape prob not decreasing in p")
	}
}

func TestPRACCappedHammer(t *testing.T) {
	if got := PRACCappedHammer(1024, 500); got != 500 {
		t.Fatalf("below cap: got %d, want 500", got)
	}
	if got := PRACCappedHammer(1024, 1_000_000); got != 2*1023+1 {
		t.Fatalf("above cap: got %d, want %d", got, 2*1023+1)
	}
	if got := PRACCappedHammer(1, 1_000_000); got != 1 {
		t.Fatalf("threshold 1: got %d, want 1", got)
	}
	if got := PRACCappedHammer(0, 100); got != 0 {
		t.Fatalf("invalid threshold: got %d, want 0", got)
	}
}
