package disturb

import (
	"math/rand"
	"testing"

	"memcon/internal/dram"
	"memcon/internal/faults"
)

func testGeometry() dram.Geometry {
	return dram.Geometry{
		Ranks: 1, ChipsPerRank: 1, BanksPerChip: 2,
		RowsPerBank: 256, ColsPerRow: 512, RedundantCols: 16,
	}
}

func newTestModel(t *testing.T, seed uint64, params Params) (*Model, *faults.Model, *dram.Module) {
	t.Helper()
	geom := testGeometry()
	scr := dram.NewScrambler(geom, seed, nil)
	fm, err := faults.NewModel(geom, scr, seed, faults.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(fm, seed, params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		t.Fatal(err)
	}
	return m, fm, mod
}

func fillRandom(t *testing.T, mod *dram.Module, seed int64) {
	t.Helper()
	g := mod.Geometry()
	rng := rand.New(rand.NewSource(seed))
	buf := dram.NewRow(g.ColsPerRow)
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			buf.Randomize(rng)
			if err := mod.WriteRow(dram.RowAddress{Bank: b, Row: r}, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.VictimRowFraction = -0.1 },
		func(p *Params) { p.VictimRowFraction = 1.1 },
		func(p *Params) { p.HCFirstFloor = 0 },
		func(p *Params) { p.HCFirstCeil = p.HCFirstFloor - 1 },
		func(p *Params) { p.CellsPerVictimMax = 0 },
		func(p *Params) { p.CellSpread = 1 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params accepted: %+v", i, p)
		}
	}
}

func TestPopulationDeterministic(t *testing.T) {
	p := DefaultParams()
	p.VictimRowFraction = 0.1
	a, _, _ := newTestModel(t, 7, p)
	b, _, _ := newTestModel(t, 7, p)
	for bank := 0; bank < testGeometry().BanksPerChip; bank++ {
		ra, ta := a.VictimRows(bank)
		rb, tb := b.VictimRows(bank)
		if len(ra) != len(rb) {
			t.Fatalf("bank %d: victim counts differ: %d vs %d", bank, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] || ta[i] != tb[i] {
				t.Fatalf("bank %d entry %d: (%d,%d) vs (%d,%d)", bank, i, ra[i], ta[i], rb[i], tb[i])
			}
		}
		if a.VictimCellCount(bank) != b.VictimCellCount(bank) {
			t.Fatalf("bank %d: cell counts differ", bank)
		}
	}
	c, _, _ := newTestModel(t, 8, p)
	ra, _ := a.VictimRows(0)
	rc, _ := c.VictimRows(0)
	same := len(ra) == len(rc)
	if same {
		for i := range ra {
			if ra[i] != rc[i] {
				same = false
				break
			}
		}
	}
	if same && len(ra) > 0 {
		t.Error("different seeds produced identical victim rows")
	}
}

// TestFlipsRequireHammerAboveThreshold: below every threshold nothing
// flips; above the ceiling every charged victim cell flips; counts are
// monotone in the hammer count (the blast-radius staircase).
func TestFlipsRequireHammerAboveThreshold(t *testing.T) {
	p := DefaultParams()
	p.VictimRowFraction = 0.2
	m, _, mod := newTestModel(t, 11, p)
	fillRandom(t, mod, 3)
	geom := m.Geometry()
	for b := 0; b < geom.BanksPerChip; b++ {
		rows, thrs := m.VictimRows(b)
		if len(rows) == 0 {
			t.Fatalf("bank %d: no victims sampled", b)
		}
		prevTotal := -1
		for _, hammer := range []int64{0, p.HCFirstFloor - 1, p.HCFirstFloor * 4, 1 << 40} {
			total := 0
			for r := 0; r < geom.RowsPerBank; r++ {
				a := dram.RowAddress{Bank: b, Row: r}
				w := faults.RowWindow{Hammer: hammer}
				cells := m.AppendFailures(nil, mod, a, w)
				total += len(cells)
				if len(cells) > 0 && !m.RowVulnerable(a, w) {
					t.Fatalf("bank %d row %d: cells flipped but RowVulnerable false", b, r)
				}
				if hammer < m.RowThreshold(a) && len(cells) > 0 {
					t.Fatalf("bank %d row %d: flips at hammer %d below threshold %d", b, r, hammer, m.RowThreshold(a))
				}
			}
			if total < prevTotal {
				t.Fatalf("bank %d: flipped cells not monotone in hammer count", b)
			}
			prevTotal = total
		}
		// Sanity: the minimum threshold row is vulnerable right at it.
		minRow, minThr := rows[0], thrs[0]
		for i := range rows {
			if thrs[i] < minThr {
				minRow, minThr = rows[i], thrs[i]
			}
		}
		a := dram.RowAddress{Bank: b, Row: int(minRow)}
		if !m.RowVulnerable(a, faults.RowWindow{Hammer: minThr}) {
			t.Fatalf("bank %d row %d: not vulnerable at its own threshold %d", b, minRow, minThr)
		}
	}
}

// TestFlipsAreContentConditional: a victim cell flips only while
// storing the charged value, so flipping the stored bit at a failing
// column must clear that column's failure.
func TestFlipsAreContentConditional(t *testing.T) {
	p := DefaultParams()
	p.VictimRowFraction = 0.2
	m, fm, mod := newTestModel(t, 13, p)
	fillRandom(t, mod, 9)
	geom := m.Geometry()
	hammer := faults.RowWindow{Hammer: 1 << 40}
	checked := 0
	for b := 0; b < geom.BanksPerChip; b++ {
		rows, _ := m.VictimRows(b)
		for _, r := range rows {
			a := dram.RowAddress{Bank: b, Row: int(r)}
			cells := m.AppendFailures(nil, mod, a, hammer)
			if len(cells) == 0 {
				continue
			}
			cb := int(fm.RowChargedBit(b, int(r)))
			row, err := mod.PeekRow(a)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range cells {
				if row.Bit(c) != cb {
					t.Fatalf("bank %d row %d col %d: flipped while storing discharged value", b, r, c)
				}
			}
			// Discharge the first failing cell; it must drop out.
			mut := row.Clone()
			mut.SetBit(cells[0], 1-cb)
			if err := mod.WriteRow(a, mut, 0); err != nil {
				t.Fatal(err)
			}
			after := m.AppendFailures(nil, mod, a, hammer)
			for _, c := range after {
				if c == cells[0] {
					t.Fatalf("bank %d row %d col %d: still flips after discharge", b, r, cells[0])
				}
			}
			if len(after) != len(cells)-1 {
				t.Fatalf("bank %d row %d: %d failures after discharge, want %d", b, r, len(after), len(cells)-1)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no failing victim rows to check; raise VictimRowFraction")
	}
}

// TestAggressorsArePhysicalNeighbors: aggressor resolution must match
// the retention model's adjacency view of the shared silicon.
func TestAggressorsArePhysicalNeighbors(t *testing.T) {
	p := DefaultParams()
	m, fm, _ := newTestModel(t, 17, p)
	geom := m.Geometry()
	for b := 0; b < geom.BanksPerChip; b++ {
		rows, _ := m.VictimRows(b)
		for _, r := range rows {
			a := dram.RowAddress{Bank: b, Row: int(r)}
			got := m.Aggressors(a)
			want := fm.NeighborSysRows(a)
			if len(got) != len(want) {
				t.Fatalf("bank %d row %d: %d aggressors, want %d", b, r, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("bank %d row %d: aggressor %d = %v, want %v", b, r, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCellThresholdsStaircase: per-row cell thresholds start at the
// row's threshold and escalate, bounding flips per hammer count.
func TestCellThresholdsStaircase(t *testing.T) {
	p := DefaultParams()
	p.VictimRowFraction = 0.2
	m, _, _ := newTestModel(t, 19, p)
	geom := m.Geometry()
	for b := 0; b < geom.BanksPerChip; b++ {
		rows, thrs := m.VictimRows(b)
		for i, r := range rows {
			a := dram.RowAddress{Bank: b, Row: int(r)}
			cells := m.CellThresholds(a)
			if len(cells) == 0 {
				t.Fatalf("bank %d row %d: victim row without cell thresholds", b, r)
			}
			min := cells[0]
			for _, thr := range cells {
				if thr < min {
					min = thr
				}
			}
			if min != thrs[i] || min != m.RowThreshold(a) {
				t.Fatalf("bank %d row %d: min cell threshold %d, row threshold %d/%d", b, r, min, thrs[i], m.RowThreshold(a))
			}
		}
	}
}
