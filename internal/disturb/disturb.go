// Package disturb models read-disturb (RowHammer) failures — the second
// failure mechanism of the fault stack, co-simulated with retention
// behind the faults.Mechanism interface. Where retention asks "how long
// was the row idle?", disturb asks "how often were the row's physical
// neighbours activated inside the refresh window?": repeated aggressor
// activations couple charge out of victim cells, and a victim flips once
// the window's hammer count exceeds its threshold (HCfirst in the
// RowHammer literature).
//
// The model shares the retention model's silicon: victim rows anchor to
// the same physical-row space (so aggressor→victim resolution reuses
// faults.Model.NeighborSysRows), and charge orientation comes from the
// same true-/anti-cell layout — a victim cell flips only while storing
// its charged value, which makes disturb failures content-dependent
// exactly like retention failures.
package disturb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"memcon/internal/dram"
	"memcon/internal/faults"
)

// neverFlips is the per-row threshold sentinel for rows without victim
// cells: no realizable hammer count reaches it.
const neverFlips = int64(math.MaxInt64)

// Params configures the read-disturb model.
type Params struct {
	// VictimRowFraction is the probability that a physical row holds at
	// least one hammer-susceptible cell. DDR3-era parts show on the
	// order of a percent of rows with below-spec thresholds.
	VictimRowFraction float64
	// HCFirstFloor is the minimum per-row hammer threshold (the most
	// susceptible victims). 22.4k single-sided activations is the
	// canonical worst case for DDR3; scaled silicon goes lower.
	HCFirstFloor int64
	// HCFirstCeil is the maximum sampled threshold; thresholds are drawn
	// log-uniformly in [floor, ceil], matching the heavy left tail of
	// measured HCfirst distributions.
	HCFirstCeil int64
	// CellsPerVictimMax bounds the victim cells per susceptible row.
	// Cells beyond the first take geometrically escalating thresholds,
	// which is what makes blast radius grow with the hammer count.
	CellsPerVictimMax int
	// CellSpread is the per-extra-cell threshold multiplier (>1): cell
	// k of a row flips at HCfirst*CellSpread^k.
	CellSpread float64
}

// DefaultParams returns a population calibrated for experiment-scale
// modules: roughly 2% of rows are victims with first-flip thresholds
// between 4k and 128k activations per refresh window.
func DefaultParams() Params {
	return Params{
		VictimRowFraction: 0.02,
		HCFirstFloor:      4_000,
		HCFirstCeil:       128_000,
		CellsPerVictimMax: 4,
		CellSpread:        1.8,
	}
}

// Validate reports an error for unusable parameters.
func (p Params) Validate() error {
	switch {
	case p.VictimRowFraction < 0 || p.VictimRowFraction > 1:
		return fmt.Errorf("disturb: VictimRowFraction %v outside [0,1]", p.VictimRowFraction)
	case p.HCFirstFloor <= 0:
		return fmt.Errorf("disturb: HCFirstFloor must be positive, got %d", p.HCFirstFloor)
	case p.HCFirstCeil < p.HCFirstFloor:
		return fmt.Errorf("disturb: HCFirstCeil %d below floor %d", p.HCFirstCeil, p.HCFirstFloor)
	case p.CellsPerVictimMax < 1:
		return fmt.Errorf("disturb: CellsPerVictimMax must be at least 1, got %d", p.CellsPerVictimMax)
	case p.CellSpread <= 1:
		return fmt.Errorf("disturb: CellSpread must exceed 1, got %v", p.CellSpread)
	}
	return nil
}

// victimCell is one hammer-susceptible cell: it flips once the window's
// hammer count exceeds its threshold, provided it currently stores the
// row's charged value.
type victimCell struct {
	sysCol    int32
	threshold int64
}

// bankVictims is one bank's victim population in CSR form over system
// rows: the victim cells of system row r are
// cells[offsets[r]:offsets[r+1]], sorted by system column.
type bankVictims struct {
	offsets []int32
	cells   []victimCell
	// thrBySysRow[r] is the minimum threshold over row r's victim cells
	// (neverFlips when the row has none): RowVulnerable is one compare.
	thrBySysRow []int64
	// victimRows lists, in ascending order, the system rows holding at
	// least one victim cell; victimThresholds is parallel to it.
	victimRows       []int32
	victimThresholds []int64
}

// Model is the read-disturb failure model for one chip. Like
// faults.Model it is deterministic in (silicon, seed, params), built
// eagerly, immutable afterwards, and safe for concurrent readers.
type Model struct {
	fm     *faults.Model
	geom   dram.Geometry
	seed   uint64
	params Params
	banks  []*bankVictims
}

// disturbStream decorrelates the victim sampling RNG from the retention
// model's weak-cell stream (which hashes the seed with the same
// golden-ratio constant): the two populations must be independent draws
// over the same silicon.
const disturbStream = 0x7d15a57ab1e5d00d

// NewModel samples the victim population over the silicon described by
// the retention model. The seed is hashed with a disturb-specific
// stream constant, so retention and disturb populations are independent
// even when built from the same chip seed.
func NewModel(fm *faults.Model, seed uint64, params Params) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	geom := fm.Geometry()
	m := &Model{
		fm:     fm,
		geom:   geom,
		seed:   seed,
		params: params,
		banks:  make([]*bankVictims, geom.BanksPerChip),
	}
	for b := 0; b < geom.BanksPerChip; b++ {
		m.banks[b] = m.buildBank(b)
	}
	return m, nil
}

// buildBank samples one bank's victims with the weak-cell machinery's
// RNG idiom (deterministic per-bank source, distinct placement,
// log-uniform severity draw) over PHYSICAL rows, then compiles them
// into system-row CSR form through the retention model's permutation.
func (m *Model) buildBank(b int) *bankVictims {
	rng := rand.New(rand.NewSource(int64(m.seed ^ disturbStream ^ uint64(b)*0x9e3779b97f4a7c15)))
	rows := m.geom.RowsPerBank
	n := int(math.Round(float64(rows) * m.params.VictimRowFraction))
	if n > rows {
		n = rows
	}
	seen := make(map[int]bool, n)
	physRows := make([]int, 0, n)
	for len(seen) < n {
		pr := rng.Intn(rows)
		if seen[pr] {
			continue
		}
		seen[pr] = true
		physRows = append(physRows, pr)
	}
	sort.Ints(physRows) // draw severities in a canonical row order

	lf := math.Log(float64(m.params.HCFirstFloor))
	lc := math.Log(float64(m.params.HCFirstCeil))
	type rowPop struct {
		sysRow int
		cells  []victimCell
	}
	pops := make([]rowPop, 0, len(physRows))
	for _, pr := range physRows {
		base := int64(math.Exp(lf + rng.Float64()*(lc-lf)))
		count := 1 + rng.Intn(m.params.CellsPerVictimMax)
		cells := make([]victimCell, 0, count)
		used := make(map[int32]bool, count)
		thr := float64(base)
		for k := 0; k < count; k++ {
			col := int32(rng.Intn(m.geom.ColsPerRow))
			if used[col] {
				continue // collision: the row just holds fewer cells
			}
			used[col] = true
			cells = append(cells, victimCell{sysCol: col, threshold: int64(thr)})
			thr *= m.params.CellSpread
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].sysCol < cells[j].sysCol })
		pops = append(pops, rowPop{sysRow: m.sysRowOfPhys(b, pr), cells: cells})
	}
	sort.Slice(pops, func(i, j int) bool { return pops[i].sysRow < pops[j].sysRow })

	bv := &bankVictims{
		offsets:     make([]int32, rows+1),
		thrBySysRow: make([]int64, rows),
	}
	for r := range bv.thrBySysRow {
		bv.thrBySysRow[r] = neverFlips
	}
	next := 0
	for _, p := range pops {
		for next <= p.sysRow {
			bv.offsets[next] = int32(len(bv.cells))
			next++
		}
		bv.cells = append(bv.cells, p.cells...)
		min := neverFlips
		for _, c := range p.cells {
			if c.threshold < min {
				min = c.threshold
			}
		}
		bv.thrBySysRow[p.sysRow] = min
		bv.victimRows = append(bv.victimRows, int32(p.sysRow))
		bv.victimThresholds = append(bv.victimThresholds, min)
	}
	for ; next <= rows; next++ {
		bv.offsets[next] = int32(len(bv.cells))
	}
	return bv
}

// sysRowOfPhys inverts the retention model's row permutation for one
// physical row (the accessor exposes the forward direction).
func (m *Model) sysRowOfPhys(bank, physRow int) int {
	// PhysRowOfSys is a bijection per bank; invert by direct walk once
	// at build time (queries never take this path).
	for r := 0; r < m.geom.RowsPerBank; r++ {
		if m.fm.PhysRowOfSys(bank, r) == physRow {
			return r
		}
	}
	panic("disturb: physical row outside permutation")
}

// Model implements faults.Mechanism: failures depend on the window's
// hammer count and the stored content's charge state; idle time is
// irrelevant to disturbance.
var _ faults.Mechanism = (*Model)(nil)

// MechanismName implements faults.Mechanism.
func (m *Model) MechanismName() string { return "disturb" }

// AppendFailures implements faults.Mechanism: it appends the system
// columns of victim cells whose threshold the window's hammer count
// exceeds AND that currently store the row's charged value (discharged
// cells have no charge to couple away). Columns are appended in
// ascending system-column order, deterministically.
func (m *Model) AppendFailures(dst []int, mod *dram.Module, a dram.RowAddress, w faults.RowWindow) []int {
	bv := m.banks[a.Bank]
	if w.Hammer < bv.thrBySysRow[a.Row] {
		return dst
	}
	row := mod.RowRef(a)
	cb := m.fm.RowChargedBit(a.Bank, a.Row)
	for i := bv.offsets[a.Row]; i < bv.offsets[a.Row+1]; i++ {
		c := &bv.cells[i]
		if w.Hammer < c.threshold {
			continue
		}
		if uint8(row.Bit(int(c.sysCol))) != cb {
			continue // discharged: nothing to disturb
		}
		dst = append(dst, int(c.sysCol))
	}
	return dst
}

// RowVulnerable implements faults.Mechanism via the per-row minimum
// threshold: one comparison, no module access.
func (m *Model) RowVulnerable(a dram.RowAddress, w faults.RowWindow) bool {
	return w.Hammer >= m.banks[a.Bank].thrBySysRow[a.Row]
}

// VictimRows returns, in ascending system-row order, the rows of the
// bank holding at least one victim cell, together with each row's
// first-flip threshold. Both slices are owned by the model and must not
// be modified.
func (m *Model) VictimRows(bank int) ([]int32, []int64) {
	bv := m.banks[bank]
	return bv.victimRows, bv.victimThresholds
}

// RowThreshold returns the first-flip threshold of a system row
// (neverFlips-sized when the row holds no victim cells; use VictimRows
// to enumerate finite thresholds).
func (m *Model) RowThreshold(a dram.RowAddress) int64 {
	return m.banks[a.Bank].thrBySysRow[a.Row]
}

// CellThresholds returns the per-cell flip thresholds of a system row
// in ascending system-column order — the row's blast-radius staircase:
// the number of entries at or below a hammer count is the row's maximum
// flipped-cell count at that count.
func (m *Model) CellThresholds(a dram.RowAddress) []int64 {
	bv := m.banks[a.Bank]
	var out []int64
	for i := bv.offsets[a.Row]; i < bv.offsets[a.Row+1]; i++ {
		out = append(out, bv.cells[i].threshold)
	}
	return out
}

// VictimCellCount returns the number of victim cells in the bank.
func (m *Model) VictimCellCount(bank int) int { return len(m.banks[bank].cells) }

// Aggressors returns the system rows whose activations hammer the given
// victim row — its physical neighbours, resolved through the retention
// model's permutation tables (the silicon is shared, so adjacency is
// identical for both mechanisms).
func (m *Model) Aggressors(a dram.RowAddress) []dram.RowAddress {
	return m.fm.NeighborSysRows(a)
}

// Geometry returns the model's geometry.
func (m *Model) Geometry() dram.Geometry { return m.geom }
