package profiler

import (
	"testing"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/softmc"
)

func testGeometry() dram.Geometry {
	return dram.Geometry{
		Ranks:         1,
		ChipsPerRank:  1,
		BanksPerChip:  2,
		RowsPerBank:   512,
		ColsPerRow:    512,
		RedundantCols: 16,
	}
}

func newChip(t *testing.T, seed uint64, weakFraction float64) (*softmc.Tester, *faults.Model, dram.Geometry) {
	t.Helper()
	geom := testGeometry()
	scr := dram.NewScrambler(geom, seed, nil)
	params := faults.ParamsForRefresh(dram.RefreshWindowDefault)
	if weakFraction > 0 {
		params.WeakCellFraction = weakFraction
	}
	model, err := faults.NewModel(geom, scr, seed, params)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := softmc.NewTester(mod, model)
	if err != nil {
		t.Fatal(err)
	}
	return tester, model, geom
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Rounds: 0, TargetIdle: 1, Guardband: 1},
		{Rounds: 1, TargetIdle: 0, Guardband: 1},
		{Rounds: 1, TargetIdle: 1, Guardband: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	tester, _, geom := newChip(t, 1, 0)
	if _, err := Run(tester, geom, Config{}); err == nil {
		t.Error("Run accepted invalid config")
	}
}

func TestRunFindsWeakRows(t *testing.T) {
	tester, _, geom := newChip(t, 3, 5e-3)
	p, err := Run(tester, geom, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Runs != 2*8 {
		t.Errorf("runs = %d, want 16 (2 rounds x 8 patterns)", p.Runs)
	}
	if len(p.WeakRows) == 0 {
		t.Fatal("profile found no weak rows with a dense weak-cell population")
	}
	frac := p.WeakRowFraction()
	if frac <= 0 || frac > 0.9 {
		t.Errorf("weak-row fraction = %v, implausible", frac)
	}
	// Contains must agree with the map.
	for idx := range p.WeakRows {
		if !p.Contains(geom.AddressOfIndex(idx)) {
			t.Fatalf("Contains disagrees with WeakRows for row %d", idx)
		}
	}
}

func TestGuardbandCatchesMore(t *testing.T) {
	base := func(guardband float64) int {
		tester, _, geom := newChip(t, 5, 5e-3)
		cfg := DefaultConfig()
		cfg.Guardband = guardband
		p, err := Run(tester, geom, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return len(p.WeakRows)
	}
	tight := base(1.0)
	wide := base(2.0)
	if wide < tight {
		t.Errorf("guardband 2.0 found %d rows, fewer than %d at 1.0", wide, tight)
	}
}

// The paper's core argument: a pattern-based profile misses rows that
// real content can fail, because pattern adjacency in system address
// space does not match physical adjacency.
func TestProfileHasEscapes(t *testing.T) {
	tester, model, geom := newChip(t, 7, 5e-3)
	cfg := DefaultConfig()
	cfg.Guardband = 1.0 // no guardband: worst case for the profiler
	p, err := Run(tester, geom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := Escapes(p, model, cfg.TargetIdle)
	if rep.TrueWeakRows == 0 {
		t.Fatal("ground truth has no weak rows; test is vacuous")
	}
	if rep.Escapes == 0 {
		t.Skip("profiler caught everything for this seed; escapes are probabilistic")
	}
	if rep.EscapeRate() <= 0 || rep.EscapeRate() > 1 {
		t.Errorf("escape rate = %v outside (0,1]", rep.EscapeRate())
	}
	t.Logf("profiled %d rows, ground truth %d, escapes %d (%.1f%%), false alarms %d",
		rep.ProfiledRows, rep.TrueWeakRows, rep.Escapes, 100*rep.EscapeRate(), rep.FalseAlarms)
}

func TestEscapeReportZeroTruth(t *testing.T) {
	r := EscapeReport{}
	if r.EscapeRate() != 0 {
		t.Error("zero-truth escape rate should be 0")
	}
}

func TestCustomPatterns(t *testing.T) {
	tester, _, geom := newChip(t, 9, 5e-3)
	cfg := DefaultConfig()
	cfg.Patterns = []softmc.Pattern{softmc.SolidPattern(0)}
	cfg.Rounds = 1
	p, err := Run(tester, geom, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Runs != 1 {
		t.Errorf("runs = %d, want 1", p.Runs)
	}
}
