// Package profiler implements the manufacturing-style retention
// profiling pipeline that profile-based refresh schemes (RAIDR, AVATAR,
// REAPER — the paper's §6.3 baselines) depend on: fill the module with
// test patterns, hold it idle at an extended refresh interval, read
// back, and accumulate the set of rows that ever failed. Repeating over
// rounds and patterns, optionally at a longer-than-target idle time
// (guardbanding, as REAPER advocates), approaches — but never provably
// reaches — the set of rows that can fail with ANY content.
//
// This package exists to make the paper's central argument concrete and
// measurable: because the profiler only sees system addresses while
// failures are wired to scrambled physical neighbourhoods, a
// pattern-based profile can MISS rows that program content later fails
// (escapes), which is exactly why MEMCON tests the actual content
// instead.
package profiler

import (
	"fmt"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/softmc"
)

// Config parameterizes a profiling campaign.
type Config struct {
	// Patterns is the test-pattern suite (defaults to the 8 classic
	// manufacturing patterns when nil).
	Patterns []softmc.Pattern
	// Rounds repeats the whole suite to catch intermittent failures.
	Rounds int
	// TargetIdle is the retention window the profile must guarantee
	// (e.g. the LO-REF interval the profiled rows will NOT get).
	TargetIdle dram.Nanoseconds
	// Guardband scales the profiling idle time beyond the target
	// (REAPER: profile at aggressive conditions). 1.0 profiles exactly
	// at the target.
	Guardband float64
}

// DefaultConfig profiles with the classic patterns, 2 rounds, and a
// 25% guardband over the 64 ms LO-REF window.
func DefaultConfig() Config {
	return Config{
		Rounds:     2,
		TargetIdle: dram.RefreshWindowDefault,
		Guardband:  1.25,
	}
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	if c.Rounds < 1 {
		return fmt.Errorf("profiler: rounds must be >= 1, got %d", c.Rounds)
	}
	if c.TargetIdle <= 0 {
		return fmt.Errorf("profiler: target idle must be positive, got %d", c.TargetIdle)
	}
	if c.Guardband < 1 {
		return fmt.Errorf("profiler: guardband must be >= 1, got %v", c.Guardband)
	}
	return nil
}

// Profile is the outcome of a campaign: the set of rows observed to
// fail under at least one (pattern, round).
type Profile struct {
	// WeakRows maps row index (Geometry.RowIndex) to the number of
	// (pattern, round) runs in which it failed.
	WeakRows map[int]int
	// Runs is the number of (pattern, round) runs executed.
	Runs int
	// Geometry of the profiled module.
	Geometry dram.Geometry
	// IdleUsed is the profiling idle time after guardbanding.
	IdleUsed dram.Nanoseconds
}

// WeakRowFraction returns the profiled weak-row fraction — the RAIDR
// input parameter.
func (p *Profile) WeakRowFraction() float64 {
	return float64(len(p.WeakRows)) / float64(p.Geometry.TotalRows())
}

// Contains reports whether the profile flagged the row.
func (p *Profile) Contains(a dram.RowAddress) bool {
	_, ok := p.WeakRows[p.Geometry.RowIndex(a)]
	return ok
}

// Run executes the profiling campaign on a chip.
func Run(tester *softmc.Tester, geom dram.Geometry, cfg Config) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if patterns == nil {
		patterns = softmc.StandardPatterns(8)
	}
	idle := dram.Nanoseconds(float64(cfg.TargetIdle) * cfg.Guardband)
	p := &Profile{
		WeakRows: make(map[int]int),
		Geometry: geom,
		IdleUsed: idle,
	}
	for round := 0; round < cfg.Rounds; round++ {
		for _, pat := range patterns {
			fails, err := tester.RunPattern(pat, idle)
			if err != nil {
				return nil, fmt.Errorf("profiler: round %d pattern %s: %w", round, pat.Name, err)
			}
			for _, f := range fails {
				p.WeakRows[geom.RowIndex(f.Addr)]++
			}
			p.Runs++
		}
	}
	return p, nil
}

// EscapeReport quantifies profile incompleteness against ground truth —
// the paper's argument that system-level pattern profiling cannot be
// exhaustive.
type EscapeReport struct {
	// TrueWeakRows is the number of rows that CAN fail with some
	// content at the target idle (silicon ground truth).
	TrueWeakRows int
	// ProfiledRows is the number of rows the campaign flagged.
	ProfiledRows int
	// Escapes is the number of truly weak rows the profile missed.
	Escapes int
	// FalseAlarms is the number of flagged rows that are not truly weak
	// at the target idle (over-profiling from the guardband).
	FalseAlarms int
}

// EscapeRate returns the fraction of truly weak rows missed.
func (r EscapeReport) EscapeRate() float64 {
	if r.TrueWeakRows == 0 {
		return 0
	}
	return float64(r.Escapes) / float64(r.TrueWeakRows)
}

// Escapes compares a profile against the fault model's ground truth at
// the target idle time.
func Escapes(p *Profile, model *faults.Model, targetIdle dram.Nanoseconds) EscapeReport {
	g := p.Geometry
	var rep EscapeReport
	rep.ProfiledRows = len(p.WeakRows)
	for b := 0; b < g.BanksPerChip; b++ {
		for r := 0; r < g.RowsPerBank; r++ {
			a := dram.RowAddress{Bank: b, Row: r}
			truly := model.RowCanFail(a, targetIdle)
			flagged := p.Contains(a)
			switch {
			case truly && !flagged:
				rep.TrueWeakRows++
				rep.Escapes++
			case truly && flagged:
				rep.TrueWeakRows++
			case !truly && flagged:
				rep.FalseAlarms++
			}
		}
	}
	return rep
}
