package obs

// Metrics is the standard event-to-metric aggregation: an Observer
// that folds the structured event stream into a Registry. Every update
// it performs is commutative, so the stable (non-volatile) metrics it
// produces are identical for any worker count — the property the
// -metrics golden tests pin.
type Metrics struct {
	reg *Registry

	writes          *Counter
	predictions     *Counter
	testsQueued     *Counter
	testsPassed     *Counter
	testsFailed     *Counter
	testsAborted    *Counter
	testsRetested   *Counter
	toLo            *Counter
	toHi            *Counter
	rateSets        *Counter
	prilInserts     *Counter
	prilEvicts      *Counter
	prilDiscards    *Counter
	remapHits       *Counter
	remapInstalls   *Counter
	silentWrites    *Counter
	neighborRetests *Counter
	rowFailures     *Counter
	failingCells    *Counter
	weakRows        *Counter
	runs            *Counter
	rowActivations  *Counter
	testActivations *Counter
	mitigationOps   *Counter
	disturbRows     *Counter
	disturbCells    *Counter

	peakBuffer *Gauge
	runWallNs  *Gauge

	writeIntervalUs *Histogram
	loDwellUs       *Histogram
}

// NewMetrics builds the aggregation over reg, eagerly registering the
// full metric set so sink output lists every metric even when zero.
func NewMetrics(reg *Registry) *Metrics {
	return &Metrics{
		reg: reg,

		writes:          reg.Counter("memcon_writes_total", "program writes observed by the engine"),
		predictions:     reg.Counter("memcon_predictions_total", "pages PRIL predicted idle long enough to test"),
		testsQueued:     reg.Counter("memcon_tests_queued_total", "online tests started"),
		testsPassed:     reg.Counter("memcon_tests_passed_total", "online tests completed clean (row moved to LO-REF)"),
		testsFailed:     reg.Counter("memcon_tests_failed_total", "online tests that found a data-dependent failure"),
		testsAborted:    reg.Counter("memcon_tests_aborted_total", "online tests aborted by an intervening write"),
		testsRetested:   reg.Counter("memcon_tests_voided_total", "online tests voided by a neighbour re-test"),
		toLo:            reg.Counter("memcon_refresh_to_lo_total", "row transitions HI-REF to LO-REF"),
		toHi:            reg.Counter("memcon_refresh_to_hi_total", "row transitions LO-REF to HI-REF"),
		rateSets:        reg.Counter("memcon_refresh_rate_sets_total", "per-row refresh interval switches (refresh.Counter)"),
		prilInserts:     reg.Counter("memcon_pril_inserts_total", "pages admitted into a PRIL write buffer"),
		prilEvicts:      reg.Counter("memcon_pril_evictions_total", "pages evicted from a PRIL write buffer"),
		prilDiscards:    reg.Counter("memcon_pril_discards_total", "pages dropped because the PRIL write buffer was full"),
		remapHits:       reg.Counter("memcon_remap_hits_total", "tests short-circuited by an already-remapped row"),
		remapInstalls:   reg.Counter("memcon_remap_installs_total", "failing rows newly remapped to screened spares"),
		silentWrites:    reg.Counter("memcon_silent_writes_total", "writes recognized as storing the current content"),
		neighborRetests: reg.Counter("memcon_neighbor_retests_total", "neighbour re-tests initiated"),
		rowFailures:     reg.Counter("memcon_row_failures_total", "failing rows found by characterization read-backs"),
		failingCells:    reg.Counter("memcon_failing_cells_total", "failing cells found by characterization read-backs"),
		weakRows:        reg.Counter("memcon_weak_rows_total", "rows the all-pattern scan classified as weak"),
		runs:            reg.Counter("memcon_engine_runs_total", "engine runs completed"),
		rowActivations:  reg.Counter("memcon_row_activations_total", "tracked ACT commands (row misses plus test row cycles)"),
		testActivations: reg.Counter("memcon_test_activations_total", "ACT commands attributable to injected test traffic"),
		mitigationOps:   reg.Counter("memcon_mitigation_ops_total", "extra neighbour refreshes issued by RowHammer mitigation"),
		disturbRows:     reg.Counter("memcon_disturb_rows_total", "victim rows with read-disturb flips found by a census"),
		disturbCells:    reg.Counter("memcon_disturb_cells_total", "cells flipped by read disturb found by a census"),

		peakBuffer: reg.Gauge("memcon_pril_peak_buffer", "largest PRIL write-buffer occupancy seen", false),
		runWallNs:  reg.Gauge("memcon_run_wall_ns", "accumulated wall-clock engine run time (schedule-dependent)", true),

		writeIntervalUs: reg.Histogram("memcon_write_interval_us",
			"interval between consecutive writes to the same page (µs)", 1000, 16),
		loDwellUs: reg.Histogram("memcon_loref_dwell_us",
			"time rows spent at LO-REF before being written back to HI-REF (µs)", 1000, 16),
	}
}

// OnEvent implements Observer.
func (m *Metrics) OnEvent(e Event) {
	switch e.Kind {
	case KindWrite:
		m.writes.Inc()
		if e.Aux >= 0 {
			m.writeIntervalUs.Observe(e.Aux)
		}
	case KindPredict:
		m.predictions.Inc()
	case KindTestQueued:
		m.testsQueued.Inc()
	case KindTestDrained:
		if e.Aux != 0 {
			m.testsPassed.Inc()
		} else {
			m.testsFailed.Inc()
		}
	case KindTestAborted:
		if e.Aux != 0 {
			m.testsRetested.Inc()
		} else {
			m.testsAborted.Inc()
		}
	case KindRefreshToLo:
		m.toLo.Inc()
	case KindRefreshToHi:
		m.toHi.Inc()
		if e.Aux >= 0 {
			m.loDwellUs.Observe(e.Aux)
		}
	case KindRefreshRateSet:
		m.rateSets.Inc()
	case KindPrilInsert:
		m.prilInserts.Inc()
		m.peakBuffer.Max(float64(e.Aux))
	case KindPrilEvict:
		m.prilEvicts.Inc()
	case KindPrilDiscard:
		m.prilDiscards.Inc()
	case KindRemapHit:
		if e.Aux != 0 {
			m.remapInstalls.Inc()
		} else {
			m.remapHits.Inc()
		}
	case KindSilentWrite:
		m.silentWrites.Inc()
	case KindNeighborRetest:
		m.neighborRetests.Inc()
	case KindRowFailure:
		m.rowFailures.Inc()
		m.failingCells.Add(e.Aux)
	case KindRowWeak:
		m.weakRows.Inc()
	case KindRunDone:
		m.runs.Inc()
		m.runWallNs.Add(float64(e.Aux))
	case KindRowActivation:
		m.rowActivations.Add(e.Aux)
	case KindTestActivation:
		m.testActivations.Add(e.Aux)
	case KindMitigation:
		m.mitigationOps.Add(e.Aux)
	case KindDisturbFailure:
		m.disturbRows.Inc()
		m.disturbCells.Add(e.Aux)
	}
}

// Registry returns the registry the observer aggregates into.
func (m *Metrics) Registry() *Registry { return m.reg }
