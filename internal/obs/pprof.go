package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/trace"
)

// StartPprof serves the net/http/pprof profile endpoints on addr
// (e.g. "localhost:6060") until the returned stop function is called.
// It returns the bound address so callers can log it (":0" picks a
// free port).
func StartPprof(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close.
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// StartTrace writes a runtime execution trace to path until the
// returned stop function is called. Inspect the capture with
// `go tool trace <path>`.
func StartTrace(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace output: %w", err)
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: starting runtime trace: %w", err)
	}
	return func() error {
		trace.Stop()
		return f.Close()
	}, nil
}
