package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindNamesComplete(t *testing.T) {
	for _, k := range Kinds() {
		if name := k.String(); name == "" || strings.HasPrefix(name, "kind(") {
			t.Errorf("kind %d has no wire name", k)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("out-of-range kind not rendered numerically")
	}
}

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := reg.Counter("c_total", "other"); again != c {
		t.Errorf("re-registering a counter returned a different instance")
	}

	g := reg.Gauge("g", "help", false)
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}
	g.Max(3)
	if got := g.Value(); got != 4 {
		t.Errorf("Max lowered the gauge to %v", got)
	}
	g.Max(10)
	if got := g.Value(); got != 10 {
		t.Errorf("Max did not raise the gauge: %v", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_us", "help", 1000, 4) // buckets: [1000,2000) ... [8000,16000)
	h.Observe(-5)                               // underflow, weight 0
	h.Observe(500)                              // underflow
	h.Observe(1000)                             // bucket 0
	h.Observe(1999)                             // bucket 0
	h.Observe(4000)                             // bucket 2
	h.Observe(16000)                            // overflow

	if got := h.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	wantSum := int64(500 + 1000 + 1999 + 4000 + 16000)
	if got := h.Sum(); got != wantSum {
		t.Errorf("Sum = %d, want %d", got, wantSum)
	}

	snap := h.Snapshot()
	if snap.Total() != 6 {
		t.Errorf("snapshot total = %d, want 6", snap.Total())
	}
	if snap.Underflow() != 2 || snap.Overflow() != 1 {
		t.Errorf("snapshot under/over = %d/%d, want 2/1", snap.Underflow(), snap.Overflow())
	}
	if snap.Count(0) != 2 || snap.Count(1) != 0 || snap.Count(2) != 1 {
		t.Errorf("snapshot buckets = %d,%d,%d, want 2,0,1", snap.Count(0), snap.Count(1), snap.Count(2))
	}
}

// TestHistogramConcurrentDeterminism verifies the aggregation property
// the -metrics goldens rely on: the same multiset of observations
// yields identical totals regardless of how threads interleave.
func TestHistogramConcurrentDeterminism(t *testing.T) {
	serial := NewRegistry().Histogram("h", "", 1000, 16)
	concurrent := NewRegistry().Histogram("h", "", 1000, 16)
	values := make([]int64, 0, 4096)
	for i := 0; i < 4096; i++ {
		values = append(values, int64(i*131)%100000)
	}
	for _, v := range values {
		serial.Observe(v)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(values); i += 8 {
				concurrent.Observe(values[i])
			}
		}()
	}
	wg.Wait()
	if serial.Count() != concurrent.Count() || serial.Sum() != concurrent.Sum() {
		t.Errorf("concurrent totals differ: count %d vs %d, sum %d vs %d",
			serial.Count(), concurrent.Count(), serial.Sum(), concurrent.Sum())
	}
	for i := 0; i < 16; i++ {
		if serial.Snapshot().Count(i) != concurrent.Snapshot().Count(i) {
			t.Errorf("bucket %d differs", i)
		}
	}
}

func TestMetricsObserverMapping(t *testing.T) {
	reg := NewRegistry()
	m := NewMetrics(reg)
	events := []Event{
		{Kind: KindWrite, Page: 1, At: 0, Aux: -1},
		{Kind: KindWrite, Page: 1, At: 5000, Aux: 5000},
		{Kind: KindPredict, Page: 1, At: 1024},
		{Kind: KindTestQueued, Page: 1, At: 1024, Aux: 65536},
		{Kind: KindTestDrained, Page: 1, At: 65536, Aux: 1},
		{Kind: KindTestDrained, Page: 2, At: 65536, Aux: 0},
		{Kind: KindTestAborted, Page: 1, At: 70000, Aux: 0},
		{Kind: KindTestAborted, Page: 1, At: 70001, Aux: 1},
		{Kind: KindRefreshToLo, Page: 1, At: 65536},
		{Kind: KindRefreshToHi, Page: 1, At: 90000, Aux: 24464},
		{Kind: KindPrilInsert, Page: 1, At: 0, Aux: 7},
		{Kind: KindPrilEvict, Page: 1, At: 0, Aux: 0},
		{Kind: KindPrilDiscard, Page: 3, At: 0, Aux: 4000},
		{Kind: KindRemapHit, Page: 4, At: 0, Aux: 0},
		{Kind: KindRemapHit, Page: 4, At: 0, Aux: 1},
		{Kind: KindSilentWrite, Page: 5, At: 0},
		{Kind: KindNeighborRetest, Page: 6, At: 0, Aux: 7},
		{Kind: KindRowFailure, Page: 7, At: 0, Aux: 3},
		{Kind: KindRowWeak, Page: 8, At: 0},
		{Kind: KindRefreshRateSet, Page: 9, At: 0, Aux: 64_000_000},
		{Kind: KindRunDone, At: 100000, Aux: 12345},
	}
	for _, e := range events {
		m.OnEvent(e)
	}
	checks := map[string]int64{
		"memcon_writes_total":            2,
		"memcon_predictions_total":       1,
		"memcon_tests_queued_total":      1,
		"memcon_tests_passed_total":      1,
		"memcon_tests_failed_total":      1,
		"memcon_tests_aborted_total":     1,
		"memcon_tests_voided_total":      1,
		"memcon_refresh_to_lo_total":     1,
		"memcon_refresh_to_hi_total":     1,
		"memcon_refresh_rate_sets_total": 1,
		"memcon_pril_inserts_total":      1,
		"memcon_pril_evictions_total":    1,
		"memcon_pril_discards_total":     1,
		"memcon_remap_hits_total":        1,
		"memcon_remap_installs_total":    1,
		"memcon_silent_writes_total":     1,
		"memcon_neighbor_retests_total":  1,
		"memcon_row_failures_total":      1,
		"memcon_failing_cells_total":     3,
		"memcon_weak_rows_total":         1,
		"memcon_engine_runs_total":       1,
	}
	for name, want := range checks {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("memcon_pril_peak_buffer", "", false).Value(); got != 7 {
		t.Errorf("peak buffer = %v, want 7", got)
	}
	if got := m.writeIntervalUs.Count(); got != 1 {
		t.Errorf("write-interval observations = %d, want 1 (first write must not count)", got)
	}
	if got := m.loDwellUs.Sum(); got != 24464 {
		t.Errorf("dwell sum = %d, want 24464", got)
	}
}

func TestTeeAndRecorder(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Errorf("Tee of nils must be nil")
	}
	var a, b Recorder
	tee := Tee(&a, nil, &b)
	tee.OnEvent(Event{Kind: KindWrite, Page: 1})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("tee did not fan out: %d/%d", len(a.Events()), len(b.Events()))
	}
	single := Tee(nil, &a)
	if single != Observer(&a) {
		t.Errorf("Tee of one observer must return it unchanged")
	}
	a.Reset()
	if len(a.Events()) != 0 {
		t.Errorf("Reset left %d events", len(a.Events()))
	}
}

func TestJSONLines(t *testing.T) {
	var sb strings.Builder
	j := NewJSONLines(&sb)
	j.OnEvent(Event{Kind: KindWrite, Page: 3, At: 1024, Aux: -1})
	j.OnEvent(Event{Kind: KindTestQueued, Page: 3, At: 2048, Aux: 65536})
	want := `{"kind":"write","page":3,"at":1024,"aux":-1}
{"kind":"test_queued","page":3,"at":2048,"aux":65536}
`
	if sb.String() != want {
		t.Errorf("JSON lines:\n%s\nwant:\n%s", sb.String(), want)
	}
	if j.Err() != nil {
		t.Errorf("unexpected sink error: %v", j.Err())
	}
}

func TestPhaseTimer(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	pt := NewPhaseTimer(clock)
	stop := pt.Start("sweep")
	now = now.Add(250 * time.Millisecond)
	stop()
	pt.Record("sweep", 50*time.Millisecond)
	pt.Record("render", time.Second)

	phases := pt.Phases()
	if len(phases) != 2 || phases[0].Name != "sweep" || phases[1].Name != "render" {
		t.Fatalf("phases = %+v", phases)
	}
	if phases[0].WallNs != (300 * time.Millisecond).Nanoseconds() {
		t.Errorf("sweep wall = %d", phases[0].WallNs)
	}
	if !strings.Contains(pt.String(), "render") {
		t.Errorf("phase table missing phase:\n%s", pt.String())
	}

	reg := NewRegistry()
	pt.ExportTo(reg)
	g := reg.Gauge("phase_sweep_wall_ns", "", true)
	if g.Value() != 3e8 {
		t.Errorf("exported phase gauge = %v", g.Value())
	}
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "phase_sweep_wall_ns") {
		t.Errorf("volatile phase gauge leaked into JSON output:\n%s", sb.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"fig14":     "fig14",
		"exp fig-3": "exp_fig_3",
		"":          "_",
		"9lives":    "_lives",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
