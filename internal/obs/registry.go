package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"memcon/internal/stats"
)

// Registry holds named metrics. All update operations are commutative
// (atomic adds, monotonic maxima, integer-domain histogram counts), so
// aggregates collected from a parallel sweep are identical for any
// worker count. Metrics registered as volatile carry values that ARE
// schedule- or wall-clock-dependent (phase timings, worker
// utilization); the machine-readable sinks skip them so their output
// stays byte-identical across worker counts.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Metric names should be Prometheus-compatible
// ([a-zA-Z_][a-zA-Z0-9_]*).
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. volatile marks the gauge as schedule-dependent: the JSON and
// Prometheus sinks skip it, only the human table shows it.
func (r *Registry) Gauge(name, help string, volatile bool) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{help: help, volatile: volatile}
	r.gauges[name] = g
	return g
}

// Histogram returns the log-scale histogram registered under name,
// creating it on first use with the given base (lower edge of the
// first power-of-two bucket) and bucket count. Observations are
// integers (microseconds, nanoseconds, counts), which keeps the
// per-bucket sums exact and therefore order-independent.
func (r *Registry) Histogram(name, help string, base int64, buckets int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := newHistogram(help, base, buckets)
	r.hists[name] = h
	return h
}

// names returns the sorted metric names of one map.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v    atomic.Int64
	help string
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric supporting last-write, additive and
// maximum updates. Only Add and Max are order-independent; Set is for
// single-writer use (end-of-run exports).
type Gauge struct {
	bits     atomic.Uint64
	help     string
	volatile bool
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Max atomically raises the gauge to v when v is larger.
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram buckets positive integer observations into power-of-two
// bins, mirroring stats.LogHistogram (which it delegates to for
// rendering and analysis via Snapshot). Counts and per-bucket sums are
// int64s updated atomically, so concurrent observation streams
// aggregate to the same totals in any order — the property that makes
// -metrics output worker-count-invariant.
type Histogram struct {
	base    int64
	buckets int
	help    string

	counts []int64 // atomic
	sums   []int64 // atomic; sum of observed values per bucket
	under  atomic.Int64
	underW atomic.Int64
	over   atomic.Int64
	overW  atomic.Int64
}

func newHistogram(help string, base int64, buckets int) *Histogram {
	if base <= 0 || buckets < 1 {
		panic("obs: invalid histogram parameters")
	}
	return &Histogram{
		base:    base,
		buckets: buckets,
		help:    help,
		counts:  make([]int64, buckets),
		sums:    make([]int64, buckets),
	}
}

// Observe records one value. Non-positive values count as underflow
// with zero weight, matching stats.LogHistogram.Add.
func (h *Histogram) Observe(v int64) {
	if v < h.base {
		h.under.Add(1)
		if v > 0 {
			h.underW.Add(v)
		}
		return
	}
	idx := int(math.Floor(math.Log2(float64(v) / float64(h.base))))
	if idx >= h.buckets {
		h.over.Add(1)
		h.overW.Add(v)
		return
	}
	atomic.AddInt64(&h.counts[idx], 1)
	atomic.AddInt64(&h.sums[idx], v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	n := h.under.Load() + h.over.Load()
	for i := range h.counts {
		n += atomic.LoadInt64(&h.counts[i])
	}
	return n
}

// Sum returns the exact integer sum of all positive observations.
func (h *Histogram) Sum() int64 {
	s := h.underW.Load() + h.overW.Load()
	for i := range h.sums {
		s += atomic.LoadInt64(&h.sums[i])
	}
	return s
}

// BucketLow returns the inclusive lower edge of regular bucket i.
func (h *Histogram) BucketLow(i int) int64 { return h.base << uint(i) }

// Snapshot materializes the histogram as a stats.LogHistogram, reusing
// its rendering and fraction analysis (String, FractionAtOrAbove,
// WeightFractionAtOrAbove). The snapshot is a consistent-enough copy
// for reporting; take it after the producing run has finished for an
// exact one.
func (h *Histogram) Snapshot() *stats.LogHistogram {
	lh := stats.NewLogHistogram(float64(h.base), h.buckets)
	lh.AddUnderflow(h.under.Load(), float64(h.underW.Load()))
	for i := 0; i < h.buckets; i++ {
		lh.AddBucket(i, atomic.LoadInt64(&h.counts[i]), float64(atomic.LoadInt64(&h.sums[i])))
	}
	lh.AddOverflow(h.over.Load(), float64(h.overW.Load()))
	return lh
}
