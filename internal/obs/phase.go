package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// PhaseTimer records named wall-clock phases of a run (per-experiment
// sweep time, trace generation, rendering). Phase durations are
// inherently schedule-dependent, so ExportTo registers them as
// volatile gauges: visible in the human table, excluded from the
// byte-stable JSON/Prometheus sinks.
type PhaseTimer struct {
	mu    sync.Mutex
	clock func() time.Time
	names []string
	byID  map[string]int
	nanos []int64
}

// NewPhaseTimer builds a timer; a nil clock selects time.Now. Tests
// inject a fake clock to make durations deterministic.
func NewPhaseTimer(clock func() time.Time) *PhaseTimer {
	if clock == nil {
		clock = time.Now
	}
	return &PhaseTimer{clock: clock, byID: make(map[string]int)}
}

// Start begins timing the named phase and returns the stop function.
// Re-entering a phase name accumulates into the same bucket.
func (t *PhaseTimer) Start(name string) func() {
	begin := t.clock()
	return func() { t.Record(name, t.clock().Sub(begin)) }
}

// Record adds d to the named phase.
func (t *PhaseTimer) Record(name string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, ok := t.byID[name]
	if !ok {
		idx = len(t.names)
		t.byID[name] = idx
		t.names = append(t.names, name)
		t.nanos = append(t.nanos, 0)
	}
	t.nanos[idx] += d.Nanoseconds()
}

// Phase is one recorded phase.
type Phase struct {
	Name   string
	WallNs int64
}

// Phases returns the recorded phases in first-recorded order.
func (t *PhaseTimer) Phases() []Phase {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Phase, len(t.names))
	for i, n := range t.names {
		out[i] = Phase{Name: n, WallNs: t.nanos[i]}
	}
	return out
}

// ExportTo registers every phase as a volatile gauge named
// phase_<name>_wall_ns.
func (t *PhaseTimer) ExportTo(reg *Registry) {
	for _, p := range t.Phases() {
		reg.Gauge("phase_"+sanitizeMetricName(p.Name)+"_wall_ns",
			"wall-clock time of phase "+p.Name+" (schedule-dependent)", true).Set(float64(p.WallNs))
	}
}

// String renders the phase table.
func (t *PhaseTimer) String() string {
	phases := t.Phases()
	if len(phases) == 0 {
		return "(no phases recorded)\n"
	}
	width := len("phase")
	for _, p := range phases {
		if len(p.Name) > width {
			width = len(p.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %12s\n", width, "phase", "wall")
	for _, p := range phases {
		fmt.Fprintf(&b, "%-*s  %12s\n", width, p.Name, time.Duration(p.WallNs).Round(time.Microsecond))
	}
	return b.String()
}

// sanitizeMetricName maps an arbitrary phase name onto the Prometheus
// metric-name alphabet.
func sanitizeMetricName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && len(out) > 0:
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
