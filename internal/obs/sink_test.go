package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// populate builds a registry with one of each metric class.
func populate(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("b_total", "second counter").Add(7)
	reg.Counter("a_total", "first counter").Add(3)
	reg.Gauge("peak", "stable gauge", false).Max(12)
	reg.Gauge("wall_ns", "volatile gauge", true).Set(999)
	h := reg.Histogram("lat_us", "latency", 1000, 4)
	h.Observe(1500)
	h.Observe(3000)
	h.Observe(500)
	h.Observe(1 << 30)
	return reg
}

func TestWriteJSON(t *testing.T) {
	reg := populate(t)
	var a, b strings.Builder
	if err := reg.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two JSON renders differ")
	}

	var doc struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(a.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, a.String())
	}
	if doc.Counters["a_total"] != 3 || doc.Counters["b_total"] != 7 {
		t.Errorf("counters = %v", doc.Counters)
	}
	if _, leaked := doc.Gauges["wall_ns"]; leaked {
		t.Errorf("volatile gauge leaked into JSON")
	}
	if doc.Gauges["peak"] != 12 {
		t.Errorf("gauges = %v", doc.Gauges)
	}
	h := doc.Histograms["lat_us"]
	if h.Count != 4 || h.Underflow != 1 || h.Overflow != 1 || h.Buckets[0] != 1 || h.Buckets[1] != 1 {
		t.Errorf("histogram = %+v", h)
	}
	if h.Sum != 500+1500+3000+(1<<30) {
		t.Errorf("histogram sum = %d", h.Sum)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := populate(t)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE peak gauge",
		"peak 12",
		"# TYPE lat_us histogram",
		`lat_us_bucket{le="2000"} 2`, // underflow + bucket 0, cumulative
		`lat_us_bucket{le="4000"} 3`,
		`lat_us_bucket{le="+Inf"} 4`,
		"lat_us_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "wall_ns") {
		t.Errorf("volatile gauge leaked into Prometheus output:\n%s", out)
	}
	// a_total must precede b_total: output is name-sorted.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Errorf("prometheus output not sorted by name:\n%s", out)
	}
	// Every non-comment line is "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestWriteTable(t *testing.T) {
	reg := populate(t)
	var sb strings.Builder
	if err := reg.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a_total", "counter", "wall_ns", "gauge (volatile)", "lat_us (histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"json", "prom", "table"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Errorf("ParseFormat accepted unknown format")
	}
}

func TestRegistryWriteDispatch(t *testing.T) {
	reg := populate(t)
	for _, f := range []Format{FormatJSON, FormatProm, FormatTable} {
		var sb strings.Builder
		if err := reg.Write(&sb, f); err != nil {
			t.Errorf("Write(%s): %v", f, err)
		}
		if sb.Len() == 0 {
			t.Errorf("Write(%s) produced no output", f)
		}
	}
	if err := reg.Write(&strings.Builder{}, Format("bogus")); err == nil {
		t.Errorf("Write accepted bogus format")
	}
}
