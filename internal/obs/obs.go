// Package obs is the observability layer of the MEMCON reproduction:
// a structured event stream for the engine lifecycle plus an aggregated
// metrics registry with JSON, Prometheus and human-table sinks.
//
// The package is designed around two hard constraints:
//
//   - Zero cost when disabled. Every instrumented subsystem holds a
//     plain Observer interface value and guards each emission with a
//     nil check; events are value structs, so the enabled path does not
//     allocate either.
//   - Determinism under parallelism. A sweep's aggregated metrics must
//     be byte-identical for any worker count (the same contract
//     internal/parallel enforces for experiment output). All registry
//     updates are commutative — atomic integer adds, integer-domain
//     histogram observations, monotonic maxima — and anything
//     inherently schedule-dependent (wall-clock phase timings,
//     per-worker utilization) is marked volatile and excluded from the
//     machine-readable sinks.
//
// Event timestamps are simulated time (trace microseconds), never wall
// clock, so a recorded event stream is a reproducible artifact.
package obs

import (
	"fmt"
	"io"
	"sync"
)

// Kind identifies one named engine-lifecycle event.
type Kind uint8

// The event catalogue. Aux is a kind-specific payload documented per
// kind; At is always simulated time in trace microseconds.
const (
	// KindWrite: the engine observed a program write. Aux is the
	// interval in microseconds since the page's previous write, or -1
	// for the page's first write.
	KindWrite Kind = iota
	// KindPredict: PRIL predicted the page's remaining write interval
	// long enough to amortize a test. Aux is unused (0).
	KindPredict
	// KindTestQueued: an online test started; the row is now idle for
	// one LO-REF window. Aux is the scheduled completion time (µs).
	KindTestQueued
	// KindTestDrained: an online test completed. Aux is 1 when the row
	// tested clean, 0 when the test found a data-dependent failure.
	KindTestDrained
	// KindTestAborted: an in-flight test expired before completing.
	// Aux is 0 when an intervening write aborted it, 1 when a
	// neighbour-retest voided it.
	KindTestAborted
	// KindRefreshToLo: a row transitioned HI-REF -> LO-REF after a
	// clean test. Aux is unused (0).
	KindRefreshToLo
	// KindRefreshToHi: a row transitioned LO-REF -> HI-REF because it
	// was written (or re-tested). Aux is the LO-REF dwell time (µs).
	KindRefreshToHi
	// KindRefreshRateSet: a refresh.Counter row switched interval.
	// Aux is the new interval in nanoseconds.
	KindRefreshRateSet
	// KindPrilInsert: PRIL admitted a page into the current-quantum
	// write buffer. Aux is the buffer occupancy after the insert.
	KindPrilInsert
	// KindPrilEvict: PRIL removed a buffered page. Aux is 0 for a
	// same-quantum second write, 1 for a write in the next quantum.
	KindPrilEvict
	// KindPrilDiscard: the write buffer was full and the page was
	// dropped (it stays at HI-REF). Aux is the buffer capacity.
	KindPrilDiscard
	// KindRemapHit: the remap mitigation served a test. Aux is 0 when
	// an already-remapped row short-circuited its test, 1 when a
	// failing row was newly remapped to a spare.
	KindRemapHit
	// KindSilentWrite: the system recognized a write that stores the
	// value already in memory (footnote-9 optimization). Aux unused.
	KindSilentWrite
	// KindNeighborRetest: a write triggered a re-test of a physical
	// neighbour row holding a clean verdict. Aux is the neighbour page.
	KindNeighborRetest
	// KindRowFailure: a characterization read-back found a failing
	// row. Aux is the number of failing cells.
	KindRowFailure
	// KindRowWeak: the all-pattern scan classified a row as able to
	// fail under some content. Aux is unused (0).
	KindRowWeak
	// KindRunDone: an engine run finished. Aux is the wall-clock run
	// duration in nanoseconds (from the engine's injected clock), the
	// one Aux that is not simulated time.
	KindRunDone
	// KindRowActivation: a memory controller reported ACT commands (row
	// misses plus injected-test row cycles) for a simulation, aggregated.
	// Aux is the activation count.
	KindRowActivation
	// KindTestActivation: the test-traffic-attributable subset of
	// KindRowActivation. Aux is the activation count.
	KindTestActivation
	// KindMitigation: a RowHammer mitigation policy issued extra
	// neighbour-refresh operations. Aux is the operation count.
	KindMitigation
	// KindDisturbFailure: a read-disturb census found a victim row with
	// flipped cells. Aux is the number of flipped cells.
	KindDisturbFailure

	// numKinds bounds the catalogue; keep it last.
	numKinds
)

// kindNames maps kinds to their stable wire names (used by the
// JSON-lines sink and the metric names derived from them).
var kindNames = [numKinds]string{
	KindWrite:          "write",
	KindPredict:        "predict",
	KindTestQueued:     "test_queued",
	KindTestDrained:    "test_drained",
	KindTestAborted:    "test_aborted",
	KindRefreshToLo:    "refresh_to_lo",
	KindRefreshToHi:    "refresh_to_hi",
	KindRefreshRateSet: "refresh_rate_set",
	KindPrilInsert:     "pril_insert",
	KindPrilEvict:      "pril_evict",
	KindPrilDiscard:    "pril_discard",
	KindRemapHit:       "remap_hit",
	KindSilentWrite:    "silent_write",
	KindNeighborRetest: "neighbor_retest",
	KindRowFailure:     "row_failure",
	KindRowWeak:        "row_weak",
	KindRunDone:        "run_done",
	KindRowActivation:  "row_activation",
	KindTestActivation: "test_activation",
	KindMitigation:     "mitigation",
	KindDisturbFailure: "disturb_failure",
}

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds returns the full event catalogue in declaration order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Event is one structured engine-lifecycle event. It is a plain value
// struct so emitting one performs no allocation.
type Event struct {
	// Kind names the event.
	Kind Kind
	// Page is the page/row the event concerns (0 when not applicable).
	Page uint32
	// At is the simulated time in trace microseconds.
	At int64
	// Aux is the kind-specific payload; see the Kind constants.
	Aux int64
}

// String renders the event compactly for snapshots and logs.
func (e Event) String() string {
	return fmt.Sprintf("%s page=%d at=%d aux=%d", e.Kind, e.Page, e.At, e.Aux)
}

// Observer receives the structured event stream. Implementations must
// be safe for concurrent use: parallel sweeps share one observer
// across workers. Events from a single engine run arrive in
// deterministic order; events from concurrent runs interleave, so an
// observer that aggregates across runs must do so commutatively if the
// aggregate is expected to be schedule-independent (see Metrics).
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// Tee fans each event out to every non-nil observer in order. It
// returns nil when no non-nil observers remain, so the result can be
// installed directly and keeps the disabled fast path.
func Tee(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return teeObserver(kept)
}

type teeObserver []Observer

func (t teeObserver) OnEvent(e Event) {
	for _, o := range t {
		o.OnEvent(e)
	}
}

// Recorder is an Observer that captures the event stream, for tests
// and offline analysis.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// OnEvent implements Observer.
func (r *Recorder) OnEvent(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the captured stream.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset clears the captured stream.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// JSONLines is an Observer that streams each event as one JSON object
// per line: {"kind":"write","page":3,"at":1024,"aux":-1}. Fields are
// emitted in fixed order, so a serial run's stream is byte-stable.
type JSONLines struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLines builds the sink over w.
func NewJSONLines(w io.Writer) *JSONLines { return &JSONLines{w: w} }

// OnEvent implements Observer. The first write error sticks and
// silences the sink.
func (j *JSONLines) OnEvent(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	_, j.err = fmt.Fprintf(j.w, "{\"kind\":%q,\"page\":%d,\"at\":%d,\"aux\":%d}\n",
		e.Kind.String(), e.Page, e.At, e.Aux)
}

// Err returns the first write error, if any.
func (j *JSONLines) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
