package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
)

// Format selects a metrics sink.
type Format string

// The supported metric output formats.
const (
	// FormatJSON is a single JSON document with sorted keys.
	FormatJSON Format = "json"
	// FormatProm is the Prometheus text exposition format.
	FormatProm Format = "prom"
	// FormatTable is the human summary table (includes volatile
	// metrics, which the machine formats omit).
	FormatTable Format = "table"
)

// ParseFormat validates a -metrics-format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatJSON, FormatProm, FormatTable:
		return Format(s), nil
	}
	return "", fmt.Errorf("obs: unknown metrics format %q (want json, prom, or table)", s)
}

// Write renders the registry in the given format.
func (r *Registry) Write(w io.Writer, f Format) error {
	switch f {
	case FormatJSON:
		return r.WriteJSON(w)
	case FormatProm:
		return r.WritePrometheus(w)
	case FormatTable:
		return r.WriteTable(w)
	}
	return fmt.Errorf("obs: unknown metrics format %q", string(f))
}

// jsonHistogram is the JSON shape of one histogram.
type jsonHistogram struct {
	Base      int64   `json:"base"`
	Buckets   []int64 `json:"buckets"`
	Underflow int64   `json:"underflow"`
	Overflow  int64   `json:"overflow"`
	Count     int64   `json:"count"`
	Sum       int64   `json:"sum"`
}

// WriteJSON renders the stable (non-volatile) metrics as one JSON
// document. Map keys are sorted by encoding/json and all values are
// integers or exact sums, so the document is byte-identical across
// runs that aggregate the same events, regardless of worker count.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	doc := struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]jsonHistogram, len(r.hists)),
	}
	for name, c := range r.counters {
		doc.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		if g.volatile {
			continue
		}
		doc.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		jh := jsonHistogram{Base: h.base, Buckets: make([]int64, h.buckets)}
		for i := range jh.Buckets {
			jh.Buckets[i] = atomic.LoadInt64(&h.counts[i])
		}
		jh.Underflow = h.under.Load()
		jh.Overflow = h.over.Load()
		jh.Count = h.Count()
		jh.Sum = h.Sum()
		doc.Histograms[name] = jh
	}
	r.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WritePrometheus renders the stable metrics in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, counter and
// gauge samples, and cumulative le-bucketed histograms. Output is
// sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	for _, name := range sortedNames(r.counters) {
		c := r.counters[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, c.help, name, name, c.Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(r.gauges) {
		g := r.gauges[name]
		if g.volatile {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, g.help, name, name, formatFloat(g.Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, h.help, name); err != nil {
			return err
		}
		cum := h.under.Load()
		for i := 0; i < h.buckets; i++ {
			cum += atomic.LoadInt64(&h.counts[i])
			// The bucket's upper edge is the next bucket's lower edge.
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, h.BucketLow(i+1), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, h.Count(), name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders a human summary: every metric including the
// volatile ones (marked), with histograms expanded through the
// stats.LogHistogram renderer.
func (r *Registry) WriteTable(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	var b strings.Builder
	rows := make([][3]string, 0, len(r.counters)+len(r.gauges))
	for _, name := range sortedNames(r.counters) {
		rows = append(rows, [3]string{name, "counter", strconv.FormatInt(r.counters[name].Value(), 10)})
	}
	for _, name := range sortedNames(r.gauges) {
		g := r.gauges[name]
		typ := "gauge"
		if g.volatile {
			typ = "gauge (volatile)"
		}
		rows = append(rows, [3]string{name, typ, formatFloat(g.Value())})
	}
	width := 0
	for _, row := range rows {
		if len(row[0]) > width {
			width = len(row[0])
		}
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-*s  %-16s  %s\n", width, row[0], row[1], row[2])
	}
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		fmt.Fprintf(&b, "\n%s (histogram, %s)\n", name, h.help)
		snap := h.Snapshot()
		if snap.Total() == 0 {
			b.WriteString("  (empty)\n")
			continue
		}
		for _, line := range strings.Split(strings.TrimRight(snap.String(), "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a gauge value with minimal, stable digits.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
