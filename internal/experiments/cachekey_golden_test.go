package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"memcon/internal/report"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/cachekeys.txt from the committed reference reports")

const cacheKeyGoldenPath = "../../testdata/cachekeys.txt"

// goldenCacheKeys derives the (id, key-hex) pairs for every committed
// reference report, sorted by id.
func goldenCacheKeys(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("../../testdata/reports/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no reference reports found")
	}
	lines := make([]string, 0, len(files))
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := report.DecodeBytes(b)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		req := RequestFromProvenance(rep.Prov)
		if err := req.Normalize(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		lines = append(lines, fmt.Sprintf("%s %s", req.Experiment, req.KeyHex()))
	}
	sort.Strings(lines)
	return lines
}

// TestCacheKeyGolden pins Request.CacheKey for the whole committed
// reference set against testdata/cachekeys.txt. The digests are the
// serving daemon's content addresses: a change to the key derivation or
// to the report schema shifts every digest and must arrive as a
// conscious schema bump — regenerate with
//
//	go test ./internal/experiments -run TestCacheKeyGolden -update
//
// and commit the new file alongside the change that justifies it.
func TestCacheKeyGolden(t *testing.T) {
	got := strings.Join(goldenCacheKeys(t), "\n") + "\n"
	if *updateGolden {
		if err := os.WriteFile(cacheKeyGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", cacheKeyGoldenPath)
		return
	}
	want, err := os.ReadFile(cacheKeyGoldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("cache keys drifted from %s — if the key schema change is intended, regenerate with -update\n--- got ---\n%s--- want ---\n%s",
			cacheKeyGoldenPath, got, want)
	}
}
