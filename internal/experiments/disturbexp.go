package experiments

import (
	"fmt"
	"math/rand"

	"memcon/internal/costmodel"
	"memcon/internal/disturb"
	"memcon/internal/dram"
	"memcon/internal/energy"
	"memcon/internal/faults"
	"memcon/internal/memctrl"
	"memcon/internal/obs"
	"memcon/internal/refresh"
	"memcon/internal/report"
)

func init() {
	registry["disturb-exposure"] = entry{RunDisturbExposure,
		"Extension: read-disturb exposure census by refresh class", false}
	registry["disturb-mitigation"] = entry{RunDisturbMitigation,
		"Extension: RowHammer mitigation overhead vs blast radius", false}
	// Both build chips through the mapped scrambler, so the address
	// mapping changes which rows neighbour which — and the numbers.
	mappedExperiments["disturb-exposure"] = true
	mappedExperiments["disturb-mitigation"] = true
}

// disturbParams is the victim population both disturb experiments
// simulate: denser than the silicon default so even the 64-row floor
// geometry of heavily scaled runs holds a handful of victims.
func disturbParams() disturb.Params {
	p := disturb.DefaultParams()
	p.VictimRowFraction = 0.06
	return p
}

// trafficStream decorrelates the experiment's traffic generator from the
// controller's internal streams (bank jitter, test-row placement).
const trafficStream = 0x7aff1c0de5717e5

// disturbChip is the shared co-simulation fixture: one single-bank chip
// whose retention model classifies rows into refresh classes and whose
// disturb model holds the hammer-susceptible victims, plus the
// activation-tracking controller the traffic runs against.
type disturbChip struct {
	geom dram.Geometry
	fm   *faults.Model
	dm   *disturb.Model
	mod  *dram.Module
	// hot lists the aggressor system rows the traffic hammers: the
	// physical neighbours of the first few victims.
	hot []int
}

func newDisturbChip(opts Options) (*disturbChip, error) {
	geom := charGeometry(opts.Scale)
	geom.BanksPerChip = 1
	scr, err := dram.NewMappedScrambler(geom, uint64(opts.Seed), nil, opts.Mapping)
	if err != nil {
		return nil, err
	}
	fm, err := faults.NewModel(geom, scr, uint64(opts.Seed), faults.ParamsForRefresh(dram.RefreshWindowDefault))
	if err != nil {
		return nil, err
	}
	dm, err := disturb.NewModel(fm, uint64(opts.Seed), disturbParams())
	if err != nil {
		return nil, err
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		return nil, err
	}
	// Random program content: disturb flips are content-conditional, so
	// roughly half of each victim's cells store their charged value.
	rng := rand.New(rand.NewSource(opts.Seed))
	row := dram.NewRow(geom.ColsPerRow)
	for r := 0; r < geom.RowsPerBank; r++ {
		row.Randomize(rng)
		if err := mod.WriteRow(dram.RowAddress{Bank: 0, Row: r}, row, 0); err != nil {
			return nil, err
		}
	}
	c := &disturbChip{geom: geom, fm: fm, dm: dm, mod: mod}
	victims, _ := dm.VictimRows(0)
	seen := map[int]bool{}
	for _, v := range victims {
		if len(seen) >= 16 {
			break
		}
		for _, a := range dm.Aggressors(dram.RowAddress{Bank: 0, Row: int(v)}) {
			if !seen[a.Row] {
				seen[a.Row] = true
				c.hot = append(c.hot, a.Row)
			}
		}
	}
	return c, nil
}

// controller builds the activation-tracking memory controller the
// traffic runs against, with MEMCON test traffic compressed into the
// simulated horizon (64 tests per quarter of the run) so the probes'
// own hammer contribution is visible at experiment scale.
func (c *disturbChip) controller(opts Options, mit refresh.Mitigation) (*memctrl.Controller, error) {
	cfg := memctrl.DefaultConfig()
	cfg.Banks = 1
	cfg.Seed = opts.Seed
	cfg.Rows = c.geom.RowsPerBank
	cfg.TestsPerWindow = 64
	cfg.TestWindow = dram.Nanoseconds(opts.SimTimeNs) / 4
	if cfg.TestWindow < 1 {
		cfg.TestWindow = 1
	}
	cfg.Mitigation = mit
	return memctrl.New(cfg)
}

// drive replays the deterministic traffic mix: 70% of accesses hammer
// the hot aggressor rows, the rest spread uniformly. The generator's
// RNG is independent of the controller's, so every policy in a sweep
// sees the identical access stream.
func (c *disturbChip) drive(ctrl *memctrl.Controller, opts Options) error {
	rng := rand.New(rand.NewSource(opts.Seed ^ trafficStream))
	simTime := dram.Nanoseconds(opts.SimTimeNs)
	const spacing = dram.Nanoseconds(200)
	for at := dram.Nanoseconds(0); at < simTime; at += spacing {
		var row int
		if len(c.hot) > 0 && rng.Float64() < 0.7 {
			row = c.hot[rng.Intn(len(c.hot))]
		} else {
			row = rng.Intn(c.geom.RowsPerBank)
		}
		if _, err := ctrl.Access(at, 0, row, false); err != nil {
			return err
		}
	}
	return nil
}

// victimHammer sums the current-window activations of the victim's
// aggressor neighbours — the hammer the victim's cells absorbed. The
// simulated horizon is far shorter than one hammer window, so the
// current window holds the whole run's counts. The second return is the
// test-traffic-attributable share.
func (c *disturbChip) victimHammer(ctrl *memctrl.Controller, v int) (total, test int64) {
	for _, a := range c.dm.Aggressors(dram.RowAddress{Bank: 0, Row: v}) {
		n, tn := ctrl.WindowActivations(a.Bank, a.Row)
		total += n
		test += tn
	}
	return total, test
}

// refreshWindow returns the victim row's refresh class under MEMCON:
// rows that cannot fail at the relaxed rate with any content run at
// LO-REF (64 ms), retention-weak rows stay at HI-REF (16 ms). The
// window is how long disturbance accumulates before a refresh restores
// the victim's charge.
func (c *disturbChip) refreshWindow(v int) (string, dram.Nanoseconds) {
	if c.fm.RowCanFail(dram.RowAddress{Bank: 0, Row: v}, dram.RefreshWindowDefault) {
		return "HI-REF", dram.RefreshWindowAggressive
	}
	return "LO-REF", dram.RefreshWindowDefault
}

// extrapolate scales a hammer count measured over the simulated horizon
// to one full refresh window of the victim's class.
func extrapolate(hammer int64, simTime, window dram.Nanoseconds) int64 {
	if simTime <= 0 {
		return 0
	}
	return int64(float64(hammer) * float64(window) / float64(simTime))
}

// DisturbClassCensus is one refresh class's victim exposure.
type DisturbClassCensus struct {
	// Class is "HI-REF" or "LO-REF"; Window its refresh interval.
	Class  string
	Window dram.Nanoseconds
	// VictimRows is the class's hammer-susceptible row count;
	// HammeredRows the subset whose aggressors were activated at all.
	VictimRows   int
	HammeredRows int
	// ExposedRows counts victims whose per-window extrapolated hammer
	// reaches their first-flip threshold; FlippedCells the
	// content-conditional flips those rows suffer under current content.
	ExposedRows  int
	FlippedCells int
	// TestHammer is the test-traffic share of the class's total hammer.
	TestHammer  int64
	TotalHammer int64
	// MaxWindowHammer is the largest extrapolated per-window hammer.
	MaxWindowHammer int64
}

// DisturbExposureResult is the disturb-exposure census: how MEMCON's
// refresh relaxation changes RowHammer exposure. A clean retention test
// moves a row to LO-REF, which quadruples the window over which its
// neighbours' activations accumulate — so the same traffic disturbs
// LO-REF victims at 4x the effective hammer count of HI-REF victims.
type DisturbExposureResult struct {
	resultMeta
	SimTimeNs int64
	Census    []DisturbClassCensus
	// Controller-level activation accounting.
	Activations       int64
	TestActivations   int64
	MaxRowActivations int64
}

// RunDisturbExposure co-simulates retention classification and
// read-disturb accumulation over one traffic mix and reports the victim
// census by refresh class.
func RunDisturbExposure(opts Options) (Result, error) {
	chip, err := newDisturbChip(opts)
	if err != nil {
		return nil, err
	}
	ctrl, err := chip.controller(opts, nil)
	if err != nil {
		return nil, err
	}
	if err := chip.drive(ctrl, opts); err != nil {
		return nil, err
	}
	simTime := dram.Nanoseconds(opts.SimTimeNs)
	victims, _ := chip.dm.VictimRows(0)

	type victimVerdict struct {
		class    string
		hammered bool
		exposed  bool
		flips    int
		hammer   int64
		test     int64
		windowH  int64
	}
	verdicts, err := forUnits(opts, len(victims), func(i int) (victimVerdict, error) {
		v := int(victims[i])
		a := dram.RowAddress{Bank: 0, Row: v}
		class, window := chip.refreshWindow(v)
		hammer, test := chip.victimHammer(ctrl, v)
		windowH := extrapolate(hammer, simTime, window)
		w := faults.RowWindow{Hammer: windowH}
		flips := len(chip.dm.AppendFailures(nil, chip.mod, a, w))
		return victimVerdict{
			class:    class,
			hammered: hammer > 0,
			exposed:  chip.dm.RowVulnerable(a, w),
			flips:    flips,
			hammer:   hammer,
			test:     test,
			windowH:  windowH,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	byClass := map[string]*DisturbClassCensus{
		"HI-REF": {Class: "HI-REF", Window: dram.RefreshWindowAggressive},
		"LO-REF": {Class: "LO-REF", Window: dram.RefreshWindowDefault},
	}
	for i, vv := range verdicts {
		c := byClass[vv.class]
		c.VictimRows++
		if vv.hammered {
			c.HammeredRows++
		}
		if vv.exposed {
			c.ExposedRows++
		}
		c.FlippedCells += vv.flips
		c.TotalHammer += vv.hammer
		c.TestHammer += vv.test
		if vv.windowH > c.MaxWindowHammer {
			c.MaxWindowHammer = vv.windowH
		}
		if vv.flips > 0 && opts.Observer != nil {
			opts.Observer.OnEvent(obs.Event{
				Kind: obs.KindDisturbFailure,
				Page: uint32(victims[i]),
				Aux:  int64(vv.flips),
			})
		}
	}
	stats := ctrl.Stats()
	if opts.Observer != nil {
		opts.Observer.OnEvent(obs.Event{Kind: obs.KindRowActivation, Aux: stats.Activations})
		opts.Observer.OnEvent(obs.Event{Kind: obs.KindTestActivation, Aux: stats.TestActivations})
	}
	return &DisturbExposureResult{
		SimTimeNs:         opts.SimTimeNs,
		Census:            []DisturbClassCensus{*byClass["HI-REF"], *byClass["LO-REF"]},
		Activations:       stats.Activations,
		TestActivations:   stats.TestActivations,
		MaxRowActivations: stats.MaxRowActivations,
	}, nil
}

// Report builds the exposure census document.
func (r *DisturbExposureResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Extension — read-disturb exposure by refresh class\n\n")
	t := report.NewTable("census",
		report.CStr("class", "refresh class"),
		report.CFloat("window_ms", "refresh window", "ms"),
		report.CInt("victim_rows", "", "rows"),
		report.CInt("hammered_rows", "", "rows"),
		report.CInt("exposed_rows", "hammer over threshold", "rows"),
		report.CInt("flipped_cells", "content-conditional flips", "cells"),
		report.CInt("max_window_hammer", "max per-window hammer", "acts"))
	for _, c := range r.Census {
		ms := float64(c.Window) / float64(dram.Millisecond)
		t.Add(report.S(c.Class),
			report.F(ms, fmt.Sprintf("%.0f", ms)),
			report.I(int64(c.VictimRows)),
			report.I(int64(c.HammeredRows)),
			report.I(int64(c.ExposedRows)),
			report.I(int64(c.FlippedCells)),
			report.I(c.MaxWindowHammer))
	}
	rep.AddTable(t)
	testShare := 0.0
	if r.Activations > 0 {
		testShare = float64(r.TestActivations) / float64(r.Activations)
	}
	rep.Textf("\nactivations: %d total, %d from MEMCON test traffic (%s)\n",
		r.Activations, r.TestActivations, pct(testShare))
	rep.Textf("max single-row activations in a window: %d\n", r.MaxRowActivations)
	rep.Textf("a clean retention test relaxes a row to LO-REF, quadrupling the window\nover which neighbour activations accumulate — the refresh reduction that\nsaves energy also amplifies RowHammer exposure, and MEMCON's own probes\ncontribute hammer activity the controller must count\n")
	st := report.NewTable("traffic",
		report.CInt("activations", "", "acts"),
		report.CInt("test_activations", "", "acts"),
		report.CInt("max_row_activations", "", "acts"))
	st.Add(report.I(r.Activations), report.I(r.TestActivations), report.I(r.MaxRowActivations))
	rep.AddDataTable(st)
	return rep
}

// String renders the exposure census as text.
func (r *DisturbExposureResult) String() string { return r.Report().Text() }

// DisturbPolicyOutcome is one mitigation policy's measured overhead and
// analytic residual blast radius over the shared traffic mix.
type DisturbPolicyOutcome struct {
	// Policy is the canonical spec ("none" for the unmitigated baseline).
	Policy string
	// MitigationOps counts the extra neighbour refreshes the policy
	// issued; OverheadNs prices them through the cost model and
	// OverheadFrac relates that to the simulated horizon.
	MitigationOps int64
	OverheadNs    int64
	OverheadFrac  float64
	// RefreshMJ is the energy of the extra refreshes.
	RefreshMJ float64
	// ExposedRows is the expected number of victim rows whose effective
	// per-window hammer still reaches threshold under the policy
	// (fractional for probabilistic policies); FlippedCells the expected
	// content-conditional flips in those rows.
	ExposedRows  float64
	FlippedCells float64
}

// DisturbMitigationResult sweeps mitigation policies over one traffic
// mix: measured operation overhead against analytically bounded
// residual blast radius.
type DisturbMitigationResult struct {
	resultMeta
	SimTimeNs int64
	Policies  []DisturbPolicyOutcome
}

// disturbPolicyGrid is the default mitigation sweep; a novel request
// spec is appended rather than replacing the grid so every report
// carries the comparable baselines.
var disturbPolicyGrid = []string{"", "para:0.001", "para:0.01", "prac:1024", "prac:4096"}

// RunDisturbMitigation runs the policy sweep. Every policy sees the
// identical access stream (the traffic RNG is independent of policy
// state); the controller measures the mitigation operations it issues,
// and the residual exposure is evaluated analytically from the measured
// per-victim hammer rates — PARA's escape probability (1-p)^H, PRAC's
// capped inter-mitigation hammer.
func RunDisturbMitigation(opts Options) (Result, error) {
	chip, err := newDisturbChip(opts)
	if err != nil {
		return nil, err
	}
	specs := append([]string(nil), disturbPolicyGrid...)
	if opts.Disturb != "" {
		novel := true
		for _, s := range specs {
			if s == opts.Disturb {
				novel = false
				break
			}
		}
		if novel {
			specs = append(specs, opts.Disturb)
		}
	}
	simTime := dram.Nanoseconds(opts.SimTimeNs)
	victims, _ := chip.dm.VictimRows(0)
	cm := costmodel.DefaultConfig()
	budget := energy.DDR3Budget()

	outcomes, err := forUnits(opts, len(specs), func(i int) (DisturbPolicyOutcome, error) {
		spec := specs[i]
		mit, err := refresh.ParseMitigation(spec, uint64(opts.Seed))
		if err != nil {
			return DisturbPolicyOutcome{}, err
		}
		ctrl, err := chip.controller(opts, mit)
		if err != nil {
			return DisturbPolicyOutcome{}, err
		}
		if err := chip.drive(ctrl, opts); err != nil {
			return DisturbPolicyOutcome{}, err
		}
		stats := ctrl.Stats()
		out := DisturbPolicyOutcome{Policy: "none", MitigationOps: stats.MitigationOps}
		if mit != nil {
			out.Policy = mit.Name()
		}
		out.OverheadNs = int64(cm.MitigationCost(stats.MitigationOps))
		if simTime > 0 {
			out.OverheadFrac = float64(out.OverheadNs) / float64(simTime)
		}
		br, err := energy.Compute(budget, energy.Tally{RefreshOps: float64(stats.MitigationOps)})
		if err != nil {
			return DisturbPolicyOutcome{}, err
		}
		out.RefreshMJ = br.RefreshMJ

		for _, v := range victims {
			a := dram.RowAddress{Bank: 0, Row: int(v)}
			_, window := chip.refreshWindow(int(v))
			hammer, _ := chip.victimHammer(ctrl, int(v))
			windowH := extrapolate(hammer, simTime, window)
			// surviveProb is how much of the raw hammer's effect the
			// policy lets through: PARA keeps it with probability
			// (1-p)^H, PRAC deterministically caps it.
			surviveProb, effH := 1.0, windowH
			switch m := mit.(type) {
			case *refresh.PARA:
				surviveProb = refresh.PARAEscapeProb(m.P(), windowH)
			case *refresh.PRAC:
				effH = refresh.PRACCappedHammer(m.Threshold(), windowH)
			}
			w := faults.RowWindow{Hammer: effH}
			if chip.dm.RowVulnerable(a, w) {
				out.ExposedRows += surviveProb
				out.FlippedCells += surviveProb * float64(len(chip.dm.AppendFailures(nil, chip.mod, a, w)))
			}
		}
		if opts.Observer != nil {
			opts.Observer.OnEvent(obs.Event{Kind: obs.KindMitigation, Aux: stats.MitigationOps})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &DisturbMitigationResult{SimTimeNs: opts.SimTimeNs, Policies: outcomes}, nil
}

// Report builds the mitigation-sweep document.
func (r *DisturbMitigationResult) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Extension — RowHammer mitigation overhead vs blast radius\n\n")
	t := report.NewTable("mitigation",
		report.CStr("policy", ""),
		report.CInt("mitigation_ops", "extra refreshes", "ops"),
		report.CInt("overhead_ns", "time overhead", "ns"),
		report.CFloat("overhead_pct", "of sim time", "%"),
		report.CFloat("refresh_mj", "energy", "mJ"),
		report.CFloat("exposed_rows", "expected exposed", "rows"),
		report.CFloat("flipped_cells", "expected flips", "cells"))
	for _, p := range r.Policies {
		t.Add(report.S(p.Policy),
			report.I(p.MitigationOps),
			report.I(p.OverheadNs),
			report.F(100*p.OverheadFrac, fmt.Sprintf("%.4f", 100*p.OverheadFrac)),
			report.F(p.RefreshMJ, fmt.Sprintf("%.6f", p.RefreshMJ)),
			report.F(p.ExposedRows, fmt.Sprintf("%.3f", p.ExposedRows)),
			report.F(p.FlippedCells, fmt.Sprintf("%.3f", p.FlippedCells)))
	}
	rep.AddTable(t)
	rep.Textf("\nevery policy replays the identical access stream; operation counts are\nmeasured in the controller, residual exposure is the analytic bound over\nmeasured per-victim hammer rates (PARA escapes with (1-p)^H, PRAC caps\nthe inter-mitigation hammer at 2(n-1)+1)\n")
	return rep
}

// String renders the mitigation sweep as text.
func (r *DisturbMitigationResult) String() string { return r.Report().Text() }
