package experiments

import (
	"fmt"
	"sort"
	"strings"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/softmc"
	"memcon/internal/workload"
)

// charGeometry sizes the characterized module by the option scale.
func charGeometry(scale float64) dram.Geometry {
	g := dram.DefaultGeometry()
	rows := int(float64(g.RowsPerBank) * scale)
	if rows < 64 {
		rows = 64
	}
	g.RowsPerBank = rows
	return g
}

// newChip builds one simulated chip: scrambler + fault model + module +
// tester.
func newChip(geom dram.Geometry, seed uint64, params faults.Params) (*softmc.Tester, error) {
	scr := dram.NewScrambler(geom, seed, nil)
	model, err := faults.NewModel(geom, scr, seed, params)
	if err != nil {
		return nil, err
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		return nil, err
	}
	return softmc.NewTester(mod, model)
}

// Fig3Result reproduces Fig. 3: for each data pattern, the set of
// failing cells; cells fail conditionally depending on content.
type Fig3Result struct {
	Patterns int
	// FailuresPerPattern[i] is the number of failing cells under
	// pattern i.
	FailuresPerPattern []int
	PatternNames       []string
	// UniqueCells is the number of distinct cells that failed under at
	// least one pattern.
	UniqueCells int
	// ConditionalCells is the number of those that also PASSED under at
	// least one pattern — the cells whose failure is data-dependent.
	ConditionalCells int
	// MaxPatternsPerCell is the largest number of patterns any single
	// cell failed under.
	MaxPatternsPerCell int
}

// RunFig3 tests one chip with the standard pattern suite at the
// characterization idle time and reports how failure sets vary with
// content. Every pattern run rebuilds the (deterministically seeded)
// chip from scratch, so the sweep fans out over the worker budget; the
// per-pattern failure sets merge back in pattern order.
func RunFig3(opts Options) (fmt.Stringer, error) {
	geom := charGeometry(opts.Scale * 0.25) // one-bank-scale study
	geom.BanksPerChip = 1
	params := faults.DefaultParams()
	patterns := softmc.StandardPatterns(100)

	fails, err := forUnits(opts, len(patterns), func(i int) ([]softmc.RowFailure, error) {
		tester, err := newChip(geom, uint64(opts.Seed), params)
		if err != nil {
			return nil, err
		}
		return tester.RunPattern(patterns[i], faults.CharacterizationIdle)
	})
	if err != nil {
		return nil, err
	}

	counts := make(map[string]int) // cell key -> patterns failed
	res := &Fig3Result{Patterns: len(patterns)}
	for i, p := range patterns {
		n := 0
		for _, f := range fails[i] {
			for _, c := range f.Cells {
				counts[fmt.Sprintf("%d:%d:%d", f.Addr.Bank, f.Addr.Row, c)]++
				n++
			}
		}
		res.FailuresPerPattern = append(res.FailuresPerPattern, n)
		res.PatternNames = append(res.PatternNames, p.Name)
	}
	res.UniqueCells = len(counts)
	for _, c := range counts {
		if c < res.Patterns {
			res.ConditionalCells++
		}
		if c > res.MaxPatternsPerCell {
			res.MaxPatternsPerCell = c
		}
	}
	return res, nil
}

// String renders the Fig. 3 report.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — cells failing with different data content (%d patterns)\n\n", r.Patterns)
	t := &table{header: []string{"pattern", "failing cells"}}
	for i, n := range r.FailuresPerPattern {
		if i < 12 || n == 0 { // print the classic patterns; elide the random tail
			t.addRow(r.PatternNames[i], fmt.Sprintf("%d", n))
		}
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nunique failing cells:        %d\n", r.UniqueCells)
	fmt.Fprintf(&b, "data-dependent (conditional): %d (%.1f%%)\n",
		r.ConditionalCells, 100*float64(r.ConditionalCells)/float64(max(1, r.UniqueCells)))
	fmt.Fprintf(&b, "max patterns failed by a cell: %d of %d\n", r.MaxPatternsPerCell, r.Patterns)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig4Row is one benchmark's failing-row fractions.
type Fig4Row struct {
	Benchmark string
	// Avg/Min/Max over execution phases of the fraction of rows failing
	// with the program content.
	Avg, Min, Max float64
}

// Fig4Result reproduces Fig. 4.
type Fig4Result struct {
	Rows []Fig4Row
	// AllFail is the fraction of rows failing under ANY pattern.
	AllFail float64
	// RatioMin/RatioMax bound AllFail/Avg over the benchmarks (paper:
	// 2.4x - 35.2x).
	RatioMin, RatioMax float64
}

// RunFig4 measures per-benchmark failing-row fractions with program
// content across phases, against the all-pattern denominator. Each
// benchmark gets its own chip rebuilt from the same seed — a content
// run refills the whole module, so per-benchmark results match the
// old shared-tester loop exactly while the sweep fans out.
func RunFig4(opts Options) (fmt.Stringer, error) {
	geom := charGeometry(opts.Scale)
	params := faults.DefaultParams()
	idle := faults.CharacterizationIdle
	const phases = 5

	tester, err := newChip(geom, uint64(opts.Seed), params)
	if err != nil {
		return nil, err
	}
	allFail, err := tester.AllFailFractionParallel(opts.Ctx, idle, opts.Workers)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{AllFail: allFail}

	specs := workload.SPECContents()
	rows, err := forUnits(opts, len(specs), func(i int) (Fig4Row, error) {
		spec := specs[i]
		tester, err := newChip(geom, uint64(opts.Seed), params)
		if err != nil {
			return Fig4Row{}, err
		}
		row := Fig4Row{Benchmark: spec.Name, Min: 1}
		var sum float64
		for ph := 0; ph < phases; ph++ {
			img := spec.Image(geom.RowsPerBank, geom.ColsPerRow, ph, opts.Seed)
			frac, err := tester.FailingRowFraction(img, idle)
			if err != nil {
				return Fig4Row{}, err
			}
			sum += frac
			if frac < row.Min {
				row.Min = frac
			}
			if frac > row.Max {
				row.Max = frac
			}
		}
		row.Avg = sum / phases
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.RatioMin, res.RatioMax = 1e18, 0
	for _, r := range res.Rows {
		if r.Avg <= 0 {
			continue
		}
		ratio := res.AllFail / r.Avg
		if ratio < res.RatioMin {
			res.RatioMin = ratio
		}
		if ratio > res.RatioMax {
			res.RatioMax = ratio
		}
	}
	return res, nil
}

// String renders the Fig. 4 report.
func (r *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 4 — percentage of rows with data-dependent failures\n\n")
	t := &table{header: []string{"benchmark", "avg", "min", "max"}}
	rows := append([]Fig4Row(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Avg > rows[j].Avg })
	for _, row := range rows {
		t.addRow(row.Benchmark, pct2(row.Avg), pct2(row.Min), pct2(row.Max))
	}
	t.addRow("ALL FAIL", pct2(r.AllFail), "", "")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nprogram content exhibits %.1fx-%.1fx fewer failing rows than ALL FAIL (paper: 2.4x-35.2x)\n",
		r.RatioMin, r.RatioMax)
	return b.String()
}
