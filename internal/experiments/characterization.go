package experiments

import (
	"fmt"
	"sort"

	"memcon/internal/dram"
	"memcon/internal/faults"
	"memcon/internal/report"
	"memcon/internal/softmc"
	"memcon/internal/workload"
)

// charGeometry sizes the characterized module by the option scale.
func charGeometry(scale float64) dram.Geometry {
	g := dram.DefaultGeometry()
	rows := int(float64(g.RowsPerBank) * scale)
	if rows < 64 {
		rows = 64
	}
	g.RowsPerBank = rows
	return g
}

// newChip builds one simulated chip: scrambler + fault model + module +
// tester. mapping selects the vendor address-mapping scheme; "" means
// the default (see dram.NewMappedScrambler).
func newChip(geom dram.Geometry, seed uint64, params faults.Params, mapping string) (*softmc.Tester, error) {
	scr, err := dram.NewMappedScrambler(geom, seed, nil, mapping)
	if err != nil {
		return nil, err
	}
	model, err := faults.NewModel(geom, scr, seed, params)
	if err != nil {
		return nil, err
	}
	mod, err := dram.NewModule(geom)
	if err != nil {
		return nil, err
	}
	return softmc.NewTester(mod, model)
}

// Fig3Result reproduces Fig. 3: for each data pattern, the set of
// failing cells; cells fail conditionally depending on content.
type Fig3Result struct {
	resultMeta
	Patterns int
	// FailuresPerPattern[i] is the number of failing cells under
	// pattern i.
	FailuresPerPattern []int
	PatternNames       []string
	// UniqueCells is the number of distinct cells that failed under at
	// least one pattern.
	UniqueCells int
	// ConditionalCells is the number of those that also PASSED under at
	// least one pattern — the cells whose failure is data-dependent.
	ConditionalCells int
	// MaxPatternsPerCell is the largest number of patterns any single
	// cell failed under.
	MaxPatternsPerCell int
}

// RunFig3 tests one chip with the standard pattern suite at the
// characterization idle time and reports how failure sets vary with
// content. Every pattern run rebuilds the (deterministically seeded)
// chip from scratch, so the sweep fans out over the worker budget; the
// per-pattern failure sets merge back in pattern order.
func RunFig3(opts Options) (Result, error) {
	geom := charGeometry(opts.Scale * 0.25) // one-bank-scale study
	geom.BanksPerChip = 1
	params := faults.DefaultParams()
	patterns := softmc.StandardPatterns(100)

	fails, err := forUnits(opts, len(patterns), func(i int) ([]softmc.RowFailure, error) {
		tester, err := newChip(geom, uint64(opts.Seed), params, opts.Mapping)
		if err != nil {
			return nil, err
		}
		return tester.RunPattern(patterns[i], faults.CharacterizationIdle)
	})
	if err != nil {
		return nil, err
	}

	counts := make(map[string]int) // cell key -> patterns failed
	res := &Fig3Result{Patterns: len(patterns)}
	for i, p := range patterns {
		n := 0
		for _, f := range fails[i] {
			for _, c := range f.Cells {
				counts[fmt.Sprintf("%d:%d:%d", f.Addr.Bank, f.Addr.Row, c)]++
				n++
			}
		}
		res.FailuresPerPattern = append(res.FailuresPerPattern, n)
		res.PatternNames = append(res.PatternNames, p.Name)
	}
	res.UniqueCells = len(counts)
	for _, c := range counts {
		if c < res.Patterns {
			res.ConditionalCells++
		}
		if c > res.MaxPatternsPerCell {
			res.MaxPatternsPerCell = c
		}
	}
	return res, nil
}

// Report builds the Fig. 3 document. The random-pattern tail rows are
// hidden: elided from the text rendering, still present in CSV/JSON and
// still diffed.
func (r *Fig3Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 3 — cells failing with different data content (%d patterns)\n\n", r.Patterns)
	t := report.NewTable("patterns",
		report.CStr("pattern", ""),
		report.CInt("failing_cells", "failing cells", "cells"))
	for i, n := range r.FailuresPerPattern {
		cells := []report.Cell{report.S(r.PatternNames[i]), report.I(int64(n))}
		if i < 12 || n == 0 { // print the classic patterns; elide the random tail
			t.Add(cells...)
		} else {
			t.AddHidden(cells...)
		}
	}
	rep.AddTable(t)
	rep.Textf("\nunique failing cells:        %d\n", r.UniqueCells)
	rep.Textf("data-dependent (conditional): %d (%.1f%%)\n",
		r.ConditionalCells, 100*float64(r.ConditionalCells)/float64(max(1, r.UniqueCells)))
	rep.Textf("max patterns failed by a cell: %d of %d\n", r.MaxPatternsPerCell, r.Patterns)
	st := report.NewTable("summary",
		report.CInt("unique_cells", "", "cells"),
		report.CInt("conditional_cells", "", "cells"),
		report.CInt("max_patterns_per_cell", "", "patterns"))
	st.Add(report.I(int64(r.UniqueCells)), report.I(int64(r.ConditionalCells)), report.I(int64(r.MaxPatternsPerCell)))
	rep.AddDataTable(st)
	return rep
}

// String renders the Fig. 3 report as text.
func (r *Fig3Result) String() string { return r.Report().Text() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig4Row is one benchmark's failing-row fractions.
type Fig4Row struct {
	Benchmark string
	// Avg/Min/Max over execution phases of the fraction of rows failing
	// with the program content.
	Avg, Min, Max float64
}

// Fig4Result reproduces Fig. 4.
type Fig4Result struct {
	resultMeta
	Rows []Fig4Row
	// AllFail is the fraction of rows failing under ANY pattern.
	AllFail float64
	// RatioMin/RatioMax bound AllFail/Avg over the benchmarks (paper:
	// 2.4x - 35.2x).
	RatioMin, RatioMax float64
}

// RunFig4 measures per-benchmark failing-row fractions with program
// content across phases, against the all-pattern denominator. Each
// benchmark gets its own chip rebuilt from the same seed — a content
// run refills the whole module, so per-benchmark results match the
// old shared-tester loop exactly while the sweep fans out.
func RunFig4(opts Options) (Result, error) {
	geom := charGeometry(opts.Scale)
	params := faults.DefaultParams()
	idle := faults.CharacterizationIdle
	const phases = 5

	tester, err := newChip(geom, uint64(opts.Seed), params, opts.Mapping)
	if err != nil {
		return nil, err
	}
	allFail, err := tester.AllFailFractionParallel(opts.Ctx, idle, opts.Workers)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{AllFail: allFail}

	specs := workload.SPECContents()
	rows, err := forUnits(opts, len(specs), func(i int) (Fig4Row, error) {
		spec := specs[i]
		tester, err := newChip(geom, uint64(opts.Seed), params, opts.Mapping)
		if err != nil {
			return Fig4Row{}, err
		}
		row := Fig4Row{Benchmark: spec.Name, Min: 1}
		var sum float64
		for ph := 0; ph < phases; ph++ {
			img := spec.Image(geom.RowsPerBank, geom.ColsPerRow, ph, opts.Seed)
			frac, err := tester.FailingRowFraction(img, idle)
			if err != nil {
				return Fig4Row{}, err
			}
			sum += frac
			if frac < row.Min {
				row.Min = frac
			}
			if frac > row.Max {
				row.Max = frac
			}
		}
		row.Avg = sum / phases
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.RatioMin, res.RatioMax = 1e18, 0
	for _, r := range res.Rows {
		if r.Avg <= 0 {
			continue
		}
		ratio := res.AllFail / r.Avg
		if ratio < res.RatioMin {
			res.RatioMin = ratio
		}
		if ratio > res.RatioMax {
			res.RatioMax = ratio
		}
	}
	return res, nil
}

// Report builds the Fig. 4 document. Rows are ordered by descending
// average (the figure's ordering); the ALL FAIL denominator is the last
// row, with empty min/max cells.
func (r *Fig4Result) Report() *report.Report {
	rep := report.New(r.provenance())
	rep.Textf("Fig. 4 — percentage of rows with data-dependent failures\n\n")
	t := report.NewTable("rows",
		report.CStr("benchmark", ""),
		report.CFloat("avg", "", "fraction"),
		report.CFloat("min", "", "fraction"),
		report.CFloat("max", "", "fraction"))
	rows := append([]Fig4Row(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Avg > rows[j].Avg })
	for _, row := range rows {
		t.Add(report.S(row.Benchmark),
			report.F(row.Avg, pct2(row.Avg)),
			report.F(row.Min, pct2(row.Min)),
			report.F(row.Max, pct2(row.Max)))
	}
	t.Add(report.S("ALL FAIL"), report.F(r.AllFail, pct2(r.AllFail)), report.S(""), report.S(""))
	rep.AddTable(t)
	rep.Textf("\nprogram content exhibits %.1fx-%.1fx fewer failing rows than ALL FAIL (paper: 2.4x-35.2x)\n",
		r.RatioMin, r.RatioMax)
	st := report.NewTable("summary",
		report.CFloat("ratio_min", "", "x"),
		report.CFloat("ratio_max", "", "x"))
	st.Add(report.Fv(r.RatioMin), report.Fv(r.RatioMax))
	rep.AddDataTable(st)
	return rep
}

// String renders the Fig. 4 report as text.
func (r *Fig4Result) String() string { return r.Report().Text() }
